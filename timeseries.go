package hbbp

import (
	"hbbp/internal/tsstore"
)

// The time axis of the fleet layer: where StoredProfile answers "what
// is the fleet running" and DiffProfiles answers "what changed between
// these two mixes", a ProfileSeries answers "what changed over the
// last k windows". Profiles append per epoch, a retention ladder folds
// old epochs into coarser windows (bounding what a long-lived store
// holds), windowed queries merge any epoch range back into one
// profile, and trend detection flags ops and functions whose
// retirement share moves monotonically across consecutive windows.
// Folding is lossless by construction — profile merging is exact
// integer addition, so any re-grouping of epochs merges bit-identical
// to the flat merge — which makes this the rare retention policy that
// is proven exact rather than estimated.

// ProfileSeries is an epoch-indexed store of merged profiles:
// non-overlapping windows in ascending epoch order. The zero value is
// an empty, usable series. Not safe for concurrent use.
type ProfileSeries = tsstore.Series

// SeriesSpan is one retained window's inclusive epoch range.
type SeriesSpan = tsstore.Span

// RetentionPolicy is a downsampling ladder — e.g. keep the last 8
// epochs raw, then 4 epochs per window, then 16. The zero value
// retains everything raw. Set it on [FleetServerConfig].Retention to
// bound a long-lived ingest server's memory.
type RetentionPolicy = tsstore.Retention

// RetentionLevel is one rung of a [RetentionPolicy].
type RetentionLevel = tsstore.Level

// TrendOptions parameterize [ProfileSeries.Trend]: how many of the
// newest windows to scan (K) and the minimum share drift to flag
// (Threshold). The zero value selects the defaults.
type TrendOptions = tsstore.TrendOptions

// TrendReport is the outcome of a trend scan: ops and functions whose
// retirement share moved strictly monotonically across the scanned
// windows, sorted by drift magnitude.
type TrendReport = tsstore.TrendReport

// TrendEntry is one flagged monotonic mover.
type TrendEntry = tsstore.TrendEntry

// DefaultTrendK and DefaultTrendThreshold are the trend scan defaults:
// three consecutive windows, half a percentage point of drift.
const (
	DefaultTrendK         = tsstore.DefaultTrendK
	DefaultTrendThreshold = tsstore.DefaultTrendThreshold
)

// DefaultRetention returns the standard ladder: 8 raw epochs, then
// 4:1 for the next 16, then 16:1 forever.
func DefaultRetention() RetentionPolicy { return tsstore.DefaultRetention() }

// ParseRetention reads a ladder spec of comma-separated WIDTH:KEEP
// pairs, e.g. "1:8,4:4,16:0". The empty string is the fold-nothing
// policy.
func ParseRetention(spec string) (RetentionPolicy, error) {
	return tsstore.ParseRetention(spec)
}

// OpenSeries loads a profile series from a directory written by
// [ProfileSeries.Save]. A nonexistent or index-less directory opens as
// an empty series. Malformed stores classify under errors.Is against
// [ErrSeriesMagic], [ErrSeriesTruncated], [ErrSeriesVersion],
// [ErrSeriesWindowMismatch] and the profile sentinels.
func OpenSeries(dir string) (*ProfileSeries, error) {
	return tsstore.Open(dir)
}

// The series' window profiles and [StoredProfile] are the same type —
// a windowed query result flows straight into the stored analysis
// views (pivots, diffs, SaveProfile) with no adaptation. This
// compile-time check keeps the façade honest about it.
var _ func(*ProfileSeries) *StoredProfile = (*ProfileSeries).Merged
