package hbbp

// The façade is a mapping, not a fork: every public entry point must
// produce bit-identical results to the pre-redesign internal paths it
// subsumed. These tests freeze that mapping — samples (including the
// serialized byte stream), trained models, profiles and rendered
// tables are compared against direct internal invocations configured
// the way the commands and examples used to.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/harness"
	"hbbp/internal/workloads"
)

// testWorkload builds a registry workload the way the pre-redesign
// internal callers constructed one.
func testWorkload(t *testing.T, name string) *Workload {
	t.Helper()
	w, err := workloads.Default().Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return w
}

// internalOptions reproduces the exact collector configuration the
// pre-redesign callers (cmd/hbbp, the examples) built by hand.
func internalOptions(w *Workload, seed int64) core.Options {
	return core.Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: seed, Repeat: w.Repeat,
		},
		KernelLivePatched: true,
	}
}

// TestProfileParity asserts Session.Profile is bit-identical to the
// internal core.Run path: same BBECs, same raw estimates, same
// choices, same sample sets, same stats — and the same serialized
// perffile byte-for-byte.
func TestProfileParity(t *testing.T) {
	w := testWorkload(t, "test40").Scaled(0.2)
	const seed = 42

	var rawInternal bytes.Buffer
	opts := internalOptions(w, seed)
	opts.Collector.RawOut = &rawInternal
	want, err := core.Run(w.Prog, w.Entry, core.DefaultModel(), opts)
	if err != nil {
		t.Fatalf("internal core.Run: %v", err)
	}

	var rawFacade bytes.Buffer
	s, err := New(WithSeed(seed), WithRawOutput(&rawFacade))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := s.Profile(context.Background(), w)
	if err != nil {
		t.Fatalf("Session.Profile: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("façade profile differs from internal path:\n got: %+v\nwant: %+v", got, want)
	}
	if !bytes.Equal(rawFacade.Bytes(), rawInternal.Bytes()) {
		t.Errorf("serialized collection differs: façade %d bytes, internal %d bytes",
			rawFacade.Len(), rawInternal.Len())
	}
	if rawFacade.Len() == 0 {
		t.Fatal("no raw bytes captured; parity test is vacuous")
	}
}

// TestReplayParity asserts Session.Replay of a façade-written stream
// matches both the internal core.AnalyzeReplay path and the live
// profile's estimates.
func TestReplayParity(t *testing.T) {
	w := testWorkload(t, "kernel-prime").Scaled(0.5)
	const seed = 11

	var raw bytes.Buffer
	s, err := New(WithSeed(seed), WithRawOutput(&raw))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	live, err := s.Profile(context.Background(), w)
	if err != nil {
		t.Fatalf("Session.Profile: %v", err)
	}

	want, err := core.AnalyzeReplay(w.Prog, core.DefaultModel(),
		bytes.NewReader(raw.Bytes()), internalOptions(w, seed))
	if err != nil {
		t.Fatalf("internal core.AnalyzeReplay: %v", err)
	}
	got, err := s.Replay(context.Background(), w, bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatalf("Session.Replay: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("façade replay differs from internal path")
	}
	if !reflect.DeepEqual(got.BBECs, live.BBECs) {
		t.Errorf("replayed BBECs differ from live collection")
	}
	if !reflect.DeepEqual(got.Collection.EBSIPs, live.Collection.EBSIPs) {
		t.Errorf("replayed EBS sample set differs from live collection")
	}
	if len(got.Collection.EBSIPs) == 0 {
		t.Fatal("no EBS samples replayed; parity test is vacuous")
	}
}

// TestTrainParity asserts Session.Train learns the identical model as
// (a) the harness runner and (b) the strictly sequential pre-redesign
// training loop of cmd/hbbp, at a non-trivial parallelism.
func TestTrainParity(t *testing.T) {
	const seed, factor = 3, 0.1

	// (a) The harness path.
	r := harness.New(harness.Config{Fast: true, FastFactor: factor, Seed: seed})
	fromHarness, err := r.Model()
	if err != nil {
		t.Fatalf("harness Model: %v", err)
	}

	// (b) The sequential loop cmd/hbbp -trained used to run, on the
	// same scaled corpus.
	var runs []*core.TrainingRun
	for i, name := range workloads.TrainingNames() {
		w := testWorkload(t, name).Scaled(factor)
		run, err := core.CollectTrainingRun(w.Prog, w.Entry, collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: seed + int64(100+i), Repeat: w.Repeat,
		})
		if err != nil {
			t.Fatalf("sequential training run %d: %v", i, err)
		}
		runs = append(runs, run)
	}
	sequential, err := core.Train(runs, core.TrainParams{})
	if err != nil {
		t.Fatalf("sequential core.Train: %v", err)
	}

	s, err := New(WithSeed(seed), WithFast(factor), WithParallelism(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := s.Train(context.Background())
	if err != nil {
		t.Fatalf("Session.Train: %v", err)
	}

	if !reflect.DeepEqual(got, fromHarness) {
		t.Errorf("façade model differs from harness path:\nfaçade:  %s\nharness: %s",
			got.Describe(), fromHarness.Describe())
	}
	if !reflect.DeepEqual(got, sequential) {
		t.Errorf("façade model differs from sequential pre-redesign path:\nfaçade:     %s\nsequential: %s",
			got.Describe(), sequential.Describe())
	}

	// The trained model must now be the session's active model.
	if prof := s.currentModel(); prof != got {
		t.Errorf("Train did not install the learned model on the session")
	}
}

// TestExperimentParity asserts the façade's experiment runner renders
// byte-identical tables to a directly configured harness, across a
// static table and a full collection-backed evaluation.
func TestExperimentParity(t *testing.T) {
	const seed, factor = 5, 0.1
	for _, name := range []string{"table4", "table5"} {
		var wantBuf bytes.Buffer
		r := harness.New(harness.Config{Out: &wantBuf, Fast: true, FastFactor: factor, Seed: seed})
		if err := r.Run(name); err != nil {
			t.Fatalf("harness %s: %v", name, err)
		}

		var gotBuf bytes.Buffer
		s, err := New(WithSeed(seed), WithFast(factor), WithExperimentOutput(&gotBuf))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := s.RunExperiment(context.Background(), name); err != nil {
			t.Fatalf("Session.RunExperiment(%s): %v", name, err)
		}

		if gotBuf.String() != wantBuf.String() {
			t.Errorf("%s differs:\nfaçade:\n%s\nharness:\n%s", name, gotBuf.String(), wantBuf.String())
		}
		if gotBuf.Len() == 0 {
			t.Fatalf("%s rendered nothing; parity test is vacuous", name)
		}
	}
}

// countingSink tallies sample dispatches per event.
type countingSink struct{ samples, lost int }

func (c *countingSink) Sample(*Sample) { c.samples++ }
func (c *countingSink) Lost(Lost)      { c.lost++ }

// TestReplayDispatchesToSinks asserts WithSinks sinks observe replayed
// streams exactly like live ones — the documented "live collections
// and replays alike" contract.
func TestReplayDispatchesToSinks(t *testing.T) {
	w := testWorkload(t, "test40").Scaled(0.1)
	var raw bytes.Buffer
	liveSink := &countingSink{}
	s, err := New(WithSeed(1), WithRawOutput(&raw), WithSinks(liveSink))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Profile(context.Background(), w); err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if liveSink.samples == 0 {
		t.Fatal("live run dispatched no samples to the custom sink; test is vacuous")
	}

	replaySink := &countingSink{}
	s2, err := New(WithSeed(1), WithSinks(replaySink))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s2.Replay(context.Background(), w, bytes.NewReader(raw.Bytes())); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if replaySink.samples != liveSink.samples {
		t.Errorf("replay dispatched %d samples to the custom sink, live run %d",
			replaySink.samples, liveSink.samples)
	}
}

// TestExperimentRunnerReusesCaches asserts the two expensive shared
// computations — the corpus-trained model and the SPEC-suite
// evaluations — carry across a session's experiment and training
// calls instead of being recomputed per invocation, and that the
// cached re-run renders byte-identical output.
func TestExperimentRunnerReusesCaches(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	// table1 needs both the trained model and the full suite.
	s, err := New(WithSeed(5), WithFast(0.1), WithExperimentOutput(&out))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.RunExperiment(ctx, "table1"); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	first := out.String()

	s.mu.Lock()
	cachedModel, cachedSuite := s.expModel, s.expSuite
	s.mu.Unlock()
	if cachedModel == nil {
		t.Fatal("no trained model harvested after a model-backed experiment")
	}
	if cachedSuite == nil {
		t.Fatal("no suite evaluations harvested after a suite-backed experiment")
	}

	// The cached re-run must render the identical bytes.
	out.Reset()
	if err := s.RunExperiment(ctx, "table1"); err != nil {
		t.Fatalf("second RunExperiment: %v", err)
	}
	if out.String() != first {
		t.Errorf("cache-backed re-run differs:\nfirst:\n%s\nsecond:\n%s", first, out.String())
	}

	// And match a fresh, cache-less harness exactly.
	var ref bytes.Buffer
	r := harness.New(harness.Config{Out: &ref, Fast: true, FastFactor: 0.1, Seed: 5})
	if err := r.Run("table1"); err != nil {
		t.Fatalf("harness table1: %v", err)
	}
	if first != ref.String() {
		t.Errorf("façade table1 differs from direct harness")
	}

	// Train must return the very same model object without a second
	// corpus pass.
	m, err := s.Train(ctx)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m != cachedModel {
		t.Errorf("Train re-learned a model instead of reusing the session cache")
	}
}

// TestPerInstructionReferenceParity asserts the façade option maps
// onto the reference dispatch and stays bit-identical to the fast
// path — the PR 2 invariant surfaced publicly.
func TestPerInstructionReferenceParity(t *testing.T) {
	w := testWorkload(t, "test40").Scaled(0.1)
	run := func(opts ...Option) *Profile {
		s, err := New(append([]Option{WithSeed(9)}, opts...)...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		prof, err := s.Profile(context.Background(), w)
		if err != nil {
			t.Fatalf("Profile: %v", err)
		}
		return prof
	}
	fast := run()
	ref := run(WithPerInstructionReference())
	if !reflect.DeepEqual(fast, ref) {
		t.Errorf("block fast path and per-instruction reference disagree through the façade")
	}
}
