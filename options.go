package hbbp

import (
	"fmt"
	"io"
)

// Option configures a [Session]. Options are applied once by [New];
// the resulting Session is immutable except for the model installed by
// [Session.Train].
type Option func(*config) error

// config is the one options surface behind the façade. It subsumes
// the internal configuration structs (cpu.Config, collector.Options,
// harness.Config): a Session resolves it into whichever internal
// struct an entry point needs, so callers configure every layer in
// one place.
type config struct {
	seed           int64
	parallelism    int
	class          RuntimeClass
	classSet       bool
	sinks          []SampleSink
	rawOut         io.Writer
	perInstruction bool
	model          *Model
	fastFactor     float64
	workloadScale  float64
	expOut         io.Writer
}

// WithSeed sets the base random seed. It drives the workloads'
// stochastic branches, the PMU model and the derived per-run seeds of
// training and experiments; two Sessions with the same seed produce
// bit-identical results. The default is 1.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithParallelism bounds the worker pool evaluating independent runs
// (the training corpus, suite workloads and per-table workload sets).
// Zero, the default, uses all cores; 1 restores strictly sequential
// execution. Every run carries its own derived seed and results are
// assembled in workload order, so outputs are identical at any
// setting.
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("hbbp: negative parallelism %d", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithRuntimeClass overrides the runtime class — and thereby the
// Table 4 sampling periods — for every [Session.Profile] and
// [Session.Replay] workload. Without this option each workload's own
// class is used, which is almost always what you want. Training and
// experiment runs always use the workloads' own classes, like the
// paper's evaluation.
func WithRuntimeClass(class RuntimeClass) Option {
	return func(c *config) error {
		if class > ClassMinutes {
			return fmt.Errorf("hbbp: unknown runtime class %v", class)
		}
		c.class = class
		c.classSet = true
		return nil
	}
}

// WithSinks registers extra sample sinks: each receives every PMU
// sample as it is captured, after the built-in EBS and LBR sinks, on
// [Session.Profile] collections and [Session.Replay] passes alike.
// Training and experiment runs do not dispatch to them. The Sample
// passed in lives in a reused buffer; sinks that retain sample data
// must copy it.
func WithSinks(sinks ...SampleSink) Option {
	return func(c *config) error {
		c.sinks = append(c.sinks, sinks...)
		return nil
	}
}

// WithRawOutput streams the serialized collection (the perf.data-like
// byte stream) to w during every [Session.Profile] run, for later
// re-analysis with [Session.Replay]. The writer is shared by every run
// of the session: concurrent Profile calls would interleave their
// streams, so serialize profiling (or use one session per run) when
// capturing raw output.
func WithRawOutput(w io.Writer) Option {
	return func(c *config) error {
		c.rawOut = w
		return nil
	}
}

// WithPerInstructionReference forces every run onto the CPU's
// per-instruction reference dispatch instead of the block-granularity
// fast path. Results are bit-identical either way — the façade's
// parity tests flip this option to prove it — so the only reason to
// set it is to exercise the reference path.
func WithPerInstructionReference() Option {
	return func(c *config) error {
		c.perInstruction = true
		return nil
	}
}

// WithModel installs a profiling model, bypassing both the shipped
// default rule and training. A model returned by [Session.Train] on
// one session can be reused on another.
func WithModel(m *Model) Option {
	return func(c *config) error {
		if m == nil {
			return fmt.Errorf("hbbp: WithModel(nil)")
		}
		c.model = m
		return nil
	}
}

// WithFast scales workload repeats down for quick runs of training
// and experiments: factor in (0, 1] is the repeat multiplier, and the
// sentinel 0 selects the standard fast factor of 0.25. Sampling
// statistics shrink accordingly — numbers keep their shape but carry
// more noise. Without this option runs are full fidelity.
func WithFast(factor float64) Option {
	return func(c *config) error {
		if factor < 0 || factor > 1 {
			return fmt.Errorf("hbbp: fast factor %g outside [0, 1] (0 means the standard 0.25)", factor)
		}
		if factor == 0 {
			factor = 0.25
		}
		c.fastFactor = factor
		return nil
	}
}

// WithWorkloadScale scales every [Session.Profile] workload's
// calibrated Repeat by factor in (0, 1] before the run — the
// single-workload counterpart of [WithFast] (which scales training and
// experiment runs). Sampling statistics shrink proportionally; the
// floor is one invocation. The default 1 runs workloads at full
// calibrated volume.
func WithWorkloadScale(factor float64) Option {
	return func(c *config) error {
		if factor <= 0 || factor > 1 {
			return fmt.Errorf("hbbp: workload scale %g outside (0, 1]", factor)
		}
		c.workloadScale = factor
		return nil
	}
}

// WithExperimentOutput directs the rendered tables and figures of
// [Session.RunExperiment] and [Session.RunAllExperiments] to w. The
// default discards them (useful only when inspecting structured
// results through other means).
func WithExperimentOutput(w io.Writer) Option {
	return func(c *config) error {
		c.expOut = w
		return nil
	}
}
