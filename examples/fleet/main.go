// Fleet aggregation: many concurrent profiling sessions, one merged
// fleet view — the continuous-profiling consumption pattern the
// profile store exists for, written against the public hbbp package.
//
// The paper's pitch is profiling cheap enough to leave on everywhere;
// a fleet then produces thousands of per-run profiles that nobody
// reads individually. This example plays a miniature fleet: all 29
// SPEC CPU2006 stand-ins are profiled concurrently, every run's
// result is captured into the mergeable profile-store form and
// ingested into one lock-striped Aggregator while the runs are still
// in flight, and the merged snapshot is queried like any single
// profile — top mnemonics, ring split, hottest code blocks across the
// whole fleet.
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"

	"hbbp"
)

func main() {
	ctx := context.Background()

	// One session, shared by every worker: Profile is safe for
	// concurrent use, and the workload scale keeps this demo quick
	// (shares are unaffected; sampling noise grows slightly).
	s, err := hbbp.New(hbbp.WithSeed(1), hbbp.WithWorkloadScale(0.25))
	if err != nil {
		log.Fatal(err)
	}

	names := hbbp.SPECNames()
	agg := hbbp.NewAggregator()
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	stored := make([]*hbbp.StoredProfile, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			w, err := hbbp.LookupWorkload(name)
			if err != nil {
				errs[i] = err
				return
			}
			prof, err := s.Profile(ctx, w)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				return
			}
			// Capture once, then ingest the stored form straight from
			// the worker: the aggregator's lock striping absorbs
			// concurrent ingests, and a Snapshot taken at any moment
			// would see only whole runs. The capture is kept so the
			// offline merge below can cross-check the live aggregate.
			sp, err := hbbp.CaptureProfile(prof, name)
			if err != nil {
				errs[i] = err
				return
			}
			stored[i] = sp
			agg.Merge(sp)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	fleet := agg.Snapshot()
	fmt.Printf("fleet: %d runs across %d workloads, %d distinct blocks, %d retired instructions\n\n",
		fleet.TotalRuns(), len(fleet.Workloads), len(fleet.Blocks), fleet.TotalMass())

	// The merged mix answers fleet-level questions no single profile
	// can: what does the whole fleet retire?
	tab := hbbp.StoredPivot(fleet)
	fmt.Println("fleet-wide instruction mix (top 10):")
	fmt.Print(hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(tab, 10)))
	fmt.Println()
	fmt.Println("ring split:")
	fmt.Print(hbbp.Render([]string{"RING"}, hbbp.RingBreakdown(tab)))
	fmt.Println()

	fmt.Println("hottest blocks across the fleet:")
	for _, blk := range fleet.TopBlocks(5) {
		fmt.Printf("  %-40s %12d executions x %2d insts\n", blk.String(), blk.Count, blk.Len)
	}
	fmt.Println()

	// Merging is associative and deterministic, so the same fleet
	// assembled the other way — the per-workload stored profiles
	// merged offline, in registration order rather than completion
	// order — is bit-identical to the live concurrent aggregate.
	sum := hbbp.MergeProfiles(stored...)
	var live, offline bytes.Buffer
	if err := hbbp.SaveProfile(&live, fleet); err != nil {
		log.Fatal(err)
	}
	if err := hbbp.SaveProfile(&offline, sum); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline re-merge matches live aggregate: %v\n",
		bytes.Equal(live.Bytes(), offline.Bytes()))
}
