// Fleet ingest under fire: thousands of agents deliver stored
// profiles over the wire protocol, through deliberately faulty
// connections, into one hbbpd-style ingest server — and the merged
// result is proven bit-identical to an offline merge of exactly the
// profiles the agents were told were accepted.
//
// The paper's pitch is profiling cheap enough to leave on everywhere;
// the fleet that results delivers its profiles over real networks,
// which chunk writes, flip bits, reset connections and stall. This
// example plays that fleet in miniature: a handful of real profiling
// runs seed the payload pool, then -agents simulated agents (in waves
// of -concurrency) each dial the in-process ingest server through a
// fault-injecting transport and push profiles with the retrying
// client. Every fault the transport injects must surface as either a
// retry that eventually lands exactly once, or an accounted refusal —
// never as silent loss or a double merge.
//
// The closing cross-check is the fleet tier's keystone invariant: the
// server's live aggregate, after all that chaos, equals
// hbbp.MergeProfiles over exactly the confirmed sends.
//
// Run with:
//
//	go run ./examples/fleet [-agents N] [-concurrency N] [-per N] [-seed N]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hbbp"
)

func main() {
	agents := flag.Int("agents", 2000, "total simulated agents")
	concurrency := flag.Int("concurrency", 200, "agents in flight at once")
	per := flag.Int("per", 2, "profiles each agent delivers")
	seed := flag.Int64("seed", 1, "random seed (payloads and faults)")
	flag.Parse()
	ctx := context.Background()

	// Seed the payload pool with real profiling runs: four workloads,
	// scaled down so the example stays quick.
	s, err := hbbp.New(hbbp.WithSeed(*seed), hbbp.WithWorkloadScale(0.1))
	if err != nil {
		log.Fatal(err)
	}
	var pool []*hbbp.StoredProfile
	for _, name := range []string{"gcc", "povray", "lbm", "test40"} {
		w, err := hbbp.LookupWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := s.Profile(ctx, w)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		sp, err := hbbp.CaptureProfile(prof, name)
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, sp)
	}
	fmt.Printf("payload pool: %d profiles from real runs\n", len(pool))

	// The ingest server, as hbbpd would run it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := hbbp.Serve(ln, hbbp.FleetServerConfig{Queue: 256})
	addr := server.Addr().String()
	fmt.Printf("ingest server on %s\n", addr)

	// Every agent dials through a fault-injecting transport: writes
	// are chunked small, occasionally bit-flipped (the frame CRC must
	// catch every flip) and occasionally reset mid-exchange (the
	// retrying client must recover without double-merging).
	newDialer := func(agentSeed int64) func(ctx context.Context, addr string) (net.Conn, error) {
		d := &net.Dialer{Timeout: 10 * time.Second}
		var mu sync.Mutex
		var n int64
		return func(ctx context.Context, addr string) (net.Conn, error) {
			c, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			n++
			connSeed := agentSeed*1000003 + n
			mu.Unlock()
			return hbbp.NewFlakyConn(c, hbbp.Faults{
				Seed:          connSeed,
				MaxWriteChunk: 16,
				CorruptProb:   0.002,
				ResetProb:     0.005,
			}), nil
		}
	}

	// Waves of agents: -agents total identities, at most -concurrency
	// connected at once — thousands of agents without thousands of
	// simultaneous sockets.
	var (
		mu        sync.Mutex
		confirmed []*hbbp.StoredProfile
		totals    hbbp.FleetClientStats
		failures  int
	)
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for a := 0; a < *agents; a++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(a int) {
			defer wg.Done()
			defer func() { <-sem }()
			actx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			c, err := hbbp.Dial(actx, addr, hbbp.FleetClientConfig{
				Tenant:      "fleet",
				Agent:       fmt.Sprintf("host-%04d", a),
				Dialer:      newDialer(*seed*7919 + int64(a)),
				BackoffBase: 2 * time.Millisecond,
				BackoffMax:  100 * time.Millisecond,
				Seed:        int64(a + 1),
			})
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			defer c.Close()
			var mine []*hbbp.StoredProfile
			for i := 0; i < *per; i++ {
				p := pool[(a+i)%len(pool)]
				if err := c.Send(actx, 1, p); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					break
				}
				mine = append(mine, p)
			}
			st := c.Stats()
			mu.Lock()
			confirmed = append(confirmed, mine...)
			totals.Dials += st.Dials
			totals.Sent += st.Sent
			totals.Acked += st.Acked
			totals.DuplicateAcks += st.DuplicateAcks
			totals.ResumeSkipped += st.ResumeSkipped
			totals.OverloadNacks += st.OverloadNacks
			totals.ConnErrors += st.ConnErrors
			totals.Retries += st.Retries
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if failures > 0 {
		log.Fatalf("%d agents failed to deliver despite retries", failures)
	}
	fmt.Printf("%d agents delivered %d profiles in %s\n",
		*agents, len(confirmed), elapsed.Round(time.Millisecond))
	fmt.Printf("client totals: dials=%d sent=%d acked=%d duplicate-acks=%d resume-skips=%d conn-errors=%d retries=%d\n",
		totals.Dials, totals.Sent, totals.Acked, totals.DuplicateAcks,
		totals.ResumeSkipped, totals.ConnErrors, totals.Retries)

	// Drain and read the server's ledger: merges must equal confirmed
	// sends, and every injected fault must be visible as a counted
	// duplicate, corrupt frame or failed handshake — accounted, never
	// hidden.
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := server.Shutdown(sctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	stats := server.Stats()
	for _, ts := range stats.Tenants {
		fmt.Printf("server ledger %s: merged=%d duplicates=%d shed=%d rejected=%d corrupt=%d\n",
			ts.Tenant, ts.Merged, ts.Duplicates, ts.Shed, ts.Rejected, ts.Corrupt)
	}
	fmt.Printf("server conns: accepted=%d handshake-failures=%d\n",
		stats.Accepted, stats.HandshakeFailures)

	live := server.Snapshot("fleet", 1)
	if live == nil {
		log.Fatal("no merged state for tenant fleet")
	}
	fmt.Printf("\nfleet aggregate: %d runs, %d distinct blocks, %d retired instructions\n",
		live.TotalRuns(), len(live.Blocks), live.TotalMass())
	tab := hbbp.StoredPivot(live)
	fmt.Println("fleet-wide instruction mix (top 5):")
	fmt.Print(hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(tab, 5)))
	fmt.Println()

	// The keystone invariant, verified the strong way: serialized
	// bytes of the live aggregate vs the offline merge of exactly the
	// confirmed profiles.
	offline := hbbp.MergeProfiles(confirmed...)
	var a, b bytes.Buffer
	if err := hbbp.SaveProfile(&a, live); err != nil {
		log.Fatal(err)
	}
	if err := hbbp.SaveProfile(&b, offline); err != nil {
		log.Fatal(err)
	}
	match := bytes.Equal(a.Bytes(), b.Bytes())
	fmt.Printf("offline re-merge matches live aggregate: %v\n", match)
	if !match {
		log.Fatal("drop-accounting invariant violated")
	}
}
