// Fleet ingest under fire, now with a time axis: thousands of agents
// deliver stored profiles over the wire protocol, through deliberately
// faulty connections, into one hbbpd-style ingest server — across
// several epochs, with server-side retention folding completed epochs
// into a bounded profile series — and the result is proven
// bit-identical to an offline merge of exactly the profiles the agents
// were told were accepted.
//
// The paper's pitch is profiling cheap enough to leave on everywhere;
// the fleet that results delivers its profiles over real networks,
// which chunk writes, flip bits, reset connections and stall — and it
// runs for a long time, so its history has to be retained without
// unbounded memory. This example plays that fleet in miniature: real
// profiling runs of the vectorization case study (x87 → SSE → AVX)
// seed per-epoch payload pools whose vector share rises epoch over
// epoch, then -agents simulated agents, split into one wave per epoch
// (at most -concurrency in flight), each dial the in-process ingest
// server through a fault-injecting transport and push profiles with
// the retrying client. As each wave completes, the server rolls the
// finished epoch out of its live aggregators into a downsampled
// series, so memory stays bounded while the full history remains
// queryable — and a trend scan over the retained windows flags the
// fleet's drift toward vector code.
//
// The closing cross-check is the fleet tier's keystone invariant,
// extended along the time axis: every retained window, and the series
// as a whole, merges bit-identical to hbbp.MergeProfiles over exactly
// the confirmed sends for those epochs — folds and all.
//
// Run with:
//
//	go run ./examples/fleet [-agents N] [-concurrency N] [-per N] [-epochs N] [-seed N]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hbbp"
)

func main() {
	agents := flag.Int("agents", 2000, "total simulated agents, split evenly across epochs")
	concurrency := flag.Int("concurrency", 200, "agents in flight at once")
	per := flag.Int("per", 2, "profiles each agent delivers")
	epochs := flag.Int("epochs", 6, "epochs to spread the agent waves across (min 3)")
	seed := flag.Int64("seed", 1, "random seed (payloads and faults)")
	flag.Parse()
	if *epochs < 3 {
		log.Fatal("-epochs must be at least 3 (the trend scan needs three windows)")
	}
	ctx := context.Background()

	// Seed the payload pools with real profiling runs: the fitter case
	// study's three vectorization tiers, scaled down so the example
	// stays quick. Epoch e draws from a pool weighted (epochs-1-e) x87
	// : 1 SSE : e AVX, so the fleet's vector-op share rises
	// monotonically across epochs — exactly the drift the trend scan
	// exists to catch.
	s, err := hbbp.New(hbbp.WithSeed(*seed), hbbp.WithWorkloadScale(0.1))
	if err != nil {
		log.Fatal(err)
	}
	var tiers []*hbbp.StoredProfile
	for _, name := range []string{"fitter-x87", "fitter-sse", "fitter-avx"} {
		w, err := hbbp.LookupWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := s.Profile(ctx, w)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		sp, err := hbbp.CaptureProfile(prof, name)
		if err != nil {
			log.Fatal(err)
		}
		tiers = append(tiers, sp)
	}
	pools := make([][]*hbbp.StoredProfile, *epochs)
	for e := 0; e < *epochs; e++ {
		for i := 0; i < *epochs-1-e; i++ {
			pools[e] = append(pools[e], tiers[0]) // x87
		}
		pools[e] = append(pools[e], tiers[1]) // SSE
		for i := 0; i < e; i++ {
			pools[e] = append(pools[e], tiers[2]) // AVX
		}
	}
	fmt.Printf("payload pools: %d real runs blended across %d epochs (x87 fading, AVX rising)\n",
		len(tiers), *epochs)

	// The ingest server, as hbbpd would run it with -retain: completed
	// epochs roll into a series keeping the last two epochs raw and
	// everything older at two epochs per window.
	retention := hbbp.RetentionPolicy{Levels: []hbbp.RetentionLevel{
		{Width: 1, Keep: 2},
		{Width: 2, Keep: 0},
	}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Joining the process-wide telemetry registry puts the server's
	// ledgers, the clients' retry counters and the package-level merge
	// and series instrumentation into one final snapshot.
	server := hbbp.Serve(ln, hbbp.FleetServerConfig{
		Queue: 256, Retention: retention, Telemetry: hbbp.DefaultTelemetry(),
	})
	addr := server.Addr().String()
	fmt.Printf("ingest server on %s (retention %s)\n", addr, retention)

	// Every agent dials through a fault-injecting transport: writes
	// are chunked small, occasionally bit-flipped (the frame CRC must
	// catch every flip) and occasionally reset mid-exchange (the
	// retrying client must recover without double-merging).
	newDialer := func(agentSeed int64) func(ctx context.Context, addr string) (net.Conn, error) {
		d := &net.Dialer{Timeout: 10 * time.Second}
		var mu sync.Mutex
		var n int64
		return func(ctx context.Context, addr string) (net.Conn, error) {
			c, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			n++
			connSeed := agentSeed*1000003 + n
			mu.Unlock()
			return hbbp.NewFlakyConn(c, hbbp.Faults{
				Seed:          connSeed,
				MaxWriteChunk: 16,
				CorruptProb:   0.002,
				ResetProb:     0.005,
			}), nil
		}
	}

	// One wave of agents per epoch: -agents total identities split
	// across -epochs waves, at most -concurrency connected at once.
	// Each wave finishes before the next begins, so the server sees
	// epochs complete in order and rolls them online — thousands of
	// agents, bounded sockets, bounded aggregator memory.
	var (
		mu        sync.Mutex
		confirmed = make([][]*hbbp.StoredProfile, *epochs)
		totals    hbbp.FleetClientStats
		failures  int
	)
	sem := make(chan struct{}, *concurrency)
	start := time.Now()
	for e := 0; e < *epochs; e++ {
		epoch := uint64(e)
		pool := pools[e]
		lo, hi := e**agents / *epochs, (e+1)**agents / *epochs
		var wg sync.WaitGroup
		for a := lo; a < hi; a++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(a int) {
				defer wg.Done()
				defer func() { <-sem }()
				actx, cancel := context.WithTimeout(ctx, 60*time.Second)
				defer cancel()
				c, err := hbbp.Dial(actx, addr, hbbp.FleetClientConfig{
					Tenant:      "fleet",
					Agent:       fmt.Sprintf("host-%04d", a),
					Dialer:      newDialer(*seed*7919 + int64(a)),
					BackoffBase: 2 * time.Millisecond,
					BackoffMax:  100 * time.Millisecond,
					Seed:        int64(a + 1),
				})
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					return
				}
				defer c.Close()
				// One batched round trip delivers the agent's whole
				// epoch: same exactly-once ledger, 1/per the frames.
				mine := make([]*hbbp.StoredProfile, 0, *per)
				for i := 0; i < *per; i++ {
					mine = append(mine, pool[(a+i)%len(pool)])
				}
				if err := c.SendBatch(actx, epoch, mine); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					mine = nil
				}
				st := c.Stats()
				mu.Lock()
				confirmed[epoch] = append(confirmed[epoch], mine...)
				totals.Dials += st.Dials
				totals.Sent += st.Sent
				totals.Acked += st.Acked
				totals.DuplicateAcks += st.DuplicateAcks
				totals.ResumeSkipped += st.ResumeSkipped
				totals.OverloadNacks += st.OverloadNacks
				totals.ConnErrors += st.ConnErrors
				totals.Retries += st.Retries
				mu.Unlock()
			}(a)
		}
		wg.Wait()
		fmt.Printf("epoch %d: %d agents delivered %d profiles\n",
			epoch, hi-lo, len(confirmed[epoch]))
	}
	elapsed := time.Since(start)

	if failures > 0 {
		log.Fatalf("%d agents failed to deliver despite retries", failures)
	}
	delivered := 0
	for _, c := range confirmed {
		delivered += len(c)
	}
	fmt.Printf("%d agents delivered %d profiles over %d epochs in %s\n",
		*agents, delivered, *epochs, elapsed.Round(time.Millisecond))
	fmt.Printf("client totals: dials=%d sent=%d acked=%d duplicate-acks=%d resume-skips=%d conn-errors=%d retries=%d\n",
		totals.Dials, totals.Sent, totals.Acked, totals.DuplicateAcks,
		totals.ResumeSkipped, totals.ConnErrors, totals.Retries)

	// Drain and read the server's ledger: merges must equal confirmed
	// sends, and every injected fault must be visible as a counted
	// duplicate, corrupt frame or failed handshake — accounted, never
	// hidden. With retention on, the ledger also shows the time axis:
	// few live epochs, history in retained windows.
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := server.Shutdown(sctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	stats := server.Stats()
	for _, ts := range stats.Tenants {
		fmt.Printf("server ledger %s: merged=%d duplicates=%d shed=%d rejected=%d corrupt=%d live-epochs=%d windows=%d\n",
			ts.Tenant, ts.Merged, ts.Duplicates, ts.Shed, ts.Rejected, ts.Corrupt,
			len(ts.Epochs), len(ts.Windows))
	}
	fmt.Printf("server conns: accepted=%d handshake-failures=%d\n",
		stats.Accepted, stats.HandshakeFailures)

	// The tenant's full time axis: retained (possibly folded) windows
	// plus the still-live frontier epoch, each a real merged profile.
	series := server.SeriesSnapshot("fleet")
	if series.Len() == 0 {
		log.Fatal("no series state for tenant fleet")
	}
	fmt.Println("\nper-window fleet summary:")
	for i := 0; i < series.Len(); i++ {
		p, span := series.At(i)
		fmt.Printf("  window %-5s %d runs, %d retired instructions\n",
			span, p.TotalRuns(), p.TotalMass())
	}

	// The trend scan over the newest three windows: the x87→AVX blend
	// shift must surface as monotonic vector-op risers and x87 fallers.
	rep, err := series.Trend(hbbp.TrendOptions{})
	if err != nil {
		log.Fatalf("trend: %v", err)
	}
	fmt.Println()
	fmt.Print(rep.Render(5))

	live := series.Merged()
	fmt.Printf("\nfleet aggregate: %d runs, %d distinct blocks, %d retired instructions\n",
		live.TotalRuns(), len(live.Blocks), live.TotalMass())
	tab := hbbp.StoredPivot(live)
	fmt.Println("fleet-wide instruction mix (top 5):")
	fmt.Print(hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(tab, 5)))
	fmt.Println()

	// The keystone invariant, verified the strong way and per window:
	// serialized bytes of each retained window against the offline
	// merge of exactly the confirmed profiles for its epochs, then the
	// whole series against the flat merge of everything confirmed.
	for i := 0; i < series.Len(); i++ {
		p, span := series.At(i)
		var window []*hbbp.StoredProfile
		for e := span.Start; e <= span.End; e++ {
			window = append(window, confirmed[e]...)
		}
		if !sameProfileBytes(p, hbbp.MergeProfiles(window...)) {
			log.Fatalf("window %s diverges from the offline merge of its epochs", span)
		}
	}
	var all []*hbbp.StoredProfile
	for _, c := range confirmed {
		all = append(all, c...)
	}
	match := sameProfileBytes(live, hbbp.MergeProfiles(all...))
	fmt.Printf("offline re-merge matches series aggregate (all %d windows checked): %v\n",
		series.Len(), match)
	if !match {
		log.Fatal("drop-accounting invariant violated")
	}

	// Everything the run did, as the telemetry layer saw it: ingest
	// outcomes per tenant, frame latencies, client retries, merge
	// kernel paths and series queries — one registry, stable order.
	fmt.Printf("\ntelemetry snapshot:\n%s", hbbp.RenderTelemetry(hbbp.TelemetrySnapshot()))
}

// sameProfileBytes compares two profiles the strong way: by their
// serialized bytes, the same form every cross-check in this repo pins.
func sameProfileBytes(a, b *hbbp.StoredProfile) bool {
	var ab, bb bytes.Buffer
	if err := hbbp.SaveProfile(&ab, a); err != nil {
		log.Fatal(err)
	}
	if err := hbbp.SaveProfile(&bb, b); err != nil {
		log.Fatal(err)
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}
