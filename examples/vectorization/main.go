// Vectorization study: diagnosing a compiler regression with
// instruction mixes — the paper's Fitter case study (Section VIII.C,
// Table 6), written against the public hbbp package.
//
// The Fitter track-fitting kernel exists in four builds: scalar (x87),
// SSE, AVX and a fixed AVX build. The AVX build from a beta compiler
// ran ~20x slower than expected. Time-based profilers say where the
// time goes, not how; the HBBP instruction mix shows that the number of
// executed vector instructions is NOT suspicious — but CALL counts are
// enormous, pointing at an inlining failure rather than bad AVX code
// generation.
//
// Run with:
//
//	go run ./examples/vectorization
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"hbbp"
)

func main() {
	ctx := context.Background()
	s, err := hbbp.New(hbbp.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fitter instruction mixes by build (HBBP, millions):")
	fmt.Printf("%-10s %10s %10s %10s %10s %12s\n",
		"build", "x87", "SSE", "AVX", "CALLs", "cycles/track")

	type rowT struct {
		x87, sse, avx, calls float64
		cyclesPerTrack       float64
		scale                float64
	}
	// The four builds are independent runs with their own seeds, so
	// they profile concurrently — a Session is safe for parallel
	// Profile calls — and the per-variant results are identical to a
	// sequential loop.
	variants := hbbp.FitterVariants()
	rows := make([]rowT, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		w, err := hbbp.Fitter(v)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			prof, err := s.Profile(ctx, w)
			if err != nil {
				log.Fatal(err)
			}
			mix := hbbp.InstructionMix(prof, hbbp.ViewOptions{LiveText: true})
			row := rowT{scale: float64(w.Scale) / 1e6}
			for op, n := range mix {
				switch op.Info().Ext {
				case hbbp.ExtX87:
					row.x87 += n
				case hbbp.ExtSSE:
					row.sse += n
				case hbbp.ExtAVX:
					row.avx += n
				}
				if op == hbbp.CALL {
					row.calls += n
				}
			}
			tracks := float64(w.Repeat * 400)
			row.cyclesPerTrack = float64(prof.Collection.Stats.Cycles) / tracks
			rows[i] = row
		}()
	}
	wg.Wait()
	for i, v := range variants {
		row := rows[i]
		fmt.Printf("%-10s %10.0f %10.0f %10.0f %10.0f %12.0f\n",
			v, row.x87*row.scale, row.sse*row.scale, row.avx*row.scale,
			row.calls*row.scale, row.cyclesPerTrack)
	}

	fmt.Println("\ndiagnosis:")
	byVariant := map[hbbp.FitterVariant]rowT{}
	for i, v := range variants {
		byVariant[v] = rows[i]
	}
	broken, fixed := byVariant[hbbp.FitterAVX], byVariant[hbbp.FitterAVXFix]
	avxRatio := broken.avx / fixed.avx
	callRatio := broken.calls / fixed.calls
	fmt.Printf("  AVX instruction volume, broken vs fixed build: %.1fx -> vector code generation is fine\n", avxRatio)
	fmt.Printf("  CALL volume, broken vs fixed build: %.0fx -> the inner kernels are not inlined\n", callRatio)
	fmt.Println("  => the regression is an inlining failure in the AVX path, not bad AVX emission —")
	fmt.Println("     the same conclusion the paper reached with HBBP before filing the compiler bug.")
}
