// Vectorization study: diagnosing a compiler regression with
// instruction mixes — the paper's Fitter case study (Section VIII.C,
// Table 6).
//
// The Fitter track-fitting kernel exists in four builds: scalar (x87),
// SSE, AVX and a fixed AVX build. The AVX build from a beta compiler
// ran ~20x slower than expected. Time-based profilers say where the
// time goes, not how; the HBBP instruction mix shows that the number of
// executed vector instructions is NOT suspicious — but CALL counts are
// enormous, pointing at an inlining failure rather than bad AVX code
// generation.
//
// Run with:
//
//	go run ./examples/vectorization
package main

import (
	"fmt"
	"log"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/isa"
	"hbbp/internal/workloads"
)

func main() {
	model := core.DefaultModel()
	fmt.Println("Fitter instruction mixes by build (HBBP, millions):")
	fmt.Printf("%-10s %10s %10s %10s %10s %12s\n",
		"build", "x87", "SSE", "AVX", "CALLs", "cycles/track")

	type rowT struct {
		avx, calls float64
	}
	rows := map[workloads.FitterVariant]rowT{}
	for _, v := range workloads.FitterVariants() {
		w := workloads.Fitter(v)
		prof, err := core.Run(w.Prog, w.Entry, model, core.Options{
			Collector: collector.Options{
				Class: w.Class, Scale: w.Scale, Seed: 7, Repeat: w.Repeat,
			},
			KernelLivePatched: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		mix := analyzer.Mix(w.Prog, prof.BBECs, analyzer.Options{LiveText: true})
		var x87, sse, avx, calls float64
		for op, n := range mix {
			switch op.Info().Ext {
			case isa.X87:
				x87 += n
			case isa.SSE:
				sse += n
			case isa.AVX:
				avx += n
			}
			if op == isa.CALL {
				calls += n
			}
		}
		scale := float64(w.Scale) / 1e6
		tracks := float64(w.Repeat * 400)
		cyclesPerTrack := float64(prof.Collection.Stats.Cycles) / tracks
		fmt.Printf("%-10s %10.0f %10.0f %10.0f %10.0f %12.0f\n",
			v, x87*scale, sse*scale, avx*scale, calls*scale, cyclesPerTrack)
		rows[v] = rowT{avx: avx, calls: calls}
	}

	fmt.Println("\ndiagnosis:")
	broken, fixed := rows[workloads.FitterAVX], rows[workloads.FitterAVXFix]
	avxRatio := broken.avx / fixed.avx
	callRatio := broken.calls / fixed.calls
	fmt.Printf("  AVX instruction volume, broken vs fixed build: %.1fx -> vector code generation is fine\n", avxRatio)
	fmt.Printf("  CALL volume, broken vs fixed build: %.0fx -> the inner kernels are not inlined\n", callRatio)
	fmt.Println("  => the regression is an inlining failure in the AVX path, not bad AVX emission —")
	fmt.Println("     the same conclusion the paper reached with HBBP before filing the compiler bug.")
}
