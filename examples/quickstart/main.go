// Quickstart: profile a workload with HBBP and print its instruction
// mix.
//
// This walks the library's happy path end to end: pick a workload,
// collect one run with the dual LBR-mode PMU configuration — every
// sample streaming straight into sinks, no intermediate file — let
// HBBP choose per basic block between the EBS and LBR estimates, and
// render the resulting dynamic instruction mix — then compare it
// against ground-truth software instrumentation attached to the same
// run.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/metrics"
	"hbbp/internal/perffile"
	"hbbp/internal/pivot"
	"hbbp/internal/program"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// ringCounter is a custom SampleSink: it watches the live sample
// stream and tallies PMIs by ring. Sinks observe every sample as it is
// captured — the streaming extension point of the collection pipeline.
type ringCounter struct {
	user, kernel uint64
}

func (c *ringCounter) Sample(s *perffile.Sample) {
	if program.Ring(s.Ring) == program.RingKernel {
		c.kernel++
	} else {
		c.user++
	}
}

func (c *ringCounter) Lost(perffile.Lost) {}

func main() {
	// 1. A workload: the Geant4-like Test40 simulation (short
	//    object-oriented methods — the hard case for plain EBS).
	w := workloads.Test40()
	fmt.Printf("workload: %s — %s\n", w.Name, w.Description)

	// 2. A model: the shipped rule from the paper (block length <= 18
	//    -> LBR, else EBS). Train your own with core.Train for the full
	//    Figure 1 pipeline.
	model := core.DefaultModel()
	fmt.Printf("model:    %s\n\n", model.Describe())

	// 3. Profile. The sde.Instrumenter rides along only to provide the
	//    ground truth for the accuracy report below; HBBP itself never
	//    needs it. The ringCounter sink taps the live sample stream —
	//    the same dispatch the built-in EBS and LBR sinks hang off.
	ref := sde.New(w.Prog)
	rings := &ringCounter{}
	prof, err := core.Run(w.Prog, w.Entry, model, core.Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: 42, Repeat: w.Repeat,
			Sinks: []collector.SampleSink{rings},
		},
		KernelLivePatched: true,
	}, ref)
	if err != nil {
		log.Fatal(err)
	}
	st := prof.Collection.Stats
	fmt.Printf("collected: %d EBS samples + %d LBR stacks over %d retirements (overhead %.2f%%)\n",
		len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
		st.Retired, (prof.Collection.OverheadFactor()-1)*100)
	fmt.Printf("custom sink saw %d user + %d kernel PMIs while the run streamed\n\n",
		rings.user, rings.kernel)

	// 4. The instruction mix, as a pivot view.
	tab := analyzer.BuildPivot(w.Prog, prof.BBECs, analyzer.Options{LiveText: true})
	fmt.Println("top 10 mnemonics (HBBP):")
	fmt.Print(pivot.Render([]string{"MNEMONIC"}, analyzer.TopMnemonics(tab, 10)))

	// 5. Accuracy against instrumentation, the paper's Section VI
	//    metric.
	refMix := analyzer.ToMix(ref.Mnemonics())
	opts := analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true}
	fmt.Printf("\navg weighted error vs instrumentation:\n")
	fmt.Printf("  HBBP: %.2f%%\n",
		100*metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.BBECs, opts)))
	fmt.Printf("  EBS:  %.2f%% (raw)\n",
		100*metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.EBS, opts)))
	fmt.Printf("  LBR:  %.2f%% (raw)\n",
		100*metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.LBR, opts)))
}
