// Quickstart: profile a workload with HBBP and print its instruction
// mix, using only the public hbbp package.
//
// This walks the library's happy path end to end: configure a Session
// with functional options, pick a workload, collect one run with the
// dual LBR-mode PMU configuration — every sample streaming straight
// into sinks, no intermediate file — let HBBP choose per basic block
// between the EBS and LBR estimates, and render the resulting dynamic
// instruction mix — then compare it against ground-truth software
// instrumentation attached to the same run.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hbbp"
)

// ringCounter is a custom SampleSink: it watches the live sample
// stream and tallies PMIs by ring. Sinks observe every sample as it is
// captured — the streaming extension point of the collection pipeline.
type ringCounter struct {
	user, kernel uint64
}

func (c *ringCounter) Sample(s *hbbp.Sample) {
	if hbbp.Ring(s.Ring) == hbbp.RingKernel {
		c.kernel++
	} else {
		c.user++
	}
}

func (c *ringCounter) Lost(hbbp.Lost) {}

func main() {
	ctx := context.Background()

	// 1. A workload: the Geant4-like Test40 simulation (short
	//    object-oriented methods — the hard case for plain EBS).
	w, err := hbbp.Test40()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n", w.Name, w.Description)

	// 2. A session: one options surface configures every layer. The
	//    ringCounter sink taps the live sample stream — the same
	//    dispatch the built-in EBS and LBR sinks hang off. The model
	//    defaults to the shipped rule from the paper (block length <=
	//    18 -> LBR, else EBS); call Session.Train for the full
	//    Figure 1 pipeline.
	rings := &ringCounter{}
	s, err := hbbp.New(
		hbbp.WithSeed(42),
		hbbp.WithSinks(rings),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:    %s\n\n", hbbp.DefaultModel().Describe())

	// 3. Profile. The Instrumenter rides along only to provide the
	//    ground truth for the accuracy report below; HBBP itself never
	//    needs it.
	ref := hbbp.NewInstrumenter(w.Prog)
	prof, err := s.Profile(ctx, w, ref)
	if err != nil {
		log.Fatal(err)
	}
	st := prof.Collection.Stats
	fmt.Printf("collected: %d EBS samples + %d LBR stacks over %d retirements (overhead %.2f%%)\n",
		len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
		st.Retired, (prof.Collection.OverheadFactor()-1)*100)
	fmt.Printf("custom sink saw %d user + %d kernel PMIs while the run streamed\n\n",
		rings.user, rings.kernel)

	// 4. The instruction mix, as a pivot view.
	tab := hbbp.Pivot(prof, hbbp.ViewOptions{LiveText: true})
	fmt.Println("top 10 mnemonics (HBBP):")
	fmt.Print(hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(tab, 10)))

	// 5. Accuracy against instrumentation, the paper's Section VI
	//    metric.
	refMix := hbbp.ReferenceMix(ref)
	opts := hbbp.ViewOptions{Scope: hbbp.ScopeUser, LiveText: true}
	fmt.Printf("\navg weighted error vs instrumentation:\n")
	fmt.Printf("  HBBP: %.2f%%\n",
		100*hbbp.AvgWeightedError(refMix, hbbp.InstructionMix(prof, opts)))
	fmt.Printf("  EBS:  %.2f%% (raw)\n",
		100*hbbp.AvgWeightedError(refMix, hbbp.MixFromBBECs(w.Prog, prof.EBS, opts)))
	fmt.Printf("  LBR:  %.2f%% (raw)\n",
		100*hbbp.AvgWeightedError(refMix, hbbp.MixFromBBECs(w.Prog, prof.LBR, opts)))
}
