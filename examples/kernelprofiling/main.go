// Kernel profiling: instruction mixes for ring-0 code — the coverage
// software instrumentation cannot provide (Section VIII.D, Table 7),
// written against the public hbbp package.
//
// The kernel-prime workload runs the same prime-search algorithm twice:
// as a user-space function (hello_u) and as a kernel-module function
// (hello_k) reached through a syscall. Pin/SDE-style instrumentation
// only sees the user copy. HBBP, built on PMU sampling, profiles both —
// and handles the kernel's self-modifying trace points by re-patching
// the static text from the live image before LBR analysis.
//
// Run with:
//
//	go run ./examples/kernelprofiling
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sort"

	"hbbp"
)

func main() {
	ctx := context.Background()
	w, err := hbbp.KernelPrime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n\n", w.Name, w.Description)

	// Instrumentation reference, faithfully user-mode only. The raw
	// output option captures the perf.data-like byte stream as it is
	// written, so the same collection can be re-analyzed from "disk"
	// below.
	var raw bytes.Buffer
	s, err := hbbp.New(
		hbbp.WithSeed(11),
		hbbp.WithRawOutput(&raw),
	)
	if err != nil {
		log.Fatal(err)
	}
	ref := hbbp.NewInstrumenter(w.Prog)
	prof, err := s.Profile(ctx, w, ref)
	if err != nil {
		log.Fatal(err)
	}
	st := prof.Collection.Stats
	fmt.Printf("retired: %d instructions, %d of them in ring 0\n",
		st.Retired, st.KernelRetired)
	fmt.Printf("SDE saw: %d instructions (user mode only)\n\n", ref.Instructions())

	// The three-way comparison of Table 7: SDE on hello_u, HBBP on
	// hello_u, HBBP on the kernel copy hello_k.
	sdeUser := hbbp.ReferenceMix(ref)
	hbbpUser := hbbp.InstructionMix(prof, hbbp.ViewOptions{
		Scope: hbbp.ScopeUser, LiveText: true, Function: "hello_u"})
	hbbpKernel := hbbp.InstructionMix(prof, hbbp.ViewOptions{
		Scope: hbbp.ScopeKernel, LiveText: true, Function: "hello_k"})

	var ops []hbbp.Op
	for op := range hbbpKernel {
		switch op.Info().Cat {
		case hbbp.CatCall, hbbp.CatReturn, hbbp.CatStack, hbbp.CatNop:
			continue
		}
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })

	fmt.Printf("%-10s %14s %14s %14s\n", "mnemonic",
		"SDE (user)", "HBBP (user)", "HBBP (kernel)")
	for _, op := range ops {
		fmt.Printf("%-10s %14.0f %14.0f %14.0f\n",
			op, sdeUser[op], hbbpUser[op], hbbpKernel[op])
	}
	fmt.Println("\nSDE's kernel column would be all zeros — it cannot see ring 0.")
	fmt.Println("HBBP's kernel counts agree with the user-mode ground truth because")
	fmt.Println("the two functions run the same algorithm.")

	// Bonus: the kernel module contains NOP-patched trace points; the
	// analyzer handled them by using the live text image.
	kmod := w.Prog.ModuleByName("hello.ko")
	static, _ := hbbp.Disassemble(kmod.Code, kmod.Base)
	live, _ := hbbp.Disassemble(kmod.LiveText(), kmod.Base)
	staticJmps, liveJmps := 0, 0
	for _, d := range static {
		if d.Op == hbbp.JMP {
			staticJmps++
		}
	}
	for _, d := range live {
		if d.Op == hbbp.JMP {
			liveJmps++
		}
	}
	fmt.Printf("\ntrace points: static hello.ko text has %d JMPs, live image %d —\n",
		staticJmps, liveJmps)
	fmt.Println("the analyzer re-patched the static text from the live kernel before")
	fmt.Println("walking LBR streams (Section III.C's remedy).")

	// Finally, the replay path: the raw stream captured above runs
	// through the same sinks the live collection dispatched to, and the
	// kernel-mode profile comes out identical — sampling is the data,
	// the file is just a transport.
	replayed, err := s.Replay(ctx, w, &raw)
	if err != nil {
		log.Fatal(err)
	}
	replayKernel := hbbp.InstructionMix(replayed, hbbp.ViewOptions{
		Scope: hbbp.ScopeKernel, LiveText: true, Function: "hello_k"})
	var liveTotal, replayTotal float64
	for _, n := range hbbpKernel {
		liveTotal += n
	}
	for _, n := range replayKernel {
		replayTotal += n
	}
	fmt.Printf("\nreplay from the serialized collection: kernel mix total %.0f (live %.0f) —\n",
		replayTotal, liveTotal)
	fmt.Println("streaming collection and perffile replay see the same samples.")
}
