package hbbp

import (
	"io"
	"time"

	"hbbp/internal/telemetry"
)

// The observability layer: every instrumented subsystem — the fleet
// ingest server and client, the time-series store, the profile merge
// kernel, the experiment harness — counts what it does into a
// telemetry registry. This file is the façade over that registry:
// grab the process-wide one with DefaultTelemetry, snapshot it
// programmatically with TelemetrySnapshot, serve it with
// WriteMetricsText (the Prometheus text format hbbpd's /metrics
// endpoint emits), and read the slow-operation log with SlowOps.
// Update paths are allocation-free atomics, so leaving the
// instrumentation on costs nothing measurable — the same premise the
// paper applies to profiling itself.

// Telemetry is a metrics registry: concurrency-safe counters, gauges
// and fixed-bucket histograms with allocation-free update paths,
// rendered in a stable order.
type Telemetry = telemetry.Registry

// MetricSnapshot is one time series in a telemetry snapshot.
type MetricSnapshot = telemetry.Metric

// MetricBucket is one cumulative histogram bucket in a MetricSnapshot.
type MetricBucket = telemetry.Bucket

// SlowOp is one recorded slow operation: what ran, how long it took,
// and operation context rendered at record time.
type SlowOp = telemetry.SlowEvent

// NewTelemetry returns an empty, private registry — for embedders
// that run several instrumented components side by side and want
// separate expositions (FleetServerConfig.Telemetry accepts one).
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// DefaultTelemetry returns the process-wide registry: the one
// package-level instrumentation (profile merges, time-series queries,
// harness runs) always writes to, and the one a server or client
// joins when its config leaves Telemetry nil (clients) or set to this
// registry (servers).
func DefaultTelemetry() *Telemetry { return telemetry.Default() }

// TelemetrySnapshot reads every metric in the process-wide registry
// in stable (name, labels) order. Each value is one atomic load; the
// snapshot is not a cross-metric transaction.
func TelemetrySnapshot() []MetricSnapshot { return telemetry.Default().Snapshot() }

// RenderTelemetry formats a snapshot as aligned human-readable lines,
// skipping zero-valued series — the final-summary form the example
// programs print.
func RenderTelemetry(snap []MetricSnapshot) string {
	return telemetry.Snapshot(snap).Render()
}

// WriteMetricsText writes the process-wide registry to w in the
// Prometheus text exposition format (version 0.0.4) — the bytes
// hbbpd's /metrics endpoint serves.
func WriteMetricsText(w io.Writer) error { return telemetry.Default().WriteProm(w) }

// SlowOps returns the process-wide slow-operation log's retained
// events, oldest first. Operations are recorded when they exceed the
// threshold (default 100ms) — see SetSlowOpThreshold.
func SlowOps() []SlowOp { return telemetry.Default().Slow().Events() }

// RenderSlowOps formats the process-wide slow-op log one event per
// line, oldest first — hbbpd's /slowops admin view.
func RenderSlowOps() string { return telemetry.Default().Slow().Render() }

// SetSlowOpThreshold replaces the process-wide slow-op gate; a
// non-positive d disables recording.
func SetSlowOpThreshold(d time.Duration) { telemetry.Default().Slow().SetThreshold(d) }
