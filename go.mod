module hbbp

go 1.24
