// Package hbbp is a Go reproduction of "Low-Overhead Dynamic
// Instruction Mix Generation using Hybrid Basic Block Profiling"
// (Nowak, Yasin, Szostek, Zwaenepoel — ISPASS 2018).
//
// The repository implements the paper's contribution — HBBP, a
// PMU-based method that produces dynamic instruction mixes by choosing
// per basic block between Event Based Sampling and Last Branch Record
// estimates with a learned classification-tree rule — together with
// every substrate the evaluation needs, simulated in pure Go: a
// synthetic x86-flavoured ISA and disassembler, a trace-driven CPU with
// user/kernel rings dispatching retirements at block granularity, a
// PMU model with skid, shadowing and the LBR entry[0] bias anomaly
// that consumes whole blocks between counter overflows, a
// software-instrumentation reference, a
// perf.data-like collection format with a streaming sink pipeline
// (samples dispatch straight to the estimators' sinks; serialization
// and replay are opt-in paths over the same interface), CART decision
// trees, a pivot-table analyzer, the benchmark workloads, and a
// harness regenerating every table and figure of the paper on a
// deterministic parallel scheduler.
//
// Start at internal/core for the HBBP algorithm, cmd/experiments to
// regenerate the evaluation, and examples/quickstart for the library's
// happy path. DESIGN.md maps the paper to the code; EXPERIMENTS.md
// records paper-vs-measured values.
package hbbp
