// Package hbbp is a Go reproduction of "Low-Overhead Dynamic
// Instruction Mix Generation using Hybrid Basic Block Profiling"
// (Nowak, Yasin, Szostek, Zwaenepoel — ISPASS 2018), exposed as a
// library.
//
// The repository implements the paper's contribution — HBBP, a
// PMU-based method that produces dynamic instruction mixes by choosing
// per basic block between Event Based Sampling and Last Branch Record
// estimates with a learned classification-tree rule — together with
// every substrate the evaluation needs, simulated in pure Go: a
// synthetic x86-flavoured ISA and disassembler, a trace-driven CPU with
// user/kernel rings dispatching retirements at block granularity, a
// PMU model with skid, shadowing and the LBR entry[0] bias anomaly, a
// software-instrumentation reference, a perf.data-like collection
// format with a streaming sink pipeline, CART decision trees, a
// pivot-table analyzer, the benchmark workloads, and a harness
// regenerating every table and figure of the paper on a deterministic
// parallel scheduler.
//
// # The public surface
//
// This root package is the library: everything under internal/ is an
// implementation detail, and the commands and examples consume only
// what is exported here (an import-boundary test enforces that). The
// entry point is a [Session], configured once with functional options
// and then used for any number of runs:
//
//	s, err := hbbp.New(hbbp.WithSeed(42))
//	...
//	prof, err := s.Profile(ctx, hbbp.Test40())
//
// [Session.Profile] runs a workload under the simulated PMU and
// returns a [Profile] with the hybrid per-block execution counts,
// both raw estimates and the per-block choices. [Session.Train]
// learns the classification-tree model on the training corpus
// (Figure 1's pipeline). [Session.Replay] re-analyzes a serialized
// collection stream written earlier via [WithRawOutput]. Experiment
// regeneration ([Session.RunExperiment], [Session.RunAllExperiments])
// reproduces the paper's tables and figures.
//
// All entry points take a [context.Context]; cancelling it stops
// collection runs, replay passes and the experiment worker pool
// promptly, returning an error that wraps ctx.Err(). A run that
// completes under a context is bit-identical to one run without:
// cancellation polls never perturb the simulation.
//
// Results are analyzed with [InstructionMix], [BuildPivot] and the
// view helpers ([TopMnemonics], [ExtBreakdown], ...), and scored with
// [AvgWeightedError] against a [NewInstrumenter] reference attached
// to the same run. Workloads live in a declarative registry:
// [Workloads] enumerates it with descriptions, [LookupWorkload]
// builds any entry by name (the named constructors [Test40],
// [KernelPrime], [Fitter], ... remain as shorthands), and callers
// author their own purely as data — a [ShapeSpec] compiled with
// [NewWorkload] or added to the registry with [RegisterWorkload].
//
// The fleet layer scales consumption past a single run: a profile
// captures into a mergeable [StoredProfile] ([CaptureProfile]) that
// persists in a versioned binary format ([SaveProfile], [LoadProfile]),
// merges exactly in any order or sharding ([MergeProfiles], or the
// concurrent lock-striped [Aggregator] with consistent snapshots), and
// compares across fleet mixes with [DiffProfiles], which flags per-op
// share regressions. [StoredPivot], [StoredBlockPivot] and [StoredMix]
// bring the standard views and metrics to merged fleet profiles.
//
// The ingest tier moves stored profiles across real networks: [Serve]
// runs the wire-protocol server (cmd/hbbpd is its deployable form) and
// [Dial] returns a retrying [FleetClient] whose sends are exactly-once
// despite resets, re-dials and duplicate deliveries. Overload degrades
// into counted refusals ([ErrOverloaded], per-tenant shed counters in
// [FleetServerStats]) — the server's aggregate always equals an
// offline [MergeProfiles] of exactly the acked profiles.
// [NewFlakyConn] and [NewFlakyListener] inject transport faults for
// testing; examples/fleet shows the whole loop under fire.
//
// The time axis makes that fleet history queryable without unbounded
// state: a [ProfileSeries] stores merged profiles per epoch, a
// [RetentionPolicy] ladder folds old epochs into coarser windows
// (losslessly — merging is exact, so any re-grouping equals the flat
// merge bit for bit), windowed queries merge any epoch range, and
// [ProfileSeries.Trend] flags ops and functions whose retirement share
// moves monotonically across consecutive windows. Servers roll
// completed epochs into a series online (FleetServerConfig.Retention),
// and [OpenSeries] reloads what [ProfileSeries.Save] persisted.
//
// The telemetry layer watches all of the above at production cost:
// every instrumented subsystem — ingest server and client, merge
// kernel, series store, experiment harness — counts into a [Telemetry]
// registry whose update paths are allocation-free atomics, cheap
// enough to leave on (the paper's premise, applied to the observer).
// [TelemetrySnapshot] reads it programmatically, [RenderTelemetry]
// formats the summary the bundled programs print on exit,
// [WriteMetricsText] emits the Prometheus text format served by
// hbbpd's opt-in -http admin endpoint (/metrics, /healthz with
// drain-aware 503s, /slowops, net/http/pprof), and [SlowOps] /
// [SetSlowOpThreshold] expose the threshold-gated slow-operation log.
// Embedders running several servers give each its own registry via
// [NewTelemetry] and FleetServerConfig.Telemetry.
//
// Determinism is the library's backbone: the same seed yields the same
// samples, the same trained model and the same rendered tables, at any
// parallelism, on the block-granularity fast path or the
// per-instruction reference path, live or replayed from disk — and the
// same ingested profiles yield the same merged fleet profile at any
// ingestion parallelism.
//
// Start at examples/quickstart for the library's happy path (the same
// flow is verified as Example functions in this package), cmd/hbbp to
// profile a workload from the command line, and cmd/experiments to
// regenerate the evaluation. DESIGN.md maps the paper to the code;
// EXPERIMENTS.md records paper-vs-measured values.
package hbbp
