// Command experiments regenerates the paper's tables and figures
// through the public hbbp library.
//
// Usage:
//
//	experiments [-experiment NAME] [-only NAMES] [-fast] [-seed N] [-parallel N]
//	            [-cpuprofile FILE] [-memprofile FILE]
//	experiments -list-workloads
//
// NAME is one of table1..table8, figure1..figure4, or "all" (default).
// -only takes a comma-separated subset (e.g. -only table1,figure2) and
// regenerates it through one shared collection plan: the union of runs
// the subset needs is collected exactly once, then every experiment
// renders from the shared results. -fast trims workload repeats for a
// quick smoke run; the numbers keep their shape but carry more
// sampling noise. -parallel bounds the worker pool evaluating
// independent runs (0 = all cores, 1 = sequential); the rendered
// numbers are identical at any setting — workload construction itself
// happens inside the worker pool, through the concurrency-safe spec
// registry. -list-workloads prints that registry (the workload set the
// experiments draw from) and exits.
//
// -cpuprofile FILE and -memprofile FILE write pprof profiles of the
// experiment run itself (go tool pprof reads them) — the knob used to
// find and verify the merge-kernel optimizations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hbbp"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(hbbp.ExperimentNames(), ", ")+", or all")
	only := flag.String("only", "",
		"comma-separated experiment subset sharing one collection plan (overrides -experiment)")
	fast := flag.Bool("fast", false, "reduced repeats for a quick run")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = sequential)")
	listWorkloads := flag.Bool("list-workloads", false, "list the workload registry and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live mass
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}()
	}

	if *listWorkloads {
		for _, info := range hbbp.Workloads() {
			fmt.Printf("%-22s %-24s %s\n", info.Name, info.Class, info.Description)
		}
		return
	}

	opts := []hbbp.Option{
		hbbp.WithSeed(*seed),
		hbbp.WithParallelism(*parallel),
		hbbp.WithExperimentOutput(os.Stdout),
	}
	if *fast {
		opts = append(opts, hbbp.WithFast(0))
	}
	s, err := hbbp.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	var names []string
	switch {
	case *only != "":
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	case *experiment == "all":
		names = hbbp.ExperimentNames()
	default:
		names = []string{*experiment}
	}

	ctx := context.Background()
	start := time.Now()
	report, err := s.RunExperiments(ctx, names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for _, t := range report.Experiments {
		fmt.Fprintf(os.Stderr, "%-10s %8v\n", t.Name, t.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "collected %d runs, reused %d (collection %v)\n",
		report.RunsCollected, report.RunsReused, report.CollectWall.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	// The run's telemetry: every non-zero counter and histogram the
	// instrumented layers (planner, merge kernel, series store)
	// accumulated, in stable order.
	if snap := hbbp.RenderTelemetry(hbbp.TelemetrySnapshot()); snap != "" {
		fmt.Fprintf(os.Stderr, "telemetry:\n%s", snap)
	}
}
