// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-experiment NAME] [-fast] [-seed N] [-parallel N]
//
// NAME is one of table1..table8, figure1..figure4, or "all" (default).
// -fast trims workload repeats for a quick smoke run; the numbers keep
// their shape but carry more sampling noise. -parallel bounds the
// worker pool evaluating independent runs (0 = all cores, 1 =
// sequential); the rendered numbers are identical at any setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hbbp/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(harness.ExperimentNames(), ", ")+", or all")
	fast := flag.Bool("fast", false, "reduced repeats for a quick run")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = sequential)")
	flag.Parse()

	r := harness.New(harness.Config{
		Out:         os.Stdout,
		Fast:        *fast,
		Seed:        *seed,
		Parallelism: *parallel,
	})

	start := time.Now()
	var err error
	if *experiment == "all" {
		err = r.RunAll()
	} else {
		err = r.Run(*experiment)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
