// Command experiments regenerates the paper's tables and figures
// through the public hbbp library.
//
// Usage:
//
//	experiments [-experiment NAME] [-fast] [-seed N] [-parallel N]
//	experiments -list-workloads
//
// NAME is one of table1..table8, figure1..figure4, or "all" (default).
// -fast trims workload repeats for a quick smoke run; the numbers keep
// their shape but carry more sampling noise. -parallel bounds the
// worker pool evaluating independent runs (0 = all cores, 1 =
// sequential); the rendered numbers are identical at any setting —
// workload construction itself now happens inside the worker pool,
// through the concurrency-safe spec registry. -list-workloads prints
// that registry (the workload set the experiments draw from) and
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hbbp"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(hbbp.ExperimentNames(), ", ")+", or all")
	fast := flag.Bool("fast", false, "reduced repeats for a quick run")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = sequential)")
	listWorkloads := flag.Bool("list-workloads", false, "list the workload registry and exit")
	flag.Parse()

	if *listWorkloads {
		for _, info := range hbbp.Workloads() {
			fmt.Printf("%-22s %-24s %s\n", info.Name, info.Class, info.Description)
		}
		return
	}

	opts := []hbbp.Option{
		hbbp.WithSeed(*seed),
		hbbp.WithParallelism(*parallel),
		hbbp.WithExperimentOutput(os.Stdout),
	}
	if *fast {
		opts = append(opts, hbbp.WithFast(0))
	}
	s, err := hbbp.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	ctx := context.Background()
	start := time.Now()
	if *experiment == "all" {
		err = s.RunAllExperiments(ctx)
	} else {
		err = s.RunExperiment(ctx, *experiment)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
