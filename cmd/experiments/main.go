// Command experiments regenerates the paper's tables and figures
// through the public hbbp library.
//
// Usage:
//
//	experiments [-experiment NAME] [-only NAMES] [-fast] [-seed N] [-parallel N]
//	experiments -list-workloads
//
// NAME is one of table1..table8, figure1..figure4, or "all" (default).
// -only takes a comma-separated subset (e.g. -only table1,figure2) and
// regenerates it through one shared collection plan: the union of runs
// the subset needs is collected exactly once, then every experiment
// renders from the shared results. -fast trims workload repeats for a
// quick smoke run; the numbers keep their shape but carry more
// sampling noise. -parallel bounds the worker pool evaluating
// independent runs (0 = all cores, 1 = sequential); the rendered
// numbers are identical at any setting — workload construction itself
// happens inside the worker pool, through the concurrency-safe spec
// registry. -list-workloads prints that registry (the workload set the
// experiments draw from) and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hbbp"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(hbbp.ExperimentNames(), ", ")+", or all")
	only := flag.String("only", "",
		"comma-separated experiment subset sharing one collection plan (overrides -experiment)")
	fast := flag.Bool("fast", false, "reduced repeats for a quick run")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = sequential)")
	listWorkloads := flag.Bool("list-workloads", false, "list the workload registry and exit")
	flag.Parse()

	if *listWorkloads {
		for _, info := range hbbp.Workloads() {
			fmt.Printf("%-22s %-24s %s\n", info.Name, info.Class, info.Description)
		}
		return
	}

	opts := []hbbp.Option{
		hbbp.WithSeed(*seed),
		hbbp.WithParallelism(*parallel),
		hbbp.WithExperimentOutput(os.Stdout),
	}
	if *fast {
		opts = append(opts, hbbp.WithFast(0))
	}
	s, err := hbbp.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	var names []string
	switch {
	case *only != "":
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	case *experiment == "all":
		names = hbbp.ExperimentNames()
	default:
		names = []string{*experiment}
	}

	ctx := context.Background()
	start := time.Now()
	report, err := s.RunExperiments(ctx, names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for _, t := range report.Experiments {
		fmt.Fprintf(os.Stderr, "%-10s %8v\n", t.Name, t.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "collected %d runs, reused %d (collection %v)\n",
		report.RunsCollected, report.RunsReused, report.CollectWall.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
