package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hbbp"
)

// syncBuffer is a bytes.Buffer safe for the daemon goroutine and the
// test to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on ([0-9.:\[\]]+)\n`)

// startDaemon runs the daemon on an ephemeral port and returns its
// address, output buffers, the cancel that triggers shutdown, and a
// channel carrying the exit code.
func startDaemon(t *testing.T, extra ...string) (addr string, stdout, stderr *syncBuffer, stop func(), exited <-chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr = &syncBuffer{}, &syncBuffer{}
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-listen", "127.0.0.1:0"}, extra...), stdout, stderr)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], stdout, stderr, cancel, code
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never printed its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sendProfiles delivers n deterministic profiles as one agent and
// returns them.
func sendProfiles(t *testing.T, addr, tenant, agent string, epoch uint64, n int) []*hbbp.StoredProfile {
	t.Helper()
	ctx := context.Background()
	c, err := hbbp.Dial(ctx, addr, hbbp.FleetClientConfig{Tenant: tenant, Agent: agent})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(42))
	var sent []*hbbp.StoredProfile
	for i := 0; i < n; i++ {
		p := &hbbp.StoredProfile{
			Workloads: []hbbp.WorkloadWeight{{Name: "gcc", Runs: 1}},
			Ops: []hbbp.OpMass{
				{Mnemonic: "add", Ring: 3, Mass: uint64(1 + rng.Intn(1000))},
				{Mnemonic: "mov", Ring: 3, Mass: uint64(1 + rng.Intn(1000))},
			},
		}
		if err := c.Send(ctx, epoch, p); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		sent = append(sent, p)
	}
	return sent
}

// TestDaemonIngestAndGracefulExit drives the daemon end to end: serve
// on an ephemeral port, ingest real profiles over the wire, shut down
// via context (the signal path), and check the exit code, the
// accounting summary and the atomically saved aggregates.
func TestDaemonIngestAndGracefulExit(t *testing.T) {
	dir := t.TempDir()
	addr, stdout, stderr, stop, exited := startDaemon(t, "-save-dir", dir)
	sent := sendProfiles(t, addr, "acme", "host-1", 3, 4)

	stop()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code = %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not exit; stderr:\n%s", stderr.String())
	}

	out := stdout.String()
	if !strings.Contains(out, "tenant acme: merged=4 batches=0 duplicates=0 shed=0 rejected=0 corrupt=0 epochs=1") {
		t.Errorf("final summary wrong:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "draining in-flight ingests") {
		t.Errorf("no drain message:\n%s", stderr.String())
	}

	// The saved aggregate must load and equal the offline merge.
	path := filepath.Join(dir, "acme-epoch3.hbbprof")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("saved aggregate missing: %v", err)
	}
	defer f.Close()
	got, err := hbbp.LoadProfile(f)
	if err != nil {
		t.Fatalf("saved aggregate does not load: %v", err)
	}
	var a, b bytes.Buffer
	if err := hbbp.SaveProfile(&a, got); err != nil {
		t.Fatal(err)
	}
	if err := hbbp.SaveProfile(&b, hbbp.MergeProfiles(sent...)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("saved aggregate diverges from offline merge of the sent profiles")
	}
	// No temp debris from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".hbbprof-") {
			t.Errorf("atomic write left temp file %s", e.Name())
		}
	}
}

// TestDaemonSaveDirValidatedUpFront pins that a bad -save-dir fails
// before serving, with an actionable message.
func TestDaemonSaveDirValidatedUpFront(t *testing.T) {
	var stdout, stderr syncBuffer
	code := run(context.Background(), []string{"-listen", "127.0.0.1:0",
		"-save-dir", filepath.Join(t.TempDir(), "missing")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-save-dir") {
		t.Fatalf("error does not name the flag:\n%s", stderr.String())
	}

	// A file where a directory should be is equally fatal.
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr = syncBuffer{}
	code = run(context.Background(), []string{"-listen", "127.0.0.1:0", "-save-dir", file}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "not a directory") {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
}

// TestDaemonBadListenAddr pins the listen failure path.
func TestDaemonBadListenAddr(t *testing.T) {
	var stdout, stderr syncBuffer
	code := run(context.Background(), []string{"-listen", "256.0.0.1:bogus"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Fatalf("error not actionable:\n%s", stderr.String())
	}
}

// TestDaemonStatsEvery pins the periodic accounting snapshot.
func TestDaemonStatsEvery(t *testing.T) {
	addr, _, stderr, stop, exited := startDaemon(t, "-stats-every", "30ms")
	sendProfiles(t, addr, "acme", "host-1", 1, 2)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(stderr.String(), "tenant acme: merged=2") {
		if time.Now().After(deadline) {
			t.Fatalf("no periodic stats line; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	<-exited
}

// TestDaemonUsageError pins flag errors exit 2 without serving.
func TestDaemonUsageError(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
