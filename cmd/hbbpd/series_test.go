package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hbbp"
)

// TestDaemonRetainRollsAndSavesSeries drives the daemon's time axis
// end to end: with -retain, profiles spanning many epochs roll out of
// live aggregators into a bounded series (the stats line shows few
// live epochs plus retained windows), and shutdown saves a series
// directory whose merged content is bit-identical to the offline flat
// merge of everything acked — folds included.
func TestDaemonRetainRollsAndSavesSeries(t *testing.T) {
	saveDir := t.TempDir()
	addr, stdout, stderr, stop, exited := startDaemon(t,
		"-retain", "1:2,4:0", "-save-dir", saveDir)

	var sent []*hbbp.StoredProfile
	for epoch := uint64(0); epoch < 12; epoch++ {
		sent = append(sent, sendProfiles(t, addr, "acme", "agent-1", epoch, 2)...)
	}

	stop()
	if code := <-exited; code != 0 {
		t.Fatalf("daemon exited %d; stderr:\n%s", code, stderr.String())
	}

	// The final stats line proves bounded memory: live epochs stay at
	// the lag frontier while history lives in retained windows.
	out := stdout.String()
	if !strings.Contains(out, "windows=") {
		t.Fatalf("final stats carry no retained-window count:\n%s", out)
	}
	if strings.Contains(out, "epochs=12") {
		t.Fatalf("all 12 epochs still live; rolling never happened:\n%s", out)
	}

	// The saved series is the whole story: offline flat merge equality.
	sdir := filepath.Join(saveDir, "acme.series")
	if !strings.Contains(stderr.String(), "saved acme series") {
		t.Fatalf("no series save confirmation:\n%s", stderr.String())
	}
	series, err := hbbp.OpenSeries(sdir)
	if err != nil {
		t.Fatalf("reopening saved series: %v", err)
	}
	lo, hi, ok := series.Bounds()
	if !ok || lo != 0 || hi != 11 {
		t.Fatalf("series bounds = %d-%d (%v), want 0-11", lo, hi, ok)
	}
	if series.Len() >= 12 {
		t.Fatalf("series retains %d windows over 12 epochs; the ladder folded nothing", series.Len())
	}
	var got, want bytes.Buffer
	if err := hbbp.SaveProfile(&got, series.Merged()); err != nil {
		t.Fatal(err)
	}
	if err := hbbp.SaveProfile(&want, hbbp.MergeProfiles(sent...)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("saved series diverges from offline flat merge of the acked profiles")
	}
}

// TestDaemonRetainBadSpecFailsFast pins the usage contract: a
// malformed ladder is refused before the listener opens.
func TestDaemonRetainBadSpecFailsFast(t *testing.T) {
	var stdout, stderr syncBuffer
	code := run(t.Context(), []string{"-listen", "127.0.0.1:0", "-retain", "4:4"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("bad -retain exited %d, want 2; stderr:\n%s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "listening on") {
		t.Fatalf("daemon started serving before validating -retain:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "-retain") {
		t.Fatalf("message does not name the flag:\n%s", stderr.String())
	}
}
