// Command hbbpd is the fleet ingest daemon: it serves the hbbp wire
// protocol, merging stored profiles sent by agents (hbbp.Dial /
// examples/fleet) into per-tenant, per-epoch aggregates with exact
// drop accounting. It is a thin shell over the public hbbp library.
//
// Usage:
//
//	hbbpd [-listen ADDR] [-http ADDR] [-queue N] [-workers N]
//	      [-max-frame BYTES] [-enqueue-wait D] [-read-timeout D]
//	      [-write-timeout D] [-stats-every D] [-save-dir DIR]
//	      [-drain-timeout D] [-drain-grace D] [-retain SPEC]
//	      [-epoch-lag N]
//
// With -http, the daemon also serves an admin endpoint: /metrics in
// the Prometheus text format (every counter the accounting lines are
// rendered from, plus latency histograms, queue gauges and client
// metrics — one registry is the single source of truth), /healthz
// (200 while serving, 503 once shutdown begins), /slowops (the
// threshold-gated slow-operation log) and the standard /debug/pprof
// profiles. On a shutdown signal the daemon flips /healthz to 503,
// waits -drain-grace (the load-balancer deregistration window; 0 by
// default), then drains.
//
// The daemon prints "listening on ADDR" once the socket is open (with
// -listen :0 this is how the chosen port is discovered), serves until
// SIGINT/SIGTERM, then shuts down gracefully: in-flight profiles
// already admitted to the ingest queue are merged and acked before
// connections close, bounded by -drain-timeout. On exit it prints one
// accounting line per tenant — merged, duplicates, shed, rejected,
// corrupt — and, when -save-dir is set, writes each tenant/epoch
// aggregate as a stored profile (atomically: temp file plus rename,
// so a full disk or a crash never leaves a truncated profile behind).
//
// Overload behavior is explicit: when the bounded ingest queue stays
// full past -enqueue-wait, the server refuses the profile with a
// retryable overload nack and counts the shed against the tenant;
// nothing is dropped silently and memory stays bounded.
//
// With -retain, the daemon also bounds its memory along the time
// axis: completed epochs (those -epoch-lag behind a tenant's newest)
// roll out of their live aggregators into a per-tenant profile series
// downsampled by the given ladder — e.g. "1:8,4:4,16:0" keeps the
// last 8 epochs raw, the 16 before those at 4 epochs per window, and
// everything older at 16. Rolling is lossless: windowed queries over
// the series merge bit-identical to the flat merge of the acked
// profiles. On shutdown with -save-dir, each tenant's series is saved
// to DIR/TENANT.series/ (readable by hbbp -series); without -retain
// the historical per-epoch profile files are written instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"hbbp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, returning the process
// exit code so tests can drive the daemon without exec. Cancelling
// ctx triggers the same graceful shutdown a signal does.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbbpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7690", "address to serve the fleet wire protocol on (use :0 for an ephemeral port)")
	httpAddr := fs.String("http", "", "serve the admin endpoint (/metrics, /healthz, /slowops, /debug/pprof) on this address (empty = off)")
	drainGrace := fs.Duration("drain-grace", 0, "after a shutdown signal, keep serving with /healthz at 503 this long before draining (the LB deregistration window)")
	queue := fs.Int("queue", 0, "ingest queue depth (0 = default)")
	workers := fs.Int("workers", 0, "ingest worker goroutines (0 = GOMAXPROCS)")
	maxFrame := fs.Int("max-frame", 0, "largest accepted wire frame in bytes (0 = default 16MiB)")
	enqueueWait := fs.Duration("enqueue-wait", 0, "backpressure window before shedding on a full queue (0 = default 50ms)")
	readTimeout := fs.Duration("read-timeout", 0, "per-frame read deadline (0 = default 30s)")
	writeTimeout := fs.Duration("write-timeout", 0, "per-frame write deadline (0 = default 10s)")
	statsEvery := fs.Duration("stats-every", 0, "print an accounting snapshot this often (0 = only at exit)")
	saveDir := fs.String("save-dir", "", "write each tenant/epoch aggregate (or, with -retain, each tenant's series) to this directory on shutdown")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight ingests to drain")
	retain := fs.String("retain", "", "roll completed epochs into a downsampled series by this WIDTH:KEEP,... ladder (e.g. 1:8,4:4,16:0; \"default\" = "+hbbp.DefaultRetention().String()+"); empty keeps every epoch live")
	epochLag := fs.Uint64("epoch-lag", 1, "epochs behind a tenant's newest before an epoch is considered complete and rolled (with -retain)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var retention hbbp.RetentionPolicy
	if *retain == "default" {
		retention = hbbp.DefaultRetention()
	} else if *retain != "" {
		var err error
		if retention, err = hbbp.ParseRetention(*retain); err != nil {
			fmt.Fprintf(stderr, "hbbpd: -retain: %v\n", err)
			return 2
		}
	}

	if *saveDir != "" {
		// Fail before serving, not after a day of ingestion.
		if info, err := os.Stat(*saveDir); err != nil {
			fmt.Fprintf(stderr, "hbbpd: -save-dir %s: %v\n", *saveDir, err)
			return 1
		} else if !info.IsDir() {
			fmt.Fprintf(stderr, "hbbpd: -save-dir %s is not a directory\n", *saveDir)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "hbbpd: listen %s: %v\n", *listen, err)
		return 1
	}
	reg := hbbp.NewTelemetry()
	s := hbbp.Serve(ln, hbbp.FleetServerConfig{
		Queue:        *queue,
		Workers:      *workers,
		MaxFrame:     *maxFrame,
		EnqueueWait:  *enqueueWait,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		Retention:    retention,
		EpochLag:     *epochLag,
		// A registry per run keeps a daemon's ledgers distinct from
		// any other server in the process (the in-process tests run
		// several); /metrics serves this registry plus the
		// process-wide one, so the exposition still covers the
		// package-level instrumentation (merge kernels, series
		// queries) the daemon's ingestion drives.
		Telemetry: reg,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		},
	})
	fmt.Fprintf(stderr, "hbbpd: listening on %s\n", s.Addr())

	// draining gates /healthz: it flips the instant a shutdown signal
	// arrives, -drain-grace before connections actually drain, so a
	// load balancer polling /healthz stops routing new agents while
	// the daemon still answers the ones it has.
	var draining atomic.Bool
	if *httpAddr != "" {
		adminLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "hbbpd: admin listen %s: %v\n", *httpAddr, err)
			return 1
		}
		admin := &http.Server{Handler: adminMux(reg, &draining)}
		go admin.Serve(adminLn)
		defer admin.Close()
		fmt.Fprintf(stderr, "hbbpd: admin endpoint on %s\n", adminLn.Addr())
	}

	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					printStats(stderr, s.Stats())
				}
			}
		}()
	}

	<-ctx.Done()
	draining.Store(true)
	if *drainGrace > 0 {
		fmt.Fprintf(stderr, "hbbpd: shutdown signaled, /healthz now 503, draining in %s\n", *drainGrace)
		time.Sleep(*drainGrace)
	}
	fmt.Fprintln(stderr, "hbbpd: shutting down, draining in-flight ingests")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := s.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "hbbpd: drain incomplete after %s: %v\n", *drainTimeout, err)
		code = 1
	}

	stats := s.Stats()
	printStats(stdout, stats)
	if *saveDir != "" {
		var err error
		if len(retention.Levels) > 0 {
			err = saveSeries(s, stats, *saveDir, stderr)
		} else {
			err = saveSnapshots(s, stats, *saveDir, stderr)
		}
		if err != nil {
			fmt.Fprintf(stderr, "hbbpd: %v\n", err)
			code = 1
		}
	}
	return code
}

// adminMux builds the admin endpoint: the Prometheus exposition, a
// drain-aware health check, the slow-op log and the standard pprof
// profiles. /metrics concatenates the daemon's registry (the storage
// the accounting lines are rendered from) with the process-wide one
// (package-level instrumentation the ingestion drives); their family
// names are disjoint, so the result is one well-formed exposition.
func adminMux(reg *hbbp.Telemetry, draining *atomic.Bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := hbbp.WriteMetricsText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/slowops", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, reg.Slow().Render())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// printStats writes one accounting line per tenant plus a connection
// summary — the human-readable form of the drop ledger.
func printStats(w io.Writer, st hbbp.FleetServerStats) {
	io.WriteString(w, formatStats(st))
}

// formatStats renders the accounting snapshot. Every number is read
// from the process-wide telemetry registry through Stats() — the same
// storage /metrics exposes — so the lines and the exposition can
// never disagree. The format is pinned by a golden test.
func formatStats(st hbbp.FleetServerStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns: accepted=%d active=%d handshake-failures=%d\n",
		st.Accepted, st.ActiveConns, st.HandshakeFailures)
	for _, ts := range st.Tenants {
		fmt.Fprintf(&b, "tenant %s: merged=%d batches=%d duplicates=%d shed=%d rejected=%d corrupt=%d epochs=%d",
			ts.Tenant, ts.Merged, ts.Batches, ts.Duplicates, ts.Shed, ts.Rejected, ts.Corrupt, len(ts.Epochs))
		if len(ts.Windows) > 0 {
			fmt.Fprintf(&b, " windows=%d", len(ts.Windows))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// saveSnapshots writes every tenant/epoch aggregate to dir, each via
// an atomic temp-file-plus-rename so no partial profile can survive a
// failure. Stats() already reports tenants and epochs sorted (the
// fleetserver tests pin that), so the walk is deterministic as-is.
// The first error aborts the walk.
func saveSnapshots(s *hbbp.FleetServer, st hbbp.FleetServerStats, dir string, stderr io.Writer) error {
	for _, ts := range st.Tenants {
		for _, epoch := range ts.Epochs {
			p := s.Snapshot(ts.Tenant, epoch)
			if p == nil {
				continue
			}
			path := filepath.Join(dir, fmt.Sprintf("%s-epoch%d.hbbprof", safeName(ts.Tenant), epoch))
			if err := writeProfileAtomic(path, p); err != nil {
				return fmt.Errorf("saving %s: %w", path, err)
			}
			fmt.Fprintf(stderr, "hbbpd: saved %s/%d to %s\n", ts.Tenant, epoch, path)
		}
	}
	return nil
}

// saveSeries writes each tenant's full time axis — rolled windows
// plus still-live epochs — as a series directory under dir, readable
// by hbbp -series. The series' own save path is atomic per file with
// the index written last, so a crash leaves a consistent store.
func saveSeries(s *hbbp.FleetServer, st hbbp.FleetServerStats, dir string, stderr io.Writer) error {
	for _, ts := range st.Tenants {
		series := s.SeriesSnapshot(ts.Tenant)
		if series.Len() == 0 {
			continue
		}
		sdir := filepath.Join(dir, safeName(ts.Tenant)+".series")
		if err := series.Save(sdir); err != nil {
			return fmt.Errorf("saving series for %s: %w", ts.Tenant, err)
		}
		lo, hi, _ := series.Bounds()
		fmt.Fprintf(stderr, "hbbpd: saved %s series (%d windows, epochs %d-%d) to %s\n",
			ts.Tenant, series.Len(), lo, hi, sdir)
	}
	return nil
}

// safeName maps a tenant name to a filesystem-safe file stem.
func safeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// writeProfileAtomic stores a profile at path via a same-directory
// temp file and rename: readers see either the old file or the
// complete new one, never a truncated write.
func writeProfileAtomic(path string, p *hbbp.StoredProfile) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hbbprof-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := hbbp.SaveProfile(tmp, p); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
