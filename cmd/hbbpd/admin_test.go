package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"hbbp"
)

var adminLine = regexp.MustCompile(`admin endpoint on ([0-9.:\[\]]+)\n`)

// adminAddr extracts the admin endpoint address the daemon printed.
func adminAddr(t *testing.T, stderr *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := adminLine.FindStringSubmatch(stderr.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed the admin address; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// get fetches one admin URL, returning status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoint drives the whole admin surface in-process: a
// parsing /metrics exposition whose counters match what was ingested,
// a healthy /healthz that flips to 503 the moment shutdown begins
// (inside the -drain-grace window), /slowops, and live pprof.
func TestAdminEndpoint(t *testing.T) {
	addr, _, stderr, stop, exited := startDaemon(t, "-http", "127.0.0.1:0", "-drain-grace", "1s")
	base := "http://" + adminAddr(t, stderr)

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	sendProfiles(t, addr, "acme", "host-1", 1, 3)

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	wantSample := `hbbp_fleetserver_profiles_total{tenant="acme",outcome="merged"} 3`
	if !strings.Contains(body, wantSample) {
		t.Errorf("/metrics missing %q:\n%s", wantSample, body)
	}
	for _, family := range []string{
		"# TYPE hbbp_fleetserver_profiles_total counter",
		"# TYPE hbbp_fleetserver_ingest_seconds histogram",
		"# TYPE hbbp_fleetserver_queue_depth gauge",
		"# TYPE hbbp_fleetserver_connections_total counter",
		"# TYPE hbbp_profstore_merge_total counter", // process-wide section
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	if problems := lintMetrics(body); len(problems) > 0 {
		t.Errorf("/metrics does not parse: %v", problems)
	}

	if code, body := get(t, base+"/slowops"); code != http.StatusOK || !strings.Contains(body, "no operations over") {
		t.Errorf("/slowops = %d %q", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body misses goroutine profile", code)
	}

	// Shutdown: /healthz flips to 503 during the drain-grace window,
	// then the daemon exits cleanly.
	stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := get(t, base+"/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "draining") {
				t.Errorf("/healthz body = %q, want draining", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never flipped to 503; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code = %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not exit; stderr:\n%s", stderr.String())
	}
}

// lintMetrics is a minimal structural check of the Prometheus text
// format, deliberately duplicated from the telemetry package's test
// helper: the import-boundary rule keeps commands off internal
// packages, and an admin endpoint needs its own proof that the bytes
// it serves parse.
func lintMetrics(body string) []string {
	var problems []string
	typed := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 4 && f[1] == "TYPE" {
				typed[f[2]] = true
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			problems = append(problems, "no # TYPE for: "+line)
			continue
		}
		f := strings.Fields(line)
		val := f[len(f)-1]
		if val != "+Inf" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				problems = append(problems, "bad value: "+line)
			}
		}
	}
	return problems
}

// TestNoAdminFlagServesNothing pins that the admin endpoint is opt-in:
// without -http the daemon never prints an admin address.
func TestNoAdminFlagServesNothing(t *testing.T) {
	_, _, stderr, stop, exited := startDaemon(t)
	stop()
	<-exited
	if adminLine.MatchString(stderr.String()) {
		t.Errorf("daemon advertised an admin endpoint without -http:\n%s", stderr.String())
	}
}

// TestStatsGolden pins the accounting line format — the bytes
// operators grep — against a committed fixture.
func TestStatsGolden(t *testing.T) {
	st := hbbp.FleetServerStats{
		Accepted:          7,
		HandshakeFailures: 1,
		ActiveConns:       2,
		Tenants: []hbbp.FleetTenantStats{
			{Tenant: "acme", Merged: 41, Batches: 3, Duplicates: 2, Shed: 5,
				Rejected: 1, Corrupt: 4, Epochs: []uint64{1, 2}},
			{Tenant: "globex", Merged: 9, Epochs: []uint64{1},
				Windows: []hbbp.SeriesSpan{{Start: 0, End: 3}, {Start: 4, End: 4}}},
		},
	}
	got := formatStats(st)
	path := filepath.Join("testdata", "golden_stats.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	if got != string(want) {
		t.Errorf("stats format diverged from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
