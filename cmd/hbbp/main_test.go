package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestUnknownWorkloadExitsNonZero covers the CLI contract for a
// mistyped workload name: a non-zero (usage) exit code and a message
// that lists the available workloads so the user can correct the
// invocation without a second round trip.
func TestUnknownWorkloadExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "no-such-workload"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unknown workload exited 0; stderr:\n%s", stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "no-such-workload") {
		t.Errorf("message does not echo the bad name:\n%s", msg)
	}
	for _, name := range []string{"test40", "kernel-prime", "gcc", "povray"} {
		if !strings.Contains(msg, name) {
			t.Errorf("message does not list available workload %q:\n%s", name, msg)
		}
	}
	if !strings.Contains(msg, "usage:") {
		t.Errorf("message carries no usage line:\n%s", msg)
	}
}

// TestUnknownViewFailsFast asserts a mistyped view name is rejected
// before any collection work runs (no profiling banner on stderr).
func TestUnknownViewFailsFast(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "test40", "-view", "extt"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unknown view exited 0; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown view") {
		t.Errorf("message does not name the problem:\n%s", stderr.String())
	}
	if strings.Contains(stderr.String(), "profiling") {
		t.Errorf("collection ran before the view was validated:\n%s", stderr.String())
	}
}

// TestHelpExitsZero pins the conventional CLI contract: asking for
// help is not a failure.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-workload") {
		t.Errorf("-h printed no flag usage:\n%s", stderr.String())
	}
}

// TestListWorkloads pins the -list escape hatch the usage message
// points at.
func TestListWorkloads(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d; stderr:\n%s", code, stderr.String())
	}
	for _, name := range []string{"test40", "hydro-post", "fitter-avxfix"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}
