package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestUnknownWorkloadExitsNonZero covers the CLI contract for a
// mistyped workload name: a non-zero (usage) exit code and a message
// that points the user at -list so they can correct the invocation
// without a second round trip.
func TestUnknownWorkloadExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "no-such-workload"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unknown workload exited 0; stderr:\n%s", stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "no-such-workload") {
		t.Errorf("message does not echo the bad name:\n%s", msg)
	}
	if !strings.Contains(msg, "-list") {
		t.Errorf("message does not suggest -list:\n%s", msg)
	}
	if !strings.Contains(msg, "usage:") {
		t.Errorf("message carries no usage line:\n%s", msg)
	}
}

// TestUnknownViewFailsFast asserts a mistyped view name is rejected
// before any collection work runs (no profiling banner on stderr).
func TestUnknownViewFailsFast(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "test40", "-view", "extt"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unknown view exited 0; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown view") {
		t.Errorf("message does not name the problem:\n%s", stderr.String())
	}
	if strings.Contains(stderr.String(), "profiling") {
		t.Errorf("collection ran before the view was validated:\n%s", stderr.String())
	}
}

// TestHelpExitsZero pins the conventional CLI contract: asking for
// help is not a failure.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-workload") {
		t.Errorf("-h printed no flag usage:\n%s", stderr.String())
	}
}

// TestListWorkloads pins the -list escape hatch the unknown-workload
// message points at: one line per registry entry carrying name,
// runtime class and description, in sorted name order.
func TestListWorkloads(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{
		"test40", "hydro-post", "fitter-avxfix",
		"pointer-chase", "phase-alternating", "megamorphic-branchy", "callgraph-deep",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("-list printed only %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "WORKLOAD") || !strings.Contains(lines[0], "CLASS") ||
		!strings.Contains(lines[0], "DESCRIPTION") {
		t.Errorf("-list header missing columns: %q", lines[0])
	}
	var names []string
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Errorf("-list row %q has no class/description columns", line)
			continue
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list rows not sorted by name: %v", names)
	}
	// Classes render as Table 4 runtime buckets, not raw numbers.
	if !strings.Contains(out, "Seconds") || !strings.Contains(out, "Minutes") {
		t.Errorf("-list rows carry no human-readable class:\n%s", out)
	}
}

// writeStoredProfile profiles a workload with -save and returns the
// file path, failing the test on any non-zero exit.
func writeStoredProfile(t *testing.T, workload, path string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", workload, "-save", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-save exited %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "saved profile to "+path) {
		t.Fatalf("-save printed no confirmation:\n%s", stderr.String())
	}
}

// TestSaveMergeDiffEndToEnd drives the fleet modes through the CLI:
// two saved runs merge into one fleet view, and the before/after pair
// of the vectorization case study diffs with flagged regressions.
func TestSaveMergeDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	before := filepath.Join(dir, "before.prof")
	after := filepath.Join(dir, "after.prof")
	writeStoredProfile(t, "clforward-before", before)
	writeStoredProfile(t, "clforward-after", after)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-merge", before + "," + after}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-merge exited %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "merged 2 profiles") {
		t.Errorf("-merge printed no summary:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "MNEMONIC") {
		t.Errorf("-merge rendered no view:\n%s", stdout.String())
	}

	// The functions view reads the block-level pivot: real function
	// names, not a single blank row.
	stdout.Reset()
	stderr.Reset()
	code = run(context.Background(), []string{"-merge", before + "," + after, "-view", "functions"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-merge -view functions exited %d; stderr:\n%s", code, stderr.String())
	}
	if out := stdout.String(); !strings.Contains(out, "FUNCTION") || !strings.Contains(out, "forward_project") {
		t.Errorf("-merge -view functions shows no function names:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	code = run(context.Background(), []string{"-diff", after + "," + before}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-diff exited %d; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "PROFILE DIFF") {
		t.Errorf("-diff rendered no report:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("backing out the vectorization fix flagged no regression:\n%s", out)
	}
}

// TestMergeRejectsBadProfileFiles pins the CLI contract for damaged
// stored profiles: non-zero exit and a message that names the file
// and what is wrong with it.
func TestMergeRejectsBadProfileFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prof")
	writeStoredProfile(t, "clforward-before", good)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	truncated := filepath.Join(dir, "truncated.prof")
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	versioned := filepath.Join(dir, "future.prof")
	future := append([]byte(nil), data...)
	future[8] = 0xEE // version field
	if err := os.WriteFile(versioned, future, 0o644); err != nil {
		t.Fatal(err)
	}
	notAProfile := filepath.Join(dir, "garbage.prof")
	if err := os.WriteFile(notAProfile, []byte("not a stored profile"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, file, want string
	}{
		{"truncated", truncated, "truncated"},
		{"version", versioned, "incompatible hbbp version"},
		{"magic", notAProfile, "not a stored profile"},
		{"missing", filepath.Join(dir, "nope.prof"), "no such file"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{"-merge", good + "," + tc.file}, &stdout, &stderr)
		if code == 0 {
			t.Errorf("%s: -merge exited 0; stderr:\n%s", tc.name, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: message lacks %q:\n%s", tc.name, tc.want, stderr.String())
		}
		if tc.name != "missing" && !strings.Contains(stderr.String(), tc.file) {
			t.Errorf("%s: message does not name the file:\n%s", tc.name, stderr.String())
		}
		// -diff classifies identically through the same loader.
		stderr.Reset()
		if code := run(context.Background(), []string{"-diff", tc.file + "," + good}, &stdout, &stderr); code == 0 {
			t.Errorf("%s: -diff exited 0", tc.name)
		}
	}
}

// TestDiffThresholdZeroFlagsEverything pins that an explicit
// -threshold 0 means "flag every movement", not the library default.
func TestDiffThresholdZeroFlagsEverything(t *testing.T) {
	dir := t.TempDir()
	before := filepath.Join(dir, "b.prof")
	after := filepath.Join(dir, "a.prof")
	writeStoredProfile(t, "clforward-before", before)
	writeStoredProfile(t, "clforward-after", after)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-diff", before + "," + after, "-threshold", "0"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-threshold 0 exited %d; stderr:\n%s", code, stderr.String())
	}
	if out := stdout.String(); !strings.Contains(out, ">= 0.0pp") {
		t.Errorf("-threshold 0 fell back to the default threshold:\n%s", out)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-diff", before + "," + after, "-threshold", "-1"}, &stdout, &stderr); code != 2 {
		t.Errorf("negative threshold exited %d, want 2", code)
	}
}

// TestDiffUsageErrors pins the argument contract of the fleet modes.
func TestDiffUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-diff", "only-one.prof"}, &stdout, &stderr); code != 2 {
		t.Errorf("-diff with one file exited %d, want 2; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "BEFORE,AFTER") {
		t.Errorf("message does not explain the form:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-merge", "a.prof", "-diff", "a.prof,b.prof"}, &stdout, &stderr); code != 2 {
		t.Errorf("-merge plus -diff exited %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-merge", "a.prof,"}, &stdout, &stderr); code != 2 {
		t.Errorf("-merge with empty entry exited %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-diff", "a.prof,"}, &stdout, &stderr); code != 2 {
		t.Errorf("-diff with empty entry exited %d, want 2; stderr:\n%s", code, stderr.String())
	}
}

// TestSaveFailurePathsAreAtomic pins the -save I/O error contract: an
// unwritable target exits non-zero with a message naming the flag and
// the path, and no partial or truncated profile (and no temp debris)
// is left behind.
func TestSaveFailurePathsAreAtomic(t *testing.T) {
	dir := t.TempDir()

	// Target is an existing directory: the final rename must fail
	// after the profile was fully staged, proving the failure path is
	// exercised post-write — exactly where a naive implementation
	// would have already truncated the target.
	targetDir := filepath.Join(dir, "taken")
	if err := os.Mkdir(targetDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "test40", "-save", targetDir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-save onto a directory exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-save "+targetDir) {
		t.Errorf("error does not name the flag and path:\n%s", stderr.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".hbbprof-") {
			t.Errorf("failed -save left temp file %s", e.Name())
		}
	}

	// Missing parent directory: fails before any run output exists.
	stderr.Reset()
	missing := filepath.Join(dir, "no-such-dir", "out.prof")
	code = run(context.Background(), []string{"-workload", "test40", "-save", missing}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-save into a missing directory exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), missing) {
		t.Errorf("error does not name the path:\n%s", stderr.String())
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Errorf("failed -save left a file at %s", missing)
	}
}

// TestSaveOverwriteIsAllOrNothing pins that re-saving over an existing
// profile either fully replaces it or leaves the old bytes intact:
// after a failed save attempt the original still loads.
func TestSaveOverwriteIsAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.prof")
	writeStoredProfile(t, "test40", path)
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A clean re-save replaces the content wholesale.
	writeStoredProfile(t, "clforward-before", path)
	replaced, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(original, replaced) {
		t.Fatal("re-save did not replace the profile")
	}

	// The replaced profile still loads and merges — no torn state.
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-merge", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("merge of re-saved profile exited %d; stderr:\n%s", code, stderr.String())
	}
}
