package main

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"
)

// TestUnknownWorkloadExitsNonZero covers the CLI contract for a
// mistyped workload name: a non-zero (usage) exit code and a message
// that points the user at -list so they can correct the invocation
// without a second round trip.
func TestUnknownWorkloadExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "no-such-workload"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unknown workload exited 0; stderr:\n%s", stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "no-such-workload") {
		t.Errorf("message does not echo the bad name:\n%s", msg)
	}
	if !strings.Contains(msg, "-list") {
		t.Errorf("message does not suggest -list:\n%s", msg)
	}
	if !strings.Contains(msg, "usage:") {
		t.Errorf("message carries no usage line:\n%s", msg)
	}
}

// TestUnknownViewFailsFast asserts a mistyped view name is rejected
// before any collection work runs (no profiling banner on stderr).
func TestUnknownViewFailsFast(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-workload", "test40", "-view", "extt"}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("unknown view exited 0; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown view") {
		t.Errorf("message does not name the problem:\n%s", stderr.String())
	}
	if strings.Contains(stderr.String(), "profiling") {
		t.Errorf("collection ran before the view was validated:\n%s", stderr.String())
	}
}

// TestHelpExitsZero pins the conventional CLI contract: asking for
// help is not a failure.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-workload") {
		t.Errorf("-h printed no flag usage:\n%s", stderr.String())
	}
}

// TestListWorkloads pins the -list escape hatch the unknown-workload
// message points at: one line per registry entry carrying name,
// runtime class and description, in sorted name order.
func TestListWorkloads(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{
		"test40", "hydro-post", "fitter-avxfix",
		"pointer-chase", "phase-alternating", "megamorphic-branchy", "callgraph-deep",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("-list printed only %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "WORKLOAD") || !strings.Contains(lines[0], "CLASS") ||
		!strings.Contains(lines[0], "DESCRIPTION") {
		t.Errorf("-list header missing columns: %q", lines[0])
	}
	var names []string
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Errorf("-list row %q has no class/description columns", line)
			continue
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list rows not sorted by name: %v", names)
	}
	// Classes render as Table 4 runtime buckets, not raw numbers.
	if !strings.Contains(out, "Seconds") || !strings.Contains(out, "Minutes") {
		t.Errorf("-list rows carry no human-readable class:\n%s", out)
	}
}
