// Command hbbp profiles a built-in workload with Hybrid Basic Block
// Profiling and prints instruction-mix views — the reproduction's
// equivalent of running the paper's collector+analyzer tool on a
// program. It is a thin shell over the public hbbp library.
//
// Usage:
//
//	hbbp -workload NAME [-view top|ext|packing|functions|rings]
//	     [-top N] [-raw FILE] [-replay FILE] [-save FILE] [-trained]
//	     [-seed N]
//	hbbp -merge A,B,C... [-view ...] [-top N]
//	hbbp -diff BEFORE,AFTER [-threshold PP] [-top N]
//	hbbp -series DIR -epoch N [-retain SPEC] [-workload NAME | -merge FILES]
//	hbbp -series DIR [-since N] [-until N] [-view ...] [-top N]
//	hbbp -series DIR -diff SINCE:UNTIL,SINCE:UNTIL [-threshold PP]
//	hbbp -series DIR -trend [-trend-k N] [-trend-threshold PP]
//	hbbp -list
//
// Workloads: any SPEC CPU2006 name (gcc, povray, lbm, ...), the
// paper's case studies (test40, hydro-post, kernel-prime,
// clforward-before, clforward-after, fitter-x87, fitter-sse,
// fitter-avx, fitter-avxfix), the extra scenario families
// (pointer-chase, phase-alternating, megamorphic-branchy,
// callgraph-deep) and the training corpus. -list prints the full
// registry — name, runtime class and description — in sorted order.
//
// -raw FILE additionally writes the raw collection (perf.data-like) to
// FILE; -replay FILE skips the run and analyzes such a file instead,
// streaming its records through the same sinks a live collection uses
// (the workload still selects the program image and sampling periods,
// which the file does not record). -trained trains the decision-tree
// model on the training corpus first (slower); the default uses the
// shipped length-18 rule.
//
// The fleet modes work on stored profiles. -save FILE captures the
// run's result into the mergeable profile-store format. -merge loads
// any number of stored profiles (comma-separated), merges them and
// prints the selected view of the merged fleet mix. -diff loads a
// before,after pair and prints the per-mnemonic share deltas, flagging
// movements of at least -threshold percentage points as regressions.
//
// The time-series modes work on a profile series directory (written
// by this command or by hbbpd -retain -save-dir), adding the epoch
// axis. -series DIR -epoch N appends a profile at epoch N — captured
// from a workload run, or merged from stored profile files when
// -merge is also given — then applies the -retain ladder (e.g.
// "1:8,4:4,16:0", or "default") and saves the store back atomically.
// -series DIR alone queries: -since/-until merge the retained windows
// overlapping that inclusive epoch range (defaults: the whole series)
// and print the selected view. -series with -diff SINCE:UNTIL,
// SINCE:UNTIL diffs two epoch windows of the same series. -trend
// scans the newest -trend-k retained windows and reports every op and
// function whose share of retirement moved monotonically across all
// of them by at least -trend-threshold percentage points — the
// regression detector's shape test: one-window spikes do not qualify.
// All series failures exit non-zero with classified, actionable
// messages (truncated index, mismatched window file, not enough
// windows for the trend).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hbbp"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, returning the process
// exit code so tests can drive the command without exec.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbbp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "test40", "workload to profile")
	view := fs.String("view", "top", "view: top, ext, packing, functions, rings")
	topN := fs.Int("top", 20, "rows for top views")
	rawOut := fs.String("raw", "", "write raw collection data to this file")
	replay := fs.String("replay", "", "analyze a previously written raw file instead of running")
	saveOut := fs.String("save", "", "capture the run into a mergeable stored profile at this file")
	merge := fs.String("merge", "", "merge stored profiles (comma-separated files) and print the fleet view")
	diff := fs.String("diff", "", "diff two stored profiles given as BEFORE,AFTER")
	threshold := fs.Float64("threshold", 1.0, "regression threshold for -diff, in percentage points of share (0 flags every movement)")
	trained := fs.Bool("trained", false, "train the model on the corpus instead of the shipped rule")
	seed := fs.Int64("seed", 1, "random seed")
	list := fs.Bool("list", false, "list available workloads")
	seriesDir := fs.String("series", "", "profile series directory for the time-series modes")
	epoch := fs.Int64("epoch", -1, "with -series: append this run (or -merge FILES) at this epoch (-1 = query mode)")
	retain := fs.String("retain", "", "with -series -epoch: downsample by this WIDTH:KEEP,... ladder after appending (\"default\" = "+hbbp.DefaultRetention().String()+")")
	since := fs.Int64("since", -1, "with -series: first epoch of the query window (-1 = series start)")
	until := fs.Int64("until", -1, "with -series: last epoch of the query window (-1 = series end)")
	trend := fs.Bool("trend", false, "with -series: report ops/functions drifting monotonically across the newest windows")
	trendK := fs.Int("trend-k", 0, "windows a -trend scan covers (0 = default 3)")
	trendThreshold := fs.Float64("trend-threshold", hbbp.DefaultTrendThreshold*100, "minimum -trend drift in percentage points of share")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		infos := hbbp.Workloads()
		wName := len("WORKLOAD")
		for _, info := range infos {
			if len(info.Name) > wName {
				wName = len(info.Name)
			}
		}
		fmt.Fprintf(stdout, "%-*s  %-22s  %s\n", wName, "WORKLOAD", "CLASS", "DESCRIPTION")
		for _, info := range infos {
			fmt.Fprintf(stdout, "%-*s  %-22s  %s\n", wName, info.Name, info.Class, info.Description)
		}
		return 0
	}

	// Resolve the view before any work runs: a mistyped view name must
	// not cost a full collection pass.
	render, ok := map[string]func(*hbbp.PivotTable) string{
		"top": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(t, *topN)) },
		"ext": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"INST SET"}, hbbp.ExtBreakdown(t)) },
		"packing": func(t *hbbp.PivotTable) string {
			return hbbp.Render([]string{"INST SET", "PACKING"}, hbbp.PackingView(t))
		},
		"functions": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"FUNCTION"}, hbbp.TopFunctions(t, *topN)) },
		"rings":     func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"RING"}, hbbp.RingBreakdown(t)) },
	}[*view]
	if !ok {
		fmt.Fprintf(stderr, "hbbp: unknown view %q (known: top, ext, packing, functions, rings)\n", *view)
		return 2
	}

	// The time-series modes work on a series directory. -epoch selects
	// append; -trend, -diff and the -since/-until window select the
	// read-only queries.
	if *epoch >= 0 && *seriesDir == "" {
		fmt.Fprintln(stderr, "hbbp: -epoch needs -series DIR to append into")
		return 2
	}
	if *trend && *seriesDir == "" {
		fmt.Fprintln(stderr, "hbbp: -trend needs -series DIR to scan")
		return 2
	}
	if (*since >= 0 || *until >= 0) && *seriesDir == "" {
		fmt.Fprintln(stderr, "hbbp: -since/-until need -series DIR to query")
		return 2
	}
	appendRun := false
	var retention hbbp.RetentionPolicy
	if *seriesDir != "" {
		switch {
		case *trend:
			if *epoch >= 0 || *diff != "" {
				fmt.Fprintln(stderr, "hbbp: -trend cannot be combined with -epoch or -diff")
				return 2
			}
			return runTrend(*seriesDir, *trendK, *trendThreshold/100, *topN, stdout, stderr)
		case *epoch >= 0:
			if *diff != "" {
				fmt.Fprintln(stderr, "hbbp: -epoch (append) cannot be combined with -diff")
				return 2
			}
			// Resolve the ladder before any work — a bad spec must not
			// cost a collection pass or touch the store.
			if *retain == "default" {
				retention = hbbp.DefaultRetention()
			} else if *retain != "" {
				var err error
				if retention, err = hbbp.ParseRetention(*retain); err != nil {
					fmt.Fprintf(stderr, "hbbp: -retain: %v\n", err)
					return 2
				}
			}
			if *merge != "" {
				// Append pre-captured profiles: no collection run.
				return runSeriesAppendFiles(*seriesDir, uint64(*epoch), strings.Split(*merge, ","), retention, stdout, stderr)
			}
			appendRun = true // run the workload below, append instead of rendering
		case *diff != "":
			return runSeriesDiff(*seriesDir, *diff, *threshold, *topN, stdout, stderr)
		default:
			return runSeriesQuery(*seriesDir, *since, *until, *view, render, stdout, stderr)
		}
	}

	// The fleet modes work entirely on stored profiles: no workload
	// resolution, no collection.
	if *merge != "" && *diff != "" {
		fmt.Fprintln(stderr, "hbbp: -merge and -diff are mutually exclusive")
		return 2
	}
	if *merge != "" {
		return runMerge(strings.Split(*merge, ","), *view, render, stdout, stderr)
	}
	if *diff != "" {
		names := strings.Split(*diff, ",")
		if len(names) != 2 {
			fmt.Fprintf(stderr, "hbbp: -diff needs exactly two files as BEFORE,AFTER (got %d)\n", len(names))
			return 2
		}
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
			if names[i] == "" {
				fmt.Fprintln(stderr, "hbbp: -diff needs exactly two files as BEFORE,AFTER (empty file name)")
				return 2
			}
		}
		if *threshold < 0 {
			fmt.Fprintf(stderr, "hbbp: -threshold %g is negative\n", *threshold)
			return 2
		}
		// An explicit 0 means "flag every movement": the smallest
		// positive threshold, not the library default a zero would
		// otherwise select.
		th := *threshold / 100
		if *threshold == 0 {
			th = math.SmallestNonzeroFloat64
		}
		return runDiff(names[0], names[1], th, *topN, stdout, stderr)
	}

	w, err := hbbp.LookupWorkload(*workload)
	if err != nil {
		// Unknown workload: a usage error; the lookup error points at
		// -list (which prints name, class and description per entry)
		// and already carries the hbbp: prefix.
		fmt.Fprintf(stderr, "%v\n", err)
		fmt.Fprintln(stderr, "usage: hbbp -workload NAME (or -list to enumerate workloads)")
		return 2
	}

	opts := []hbbp.Option{hbbp.WithSeed(*seed)}
	var rawFile *os.File
	if *rawOut != "" {
		if *replay != "" {
			fmt.Fprintln(stderr, "hbbp: -raw cannot be combined with -replay (the raw file already exists)")
			return 2
		}
		rawFile, err = os.Create(*rawOut)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		defer rawFile.Close()
		opts = append(opts, hbbp.WithRawOutput(rawFile))
	}

	s, err := hbbp.New(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "hbbp: %v\n", err)
		return 1
	}

	model := hbbp.DefaultModel()
	if *trained {
		fmt.Fprintln(stderr, "training model on the corpus...")
		model, err = s.Train(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: training: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "model: %s\n", model.Describe())

	var prof *hbbp.Profile
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		defer f.Close()
		fmt.Fprintf(stderr, "replaying %s for %s (%s)...\n", *replay, w.Name, w.Description)
		prof, err = s.Replay(ctx, w, f)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "replayed %d EBS samples, %d LBR stacks (%d+%d lost)\n",
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			prof.Collection.LostEBS, prof.Collection.LostLBR)
	} else {
		fmt.Fprintf(stderr, "profiling %s (%s)...\n", w.Name, w.Description)
		prof, err = s.Profile(ctx, w)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		st := prof.Collection.Stats
		fmt.Fprintf(stderr,
			"retired %d instructions (%d kernel), %d EBS samples, %d LBR stacks, overhead %.2f%%\n",
			st.Retired, st.KernelRetired,
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			(prof.Collection.OverheadFactor()-1)*100)
	}

	if *saveOut != "" {
		sp, err := hbbp.CaptureProfile(prof, w.Name)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		if err := saveStoredAtomic(*saveOut, sp); err != nil {
			fmt.Fprintf(stderr, "hbbp: -save %s: %v (profile not written; fix the path or free space and re-run)\n",
				*saveOut, err)
			return 1
		}
		fmt.Fprintf(stderr, "saved profile to %s (%d blocks, %d mnemonics, %d retired instructions)\n",
			*saveOut, len(sp.Blocks), len(sp.Ops), sp.TotalMass())
	}

	if appendRun {
		sp, err := hbbp.CaptureProfile(prof, w.Name)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		return appendToSeries(*seriesDir, uint64(*epoch), []*hbbp.StoredProfile{sp}, retention, stdout, stderr)
	}
	fmt.Fprint(stdout, render(hbbp.Pivot(prof, hbbp.ViewOptions{LiveText: true})))
	return 0
}

// saveStoredAtomic writes a stored profile via a same-directory temp
// file and rename, so an interrupted or failed save can never leave a
// truncated profile at the target path — a truncated .prof would
// otherwise poison later -merge/-diff runs.
func saveStoredAtomic(path string, sp *hbbp.StoredProfile) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hbbprof-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := hbbp.SaveProfile(tmp, sp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadStored opens and decodes one stored profile, translating the
// classified decode errors into actionable messages: a version
// mismatch or truncation is the user's file, not their invocation, so
// the message names the file and what is wrong with it.
func loadStored(name string, stderr io.Writer) (*hbbp.StoredProfile, bool) {
	data, err := os.ReadFile(name)
	if err != nil {
		fmt.Fprintf(stderr, "hbbp: %v\n", err)
		return nil, false
	}
	sp, err := hbbp.LoadProfileBytes(data)
	switch {
	case errors.Is(err, hbbp.ErrProfileVersion):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		fmt.Fprintf(stderr, "hbbp: %s was written by an incompatible hbbp version; re-save it with this build (-save)\n", name)
		return nil, false
	case errors.Is(err, hbbp.ErrProfileTruncated):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		fmt.Fprintf(stderr, "hbbp: %s is truncated — the save may have been interrupted; re-run with -save to regenerate it\n", name)
		return nil, false
	case errors.Is(err, hbbp.ErrProfileMagic):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		fmt.Fprintf(stderr, "hbbp: %s is not a stored profile (expecting a file written by -save)\n", name)
		return nil, false
	case err != nil:
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		return nil, false
	}
	return sp, true
}

// runMerge implements -merge: load, merge, summarize, render the
// selected view of the merged fleet mix. Mix views read the op-level
// pivot; the functions view needs code locations, which live on the
// block-level pivot (stored profiles keep the two breakdowns
// separate).
func runMerge(names []string, view string, render func(*hbbp.PivotTable) string, stdout, stderr io.Writer) int {
	// Validate the whole list before opening anything: a malformed
	// invocation is a usage error, not a half-completed merge.
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if names[i] == "" {
			fmt.Fprintln(stderr, "hbbp: -merge: empty file name in list")
			return 2
		}
	}
	profiles := make([]*hbbp.StoredProfile, 0, len(names))
	for _, name := range names {
		sp, ok := loadStored(name, stderr)
		if !ok {
			return 1
		}
		profiles = append(profiles, sp)
	}
	merged := hbbp.MergeProfiles(profiles...)
	fmt.Fprintf(stderr, "merged %d profiles: %d runs of %d workloads, %d blocks, %d retired instructions\n",
		len(profiles), merged.TotalRuns(), len(merged.Workloads), len(merged.Blocks), merged.TotalMass())
	tab := hbbp.StoredPivot(merged)
	if view == "functions" {
		tab = hbbp.StoredBlockPivot(merged)
	}
	fmt.Fprint(stdout, render(tab))
	return 0
}

// runDiff implements -diff: load the pair and print the movement
// report.
func runDiff(before, after string, threshold float64, topN int, stdout, stderr io.Writer) int {
	b, ok := loadStored(before, stderr)
	if !ok {
		return 1
	}
	a, ok := loadStored(after, stderr)
	if !ok {
		return 1
	}
	rep := hbbp.DiffProfiles(b, a, threshold)
	fmt.Fprint(stdout, rep.Render(topN))
	return 0
}

// openSeries loads a series directory, translating the classified
// decode errors into actionable messages the same way loadStored does
// for single profiles: the message names the store and what to do
// about it.
func openSeries(dir string, stderr io.Writer) (*hbbp.ProfileSeries, bool) {
	s, err := hbbp.OpenSeries(dir)
	switch {
	case errors.Is(err, hbbp.ErrSeriesVersion):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", dir, err)
		fmt.Fprintf(stderr, "hbbp: the series index was written by an incompatible hbbp version; re-save the series with this build\n")
		return nil, false
	case errors.Is(err, hbbp.ErrSeriesTruncated):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", dir, err)
		fmt.Fprintf(stderr, "hbbp: the series index is truncated — a save may have been interrupted; restore the directory from backup or rebuild it by re-appending epochs\n")
		return nil, false
	case errors.Is(err, hbbp.ErrSeriesMagic):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", dir, err)
		fmt.Fprintf(stderr, "hbbp: %s does not hold a profile series (expecting a directory written by -series -epoch or hbbpd -retain)\n", dir)
		return nil, false
	case errors.Is(err, hbbp.ErrSeriesWindowMismatch):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", dir, err)
		fmt.Fprintf(stderr, "hbbp: a window file disagrees with the series index — a torn copy or manual edit; restore the directory from a consistent save\n")
		return nil, false
	case err != nil:
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", dir, err)
		return nil, false
	}
	return s, true
}

// appendToSeries opens (or creates) the series at dir, merges the
// profiles into the given epoch, applies the retention ladder if one
// was requested and saves the store back atomically.
func appendToSeries(dir string, epoch uint64, profiles []*hbbp.StoredProfile, retention hbbp.RetentionPolicy, stdout, stderr io.Writer) int {
	s, ok := openSeries(dir, stderr)
	if !ok {
		return 1
	}
	for _, sp := range profiles {
		s.AppendEpoch(epoch, sp)
	}
	folds := 0
	if _, hi, ok := s.Bounds(); ok && len(retention.Levels) > 0 {
		folds = s.Downsample(retention, hi)
	}
	if err := s.Save(dir); err != nil {
		fmt.Fprintf(stderr, "hbbp: saving series %s: %v (store unchanged on disk; fix the path or free space and re-run)\n", dir, err)
		return 1
	}
	lo, hi, _ := s.Bounds()
	fmt.Fprintf(stdout, "appended epoch %d to %s: %d windows over epochs %d-%d (%d folds)\n",
		epoch, dir, s.Len(), lo, hi, folds)
	return 0
}

// runSeriesAppendFiles implements -series -epoch -merge FILES: append
// pre-captured stored profiles at one epoch without a collection run.
func runSeriesAppendFiles(dir string, epoch uint64, names []string, retention hbbp.RetentionPolicy, stdout, stderr io.Writer) int {
	profiles := make([]*hbbp.StoredProfile, 0, len(names))
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if names[i] == "" {
			fmt.Fprintln(stderr, "hbbp: -merge: empty file name in list")
			return 2
		}
	}
	for _, name := range names {
		sp, ok := loadStored(name, stderr)
		if !ok {
			return 1
		}
		profiles = append(profiles, sp)
	}
	return appendToSeries(dir, epoch, profiles, retention, stdout, stderr)
}

// resolveWindow turns the -since/-until flags (-1 = open end) into the
// series' concrete inclusive epoch range.
func resolveWindow(s *hbbp.ProfileSeries, since, until int64) (uint64, uint64) {
	lo, hi, ok := s.Bounds()
	if !ok {
		return 1, 0 // empty series: an empty range
	}
	if since >= 0 {
		lo = uint64(since)
	}
	if until >= 0 {
		hi = uint64(until)
	}
	return lo, hi
}

// runSeriesQuery implements the windowed merge: load the series,
// merge every retained window overlapping [since, until] and print
// the selected view. An empty window is a non-zero exit — in a
// pipeline, a query that matched nothing is a failure, not an empty
// success.
func runSeriesQuery(dir string, since, until int64, view string, render func(*hbbp.PivotTable) string, stdout, stderr io.Writer) int {
	s, ok := openSeries(dir, stderr)
	if !ok {
		return 1
	}
	lo, hi := resolveWindow(s, since, until)
	merged, spans := s.Window(lo, hi)
	if len(spans) == 0 {
		fmt.Fprintf(stderr, "hbbp: %s: no retained epochs in window [%d, %d]", dir, lo, hi)
		if slo, shi, ok := s.Bounds(); ok {
			fmt.Fprintf(stderr, " (series covers %d-%d)", slo, shi)
		} else {
			fmt.Fprint(stderr, " (series is empty)")
		}
		fmt.Fprintln(stderr)
		return 1
	}
	fmt.Fprintf(stderr, "window [%d, %d]: %d windows (%s), %d runs, %d retired instructions\n",
		lo, hi, len(spans), spanList(spans), merged.TotalRuns(), merged.TotalMass())
	tab := hbbp.StoredPivot(merged)
	if view == "functions" {
		tab = hbbp.StoredBlockPivot(merged)
	}
	fmt.Fprint(stdout, render(tab))
	return 0
}

// runSeriesDiff implements -series -diff SINCE:UNTIL,SINCE:UNTIL —
// the windowed regression check: merge two epoch windows of one
// series and print the movement report between them.
func runSeriesDiff(dir, spec string, thresholdPP float64, topN int, stdout, stderr io.Writer) int {
	if thresholdPP < 0 {
		fmt.Fprintf(stderr, "hbbp: -threshold %g is negative\n", thresholdPP)
		return 2
	}
	th := thresholdPP / 100
	if thresholdPP == 0 {
		th = math.SmallestNonzeroFloat64
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintf(stderr, "hbbp: -series -diff needs two windows as SINCE:UNTIL,SINCE:UNTIL (got %d)\n", len(parts))
		return 2
	}
	var windows [2][2]uint64
	for i, part := range parts {
		a, b, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			fmt.Fprintf(stderr, "hbbp: -series -diff window %q is not SINCE:UNTIL\n", part)
			return 2
		}
		var err error
		if windows[i][0], err = strconv.ParseUint(a, 10, 64); err != nil {
			fmt.Fprintf(stderr, "hbbp: -series -diff window %q: %v\n", part, err)
			return 2
		}
		if windows[i][1], err = strconv.ParseUint(b, 10, 64); err != nil {
			fmt.Fprintf(stderr, "hbbp: -series -diff window %q: %v\n", part, err)
			return 2
		}
	}
	s, ok := openSeries(dir, stderr)
	if !ok {
		return 1
	}
	var merged [2]*hbbp.StoredProfile
	for i, w := range windows {
		var spans []hbbp.SeriesSpan
		merged[i], spans = s.Window(w[0], w[1])
		if len(spans) == 0 {
			fmt.Fprintf(stderr, "hbbp: %s: no retained epochs in window [%d, %d]\n", dir, w[0], w[1])
			return 1
		}
		fmt.Fprintf(stderr, "window [%d, %d]: %s\n", w[0], w[1], spanList(spans))
	}
	rep := hbbp.DiffProfiles(merged[0], merged[1], th)
	fmt.Fprint(stdout, rep.Render(topN))
	return 0
}

// runTrend implements -series -trend: the monotonic-drift regression
// detector over the newest k retained windows.
func runTrend(dir string, k int, threshold float64, topN int, stdout, stderr io.Writer) int {
	s, ok := openSeries(dir, stderr)
	if !ok {
		return 1
	}
	rep, err := s.Trend(hbbp.TrendOptions{K: k, Threshold: threshold})
	switch {
	case errors.Is(err, hbbp.ErrNotEnoughWindows):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", dir, err)
		fmt.Fprintf(stderr, "hbbp: append more epochs (the series retains %d windows) or lower -trend-k\n", s.Len())
		return 1
	case err != nil:
		fmt.Fprintf(stderr, "hbbp: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, rep.Render(topN))
	return 0
}

// spanList renders contributing spans compactly for the stderr
// provenance lines.
func spanList(spans []hbbp.SeriesSpan) string {
	parts := make([]string, len(spans))
	for i, s := range spans {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}
