// Command hbbp profiles a built-in workload with Hybrid Basic Block
// Profiling and prints instruction-mix views — the reproduction's
// equivalent of running the paper's collector+analyzer tool on a
// program. It is a thin shell over the public hbbp library.
//
// Usage:
//
//	hbbp -workload NAME [-view top|ext|packing|functions|rings]
//	     [-top N] [-raw FILE] [-replay FILE] [-save FILE] [-trained]
//	     [-seed N]
//	hbbp -merge A,B,C... [-view ...] [-top N]
//	hbbp -diff BEFORE,AFTER [-threshold PP] [-top N]
//	hbbp -list
//
// Workloads: any SPEC CPU2006 name (gcc, povray, lbm, ...), the
// paper's case studies (test40, hydro-post, kernel-prime,
// clforward-before, clforward-after, fitter-x87, fitter-sse,
// fitter-avx, fitter-avxfix), the extra scenario families
// (pointer-chase, phase-alternating, megamorphic-branchy,
// callgraph-deep) and the training corpus. -list prints the full
// registry — name, runtime class and description — in sorted order.
//
// -raw FILE additionally writes the raw collection (perf.data-like) to
// FILE; -replay FILE skips the run and analyzes such a file instead,
// streaming its records through the same sinks a live collection uses
// (the workload still selects the program image and sampling periods,
// which the file does not record). -trained trains the decision-tree
// model on the training corpus first (slower); the default uses the
// shipped length-18 rule.
//
// The fleet modes work on stored profiles. -save FILE captures the
// run's result into the mergeable profile-store format. -merge loads
// any number of stored profiles (comma-separated), merges them and
// prints the selected view of the merged fleet mix. -diff loads a
// before,after pair and prints the per-mnemonic share deltas, flagging
// movements of at least -threshold percentage points as regressions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"hbbp"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, returning the process
// exit code so tests can drive the command without exec.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbbp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "test40", "workload to profile")
	view := fs.String("view", "top", "view: top, ext, packing, functions, rings")
	topN := fs.Int("top", 20, "rows for top views")
	rawOut := fs.String("raw", "", "write raw collection data to this file")
	replay := fs.String("replay", "", "analyze a previously written raw file instead of running")
	saveOut := fs.String("save", "", "capture the run into a mergeable stored profile at this file")
	merge := fs.String("merge", "", "merge stored profiles (comma-separated files) and print the fleet view")
	diff := fs.String("diff", "", "diff two stored profiles given as BEFORE,AFTER")
	threshold := fs.Float64("threshold", 1.0, "regression threshold for -diff, in percentage points of share (0 flags every movement)")
	trained := fs.Bool("trained", false, "train the model on the corpus instead of the shipped rule")
	seed := fs.Int64("seed", 1, "random seed")
	list := fs.Bool("list", false, "list available workloads")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		infos := hbbp.Workloads()
		wName := len("WORKLOAD")
		for _, info := range infos {
			if len(info.Name) > wName {
				wName = len(info.Name)
			}
		}
		fmt.Fprintf(stdout, "%-*s  %-22s  %s\n", wName, "WORKLOAD", "CLASS", "DESCRIPTION")
		for _, info := range infos {
			fmt.Fprintf(stdout, "%-*s  %-22s  %s\n", wName, info.Name, info.Class, info.Description)
		}
		return 0
	}

	// Resolve the view before any work runs: a mistyped view name must
	// not cost a full collection pass.
	render, ok := map[string]func(*hbbp.PivotTable) string{
		"top": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(t, *topN)) },
		"ext": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"INST SET"}, hbbp.ExtBreakdown(t)) },
		"packing": func(t *hbbp.PivotTable) string {
			return hbbp.Render([]string{"INST SET", "PACKING"}, hbbp.PackingView(t))
		},
		"functions": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"FUNCTION"}, hbbp.TopFunctions(t, *topN)) },
		"rings":     func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"RING"}, hbbp.RingBreakdown(t)) },
	}[*view]
	if !ok {
		fmt.Fprintf(stderr, "hbbp: unknown view %q (known: top, ext, packing, functions, rings)\n", *view)
		return 2
	}

	// The fleet modes work entirely on stored profiles: no workload
	// resolution, no collection.
	if *merge != "" && *diff != "" {
		fmt.Fprintln(stderr, "hbbp: -merge and -diff are mutually exclusive")
		return 2
	}
	if *merge != "" {
		return runMerge(strings.Split(*merge, ","), *view, render, stdout, stderr)
	}
	if *diff != "" {
		names := strings.Split(*diff, ",")
		if len(names) != 2 {
			fmt.Fprintf(stderr, "hbbp: -diff needs exactly two files as BEFORE,AFTER (got %d)\n", len(names))
			return 2
		}
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
			if names[i] == "" {
				fmt.Fprintln(stderr, "hbbp: -diff needs exactly two files as BEFORE,AFTER (empty file name)")
				return 2
			}
		}
		if *threshold < 0 {
			fmt.Fprintf(stderr, "hbbp: -threshold %g is negative\n", *threshold)
			return 2
		}
		// An explicit 0 means "flag every movement": the smallest
		// positive threshold, not the library default a zero would
		// otherwise select.
		th := *threshold / 100
		if *threshold == 0 {
			th = math.SmallestNonzeroFloat64
		}
		return runDiff(names[0], names[1], th, *topN, stdout, stderr)
	}

	w, err := hbbp.LookupWorkload(*workload)
	if err != nil {
		// Unknown workload: a usage error; the lookup error points at
		// -list (which prints name, class and description per entry)
		// and already carries the hbbp: prefix.
		fmt.Fprintf(stderr, "%v\n", err)
		fmt.Fprintln(stderr, "usage: hbbp -workload NAME (or -list to enumerate workloads)")
		return 2
	}

	opts := []hbbp.Option{hbbp.WithSeed(*seed)}
	var rawFile *os.File
	if *rawOut != "" {
		if *replay != "" {
			fmt.Fprintln(stderr, "hbbp: -raw cannot be combined with -replay (the raw file already exists)")
			return 2
		}
		rawFile, err = os.Create(*rawOut)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		defer rawFile.Close()
		opts = append(opts, hbbp.WithRawOutput(rawFile))
	}

	s, err := hbbp.New(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "hbbp: %v\n", err)
		return 1
	}

	model := hbbp.DefaultModel()
	if *trained {
		fmt.Fprintln(stderr, "training model on the corpus...")
		model, err = s.Train(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: training: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "model: %s\n", model.Describe())

	var prof *hbbp.Profile
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		defer f.Close()
		fmt.Fprintf(stderr, "replaying %s for %s (%s)...\n", *replay, w.Name, w.Description)
		prof, err = s.Replay(ctx, w, f)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "replayed %d EBS samples, %d LBR stacks (%d+%d lost)\n",
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			prof.Collection.LostEBS, prof.Collection.LostLBR)
	} else {
		fmt.Fprintf(stderr, "profiling %s (%s)...\n", w.Name, w.Description)
		prof, err = s.Profile(ctx, w)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		st := prof.Collection.Stats
		fmt.Fprintf(stderr,
			"retired %d instructions (%d kernel), %d EBS samples, %d LBR stacks, overhead %.2f%%\n",
			st.Retired, st.KernelRetired,
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			(prof.Collection.OverheadFactor()-1)*100)
	}

	if *saveOut != "" {
		sp, err := hbbp.CaptureProfile(prof, w.Name)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		if err := saveStoredAtomic(*saveOut, sp); err != nil {
			fmt.Fprintf(stderr, "hbbp: -save %s: %v (profile not written; fix the path or free space and re-run)\n",
				*saveOut, err)
			return 1
		}
		fmt.Fprintf(stderr, "saved profile to %s (%d blocks, %d mnemonics, %d retired instructions)\n",
			*saveOut, len(sp.Blocks), len(sp.Ops), sp.TotalMass())
	}

	fmt.Fprint(stdout, render(hbbp.Pivot(prof, hbbp.ViewOptions{LiveText: true})))
	return 0
}

// saveStoredAtomic writes a stored profile via a same-directory temp
// file and rename, so an interrupted or failed save can never leave a
// truncated profile at the target path — a truncated .prof would
// otherwise poison later -merge/-diff runs.
func saveStoredAtomic(path string, sp *hbbp.StoredProfile) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hbbprof-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := hbbp.SaveProfile(tmp, sp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadStored opens and decodes one stored profile, translating the
// classified decode errors into actionable messages: a version
// mismatch or truncation is the user's file, not their invocation, so
// the message names the file and what is wrong with it.
func loadStored(name string, stderr io.Writer) (*hbbp.StoredProfile, bool) {
	f, err := os.Open(name)
	if err != nil {
		fmt.Fprintf(stderr, "hbbp: %v\n", err)
		return nil, false
	}
	defer f.Close()
	sp, err := hbbp.LoadProfile(f)
	switch {
	case errors.Is(err, hbbp.ErrProfileVersion):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		fmt.Fprintf(stderr, "hbbp: %s was written by an incompatible hbbp version; re-save it with this build (-save)\n", name)
		return nil, false
	case errors.Is(err, hbbp.ErrProfileTruncated):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		fmt.Fprintf(stderr, "hbbp: %s is truncated — the save may have been interrupted; re-run with -save to regenerate it\n", name)
		return nil, false
	case errors.Is(err, hbbp.ErrProfileMagic):
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		fmt.Fprintf(stderr, "hbbp: %s is not a stored profile (expecting a file written by -save)\n", name)
		return nil, false
	case err != nil:
		fmt.Fprintf(stderr, "hbbp: %s: %v\n", name, err)
		return nil, false
	}
	return sp, true
}

// runMerge implements -merge: load, merge, summarize, render the
// selected view of the merged fleet mix. Mix views read the op-level
// pivot; the functions view needs code locations, which live on the
// block-level pivot (stored profiles keep the two breakdowns
// separate).
func runMerge(names []string, view string, render func(*hbbp.PivotTable) string, stdout, stderr io.Writer) int {
	// Validate the whole list before opening anything: a malformed
	// invocation is a usage error, not a half-completed merge.
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if names[i] == "" {
			fmt.Fprintln(stderr, "hbbp: -merge: empty file name in list")
			return 2
		}
	}
	profiles := make([]*hbbp.StoredProfile, 0, len(names))
	for _, name := range names {
		sp, ok := loadStored(name, stderr)
		if !ok {
			return 1
		}
		profiles = append(profiles, sp)
	}
	merged := hbbp.MergeProfiles(profiles...)
	fmt.Fprintf(stderr, "merged %d profiles: %d runs of %d workloads, %d blocks, %d retired instructions\n",
		len(profiles), merged.TotalRuns(), len(merged.Workloads), len(merged.Blocks), merged.TotalMass())
	tab := hbbp.StoredPivot(merged)
	if view == "functions" {
		tab = hbbp.StoredBlockPivot(merged)
	}
	fmt.Fprint(stdout, render(tab))
	return 0
}

// runDiff implements -diff: load the pair and print the movement
// report.
func runDiff(before, after string, threshold float64, topN int, stdout, stderr io.Writer) int {
	b, ok := loadStored(before, stderr)
	if !ok {
		return 1
	}
	a, ok := loadStored(after, stderr)
	if !ok {
		return 1
	}
	rep := hbbp.DiffProfiles(b, a, threshold)
	fmt.Fprint(stdout, rep.Render(topN))
	return 0
}
