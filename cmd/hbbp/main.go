// Command hbbp profiles a built-in workload with Hybrid Basic Block
// Profiling and prints instruction-mix views — the reproduction's
// equivalent of running the paper's collector+analyzer tool on a
// program.
//
// Usage:
//
//	hbbp -workload NAME [-view top|ext|packing|functions|rings]
//	     [-top N] [-raw FILE] [-replay FILE] [-trained] [-seed N]
//
// Workloads: any SPEC CPU2006 name (gcc, povray, lbm, ...), test40,
// hydro-post, kernel-prime, clforward-before, clforward-after,
// fitter-x87, fitter-sse, fitter-avx, fitter-avxfix.
//
// -raw FILE additionally writes the raw collection (perf.data-like) to
// FILE; -replay FILE skips the run and analyzes such a file instead,
// streaming its records through the same sinks a live collection uses
// (the workload still selects the program image and sampling periods,
// which the file does not record). -trained trains the decision-tree
// model on the training corpus first (slower); the default uses the
// shipped length-18 rule.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/pivot"
	"hbbp/internal/workloads"
)

func main() {
	workload := flag.String("workload", "test40", "workload to profile")
	view := flag.String("view", "top", "view: top, ext, packing, functions, rings")
	topN := flag.Int("top", 20, "rows for top views")
	rawOut := flag.String("raw", "", "write raw collection data to this file")
	replay := flag.String("replay", "", "analyze a previously written raw file instead of running")
	trained := flag.Bool("trained", false, "train the model on the corpus instead of the shipped rule")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list available workloads")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workloadNames(), "\n"))
		return
	}

	w := lookupWorkload(*workload)
	if w == nil {
		fmt.Fprintf(os.Stderr, "hbbp: unknown workload %q (use -list)\n", *workload)
		os.Exit(1)
	}

	model := core.DefaultModel()
	if *trained {
		fmt.Fprintln(os.Stderr, "training model on the corpus...")
		m, err := trainModel(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbbp: training: %v\n", err)
			os.Exit(1)
		}
		model = m
	}
	fmt.Fprintf(os.Stderr, "model: %s\n", model.Describe())

	opts := core.Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: *seed, Repeat: w.Repeat,
		},
		KernelLivePatched: true,
	}

	var prof *core.Profile
	var err error
	if *replay != "" {
		if *rawOut != "" {
			fmt.Fprintln(os.Stderr, "hbbp: -raw cannot be combined with -replay (the raw file already exists)")
			os.Exit(1)
		}
		f, err2 := os.Open(*replay)
		if err2 != nil {
			fmt.Fprintf(os.Stderr, "hbbp: %v\n", err2)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintf(os.Stderr, "replaying %s for %s (%s)...\n", *replay, w.Name, w.Description)
		prof, err = core.AnalyzeReplay(w.Prog, model, f, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbbp: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "replayed %d EBS samples, %d LBR stacks (%d+%d lost)\n",
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			prof.Collection.LostEBS, prof.Collection.LostLBR)
	} else {
		if *rawOut != "" {
			f, err2 := os.Create(*rawOut)
			if err2 != nil {
				fmt.Fprintf(os.Stderr, "hbbp: %v\n", err2)
				os.Exit(1)
			}
			defer f.Close()
			opts.Collector.RawOut = f
		}
		fmt.Fprintf(os.Stderr, "profiling %s (%s)...\n", w.Name, w.Description)
		prof, err = core.Run(w.Prog, w.Entry, model, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hbbp: %v\n", err)
			os.Exit(1)
		}
		st := prof.Collection.Stats
		fmt.Fprintf(os.Stderr,
			"retired %d instructions (%d kernel), %d EBS samples, %d LBR stacks, overhead %.2f%%\n",
			st.Retired, st.KernelRetired,
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			(prof.Collection.OverheadFactor()-1)*100)
	}

	tab := analyzer.BuildPivot(w.Prog, prof.BBECs, analyzer.Options{LiveText: true})
	switch *view {
	case "top":
		rows := analyzer.TopMnemonics(tab, *topN)
		fmt.Print(pivot.Render([]string{"MNEMONIC"}, rows))
	case "ext":
		fmt.Print(pivot.Render([]string{"INST SET"}, analyzer.ExtBreakdown(tab)))
	case "packing":
		fmt.Print(pivot.Render([]string{"INST SET", "PACKING"}, analyzer.PackingView(tab)))
	case "functions":
		fmt.Print(pivot.Render([]string{"FUNCTION"}, analyzer.TopFunctions(tab, *topN)))
	case "rings":
		fmt.Print(pivot.Render([]string{"RING"}, analyzer.RingBreakdown(tab)))
	default:
		fmt.Fprintf(os.Stderr, "hbbp: unknown view %q\n", *view)
		os.Exit(1)
	}
}

func trainModel(seed int64) (*core.Model, error) {
	var runs []*core.TrainingRun
	for i, w := range workloads.TrainingCorpus() {
		run, err := core.CollectTrainingRun(w.Prog, w.Entry, collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: seed + int64(100+i), Repeat: w.Repeat,
		})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return core.Train(runs, core.TrainParams{})
}

func lookupWorkload(name string) *workloads.Workload {
	switch name {
	case "test40":
		return workloads.Test40()
	case "hydro-post":
		return workloads.HydroPost()
	case "kernel-prime":
		return workloads.KernelPrime()
	case "clforward-before":
		return workloads.CLForward(false)
	case "clforward-after":
		return workloads.CLForward(true)
	case "fitter-x87":
		return workloads.Fitter(workloads.FitterX87)
	case "fitter-sse":
		return workloads.Fitter(workloads.FitterSSE)
	case "fitter-avx":
		return workloads.Fitter(workloads.FitterAVX)
	case "fitter-avxfix":
		return workloads.Fitter(workloads.FitterAVXFix)
	}
	return workloads.SPEC(name)
}

func workloadNames() []string {
	names := []string{
		"test40", "hydro-post", "kernel-prime",
		"clforward-before", "clforward-after",
		"fitter-x87", "fitter-sse", "fitter-avx", "fitter-avxfix",
	}
	return append(names, workloads.SPECNames()...)
}
