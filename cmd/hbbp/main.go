// Command hbbp profiles a built-in workload with Hybrid Basic Block
// Profiling and prints instruction-mix views — the reproduction's
// equivalent of running the paper's collector+analyzer tool on a
// program. It is a thin shell over the public hbbp library.
//
// Usage:
//
//	hbbp -workload NAME [-view top|ext|packing|functions|rings]
//	     [-top N] [-raw FILE] [-replay FILE] [-trained] [-seed N]
//	hbbp -list
//
// Workloads: any SPEC CPU2006 name (gcc, povray, lbm, ...), the
// paper's case studies (test40, hydro-post, kernel-prime,
// clforward-before, clforward-after, fitter-x87, fitter-sse,
// fitter-avx, fitter-avxfix), the extra scenario families
// (pointer-chase, phase-alternating, megamorphic-branchy,
// callgraph-deep) and the training corpus. -list prints the full
// registry — name, runtime class and description — in sorted order.
//
// -raw FILE additionally writes the raw collection (perf.data-like) to
// FILE; -replay FILE skips the run and analyzes such a file instead,
// streaming its records through the same sinks a live collection uses
// (the workload still selects the program image and sampling periods,
// which the file does not record). -trained trains the decision-tree
// model on the training corpus first (slower); the default uses the
// shipped length-18 rule.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"hbbp"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, returning the process
// exit code so tests can drive the command without exec.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbbp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "test40", "workload to profile")
	view := fs.String("view", "top", "view: top, ext, packing, functions, rings")
	topN := fs.Int("top", 20, "rows for top views")
	rawOut := fs.String("raw", "", "write raw collection data to this file")
	replay := fs.String("replay", "", "analyze a previously written raw file instead of running")
	trained := fs.Bool("trained", false, "train the model on the corpus instead of the shipped rule")
	seed := fs.Int64("seed", 1, "random seed")
	list := fs.Bool("list", false, "list available workloads")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		infos := hbbp.Workloads()
		wName := len("WORKLOAD")
		for _, info := range infos {
			if len(info.Name) > wName {
				wName = len(info.Name)
			}
		}
		fmt.Fprintf(stdout, "%-*s  %-22s  %s\n", wName, "WORKLOAD", "CLASS", "DESCRIPTION")
		for _, info := range infos {
			fmt.Fprintf(stdout, "%-*s  %-22s  %s\n", wName, info.Name, info.Class, info.Description)
		}
		return 0
	}

	// Resolve the view before any work runs: a mistyped view name must
	// not cost a full collection pass.
	render, ok := map[string]func(*hbbp.PivotTable) string{
		"top": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(t, *topN)) },
		"ext": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"INST SET"}, hbbp.ExtBreakdown(t)) },
		"packing": func(t *hbbp.PivotTable) string {
			return hbbp.Render([]string{"INST SET", "PACKING"}, hbbp.PackingView(t))
		},
		"functions": func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"FUNCTION"}, hbbp.TopFunctions(t, *topN)) },
		"rings":     func(t *hbbp.PivotTable) string { return hbbp.Render([]string{"RING"}, hbbp.RingBreakdown(t)) },
	}[*view]
	if !ok {
		fmt.Fprintf(stderr, "hbbp: unknown view %q (known: top, ext, packing, functions, rings)\n", *view)
		return 2
	}

	w, err := hbbp.LookupWorkload(*workload)
	if err != nil {
		// Unknown workload: a usage error; the lookup error points at
		// -list (which prints name, class and description per entry)
		// and already carries the hbbp: prefix.
		fmt.Fprintf(stderr, "%v\n", err)
		fmt.Fprintln(stderr, "usage: hbbp -workload NAME (or -list to enumerate workloads)")
		return 2
	}

	opts := []hbbp.Option{hbbp.WithSeed(*seed)}
	var rawFile *os.File
	if *rawOut != "" {
		if *replay != "" {
			fmt.Fprintln(stderr, "hbbp: -raw cannot be combined with -replay (the raw file already exists)")
			return 2
		}
		rawFile, err = os.Create(*rawOut)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		defer rawFile.Close()
		opts = append(opts, hbbp.WithRawOutput(rawFile))
	}

	s, err := hbbp.New(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "hbbp: %v\n", err)
		return 1
	}

	model := hbbp.DefaultModel()
	if *trained {
		fmt.Fprintln(stderr, "training model on the corpus...")
		model, err = s.Train(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: training: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "model: %s\n", model.Describe())

	var prof *hbbp.Profile
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		defer f.Close()
		fmt.Fprintf(stderr, "replaying %s for %s (%s)...\n", *replay, w.Name, w.Description)
		prof, err = s.Replay(ctx, w, f)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "replayed %d EBS samples, %d LBR stacks (%d+%d lost)\n",
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			prof.Collection.LostEBS, prof.Collection.LostLBR)
	} else {
		fmt.Fprintf(stderr, "profiling %s (%s)...\n", w.Name, w.Description)
		prof, err = s.Profile(ctx, w)
		if err != nil {
			fmt.Fprintf(stderr, "hbbp: %v\n", err)
			return 1
		}
		st := prof.Collection.Stats
		fmt.Fprintf(stderr,
			"retired %d instructions (%d kernel), %d EBS samples, %d LBR stacks, overhead %.2f%%\n",
			st.Retired, st.KernelRetired,
			len(prof.Collection.EBSIPs), len(prof.Collection.Stacks),
			(prof.Collection.OverheadFactor()-1)*100)
	}

	fmt.Fprint(stdout, render(hbbp.Pivot(prof, hbbp.ViewOptions{LiveText: true})))
	return 0
}
