package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cli runs the command and returns its exit code plus both streams.
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// seedSeries builds a series directory by appending pre-captured
// stored profiles (fast: no repeated collection runs) across the
// given epochs.
func seedSeries(t *testing.T, dir, profFile string, epochs []string) {
	t.Helper()
	for _, e := range epochs {
		code, _, stderr := cli(t, "-series", dir, "-epoch", e, "-merge", profFile)
		if code != 0 {
			t.Fatalf("append at epoch %s exited %d; stderr:\n%s", e, code, stderr)
		}
	}
}

// TestSeriesAppendAndWindowedQuery drives the happy path end to end:
// a captured run appends across epochs (with retention), a full-range
// query renders the view, and -since/-until narrow it.
func TestSeriesAppendAndWindowedQuery(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "run.prof")
	writeStoredProfile(t, "fitter-sse", prof)
	sdir := filepath.Join(dir, "series")

	// Append via a live run once (the run→capture→append path)...
	code, stdout, stderr := cli(t, "-series", sdir, "-epoch", "0", "-workload", "test40")
	if code != 0 {
		t.Fatalf("run-append exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "appended epoch 0") {
		t.Fatalf("no append confirmation:\n%s", stdout)
	}
	// ...then from the stored file for the rest, with retention.
	for _, e := range []string{"1", "2", "3", "4", "5"} {
		code, _, stderr := cli(t, "-series", sdir, "-epoch", e, "-merge", prof, "-retain", "1:2,4:0")
		if code != 0 {
			t.Fatalf("append at epoch %s exited %d; stderr:\n%s", e, code, stderr)
		}
	}

	// The ladder folded old epochs: the index lists fewer than 6
	// windows.
	code, stdout, stderr = cli(t, "-series", sdir)
	if code != 0 {
		t.Fatalf("full query exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "MNEMONIC") {
		t.Fatalf("query printed no view:\n%s", stdout)
	}
	if !strings.Contains(stderr, "window [0, 5]") {
		t.Fatalf("no window provenance line:\n%s", stderr)
	}

	// Narrowed query: only the raw tail.
	code, stdout, stderr = cli(t, "-series", sdir, "-since", "4", "-until", "5", "-view", "functions")
	if code != 0 {
		t.Fatalf("narrow query exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "FUNCTION") {
		t.Fatalf("functions view missing:\n%s", stdout)
	}
	if !strings.Contains(stderr, "window [4, 5]") {
		t.Fatalf("narrow provenance missing:\n%s", stderr)
	}
}

// TestSeriesEmptyWindowExitsNonZero pins the pipeline contract: a
// query matching no retained epochs is a failure that names the
// window and what the series actually covers.
func TestSeriesEmptyWindowExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "run.prof")
	writeStoredProfile(t, "test40", prof)
	sdir := filepath.Join(dir, "series")
	seedSeries(t, sdir, prof, []string{"10", "11"})

	code, _, stderr := cli(t, "-series", sdir, "-since", "100", "-until", "200")
	if code == 0 {
		t.Fatal("empty window exited 0")
	}
	if !strings.Contains(stderr, "no retained epochs in window [100, 200]") {
		t.Fatalf("message does not name the empty window:\n%s", stderr)
	}
	if !strings.Contains(stderr, "series covers 10-11") {
		t.Fatalf("message does not say what the series covers:\n%s", stderr)
	}
}

// TestSeriesTruncatedIndexClassified pins the typed-sentinel path: a
// truncated index exits non-zero with the truncation diagnosis and an
// actionable next step, not a generic parse error.
func TestSeriesTruncatedIndexClassified(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "run.prof")
	writeStoredProfile(t, "test40", prof)
	sdir := filepath.Join(dir, "series")
	seedSeries(t, sdir, prof, []string{"0", "1"})

	idx := filepath.Join(sdir, "series.idx")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	for _, mode := range [][]string{
		{"-series", sdir},
		{"-series", sdir, "-trend"},
		{"-series", sdir, "-epoch", "2", "-merge", prof},
		{"-series", sdir, "-diff", "0:0,1:1"},
	} {
		code, _, stderr := cli(t, mode...)
		if code == 0 {
			t.Fatalf("%v exited 0 on a truncated index", mode)
		}
		if !strings.Contains(stderr, "truncated") {
			t.Fatalf("%v did not diagnose truncation:\n%s", mode, stderr)
		}
	}

	// Not-a-series classification too: wrong magic.
	if err := os.WriteFile(idx, []byte("JPEGJPEG????????"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := cli(t, "-series", sdir)
	if code == 0 {
		t.Fatal("bad magic exited 0")
	}
	if !strings.Contains(stderr, "does not hold a profile series") {
		t.Fatalf("bad magic not classified:\n%s", stderr)
	}
}

// TestSeriesDiffWindows pins the windowed regression check between
// two epoch ranges of one series, built from the vectorization case
// study so the diff has real movement.
func TestSeriesDiffWindows(t *testing.T) {
	dir := t.TempDir()
	before := filepath.Join(dir, "before.prof")
	after := filepath.Join(dir, "after.prof")
	writeStoredProfile(t, "fitter-x87", before)
	writeStoredProfile(t, "fitter-sse", after)
	sdir := filepath.Join(dir, "series")
	seedSeries(t, sdir, before, []string{"0", "1"})
	seedSeries(t, sdir, after, []string{"2", "3"})

	code, stdout, stderr := cli(t, "-series", sdir, "-diff", "0:1,2:3", "-threshold", "0")
	if code != 0 {
		t.Fatalf("series diff exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "DIFF") {
		t.Fatalf("no diff report:\n%s", stdout)
	}
	if !strings.Contains(stderr, "window [0, 1]") || !strings.Contains(stderr, "window [2, 3]") {
		t.Fatalf("no window provenance:\n%s", stderr)
	}

	// Usage errors: malformed window specs are exit 2 before any I/O.
	for _, spec := range []string{"0:1", "0:1,2:3,4:5", "a:b,0:1", "01,2:3"} {
		code, _, _ := cli(t, "-series", sdir, "-diff", spec)
		if code != 2 {
			t.Errorf("-diff %q exited %d, want 2", spec, code)
		}
	}
	// An empty window in an otherwise valid spec is a data failure.
	if code, _, _ := cli(t, "-series", sdir, "-diff", "50:60,0:1"); code != 1 {
		t.Errorf("empty diff window exited %d, want 1", code)
	}
}

// TestSeriesTrend drives the trend detector end to end: the fitter
// case study's x87→SSE→AVX progression moves vector-op share
// monotonically, so the report flags risers and fallers; with too few
// windows the command exits non-zero and says what to do.
func TestSeriesTrend(t *testing.T) {
	dir := t.TempDir()
	sdir := filepath.Join(dir, "series")
	for i, wl := range []string{"fitter-x87", "fitter-sse", "fitter-avx"} {
		prof := filepath.Join(dir, wl+".prof")
		writeStoredProfile(t, wl, prof)
		seedSeries(t, sdir, prof, []string{string(rune('0' + i))})
	}

	code, stdout, stderr := cli(t, "-series", sdir, "-trend", "-trend-threshold", "0.1")
	if code != 0 {
		t.Fatalf("-trend exited %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "TREND") || !strings.Contains(stdout, "3 windows") {
		t.Fatalf("no trend header:\n%s", stdout)
	}
	if !strings.Contains(stdout, "rising") && !strings.Contains(stdout, "falling") {
		t.Fatalf("trend flagged nothing across the x87→SSE→AVX progression:\n%s", stdout)
	}
	if !strings.Contains(stdout, "->") {
		t.Fatalf("no share trajectory in the report:\n%s", stdout)
	}

	// Not enough windows: k exceeds the series.
	code, _, stderr = cli(t, "-series", sdir, "-trend", "-trend-k", "5")
	if code == 0 {
		t.Fatal("-trend with too few windows exited 0")
	}
	if !strings.Contains(stderr, "not enough retained windows") {
		t.Fatalf("no classified diagnosis:\n%s", stderr)
	}
	if !strings.Contains(stderr, "lower -trend-k") {
		t.Fatalf("no actionable next step:\n%s", stderr)
	}
}

// TestSeriesUsageErrors pins the flag-combination contract: series
// flags without -series, and conflicting modes, fail fast as usage
// errors (exit 2) before any store is touched.
func TestSeriesUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-epoch", "3"},
		{"-trend"},
		{"-since", "1"},
		{"-until", "2"},
		{"-series", "x", "-trend", "-epoch", "1"},
		{"-series", "x", "-trend", "-diff", "0:1,2:3"},
		{"-series", "x", "-epoch", "1", "-diff", "0:1,2:3"},
		{"-series", "x", "-epoch", "1", "-merge", "f.prof", "-retain", "bogus"},
	} {
		code, _, stderr := cli(t, args...)
		if code != 2 {
			t.Errorf("%v exited %d, want 2; stderr:\n%s", args, code, stderr)
		}
	}
}
