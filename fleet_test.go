package hbbp

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// fleetTestWorkloads is a small mixed set (user-only, user+kernel,
// vectorized) keeping the fleet tests fast while covering both rings
// and several ISA families.
var fleetTestWorkloads = []string{"test40", "kernel-prime", "clforward-after", "lbm"}

// profileFleet collects one profile per workload, with the
// instrumentation reference attached so tests can score against
// ground truth.
func profileFleet(t *testing.T) (profiles []*Profile, refs []*Instrumenter) {
	t.Helper()
	s, err := New(WithSeed(9), WithWorkloadScale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range fleetTestWorkloads {
		w, err := LookupWorkload(name)
		if err != nil {
			t.Fatalf("LookupWorkload(%s): %v", name, err)
		}
		ref := NewInstrumenter(w.Prog)
		prof, err := s.Profile(context.Background(), w, ref)
		if err != nil {
			t.Fatalf("Profile(%s): %v", name, err)
		}
		profiles = append(profiles, prof)
		refs = append(refs, ref)
	}
	return profiles, refs
}

// TestSaveLoadMergeRoundTripParity pins the acceptance criterion:
// save -> load -> merge of K single-workload profiles is bit-identical
// to one in-memory merge of the captures.
func TestSaveLoadMergeRoundTripParity(t *testing.T) {
	profiles, _ := profileFleet(t)
	var inMemory, reloaded []*StoredProfile
	for i, prof := range profiles {
		sp, err := CaptureProfile(prof, fleetTestWorkloads[i])
		if err != nil {
			t.Fatal(err)
		}
		inMemory = append(inMemory, sp)

		var buf bytes.Buffer
		if err := SaveProfile(&buf, sp); err != nil {
			t.Fatalf("SaveProfile(%s): %v", fleetTestWorkloads[i], err)
		}
		back, err := LoadProfile(&buf)
		if err != nil {
			t.Fatalf("LoadProfile(%s): %v", fleetTestWorkloads[i], err)
		}
		reloaded = append(reloaded, back)
	}
	want := MergeProfiles(inMemory...)
	got := MergeProfiles(reloaded...)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("save -> load -> merge differs from the in-memory merge")
	}
	var a, b bytes.Buffer
	if err := SaveProfile(&a, want); err != nil {
		t.Fatal(err)
	}
	if err := SaveProfile(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged profiles serialize to different bytes")
	}
}

// TestAggregatorFleetMixAccuracyAtAnyParallelism pins the other half
// of the acceptance criterion: the aggregator's merged mix matches the
// ground-truth union of the per-run instrumentation references within
// the harness's error metric, and the snapshot is bit-identical
// whether one goroutine ingested the runs or eight did.
func TestAggregatorFleetMixAccuracyAtAnyParallelism(t *testing.T) {
	profiles, refs := profileFleet(t)
	union := make(Mix)
	for _, ref := range refs {
		for op, v := range ReferenceMix(ref) {
			union[op] += v
		}
	}

	var snapshots []*StoredProfile
	for _, workers := range []int{1, 8} {
		agg := NewAggregator()
		var wg sync.WaitGroup
		idx := make(chan int)
		errs := make([]error, len(profiles))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = agg.Add(profiles[i], fleetTestWorkloads[i])
				}
			}()
		}
		for i := range profiles {
			idx <- i
		}
		close(idx)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		snapshots = append(snapshots, agg.Snapshot())
	}

	var a, b bytes.Buffer
	if err := SaveProfile(&a, snapshots[0]); err != nil {
		t.Fatal(err)
	}
	if err := SaveProfile(&b, snapshots[1]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("aggregator snapshot differs between ingestion parallelism 1 and 8")
	}

	// Accuracy: the instrumentation reference is user-mode only, so
	// score the user-scope fleet mix. The workloads run at reduced
	// scale (noisier sampling), hence the loose bound; what this
	// guards is that quantization + merging preserves the estimate.
	err := AvgWeightedError(union, StoredMix(snapshots[0], ScopeUser))
	if err > 0.25 {
		t.Errorf("merged fleet mix error %.1f%% vs instrumentation union", err*100)
	}
	t.Logf("fleet mix error vs union: %.2f%%", err*100)
}

// TestStoredPivotViews pins that the standard views work on stored
// profiles: mnemonic totals match the stored op masses and the ring
// breakdown matches RingMass.
func TestStoredPivotViews(t *testing.T) {
	profiles, _ := profileFleet(t)
	var stored []*StoredProfile
	for i, prof := range profiles {
		sp, err := CaptureProfile(prof, fleetTestWorkloads[i])
		if err != nil {
			t.Fatal(err)
		}
		stored = append(stored, sp)
	}
	merged := MergeProfiles(stored...)
	tab := StoredPivot(merged)
	var pivotTotal float64
	for _, row := range TopMnemonics(tab, 0) {
		pivotTotal += row.Value
	}
	if want := float64(merged.TotalMass()); pivotTotal != want {
		t.Errorf("pivot mnemonic total %v != stored mass %v", pivotTotal, want)
	}
	rings := RingBreakdown(tab)
	if len(rings) != 2 {
		t.Fatalf("RingBreakdown = %+v (want user and kernel rows)", rings)
	}
	for _, row := range rings {
		var want uint64
		switch row.Keys[0] {
		case "user":
			want = merged.RingMass(0)
		case "kernel":
			want = merged.RingMass(1)
		default:
			t.Fatalf("unexpected ring %q", row.Keys[0])
		}
		if row.Value != float64(want) {
			t.Errorf("ring %s pivot %v != stored %d", row.Keys[0], row.Value, want)
		}
	}
	if len(ExtBreakdown(tab)) == 0 {
		t.Error("ExtBreakdown empty on stored pivot")
	}

	// Location views read the block-level pivot: function totals match
	// the stored block masses and the total matches the op mass.
	btab := StoredBlockPivot(merged)
	funcs := TopFunctions(btab, 0)
	if len(funcs) == 0 {
		t.Fatal("TopFunctions empty on stored block pivot")
	}
	var blockTotal float64
	for _, row := range funcs {
		if row.Keys[0] == "" {
			t.Errorf("blank function name in block pivot: %+v", row)
		}
		blockTotal += row.Value
	}
	if want := float64(merged.TotalMass()); blockTotal != want {
		t.Errorf("block pivot total %v != stored mass %v", blockTotal, want)
	}
	// The unit dimension keeps builds apart in custom queries.
	units := btab.Pivot(Query{GroupBy: []string{DimUnit}})
	if len(units) != len(fleetTestWorkloads) {
		t.Errorf("unit rollup = %+v, want %d units", units, len(fleetTestWorkloads))
	}
}

// TestDiffProfilesFlagsVectorizationRegression drives the diff on the
// CLForward pair — the paper's own before/after case study — and
// expects the share movement between scalar and packed SSE code to
// surface as regressions.
func TestDiffProfilesFlagsVectorizationRegression(t *testing.T) {
	s, err := New(WithSeed(9), WithWorkloadScale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	capture := func(name string) *StoredProfile {
		w, err := LookupWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := s.Profile(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := CaptureProfile(prof, name)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	// after -> before models the regression direction: a fix backed
	// out, packed work collapsing to scalar.
	diff := DiffProfiles(capture("clforward-after"), capture("clforward-before"), 0)
	if diff.Threshold != DefaultDiffThreshold {
		t.Fatalf("threshold = %v", diff.Threshold)
	}
	if len(diff.Regressions) == 0 {
		t.Fatalf("vectorization change produced no regressions; deltas: %+v", diff.Deltas[:min(5, len(diff.Deltas))])
	}
	if out := diff.Render(10); !bytes.Contains([]byte(out), []byte("REGRESSION")) {
		t.Errorf("render does not flag the regression:\n%s", out)
	}
}

// TestLoadProfileErrorClassification pins the façade sentinels on
// corrupted stored-profile streams.
func TestLoadProfileErrorClassification(t *testing.T) {
	profiles, _ := profileFleet(t)
	sp, err := CaptureProfile(profiles[0], "x")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveProfile(&buf, sp); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := LoadProfile(bytes.NewReader([]byte("not a profile at all"))); !errors.Is(err, ErrProfileMagic) {
		t.Errorf("bad magic = %v", err)
	}
	if _, err := LoadProfile(bytes.NewReader(full[:len(full)/2])); !errors.Is(err, ErrProfileTruncated) {
		t.Errorf("truncated = %v", err)
	}
	future := append([]byte(nil), full...)
	future[8] = 0xEE // bump the version field past anything supported
	if _, err := LoadProfile(bytes.NewReader(future)); !errors.Is(err, ErrProfileVersion) {
		t.Errorf("future version = %v", err)
	}
	// The profile-store sentinels are distinct from the perffile ones:
	// a replay stream is not a stored profile and vice versa.
	if errors.Is(ErrProfileMagic, ErrBadMagic) {
		t.Error("profile-store magic sentinel aliases the perffile one")
	}
	if _, err := CaptureProfile(nil, "x"); err == nil {
		t.Error("CaptureProfile(nil) succeeded")
	}
}
