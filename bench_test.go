// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B target per experiment. The benchmarks run
// the harness in fast mode (reduced repeats); use cmd/experiments for
// full-fidelity numbers.
package hbbp

import (
	"testing"

	"hbbp/internal/harness"
)

// benchRunner builds a fresh fast runner. Each benchmark constructs its
// own so b.N iterations don't hit the runner's internal caches.
func benchRunner() *harness.Runner {
	return harness.New(harness.Config{Fast: true, FastFactor: 0.1, Seed: 1})
}

// benchExperiment measures one full experiment regeneration.
func benchExperiment(b *testing.B, name string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := r.Run(name); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (clean vs SDE wall-clock).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2 (PMU event support matrix).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (per-block BBECs on Fitter SSE).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table 4 (sampling periods).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5 (Test40 evaluation).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table 6 (Fitter expected vs measured).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7 regenerates Table 7 (kernel-mode mix).
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8 regenerates Table 8 (CLForward packing view).
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkFigure1 regenerates Figure 1 (the learned decision tree).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "figure1") }

// BenchmarkFigure2 regenerates Figure 2 (SPEC suite overheads+errors).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }

// BenchmarkFigure3 regenerates Figure 3 (Test40 top-20 counts+errors).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates Figure 4 (Test40 per-mnemonic errors).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkRunAllExperiments regenerates every experiment through one
// shared collection plan on a fresh runner — the one-pass evaluation
// engine end to end. Compare against the sum of the per-experiment
// benchmarks above: the planner collects the union of required runs
// exactly once where the per-experiment path re-collects the corpus
// and overlapping workloads for every table.
func BenchmarkRunAllExperiments(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := r.RunAll(); err != nil {
			b.Fatalf("RunAll: %v", err)
		}
	}
}
