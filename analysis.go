package hbbp

import (
	"hbbp/internal/analyzer"
	"hbbp/internal/metrics"
	"hbbp/internal/pivot"
)

// InstructionMix produces the per-mnemonic execution histogram of a
// profile's hybrid BBECs under the view options — the library's
// headline output, the paper's "dynamic instruction mix".
func InstructionMix(prof *Profile, opts ViewOptions) Mix {
	return analyzer.Mix(prof.Prog, prof.BBECs, opts)
}

// MixFromBBECs produces the histogram implied by an arbitrary
// per-block count vector (block ID indexed) — e.g. a profile's raw
// EBS or LBR estimate, for comparing the single-source estimators the
// way Figures 2-4 do.
func MixFromBBECs(p *Program, bbecs []float64, opts ViewOptions) Mix {
	return analyzer.Mix(p, bbecs, opts)
}

// ReferenceMix converts an [Instrumenter]'s exact mnemonic histogram
// into a Mix, for scoring estimates against ground truth.
func ReferenceMix(ref *Instrumenter) Mix {
	return analyzer.ToMix(ref.Mnemonics())
}

// AvgWeightedError computes the paper's aggregate accuracy metric
// (Section VI) between a reference mix and a measured mix: the sum
// over mnemonics of the relative error weighted by the mnemonic's
// share of the reference instruction total.
func AvgWeightedError(ref, measured Mix) float64 {
	return metrics.AvgWeightedError(ref, measured)
}

// BuildPivot explodes a per-block count vector into a pivot table with
// one record per (block, mnemonic) and the full set of static
// attributes attached — module, function, block, ring, mnemonic, ISA
// extension, packing, category and memory behaviour (the Dim*
// constants), queryable in any combination.
func BuildPivot(p *Program, bbecs []float64, opts ViewOptions) *PivotTable {
	return analyzer.BuildPivot(p, bbecs, opts)
}

// Pivot builds the pivot table of a profile's hybrid BBECs.
func Pivot(prof *Profile, opts ViewOptions) *PivotTable {
	return analyzer.BuildPivot(prof.Prog, prof.BBECs, opts)
}

// TopMnemonics returns the n most-executed mnemonics view.
func TopMnemonics(tab *PivotTable, n int) []ResultRow {
	return analyzer.TopMnemonics(tab, n)
}

// TopFunctions returns the n hottest functions by retired
// instructions.
func TopFunctions(tab *PivotTable, n int) []ResultRow {
	return analyzer.TopFunctions(tab, n)
}

// ExtBreakdown returns retirements grouped by ISA extension.
func ExtBreakdown(tab *PivotTable) []ResultRow {
	return analyzer.ExtBreakdown(tab)
}

// PackingView returns the CLForward-style view of Table 8:
// instruction set by packing.
func PackingView(tab *PivotTable) []ResultRow {
	return analyzer.PackingView(tab)
}

// RingBreakdown splits retirements between user and kernel mode.
func RingBreakdown(tab *PivotTable) []ResultRow {
	return analyzer.RingBreakdown(tab)
}

// Render formats pivot rows as an aligned text table with the given
// key-column headers.
func Render(headers []string, rows []ResultRow) string {
	return pivot.Render(headers, rows)
}
