// Package cpu executes programs and produces the retired-instruction
// stream the profiling stack observes.
//
// The paper measures real hardware; its accuracy story hinges on what
// the retirement stream looks like to the PMU (which instructions
// retire, which branches are taken, how long-latency operations delay
// interrupt delivery). This simulator reproduces that stream: it walks a
// program's basic blocks, resolves counted loops, probabilistic forward
// branches, calls (including ring transitions into kernel code) and
// returns, and hands every retired instruction to the registered
// listeners (ground-truth instrumentation, the PMU model, or both — in
// the same run, so that reference and measurement observe the identical
// execution, like a deterministic workload run twice in the paper).
package cpu

import (
	"fmt"
	"math/rand"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// RetireEvent describes one retired instruction.
type RetireEvent struct {
	Addr   uint64         // instruction address
	Op     isa.Op         // retired opcode (live image: trace points retire NOPs)
	Block  *program.Block // enclosing basic block
	Ring   program.Ring   // privilege level
	Cycle  uint64         // retirement cycle
	Taken  bool           // instruction is a taken branch
	Target uint64         // branch target when Taken
}

// Listener consumes the retirement stream.
type Listener interface {
	// Retire is called once per retired instruction, in program order.
	Retire(ev *RetireEvent)
}

// Stats summarises one run.
type Stats struct {
	Retired       uint64 // total retired instructions
	KernelRetired uint64 // retired in ring 0
	TakenBranches uint64 // retired taken branches
	Cycles        uint64 // serial cycle count (sum of latencies)
}

// Config parameterises a run.
type Config struct {
	// Seed drives the probabilistic forward branches. Two runs with the
	// same seed execute identical paths.
	Seed int64
	// Repeat is how many times the entry function is invoked.
	Repeat int
	// MaxRetired aborts the run after this many retirements as a guard
	// against miswired programs. Zero means no limit.
	MaxRetired uint64
}

// blockInfo caches per-block layout the hot loop needs.
type blockInfo struct {
	addrs   []uint64
	ops     []isa.Op
	lastIdx int
}

// Machine executes one program. It is not safe for concurrent use.
type Machine struct {
	prog      *program.Program
	cfg       Config
	rng       *rand.Rand
	listeners []Listener
	info      []blockInfo
	loopCount []int
	callStack []*program.Block
	stats     Stats
}

// New prepares a machine for the given program.
func New(p *program.Program, cfg Config, listeners ...Listener) *Machine {
	if cfg.Repeat <= 0 {
		cfg.Repeat = 1
	}
	m := &Machine{
		prog:      p,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		listeners: listeners,
		info:      make([]blockInfo, p.NumBlocks()),
		loopCount: make([]int, p.NumBlocks()),
	}
	for _, b := range p.Blocks() {
		ops := b.EffectiveOps()
		bi := blockInfo{ops: ops, lastIdx: len(ops) - 1}
		addr := b.Addr
		for _, op := range ops {
			bi.addrs = append(bi.addrs, addr)
			addr += uint64(op.Bytes())
		}
		m.info[b.ID] = bi
	}
	return m
}

// Run invokes the entry function cfg.Repeat times and returns run
// statistics. Every listener sees the full retirement stream.
func (m *Machine) Run(entry *program.Function) (Stats, error) {
	for i := 0; i < m.cfg.Repeat; i++ {
		if err := m.runOnce(entry); err != nil {
			return m.stats, err
		}
	}
	return m.stats, nil
}

// ErrRetireLimit is returned when MaxRetired is exceeded.
var ErrRetireLimit = fmt.Errorf("cpu: retirement limit exceeded")

func (m *Machine) runOnce(entry *program.Function) error {
	cur := entry.Entry()
	m.callStack = m.callStack[:0]
	for cur != nil {
		if m.cfg.MaxRetired > 0 && m.stats.Retired > m.cfg.MaxRetired {
			return fmt.Errorf("%w: %d instructions (check loop wiring in %s)",
				ErrRetireLimit, m.stats.Retired, m.prog.Name)
		}
		next, err := m.execBlock(cur)
		if err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// execBlock retires all instructions of blk, resolves its terminator and
// returns the next block (nil when the outermost function returned).
func (m *Machine) execBlock(blk *program.Block) (*program.Block, error) {
	bi := &m.info[blk.ID]
	ring := blk.Fn.Mod.Ring

	// Resolve the terminator first so the final instruction can carry
	// its taken-branch flag.
	var (
		next      *program.Block
		taken     bool
		target    uint64
		isControl bool
	)
	t := &blk.Term
	switch t.Kind {
	case program.TermFallthrough:
		next = t.Next
	case program.TermJump:
		next, taken, target, isControl = t.Target, true, t.Target.Addr, true
	case program.TermLoop:
		m.loopCount[blk.ID]++
		if m.loopCount[blk.ID] < t.Trip {
			next, taken, target = t.Target, true, t.Target.Addr
		} else {
			m.loopCount[blk.ID] = 0
			next = t.Next
		}
		isControl = true
	case program.TermCond:
		if m.rng.Float64() < t.Prob {
			next, taken, target = t.Target, true, t.Target.Addr
		} else {
			next = t.Next
		}
		isControl = true
	case program.TermCall:
		m.callStack = append(m.callStack, t.Next)
		next, taken, target, isControl = t.Callee.Entry(), true, t.Callee.Addr(), true
	case program.TermReturn:
		if n := len(m.callStack); n > 0 {
			next = m.callStack[n-1]
			m.callStack = m.callStack[:n-1]
			target = next.Addr
		}
		taken, isControl = true, true
	default:
		return nil, fmt.Errorf("cpu: block %s: unknown terminator %v", blk, t.Kind)
	}

	ev := RetireEvent{Block: blk, Ring: ring}
	for i, op := range bi.ops {
		m.stats.Retired++
		m.stats.Cycles += uint64(op.Latency())
		if ring == program.RingKernel {
			m.stats.KernelRetired++
		}
		ev.Addr = bi.addrs[i]
		ev.Op = op
		ev.Cycle = m.stats.Cycles
		if i == bi.lastIdx && isControl {
			ev.Taken = taken
			ev.Target = target
			if taken {
				m.stats.TakenBranches++
			}
		} else {
			ev.Taken = false
			ev.Target = 0
		}
		for _, l := range m.listeners {
			l.Retire(&ev)
		}
	}
	return next, nil
}

// Run is a convenience wrapper constructing a Machine and running it.
func Run(p *program.Program, entry *program.Function, cfg Config, listeners ...Listener) (Stats, error) {
	return New(p, cfg, listeners...).Run(entry)
}

// CountingListener counts exact per-block executions — the ground-truth
// BBEC oracle used to label training data and score estimators. Unlike
// the SDE model in internal/sde it sees all rings; it exists for tests
// and calibration rather than as a paper artefact.
type CountingListener struct {
	Exec []uint64 // per block ID, incremented at the block's first instruction
}

// NewCountingListener sizes the counter array for program p.
func NewCountingListener(p *program.Program) *CountingListener {
	return &CountingListener{Exec: make([]uint64, p.NumBlocks())}
}

// Retire implements Listener.
func (c *CountingListener) Retire(ev *RetireEvent) {
	if ev.Addr == ev.Block.Addr {
		c.Exec[ev.Block.ID]++
	}
}
