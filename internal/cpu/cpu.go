// Package cpu executes programs and produces the retired-instruction
// stream the profiling stack observes.
//
// The paper measures real hardware; its accuracy story hinges on what
// the retirement stream looks like to the PMU (which instructions
// retire, which branches are taken, how long-latency operations delay
// interrupt delivery). This simulator reproduces that stream: it walks a
// program's basic blocks, resolves counted loops, probabilistic forward
// branches, calls (including ring transitions into kernel code) and
// returns, and hands every retired instruction to the registered
// listeners (ground-truth instrumentation, the PMU model, or both — in
// the same run, so that reference and measurement observe the identical
// execution, like a deterministic workload run twice in the paper).
//
// The stream is dispatched at block granularity: a BlockEvent describes
// the retirement of one whole basic block, with the per-instruction
// layout (addresses, opcodes, cached isa.Info, cycle offsets)
// precomputed once at Machine construction. Listeners that implement
// BlockListener consume blocks directly — the PMU model exploits this
// to skip per-instruction work entirely between counter overflows —
// while plain Listeners receive the identical per-instruction replay
// through an adapter, so both views observe the same execution.
package cpu

import (
	"context"
	"fmt"
	"math/rand"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// RetireEvent describes one retired instruction.
type RetireEvent struct {
	Addr   uint64         // instruction address
	Op     isa.Op         // retired opcode (live image: trace points retire NOPs)
	Block  *program.Block // enclosing basic block
	Ring   program.Ring   // privilege level
	Cycle  uint64         // retirement cycle
	Taken  bool           // instruction is a taken branch
	Target uint64         // branch target when Taken
}

// Listener consumes the retirement stream one instruction at a time.
type Listener interface {
	// Retire is called once per retired instruction, in program order.
	Retire(ev *RetireEvent)
}

// BlockEvent describes the retirement of one whole basic block: every
// instruction of the block retires in program order, and the final
// instruction carries the terminator's taken-branch outcome. The
// per-instruction views (Addrs, Ops, Infos, CycleSums) are the
// machine's per-block caches behind one pointer, shared across events
// and immutable for the run; listeners must not modify or retain them.
type BlockEvent struct {
	// info is the machine's whole per-block layout table, set once at
	// machine construction; idx selects the retired block. Identifying
	// the block by scalar index means the per-transition stores are all
	// pointer-free, so the retirement fast path runs with no write
	// barriers at all.
	info []blockInfo
	idx  int32
	// StartCycle is the machine cycle count when the block began
	// retiring.
	StartCycle uint64
	Taken      bool   // final instruction retired as a taken branch
	Target     uint64 // branch target when Taken, else 0
}

// inf returns the retired block's layout entry.
func (ev *BlockEvent) inf() *blockInfo { return &ev.info[ev.idx] }

// Block returns the retired block.
func (ev *BlockEvent) Block() *program.Block { return ev.inf().blk }

// BlockID returns the retired block's ID without touching the block
// itself — the O(1) identity listeners index per-block state with.
func (ev *BlockEvent) BlockID() int { return int(ev.idx) }

// Ring returns the privilege level the block retired at.
func (ev *BlockEvent) Ring() program.Ring { return ev.inf().ring }

// Len returns the number of instructions the event retires.
func (ev *BlockEvent) Len() int { return len(ev.inf().ops) }

// Addrs returns the per-instruction addresses.
func (ev *BlockEvent) Addrs() []uint64 { return ev.inf().addrs }

// Ops returns the retired opcodes (live image: trace points retire
// NOPs).
func (ev *BlockEvent) Ops() []isa.Op { return ev.inf().ops }

// Infos returns the cached static attributes, same indexing as Ops.
func (ev *BlockEvent) Infos() []isa.Info { return ev.inf().infos }

// CycleSums returns the cumulative latencies: CycleSums()[i] is the
// latency of Ops()[0..i], so instruction i retires at cycle
// StartCycle + CycleSums()[i].
func (ev *BlockEvent) CycleSums() []uint64 { return ev.inf().cycleSums }

// Cycle returns the retirement cycle of instruction i.
func (ev *BlockEvent) Cycle(i int) uint64 { return ev.StartCycle + ev.inf().cycleSums[i] }

// EachRetire replays the block as per-instruction retirement events,
// calling f once per instruction in program order with the cached
// static info — the single definition of how a block event flattens
// back into the per-instruction stream (only the final instruction
// carries the taken-branch outcome). scratch is the reused event
// storage; the info pointer aliases the immutable layout cache; f must
// retain neither.
func (ev *BlockEvent) EachRetire(scratch *RetireEvent, f func(*RetireEvent, *isa.Info)) {
	bi := ev.inf()
	scratch.Block, scratch.Ring = bi.blk, bi.ring
	last := len(bi.ops) - 1
	for i, op := range bi.ops {
		scratch.Addr = bi.addrs[i]
		scratch.Op = op
		scratch.Cycle = ev.StartCycle + bi.cycleSums[i]
		if i == last && ev.Taken {
			scratch.Taken, scratch.Target = true, ev.Target
		} else {
			scratch.Taken, scratch.Target = false, 0
		}
		f(scratch, &bi.infos[i])
	}
}

// BlockListener consumes the retirement stream at block granularity —
// the fast path. Implementations that need per-instruction detail read
// it from the event's cached layout; implementations that do not (the
// common case between PMU overflows) touch each block in O(1).
type BlockListener interface {
	// RetireBlock is called once per retired basic block, in program
	// order.
	RetireBlock(ev *BlockEvent)
}

// replayListener adapts a per-instruction Listener to the block stream
// by replaying every block event instruction by instruction — the exact
// Retire call sequence the listener observed before block granularity.
type replayListener struct {
	l  Listener
	ev RetireEvent
}

// RetireBlock implements BlockListener.
func (r *replayListener) RetireBlock(bev *BlockEvent) {
	bev.EachRetire(&r.ev, func(ev *RetireEvent, _ *isa.Info) { r.l.Retire(ev) })
}

// resolveListener picks the dispatch path for one listener: native
// block listeners are used directly unless perInstruction forces the
// per-instruction replay adapter (the reference path parity tests
// exercise).
func resolveListener(l Listener, perInstruction bool) BlockListener {
	if bl, ok := l.(BlockListener); ok && !perInstruction {
		return bl
	}
	return &replayListener{l: l}
}

// Stats summarises one run.
type Stats struct {
	Retired       uint64 // total retired instructions
	KernelRetired uint64 // retired in ring 0
	TakenBranches uint64 // retired taken branches
	Cycles        uint64 // serial cycle count (sum of latencies)
}

// Config parameterises a run.
type Config struct {
	// Seed drives the probabilistic forward branches. Two runs with the
	// same seed execute identical paths.
	Seed int64
	// Repeat is how many times the entry function is invoked.
	Repeat int
	// MaxRetired aborts the run after this many retirements as a guard
	// against miswired programs. Zero means no limit.
	MaxRetired uint64
	// PerInstruction forces every listener down the per-instruction
	// reference dispatch even when it implements BlockListener. Output
	// is identical either way — parity tests flip this flag to prove
	// the block fast path bit-exact against the reference path.
	PerInstruction bool
	// Ctx, when non-nil, cancels a run in flight: the machine polls it
	// every ctxCheckInterval blocks and aborts with an error wrapping
	// ctx.Err(). Cancellation never perturbs the execution it cuts
	// short — no RNG draw, no listener dispatch depends on it — so a
	// run that completes under a context is bit-identical to one
	// without.
	Ctx context.Context
	// Layout, when non-nil, supplies the precomputed dispatch table for
	// the program being run (see NewLayout), letting repeated runs skip
	// the per-machine derivation. A layout derived from a different
	// program is ignored and the machine derives its own.
	Layout *Layout
}

// ctxCheckInterval is how many retired blocks pass between context
// polls. Small enough to stop a runaway workload within microseconds,
// large enough to keep the check off the block fast path's profile.
const ctxCheckInterval = 1024

// blockInfo caches the per-block layout the hot loop needs, computed
// once per block: instruction addresses, the retired opcodes
// (effective ops — trace points retire NOPs), their static isa.Info,
// cumulative latencies, and the block's aggregate contribution to the
// run statistics.
type blockInfo struct {
	blk       *program.Block
	ring      program.Ring
	addrs     []uint64
	ops       []isa.Op
	infos     []isa.Info
	cycleSums []uint64 // cycleSums[i] = latency of ops[0..i]
	cycleSum  uint64   // total block latency
}

// Layout is the precomputed per-block dispatch table of one program
// image — everything the block fast path reads that depends only on
// the static code. Deriving it walks the whole image; a Layout is
// immutable afterwards and safe to share across any number of
// concurrent Machines of the same program, so callers that run one
// workload many times (the experiment harness, the workload registry's
// snapshotted images) pay the derivation and its allocations once
// instead of per run. Execution is bit-identical with or without a
// shared layout.
type Layout struct {
	prog *program.Program
	info []blockInfo
}

// NewLayout derives the dispatch table for p.
func NewLayout(p *program.Program) *Layout {
	l := &Layout{prog: p, info: make([]blockInfo, p.NumBlocks())}
	for _, b := range p.Blocks() {
		ops := b.EffectiveOps()
		bi := blockInfo{
			blk:       b,
			ring:      b.Fn.Mod.Ring,
			ops:       ops,
			addrs:     make([]uint64, len(ops)),
			infos:     make([]isa.Info, len(ops)),
			cycleSums: make([]uint64, len(ops)),
		}
		addr := b.Addr
		for i, op := range ops {
			info := op.Info()
			bi.infos[i] = info
			bi.addrs[i] = addr
			addr += uint64(info.Bytes)
			bi.cycleSum += uint64(info.Latency)
			bi.cycleSums[i] = bi.cycleSum
		}
		l.info[b.ID] = bi
	}
	return l
}

// Program returns the image the layout was derived from.
func (l *Layout) Program() *program.Program { return l.prog }

// Machine executes one program. It is not safe for concurrent use.
type Machine struct {
	prog      *program.Program
	cfg       Config
	rng       *rand.Rand
	listeners []BlockListener
	info      []blockInfo
	loopCount []int
	callStack []*program.Block
	stats     Stats
	bev       BlockEvent
	// ctxCountdown counts retired blocks down to the next poll of
	// cfg.Ctx; it starts at zero so an already-cancelled context stops
	// the run before the first block retires.
	ctxCountdown int
}

// New prepares a machine for the given program.
func New(p *program.Program, cfg Config, listeners ...Listener) *Machine {
	if cfg.Repeat <= 0 {
		cfg.Repeat = 1
	}
	layout := cfg.Layout
	if layout == nil || layout.prog != p {
		layout = NewLayout(p)
	}
	m := &Machine{
		prog:      p,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		info:      layout.info,
		loopCount: make([]int, p.NumBlocks()),
	}
	m.bev.info = layout.info
	for _, l := range listeners {
		m.listeners = append(m.listeners, resolveListener(l, cfg.PerInstruction))
	}
	return m
}

// Run invokes the entry function cfg.Repeat times and returns run
// statistics. Every listener sees the full retirement stream.
func (m *Machine) Run(entry *program.Function) (Stats, error) {
	for i := 0; i < m.cfg.Repeat; i++ {
		if err := m.runOnce(entry); err != nil {
			return m.stats, err
		}
	}
	return m.stats, nil
}

// ErrRetireLimit is returned when MaxRetired is exceeded.
var ErrRetireLimit = fmt.Errorf("cpu: retirement limit exceeded")

func (m *Machine) runOnce(entry *program.Function) error {
	cur := entry.Entry()
	m.callStack = m.callStack[:0]
	for cur != nil {
		if m.cfg.Ctx != nil {
			if m.ctxCountdown--; m.ctxCountdown < 0 {
				m.ctxCountdown = ctxCheckInterval
				if err := m.cfg.Ctx.Err(); err != nil {
					return fmt.Errorf("cpu: running %s: %w", m.prog.Name, err)
				}
			}
		}
		if m.cfg.MaxRetired > 0 && m.stats.Retired > m.cfg.MaxRetired {
			return fmt.Errorf("%w: %d instructions (check loop wiring in %s)",
				ErrRetireLimit, m.stats.Retired, m.prog.Name)
		}
		next, err := m.execBlock(cur)
		if err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// execBlock retires all instructions of blk as one block event,
// resolves its terminator and returns the next block (nil when the
// outermost function returned).
func (m *Machine) execBlock(blk *program.Block) (*program.Block, error) {
	bi := &m.info[blk.ID]
	ring := bi.ring

	// Resolve the terminator first so the final instruction can carry
	// its taken-branch flag.
	var (
		next   *program.Block
		taken  bool
		target uint64
	)
	t := &blk.Term
	switch t.Kind {
	case program.TermFallthrough:
		next = t.Next
	case program.TermJump:
		next, taken, target = t.Target, true, t.Target.Addr
	case program.TermLoop:
		m.loopCount[blk.ID]++
		if m.loopCount[blk.ID] < t.Trip {
			next, taken, target = t.Target, true, t.Target.Addr
		} else {
			m.loopCount[blk.ID] = 0
			next = t.Next
		}
	case program.TermCond:
		if m.rng.Float64() < t.Prob {
			next, taken, target = t.Target, true, t.Target.Addr
		} else {
			next = t.Next
		}
	case program.TermCall:
		m.callStack = append(m.callStack, t.Next)
		next, taken, target = t.Callee.Entry(), true, t.Callee.Addr()
	case program.TermReturn:
		if n := len(m.callStack); n > 0 {
			next = m.callStack[n-1]
			m.callStack = m.callStack[:n-1]
			target = next.Addr
		}
		taken = true
	default:
		return nil, fmt.Errorf("cpu: block %s: unknown terminator %v", blk, t.Kind)
	}

	n := uint64(len(bi.ops))
	if n == 0 {
		// An empty block retires nothing — in particular no branch
		// instruction, so a taken terminator leaves no trace.
		return next, nil
	}
	start := m.stats.Cycles
	m.stats.Retired += n
	m.stats.Cycles += bi.cycleSum
	if ring == program.RingKernel {
		m.stats.KernelRetired += n
	}
	if taken {
		m.stats.TakenBranches++
	}

	bev := &m.bev
	bev.idx = int32(blk.ID)
	bev.StartCycle = start
	bev.Taken, bev.Target = taken, target
	for _, l := range m.listeners {
		l.RetireBlock(bev)
	}
	return next, nil
}

// Run is a convenience wrapper constructing a Machine and running it.
func Run(p *program.Program, entry *program.Function, cfg Config, listeners ...Listener) (Stats, error) {
	return New(p, cfg, listeners...).Run(entry)
}

// CountingListener counts exact per-block executions — the ground-truth
// BBEC oracle used to label training data and score estimators. Unlike
// the SDE model in internal/sde it sees all rings; it exists for tests
// and calibration rather than as a paper artefact.
type CountingListener struct {
	Exec []uint64 // per block ID, incremented once per block entry
}

// NewCountingListener sizes the counter array for program p.
func NewCountingListener(p *program.Program) *CountingListener {
	return &CountingListener{Exec: make([]uint64, p.NumBlocks())}
}

// RetireBlock implements BlockListener — one increment per block entry.
func (c *CountingListener) RetireBlock(ev *BlockEvent) {
	c.Exec[ev.BlockID()]++
}

// Retire implements Listener, the per-instruction reference path.
func (c *CountingListener) Retire(ev *RetireEvent) {
	if ev.Addr == ev.Block.Addr {
		c.Exec[ev.Block.ID]++
	}
}

var (
	_ Listener      = (*CountingListener)(nil)
	_ BlockListener = (*CountingListener)(nil)
)
