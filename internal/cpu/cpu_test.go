package cpu

import (
	"errors"
	"math"
	"testing"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// testProgram builds: main { entry; loop(head..latch x trips); call helper; exit }
// plus a kernel function reached via a syscall from helper.
func testProgram(t testing.TB, trips int) (*program.Program, *program.Function) {
	t.Helper()
	b := program.NewBuilder("cputest")
	mod := b.Module("main", program.RingUser)
	kmod := b.Module("kernel", program.RingKernel)

	kfn := b.Function(kmod, "sys_work")
	kb := b.Block(kfn, isa.MOV, isa.ADD, isa.CMP)
	b.Return(kb)

	helper := b.Function(mod, "helper")
	h1 := b.Block(helper, isa.PUSH, isa.MOV)
	h2 := b.Block(helper, isa.POP)
	b.Call(h1, kfn, h2)
	b.Return(h2)

	main := b.Function(mod, "main")
	entry := b.Block(main, isa.PUSH, isa.MOV)
	head := b.Block(main, isa.ADD, isa.MUL)
	latch := b.Block(main, isa.INC, isa.CMP)
	callB := b.Block(main, isa.MOV)
	exit := b.Block(main, isa.POP)
	b.Fallthrough(entry, head)
	b.Fallthrough(head, latch)
	b.Loop(latch, isa.JNZ, head, callB, trips)
	b.Call(callB, helper, exit)
	b.Return(exit)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, main
}

func TestLoopTripCounts(t *testing.T) {
	const trips, repeat = 7, 3
	p, main := testProgram(t, trips)
	count := NewCountingListener(p)
	stats, err := Run(p, main, Config{Repeat: repeat}, count)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	head := p.FuncByName("main").Blocks[1]
	latch := p.FuncByName("main").Blocks[2]
	entry := p.FuncByName("main").Blocks[0]
	if got := count.Exec[entry.ID]; got != repeat {
		t.Errorf("entry executed %d times, want %d", got, repeat)
	}
	if got := count.Exec[head.ID]; got != trips*repeat {
		t.Errorf("loop head executed %d times, want %d", got, trips*repeat)
	}
	if got := count.Exec[latch.ID]; got != trips*repeat {
		t.Errorf("latch executed %d times, want %d", got, trips*repeat)
	}
	if stats.Retired == 0 || stats.Cycles < stats.Retired {
		t.Errorf("stats look wrong: %+v", stats)
	}
}

func TestCallAndKernelRing(t *testing.T) {
	p, main := testProgram(t, 2)
	var kernelOps, userOps int
	var syscallSeen bool
	lis := listenerFunc(func(ev *RetireEvent) {
		if ev.Ring == program.RingKernel {
			kernelOps++
		} else {
			userOps++
		}
		if ev.Op == isa.SYSCALL && ev.Taken {
			syscallSeen = true
			kfn := p.FuncByName("sys_work")
			if ev.Target != kfn.Addr() {
				t.Errorf("SYSCALL target %#x, want %#x", ev.Target, kfn.Addr())
			}
		}
	})
	stats, err := Run(p, main, Config{Repeat: 1}, lis)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !syscallSeen {
		t.Error("no SYSCALL retired")
	}
	// sys_work has 4 instructions (MOV ADD CMP SYSRET), called once.
	if kernelOps != 4 {
		t.Errorf("kernel retired %d, want 4", kernelOps)
	}
	if stats.KernelRetired != uint64(kernelOps) {
		t.Errorf("stats.KernelRetired = %d, want %d", stats.KernelRetired, kernelOps)
	}
	if userOps == 0 {
		t.Error("no user instructions retired")
	}
}

func TestTakenBranchTargets(t *testing.T) {
	p, main := testProgram(t, 3)
	head := p.FuncByName("main").Blocks[1]
	var backEdges, fallThroughs int
	lis := listenerFunc(func(ev *RetireEvent) {
		if ev.Op != isa.JNZ {
			return
		}
		if ev.Taken {
			backEdges++
			if ev.Target != head.Addr {
				t.Errorf("back edge target %#x, want %#x", ev.Target, head.Addr)
			}
		} else {
			fallThroughs++
		}
	})
	if _, err := Run(p, main, Config{Repeat: 5}, lis); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if backEdges != 2*5 {
		t.Errorf("back edges %d, want 10 (trip-1 per activation x5)", backEdges)
	}
	if fallThroughs != 5 {
		t.Errorf("fallthroughs %d, want 5", fallThroughs)
	}
}

func TestCondProbability(t *testing.T) {
	b := program.NewBuilder("cond")
	mod := b.Module("m", program.RingUser)
	f := b.Function(mod, "f")
	entry := b.Block(f, isa.MOV, isa.CMP)
	then := b.Block(f, isa.ADD)
	merge := b.Block(f, isa.MOV)
	b.Cond(entry, isa.JZ, merge, then, 0.25) // taken -> skip then
	b.Fallthrough(then, merge)
	b.Return(merge)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	const n = 200000
	count := NewCountingListener(p)
	if _, err := Run(p, f, Config{Repeat: n, Seed: 42}, count); err != nil {
		t.Fatalf("Run: %v", err)
	}
	gotThen := float64(count.Exec[then.ID]) / n
	if math.Abs(gotThen-0.75) > 0.01 {
		t.Errorf("then-block frequency %.4f, want 0.75 +/- 0.01", gotThen)
	}
	if count.Exec[merge.ID] != n {
		t.Errorf("merge executed %d, want %d", count.Exec[merge.ID], n)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		b := program.NewBuilder("det")
		mod := b.Module("m", program.RingUser)
		f := b.Function(mod, "f")
		entry := b.Block(f, isa.MOV)
		a := b.Block(f, isa.ADD)
		c := b.Block(f, isa.SUB)
		b.Cond(entry, isa.JNZ, c, a, 0.5)
		b.Fallthrough(a, c)
		b.Return(c)
		p, err := b.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		count := NewCountingListener(p)
		if _, err := Run(p, f, Config{Repeat: 1000, Seed: seed}, count); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return count.Exec
	}
	a1, a2, b1 := run(7), run(7), run(8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at block %d: %d vs %d", i, a1[i], a2[i])
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b1[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical stochastic counts")
	}
}

func TestTracePointRetiresNops(t *testing.T) {
	b := program.NewBuilder("trace")
	kmod := b.Module("kernel", program.RingKernel)
	f := b.Function(kmod, "sys_traced")
	pre := b.Block(f, isa.MOV, isa.ADD)
	post := b.Block(f, isa.SUB)
	b.TracePoint(pre, post)
	b.Return(post)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	var ops []isa.Op
	var anyTaken bool
	lis := listenerFunc(func(ev *RetireEvent) {
		ops = append(ops, ev.Op)
		if ev.Block == pre && ev.Taken {
			anyTaken = true
		}
	})
	if _, err := Run(p, f, Config{}, lis); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Static: MOV ADD JMP | SUB SYSRET. Live: MOV ADD NOP NOP | SUB SYSRET.
	want := []isa.Op{isa.MOV, isa.ADD, isa.NOP, isa.NOP, isa.SUB, isa.SYSRET}
	if len(ops) != len(want) {
		t.Fatalf("retired %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("retired %v, want %v", ops, want)
		}
	}
	if anyTaken {
		t.Error("trace-point block retired a taken branch; live image should fall through")
	}
	// Static text still decodes with a JMP; live text decodes NOPs.
	static, err := program.Disassemble(kmod.Funcs[0].Mod)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	hasJmp := false
	for _, d := range static {
		if d.Op == isa.JMP {
			hasJmp = true
		}
	}
	if !hasJmp {
		t.Error("static image lost the trace-point JMP")
	}
	live, err := isa.Decode(kmod.LiveText(), kmod.Base)
	if err != nil {
		t.Fatalf("decode live text: %v", err)
	}
	for _, d := range live {
		if d.Op == isa.JMP {
			t.Error("live image still contains the trace-point JMP")
		}
	}
}

func TestRetireLimit(t *testing.T) {
	b := program.NewBuilder("spin")
	mod := b.Module("m", program.RingUser)
	f := b.Function(mod, "f")
	one := b.Block(f, isa.MOV)
	two := b.Block(f, isa.ADD, isa.JMP)
	b.Fallthrough(one, two)
	two.Term = program.Terminator{Kind: program.TermJump, Target: one}
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	_, err = Run(p, f, Config{MaxRetired: 1000})
	if !errors.Is(err, ErrRetireLimit) {
		t.Fatalf("err = %v, want ErrRetireLimit", err)
	}
}

func TestCyclesAccumulateLatency(t *testing.T) {
	b := program.NewBuilder("cyc")
	mod := b.Module("m", program.RingUser)
	f := b.Function(mod, "f")
	blk := b.Block(f, isa.DIV, isa.MOV)
	b.Return(blk)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	stats, err := Run(p, f, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint64(isa.DIV.Latency() + isa.MOV.Latency() + isa.RET_NEAR.Latency())
	if stats.Cycles != want {
		t.Errorf("cycles %d, want %d", stats.Cycles, want)
	}
}

// listenerFunc adapts a function to the Listener interface.
type listenerFunc func(ev *RetireEvent)

func (f listenerFunc) Retire(ev *RetireEvent) { f(ev) }
