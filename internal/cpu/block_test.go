package cpu

import (
	"reflect"
	"testing"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// recordingBlockListener captures the block stream as flattened
// per-instruction tuples, so it can be compared against a plain
// per-instruction listener's view of the same execution.
type recordingBlockListener struct {
	events []RetireEvent
	blocks int
}

// Retire implements Listener so the recorder can register; the machine
// dispatches it through RetireBlock unless PerInstruction is forced.
func (r *recordingBlockListener) Retire(ev *RetireEvent) {
	r.events = append(r.events, *ev)
}

func (r *recordingBlockListener) RetireBlock(ev *BlockEvent) {
	r.blocks++
	last := ev.Len() - 1
	for i, op := range ev.Ops() {
		rec := RetireEvent{
			Addr:  ev.Addrs()[i],
			Op:    op,
			Block: ev.Block(),
			Ring:  ev.Ring(),
			Cycle: ev.Cycle(i),
		}
		if i == last && ev.Taken {
			rec.Taken, rec.Target = true, ev.Target
		}
		r.events = append(r.events, rec)
		if ev.Infos()[i] != op.Info() {
			panic("cached info diverges from Op.Info()")
		}
	}
}

// TestBlockEventsMatchPerInstructionStream runs the same program twice
// with the same seed — once observed at block granularity, once through
// the per-instruction reference dispatch — and asserts the flattened
// streams and the run statistics are identical.
func TestBlockEventsMatchPerInstructionStream(t *testing.T) {
	p, main := testProgram(t, 5)

	blockRec := &recordingBlockListener{}
	blockStats, err := Run(p, main, Config{Seed: 3, Repeat: 4}, blockRec)
	if err != nil {
		t.Fatalf("block run: %v", err)
	}

	var instRec []RetireEvent
	lis := listenerFunc(func(ev *RetireEvent) { instRec = append(instRec, *ev) })
	instStats, err := Run(p, main, Config{Seed: 3, Repeat: 4, PerInstruction: true}, lis)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	if blockStats != instStats {
		t.Errorf("stats diverged: block %+v, reference %+v", blockStats, instStats)
	}
	if len(blockRec.events) != len(instRec) {
		t.Fatalf("stream lengths diverged: block %d, reference %d", len(blockRec.events), len(instRec))
	}
	for i := range instRec {
		if blockRec.events[i] != instRec[i] {
			t.Fatalf("event %d diverged:\nblock     %+v\nreference %+v", i, blockRec.events[i], instRec[i])
		}
	}
	if blockRec.blocks == 0 || blockRec.blocks >= len(blockRec.events) {
		t.Errorf("block events %d out of range for %d instructions", blockRec.blocks, len(blockRec.events))
	}
}

// TestCountingListenerPathParity asserts the oracle counts identically
// on the block fast path and the per-instruction reference path.
func TestCountingListenerPathParity(t *testing.T) {
	p, main := testProgram(t, 7)
	fast := NewCountingListener(p)
	if _, err := Run(p, main, Config{Seed: 11, Repeat: 3}, fast); err != nil {
		t.Fatalf("fast run: %v", err)
	}
	ref := NewCountingListener(p)
	if _, err := Run(p, main, Config{Seed: 11, Repeat: 3, PerInstruction: true}, ref); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !reflect.DeepEqual(fast.Exec, ref.Exec) {
		t.Errorf("per-block counts diverged:\nfast %v\nref  %v", fast.Exec, ref.Exec)
	}
}

// TestRunSteadyStateAllocs asserts the block fast path allocates
// nothing once per-block caches are warm: repeated runs of a machine
// with a block-capable listener stay allocation-free.
func TestRunSteadyStateAllocs(t *testing.T) {
	p, main := testProgram(t, 9)
	count := NewCountingListener(p)
	m := New(p, Config{Seed: 1}, count)
	if _, err := m.Run(main); err != nil { // warm-up: grows the call stack
		t.Fatalf("warm-up run: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.Run(main); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state run allocated %.1f times per run, want 0", allocs)
	}
}

// TestTraceJumpBlockEventRetiresNops asserts the block event carries
// the live-image ops (trace points retire NOPs, never a taken JMP).
func TestTraceJumpBlockEventRetiresNops(t *testing.T) {
	b := program.NewBuilder("trace-block")
	kmod := b.Module("kernel", program.RingKernel)
	f := b.Function(kmod, "sys_traced")
	pre := b.Block(f, isa.MOV, isa.ADD)
	post := b.Block(f, isa.SUB)
	b.TracePoint(pre, post)
	b.Return(post)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	rec := &recordingBlockListener{}
	if _, err := Run(p, f, Config{}, rec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []isa.Op{isa.MOV, isa.ADD, isa.NOP, isa.NOP, isa.SUB, isa.SYSRET}
	if len(rec.events) != len(want) {
		t.Fatalf("retired %d instructions, want %d", len(rec.events), len(want))
	}
	for i, ev := range rec.events {
		if ev.Op != want[i] {
			t.Errorf("instruction %d is %v, want %v", i, ev.Op, want[i])
		}
		if ev.Op == isa.NOP && ev.Taken {
			t.Error("live-patched trace point retired a taken branch")
		}
	}
}
