package tsstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hbbp/internal/profstore"
)

// The on-disk layout: a directory holding one stored-profile file per
// retained window (the profstore codec unchanged — each window file is
// a plain "HBBPROF1" profile any tooling can read on its own) plus a
// versioned index file binding them into a series.
//
// Index format, following the perffile/profstore conventions — fixed
// magic, little-endian uint32 version, varint-packed records, nothing
// after the last one:
//
//	header:  magic "HBBPSER1" | uint32 version
//	windows: uvarint n | n x (uvarint start | uvarint extent(=end-start) |
//	         uvarint size | uint32 crc32c)
//
// size and crc32c (Castagnoli, the fleetwire polynomial) are the
// window file's byte length and checksum: Open refuses a window file
// that does not match its index entry, so a torn copy, a stale file
// from an interrupted save, or a hand-swapped profile is caught before
// its mass pollutes a query. Writes are atomic per file (same-dir temp
// plus rename, index last), so a crash mid-save leaves the previous
// consistent store in place.

// IndexMagic identifies a series index file.
const IndexMagic = "HBBPSER1"

// IndexVersion is the current index format version.
const IndexVersion uint32 = 1

// IndexName is the index file's name inside a series directory.
const IndexName = "series.idx"

// Sentinel errors for malformed stores, mirroring profstore's
// classification pattern: decode failures wrap one of these for
// errors.Is, with contextual detail in the message.
var (
	// ErrBadMagic reports an index file that is not a series index.
	ErrBadMagic = errors.New("tsstore: bad series index magic")
	// ErrTruncatedRecord reports an index that ends mid-record.
	ErrTruncatedRecord = errors.New("tsstore: truncated series index")
	// ErrUnsupportedVersion reports a valid index header whose format
	// version this package cannot read.
	ErrUnsupportedVersion = errors.New("tsstore: unsupported series index version")
	// ErrWindowMismatch reports a window profile file whose size or
	// checksum disagrees with the index — a torn write, a stale file
	// or a swap; the store cannot be trusted until re-saved.
	ErrWindowMismatch = errors.New("tsstore: window file does not match index")
)

// Decoder bounds, in the profstore spirit: a corrupt count must fail
// fast, not allocate unbounded memory.
const (
	maxIndexWindows = 1 << 20
	indexPrealloc   = 1 << 10
)

// indexEntry is one decoded index record.
type indexEntry struct {
	span Span
	size uint64
	crc  uint32
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendIndex serializes the index for the given entries.
func appendIndex(buf []byte, entries []indexEntry) []byte {
	buf = append(buf, IndexMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, IndexVersion)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, e.span.Start)
		buf = binary.AppendUvarint(buf, e.span.End-e.span.Start)
		buf = binary.AppendUvarint(buf, e.size)
		buf = binary.LittleEndian.AppendUint32(buf, e.crc)
	}
	return buf
}

// classifyIndexReadError maps a mid-stream failure onto the sentinel
// it deserves: an early end is truncation, anything else keeps its own
// identity on the unwrap chain.
func classifyIndexReadError(what string, err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %s: %w", ErrTruncatedRecord, what, err)
	}
	return fmt.Errorf("tsstore: reading %s: %w", what, err)
}

// readIndex decodes a series index stream. Malformed streams return
// errors matching ErrBadMagic, ErrTruncatedRecord or
// ErrUnsupportedVersion under errors.Is; structurally impossible
// indexes (overlapping or unsorted windows, lying counts) are plain
// errors. Kept free of any filesystem dependency so the fuzz target
// can drive it with raw bytes.
func readIndex(r io.Reader) ([]indexEntry, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(IndexMagic)+4)
	if n, err := io.ReadFull(br, head); err != nil {
		// A short stream that does not even start with the magic was
		// never a series index; only a genuine magic prefix earns the
		// truncation classification.
		prefix := n
		if prefix > len(IndexMagic) {
			prefix = len(IndexMagic)
		}
		if string(head[:prefix]) != IndexMagic[:prefix] {
			return nil, ErrBadMagic
		}
		return nil, classifyIndexReadError("header", err)
	}
	if string(head[:len(IndexMagic)]) != IndexMagic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(head[len(IndexMagic):]); v != IndexVersion {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedVersion, v)
	}
	uvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, classifyIndexReadError(what, err)
		}
		return v, nil
	}
	n, err := uvarint("window count")
	if err != nil {
		return nil, err
	}
	if n > maxIndexWindows {
		return nil, fmt.Errorf("tsstore: implausible window count %d", n)
	}
	pre := n
	if pre > indexPrealloc {
		pre = indexPrealloc
	}
	entries := make([]indexEntry, 0, pre)
	for i := uint64(0); i < n; i++ {
		var e indexEntry
		start, err := uvarint("window start")
		if err != nil {
			return nil, err
		}
		extent, err := uvarint("window extent")
		if err != nil {
			return nil, err
		}
		if extent > ^uint64(0)-start {
			return nil, fmt.Errorf("tsstore: window %d span overflows: start %d extent %d", i, start, extent)
		}
		e.span = Span{Start: start, End: start + extent}
		if e.size, err = uvarint("window size"); err != nil {
			return nil, err
		}
		var crc [4]byte
		if _, err := io.ReadFull(br, crc[:]); err != nil {
			return nil, classifyIndexReadError("window checksum", err)
		}
		e.crc = binary.LittleEndian.Uint32(crc[:])
		if len(entries) > 0 && entries[len(entries)-1].span.End >= e.span.Start {
			return nil, fmt.Errorf("tsstore: windows %s and %s out of order or overlapping",
				entries[len(entries)-1].span, e.span)
		}
		entries = append(entries, e)
	}
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("tsstore: trailing data after series index")
	} else if err != io.EOF {
		return nil, fmt.Errorf("tsstore: reading trailer: %w", err)
	}
	return entries, nil
}

// windowFileName is the stored-profile file for one span.
func windowFileName(s Span) string {
	return fmt.Sprintf("w%016x-%016x.hbbprof", s.Start, s.End)
}

// Save writes the series to dir (created if missing): one profstore
// file per window, then the index, every file via a same-directory
// temp plus rename so readers and crashes see either the previous
// consistent store or the new one — never a torn mix the index would
// disown. Stale window files from earlier, finer-grained saves are
// removed last; a crash before that point leaves them inert (the index
// no longer references them, and Open ignores unreferenced files).
func (s *Series) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries := make([]indexEntry, 0, len(s.windows))
	live := make(map[string]bool, len(s.windows)+1)
	live[IndexName] = true
	var buf []byte
	for _, w := range s.windows {
		var err error
		if buf, err = profstore.AppendSave(buf[:0], w.prof); err != nil {
			return fmt.Errorf("tsstore: serializing window %s: %w", w.span, err)
		}
		name := windowFileName(w.span)
		live[name] = true
		if err := writeFileAtomic(dir, name, buf); err != nil {
			return fmt.Errorf("tsstore: writing window %s: %w", w.span, err)
		}
		entries = append(entries, indexEntry{
			span: w.span,
			size: uint64(len(buf)),
			crc:  crc32.Checksum(buf, castagnoli),
		})
	}
	if err := writeFileAtomic(dir, IndexName, appendIndex(nil, entries)); err != nil {
		return fmt.Errorf("tsstore: writing index: %w", err)
	}
	// Sweep stale window files (from saves of a finer-grained past
	// state) so the directory holds exactly the retained store.
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil // the store itself is complete; the sweep is best-effort
	}
	for _, de := range names {
		if name := de.Name(); !live[name] &&
			strings.HasPrefix(name, "w") && strings.HasSuffix(name, ".hbbprof") {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// writeFileAtomic stages data in a same-directory temp file and
// renames it over name.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tsstore-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// Open loads a series from dir. A directory without an index (or a
// nonexistent one) opens as an empty series — a fresh store needs no
// ceremony; anything else malformed returns a classified error:
// ErrBadMagic / ErrTruncatedRecord / ErrUnsupportedVersion for the
// index itself, ErrWindowMismatch for a window file whose bytes
// disagree with the index, and the profstore sentinels for a window
// file that matches its checksum but was written corrupt.
func Open(dir string) (*Series, error) {
	f, err := os.Open(filepath.Join(dir, IndexName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &Series{}, nil
		}
		return nil, err
	}
	defer f.Close()
	entries, err := readIndex(f)
	if err != nil {
		return nil, err
	}
	s := &Series{windows: make([]window, 0, len(entries))}
	for _, e := range entries {
		name := windowFileName(e.span)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("%w: window %s: file %s is missing", ErrWindowMismatch, e.span, name)
			}
			return nil, fmt.Errorf("tsstore: reading window %s: %w", e.span, err)
		}
		if uint64(len(data)) != e.size {
			return nil, fmt.Errorf("%w: window %s: %d bytes on disk, index says %d",
				ErrWindowMismatch, e.span, len(data), e.size)
		}
		if crc := crc32.Checksum(data, castagnoli); crc != e.crc {
			return nil, fmt.Errorf("%w: window %s: checksum %08x, index says %08x",
				ErrWindowMismatch, e.span, crc, e.crc)
		}
		p, err := profstore.LoadBytes(data)
		if err != nil {
			return nil, fmt.Errorf("tsstore: window %s: %w", e.span, err)
		}
		s.windows = append(s.windows, window{span: e.span, prof: p})
	}
	// readIndex already rejects unsorted or overlapping entries, but
	// assert the invariant the query path depends on anyway.
	if !sort.SliceIsSorted(s.windows, func(i, j int) bool {
		return s.windows[i].span.Start < s.windows[j].span.Start
	}) {
		return nil, fmt.Errorf("tsstore: index windows not ascending")
	}
	return s, nil
}
