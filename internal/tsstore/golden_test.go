package tsstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hbbp/internal/profstore"
)

// TestGoldenV1SeriesByteIdentity pins the series directory format
// against a committed v1 fixture: a store written before the interned
// kernel and merge tree existed must open through them and re-save to
// identical bytes, file for file — index and every window.
func TestGoldenV1SeriesByteIdentity(t *testing.T) {
	const fixture = "testdata/golden_v1_series"
	s, err := Open(fixture)
	if err != nil {
		t.Fatalf("Open fixture: %v", err)
	}

	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}

	want, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("re-save produced %d files, fixture has %d", len(got), len(want))
	}
	for _, e := range want {
		a, err := os.ReadFile(filepath.Join(fixture, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("re-save is missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs after Open → Save round trip", e.Name())
		}
	}

	// The merge tree answers over fixture data exactly as a flat merge
	// of every window does.
	lo, hi, ok := s.Bounds()
	if !ok {
		t.Fatal("fixture series is empty")
	}
	treeAns, _ := s.Window(lo, hi)
	var all []*profstore.Profile
	for i := 0; i < s.Len(); i++ {
		p, _ := s.At(i)
		all = append(all, p)
	}
	ta, err := profstore.AppendSave(nil, treeAns)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := profstore.AppendSave(nil, profstore.Merge(all...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta, fa) {
		t.Fatal("merge-tree answer over the fixture diverges from the flat merge")
	}
}
