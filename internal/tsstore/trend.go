package tsstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hbbp/internal/profstore"
)

// DefaultTrendK is the window count Trend uses when TrendOptions.K is
// zero: three consecutive windows, the smallest count where
// "monotonic" means more than "changed".
const DefaultTrendK = 3

// DefaultTrendThreshold is the share movement (as a fraction of total
// mass, first window to last) required to flag a monotonic drift when
// TrendOptions.Threshold is zero: half a percentage point.
const DefaultTrendThreshold = 0.005

// ErrNotEnoughWindows reports a Trend call over a series with fewer
// retained windows than the requested k — the caller needs more
// history (or a smaller -trend-k) before trends mean anything.
var ErrNotEnoughWindows = errors.New("tsstore: not enough retained windows for trend")

// TrendKind distinguishes what a trend entry tracks.
type TrendKind uint8

const (
	// TrendOp tracks one (mnemonic, ring)'s share of op mass.
	TrendOp TrendKind = iota
	// TrendFunction tracks one (unit, module, function)'s share of
	// block mass.
	TrendFunction
)

// String names the kind for rendering.
func (k TrendKind) String() string {
	if k == TrendFunction {
		return "function"
	}
	return "op"
}

// TrendEntry is one op or function whose retirement share moved
// monotonically across every one of the report's k windows.
type TrendEntry struct {
	Kind TrendKind
	// Name is the mnemonic (TrendOp) or unit/module.function
	// (TrendFunction).
	Name string
	// Ring is the privilege level (TrendOp only; functions aggregate
	// over rings under one symbol).
	Ring uint8
	// Shares is the per-window share of total mass, oldest window
	// first — strictly monotonic by construction.
	Shares []float64
	// Delta is Shares[k-1] - Shares[0]: the total drift, positive for
	// growth.
	Delta float64
}

// Direction renders the drift's sign.
func (e *TrendEntry) Direction() string {
	if e.Delta >= 0 {
		return "rising"
	}
	return "falling"
}

// TrendOptions parameterize a trend scan.
type TrendOptions struct {
	// K is how many of the newest retained windows to scan; zero
	// selects DefaultTrendK. A share must move strictly monotonically
	// across all K windows to be flagged.
	K int
	// Threshold is the minimum |total drift| (share fraction, first
	// window to last) to flag; zero selects DefaultTrendThreshold.
	Threshold float64
}

// TrendReport is the outcome of a trend scan over the newest k
// retained windows.
type TrendReport struct {
	// Windows are the scanned spans, oldest first.
	Windows []Span
	// Threshold is the resolved drift threshold.
	Threshold float64
	// Ops and Functions hold the flagged monotonic movers, sorted by
	// decreasing |Delta|, ties broken by name then ring.
	Ops, Functions []TrendEntry
}

// Trend scans the newest k retained windows for ops and functions
// whose share of retirement mass moves strictly monotonically across
// all of them with a total drift of at least threshold. Monotonic
// across k consecutive windows is the regression detector's shape
// test: a one-window spike fails it, while a steady climb — the
// signature of a creeping regression or a rollout changing the mix —
// passes. Returns ErrNotEnoughWindows if the series retains fewer
// than k windows. Shares are per-window fractions of that window's own
// total mass, so windows covering different epoch counts (after
// downsampling) compare directly.
func (s *Series) Trend(opts TrendOptions) (*TrendReport, error) {
	k := opts.K
	if k == 0 {
		k = DefaultTrendK
	}
	if k < 2 {
		return nil, fmt.Errorf("tsstore: trend needs k >= 2 windows, got %d", k)
	}
	if len(s.windows) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughWindows, len(s.windows), k)
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultTrendThreshold
	}
	rep := &TrendReport{Threshold: threshold}
	tail := s.windows[len(s.windows)-k:]
	for _, w := range tail {
		rep.Windows = append(rep.Windows, w.span)
	}

	type seriesKey struct {
		kind TrendKind
		name string
		ring uint8
	}
	shares := make(map[seriesKey][]float64)
	at := func(key seriesKey, wi int, share float64) {
		sl := shares[key]
		if sl == nil {
			sl = make([]float64, k)
			shares[key] = sl
		}
		sl[wi] = share
	}
	for wi, w := range tail {
		opTotal := float64(w.prof.TotalMass())
		if opTotal > 0 {
			for _, o := range w.prof.Ops {
				at(seriesKey{TrendOp, o.Mnemonic, o.Ring}, wi, float64(o.Mass)/opTotal)
			}
		}
		var blockTotal float64
		for i := range w.prof.Blocks {
			blockTotal += float64(w.prof.Blocks[i].Mass())
		}
		if blockTotal > 0 {
			fn := make(map[string]float64)
			for i := range w.prof.Blocks {
				b := &w.prof.Blocks[i]
				fn[fmt.Sprintf("%s/%s.%s", b.Unit, b.Module, b.Function)] += float64(b.Mass())
			}
			for name, mass := range fn {
				at(seriesKey{TrendFunction, name, 0}, wi, mass/blockTotal)
			}
		}
	}

	for key, sl := range shares {
		if !monotonic(sl) {
			continue
		}
		delta := sl[k-1] - sl[0]
		if abs(delta) < threshold {
			continue
		}
		e := TrendEntry{Kind: key.kind, Name: key.name, Ring: key.ring,
			Shares: sl, Delta: delta}
		if key.kind == TrendOp {
			rep.Ops = append(rep.Ops, e)
		} else {
			rep.Functions = append(rep.Functions, e)
		}
	}
	for _, sl := range [][]TrendEntry{rep.Ops, rep.Functions} {
		sort.Slice(sl, func(i, j int) bool {
			if di, dj := abs(sl[i].Delta), abs(sl[j].Delta); di != dj {
				return di > dj
			}
			if sl[i].Name != sl[j].Name {
				return sl[i].Name < sl[j].Name
			}
			return sl[i].Ring < sl[j].Ring
		})
	}
	return rep, nil
}

// monotonic reports whether the shares move strictly in one direction
// across every consecutive pair. An absent key in some window reads as
// share 0 there, so appearing (0 -> up) and vanishing count as moves.
func monotonic(sl []float64) bool {
	up, down := true, true
	for i := 1; i < len(sl); i++ {
		if sl[i] <= sl[i-1] {
			up = false
		}
		if sl[i] >= sl[i-1] {
			down = false
		}
	}
	return up || down
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render formats the report as an aligned text table showing up to n
// entries per section (n <= 0: all).
func (rep *TrendReport) Render(n int) string {
	var sb strings.Builder
	spans := make([]string, len(rep.Windows))
	for i, s := range rep.Windows {
		spans[i] = s.String()
	}
	fmt.Fprintf(&sb, "TREND — %d windows [%s], drift threshold %.2fpp: %d ops, %d functions moving monotonically\n",
		len(rep.Windows), strings.Join(spans, " "),
		rep.Threshold*100, len(rep.Ops), len(rep.Functions))
	for _, section := range []struct {
		title   string
		entries []TrendEntry
	}{{"OP", rep.Ops}, {"FUNCTION", rep.Functions}} {
		if len(section.entries) == 0 {
			continue
		}
		rows := section.entries
		if n > 0 && len(rows) > n {
			rows = rows[:n]
		}
		nw := len(section.title)
		for _, e := range rows {
			if len(e.Name) > nw {
				nw = len(e.Name)
			}
		}
		fmt.Fprintf(&sb, "%-*s  %-6s  %-7s  %9s  %s\n", nw, section.title, "RING", "TREND", "DRIFT", "SHARES")
		for _, e := range rows {
			ring := ""
			if e.Kind == TrendOp {
				ring = ringName(e.Ring)
			}
			parts := make([]string, len(e.Shares))
			for i, v := range e.Shares {
				parts[i] = fmt.Sprintf("%.1f%%", v*100)
			}
			fmt.Fprintf(&sb, "%-*s  %-6s  %-7s  %+8.2fpp  %s\n",
				nw, e.Name, ring, e.Direction(), e.Delta*100, strings.Join(parts, " -> "))
		}
	}
	return sb.String()
}

// ringName mirrors profstore's rendering without exporting it.
func ringName(r uint8) string {
	if r == profstore.RingKernel {
		return "kernel"
	}
	return "user"
}
