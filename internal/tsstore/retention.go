package tsstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hbbp/internal/profstore"
)

// Level is one rung of a retention ladder: keep Keep windows of Width
// epochs each before epochs age into the next (wider) rung.
type Level struct {
	// Width is the number of epochs per window at this level. The
	// first level must have Width 1 (raw epochs); every later width
	// must be a multiple of the one before it, so folded windows nest
	// exactly inside coarser buckets and re-folding stays lossless.
	Width uint64
	// Keep is how many epochs' worth of history stays at this level,
	// expressed in windows: Keep*Width epochs. Keep 0 on the last
	// level means "everything older", which is the only place an
	// unbounded count is allowed.
	Keep uint64
}

// Retention is a downsampling ladder, newest level first — e.g.
// {1,8},{4,4},{16,0}: the last 8 epochs stay raw, the 16 before those
// fold 4:1, everything older folds 16:1. The zero value retains
// everything raw (no folding).
type Retention struct {
	Levels []Level
}

// DefaultRetention is the ladder the daemon and CLI use when asked for
// retention without a spec: 8 raw epochs, then 4:1 for the next 16,
// then 16:1 forever.
func DefaultRetention() Retention {
	return Retention{Levels: []Level{{Width: 1, Keep: 8}, {Width: 4, Keep: 4}, {Width: 16}}}
}

// Validate checks the ladder's structural rules; a zero-value (empty)
// retention is valid and folds nothing.
func (r Retention) Validate() error {
	for i, lv := range r.Levels {
		if lv.Width == 0 {
			return fmt.Errorf("tsstore: retention level %d has width 0", i)
		}
		if i == 0 {
			if lv.Width != 1 {
				return fmt.Errorf("tsstore: first retention level must have width 1 (raw epochs), got %d", lv.Width)
			}
		} else {
			prev := r.Levels[i-1].Width
			if lv.Width <= prev || lv.Width%prev != 0 {
				return fmt.Errorf("tsstore: retention level %d width %d is not a growing multiple of %d",
					i, lv.Width, prev)
			}
		}
		if lv.Keep == 0 && i != len(r.Levels)-1 {
			return fmt.Errorf("tsstore: retention level %d keeps 0 windows but is not the last level", i)
		}
	}
	return nil
}

// String renders the ladder in the form ParseRetention reads.
func (r Retention) String() string {
	parts := make([]string, len(r.Levels))
	for i, lv := range r.Levels {
		parts[i] = fmt.Sprintf("%d:%d", lv.Width, lv.Keep)
	}
	return strings.Join(parts, ",")
}

// ParseRetention reads a ladder spec of comma-separated WIDTH:KEEP
// pairs, e.g. "1:8,4:4,16:0" — keep 8 raw epochs, then 4 windows of 4,
// then 16:1 unbounded. KEEP 0 is only valid on the last level (keep
// everything older at that width). The empty string is the empty
// (fold-nothing) retention.
func ParseRetention(spec string) (Retention, error) {
	var r Retention
	if strings.TrimSpace(spec) == "" {
		return r, nil
	}
	for _, part := range strings.Split(spec, ",") {
		ws, ks, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return Retention{}, fmt.Errorf("tsstore: retention level %q is not WIDTH:KEEP", part)
		}
		w, err := strconv.ParseUint(ws, 10, 64)
		if err != nil {
			return Retention{}, fmt.Errorf("tsstore: retention width %q: %v", ws, err)
		}
		k, err := strconv.ParseUint(ks, 10, 64)
		if err != nil {
			return Retention{}, fmt.Errorf("tsstore: retention keep %q: %v", ks, err)
		}
		r.Levels = append(r.Levels, Level{Width: w, Keep: k})
	}
	if err := r.Validate(); err != nil {
		return Retention{}, err
	}
	return r, nil
}

// Downsample applies the retention ladder to the series given the
// newest completed epoch. Windows older than a level's keep horizon
// fold into that level's width-aligned buckets — each fold is one
// profstore.Merge of whole windows, so the series' merged content is
// unchanged down to the bit, only its granularity coarsens. Returns
// the number of merges performed (0 means the series already conformed
// to the ladder). Folding only ever coarsens: epochs inside the raw
// horizon are untouched, and a window is folded only when it fits
// entirely inside its target bucket, which the width-multiple rule
// guarantees for windows this package produced.
func (s *Series) Downsample(r Retention, latest uint64) int {
	if len(r.Levels) < 2 {
		return 0
	}
	t0 := time.Now()
	defer foldWall.ObserveSince(t0)
	folds := 0
	defer func() { retentionFolds.Add(uint64(folds)) }()
	// horizon is the first epoch (inclusive) that must NOT fold into
	// the level being processed: everything newer stays at finer
	// widths. It starts one past the raw band and recedes by each
	// level's span.
	horizon, underflow := sub(latest+1, r.Levels[0].Width*r.Levels[0].Keep)
	for li := 1; li < len(r.Levels); li++ {
		if underflow {
			return folds // not enough history for this level yet
		}
		width := r.Levels[li].Width
		folds += s.foldLevel(width, horizon)
		if r.Levels[li].Keep == 0 {
			break // last level: unbounded, nothing recedes past it
		}
		horizon, underflow = sub(horizon, width*r.Levels[li].Keep)
	}
	return folds
}

// sub is saturating subtraction with an underflow report.
func sub(a, b uint64) (uint64, bool) {
	if b > a {
		return 0, true
	}
	return a - b, false
}

// foldLevel merges every run of windows sharing one width-aligned
// bucket that ends before horizon into a single window spanning the
// run's actual epochs. Returns the number of buckets that actually
// folded (had more than one window).
func (s *Series) foldLevel(width, horizon uint64) int {
	s.invalidate() // rebuilds the window list in place; memoized tree nodes go stale
	out := s.windows[:0]
	folds := 0
	for i := 0; i < len(s.windows); {
		w := s.windows[i]
		bucket := w.span.Start / width
		bucketEnd := bucket*width + width - 1
		if w.span.End > bucketEnd {
			// Already coarser than this level (folded by a wider rung
			// on an earlier pass): not this level's business.
			out = append(out, w)
			i++
			continue
		}
		if bucketEnd >= horizon {
			// Inside the keep band; every later window is newer, so
			// the pass is done for this level.
			out = append(out, s.windows[i:]...)
			s.windows = out
			return folds
		}
		// Gather the full run of windows inside this bucket.
		j := i + 1
		for j < len(s.windows) && s.windows[j].span.End <= bucketEnd {
			j++
		}
		if j == i+1 {
			out = append(out, w)
			i = j
			continue
		}
		profs := make([]*profstore.Profile, 0, j-i)
		for k := i; k < j; k++ {
			profs = append(profs, s.windows[k].prof)
		}
		out = append(out, window{
			span: Span{Start: w.span.Start, End: s.windows[j-1].span.End},
			prof: profstore.Merge(profs...),
		})
		folds++
		i = j
	}
	s.windows = out
	return folds
}
