package tsstore

import "hbbp/internal/telemetry"

// Package-level metric handles, resolved once at init against the
// process-wide registry. Every update below is a single atomic
// operation, so instrumenting the windowed-query path does not move
// the SeriesWindow benchmark.
var (
	windowQueries = telemetry.Default().Counter("hbbp_tsstore_window_queries_total",
		"Windowed queries answered.")
	windowWall = telemetry.Default().Histogram("hbbp_tsstore_window_seconds",
		"Windowed query wall time.", telemetry.NanosToSeconds, telemetry.DurationBuckets())
	windowSpans = telemetry.Default().Histogram("hbbp_tsstore_window_spans",
		"Retained windows covered per query.", 1, telemetry.CountBuckets())
	treeCacheHits = telemetry.Default().Counter("hbbp_tsstore_tree_cache_total",
		"Merge-tree node lookups by result.", "result", "hit")
	treeCacheMisses = telemetry.Default().Counter("hbbp_tsstore_tree_cache_total",
		"Merge-tree node lookups by result.", "result", "miss")
	treeCombines = telemetry.Default().Counter("hbbp_tsstore_tree_combines_total",
		"Interior merge-tree nodes computed (two-child merges).")
	epochAppends = telemetry.Default().Counter("hbbp_tsstore_epoch_appends_total",
		"Epoch profiles appended across all series.")
	retentionFolds = telemetry.Default().Counter("hbbp_tsstore_retention_folds_total",
		"Window buckets folded by downsampling.")
	foldWall = telemetry.Default().Histogram("hbbp_tsstore_downsample_seconds",
		"Downsample pass wall time.", telemetry.NanosToSeconds, telemetry.DurationBuckets())
)
