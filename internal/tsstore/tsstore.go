// Package tsstore is the time-series profile store: the fleet layer's
// time axis. Where internal/profstore answers "what is the fleet
// running" and Diff answers "what changed between these two mixes",
// this package answers "what changed over the last k windows" — the
// question a continuous-profiling deployment actually asks.
//
// A [Series] is an epoch-indexed sequence of windows, each holding one
// merged profstore profile for an inclusive epoch range. Profiles
// append per epoch ([Series.AppendEpoch]); a retention ladder
// ([Retention], [Series.Downsample]) folds old epochs into coarser
// windows — e.g. keep the last 8 raw, then 4 epochs per window, then
// 16 — bounding what a long-lived store or daemon holds; windowed
// queries ([Series.Window]) merge any [since, until] range back into
// one profile; and [Series.Trend] flags ops and functions whose
// retirement share moves monotonically across the last k windows.
//
// The store's keystone property is inherited from profstore and kept
// by construction: merging is exact integer addition over canonical
// keys, commutative and associative, so folding epochs into coarser
// windows is *lossless* for every query whose bounds align with the
// retained window boundaries. Any re-grouping of epochs — raw, 4:1,
// 16:1, or any mix — merges bit-identical to the flat merge of the
// same epochs; the property tests pin it down to serialized bytes.
// Downsampling here is not an approximation, which is the rare case
// where a retention policy can be proven exact rather than estimated.
//
// Like the other storage-format packages, tsstore stays liftable: it
// imports only the standard library, internal/profstore (whose codec
// the on-disk layout reuses; see disk.go) and the stdlib-only
// internal/telemetry counters, enforced by the repository's
// import-boundary test.
package tsstore

import (
	"fmt"
	"sort"
	"time"

	"hbbp/internal/profstore"
)

// Span is one retained window's inclusive epoch range.
type Span struct {
	// Start and End are the first and last epoch folded into the
	// window, inclusive. A raw (unfolded) epoch has Start == End.
	Start, End uint64
}

// Epochs returns the number of epochs the span covers.
func (s Span) Epochs() uint64 { return s.End - s.Start + 1 }

// Contains reports whether epoch e falls inside the span.
func (s Span) Contains(e uint64) bool { return s.Start <= e && e <= s.End }

// String renders the span compactly: "7" for a raw epoch, "4-7" for a
// folded window.
func (s Span) String() string {
	if s.Start == s.End {
		return fmt.Sprintf("%d", s.Start)
	}
	return fmt.Sprintf("%d-%d", s.Start, s.End)
}

// window is one retained window: a span plus the merged profile of
// every profile appended to an epoch inside it.
type window struct {
	span Span
	prof *profstore.Profile
}

// Series is an epoch-indexed profile store: non-overlapping windows in
// ascending epoch order, each holding the merged profile of its span.
// The zero value is an empty, usable series. A Series is not safe for
// concurrent use; callers that share one (fleetserver's tenants) hold
// their own lock.
type Series struct {
	windows []window

	// tree is the lazily-built merge tree: an implicit 1-indexed
	// segment tree over the window list whose node memoizes the merge
	// of its contiguous window range, so a windowed query combines
	// O(log n) pre-merged nodes instead of re-merging every window.
	// Because merging is associative, the tree's answer is
	// bit-identical to the flat merge. Built on first use by Window,
	// discarded by every mutation; treeN is the padded leaf count
	// (next power of two >= len(windows)).
	tree  []*profstore.Profile
	treeN int
}

// Len returns the number of retained windows.
func (s *Series) Len() int { return len(s.windows) }

// Spans returns the retained windows' epoch ranges, ascending.
func (s *Series) Spans() []Span {
	out := make([]Span, len(s.windows))
	for i := range s.windows {
		out[i] = s.windows[i].span
	}
	return out
}

// Bounds returns the lowest and highest retained epoch. ok is false
// for an empty series.
func (s *Series) Bounds() (lo, hi uint64, ok bool) {
	if len(s.windows) == 0 {
		return 0, 0, false
	}
	return s.windows[0].span.Start, s.windows[len(s.windows)-1].span.End, true
}

// At returns the merged profile of the i'th retained window (ascending
// epoch order) and its span. The profile is the series' own copy;
// callers must not mutate it.
func (s *Series) At(i int) (*profstore.Profile, Span) {
	return s.windows[i].prof, s.windows[i].span
}

// Clone returns a deep-enough copy: the window list is copied, the
// profiles are shared. Safe because every mutation path in this
// package replaces a window's profile (profstore.Merge allocates a
// fresh result) rather than editing it in place. The merge tree is
// deliberately NOT shared: Window memoizes into it, and callers like
// fleetserver clone under a lock but query the clone outside it — a
// shared tree would be a data race.
func (s *Series) Clone() *Series {
	return &Series{windows: append([]window(nil), s.windows...)}
}

// invalidate discards the memoized merge tree. Every mutation of the
// window list calls it; the next Window rebuilds lazily.
func (s *Series) invalidate() {
	s.tree, s.treeN = nil, 0
}

// locate returns the index of the window containing epoch e, or
// (insertion index, false) if no window contains it.
func (s *Series) locate(e uint64) (int, bool) {
	i := sort.Search(len(s.windows), func(i int) bool {
		return s.windows[i].span.End >= e
	})
	if i < len(s.windows) && s.windows[i].span.Contains(e) {
		return i, true
	}
	return i, false
}

// AppendEpoch folds one profile into the series at epoch e. If e falls
// inside an already-retained window — the common case is the newest
// raw epoch receiving many per-run profiles, but a late arrival for an
// epoch long since folded lands just as correctly — the profile merges
// into that window; otherwise a new raw window [e, e] is inserted in
// order. Nil profiles are ignored. The flat-merge invariant is
// preserved either way: a query covering e always reflects every
// profile ever appended at e.
func (s *Series) AppendEpoch(e uint64, p *profstore.Profile) {
	if p == nil {
		return
	}
	epochAppends.Inc()
	s.invalidate()
	i, ok := s.locate(e)
	if ok {
		s.windows[i].prof = profstore.Merge(s.windows[i].prof, p)
		return
	}
	s.windows = append(s.windows, window{})
	copy(s.windows[i+1:], s.windows[i:])
	s.windows[i] = window{span: Span{Start: e, End: e}, prof: profstore.Merge(p)}
}

// Window merges every retained window overlapping [since, until] into
// one canonical profile, returning it with the spans that contributed.
// The result is bit-identical to the flat profstore.Merge of every
// profile appended to those spans; it equals the flat merge of exactly
// the epochs [since, until] when the bounds align with retained window
// boundaries (always true before any downsampling, and true after for
// any query cut at fold boundaries — the spans tell the caller which
// epochs were actually included). An empty overlap returns the empty
// profile and no spans. since > until is a caller bug and returns the
// same empty result.
//
// Queries spanning more than two windows go through the memoized merge
// tree: the range decomposes into O(log n) covering nodes, each a
// pre-merged run of windows, so repeated or overlapping queries on an
// unchanged series re-merge only what the previous ones have not.
// Associativity makes the decomposed merge bit-identical to the flat
// one (the regrouping-invariance tests pin this to serialized bytes).
// Window therefore mutates memoization state; a Series is not safe for
// concurrent use (see Clone for the snapshot pattern).
func (s *Series) Window(since, until uint64) (*profstore.Profile, []Span) {
	if since > until {
		return &profstore.Profile{}, nil
	}
	windowQueries.Inc()
	t0 := time.Now()
	defer windowWall.ObserveSince(t0)
	i, _ := s.locate(since)
	j := i
	for j < len(s.windows) && s.windows[j].span.Start <= until {
		j++
	}
	if i == j {
		return &profstore.Profile{}, nil
	}
	windowSpans.Observe(int64(j - i))
	spans := make([]Span, j-i)
	for k := i; k < j; k++ {
		spans[k-i] = s.windows[k].span
	}
	if j-i <= 2 {
		// Too small for the tree to help: merge directly.
		profs := make([]*profstore.Profile, 0, 2)
		for k := i; k < j; k++ {
			profs = append(profs, s.windows[k].prof)
		}
		return profstore.Merge(profs...), spans
	}
	s.ensureTree()
	nodes := s.cover(1, 0, s.treeN, i, j, make([]*profstore.Profile, 0, 8))
	return profstore.Merge(nodes...), spans
}

// ensureTree allocates the (empty) merge tree if no valid one exists.
// Nodes fill in lazily as queries touch them.
func (s *Series) ensureTree() {
	if s.tree != nil {
		return
	}
	n := 1
	for n < len(s.windows) {
		n <<= 1
	}
	s.treeN = n
	s.tree = make([]*profstore.Profile, 2*n)
}

// cover appends the memoized profiles of the minimal set of tree nodes
// that exactly tile the window range [i, j), walking from node (which
// covers [lo, hi)) — the standard segment-tree decomposition, left to
// right so the merge order is deterministic.
func (s *Series) cover(node, lo, hi, i, j int, out []*profstore.Profile) []*profstore.Profile {
	if hi <= i || j <= lo {
		return out
	}
	if i <= lo && hi <= j {
		return append(out, s.nodeProfile(node, lo, hi))
	}
	mid := (lo + hi) / 2
	out = s.cover(2*node, lo, mid, i, j, out)
	return s.cover(2*node+1, mid, hi, i, j, out)
}

// nodeProfile returns node's merge of windows [lo, hi), computing and
// memoizing it (and its children) on first touch. cover only selects
// nodes fully inside the queried range, so hi never exceeds
// len(s.windows) and both children always exist.
func (s *Series) nodeProfile(node, lo, hi int) *profstore.Profile {
	if p := s.tree[node]; p != nil {
		treeCacheHits.Inc()
		return p
	}
	treeCacheMisses.Inc()
	var p *profstore.Profile
	if hi-lo == 1 {
		p = s.windows[lo].prof
	} else {
		mid := (lo + hi) / 2
		treeCombines.Inc()
		p = profstore.Merge(s.nodeProfile(2*node, lo, mid), s.nodeProfile(2*node+1, mid, hi))
	}
	s.tree[node] = p
	return p
}

// Merged returns the merge of the whole series — the flat fleet
// profile every retention state must agree with.
func (s *Series) Merged() *profstore.Profile {
	lo, hi, ok := s.Bounds()
	if !ok {
		return &profstore.Profile{}
	}
	p, _ := s.Window(lo, hi)
	return p
}
