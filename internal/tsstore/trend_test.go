package tsstore

import (
	"errors"
	"strings"
	"testing"

	"hbbp/internal/profstore"
)

// trendProfile builds one epoch's profile with explicit op masses and
// one function's block count, so share trajectories are exact.
func trendProfile(ops map[string]uint64, fnCounts map[string]uint64) *profstore.Profile {
	p := &profstore.Profile{
		Workloads: []profstore.WorkloadWeight{{Name: "w", Runs: 1}},
	}
	for m, mass := range ops {
		p.Ops = append(p.Ops, profstore.OpMass{Mnemonic: m, Ring: profstore.RingUser, Mass: mass})
	}
	for fn, count := range fnCounts {
		p.Blocks = append(p.Blocks, profstore.Block{
			Unit: "u", Module: "m", Function: fn,
			Addr: 0x1000, Ring: profstore.RingUser, Len: 1, Count: count,
		})
	}
	return profstore.Canonical(p)
}

func trendSeries(profiles ...*profstore.Profile) *Series {
	var s Series
	for i, p := range profiles {
		s.AppendEpoch(uint64(i), p)
	}
	return &s
}

// TestTrendFlagsMonotonicDrift pins the detector's core judgment: a
// steady climb is flagged with the right direction and delta, a
// one-window spike is not.
func TestTrendFlagsMonotonicDrift(t *testing.T) {
	// vaddps climbs 10% -> 20% -> 30% of op mass; add falls to match;
	// mov spikes in the middle window only. Function hot.f climbs.
	s := trendSeries(
		trendProfile(map[string]uint64{"vaddps": 10, "add": 60, "mov": 30}, map[string]uint64{"hot": 10, "cold": 90}),
		trendProfile(map[string]uint64{"vaddps": 20, "add": 40, "mov": 40}, map[string]uint64{"hot": 20, "cold": 80}),
		trendProfile(map[string]uint64{"vaddps": 30, "add": 35, "mov": 35}, map[string]uint64{"hot": 30, "cold": 70}),
	)
	rep, err := s.Trend(TrendOptions{K: 3, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) != 3 {
		t.Fatalf("windows = %v", rep.Windows)
	}
	byName := map[string]TrendEntry{}
	for _, e := range rep.Ops {
		byName[e.Name] = e
	}
	if _, ok := byName["mov"]; ok {
		t.Error("non-monotonic mov flagged")
	}
	va, ok := byName["vaddps"]
	if !ok {
		t.Fatal("vaddps not flagged")
	}
	if va.Direction() != "rising" || va.Delta < 0.19 || va.Delta > 0.21 {
		t.Errorf("vaddps delta %.3f direction %s", va.Delta, va.Direction())
	}
	ad, ok := byName["add"]
	if !ok {
		t.Fatal("add not flagged")
	}
	if ad.Direction() != "falling" {
		t.Errorf("add direction %s", ad.Direction())
	}

	if len(rep.Functions) == 0 {
		t.Fatal("no function trends")
	}
	names := []string{}
	for _, e := range rep.Functions {
		names = append(names, e.Name)
	}
	found := false
	for _, n := range names {
		if n == "u/m.hot" {
			found = true
		}
	}
	if !found {
		t.Errorf("u/m.hot not flagged; functions = %v", names)
	}

	// Sorted by |Delta| descending.
	for i := 1; i < len(rep.Ops); i++ {
		if abs(rep.Ops[i].Delta) > abs(rep.Ops[i-1].Delta) {
			t.Error("ops not sorted by |delta| desc")
		}
	}
}

// TestTrendThresholdGates pins that sub-threshold monotonic drift is
// dropped.
func TestTrendThresholdGates(t *testing.T) {
	s := trendSeries(
		trendProfile(map[string]uint64{"a": 1000, "b": 1000}, nil),
		trendProfile(map[string]uint64{"a": 1001, "b": 1000}, nil),
		trendProfile(map[string]uint64{"a": 1002, "b": 1000}, nil),
	)
	rep, err := s.Trend(TrendOptions{K: 3, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ops) != 0 {
		t.Errorf("sub-threshold drift flagged: %+v", rep.Ops)
	}
}

// TestTrendAppearingOp pins that an op absent from early windows reads
// as share 0 there, so its appearance counts as a rise.
func TestTrendAppearingOp(t *testing.T) {
	s := trendSeries(
		trendProfile(map[string]uint64{"add": 100}, nil),
		trendProfile(map[string]uint64{"add": 90, "vgather": 10}, nil),
		trendProfile(map[string]uint64{"add": 80, "vgather": 20}, nil),
	)
	rep, err := s.Trend(TrendOptions{K: 3, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Ops {
		if e.Name == "vgather" {
			if e.Shares[0] != 0 || e.Direction() != "rising" {
				t.Errorf("vgather shares %v", e.Shares)
			}
			return
		}
	}
	t.Error("appearing op not flagged")
}

// TestTrendErrors pins the failure modes a CLI turns into exit codes.
func TestTrendErrors(t *testing.T) {
	s := trendSeries(
		trendProfile(map[string]uint64{"a": 1}, nil),
		trendProfile(map[string]uint64{"a": 1}, nil),
	)
	_, err := s.Trend(TrendOptions{K: 3})
	if !errors.Is(err, ErrNotEnoughWindows) {
		t.Errorf("err = %v, want ErrNotEnoughWindows", err)
	}
	if _, err := s.Trend(TrendOptions{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	// Defaults: zero options resolve to DefaultTrendK windows.
	if _, err := (&Series{}).Trend(TrendOptions{}); !errors.Is(err, ErrNotEnoughWindows) {
		t.Errorf("empty series err = %v", err)
	}
}

// TestTrendRender pins the report's rendered shape.
func TestTrendRender(t *testing.T) {
	s := trendSeries(
		trendProfile(map[string]uint64{"vaddps": 10, "add": 90}, nil),
		trendProfile(map[string]uint64{"vaddps": 20, "add": 80}, nil),
		trendProfile(map[string]uint64{"vaddps": 30, "add": 70}, nil),
	)
	rep, err := s.Trend(TrendOptions{K: 3, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render(10)
	for _, want := range []string{"TREND", "3 windows", "vaddps", "rising", "add", "falling", "->", "user"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Render(1) truncates each section.
	if out1 := rep.Render(1); strings.Count(out1, "rising")+strings.Count(out1, "falling") > 1 {
		t.Errorf("Render(1) shows more than one op row:\n%s", out1)
	}
}
