package tsstore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// buildSeries makes a deterministic multi-window series for disk tests.
func buildSeries(t *testing.T, seed int64, epochs uint64) *Series {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var s Series
	for e := uint64(0); e < epochs; e++ {
		s.AppendEpoch(e, epochProfile(rng, e))
	}
	s.Downsample(DefaultRetention(), epochs-1)
	return &s
}

// TestSaveOpenRoundTrip pins that a saved series reloads with the same
// spans and byte-identical window profiles.
func TestSaveOpenRoundTrip(t *testing.T) {
	s := buildSeries(t, 10, 40)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("reloaded %d windows, saved %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		wp, wspan := s.At(i)
		gp, gspan := got.At(i)
		if wspan != gspan {
			t.Errorf("window %d span %v != %v", i, gspan, wspan)
		}
		if !bytes.Equal(profileBytes(t, wp), profileBytes(t, gp)) {
			t.Errorf("window %d profile bytes differ", i)
		}
	}
}

// TestOpenMissingIsEmpty pins that a nonexistent or index-less
// directory opens as an empty series.
func TestOpenMissingIsEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "nope"))
	if err != nil || s.Len() != 0 {
		t.Fatalf("Open(missing) = %d windows, %v", s.Len(), err)
	}
	dir := t.TempDir() // exists, no index
	if s, err = Open(dir); err != nil || s.Len() != 0 {
		t.Fatalf("Open(empty dir) = %d windows, %v", s.Len(), err)
	}
}

// TestSaveSweepsStaleWindows pins that re-saving after a fold removes
// the finer-grained window files the index no longer references.
func TestSaveSweepsStaleWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Series
	for e := uint64(0); e < 32; e++ {
		s.AppendEpoch(e, epochProfile(rng, e))
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	rawCount := countWindowFiles(t, dir)
	if rawCount != 32 {
		t.Fatalf("saved %d window files, want 32", rawCount)
	}
	s.Downsample(DefaultRetention(), 31)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if got := countWindowFiles(t, dir); got != s.Len() {
		t.Errorf("after fold+resave: %d window files on disk, series has %d windows", got, s.Len())
	}
	if _, err := Open(dir); err != nil {
		t.Errorf("reopen after sweep: %v", err)
	}
}

func countWindowFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if name := de.Name(); len(name) > 8 && name[0] == 'w' && filepath.Ext(name) == ".hbbprof" {
			n++
		}
	}
	return n
}

// TestOpenClassifiesIndexCorruption walks the classified failure
// modes of the index decoder: wrong magic, truncation at every byte
// offset, unsupported version, trailing data, implausible counts.
func TestOpenClassifiesIndexCorruption(t *testing.T) {
	s := buildSeries(t, 12, 24)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, IndexName)
	good, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(idx, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		defer restore()
		bad := append([]byte("NOTASER1"), good[8:]...)
		os.WriteFile(idx, bad, 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		defer restore()
		bad := append([]byte(nil), good...)
		bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
		os.WriteFile(idx, bad, 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrUnsupportedVersion) {
			t.Errorf("err = %v, want ErrUnsupportedVersion", err)
		}
	})
	t.Run("truncated at every offset", func(t *testing.T) {
		defer restore()
		for cut := len(IndexMagic); cut < len(good); cut++ {
			os.WriteFile(idx, good[:cut], 0o644)
			_, err := Open(dir)
			if err == nil {
				t.Fatalf("cut at %d accepted", cut)
			}
			if !errors.Is(err, ErrTruncatedRecord) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("cut at %d: err = %v, want ErrTruncatedRecord", cut, err)
			}
		}
	})
	t.Run("short non-magic is bad magic", func(t *testing.T) {
		defer restore()
		os.WriteFile(idx, []byte("XY"), 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("short genuine prefix is truncation", func(t *testing.T) {
		defer restore()
		os.WriteFile(idx, []byte(IndexMagic[:3]), 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrTruncatedRecord) {
			t.Errorf("err = %v, want ErrTruncatedRecord", err)
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		defer restore()
		os.WriteFile(idx, append(append([]byte(nil), good...), 0x00), 0o644)
		if _, err := Open(dir); err == nil {
			t.Error("trailing byte accepted")
		}
	})
}

// TestOpenClassifiesWindowCorruption pins ErrWindowMismatch for torn,
// swapped or missing window files, and profstore classification for a
// window whose checksum matches but whose content is corrupt (i.e. the
// index was rewritten around bad bytes).
func TestOpenClassifiesWindowCorruption(t *testing.T) {
	s := buildSeries(t, 13, 24)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	_, span := s.At(0)
	winPath := filepath.Join(dir, windowFileName(span))
	good, err := os.ReadFile(winPath)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated window file", func(t *testing.T) {
		os.WriteFile(winPath, good[:len(good)-3], 0o644)
		defer os.WriteFile(winPath, good, 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrWindowMismatch) {
			t.Errorf("err = %v, want ErrWindowMismatch", err)
		}
	})
	t.Run("bit flip same size", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x40
		os.WriteFile(winPath, bad, 0o644)
		defer os.WriteFile(winPath, good, 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrWindowMismatch) {
			t.Errorf("err = %v, want ErrWindowMismatch", err)
		}
	})
	t.Run("missing window file", func(t *testing.T) {
		os.Remove(winPath)
		defer os.WriteFile(winPath, good, 0o644)
		if _, err := Open(dir); !errors.Is(err, ErrWindowMismatch) {
			t.Errorf("err = %v, want ErrWindowMismatch", err)
		}
	})
}

// TestReadIndexRejectsStructuralLies covers decoder bounds readIndex
// enforces beyond framing: lying counts and disordered windows.
func TestReadIndexRejectsStructuralLies(t *testing.T) {
	t.Run("implausible count", func(t *testing.T) {
		buf := appendIndex(nil, nil)
		// Rewrite the count varint to maxIndexWindows+1.
		buf = buf[:len(IndexMagic)+4]
		buf = appendUvarintForTest(buf, maxIndexWindows+1)
		if _, err := readIndex(bytes.NewReader(buf)); err == nil {
			t.Error("implausible count accepted")
		}
	})
	t.Run("overlapping windows", func(t *testing.T) {
		buf := appendIndex(nil, []indexEntry{
			{span: Span{0, 5}}, {span: Span{5, 9}},
		})
		if _, err := readIndex(bytes.NewReader(buf)); err == nil {
			t.Error("overlapping windows accepted")
		}
	})
	t.Run("unsorted windows", func(t *testing.T) {
		buf := appendIndex(nil, []indexEntry{
			{span: Span{8, 9}}, {span: Span{0, 3}},
		})
		if _, err := readIndex(bytes.NewReader(buf)); err == nil {
			t.Error("unsorted windows accepted")
		}
	})
	t.Run("span overflow", func(t *testing.T) {
		buf := append([]byte(IndexMagic), 1, 0, 0, 0) // version 1
		buf = appendUvarintForTest(buf, 1)            // one window
		buf = appendUvarintForTest(buf, ^uint64(0))   // start = max
		buf = appendUvarintForTest(buf, 1)            // extent 1: overflows
		if _, err := readIndex(bytes.NewReader(buf)); err == nil {
			t.Error("span overflow accepted")
		}
	})
}

func appendUvarintForTest(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// FuzzLoadIndex drives the series-index decoder with raw bytes: it
// must never panic, and any accepted index must re-encode and re-read
// to the same entries (decode/encode stability).
func FuzzLoadIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(IndexMagic))
	f.Add(appendIndex(nil, nil))
	f.Add(appendIndex(nil, []indexEntry{{span: Span{0, 0}, size: 10, crc: 0xdeadbeef}}))
	f.Add(appendIndex(nil, []indexEntry{
		{span: Span{0, 15}, size: 100, crc: 1},
		{span: Span{16, 19}, size: 50, crc: 2},
		{span: Span{20, 20}, size: 25, crc: 3},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := readIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		re := appendIndex(nil, entries)
		back, err := readIndex(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("accepted index failed to re-read after re-encode: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("re-read %d entries, had %d", len(back), len(entries))
		}
		for i := range back {
			if back[i] != entries[i] {
				t.Fatalf("entry %d changed across re-encode: %+v != %+v", i, back[i], entries[i])
			}
		}
	})
}
