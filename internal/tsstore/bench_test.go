package tsstore

import (
	"fmt"
	"math/rand"
	"testing"

	"hbbp/internal/profstore"
)

// BenchmarkSeriesAppend measures folding one per-run profile into the
// newest raw window — the daemon's per-roll hot path.
func BenchmarkSeriesAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := epochProfileBench(rng)
	b.ReportAllocs()
	b.ResetTimer()
	var s Series
	for i := 0; i < b.N; i++ {
		s.AppendEpoch(uint64(i/64), p)
	}
}

// BenchmarkSeriesWindow measures a windowed query over a downsampled
// 256-epoch series.
func BenchmarkSeriesWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var s Series
	for e := uint64(0); e < 256; e++ {
		s.AppendEpoch(e, epochProfileBench(rng))
	}
	s.Downsample(DefaultRetention(), 255)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := s.Window(64, 255)
		if len(p.Ops) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkSeriesDownsample measures folding 256 raw epochs through
// the default ladder in one pass.
func BenchmarkSeriesDownsample(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var base Series
	for e := uint64(0); e < 256; e++ {
		base.AppendEpoch(e, epochProfileBench(rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := base.Clone()
		b.StartTimer()
		if s.Downsample(DefaultRetention(), 255) == 0 {
			b.Fatal("nothing folded")
		}
	}
}

// epochProfileBench builds a mid-size profile (32 ops, 64 blocks) —
// larger than epochProfile's so merge cost dominates bookkeeping.
func epochProfileBench(rng *rand.Rand) *profstore.Profile {
	p := &profstore.Profile{
		Workloads: []profstore.WorkloadWeight{{Name: "bench", Runs: 1}},
	}
	for i := 0; i < 32; i++ {
		p.Ops = append(p.Ops, profstore.OpMass{
			Mnemonic: fmt.Sprintf("op%02d", i),
			Ring:     uint8(i % 2),
			Mass:     uint64(1 + rng.Intn(1<<16)),
		})
	}
	for i := 0; i < 64; i++ {
		p.Blocks = append(p.Blocks, profstore.Block{
			Unit: "bench", Module: "a.out",
			Function: fmt.Sprintf("f%02d", i%16),
			Addr:     uint64(0x1000 + 64*i),
			Ring:     profstore.RingUser,
			Len:      uint32(1 + rng.Intn(12)),
			Count:    uint64(1 + rng.Intn(1<<12)),
		})
	}
	return profstore.Canonical(p)
}
