package tsstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hbbp/internal/profstore"
)

// epochProfile builds a small deterministic profile for one epoch,
// with enough shared and distinct keys across epochs that merging is
// non-trivial.
func epochProfile(rng *rand.Rand, epoch uint64) *profstore.Profile {
	p := &profstore.Profile{
		Workloads: []profstore.WorkloadWeight{{Name: "gcc", Runs: 1}},
	}
	mnems := []string{"add", "mov", "vaddps", "imul", "jmp"}
	for _, m := range mnems[:2+rng.Intn(3)] {
		p.Ops = append(p.Ops, profstore.OpMass{
			Mnemonic: m, Ring: uint8(rng.Intn(2)), Mass: uint64(1 + rng.Intn(1000)),
		})
	}
	for f := 0; f < 1+rng.Intn(3); f++ {
		p.Blocks = append(p.Blocks, profstore.Block{
			Unit: "gcc", Module: "a.out",
			Function: fmt.Sprintf("f%d", rng.Intn(4)),
			Addr:     uint64(0x1000 + 16*rng.Intn(8)),
			Ring:     profstore.RingUser,
			Len:      uint32(1 + rng.Intn(9)),
			Count:    uint64(1 + rng.Intn(500)),
		})
	}
	_ = epoch
	return profstore.Canonical(p)
}

// profileBytes serializes a profile for byte-level comparison.
func profileBytes(t *testing.T, p *profstore.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profstore.Save(&buf, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestAppendAndWindowBasics pins the raw (pre-retention) behavior:
// appends land in per-epoch windows, queries merge inclusive ranges,
// and out-of-range or inverted queries come back empty.
func TestAppendAndWindowBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Series
	perEpoch := map[uint64][]*profstore.Profile{}
	for e := uint64(10); e < 16; e++ {
		for i := 0; i < 3; i++ {
			p := epochProfile(rng, e)
			perEpoch[e] = append(perEpoch[e], p)
			s.AppendEpoch(e, p)
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6 raw windows", s.Len())
	}
	lo, hi, ok := s.Bounds()
	if !ok || lo != 10 || hi != 15 {
		t.Fatalf("Bounds = %d,%d,%v", lo, hi, ok)
	}

	got, spans := s.Window(11, 13)
	var flat []*profstore.Profile
	for e := uint64(11); e <= 13; e++ {
		flat = append(flat, perEpoch[e]...)
	}
	if !bytes.Equal(profileBytes(t, got), profileBytes(t, profstore.Merge(flat...))) {
		t.Error("Window(11,13) diverges from flat merge of epochs 11..13")
	}
	if len(spans) != 3 || spans[0] != (Span{11, 11}) || spans[2] != (Span{13, 13}) {
		t.Errorf("spans = %v", spans)
	}

	if p, spans := s.Window(100, 200); len(spans) != 0 || len(p.Ops) != 0 {
		t.Errorf("out-of-range window not empty: %v %v", p, spans)
	}
	if p, spans := s.Window(13, 11); len(spans) != 0 || len(p.Ops) != 0 {
		t.Errorf("inverted window not empty: %v %v", p, spans)
	}

	// Nil appends are ignored; appends into an existing window merge.
	s.AppendEpoch(12, nil)
	if s.Len() != 6 {
		t.Errorf("nil append changed the series")
	}
}

// TestAppendOutOfOrderAndLateArrival pins that epochs can arrive in
// any order, including into a span already folded coarse.
func TestAppendOutOfOrderAndLateArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var s Series
	var all []*profstore.Profile
	for _, e := range []uint64{5, 2, 9, 0, 7, 2, 5} {
		p := epochProfile(rng, e)
		all = append(all, p)
		s.AppendEpoch(e, p)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5 distinct epochs", s.Len())
	}
	if !bytes.Equal(profileBytes(t, s.Merged()), profileBytes(t, profstore.Merge(all...))) {
		t.Error("out-of-order appends diverge from flat merge")
	}

	// Fold everything 4:1, then deliver a late arrival for epoch 1,
	// which now lives inside the folded window [0-2].
	s.Downsample(Retention{Levels: []Level{{Width: 1, Keep: 1}, {Width: 4}}}, 20)
	late := epochProfile(rng, 1)
	all = append(all, late)
	s.AppendEpoch(1, late)
	if !bytes.Equal(profileBytes(t, s.Merged()), profileBytes(t, profstore.Merge(all...))) {
		t.Error("late arrival into a folded window lost mass")
	}
}

// TestRegroupingInvariance is the acceptance keystone: ANY re-grouping
// of epochs — any retention ladder, applied at any cadence, in any
// interleaving with appends — merges bit-identical to the flat
// profstore.Merge of the same per-epoch profiles. Downsampling is
// lossless by construction, and this pins it to serialized bytes.
func TestRegroupingInvariance(t *testing.T) {
	ladders := []Retention{
		{}, // no folding at all
		{Levels: []Level{{Width: 1, Keep: 4}, {Width: 4}}},
		{Levels: []Level{{Width: 1, Keep: 8}, {Width: 4, Keep: 4}, {Width: 16}}},
		{Levels: []Level{{Width: 1, Keep: 1}, {Width: 2, Keep: 2}, {Width: 8, Keep: 1}, {Width: 16}}},
		{Levels: []Level{{Width: 1, Keep: 0}}}, // degenerate: everything raw
	}
	for li, ladder := range ladders {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(li)))
			var s Series
			var all []*profstore.Profile
			perEpoch := map[uint64][]*profstore.Profile{}
			nEpochs := uint64(20 + rng.Intn(40))
			for e := uint64(0); e < nEpochs; e++ {
				for i := 0; i < 1+rng.Intn(3); i++ {
					p := epochProfile(rng, e)
					all = append(all, p)
					perEpoch[e] = append(perEpoch[e], p)
					s.AppendEpoch(e, p)
				}
				// Downsample at a random cadence, mid-stream, like the
				// daemon does online.
				if rng.Intn(3) == 0 {
					s.Downsample(ladder, e)
				}
			}
			s.Downsample(ladder, nEpochs-1)

			want := profileBytes(t, profstore.Merge(all...))
			if got := profileBytes(t, s.Merged()); !bytes.Equal(got, want) {
				t.Fatalf("ladder %d seed %d: merged series diverges from flat merge (%d windows)",
					li, seed, s.Len())
			}

			// Every aligned sub-query is also exact: pick retained
			// window boundaries as query bounds and compare against
			// the flat merge of exactly those epochs.
			spans := s.Spans()
			for trial := 0; trial < 5 && len(spans) > 0; trial++ {
				i := rng.Intn(len(spans))
				j := i + rng.Intn(len(spans)-i)
				since, until := spans[i].Start, spans[j].End
				got, _ := s.Window(since, until)
				var flat []*profstore.Profile
				for e := since; e <= until; e++ {
					flat = append(flat, perEpoch[e]...)
				}
				if !bytes.Equal(profileBytes(t, got), profileBytes(t, profstore.Merge(flat...))) {
					t.Fatalf("ladder %d seed %d: Window(%d,%d) diverges from flat merge of those epochs",
						li, seed, since, until)
				}
			}
		}
	}
}

// TestDownsampleShapesLadder pins the fold geometry for the canonical
// 8-raw / 4:1 / 16:1 ladder: which spans exist after folding, that
// repeated application is idempotent, and that queries cut at fold
// boundaries are identical before and after.
func TestDownsampleShapesLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s Series
	perEpoch := map[uint64]*profstore.Profile{}
	const latest = 63
	for e := uint64(0); e <= latest; e++ {
		p := epochProfile(rng, e)
		perEpoch[e] = p
		s.AppendEpoch(e, p)
	}
	before, _ := s.Window(0, 31) // 32-aligned: survives every fold below
	ladder := DefaultRetention()

	if folds := s.Downsample(ladder, latest); folds == 0 {
		t.Fatal("Downsample folded nothing over 64 epochs")
	}
	spans := s.Spans()
	// Raw band: epochs 56..63 (keep 8). 4:1 band: 4-aligned buckets
	// whose end < 56 and >= 56-16=40. 16:1: everything older.
	want := []Span{
		{0, 15}, {16, 31}, {32, 35}, {36, 39}, // 16:1 then 4:1 tail
		{40, 43}, {44, 47}, {48, 51}, {52, 55},
		{56, 56}, {57, 57}, {58, 58}, {59, 59},
		{60, 60}, {61, 61}, {62, 62}, {63, 63},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans after fold:\n got %v\nwant %v", spans, want)
	}
	// 32..39 folded at 4 wide, not 16: their buckets' ends (47) are
	// inside the 4:1 keep band. Re-applying changes nothing.
	if folds := s.Downsample(ladder, latest); folds != 0 {
		t.Errorf("second Downsample at the same latest folded %d more buckets", folds)
	}

	after, _ := s.Window(0, 31)
	if !bytes.Equal(profileBytes(t, before), profileBytes(t, after)) {
		t.Error("aligned query differs before/after the fold")
	}

	// Advance time: the 4:1 windows age into 16:1 territory.
	if folds := s.Downsample(ladder, latest+16); folds == 0 {
		t.Fatal("aged windows did not re-fold")
	}
	for _, sp := range s.Spans() {
		if sp.Start < 32 && sp.Epochs() != 16 {
			t.Errorf("old window %v not folded to width 16", sp)
		}
	}
	if !bytes.Equal(profileBytes(t, before), profileBytes(t, func() *profstore.Profile {
		p, _ := s.Window(0, 31)
		return p
	}())) {
		t.Error("aligned query differs after the second fold")
	}
}

// TestDownsampleBoundsWindowCount pins the memory-bounding property
// the daemon relies on: under a geometric ladder the retained window
// count grows like epochs/16, not like epochs.
func TestDownsampleBoundsWindowCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var s Series
	ladder := DefaultRetention()
	const epochs = 400
	for e := uint64(0); e < epochs; e++ {
		s.AppendEpoch(e, epochProfile(rng, e))
		s.Downsample(ladder, e)
	}
	// 8 raw + ~5 at 4:1 + ~ceil(376/16)=24 at 16:1, plus alignment
	// slop. Anything near 400 means folding is broken.
	if s.Len() > 48 {
		t.Fatalf("retained %d windows over %d epochs; folding is not bounding the store", s.Len(), epochs)
	}
}

// TestRetentionValidateAndParse pins the ladder spec surface.
func TestRetentionValidateAndParse(t *testing.T) {
	good := []string{"", "1:8", "1:8,4:4", "1:8,4:4,16:0", "1:1,2:2,8:1,16:0"}
	for _, spec := range good {
		if _, err := ParseRetention(spec); err != nil {
			t.Errorf("ParseRetention(%q) = %v", spec, err)
		}
	}
	bad := map[string]string{
		"4:4":          "width 1",
		"1:8,4:4,6:0":  "multiple",
		"1:8,4:4,4:0":  "multiple",
		"1:8,4:0,16:0": "not the last",
		"1:8,4":        "WIDTH:KEEP",
		"0:8":          "width 0",
		"1:8,4:x":      "keep",
		"x:8":          "width",
	}
	for spec, want := range bad {
		_, err := ParseRetention(spec)
		if err == nil {
			t.Errorf("ParseRetention(%q) accepted", spec)
			continue
		}
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("ParseRetention(%q) = %v, want mention of %q", spec, err, want)
		}
	}
	// Round trip through String.
	r, err := ParseRetention("1:8,4:4,16:0")
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "1:8,4:4,16:0" {
		t.Errorf("String = %q", r.String())
	}
}

// TestCloneIsolation pins that a clone is a safe read view: mutations
// of the original do not reshape the clone.
func TestCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s Series
	for e := uint64(0); e < 8; e++ {
		s.AppendEpoch(e, epochProfile(rng, e))
	}
	c := s.Clone()
	wantBytes := profileBytes(t, c.Merged())
	s.AppendEpoch(9, epochProfile(rng, 9))
	s.Downsample(Retention{Levels: []Level{{Width: 1, Keep: 1}, {Width: 4}}}, 9)
	if c.Len() != 8 {
		t.Errorf("clone reshaped by original's mutations: %d windows", c.Len())
	}
	if !bytes.Equal(profileBytes(t, c.Merged()), wantBytes) {
		t.Error("clone content changed")
	}
}

// windowFlat is the reference implementation Window's merge tree must
// agree with byte-for-byte: a linear collect of every overlapping
// window and one flat merge.
func (s *Series) windowFlat(since, until uint64) *profstore.Profile {
	if since > until {
		return &profstore.Profile{}
	}
	var profs []*profstore.Profile
	i, _ := s.locate(since)
	for ; i < len(s.windows) && s.windows[i].span.Start <= until; i++ {
		profs = append(profs, s.windows[i].prof)
	}
	return profstore.Merge(profs...)
}

// TestMergeTreeMatchesFlatMerge pins the memoized merge tree to the
// flat merge it decomposes: every query shape — small and large,
// repeated (memo hits), interleaved with appends and downsampling that
// must invalidate the tree — serializes identically to the linear
// reference.
func TestMergeTreeMatchesFlatMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Series
	for e := uint64(0); e < 48; e++ {
		s.AppendEpoch(e, epochProfile(rng, e))
	}
	check := func(stage string) {
		t.Helper()
		lo, hi, _ := s.Bounds()
		queries := [][2]uint64{
			{lo, hi}, {lo, lo}, {hi, hi}, {lo + 1, hi - 1},
			{lo + 3, lo + 20}, {hi - 9, hi}, {lo, lo + 2},
		}
		for _, q := range queries {
			got, _ := s.Window(q[0], q[1])
			want := s.windowFlat(q[0], q[1])
			if !bytes.Equal(profileBytes(t, got), profileBytes(t, want)) {
				t.Errorf("%s: Window(%d,%d) diverges from flat merge", stage, q[0], q[1])
			}
			// Ask again: the second answer comes mostly from memoized
			// nodes and must not drift.
			again, _ := s.Window(q[0], q[1])
			if !bytes.Equal(profileBytes(t, again), profileBytes(t, want)) {
				t.Errorf("%s: repeated Window(%d,%d) diverges", stage, q[0], q[1])
			}
		}
	}
	check("raw")

	// An append into the middle of the queried range must invalidate
	// the memoized nodes covering it.
	s.AppendEpoch(20, epochProfile(rng, 20))
	check("after mid-range append")

	// Downsampling rebuilds the window list; stale nodes must go.
	if s.Downsample(DefaultRetention(), 47) == 0 {
		t.Fatal("downsample folded nothing")
	}
	check("after downsample")

	// A clone must not share memoization state with the original: query
	// the clone, mutate the original, and re-check both.
	c := s.Clone()
	cw, _ := c.Window(0, 47)
	s.AppendEpoch(48, epochProfile(rng, 48))
	if !bytes.Equal(profileBytes(t, cw), profileBytes(t, c.windowFlat(0, 47))) {
		t.Error("clone's query diverged after mutating the original")
	}
	check("after post-clone append")
}
