// Package metrics implements the paper's error definitions (Section VI).
//
// The reference is software instrumentation; the error for a mnemonic M
// is |Vref(M)-Vmeasured(M)| / Vref(M), and aggregate results use the
// average weighted error: the sum over mnemonics of Error(M) times M's
// share of the reference instruction total.
package metrics

import (
	"math"
	"sort"

	"hbbp/internal/isa"
)

// Error returns the relative error of measured against ref, as a
// fraction (0.02 = 2%). When the reference is zero the error is 0 for a
// zero measurement and 1 (100%) for any spurious nonzero measurement, so
// phantom counts are penalised instead of dividing by zero.
func Error(ref, measured float64) float64 {
	if ref == 0 {
		if measured == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(ref-measured) / ref
}

// Mix is a per-mnemonic execution histogram. Values are execution counts
// (possibly fractional for PMU-estimated mixes).
type Mix map[isa.Op]float64

// Total returns the instruction total of the mix.
func (m Mix) Total() float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// TopN returns the n most-executed mnemonics in descending count order,
// breaking ties by mnemonic name for determinism.
func (m Mix) TopN(n int) []isa.Op {
	ops := make([]isa.Op, 0, len(m))
	for op := range m {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		if m[ops[i]] != m[ops[j]] {
			return m[ops[i]] > m[ops[j]]
		}
		return ops[i].String() < ops[j].String()
	})
	if n < len(ops) {
		ops = ops[:n]
	}
	return ops
}

// AvgWeightedError computes the paper's aggregate metric between a
// reference mix and a measured mix:
//
//	sum over M of Error(M) * Vref(M) / #instructions_ref
//
// Mnemonics absent from the reference but present in the measurement do
// not contribute (their reference weight is zero), matching the paper's
// definition exactly.
func AvgWeightedError(ref, measured Mix) float64 {
	total := ref.Total()
	if total == 0 {
		return 0
	}
	var sum float64
	for op, vref := range ref {
		sum += Error(vref, measured[op]) * vref / total
	}
	return sum
}

// PerMnemonicErrors returns Error(M) for every mnemonic in the
// reference.
func PerMnemonicErrors(ref, measured Mix) map[isa.Op]float64 {
	out := make(map[isa.Op]float64, len(ref))
	for op, vref := range ref {
		out[op] = Error(vref, measured[op])
	}
	return out
}

// WeightedBBECError aggregates per-block errors the same way the
// mnemonic metric does, weighting each block's relative error by its
// share of reference retirements (executions x block length). It is the
// metric used to compare raw estimators at the BBEC level and to build
// training labels.
func WeightedBBECError(ref []uint64, lens []int, measured []float64) float64 {
	var totalInsts float64
	for id, r := range ref {
		totalInsts += float64(r) * float64(lens[id])
	}
	if totalInsts == 0 {
		return 0
	}
	var sum float64
	for id, r := range ref {
		w := float64(r) * float64(lens[id]) / totalInsts
		sum += Error(float64(r), measured[id]) * w
	}
	return sum
}
