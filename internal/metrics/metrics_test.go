package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hbbp/internal/isa"
)

func TestErrorDefinition(t *testing.T) {
	// The paper's example: reference 500 MOVs, measured 510 -> 2%.
	if got := Error(500, 510); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("Error(500,510) = %v, want 0.02", got)
	}
	if got := Error(100, 100); got != 0 {
		t.Errorf("exact measurement error = %v", got)
	}
	if got := Error(100, 0); got != 1 {
		t.Errorf("missing measurement error = %v, want 1", got)
	}
	if got := Error(0, 0); got != 0 {
		t.Errorf("Error(0,0) = %v", got)
	}
	if got := Error(0, 5); got != 1 {
		t.Errorf("phantom count error = %v, want 1", got)
	}
	// Symmetric for over/undercount.
	if Error(100, 90) != Error(100, 110) {
		t.Error("error not symmetric around the reference")
	}
}

func TestAvgWeightedError(t *testing.T) {
	ref := Mix{isa.MOV: 500, isa.ADD: 500}
	meas := Mix{isa.MOV: 510, isa.ADD: 500}
	// Error(MOV)=0.02 weighted 0.5, ADD exact: total 0.01.
	if got := AvgWeightedError(ref, meas); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("AvgWeightedError = %v, want 0.01", got)
	}
	// Phantom mnemonics contribute nothing (zero reference weight).
	meas[isa.DIV] = 1000
	if got := AvgWeightedError(ref, meas); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("AvgWeightedError with phantom = %v, want 0.01", got)
	}
	if got := AvgWeightedError(Mix{}, meas); got != 0 {
		t.Errorf("empty reference = %v", got)
	}
}

func TestPerMnemonicErrors(t *testing.T) {
	ref := Mix{isa.MOV: 100, isa.ADD: 200}
	meas := Mix{isa.MOV: 150}
	errs := PerMnemonicErrors(ref, meas)
	if math.Abs(errs[isa.MOV]-0.5) > 1e-12 {
		t.Errorf("MOV error = %v", errs[isa.MOV])
	}
	if errs[isa.ADD] != 1 {
		t.Errorf("ADD error = %v, want 1 (missing)", errs[isa.ADD])
	}
}

func TestMixTotalAndTopN(t *testing.T) {
	m := Mix{isa.MOV: 50, isa.ADD: 100, isa.SUB: 25}
	if m.Total() != 175 {
		t.Errorf("Total = %v", m.Total())
	}
	top := m.TopN(2)
	if len(top) != 2 || top[0] != isa.ADD || top[1] != isa.MOV {
		t.Errorf("TopN = %v", top)
	}
	if got := m.TopN(10); len(got) != 3 {
		t.Errorf("TopN(10) = %v", got)
	}
	// Deterministic tie-break by name.
	tie := Mix{isa.XOR: 5, isa.AND: 5, isa.OR: 5}
	a := tie.TopN(3)
	if a[0] != isa.AND || a[1] != isa.OR || a[2] != isa.XOR {
		t.Errorf("tie order = %v", a)
	}
}

func TestWeightedBBECError(t *testing.T) {
	ref := []uint64{100, 100}
	lens := []int{1, 9}
	// Block 0 exact, block 1 off by 50%: weights 100 vs 900.
	meas := []float64{100, 50}
	got := WeightedBBECError(ref, lens, meas)
	want := 0.5 * 900 / 1000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("WeightedBBECError = %v, want %v", got, want)
	}
	if WeightedBBECError([]uint64{0}, []int{5}, []float64{0}) != 0 {
		t.Error("all-zero reference should give 0")
	}
}

// Property: avg weighted error is 0 iff measurement matches reference on
// every referenced mnemonic, and always within [0, max per-mnemonic
// error].
func TestQuickAvgWeightedBounds(t *testing.T) {
	ops := isa.All()
	f := func(counts []uint16, deltas []int8) bool {
		ref := Mix{}
		meas := Mix{}
		var maxErr float64
		for i, c := range counts {
			if i >= len(ops) || c == 0 {
				break
			}
			op := ops[i]
			ref[op] = float64(c)
			d := 0.0
			if i < len(deltas) {
				d = float64(deltas[i])
			}
			meas[op] = math.Max(0, float64(c)+d)
			if e := Error(ref[op], meas[op]); e > maxErr {
				maxErr = e
			}
		}
		got := AvgWeightedError(ref, meas)
		return got >= -1e-12 && got <= maxErr+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
