package fleetwire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// frameBytes encodes one frame for stream-surgery tests.
func frameBytes(t FrameType, payload []byte) []byte {
	return AppendFrame(nil, t, payload)
}

// TestFrameRoundTrip pins the codec: what AppendFrame writes,
// ReadFrame returns, for the empty payload, a small one, and one at
// the size limit.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {0x42}, bytes.Repeat([]byte{0xAB}, 1024), make([]byte, 4096)}
	for _, want := range payloads {
		enc := frameBytes(FrameProfile, want)
		typ, got, err := ReadFrame(bytes.NewReader(enc), 4096)
		if err != nil {
			t.Fatalf("len %d: %v", len(want), err)
		}
		if typ != FrameProfile {
			t.Errorf("len %d: type %v", len(want), typ)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("len %d: payload diverged", len(want))
		}
	}
}

// TestFrameBackToBack pins that frames separate cleanly on a shared
// stream and a clean end-of-stream reads as io.EOF, not truncation.
func TestFrameBackToBack(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, FrameHello, []byte("a"))
	stream = AppendFrame(stream, FrameAck, []byte("bb"))
	r := bytes.NewReader(stream)
	for i, want := range []FrameType{FrameHello, FrameAck} {
		typ, _, err := ReadFrame(r, 0)
		if err != nil || typ != want {
			t.Fatalf("frame %d: type %v err %v", i, typ, err)
		}
	}
	if _, _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// TestFrameTruncationClassifiesAtEveryOffset cuts a valid frame at
// every byte offset: every cut but offset 0 (a clean close) must
// classify as ErrFrameTruncated.
func TestFrameTruncationClassifiesAtEveryOffset(t *testing.T) {
	enc := frameBytes(FrameProfile, []byte("stored profile bytes"))
	for cut := 0; cut < len(enc); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(enc[:cut]), 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0 = %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrFrameTruncated) {
			t.Errorf("cut %d: %v does not classify as ErrFrameTruncated", cut, err)
		}
	}
}

// TestFrameCorruptionDetectedAtEveryByte flips one bit in every byte
// of a frame: every flip must classify as corruption (or, for the
// length word, corruption/size/truncation — never silent acceptance).
func TestFrameCorruptionDetectedAtEveryByte(t *testing.T) {
	payload := []byte("the CRC must catch every single-bit flip")
	enc := frameBytes(FrameAck, payload)
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x10
		_, got, err := ReadFrame(bytes.NewReader(bad), len(enc))
		if err == nil {
			t.Errorf("flip at byte %d accepted; payload %q", i, got)
			continue
		}
		if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFrameTruncated) &&
			!errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("flip at byte %d: unclassified error %v", i, err)
		}
	}
}

// TestFrameSizeLimit pins that a lying length prefix fails fast as
// ErrFrameTooLarge without allocating the claim.
func TestFrameSizeLimit(t *testing.T) {
	enc := frameBytes(FrameProfile, make([]byte, 100))
	if _, _, err := ReadFrame(bytes.NewReader(enc), 99); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame = %v", err)
	}
	// A 4 GiB claim on a 9-byte stream must be rejected by the limit,
	// not attempted.
	huge := []byte{byte(FrameProfile), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(huge), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge claim = %v", err)
	}
}

// TestPreambleClassification drives ReadPreamble over the failure
// landscape: wrong protocol, wrong version, truncation.
func TestPreambleClassification(t *testing.T) {
	mk := func(b []byte) *Conn {
		client, server := net.Pipe()
		go func() {
			client.Write(b)
			client.Close()
		}()
		return NewConn(server, ConnConfig{})
	}
	good := append([]byte(Magic), 1, 0, 0, 0)

	if err := mk(good).ReadPreamble(); err != nil {
		t.Fatalf("valid preamble: %v", err)
	}
	if err := mk([]byte("HTTP/1.1 GET /")).ReadPreamble(); !errors.Is(err, ErrFrameMagic) {
		t.Errorf("wrong protocol = %v", err)
	}
	if err := mk([]byte("XY")).ReadPreamble(); !errors.Is(err, ErrFrameMagic) {
		t.Errorf("short garbage = %v", err)
	}
	// A genuine magic prefix earns the truncation classification, both
	// cut inside the magic and cut inside the version word.
	if err := mk([]byte("HB")).ReadPreamble(); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("magic prefix cut short = %v", err)
	}
	if err := mk([]byte(Magic + "\x02")).ReadPreamble(); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("genuine magic cut mid-version = %v", err)
	}
	future := append([]byte(Magic), 9, 0, 0, 0)
	if err := mk(future).ReadPreamble(); !errors.Is(err, ErrUnsupportedVersion) {
		t.Errorf("future version = %v", err)
	}
}

// TestReadDeadlineFiresOnStall pins the slow-loris defense: a peer
// that opens a frame and stalls must cost one ReadTimeout, not a
// parked goroutine.
func TestReadDeadlineFiresOnStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		wc := NewConn(c, ConnConfig{ReadTimeout: 50 * time.Millisecond})
		_, _, err = wc.ReadFrame()
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte{byte(FrameProfile), 0xFF, 0x00}) // half a header, then silence
	select {
	case err := <-done:
		if !IsTimeout(err) {
			t.Fatalf("stalled read = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not observe the deadline")
	}
}

// TestUnblockWakesParkedRead pins the graceful-shutdown lever.
func TestUnblockWakesParkedRead(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	wc := NewConn(server, ConnConfig{})
	done := make(chan error, 1)
	go func() {
		_, _, err := wc.ReadFrame()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wc.Unblock()
	select {
	case err := <-done:
		if !IsTimeout(err) {
			t.Fatalf("unblocked read = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Unblock did not wake the read")
	}
}

// TestMessageRoundTrips pins every payload codec, including the
// trailing-byte and empty-identity rejections.
func TestMessageRoundTrips(t *testing.T) {
	h, err := ParseHello(AppendHello(nil, Hello{Tenant: "prod", Agent: "host-17"}))
	if err != nil || h.Tenant != "prod" || h.Agent != "host-17" {
		t.Fatalf("hello = %+v, %v", h, err)
	}
	if _, err := ParseHello(AppendHello(nil, Hello{Tenant: "", Agent: "a"})); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty tenant = %v", err)
	}
	if _, err := ParseHello(append(AppendHello(nil, Hello{Tenant: "t", Agent: "a"}), 0xFF)); !errors.Is(err, ErrProtocol) {
		t.Errorf("trailing bytes = %v", err)
	}

	w, err := ParseWelcome(AppendWelcome(nil, Welcome{LastSeq: 1 << 40}))
	if err != nil || w.LastSeq != 1<<40 {
		t.Fatalf("welcome = %+v, %v", w, err)
	}

	hdr, body, err := ParseProfile(AppendProfile(nil, ProfileHeader{Seq: 7, Epoch: 3}, []byte("HBBPROF1...")))
	if err != nil || hdr.Seq != 7 || hdr.Epoch != 3 || string(body) != "HBBPROF1..." {
		t.Fatalf("profile = %+v %q, %v", hdr, body, err)
	}
	if _, _, err := ParseProfile(AppendProfile(nil, ProfileHeader{Seq: 0}, nil)); !errors.Is(err, ErrProtocol) {
		t.Errorf("seq 0 = %v", err)
	}

	a, err := ParseAck(AppendAck(nil, Ack{Seq: 9, Duplicate: true}))
	if err != nil || a.Seq != 9 || !a.Duplicate {
		t.Fatalf("ack = %+v, %v", a, err)
	}

	n, err := ParseNack(AppendNack(nil, Nack{Seq: 5, Code: NackOverloaded, Msg: "queue full"}))
	if err != nil || n.Seq != 5 || n.Code != NackOverloaded || n.Msg != "queue full" {
		t.Fatalf("nack = %+v, %v", n, err)
	}
	if _, err := ParseNack(AppendNack(nil, Nack{Seq: 1, Code: 0})); !errors.Is(err, ErrProtocol) {
		t.Errorf("code 0 = %v", err)
	}
	long := Hello{Tenant: strings.Repeat("x", maxNameLen+1), Agent: "a"}
	if _, err := ParseHello(AppendHello(nil, long)); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized name = %v", err)
	}
}

// TestBatchRoundTrips pins the batch frame codecs: entry round-trip,
// verdict round-trip in every status, and the structural rejections
// (empty, disordered, lying sizes, trailing bytes).
func TestBatchRoundTrips(t *testing.T) {
	in := []BatchEntry{
		{Seq: 1, Epoch: 4, Profile: []byte("first")},
		{Seq: 2, Epoch: 4, Profile: nil},
		{Seq: 9, Epoch: 5, Profile: []byte("HBBPROF1...")},
	}
	got, err := ParseProfileBatch(AppendProfileBatch(nil, in))
	if err != nil || len(got) != 3 {
		t.Fatalf("batch = %+v, %v", got, err)
	}
	for i := range in {
		if got[i].Seq != in[i].Seq || got[i].Epoch != in[i].Epoch || string(got[i].Profile) != string(in[i].Profile) {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], in[i])
		}
	}

	if _, err := ParseProfileBatch(AppendProfileBatch(nil, nil)); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty batch = %v", err)
	}
	disordered := []BatchEntry{{Seq: 5, Profile: []byte("a")}, {Seq: 5, Profile: []byte("b")}}
	if _, err := ParseProfileBatch(AppendProfileBatch(nil, disordered)); !errors.Is(err, ErrProtocol) {
		t.Errorf("non-ascending seqs = %v", err)
	}
	if _, err := ParseProfileBatch(AppendProfileBatch(nil, []BatchEntry{{Seq: 0}})); !errors.Is(err, ErrProtocol) {
		t.Errorf("seq 0 = %v", err)
	}
	enc := AppendProfileBatch(nil, in)
	if _, err := ParseProfileBatch(enc[:len(enc)-3]); !errors.Is(err, ErrProtocol) {
		t.Errorf("truncated batch = %v", err)
	}
	if _, err := ParseProfileBatch(append(enc, 0xFF)); !errors.Is(err, ErrProtocol) {
		t.Errorf("trailing bytes = %v", err)
	}

	vin := []BatchVerdict{
		{Seq: 1, Status: BatchMerged},
		{Seq: 2, Status: BatchDuplicate},
		{Seq: 9, Status: BatchNacked, Code: NackBadProfile, Msg: "bad magic"},
	}
	vgot, err := ParseAckBatch(AppendAckBatch(nil, vin))
	if err != nil || len(vgot) != 3 {
		t.Fatalf("ack batch = %+v, %v", vgot, err)
	}
	for i := range vin {
		if vgot[i] != vin[i] {
			t.Errorf("verdict %d = %+v, want %+v", i, vgot[i], vin[i])
		}
	}
	if _, err := ParseAckBatch(AppendAckBatch(nil, nil)); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty ack batch = %v", err)
	}
	if _, err := ParseAckBatch(AppendAckBatch(nil, []BatchVerdict{{Seq: 1, Status: 7}})); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad status = %v", err)
	}
	if _, err := ParseAckBatch(AppendAckBatch(nil, []BatchVerdict{{Seq: 1, Status: BatchNacked, Code: 0}})); !errors.Is(err, ErrProtocol) {
		t.Errorf("nacked with code 0 = %v", err)
	}
}

// TestConnReadFrameReusesBuffer pins the connection read buffer's
// contract: back-to-back frames decode correctly, and the payload of
// an earlier read is NOT stable across the next one — callers must
// copy what they keep.
func TestConnReadFrameReusesBuffer(t *testing.T) {
	client, server := net.Pipe()
	cfg := ConnConfig{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second}
	cc, sc := NewConn(client, cfg), NewConn(server, cfg)
	defer cc.Close()
	defer sc.Close()

	go func() {
		cc.WriteFrame(FrameProfile, []byte("payload-one"))
		cc.WriteFrame(FrameProfile, []byte("payload-two"))
	}()
	_, p1, err := sc.ReadFrame()
	if err != nil || string(p1) != "payload-one" {
		t.Fatalf("first frame = %q, %v", p1, err)
	}
	kept := string(p1) // copy before the next read, per the contract
	_, p2, err := sc.ReadFrame()
	if err != nil || string(p2) != "payload-two" {
		t.Fatalf("second frame = %q, %v", p2, err)
	}
	if kept != "payload-one" {
		t.Fatal("copied payload changed")
	}
	if len(p1) == len(p2) && &p1[0] == &p2[0] && string(p1) != "payload-one" {
		// Aliasing observed and the old view is stale: that is the
		// documented behavior, nothing to assert beyond the copy above.
		_ = p1
	}
}

// TestConnHandshakeAndExchange runs the full protocol over a real
// socket pair: preamble both ways, hello/welcome, one profile, one
// ack.
func TestConnHandshakeAndExchange(t *testing.T) {
	client, server := net.Pipe()
	cfg := ConnConfig{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second}
	cc, sc := NewConn(client, cfg), NewConn(server, cfg)

	errc := make(chan error, 1)
	go func() {
		errc <- func() error {
			if err := sc.ReadPreamble(); err != nil {
				return err
			}
			typ, p, err := sc.ReadFrame()
			if err != nil {
				return err
			}
			if typ != FrameHello {
				return errors.New("first frame is not hello")
			}
			if _, err := ParseHello(p); err != nil {
				return err
			}
			if err := sc.WritePreamble(); err != nil {
				return err
			}
			if err := sc.WriteFrame(FrameWelcome, AppendWelcome(nil, Welcome{LastSeq: 0})); err != nil {
				return err
			}
			typ, p, err = sc.ReadFrame()
			if err != nil {
				return err
			}
			if typ != FrameProfile {
				return errors.New("second frame is not a profile")
			}
			hdr, _, err := ParseProfile(p)
			if err != nil {
				return err
			}
			return sc.WriteFrame(FrameAck, AppendAck(nil, Ack{Seq: hdr.Seq}))
		}()
	}()

	if err := cc.WritePreamble(); err != nil {
		t.Fatal(err)
	}
	if err := cc.WriteFrame(FrameHello, AppendHello(nil, Hello{Tenant: "t", Agent: "a"})); err != nil {
		t.Fatal(err)
	}
	if err := cc.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	typ, p, err := cc.ReadFrame()
	if err != nil || typ != FrameWelcome {
		t.Fatalf("welcome: %v %v", typ, err)
	}
	if _, err := ParseWelcome(p); err != nil {
		t.Fatal(err)
	}
	if err := cc.WriteFrame(FrameProfile, AppendProfile(nil, ProfileHeader{Seq: 1, Epoch: 0}, []byte("bytes"))); err != nil {
		t.Fatal(err)
	}
	typ, p, err = cc.ReadFrame()
	if err != nil || typ != FrameAck {
		t.Fatalf("ack: %v %v", typ, err)
	}
	if a, err := ParseAck(p); err != nil || a.Seq != 1 {
		t.Fatalf("ack = %+v, %v", a, err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("server side: %v", err)
	}
}
