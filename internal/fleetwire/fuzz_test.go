package fleetwire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame drives the frame decoder with arbitrary bytes,
// mirroring the perffile/profstore fuzz pattern: ReadFrame must never
// panic, every error must classify under the sentinel set, and any
// frame it accepts must re-encode to exactly the bytes it consumed
// (the codec is its own inverse).
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: valid frames of each type, the interesting failure
	// shapes, and a back-to-back pair.
	f.Add(AppendFrame(nil, FrameHello, AppendHello(nil, Hello{Tenant: "t", Agent: "a"})))
	f.Add(AppendFrame(nil, FrameWelcome, AppendWelcome(nil, Welcome{LastSeq: 12})))
	f.Add(AppendFrame(nil, FrameProfile, AppendProfile(nil, ProfileHeader{Seq: 1, Epoch: 2}, []byte("HBBPROF1"))))
	f.Add(AppendFrame(nil, FrameAck, AppendAck(nil, Ack{Seq: 1})))
	f.Add(AppendFrame(nil, FrameNack, AppendNack(nil, Nack{Seq: 1, Code: NackOverloaded, Msg: "q"})))
	f.Add([]byte{})
	f.Add([]byte{byte(FrameAck)})
	f.Add([]byte{byte(FrameProfile), 0xFF, 0xFF, 0xFF, 0xFF})
	valid := AppendFrame(nil, FrameAck, AppendAck(nil, Ack{Seq: 3}))
	f.Add(valid[:len(valid)-1])
	corrupt := append([]byte(nil), valid...)
	corrupt[2] ^= 0x40
	f.Add(corrupt)
	f.Add(append(AppendFrame(nil, FrameHello, nil), AppendFrame(nil, FrameAck, nil)...))

	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			if err == io.EOF {
				return
			}
			if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameCorrupt) &&
				!errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		// An accepted frame must re-encode to the consumed prefix.
		enc := AppendFrame(nil, typ, payload)
		if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("accepted frame does not re-encode to its own bytes (type %v, %d payload bytes)",
				typ, len(payload))
		}
		// Accepted payloads feed the message parsers, which must not
		// panic either and must classify their rejections.
		var perr error
		switch typ {
		case FrameHello:
			_, perr = ParseHello(payload)
		case FrameWelcome:
			_, perr = ParseWelcome(payload)
		case FrameProfile:
			_, _, perr = ParseProfile(payload)
		case FrameAck:
			_, perr = ParseAck(payload)
		case FrameNack:
			_, perr = ParseNack(payload)
		}
		if perr != nil && !errors.Is(perr, ErrProtocol) {
			t.Fatalf("unclassified payload error for %v: %v", typ, perr)
		}
	})
}
