// Package fleetwire is the fleet ingest wire protocol: how an agent
// ships stored profiles (the HBBPROF1 format) to an aggregation server
// over a byte stream that real networks will truncate, corrupt, stall
// and reset.
//
// The protocol is deliberately small, because every feature is a
// robustness obligation:
//
//   - A fixed preamble ("HBBPWIR1" + a little-endian uint32 version)
//     opens each direction of a connection, so version skew and
//     wrong-protocol peers fail fast with a classified error instead
//     of a confusing mid-stream parse failure.
//   - Every message after the preamble is one frame: a 1-byte type, a
//     4-byte little-endian payload length, the payload, and a CRC-32C
//     checksum over all of it. A frame either arrives bit-exact or it
//     is rejected; there is no "mostly intact".
//   - Payload lengths are bounded (MaxFrame), so a corrupted or
//     hostile length prefix costs a classified error, not an
//     allocation the size of the lie.
//   - Reads and writes carry deadlines, so a stalled peer (slow-loris
//     or a half-dead TCP session) surfaces as a timeout the caller can
//     account, never a goroutine parked forever.
//
// Malformed streams classify under errors.Is into the same sentinel
// pattern internal/perffile and internal/profstore use:
// [ErrFrameMagic], [ErrFrameTruncated], [ErrFrameCorrupt],
// [ErrFrameTooLarge], [ErrUnsupportedVersion] and [ErrProtocol].
//
// Like the two serialization formats, this package depends only on the
// standard library (enforced by the repository's import-boundary
// test): the profile payload is opaque bytes here, so the wire layer
// can be lifted into external agent tooling unchanged.
package fleetwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"
)

// Magic opens each direction of a connection.
const Magic = "HBBPWIR1"

// Version is the current wire protocol version.
const Version uint32 = 1

// DefaultMaxFrame bounds a frame's payload when the caller does not
// choose a limit: generous for merged fleet profiles (~11 B/block in
// the HBBPROF1 encoding), small enough that a lying length prefix
// cannot commit the peer to a gigabyte allocation.
const DefaultMaxFrame = 16 << 20

// frameOverhead is the non-payload cost of one frame: type byte,
// length word, trailing CRC.
const frameOverhead = 1 + 4 + 4

// FrameType identifies a frame's message kind.
type FrameType uint8

// The protocol's frame types. Hello, Profile and ProfileBatch flow
// agent to server; Welcome, Ack, Nack and AckBatch flow server to
// agent.
const (
	// FrameHello identifies the agent: tenant and agent ID.
	FrameHello FrameType = 1
	// FrameWelcome answers a Hello with the last profile sequence
	// number the server has durably merged for this agent — the resume
	// point after a reconnect.
	FrameWelcome FrameType = 2
	// FrameProfile carries one stored profile with its per-agent
	// sequence number and epoch.
	FrameProfile FrameType = 3
	// FrameAck confirms a profile was merged (or was already merged —
	// a duplicate re-send).
	FrameAck FrameType = 4
	// FrameNack refuses a profile with a reason code; the profile was
	// NOT merged.
	FrameNack FrameType = 5
	// FrameProfileBatch carries several profiles in one frame, each
	// with its own sequence number and epoch; answered by one
	// FrameAckBatch with a verdict per entry.
	FrameProfileBatch FrameType = 6
	// FrameAckBatch answers a FrameProfileBatch: one per-entry verdict
	// (merged, duplicate, or nacked with a reason) in entry order.
	FrameAckBatch FrameType = 7
)

// String names a frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameProfile:
		return "profile"
	case FrameAck:
		return "ack"
	case FrameNack:
		return "nack"
	case FrameProfileBatch:
		return "profile-batch"
	case FrameAckBatch:
		return "ack-batch"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Sentinel errors for broken streams. Failures wrap one of these, so
// callers classify with errors.Is regardless of contextual detail.
var (
	// ErrFrameMagic reports a peer that is not speaking this protocol
	// at all.
	ErrFrameMagic = errors.New("fleetwire: bad wire magic")
	// ErrFrameTruncated reports a stream that ends mid-preamble or
	// mid-frame.
	ErrFrameTruncated = errors.New("fleetwire: truncated frame")
	// ErrFrameCorrupt reports a frame whose CRC does not match its
	// bytes.
	ErrFrameCorrupt = errors.New("fleetwire: frame CRC mismatch")
	// ErrFrameTooLarge reports a frame whose length prefix exceeds the
	// connection's limit.
	ErrFrameTooLarge = errors.New("fleetwire: frame exceeds size limit")
	// ErrUnsupportedVersion reports a valid preamble carrying a wire
	// version this build cannot speak.
	ErrUnsupportedVersion = errors.New("fleetwire: unsupported wire version")
	// ErrProtocol reports a bit-exact frame whose payload violates the
	// protocol (unparseable message, wrong frame at this point in the
	// exchange).
	ErrProtocol = errors.New("fleetwire: protocol violation")
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one encoded frame to dst and returns the
// extended slice: type, length, payload, CRC-32C over the first three.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(t))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// ReadFrame reads one frame from r under the payload size limit
// (maxFrame <= 0 selects DefaultMaxFrame). A stream that ends cleanly
// before the first header byte returns io.EOF; one that ends anywhere
// inside the frame returns ErrFrameTruncated; a checksum mismatch
// returns ErrFrameCorrupt.
func ReadFrame(r io.Reader, maxFrame int) (FrameType, []byte, error) {
	t, payload, _, err := readFrameScratch(r, maxFrame, nil)
	return t, payload, err
}

// readFrameScratch is ReadFrame decoding into a reusable buffer: the
// returned payload aliases the returned scratch slice, which grows as
// needed and is handed back for the next call. A nil scratch allocates
// fresh (ReadFrame's semantics).
func readFrameScratch(r io.Reader, maxFrame int, scratch []byte) (FrameType, []byte, []byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var head [5]byte
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, scratch, io.EOF // clean close between frames
		}
		return 0, nil, scratch, classifyRead("frame type", err)
	}
	if _, err := io.ReadFull(r, head[1:]); err != nil {
		return 0, nil, scratch, classifyRead("frame header", err)
	}
	t := FrameType(head[0])
	n := binary.LittleEndian.Uint32(head[1:])
	if n > uint32(maxFrame) {
		return 0, nil, scratch, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, maxFrame)
	}
	need := int(n) + 4
	body := scratch
	if cap(body) < need {
		body = make([]byte, need)
		scratch = body
	}
	body = body[:need]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, scratch, classifyRead("frame payload", err)
	}
	payload := body[:n]
	sum := crc32.Checksum(head[:], castagnoli)
	sum = crc32.Update(sum, castagnoli, payload)
	if got := binary.LittleEndian.Uint32(body[n:]); got != sum {
		return 0, nil, scratch, fmt.Errorf("%w: %s frame, %#08x != %#08x", ErrFrameCorrupt, t, got, sum)
	}
	return t, payload, scratch, nil
}

// classifyRead maps a mid-frame read failure to its sentinel: an early
// end is a truncated frame, any other I/O failure (including a
// deadline expiry) keeps its own identity on the chain so callers do
// not mistake a stall for corruption.
func classifyRead(what string, err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %s: %w", ErrFrameTruncated, what, err)
	}
	return fmt.Errorf("fleetwire: reading %s: %w", what, err)
}

// ConnConfig parameterizes a framed connection.
type ConnConfig struct {
	// MaxFrame bounds a frame's payload in bytes; 0 selects
	// DefaultMaxFrame.
	MaxFrame int
	// ReadTimeout bounds each frame read (slow-loris protection);
	// 0 means no deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write; 0 means no deadline.
	WriteTimeout time.Duration
}

// Conn frames messages over a net.Conn with deadlines. Not safe for
// concurrent use by multiple goroutines on the same direction; the
// protocol is strictly request/response per connection.
type Conn struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	cfg  ConnConfig
	wbuf []byte
	rbuf []byte
}

// NewConn wraps c for framed exchange.
func NewConn(c net.Conn, cfg ConnConfig) *Conn {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	return &Conn{
		c:   c,
		br:  bufio.NewReaderSize(c, 1<<16),
		bw:  bufio.NewWriterSize(c, 1<<16),
		cfg: cfg,
	}
}

// WritePreamble buffers the magic and wire version. It is flushed with
// the next WriteFrame, so a handshake costs one packet, not two.
func (c *Conn) WritePreamble() error {
	if _, err := c.bw.WriteString(Magic); err != nil {
		return err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	_, err := c.bw.Write(v[:])
	return err
}

// ReadPreamble reads and validates the peer's magic and version.
func (c *Conn) ReadPreamble() error {
	if err := c.armRead(); err != nil {
		return err
	}
	head := make([]byte, len(Magic)+4)
	if n, err := io.ReadFull(c.br, head); err != nil {
		// A short stream that does not even start with the magic was
		// never speaking this protocol; only a genuine magic prefix
		// earns the truncation classification.
		prefix := min(n, len(Magic))
		if string(head[:prefix]) != Magic[:prefix] {
			return ErrFrameMagic
		}
		return classifyRead("preamble", err)
	}
	if string(head[:len(Magic)]) != Magic {
		return ErrFrameMagic
	}
	if v := binary.LittleEndian.Uint32(head[len(Magic):]); v != Version {
		return fmt.Errorf("%w: %d (this build speaks %d)", ErrUnsupportedVersion, v, Version)
	}
	return nil
}

// WriteFrame encodes one frame, flushes it, and reports any write
// failure. The write runs under the configured deadline.
func (c *Conn) WriteFrame(t FrameType, payload []byte) error {
	if len(payload) > c.cfg.MaxFrame {
		return fmt.Errorf("%w: writing %d bytes (limit %d)", ErrFrameTooLarge, len(payload), c.cfg.MaxFrame)
	}
	if c.cfg.WriteTimeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout)); err != nil {
			return err
		}
	}
	c.wbuf = AppendFrame(c.wbuf[:0], t, payload)
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadFrame reads one frame under the configured deadline and size
// limit. The payload is decoded into a buffer the connection owns and
// reuses: it is valid only until the next ReadFrame on c, and callers
// that keep profile bytes past that point must copy them. The protocol
// is strictly request/response, so in practice each frame is fully
// handled — parsed, merged or copied — before the next read.
func (c *Conn) ReadFrame() (FrameType, []byte, error) {
	if err := c.armRead(); err != nil {
		return 0, nil, err
	}
	t, payload, scratch, err := readFrameScratch(c.br, c.cfg.MaxFrame, c.rbuf)
	c.rbuf = scratch
	return t, payload, err
}

// armRead sets the read deadline for the next read, if one is
// configured.
func (c *Conn) armRead() error {
	if c.cfg.ReadTimeout <= 0 {
		return nil
	}
	return c.c.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
}

// Unblock expires any in-flight or future read immediately — the
// graceful-shutdown lever: a handler parked in ReadFrame wakes with a
// timeout and can observe the shutdown flag.
func (c *Conn) Unblock() {
	c.c.SetReadDeadline(time.Now())
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer for diagnostics.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// IsTimeout reports whether err is a network deadline expiry — the
// signature of a stalled peer or an Unblock nudge, as opposed to a
// broken or misbehaving one.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// --- Message payloads -------------------------------------------------
//
// Payloads use the profstore varint conventions: uvarints for numbers,
// uvarint-length-prefixed bytes for strings. Parse failures wrap
// ErrProtocol — the frame arrived bit-exact (the CRC said so), so a
// bad payload is a peer bug, not line noise.

// maxNameLen bounds tenant and agent identifiers.
const maxNameLen = 256

// Hello identifies an agent to the server.
type Hello struct {
	// Tenant scopes everything the agent sends: aggregation, drop
	// accounting, snapshots.
	Tenant string
	// Agent identifies the logical sender across reconnects; the
	// server keys duplicate suppression by it. Agents choose it and
	// must keep it stable for the life of their sequence numbering.
	Agent string
}

// AppendHello encodes h.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendString(dst, h.Tenant)
	return appendString(dst, h.Agent)
}

// ParseHello decodes a Hello payload.
func ParseHello(p []byte) (Hello, error) {
	var h Hello
	var err error
	if h.Tenant, p, err = parseString(p, "hello tenant"); err != nil {
		return Hello{}, err
	}
	if h.Agent, p, err = parseString(p, "hello agent"); err != nil {
		return Hello{}, err
	}
	if err := expectEnd(p, "hello"); err != nil {
		return Hello{}, err
	}
	if h.Tenant == "" || h.Agent == "" {
		return Hello{}, fmt.Errorf("%w: hello with empty tenant or agent", ErrProtocol)
	}
	return h, nil
}

// Welcome answers a Hello.
type Welcome struct {
	// LastSeq is the highest profile sequence number the server has
	// merged for this agent — everything at or below it is already
	// aggregated and must not be re-sent.
	LastSeq uint64
}

// AppendWelcome encodes w.
func AppendWelcome(dst []byte, w Welcome) []byte {
	return binary.AppendUvarint(dst, w.LastSeq)
}

// ParseWelcome decodes a Welcome payload.
func ParseWelcome(p []byte) (Welcome, error) {
	v, p, err := parseUvarint(p, "welcome lastSeq")
	if err != nil {
		return Welcome{}, err
	}
	if err := expectEnd(p, "welcome"); err != nil {
		return Welcome{}, err
	}
	return Welcome{LastSeq: v}, nil
}

// ProfileHeader prefixes a profile payload on the wire.
type ProfileHeader struct {
	// Seq is the agent's sequence number for this profile: starts at 1
	// and increases by 1 per profile for the life of the agent ID.
	Seq uint64
	// Epoch selects the aggregation window the profile belongs to.
	Epoch uint64
}

// AppendProfile encodes a profile frame payload: header then the
// opaque stored-profile bytes.
func AppendProfile(dst []byte, h ProfileHeader, profile []byte) []byte {
	dst = binary.AppendUvarint(dst, h.Seq)
	dst = binary.AppendUvarint(dst, h.Epoch)
	return append(dst, profile...)
}

// ParseProfile decodes a profile frame payload, returning the header
// and the profile bytes (aliasing p).
func ParseProfile(p []byte) (ProfileHeader, []byte, error) {
	var h ProfileHeader
	var err error
	if h.Seq, p, err = parseUvarint(p, "profile seq"); err != nil {
		return ProfileHeader{}, nil, err
	}
	if h.Epoch, p, err = parseUvarint(p, "profile epoch"); err != nil {
		return ProfileHeader{}, nil, err
	}
	if h.Seq == 0 {
		return ProfileHeader{}, nil, fmt.Errorf("%w: profile seq 0 (sequence numbers start at 1)", ErrProtocol)
	}
	return h, p, nil
}

// Ack confirms a profile is merged.
type Ack struct {
	// Seq echoes the profile's sequence number.
	Seq uint64
	// Duplicate reports the profile was already merged by an earlier
	// send (the ack the original never received) — merged exactly
	// once either way.
	Duplicate bool
}

// AppendAck encodes a.
func AppendAck(dst []byte, a Ack) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	dup := uint64(0)
	if a.Duplicate {
		dup = 1
	}
	return binary.AppendUvarint(dst, dup)
}

// ParseAck decodes an Ack payload.
func ParseAck(p []byte) (Ack, error) {
	var a Ack
	var err error
	var dup uint64
	if a.Seq, p, err = parseUvarint(p, "ack seq"); err != nil {
		return Ack{}, err
	}
	if dup, p, err = parseUvarint(p, "ack duplicate"); err != nil {
		return Ack{}, err
	}
	if err := expectEnd(p, "ack"); err != nil {
		return Ack{}, err
	}
	a.Duplicate = dup != 0
	return a, nil
}

// NackCode classifies a refusal.
type NackCode uint8

const (
	// NackOverloaded: the ingest queue stayed full past the
	// backpressure deadline; the profile was shed and counted in the
	// tenant's drop counters. Retryable.
	NackOverloaded NackCode = 1
	// NackBadProfile: the payload is not a loadable stored profile.
	// Not retryable — re-sending the same bytes cannot succeed.
	NackBadProfile NackCode = 2
	// NackShuttingDown: the server is draining and accepts no new
	// profiles. Retryable against a replacement server.
	NackShuttingDown NackCode = 3
)

// String names a nack code.
func (c NackCode) String() string {
	switch c {
	case NackOverloaded:
		return "overloaded"
	case NackBadProfile:
		return "bad-profile"
	case NackShuttingDown:
		return "shutting-down"
	}
	return fmt.Sprintf("nack(%d)", uint8(c))
}

// Nack refuses one profile. The profile was not merged and is not in
// any aggregate; retryability depends on the code.
type Nack struct {
	// Seq echoes the refused profile's sequence number.
	Seq uint64
	// Code classifies the refusal.
	Code NackCode
	// Msg carries optional human-readable detail.
	Msg string
}

// AppendNack encodes n.
func AppendNack(dst []byte, n Nack) []byte {
	dst = binary.AppendUvarint(dst, n.Seq)
	dst = binary.AppendUvarint(dst, uint64(n.Code))
	return appendString(dst, n.Msg)
}

// ParseNack decodes a Nack payload.
func ParseNack(p []byte) (Nack, error) {
	var n Nack
	var err error
	var code uint64
	if n.Seq, p, err = parseUvarint(p, "nack seq"); err != nil {
		return Nack{}, err
	}
	if code, p, err = parseUvarint(p, "nack code"); err != nil {
		return Nack{}, err
	}
	if code == 0 || code > 255 {
		return Nack{}, fmt.Errorf("%w: nack code %d", ErrProtocol, code)
	}
	n.Code = NackCode(code)
	if n.Msg, p, err = parseString(p, "nack message"); err != nil {
		return Nack{}, err
	}
	if err := expectEnd(p, "nack"); err != nil {
		return Nack{}, err
	}
	return n, nil
}

// maxBatchEntries bounds the profiles in one batch frame: far above
// any sane sender (the frame size limit binds first), low enough that
// a lying count cannot buy an implausible allocation.
const maxBatchEntries = 1 << 16

// batchPrealloc caps the entry prealloc so a corrupt count fails on
// parse, not on make.
const batchPrealloc = 1 << 10

// BatchEntry is one profile inside a batch frame.
type BatchEntry struct {
	// Seq and Epoch are the entry's ProfileHeader fields; seqs in one
	// batch are strictly ascending (the watermark protocol depends on
	// in-order application).
	Seq, Epoch uint64
	// Profile is the opaque stored-profile bytes. On parse it aliases
	// the frame payload.
	Profile []byte
}

// AppendProfileBatch encodes a batch frame payload: an entry count,
// then per entry its seq, epoch, and length-prefixed profile bytes.
func AppendProfileBatch(dst []byte, entries []BatchEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = binary.AppendUvarint(dst, e.Epoch)
		dst = binary.AppendUvarint(dst, uint64(len(e.Profile)))
		dst = append(dst, e.Profile...)
	}
	return dst
}

// ParseProfileBatch decodes a batch frame payload. Entry profile bytes
// alias p. Zero-entry batches, non-ascending sequence numbers and
// zero seqs are protocol violations: the server applies a batch as one
// in-order unit against the agent's watermark, so a disordered batch
// could never ack coherently.
func ParseProfileBatch(p []byte) ([]BatchEntry, error) {
	n, p, err := parseUvarint(p, "batch count")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty profile batch", ErrProtocol)
	}
	if n > maxBatchEntries {
		return nil, fmt.Errorf("%w: batch of %d profiles (limit %d)", ErrProtocol, n, maxBatchEntries)
	}
	pre := n
	if pre > batchPrealloc {
		pre = batchPrealloc
	}
	entries := make([]BatchEntry, 0, pre)
	for i := uint64(0); i < n; i++ {
		var e BatchEntry
		if e.Seq, p, err = parseUvarint(p, "batch entry seq"); err != nil {
			return nil, err
		}
		if e.Epoch, p, err = parseUvarint(p, "batch entry epoch"); err != nil {
			return nil, err
		}
		if e.Seq == 0 {
			return nil, fmt.Errorf("%w: batch entry seq 0 (sequence numbers start at 1)", ErrProtocol)
		}
		if len(entries) > 0 && e.Seq <= entries[len(entries)-1].Seq {
			return nil, fmt.Errorf("%w: batch seqs not ascending (%d after %d)",
				ErrProtocol, e.Seq, entries[len(entries)-1].Seq)
		}
		var size uint64
		if size, p, err = parseUvarint(p, "batch entry size"); err != nil {
			return nil, err
		}
		if size > uint64(len(p)) {
			return nil, fmt.Errorf("%w: batch entry %d ends early (%d bytes declared, %d left)",
				ErrProtocol, i, size, len(p))
		}
		e.Profile, p = p[:size], p[size:]
		entries = append(entries, e)
	}
	if err := expectEnd(p, "profile batch"); err != nil {
		return nil, err
	}
	return entries, nil
}

// BatchStatus is one entry's outcome inside a batch ack.
type BatchStatus uint8

const (
	// BatchMerged: the entry was merged now.
	BatchMerged BatchStatus = 0
	// BatchDuplicate: the entry was already merged by an earlier send.
	BatchDuplicate BatchStatus = 1
	// BatchNacked: the entry was refused; Code and Msg say why.
	BatchNacked BatchStatus = 2
)

// String names a batch status.
func (s BatchStatus) String() string {
	switch s {
	case BatchMerged:
		return "merged"
	case BatchDuplicate:
		return "duplicate"
	case BatchNacked:
		return "nacked"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// BatchVerdict is one entry's verdict in a batch ack, in batch order.
type BatchVerdict struct {
	// Seq echoes the entry's sequence number.
	Seq uint64
	// Status is the outcome.
	Status BatchStatus
	// Code classifies a refusal; only meaningful when Status is
	// BatchNacked.
	Code NackCode
	// Msg carries optional refusal detail.
	Msg string
}

// AppendAckBatch encodes a batch ack payload.
func AppendAckBatch(dst []byte, verdicts []BatchVerdict) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(verdicts)))
	for i := range verdicts {
		v := &verdicts[i]
		dst = binary.AppendUvarint(dst, v.Seq)
		dst = binary.AppendUvarint(dst, uint64(v.Status))
		if v.Status == BatchNacked {
			dst = binary.AppendUvarint(dst, uint64(v.Code))
			dst = appendString(dst, v.Msg)
		}
	}
	return dst
}

// ParseAckBatch decodes a batch ack payload.
func ParseAckBatch(p []byte) ([]BatchVerdict, error) {
	n, p, err := parseUvarint(p, "ack-batch count")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty batch ack", ErrProtocol)
	}
	if n > maxBatchEntries {
		return nil, fmt.Errorf("%w: batch ack of %d verdicts (limit %d)", ErrProtocol, n, maxBatchEntries)
	}
	pre := n
	if pre > batchPrealloc {
		pre = batchPrealloc
	}
	verdicts := make([]BatchVerdict, 0, pre)
	for i := uint64(0); i < n; i++ {
		var v BatchVerdict
		if v.Seq, p, err = parseUvarint(p, "ack-batch seq"); err != nil {
			return nil, err
		}
		var status uint64
		if status, p, err = parseUvarint(p, "ack-batch status"); err != nil {
			return nil, err
		}
		if status > uint64(BatchNacked) {
			return nil, fmt.Errorf("%w: batch verdict status %d", ErrProtocol, status)
		}
		v.Status = BatchStatus(status)
		if v.Status == BatchNacked {
			var code uint64
			if code, p, err = parseUvarint(p, "ack-batch code"); err != nil {
				return nil, err
			}
			if code == 0 || code > 255 {
				return nil, fmt.Errorf("%w: batch nack code %d", ErrProtocol, code)
			}
			v.Code = NackCode(code)
			if v.Msg, p, err = parseString(p, "ack-batch message"); err != nil {
				return nil, err
			}
		}
		verdicts = append(verdicts, v)
	}
	if err := expectEnd(p, "ack batch"); err != nil {
		return nil, err
	}
	return verdicts, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// parseString consumes one length-prefixed string.
func parseString(p []byte, what string) (string, []byte, error) {
	n, p, err := parseUvarint(p, what)
	if err != nil {
		return "", nil, err
	}
	if n > maxNameLen {
		return "", nil, fmt.Errorf("%w: %s length %d (limit %d)", ErrProtocol, what, n, maxNameLen)
	}
	if uint64(len(p)) < n {
		return "", nil, fmt.Errorf("%w: %s ends early", ErrProtocol, what)
	}
	return string(p[:n]), p[n:], nil
}

// parseUvarint consumes one uvarint.
func parseUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: %s is not a valid uvarint", ErrProtocol, what)
	}
	return v, p[n:], nil
}

// expectEnd rejects trailing payload bytes: a longer-than-expected
// message means the peer speaks a dialect this build does not.
func expectEnd(p []byte, what string) error {
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %s", ErrProtocol, len(p), what)
	}
	return nil
}
