package fleetwire

// The fault-injection half of the wire layer: a net.Conn wrapper that
// misbehaves on purpose. The chaos suite and the examples/fleet load
// generator drive every protocol path through it — partial writes,
// injected resets, stalls, bit corruption, deterministic mid-handshake
// cuts — to prove the server and the retrying client uphold their
// accounting invariants no matter what the transport does.

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the cause carried by every fault this package
// injects, so tests and retry loops can tell a deliberate fault from a
// real transport failure.
var ErrInjected = errors.New("fleetwire: injected fault")

// Faults configures a FlakyConn. The zero value injects nothing.
// Probabilities are per-operation in [0, 1]; deterministic cut
// triggers fire once and then close the connection for good.
type Faults struct {
	// Seed makes the conn's misbehavior reproducible. Two conns with
	// equal Faults misbehave identically.
	Seed int64

	// MaxWriteChunk, when positive, splits every Write into chunks of
	// at most this many bytes handed to the underlying conn one at a
	// time — the short-write torture a congested or tiny-MTU path
	// produces.
	MaxWriteChunk int

	// CorruptProb is the per-Write probability of flipping one random
	// bit of the outgoing chunk — line noise the frame CRC must catch.
	CorruptProb float64

	// ResetProb is the per-operation probability of closing the
	// underlying conn and failing with an injected reset.
	ResetProb float64

	// StallProb is the per-operation probability of sleeping Stall
	// before proceeding — the slow-loris / half-dead-peer shape that
	// must be answered by deadlines, not patience.
	StallProb float64
	// Stall is how long a stall lasts.
	Stall time.Duration

	// CutAfterWrites, when positive, injects a reset immediately after
	// that many successful Write calls — deterministic ack-in-flight
	// and mid-stream cuts.
	CutAfterWrites int

	// CutAfterBytes, when positive, injects a reset once that many
	// bytes have been written — deterministic mid-handshake and
	// mid-frame cuts.
	CutAfterBytes int64
}

// FlakyConn wraps a net.Conn with injected faults. Safe for one
// reader and one writer goroutine, like net.Conn itself.
type FlakyConn struct {
	inner net.Conn
	f     Faults

	mu           sync.Mutex
	rng          *rand.Rand
	writes       int
	bytesWritten int64
	dead         bool
}

// NewFlakyConn wraps inner with the configured faults.
func NewFlakyConn(inner net.Conn, f Faults) *FlakyConn {
	return &FlakyConn{
		inner: inner,
		f:     f,
		rng:   rand.New(rand.NewSource(f.Seed)),
	}
}

// injectedErr is the reset every fault surfaces as: an *net.OpError
// (like a real reset) carrying ErrInjected as its cause.
func injectedErr(op string) error {
	return &net.OpError{Op: op, Net: "flaky", Err: ErrInjected}
}

// prelude runs the shared per-operation faults (stall, reset) and
// reports whether the operation may proceed.
func (c *FlakyConn) prelude(op string) error {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return injectedErr(op)
	}
	stall := c.f.StallProb > 0 && c.rng.Float64() < c.f.StallProb
	reset := c.f.ResetProb > 0 && c.rng.Float64() < c.f.ResetProb
	c.mu.Unlock()
	if stall {
		time.Sleep(c.f.Stall)
	}
	if reset {
		c.kill()
		return injectedErr(op)
	}
	return nil
}

// kill closes the underlying conn and marks every future operation
// failed — one injected reset is permanent, like a real one.
func (c *FlakyConn) kill() {
	c.mu.Lock()
	already := c.dead
	c.dead = true
	c.mu.Unlock()
	if !already {
		c.inner.Close()
	}
}

// Read applies read-side faults, then reads from the underlying conn.
func (c *FlakyConn) Read(b []byte) (int, error) {
	if err := c.prelude("read"); err != nil {
		return 0, err
	}
	return c.inner.Read(b)
}

// Write applies write-side faults: stalls and resets first, then the
// data is (optionally) chunked, each chunk (optionally) bit-corrupted,
// and the deterministic cut triggers checked between chunks. The
// returned count reflects bytes handed to the underlying conn, so a
// mid-write cut produces a genuine short write.
func (c *FlakyConn) Write(b []byte) (int, error) {
	if err := c.prelude("write"); err != nil {
		return 0, err
	}
	written := 0
	for written < len(b) {
		chunk := b[written:]
		if c.f.MaxWriteChunk > 0 && len(chunk) > c.f.MaxWriteChunk {
			chunk = chunk[:c.f.MaxWriteChunk]
		}
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			return written, injectedErr("write")
		}
		if c.f.CutAfterBytes > 0 && c.bytesWritten >= c.f.CutAfterBytes {
			c.mu.Unlock()
			c.kill()
			return written, injectedErr("write")
		}
		// Corrupt a copy, never the caller's buffer.
		out := chunk
		if c.f.CorruptProb > 0 && c.rng.Float64() < c.f.CorruptProb {
			tmp := make([]byte, len(chunk))
			copy(tmp, chunk)
			bit := c.rng.Intn(len(tmp) * 8)
			tmp[bit/8] ^= 1 << (bit % 8)
			out = tmp
		}
		c.mu.Unlock()

		n, err := c.inner.Write(out)
		c.mu.Lock()
		c.writes++
		c.bytesWritten += int64(n)
		cut := c.f.CutAfterWrites > 0 && c.writes >= c.f.CutAfterWrites
		c.mu.Unlock()
		written += n
		if err != nil {
			return written, err
		}
		if cut {
			c.kill()
			return written, injectedErr("write")
		}
	}
	return written, nil
}

// Close closes the underlying conn.
func (c *FlakyConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.inner.Close()
}

// The deadline and address methods delegate unchanged: faults corrupt
// the data path, not the control surface the server's robustness
// depends on.

func (c *FlakyConn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *FlakyConn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *FlakyConn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *FlakyConn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *FlakyConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// FlakyListener wraps a listener so every accepted conn misbehaves:
// the server-side mirror of dialing through NewFlakyConn. Each conn
// gets a distinct deterministic seed derived from Faults.Seed.
type FlakyListener struct {
	net.Listener
	f Faults

	mu sync.Mutex
	n  int64
}

// NewFlakyListener wraps ln with per-conn faults.
func NewFlakyListener(ln net.Listener, f Faults) *FlakyListener {
	return &FlakyListener{Listener: ln, f: f}
}

// Accept accepts and wraps the next conn.
func (l *FlakyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	f := l.f
	f.Seed = f.Seed*1000003 + l.n
	l.mu.Unlock()
	return NewFlakyConn(c, f), nil
}
