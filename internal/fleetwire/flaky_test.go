package fleetwire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
)

// pipeWithFaults returns a flaky writer side and the raw reader side.
func pipeWithFaults(f Faults) (*FlakyConn, net.Conn) {
	a, b := net.Pipe()
	return NewFlakyConn(a, f), b
}

// readAll drains c into a buffer until EOF/reset, concurrently.
func readAll(c net.Conn) (<-chan []byte, *sync.WaitGroup) {
	out := make(chan []byte, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		io.Copy(&buf, c)
		out <- buf.Bytes()
	}()
	return out, &wg
}

// TestFlakyPartialWritesDeliverEverything pins that chunked writes are
// faults of pacing, not of content: all bytes arrive, in order.
func TestFlakyPartialWritesDeliverEverything(t *testing.T) {
	fc, peer := pipeWithFaults(Faults{Seed: 1, MaxWriteChunk: 3})
	out, wg := readAll(peer)
	msg := bytes.Repeat([]byte("0123456789"), 100)
	n, err := fc.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	fc.Close()
	wg.Wait()
	if got := <-out; !bytes.Equal(got, msg) {
		t.Fatalf("delivered %d bytes, want %d, content diverged", len(got), len(msg))
	}
}

// TestFlakyCutAfterBytes pins the deterministic mid-stream cut: the
// writer sees an injected reset carrying ErrInjected, the reader sees
// a closed stream, and the cut happens at the configured byte.
func TestFlakyCutAfterBytes(t *testing.T) {
	fc, peer := pipeWithFaults(Faults{Seed: 1, MaxWriteChunk: 4, CutAfterBytes: 10})
	out, wg := readAll(peer)
	msg := bytes.Repeat([]byte{0xEE}, 64)
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write error = %v", err)
	}
	if n >= len(msg) || n < 10 {
		t.Fatalf("cut write wrote %d bytes of %d", n, len(msg))
	}
	wg.Wait()
	if got := <-out; len(got) != n {
		t.Fatalf("reader saw %d bytes, writer claims %d", len(got), n)
	}
	// The conn stays dead: real resets do not heal.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write = %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut read = %v", err)
	}
}

// TestFlakyCutAfterWrites pins the ack-in-flight cut shape: N writes
// succeed, then the conn dies.
func TestFlakyCutAfterWrites(t *testing.T) {
	fc, peer := pipeWithFaults(Faults{Seed: 1, CutAfterWrites: 2})
	_, wg := readAll(peer)
	if _, err := fc.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := fc.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 = %v, want injected cut after it", err)
	}
	wg.Wait()
}

// TestFlakyCorruptionIsDetectedByFrames wires a corrupting conn under
// the frame codec: every delivered frame either round-trips intact or
// fails CRC — corruption can never surface as different payload bytes.
func TestFlakyCorruptionIsDetectedByFrames(t *testing.T) {
	fc, peer := pipeWithFaults(Faults{Seed: 42, MaxWriteChunk: 5, CorruptProb: 0.3})
	payload := []byte("profile payload that must arrive bit-exact or not at all")
	enc := AppendFrame(nil, FrameProfile, payload)
	done := make(chan struct{})
	go func() {
		defer close(done)
		fc.Write(enc)
		fc.Close()
	}()
	corrupted, intact := 0, 0
	for {
		_, got, err := ReadFrame(peer, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, ErrFrameCorrupt) || errors.Is(err, ErrFrameTruncated) {
				corrupted++
				break // framing is lost after a corrupt frame; stop like a server would
			}
			t.Fatalf("unclassified error: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("corruption passed the CRC: %q", got)
		}
		intact++
	}
	<-done
	if corrupted+intact == 0 {
		t.Fatal("nothing observed")
	}
}

// TestFlakyDeterminism pins that equal Faults misbehave identically —
// chaos runs are reproducible.
func TestFlakyDeterminism(t *testing.T) {
	run := func() (int, error) {
		fc, peer := pipeWithFaults(Faults{Seed: 7, MaxWriteChunk: 3, ResetProb: 0.05})
		_, wg := readAll(peer)
		defer wg.Wait()
		defer fc.Close()
		total := 0
		for i := 0; i < 100; i++ {
			n, err := fc.Write([]byte("deterministic chaos"))
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	n1, e1 := run()
	n2, e2 := run()
	if n1 != n2 || (e1 == nil) != (e2 == nil) {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", n1, e1, n2, e2)
	}
}

// TestFlakyListenerWrapsAccepts pins that server-side injection
// reaches accepted conns.
func TestFlakyListenerWrapsAccepts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlakyListener(ln, Faults{Seed: 3, CutAfterWrites: 1})
	defer fl.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(io.Discard, c)
	}()
	c, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*FlakyConn); !ok {
		t.Fatalf("accepted conn is %T, not *FlakyConn", c)
	}
	if _, err := c.Write([]byte("first")); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn write = %v, want cut", err)
	}
}
