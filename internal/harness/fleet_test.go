package harness

import (
	"strings"
	"testing"
)

// fleetRunner builds a fast-mode runner for the fleet experiment.
func fleetRunner(parallelism int) *Runner {
	return New(Config{Fast: true, FastFactor: 0.1, Seed: 5, Parallelism: parallelism})
}

// TestFleetMergedMixMatchesUnion pins the experiment's headline claim:
// the merged fleet mix — every suite run quantized into the profile
// store and merged — matches the union of the instrumentation
// references within the error regime of the per-workload evaluations
// (single-digit percent), and the merged HBBP mix is no worse than
// the worse single estimator.
func TestFleetMergedMixMatchesUnion(t *testing.T) {
	res, err := fleetRunner(0).Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if len(res.Rows) == 0 || res.Merged.TotalMass() == 0 {
		t.Fatalf("empty fleet result: %+v", res)
	}
	if res.Merged.TotalRuns() != uint64(len(res.Rows)) {
		t.Errorf("merged runs %d != %d workloads", res.Merged.TotalRuns(), len(res.Rows))
	}
	// Fast mode shrinks sampling statistics, so the bound is loose;
	// full runs land well under it. What it guards is the layer this
	// experiment adds: quantization plus merging must not wreck the
	// estimate.
	if res.ErrHBBP > 0.25 {
		t.Errorf("merged fleet mix error %.1f%% vs instrumentation union", res.ErrHBBP*100)
	}
	// At fleet level the union averages away most per-workload
	// differences (all three estimators land within a couple percent),
	// so the comparative check only guards against the hybrid falling
	// off a cliff relative to its own inputs.
	worst := res.ErrEBS
	if res.ErrLBR > worst {
		worst = res.ErrLBR
	}
	if res.ErrHBBP > worst+0.01 {
		t.Errorf("merged HBBP error %.2f%% well beyond both raw estimators (EBS %.2f%%, LBR %.2f%%)",
			res.ErrHBBP*100, res.ErrEBS*100, res.ErrLBR*100)
	}
	t.Logf("fleet merged errors: HBBP %.2f%%, EBS %.2f%%, LBR %.2f%%",
		res.ErrHBBP*100, res.ErrEBS*100, res.ErrLBR*100)
	var shares float64
	for _, row := range res.Rows {
		shares += row.Share
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("shares sum to %v", shares)
	}
}

// TestFleetParityAcrossParallelism pins that the rendered fleet view
// is bit-identical whether the suite ran sequentially or on a wide
// pool — the same determinism contract every other experiment keeps.
func TestFleetParityAcrossParallelism(t *testing.T) {
	render := func(parallelism int) string {
		res, err := fleetRunner(parallelism).Fleet()
		if err != nil {
			t.Fatalf("Fleet(parallelism %d): %v", parallelism, err)
		}
		return res.Render()
	}
	seq, par := render(1), render(4)
	if seq != par {
		t.Errorf("fleet view differs under parallelism:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestFleetRunsThroughExperimentRegistry pins the registry wiring and
// the rendered shape.
func TestFleetRunsThroughExperimentRegistry(t *testing.T) {
	var found bool
	for _, name := range ExperimentNames() {
		if name == "fleet" {
			found = true
		}
	}
	if !found {
		t.Fatal("fleet missing from ExperimentNames")
	}
	var sb strings.Builder
	r := New(Config{Out: &sb, Fast: true, FastFactor: 0.1, Seed: 5})
	if err := r.Run("fleet"); err != nil {
		t.Fatalf("Run(fleet): %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Fleet:", "WORKLOAD", "SHARE", "avg weighted error", "HBBP"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet render missing %q:\n%s", want, out)
		}
	}
}
