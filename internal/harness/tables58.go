package harness

import (
	"fmt"
	"sort"
	"strings"

	"hbbp/internal/analyzer"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/workloads"
)

// ---------------------------------------------------------------- Table 5

// Table5Result reproduces Table 5: Test40 runtimes and accuracy under
// clean execution, HBBP and SDE.
type Table5Result struct {
	CleanSeconds float64
	HBBPSeconds  float64
	SDESeconds   float64
	HBBPPenalty  float64 // fraction
	SDEPenalty   float64 // fraction
	AvgWErr      float64 // HBBP average weighted error
}

// Table5 evaluates Test40.
func (r *Runner) Table5() (*Table5Result, error) {
	ev, err := r.evalNamedOne("test40")
	if err != nil {
		return nil, err
	}
	return &Table5Result{
		CleanSeconds: ev.CleanSeconds,
		HBBPSeconds:  ev.HBBPSeconds,
		SDESeconds:   ev.SDESeconds,
		HBBPPenalty:  ev.HBBPOverhead,
		SDEPenalty:   ev.SDEFactor - 1,
		AvgWErr:      ev.ErrHBBP,
	}, nil
}

// Render prints the Test40 evaluation.
func (t *Table5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 5: Test40 evaluation\n")
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s\n", "", "Clean", "HBBP", "SDE")
	fmt.Fprintf(&sb, "%-14s %10.1f %10.1f %10.1f\n", "Runtime [s]",
		t.CleanSeconds, t.HBBPSeconds, t.SDESeconds)
	fmt.Fprintf(&sb, "%-14s %10s %9.1f%% %9.0f%%\n", "Time penalty", "N/A",
		t.HBBPPenalty*100, t.SDEPenalty*100)
	fmt.Fprintf(&sb, "%-14s %10s %9.2f%% %10s\n", "Avg W Error", "N/A",
		t.AvgWErr*100, "0%")
	return sb.String()
}

// ---------------------------------------------------------------- Table 6

// Table6Cell holds one Fitter variant's numbers (millions, except
// TimePerTrack in microseconds).
type Table6Cell struct {
	X87Inst      float64
	SSEInst      float64
	AVXInst      float64
	Calls        float64
	TimePerTrack float64 // microseconds
	AvgWErr      float64 // measured half only
}

// Table6Result reproduces Table 6: expected vs measured values per
// Fitter variant; "AVX" is the broken build, "AVX fix" the corrected
// one.
type Table6Result struct {
	Variants []workloads.FitterVariant
	Expected map[workloads.FitterVariant]Table6Cell
	Measured map[workloads.FitterVariant]Table6Cell
}

// Table6 profiles all four Fitter builds. Expected values come from the
// instrumentation reference, measured values from HBBP.
func (r *Runner) Table6() (*Table6Result, error) {
	res := &Table6Result{
		Variants: workloads.FitterVariants(),
		Expected: map[workloads.FitterVariant]Table6Cell{},
		Measured: map[workloads.FitterVariant]Table6Cell{},
	}
	names := make([]string, len(res.Variants))
	for i, v := range res.Variants {
		names[i] = v.WorkloadName()
	}
	evs, err := r.evalNamed(names)
	if err != nil {
		return nil, err
	}
	for i, v := range res.Variants {
		ev := evs[i]
		tracks := trackCount(ev)
		cyclesPerTrack := float64(ev.Profile.Collection.Stats.Cycles) / tracks
		usPerTrack := cyclesPerTrack * float64(ev.Scale) / tracks2us
		scale := float64(ev.Scale) / 1e6

		res.Expected[v] = fitterCell(ev.RefMix, scale, usPerTrack, 0)
		hbbpMix := analyzer.Mix(ev.Profile.Prog, ev.Profile.BBECs,
			analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true})
		res.Measured[v] = fitterCell(hbbpMix, scale, usPerTrack, ev.ErrHBBP)
	}
	return res, nil
}

// tracks2us converts scaled cycles per track into microseconds.
const tracks2us = ClockHz / 1e6

// trackCount recovers how many tracks the evaluated run fitted: the
// fit_track function's entry block executions.
func trackCount(ev *WorkloadEval) float64 {
	fit := ev.Profile.Prog.FuncByName("fit_track")
	n := ev.refBBECs[fit.Entry().ID]
	if n == 0 {
		return 1
	}
	return n
}

// fitterCell aggregates a mix into the Table 6 rows.
func fitterCell(mix metrics.Mix, scale, usPerTrack, avgW float64) Table6Cell {
	cell := Table6Cell{TimePerTrack: usPerTrack, AvgWErr: avgW}
	for op, n := range mix {
		info := op.Info()
		switch info.Ext {
		case isa.X87:
			cell.X87Inst += n * scale
		case isa.SSE:
			cell.SSEInst += n * scale
		case isa.AVX:
			cell.AVXInst += n * scale
		}
		if op == isa.CALL {
			cell.Calls += n * scale
		}
	}
	return cell
}

// Render prints the two-half table.
func (t *Table6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 6: expected vs measured values (millions) for the Fitter benchmark\n")
	fmt.Fprintf(&sb, "%-10s %-14s", "", "")
	for _, v := range t.Variants {
		fmt.Fprintf(&sb, " %10s", v)
	}
	sb.WriteByte('\n')
	half := func(label string, cells map[workloads.FitterVariant]Table6Cell) {
		rows := []struct {
			name string
			get  func(Table6Cell) float64
			fmtS string
		}{
			{"x87 inst", func(c Table6Cell) float64 { return c.X87Inst }, "%10.0f"},
			{"SSE inst", func(c Table6Cell) float64 { return c.SSEInst }, "%10.0f"},
			{"AVX inst", func(c Table6Cell) float64 { return c.AVXInst }, "%10.0f"},
			{"CALLs", func(c Table6Cell) float64 { return c.Calls }, "%10.0f"},
			{"Time/track", func(c Table6Cell) float64 { return c.TimePerTrack }, "%8.2fus"},
		}
		for i, row := range rows {
			lbl := ""
			if i == 0 {
				lbl = label
			}
			fmt.Fprintf(&sb, "%-10s %-14s", lbl, row.name)
			for _, v := range t.Variants {
				fmt.Fprintf(&sb, " "+row.fmtS, row.get(cells[v]))
			}
			sb.WriteByte('\n')
		}
	}
	half("Expected", t.Expected)
	half("Measured", t.Measured)
	fmt.Fprintf(&sb, "%-10s %-14s", "", "AvgW Err")
	for _, v := range t.Variants {
		fmt.Fprintf(&sb, " %9.2f%%", t.Measured[v].AvgWErr*100)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// ---------------------------------------------------------------- Table 7

// Table7Result reproduces Table 7: per-mnemonic instruction counts
// (millions) for the prime benchmark — SDE on the user copy, HBBP on
// both the user copy and the kernel module copy that SDE cannot see.
type Table7Result struct {
	Mnemonics []isa.Op
	// SDEUser, HBBPKernel and HBBPUser are counts in millions.
	SDEUser, HBBPKernel, HBBPUser    map[isa.Op]float64
	TotalSDE, TotalKernel, TotalUser float64
}

// Table7 runs the kernel-prime workload.
func (r *Runner) Table7() (*Table7Result, error) {
	ev, err := r.evalNamedOne("kernel-prime")
	if err != nil {
		return nil, err
	}
	prof := ev.Profile
	scale := float64(ev.Scale) / 1e6

	hbbpUser := scaleMix(analyzer.Mix(prof.Prog, prof.BBECs, analyzer.Options{
		Scope: analyzer.ScopeUser, LiveText: true, Function: "hello_u",
	}), scale)
	hbbpKernel := scaleMix(analyzer.Mix(prof.Prog, prof.BBECs, analyzer.Options{
		Scope: analyzer.ScopeKernel, LiveText: true, Function: "hello_k",
	}), scale)
	// The SDE column reports the hello_u function only, like the paper.
	sdeUserFn := scaleMix(analyzer.MixFromExact(prof.Prog, uintBBECs(ev), analyzer.Options{
		Scope: analyzer.ScopeUser, LiveText: true, Function: "hello_u",
	}), scale)

	res := &Table7Result{
		SDEUser:    sdeUserFn,
		HBBPKernel: hbbpKernel,
		HBBPUser:   hbbpUser,
	}
	res.Mnemonics = table7Mnemonics(sdeUserFn)
	for _, m := range res.Mnemonics {
		res.TotalSDE += sdeUserFn[m]
		res.TotalKernel += hbbpKernel[m]
		res.TotalUser += hbbpUser[m]
	}
	return res, nil
}

func uintBBECs(ev *WorkloadEval) []uint64 {
	out := make([]uint64, len(ev.refBBECs))
	for i, v := range ev.refBBECs {
		out[i] = uint64(v)
	}
	return out
}

func scaleMix(m metrics.Mix, scale float64) map[isa.Op]float64 {
	out := make(map[isa.Op]float64, len(m))
	for op, v := range m {
		out[op] = v * scale
	}
	return out
}

// table7Mnemonics returns the loop-body mnemonics sorted by name, the
// paper's row set.
func table7Mnemonics(mix map[isa.Op]float64) []isa.Op {
	var ops []isa.Op
	for op := range mix {
		switch op.Info().Cat {
		case isa.CatCall, isa.CatReturn, isa.CatStack:
			continue // scaffolding rows are not in the paper's table
		}
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	return ops
}

// Render prints the three-column comparison.
func (t *Table7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 7: instructions in the kernel sample (millions)\n")
	fmt.Fprintf(&sb, "%-10s %12s %14s %12s\n", "Function",
		"SDE hello_u", "HBBP hello.ko", "HBBP hello_u")
	for _, op := range t.Mnemonics {
		fmt.Fprintf(&sb, "%-10s %12.0f %14.0f %12.0f\n", op,
			t.SDEUser[op], t.HBBPKernel[op], t.HBBPUser[op])
	}
	fmt.Fprintf(&sb, "%-10s %12.0f %14.0f %12.0f\n", "Total",
		t.TotalSDE, t.TotalKernel, t.TotalUser)
	return sb.String()
}

// ---------------------------------------------------------------- Table 8

// Table8Row is one (instruction set, packing) bucket in billions.
type Table8Row struct {
	InstSet string
	Packing string
	Before  float64
	After   float64
}

// Table8Result reproduces Table 8: the HBBP packing view of CLForward
// before and after the vectorization fix.
type Table8Result struct {
	Rows        []Table8Row
	TotalBefore float64
	TotalAfter  float64
}

// table8Workloads is the CLForward build pair, declared once so the
// table builder and the experiment registry's plan cannot drift
// apart. Order matters: the renderer reads before-fix at index 0.
var table8Workloads = []string{"clforward-before", "clforward-after"}

// Table8 profiles both CLForward builds and renders the ext x packing
// pivot. The fixed build's invocation count is calibrated against the
// pre-fix build through the registry's memoized calibration, so the
// two builds evaluate concurrently without ordering concerns.
func (r *Runner) Table8() (*Table8Result, error) {
	evs, err := r.evalNamed(table8Workloads)
	if err != nil {
		return nil, err
	}
	views := map[bool]map[string]float64{}
	var totals [2]float64
	for idx, fixed := range []bool{false, true} {
		ev := evs[idx]
		tab := analyzer.BuildPivot(ev.Profile.Prog, ev.Profile.BBECs,
			analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true})
		view := map[string]float64{}
		scale := float64(ev.Scale) / 1e9 // paper reports billions
		for _, row := range analyzer.PackingView(tab) {
			view[row.Keys[0]+"/"+row.Keys[1]] = row.Value * scale
		}
		views[fixed] = view
		totals[idx] = tab.Total(nil) * scale
	}
	res := &Table8Result{TotalBefore: totals[0], TotalAfter: totals[1]}
	keys := map[string]bool{}
	for _, v := range views {
		for k := range v {
			keys[k] = true
		}
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		parts := strings.SplitN(k, "/", 2)
		res.Rows = append(res.Rows, Table8Row{
			InstSet: parts[0], Packing: parts[1],
			Before: views[false][k], After: views[true][k],
		})
	}
	return res, nil
}

// Render prints the before/after packing view.
func (t *Table8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 8: HBBP view of CLForward vectorization (billions of instructions)\n")
	fmt.Fprintf(&sb, "%-9s %-8s %8s %8s\n", "INST SET", "PACKING", "BEFORE", "AFTER")
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-9s %-8s %8.1f %8.1f\n", row.InstSet, row.Packing, row.Before, row.After)
	}
	fmt.Fprintf(&sb, "%-9s %-8s %8.1f %8.1f\n", "TOTAL", "", t.TotalBefore, t.TotalAfter)
	return sb.String()
}
