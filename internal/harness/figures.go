package harness

import (
	"fmt"
	"strings"

	"hbbp/internal/analyzer"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
)

// ---------------------------------------------------------------- Figure 1

// Figure1Result reproduces Figure 1: the decision tree learned from the
// HBBP training data, with Gini impurities and sample counts, plus the
// feature importances the paper quotes.
type Figure1Result struct {
	TreeText    string
	RootRule    string
	Cutoff      float64
	Importances map[string]float64
}

// Figure1 trains (or reuses) the model and renders the tree.
func (r *Runner) Figure1() (*Figure1Result, error) {
	model, err := r.Model()
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{
		TreeText:    model.Tree.Render(),
		RootRule:    model.Tree.RootRule(),
		Cutoff:      model.LenCutoff,
		Importances: map[string]float64{},
	}
	for i, imp := range model.Tree.FeatureImportances() {
		res.Importances[model.Tree.FeatureNames[i]] = imp
	}
	return res, nil
}

// Render prints the tree and importances.
func (f *Figure1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: decision tree learned from HBBP training data\n")
	sb.WriteString(f.TreeText)
	fmt.Fprintf(&sb, "root rule: %s\n", f.RootRule)
	fmt.Fprintf(&sb, "length cutoff: %.1f (paper: ~18)\n", f.Cutoff)
	sb.WriteString("feature importances:\n")
	for _, name := range []string{"block_len", "bias", "log_exec", "long_latency", "mem_frac"} {
		fmt.Fprintf(&sb, "  %-14s %.3f\n", name, f.Importances[name])
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 2

// Figure2Result reproduces Figure 2: per-SPEC-benchmark SDE and HBBP
// overheads plus average weighted errors for HBBP, LBR and EBS, and the
// suite-level aggregates quoted in Section VIII.A.
type Figure2Result struct {
	Rows []*WorkloadEval
	// Overall averages exclude SDE-bug workloads, like the paper
	// excludes x264ref.
	MeanHBBP, MeanLBR, MeanEBS float64
	// Excluded lists the SDE-bug benchmarks left out of the averages.
	Excluded []string
}

// Figure2 evaluates the full suite.
func (r *Runner) Figure2() (*Figure2Result, error) {
	suite, err := r.SuiteEvals()
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Rows: suite}
	var n float64
	for _, ev := range suite {
		if ev.SDEBug {
			res.Excluded = append(res.Excluded, ev.Name)
			continue
		}
		res.MeanHBBP += ev.ErrHBBP
		res.MeanLBR += ev.ErrLBR
		res.MeanEBS += ev.ErrEBS
		n++
	}
	if n > 0 {
		res.MeanHBBP /= n
		res.MeanLBR /= n
		res.MeanEBS /= n
	}
	return res, nil
}

// Render prints the per-benchmark rows and aggregates.
func (f *Figure2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: SDE vs HBBP overhead and avg weighted errors on SPEC2006\n")
	fmt.Fprintf(&sb, "%-12s %8s %9s %8s %8s %8s  %s\n",
		"benchmark", "SDE", "HBBP ovh", "errHBBP", "errLBR", "errEBS", "note")
	for _, ev := range f.Rows {
		note := ""
		if ev.SDEBug {
			note = "excluded (SDE miscounts; PMU counting verification)"
		}
		fmt.Fprintf(&sb, "%-12s %7.2fx %8.3f%% %7.2f%% %7.2f%% %7.2f%%  %s\n",
			ev.Name, ev.SDEFactor, ev.HBBPOverhead*100,
			ev.ErrHBBP*100, ev.ErrLBR*100, ev.ErrEBS*100, note)
	}
	fmt.Fprintf(&sb, "%-12s %8s %9s %7.2f%% %7.2f%% %7.2f%%  (paper: 1.83%% / 3.15%% / 4.43%%)\n",
		"OVERALL", "", "", f.MeanHBBP*100, f.MeanLBR*100, f.MeanEBS*100)
	return sb.String()
}

// ---------------------------------------------------------------- Figure 3

// Figure3Row is one mnemonic's execution count and HBBP error.
type Figure3Row struct {
	Mnemonic isa.Op
	Count    float64 // reference executions (paper-scale)
	HBBPErr  float64
}

// Figure3Result reproduces Figure 3: Test40's top-20 instruction
// retiring mnemonics with HBBP's per-mnemonic errors.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3 profiles Test40 and extracts the top-20 view.
func (r *Runner) Figure3() (*Figure3Result, error) {
	rows, err := r.test40PerMnemonic()
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	for _, row := range rows {
		res.Rows = append(res.Rows, Figure3Row{
			Mnemonic: row.Mnemonic, Count: row.Count, HBBPErr: row.HBBP,
		})
	}
	return res, nil
}

// Render prints counts (bars in the paper) and error dots.
func (f *Figure3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: Test40 top-20 mnemonics: counts and HBBP error\n")
	fmt.Fprintf(&sb, "%-12s %14s %9s\n", "mnemonic", "count", "err")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-12s %14.0f %8.2f%%\n", row.Mnemonic, row.Count, row.HBBPErr*100)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 4

// Figure4Row is one mnemonic's error under each method.
type Figure4Row struct {
	Mnemonic       isa.Op
	Count          float64
	HBBP, LBR, EBS float64
}

// Figure4Result reproduces Figure 4: Test40 per-mnemonic errors for
// HBBP, LBR and EBS on the top-20 mnemonics.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4 profiles Test40 and compares all three methods per mnemonic.
func (r *Runner) Figure4() (*Figure4Result, error) {
	rows, err := r.test40PerMnemonic()
	if err != nil {
		return nil, err
	}
	return &Figure4Result{Rows: rows}, nil
}

// Render prints the three error series.
func (f *Figure4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: Test40 per-mnemonic error: HBBP vs LBR vs EBS (top 20)\n")
	fmt.Fprintf(&sb, "%-12s %9s %9s %9s\n", "mnemonic", "HBBP", "LBR", "EBS")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-12s %8.2f%% %8.2f%% %8.2f%%\n",
			row.Mnemonic, row.HBBP*100, row.LBR*100, row.EBS*100)
	}
	return sb.String()
}

// test40PerMnemonic computes the shared Figure 3/4 data: top-20
// mnemonics by reference count with per-method errors.
func (r *Runner) test40PerMnemonic() ([]Figure4Row, error) {
	ev, err := r.evalNamedOne("test40")
	if err != nil {
		return nil, err
	}
	prof := ev.Profile
	opts := analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true}
	hbbpMix := analyzer.Mix(prof.Prog, prof.BBECs, opts)
	lbrMix := analyzer.Mix(prof.Prog, prof.LBR, opts)
	ebsMix := analyzer.Mix(prof.Prog, prof.EBS, opts)

	var rows []Figure4Row
	for _, op := range ev.RefMix.TopN(20) {
		ref := ev.RefMix[op]
		rows = append(rows, Figure4Row{
			Mnemonic: op,
			Count:    ref * float64(ev.Scale),
			HBBP:     metrics.Error(ref, hbbpMix[op]),
			LBR:      metrics.Error(ref, lbrMix[op]),
			EBS:      metrics.Error(ref, ebsMix[op]),
		})
	}
	return rows, nil
}
