package harness

import "testing"

// benchModel measures the Figure 1 training pipeline — the corpus
// collection runs — at a given pool width. The sequential/parallel
// pair documents the scheduler's speedup on identical work.
func benchModel(b *testing.B, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := New(Config{Fast: true, FastFactor: 0.1, Seed: 1, Parallelism: parallelism})
		if _, err := r.Model(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSequential trains with a single worker.
func BenchmarkModelSequential(b *testing.B) { benchModel(b, 1) }

// BenchmarkModelParallel trains on the full worker pool.
func BenchmarkModelParallel(b *testing.B) { benchModel(b, 0) }

// benchSuite measures the full SPEC-like suite evaluation (29
// workloads, each an independent collection run).
func benchSuite(b *testing.B, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := New(Config{Fast: true, FastFactor: 0.1, Seed: 1, Parallelism: parallelism})
		if _, err := r.SuiteEvals(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteEvalsSequential evaluates the suite one workload at a
// time — the pre-refactor schedule.
func BenchmarkSuiteEvalsSequential(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteEvalsParallel evaluates the suite on the worker pool.
func BenchmarkSuiteEvalsParallel(b *testing.B) { benchSuite(b, 0) }
