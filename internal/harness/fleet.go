package harness

import (
	"fmt"
	"strings"

	"hbbp/internal/core"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/profstore"
)

// ---------------------------------------------------------------- Fleet

// The fleet experiment closes the loop between the paper's pitch —
// profiling cheap enough to leave on everywhere — and what a fleet
// actually consumes: one merged profile-store view over many
// concurrent runs. Every SPEC stand-in's evaluation run is captured
// into the store's integer form and merged; the merged fleet mix is
// then scored against the union of the per-run instrumentation
// references with the same average-weighted-error metric used
// throughout the evaluation. The experiment answers the question the
// per-workload tables cannot: does per-block quantization plus
// cross-workload merging preserve HBBP's accuracy at fleet scale?

// FleetRow is one workload's contribution to the merged fleet view.
type FleetRow struct {
	Name string
	// Mass is the workload's retired-instruction mass in the merged
	// profile (quantized HBBP counts).
	Mass uint64
	// Share is Mass over the fleet total.
	Share float64
	// SDEBug marks workloads excluded from the error union (the
	// reference tool miscounts them).
	SDEBug bool
}

// FleetResult is the merged-fleet experiment outcome.
type FleetResult struct {
	// Merged is the fleet profile: every suite evaluation run captured
	// into the profile store and merged.
	Merged *profstore.Profile
	// Rows lists per-workload contributions in suite order.
	Rows []FleetRow
	// ErrHBBP, ErrEBS and ErrLBR are average weighted errors of the
	// merged user-mode fleet mix built from each estimator's captured
	// counts, against the union of the instrumentation references
	// (SDE-bug workloads excluded from both sides).
	ErrHBBP, ErrEBS, ErrLBR float64
	// Excluded lists the SDE-bug benchmarks left out of the error
	// union.
	Excluded []string
}

// Fleet captures the suite's evaluation runs into the profile store,
// merges them, and scores the merged mix against the ground-truth
// union. It shares the suite evaluations (and thus the trained model)
// with the other experiments.
func (r *Runner) Fleet() (*FleetResult, error) {
	suite, err := r.SuiteEvals()
	if err != nil {
		return nil, err
	}
	res := &FleetResult{}
	var all, hybrid, ebs, lbr []*profstore.Profile
	unionRef := make(metrics.Mix)
	for _, ev := range suite {
		sp := core.Capture(ev.Profile, ev.Name)
		all = append(all, sp)
		res.Rows = append(res.Rows, FleetRow{
			Name:   ev.Name,
			Mass:   sp.TotalMass(),
			SDEBug: ev.SDEBug,
		})
		if ev.SDEBug {
			res.Excluded = append(res.Excluded, ev.Name)
			continue
		}
		// The error union compares like with like: per-estimator
		// captures on one side, summed references on the other, both
		// restricted to the non-SDE-bug workloads and user mode.
		hybrid = append(hybrid, sp)
		ebs = append(ebs, core.CaptureCounts(ev.Profile.Prog, ev.Profile.EBS, ev.Name))
		lbr = append(lbr, core.CaptureCounts(ev.Profile.Prog, ev.Profile.LBR, ev.Name))
		for op, v := range ev.RefMix {
			unionRef[op] += v
		}
	}
	res.Merged = profstore.Merge(all...)
	total := res.Merged.TotalMass()
	for i := range res.Rows {
		if total > 0 {
			res.Rows[i].Share = float64(res.Rows[i].Mass) / float64(total)
		}
	}
	res.ErrHBBP = metrics.AvgWeightedError(unionRef, storedUserMix(profstore.Merge(hybrid...)))
	res.ErrEBS = metrics.AvgWeightedError(unionRef, storedUserMix(profstore.Merge(ebs...)))
	res.ErrLBR = metrics.AvgWeightedError(unionRef, storedUserMix(profstore.Merge(lbr...)))
	return res, nil
}

// storedUserMix converts a merged profile's user-mode op mass back
// into a metrics mix for scoring.
func storedUserMix(sp *profstore.Profile) metrics.Mix {
	mix := make(metrics.Mix)
	for _, o := range sp.Ops {
		if o.Ring != profstore.RingUser {
			continue
		}
		op, err := isa.Parse(o.Mnemonic)
		if err != nil {
			continue
		}
		mix[op] += float64(o.Mass)
	}
	return mix
}

// Render prints the fleet table: per-workload mass shares, the merged
// totals, and the merged-mix accuracy line.
func (f *FleetResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet: merged profile store over %d concurrent workloads (%d runs, %.3gG retired insts)\n",
		len(f.Rows), f.Merged.TotalRuns(), float64(f.Merged.TotalMass())/1e9)
	nameW := len("WORKLOAD")
	for _, row := range f.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %12s  %7s\n", nameW, "WORKLOAD", "MASS", "SHARE")
	for _, row := range f.Rows {
		note := ""
		if row.SDEBug {
			note = "  (excluded from error union)"
		}
		fmt.Fprintf(&sb, "%-*s  %12d  %6.2f%%%s\n", nameW, row.Name, row.Mass, row.Share*100, note)
	}
	fmt.Fprintf(&sb, "merged user-mode mix vs instrumentation union (avg weighted error): HBBP %.2f%%, EBS %.2f%%, LBR %.2f%%\n",
		f.ErrHBBP*100, f.ErrEBS*100, f.ErrLBR*100)
	top := f.Merged.TopOps(8)
	if len(top) > 0 {
		names := make([]string, len(top))
		for i, o := range top {
			names[i] = o.Mnemonic
		}
		fmt.Fprintf(&sb, "hottest merged mnemonics: %s\n", strings.Join(names, ", "))
	}
	return sb.String()
}
