// Package harness regenerates every table and figure of the paper's
// evaluation (Section VIII). Each experiment has a structured result
// type (so tests and benchmarks can assert on shapes) and a renderer
// that prints rows mirroring the paper's layout.
//
// Absolute values differ from the paper — the substrate is a simulator,
// not the authors' Ivy Bridge testbed — but the shapes the paper argues
// from are reproduced: instrumentation costs multiples while HBBP costs
// percents; EBS degrades on short-block code and LBR on biased/long
// blocks; the hybrid tracks the better of the two everywhere.
package harness

import (
	"fmt"
	"io"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/metrics"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// ClockHz converts simulated cycles to wall-clock seconds. The value
// models the paper's fixed-frequency Xeon E5-2695 v2 with an effective
// superscalar throughput folded in.
const ClockHz = 6.0e9

// Config parameterises a Runner.
type Config struct {
	// Out receives rendered experiment output. Nil discards it.
	Out io.Writer
	// Fast scales workload repeats down (by FastFactor) for quick test
	// and benchmark runs. Sampling statistics shrink accordingly.
	Fast bool
	// FastFactor is the repeat multiplier used when Fast is set.
	// Zero means 0.25.
	FastFactor float64
	// Seed is the base seed for all runs.
	Seed int64
}

// Runner executes experiments, caching the trained model and per-suite
// evaluations across tables that share them.
type Runner struct {
	cfg   Config
	out   io.Writer
	model *core.Model
	suite []*WorkloadEval
}

// New returns a Runner.
func New(cfg Config) *Runner {
	if cfg.FastFactor == 0 {
		cfg.FastFactor = 0.25
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	return &Runner{cfg: cfg, out: out}
}

func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

// scaled applies the fast factor.
func (r *Runner) scaled(w *workloads.Workload) *workloads.Workload {
	if r.cfg.Fast {
		return w.Scaled(r.cfg.FastFactor)
	}
	return w
}

// Model returns the HBBP model used across experiments, training it on
// the corpus on first use (the Figure 1 pipeline).
func (r *Runner) Model() (*core.Model, error) {
	if r.model != nil {
		return r.model, nil
	}
	var runs []*core.TrainingRun
	for i, w := range workloads.TrainingCorpus() {
		w = r.scaled(w)
		run, err := core.CollectTrainingRun(w.Prog, w.Entry, collector.Options{
			// Training samples at the same class-based periods used in
			// production, so the learned rule internalises the sampling
			// noise the estimators actually carry at analysis time.
			Class: w.Class,
			Scale: w.Scale, Seed: r.cfg.Seed + int64(100+i),
			Repeat: w.Repeat,
		})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	model, err := core.Train(runs, core.TrainParams{})
	if err != nil {
		return nil, err
	}
	r.model = model
	return model, nil
}

// WorkloadEval is one workload's full evaluation: runtime model plus
// accuracy of every method, scored per Section VI.
type WorkloadEval struct {
	Name string
	// CleanSeconds is the modelled uninstrumented runtime.
	CleanSeconds float64
	// SDESeconds is the modelled runtime under software
	// instrumentation; SDEFactor = SDESeconds / CleanSeconds.
	SDESeconds float64
	SDEFactor  float64
	// HBBPSeconds and HBBPOverhead model the collection cost.
	HBBPSeconds  float64
	HBBPOverhead float64 // fraction, e.g. 0.005 = 0.5%
	// ErrHBBP, ErrEBS and ErrLBR are average weighted errors against
	// the instrumentation reference (user-mode mixes).
	ErrHBBP, ErrEBS, ErrLBR float64
	// SDEBug marks workloads excluded from error aggregation because
	// the reference tool is known to miscount them.
	SDEBug bool
	// Profile carries the HBBP run for further inspection.
	Profile *core.Profile
	// RefMix is the reference (instrumentation) user-mode mix.
	RefMix metrics.Mix

	// refBBECs holds the reference per-block counts (user mode only,
	// like the real SDE) for block-level tables.
	refBBECs []float64
}

// evalWorkload runs one workload once with both the PMU collection and
// the instrumentation reference attached and scores every method.
func (r *Runner) evalWorkload(w *workloads.Workload) (*WorkloadEval, error) {
	model, err := r.Model()
	if err != nil {
		return nil, err
	}
	w = r.scaled(w)
	ref := sde.New(w.Prog)
	prof, err := core.Run(w.Prog, w.Entry, model, core.Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: r.cfg.Seed + 7,
			Repeat: w.Repeat,
		},
		KernelLivePatched: true,
	}, ref)
	if err != nil {
		return nil, err
	}

	stats := prof.Collection.Stats
	clean := float64(stats.Cycles) * float64(w.Scale) / ClockHz
	sdeFactor := ref.SlowdownFactor(stats.Cycles)
	overhead := prof.Collection.OverheadFactor() - 1

	// Accuracy is scored on user-mode mixes, like the paper's
	// comparisons ("except in Section VIII.D, our accuracy comparisons
	// consider only user mode instructions").
	refMix := analyzer.ToMix(ref.Mnemonics())
	opts := analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true}
	ev := &WorkloadEval{
		Name:         w.Name,
		CleanSeconds: clean,
		SDESeconds:   clean * sdeFactor,
		SDEFactor:    sdeFactor,
		HBBPSeconds:  clean * (1 + overhead),
		HBBPOverhead: overhead,
		ErrHBBP:      metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.BBECs, opts)),
		ErrEBS:       metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.EBS, opts)),
		ErrLBR:       metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.LBR, opts)),
		SDEBug:       w.SDEBug,
		Profile:      prof,
		RefMix:       refMix,
	}
	ev.refBBECs = make([]float64, w.Prog.NumBlocks())
	for id := range ev.refBBECs {
		ev.refBBECs[id] = float64(ref.BlockExec(id))
	}
	return ev, nil
}

// SuiteEvals evaluates the full SPEC-like suite once, caching results.
func (r *Runner) SuiteEvals() ([]*WorkloadEval, error) {
	if r.suite != nil {
		return r.suite, nil
	}
	for _, w := range workloads.SPECSuite() {
		ev, err := r.evalWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("harness: evaluating %s: %w", w.Name, err)
		}
		r.suite = append(r.suite, ev)
	}
	return r.suite, nil
}

// ExperimentNames lists every regenerable experiment in paper order.
func ExperimentNames() []string {
	return []string{
		"table1", "table2", "table3", "table4",
		"table5", "table6", "table7", "table8",
		"figure1", "figure2", "figure3", "figure4",
	}
}

// Run executes one experiment by name and renders it to the
// configured output.
func (r *Runner) Run(name string) error {
	switch name {
	case "table1":
		res, err := r.Table1()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table2":
		r.printf("%s", Table2().Render())
	case "table3":
		res, err := r.Table3()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table4":
		r.printf("%s", Table4().Render())
	case "table5":
		res, err := r.Table5()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table6":
		res, err := r.Table6()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table7":
		res, err := r.Table7()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table8":
		res, err := r.Table8()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure1":
		res, err := r.Figure1()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure2":
		res, err := r.Figure2()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure3":
		res, err := r.Figure3()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure4":
		res, err := r.Figure4()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	default:
		return fmt.Errorf("harness: unknown experiment %q (known: %v)", name, ExperimentNames())
	}
	return nil
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() error {
	for _, name := range ExperimentNames() {
		if err := r.Run(name); err != nil {
			return fmt.Errorf("harness: %s: %w", name, err)
		}
		r.printf("\n")
	}
	return nil
}
