// Package harness regenerates every table and figure of the paper's
// evaluation (Section VIII). Each experiment has a structured result
// type (so tests and benchmarks can assert on shapes) and a renderer
// that prints rows mirroring the paper's layout.
//
// Absolute values differ from the paper — the substrate is a simulator,
// not the authors' Ivy Bridge testbed — but the shapes the paper argues
// from are reproduced: instrumentation costs multiples while HBBP costs
// percents; EBS degrades on short-block code and LBR on biased/long
// blocks; the hybrid tracks the better of the two everywhere.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/metrics"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// ClockHz converts simulated cycles to wall-clock seconds. The value
// models the paper's fixed-frequency Xeon E5-2695 v2 with an effective
// superscalar throughput folded in.
const ClockHz = 6.0e9

// Config parameterises a Runner.
type Config struct {
	// Out receives rendered experiment output. Nil discards it.
	Out io.Writer
	// Fast scales workload repeats down (by FastFactor) for quick test
	// and benchmark runs. Sampling statistics shrink accordingly.
	Fast bool
	// FastFactor is the repeat multiplier used when Fast is set.
	// Zero means 0.25.
	FastFactor float64
	// Seed is the base seed for all runs.
	Seed int64
	// Parallelism bounds the worker pool evaluating independent runs
	// (training corpus, suite workloads, per-table workload sets).
	// Zero means GOMAXPROCS; 1 restores strictly sequential execution.
	// Every run carries its own derived seed and results are assembled
	// in workload order, so the outputs are identical at any setting.
	Parallelism int
	// PerInstruction runs every collection on the CPU's per-instruction
	// reference dispatch instead of the block-granularity fast path.
	// Outputs are identical either way; the model/table parity tests
	// flip this flag to prove it.
	PerInstruction bool
	// Ctx, when non-nil, cancels experiments in flight: the worker pool
	// stops dispatching new runs and every running collection aborts at
	// its next context poll, so a Runner method returns promptly with
	// an error wrapping ctx.Err(). Results produced before
	// cancellation are discarded; a run that completes under a context
	// is bit-identical to one without.
	Ctx context.Context
	// Model, when non-nil, is used as the HBBP model instead of
	// training one on the corpus — the cache-sharing hook for callers
	// that construct a Runner per invocation. Outputs are identical to
	// a training Runner only if the model is one such a Runner (same
	// Seed, Fast settings and dispatch path) produced; see
	// TrainedModel.
	Model *core.Model
	// Suite, when non-nil, is used as the SPEC-suite evaluation set
	// instead of running the suite — the same cache-sharing hook for
	// the other expensive shared computation; see EvaluatedSuite.
	Suite []*WorkloadEval
}

// Runner executes experiments, caching the trained model and per-suite
// evaluations across tables that share them. A Runner is safe for the
// concurrent use its own worker pool makes of it.
type Runner struct {
	cfg Config
	out io.Writer

	modelOnce  sync.Once
	model      *core.Model
	modelErr   error
	modelReady atomic.Bool

	suiteOnce  sync.Once
	suite      []*WorkloadEval
	suiteErr   error
	suiteReady atomic.Bool
}

// New returns a Runner.
func New(cfg Config) *Runner {
	if cfg.FastFactor == 0 {
		cfg.FastFactor = 0.25
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	return &Runner{cfg: cfg, out: out}
}

func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

// scaled applies the fast factor.
func (r *Runner) scaled(w *workloads.Workload) *workloads.Workload {
	if r.cfg.Fast {
		return w.Scaled(r.cfg.FastFactor)
	}
	return w
}

// workload compiles one registry workload with the fast factor
// applied. Construction is concurrency-safe (the registry memoizes
// calibration behind per-entry synchronization), so workers call this
// from inside the pool.
func (r *Runner) workload(name string) (*workloads.Workload, error) {
	w, err := workloads.Default().Build(name)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return r.scaled(w), nil
}

// workers resolves the configured pool width for n independent items.
func (r *Runner) workers(n int) int {
	w := r.cfg.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ctxErr reports the configured context's cancellation error, wrapped
// for attribution; nil when no context is set or it is still live.
func (r *Runner) ctxErr() error {
	if r.cfg.Ctx == nil {
		return nil
	}
	if err := r.cfg.Ctx.Err(); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return nil
}

// forEach runs fn(i) for every i in [0, n) on a bounded worker pool
// and returns the lowest-index error. Callers communicate results by
// writing to per-index slots, so assembly order — and therefore every
// rendered table — is independent of scheduling. A cancelled
// Config.Ctx stops the dispatch of further items; items already
// running abort at their own context polls inside the collection.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := r.workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := r.ctxErr(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := r.ctxErr(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Model returns the HBBP model used across experiments, training it on
// the corpus on first use (the Figure 1 pipeline). The corpus runs are
// collected concurrently — each carries its own derived seed, so the
// dataset and the learned tree are identical to a sequential pass.
func (r *Runner) Model() (*core.Model, error) {
	r.modelOnce.Do(func() {
		defer func() {
			if r.modelErr == nil {
				r.modelReady.Store(true)
			}
		}()
		if r.cfg.Model != nil {
			r.model = r.cfg.Model
			return
		}
		names := workloads.TrainingNames()
		runs := make([]*core.TrainingRun, len(names))
		err := r.forEach(len(names), func(i int) error {
			w, err := r.workload(names[i])
			if err != nil {
				return err
			}
			run, err := core.CollectTrainingRun(w.Prog, w.Entry, collector.Options{
				// Training samples at the same class-based periods used in
				// production, so the learned rule internalises the sampling
				// noise the estimators actually carry at analysis time.
				Class: w.Class,
				Scale: w.Scale, Seed: r.cfg.Seed + int64(100+i),
				Repeat:         w.Repeat,
				PerInstruction: r.cfg.PerInstruction,
				Context:        r.cfg.Ctx,
			})
			if err != nil {
				return err
			}
			runs[i] = run
			return nil
		})
		if err != nil {
			r.modelErr = err
			return
		}
		r.model, r.modelErr = core.Train(runs, core.TrainParams{})
	})
	return r.model, r.modelErr
}

// TrainedModel returns the resolved model without forcing training:
// ok is false until an experiment has needed the model and obtained it
// successfully. Callers constructing one Runner per invocation harvest
// the model here and feed it back through Config.Model so later
// invocations skip the corpus collection.
func (r *Runner) TrainedModel() (m *core.Model, ok bool) {
	if !r.modelReady.Load() {
		return nil, false
	}
	return r.model, true
}

// WorkloadEval is one workload's full evaluation: runtime model plus
// accuracy of every method, scored per Section VI.
type WorkloadEval struct {
	Name string
	// Scale is the evaluated workload's retirement scaling, carried so
	// the table renderers need not rebuild the workload.
	Scale uint64
	// CleanSeconds is the modelled uninstrumented runtime.
	CleanSeconds float64
	// SDESeconds is the modelled runtime under software
	// instrumentation; SDEFactor = SDESeconds / CleanSeconds.
	SDESeconds float64
	SDEFactor  float64
	// HBBPSeconds and HBBPOverhead model the collection cost.
	HBBPSeconds  float64
	HBBPOverhead float64 // fraction, e.g. 0.005 = 0.5%
	// ErrHBBP, ErrEBS and ErrLBR are average weighted errors against
	// the instrumentation reference (user-mode mixes).
	ErrHBBP, ErrEBS, ErrLBR float64
	// SDEBug marks workloads excluded from error aggregation because
	// the reference tool is known to miscount them.
	SDEBug bool
	// Profile carries the HBBP run for further inspection.
	Profile *core.Profile
	// RefMix is the reference (instrumentation) user-mode mix.
	RefMix metrics.Mix

	// refBBECs holds the reference per-block counts (user mode only,
	// like the real SDE) for block-level tables.
	refBBECs []float64
}

// evalWorkload runs one already-scaled workload once with both the PMU
// collection and the instrumentation reference attached and scores
// every method.
func (r *Runner) evalWorkload(w *workloads.Workload) (*WorkloadEval, error) {
	model, err := r.Model()
	if err != nil {
		return nil, err
	}
	ref := sde.New(w.Prog)
	prof, err := core.Run(w.Prog, w.Entry, model, core.Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: r.cfg.Seed + 7,
			Repeat:         w.Repeat,
			PerInstruction: r.cfg.PerInstruction,
			Context:        r.cfg.Ctx,
		},
		KernelLivePatched: true,
	}, ref)
	if err != nil {
		return nil, err
	}

	stats := prof.Collection.Stats
	clean := float64(stats.Cycles) * float64(w.Scale) / ClockHz
	sdeFactor := ref.SlowdownFactor(stats.Cycles)
	overhead := prof.Collection.OverheadFactor() - 1

	// Accuracy is scored on user-mode mixes, like the paper's
	// comparisons ("except in Section VIII.D, our accuracy comparisons
	// consider only user mode instructions").
	refMix := analyzer.ToMix(ref.Mnemonics())
	opts := analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true}
	ev := &WorkloadEval{
		Name:         w.Name,
		Scale:        w.Scale,
		CleanSeconds: clean,
		SDESeconds:   clean * sdeFactor,
		SDEFactor:    sdeFactor,
		HBBPSeconds:  clean * (1 + overhead),
		HBBPOverhead: overhead,
		ErrHBBP:      metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.BBECs, opts)),
		ErrEBS:       metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.EBS, opts)),
		ErrLBR:       metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.LBR, opts)),
		SDEBug:       w.SDEBug,
		Profile:      prof,
		RefMix:       refMix,
	}
	ev.refBBECs = make([]float64, w.Prog.NumBlocks())
	for id := range ev.refBBECs {
		ev.refBBECs[id] = float64(ref.BlockExec(id))
	}
	return ev, nil
}

// evalNamed evaluates registry workloads by name on the worker pool,
// returning results in input order. Construction happens inside each
// worker — the registry's synchronized calibration removed the old
// restriction that kept construction sequential in the caller — and
// every run still carries the same derived seed, so results are
// bit-identical at any parallelism.
func (r *Runner) evalNamed(names []string) ([]*WorkloadEval, error) {
	// Resolve the shared model before fanning out so every worker hits
	// the cache instead of contending on the lazy training pass.
	if _, err := r.Model(); err != nil {
		return nil, err
	}
	evs := make([]*WorkloadEval, len(names))
	err := r.forEach(len(names), func(i int) error {
		w, err := r.workload(names[i])
		if err != nil {
			return err
		}
		ev, err := r.evalWorkload(w)
		if err != nil {
			return fmt.Errorf("harness: evaluating %s: %w", names[i], err)
		}
		evs[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evs, nil
}

// evalNamedOne evaluates a single registry workload.
func (r *Runner) evalNamedOne(name string) (*WorkloadEval, error) {
	w, err := r.workload(name)
	if err != nil {
		return nil, err
	}
	ev, err := r.evalWorkload(w)
	if err != nil {
		return nil, fmt.Errorf("harness: evaluating %s: %w", name, err)
	}
	return ev, nil
}

// SuiteEvals evaluates the full SPEC-like suite once, caching results.
// The per-workload runs execute concurrently; the cached slice is in
// suite order regardless of scheduling.
func (r *Runner) SuiteEvals() ([]*WorkloadEval, error) {
	r.suiteOnce.Do(func() {
		if r.cfg.Suite != nil {
			r.suite = r.cfg.Suite
			r.suiteReady.Store(true)
			return
		}
		r.suite, r.suiteErr = r.evalNamed(workloads.SPECNames())
		if r.suiteErr == nil {
			r.suiteReady.Store(true)
		}
	})
	return r.suite, r.suiteErr
}

// EvaluatedSuite returns the suite evaluations without forcing the
// runs: ok is false until an experiment has needed the suite and
// obtained it successfully. The per-invocation-Runner counterpart of
// TrainedModel.
func (r *Runner) EvaluatedSuite() (evals []*WorkloadEval, ok bool) {
	if !r.suiteReady.Load() {
		return nil, false
	}
	return r.suite, true
}

// ExperimentNames lists every regenerable experiment: the paper's
// tables and figures in paper order, then the reproduction's own
// fleet-scale experiment.
func ExperimentNames() []string {
	return []string{
		"table1", "table2", "table3", "table4",
		"table5", "table6", "table7", "table8",
		"figure1", "figure2", "figure3", "figure4",
		"fleet",
	}
}

// Run executes one experiment by name and renders it to the
// configured output.
func (r *Runner) Run(name string) error {
	if err := r.ctxErr(); err != nil {
		return err
	}
	switch name {
	case "table1":
		res, err := r.Table1()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table2":
		r.printf("%s", Table2().Render())
	case "table3":
		res, err := r.Table3()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table4":
		r.printf("%s", Table4().Render())
	case "table5":
		res, err := r.Table5()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table6":
		res, err := r.Table6()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table7":
		res, err := r.Table7()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "table8":
		res, err := r.Table8()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure1":
		res, err := r.Figure1()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure2":
		res, err := r.Figure2()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure3":
		res, err := r.Figure3()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "figure4":
		res, err := r.Figure4()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	case "fleet":
		res, err := r.Fleet()
		if err != nil {
			return err
		}
		r.printf("%s", res.Render())
	default:
		return fmt.Errorf("harness: unknown experiment %q (known: %v)", name, ExperimentNames())
	}
	return nil
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() error {
	for _, name := range ExperimentNames() {
		if err := r.Run(name); err != nil {
			return fmt.Errorf("harness: %s: %w", name, err)
		}
		r.printf("\n")
	}
	return nil
}
