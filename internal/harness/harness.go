// Package harness regenerates every table and figure of the paper's
// evaluation (Section VIII). Each experiment has a structured result
// type (so tests and benchmarks can assert on shapes) and a renderer
// that prints rows mirroring the paper's layout.
//
// Absolute values differ from the paper — the substrate is a simulator,
// not the authors' Ivy Bridge testbed — but the shapes the paper argues
// from are reproduced: instrumentation costs multiples while HBBP costs
// percents; EBS degrades on short-block code and LBR on biased/long
// blocks; the hybrid tracks the better of the two everywhere.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/metrics"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// ClockHz converts simulated cycles to wall-clock seconds. The value
// models the paper's fixed-frequency Xeon E5-2695 v2 with an effective
// superscalar throughput folded in.
const ClockHz = 6.0e9

// Config parameterises a Runner.
type Config struct {
	// Out receives rendered experiment output. Nil discards it.
	Out io.Writer
	// Fast scales workload repeats down (by FastFactor) for quick test
	// and benchmark runs. Sampling statistics shrink accordingly.
	Fast bool
	// FastFactor is the repeat multiplier used when Fast is set.
	// Zero means 0.25.
	FastFactor float64
	// Seed is the base seed for all runs.
	Seed int64
	// Parallelism bounds the worker pool evaluating independent runs
	// (training corpus, suite workloads, per-table workload sets).
	// Zero means GOMAXPROCS; 1 restores strictly sequential execution.
	// Every run carries its own derived seed and results are assembled
	// in workload order, so the outputs are identical at any setting.
	Parallelism int
	// PerInstruction runs every collection on the CPU's per-instruction
	// reference dispatch instead of the block-granularity fast path.
	// Outputs are identical either way; the model/table parity tests
	// flip this flag to prove it.
	PerInstruction bool
	// Ctx, when non-nil, cancels experiments in flight: the worker pool
	// stops dispatching new runs and every running collection aborts at
	// its next context poll, so a Runner method returns promptly with
	// an error wrapping ctx.Err(). Results produced before
	// cancellation are discarded; a run that completes under a context
	// is bit-identical to one without.
	Ctx context.Context
	// Model, when non-nil, is used as the HBBP model instead of
	// training one on the corpus — the cache-sharing hook for callers
	// that construct a Runner per invocation. Outputs are identical to
	// a training Runner only if the model is one such a Runner (same
	// Seed, Fast settings and dispatch path) produced; see
	// TrainedModel.
	Model *core.Model
	// Suite, when non-nil, is used as the SPEC-suite evaluation set
	// instead of running the suite — the same cache-sharing hook for
	// the other expensive shared computation; see EvaluatedSuite.
	Suite []*WorkloadEval
}

// Runner executes experiments through a keyed run cache: the trained
// model, the suite evaluations and every named workload evaluation are
// collected at most once per Runner and shared by all experiments that
// request them. A Runner is safe for the concurrent use its own worker
// pool makes of it.
type Runner struct {
	cfg Config
	out io.Writer

	modelOnce  sync.Once
	model      *core.Model
	modelErr   error
	modelReady atomic.Bool

	suiteOnce  sync.Once
	suite      []*WorkloadEval
	suiteErr   error
	suiteReady atomic.Bool

	// evals is the keyed run cache: one slot per workload name, each
	// collected at most once. The per-run seed is name-independent, so
	// a cached evaluation is bit-identical to a fresh one.
	evalMu sync.Mutex
	evals  map[string]*evalSlot

	// statsMu guards the collection accounting below. collectCounts
	// tallies, per key, how many collection runs actually executed
	// (evaluations under their workload name, training runs under
	// "corpus/<name>"); reused counts requests served from a cache
	// instead of collecting again.
	statsMu       sync.Mutex
	collectCounts map[string]int
	reused        int
}

// evalSlot is one keyed run cache entry.
type evalSlot struct {
	once sync.Once
	ev   *WorkloadEval
	err  error
}

// noteCollected records one executed collection run under key.
func (r *Runner) noteCollected(key string) {
	runcacheMisses.Inc()
	r.statsMu.Lock()
	if r.collectCounts == nil {
		r.collectCounts = map[string]int{}
	}
	r.collectCounts[key]++
	r.statsMu.Unlock()
}

// noteReused records n requests served from a cache.
func (r *Runner) noteReused(n int) {
	runcacheHits.Add(uint64(n))
	r.statsMu.Lock()
	r.reused += n
	r.statsMu.Unlock()
}

// Collections reports the runner's collection activity so far:
// collected is the number of (workload, config) collection runs that
// actually executed — training corpus runs and workload evaluations —
// and reused is the number of requests served from the keyed run
// cache (or the suite cache) instead of collecting again.
func (r *Runner) Collections() (collected, reused int) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	for _, n := range r.collectCounts {
		collected += n
	}
	return collected, r.reused
}

// CollectionCounts returns a copy of the per-key collection tally:
// workload evaluations under their name, training corpus runs under
// "corpus/<name>". The planner's exactly-once guarantee means every
// value is 1 after any sequence of experiments on one Runner.
func (r *Runner) CollectionCounts() map[string]int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	out := make(map[string]int, len(r.collectCounts))
	for k, v := range r.collectCounts {
		out[k] = v
	}
	return out
}

// New returns a Runner.
func New(cfg Config) *Runner {
	if cfg.FastFactor == 0 {
		cfg.FastFactor = 0.25
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	return &Runner{cfg: cfg, out: out}
}

func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

// scaled applies the fast factor.
func (r *Runner) scaled(w *workloads.Workload) *workloads.Workload {
	if r.cfg.Fast {
		return w.Scaled(r.cfg.FastFactor)
	}
	return w
}

// workload compiles one registry workload with the fast factor
// applied. Construction is concurrency-safe (the registry memoizes
// calibration behind per-entry synchronization), so workers call this
// from inside the pool.
func (r *Runner) workload(name string) (*workloads.Workload, error) {
	w, err := workloads.Default().Build(name)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return r.scaled(w), nil
}

// workers resolves the configured pool width for n independent items.
func (r *Runner) workers(n int) int {
	w := r.cfg.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ctxErr reports the configured context's cancellation error, wrapped
// for attribution; nil when no context is set or it is still live.
func (r *Runner) ctxErr() error {
	if r.cfg.Ctx == nil {
		return nil
	}
	if err := r.cfg.Ctx.Err(); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return nil
}

// forEach runs fn(i) for every i in [0, n) on a bounded worker pool
// and returns the lowest-index error. Callers communicate results by
// writing to per-index slots, so assembly order — and therefore every
// rendered table — is independent of scheduling. A cancelled
// Config.Ctx stops the dispatch of further items; items already
// running abort at their own context polls inside the collection.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := r.workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := r.ctxErr(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := r.ctxErr(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Model returns the HBBP model used across experiments, training it on
// the corpus on first use (the Figure 1 pipeline). The corpus runs are
// collected concurrently — each carries its own derived seed, so the
// dataset and the learned tree are identical to a sequential pass.
func (r *Runner) Model() (*core.Model, error) {
	r.modelOnce.Do(func() {
		defer func() {
			if r.modelErr == nil {
				r.modelReady.Store(true)
			}
		}()
		if r.cfg.Model != nil {
			r.model = r.cfg.Model
			return
		}
		names := workloads.TrainingNames()
		runs := make([]*core.TrainingRun, len(names))
		err := r.forEach(len(names), func(i int) error {
			w, err := r.workload(names[i])
			if err != nil {
				return err
			}
			run, err := core.CollectTrainingRun(w.Prog, w.Entry, collector.Options{
				// Training samples at the same class-based periods used in
				// production, so the learned rule internalises the sampling
				// noise the estimators actually carry at analysis time.
				Class: w.Class,
				Scale: w.Scale, Seed: r.cfg.Seed + int64(100+i),
				Repeat:         w.Repeat,
				PerInstruction: r.cfg.PerInstruction,
				Context:        r.cfg.Ctx,
				Layout:         w.Layout,
			})
			if err != nil {
				return err
			}
			r.noteCollected("corpus/" + names[i])
			runs[i] = run
			return nil
		})
		if err != nil {
			r.modelErr = err
			return
		}
		r.model, r.modelErr = core.Train(runs, core.TrainParams{})
	})
	return r.model, r.modelErr
}

// TrainedModel returns the resolved model without forcing training:
// ok is false until an experiment has needed the model and obtained it
// successfully. Callers constructing one Runner per invocation harvest
// the model here and feed it back through Config.Model so later
// invocations skip the corpus collection.
func (r *Runner) TrainedModel() (m *core.Model, ok bool) {
	if !r.modelReady.Load() {
		return nil, false
	}
	return r.model, true
}

// WorkloadEval is one workload's full evaluation: runtime model plus
// accuracy of every method, scored per Section VI.
type WorkloadEval struct {
	Name string
	// Scale is the evaluated workload's retirement scaling, carried so
	// the table renderers need not rebuild the workload.
	Scale uint64
	// CleanSeconds is the modelled uninstrumented runtime.
	CleanSeconds float64
	// SDESeconds is the modelled runtime under software
	// instrumentation; SDEFactor = SDESeconds / CleanSeconds.
	SDESeconds float64
	SDEFactor  float64
	// HBBPSeconds and HBBPOverhead model the collection cost.
	HBBPSeconds  float64
	HBBPOverhead float64 // fraction, e.g. 0.005 = 0.5%
	// ErrHBBP, ErrEBS and ErrLBR are average weighted errors against
	// the instrumentation reference (user-mode mixes).
	ErrHBBP, ErrEBS, ErrLBR float64
	// SDEBug marks workloads excluded from error aggregation because
	// the reference tool is known to miscount them.
	SDEBug bool
	// Profile carries the HBBP run for further inspection.
	Profile *core.Profile
	// RefMix is the reference (instrumentation) user-mode mix.
	RefMix metrics.Mix

	// refBBECs holds the reference per-block counts (user mode only,
	// like the real SDE) for block-level tables.
	refBBECs []float64
}

// evalWorkload runs one already-scaled workload once with both the PMU
// collection and the instrumentation reference attached and scores
// every method.
func (r *Runner) evalWorkload(w *workloads.Workload) (*WorkloadEval, error) {
	model, err := r.Model()
	if err != nil {
		return nil, err
	}
	var ref *sde.Instrumenter
	if w.SDE != nil {
		ref = sde.NewFromStatic(w.SDE)
	} else {
		ref = sde.New(w.Prog)
	}
	prof, err := core.Run(w.Prog, w.Entry, model, core.Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: r.cfg.Seed + 7,
			Repeat:         w.Repeat,
			PerInstruction: r.cfg.PerInstruction,
			Context:        r.cfg.Ctx,
			Layout:         w.Layout,
		},
		KernelLivePatched: true,
	}, ref)
	if err != nil {
		return nil, err
	}
	r.noteCollected(w.Name)

	stats := prof.Collection.Stats
	clean := float64(stats.Cycles) * float64(w.Scale) / ClockHz
	sdeFactor := ref.SlowdownFactor(stats.Cycles)
	overhead := prof.Collection.OverheadFactor() - 1

	// Accuracy is scored on user-mode mixes, like the paper's
	// comparisons ("except in Section VIII.D, our accuracy comparisons
	// consider only user mode instructions").
	refMix := analyzer.ToMix(ref.Mnemonics())
	opts := analyzer.Options{Scope: analyzer.ScopeUser, LiveText: true}
	ev := &WorkloadEval{
		Name:         w.Name,
		Scale:        w.Scale,
		CleanSeconds: clean,
		SDESeconds:   clean * sdeFactor,
		SDEFactor:    sdeFactor,
		HBBPSeconds:  clean * (1 + overhead),
		HBBPOverhead: overhead,
		ErrHBBP:      metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.BBECs, opts)),
		ErrEBS:       metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.EBS, opts)),
		ErrLBR:       metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.LBR, opts)),
		SDEBug:       w.SDEBug,
		Profile:      prof,
		RefMix:       refMix,
	}
	ev.refBBECs = make([]float64, w.Prog.NumBlocks())
	for id := range ev.refBBECs {
		ev.refBBECs[id] = float64(ref.BlockExec(id))
	}
	return ev, nil
}

// eval returns the named workload's evaluation through the keyed run
// cache, collecting it at most once per Runner. Concurrent requesters
// of one name share a single collection; because every evaluation run
// derives the same seed from the config alone, a cached result is
// bit-identical to a fresh one — caching changes which run produced
// the bytes, never the bytes.
func (r *Runner) eval(name string) (*WorkloadEval, error) {
	r.evalMu.Lock()
	if r.evals == nil {
		r.evals = map[string]*evalSlot{}
	}
	slot := r.evals[name]
	if slot == nil {
		slot = &evalSlot{}
		r.evals[name] = slot
	}
	r.evalMu.Unlock()
	fresh := false
	slot.once.Do(func() {
		fresh = true
		w, err := r.workload(name)
		if err != nil {
			slot.err = err
			return
		}
		ev, err := r.evalWorkload(w)
		if err != nil {
			slot.err = fmt.Errorf("harness: evaluating %s: %w", name, err)
			return
		}
		slot.ev = ev
	})
	if !fresh && slot.err == nil {
		r.noteReused(1)
	}
	return slot.ev, slot.err
}

// evalNamed evaluates registry workloads by name on the worker pool,
// returning results in input order. Each evaluation goes through the
// keyed run cache, so names an earlier experiment already collected
// are served without another run; construction of fresh entries
// happens inside each worker, and every run carries the same derived
// seed, so results are bit-identical at any parallelism.
func (r *Runner) evalNamed(names []string) ([]*WorkloadEval, error) {
	// Resolve the shared model before fanning out so every worker hits
	// the cache instead of contending on the lazy training pass.
	if _, err := r.Model(); err != nil {
		return nil, err
	}
	evs := make([]*WorkloadEval, len(names))
	err := r.forEach(len(names), func(i int) error {
		ev, err := r.eval(names[i])
		if err != nil {
			return err
		}
		evs[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evs, nil
}

// evalNamedOne evaluates a single registry workload through the keyed
// run cache.
func (r *Runner) evalNamedOne(name string) (*WorkloadEval, error) {
	if _, err := r.Model(); err != nil {
		return nil, err
	}
	return r.eval(name)
}

// SuiteEvals evaluates the full SPEC-like suite once, caching results.
// The per-workload runs execute concurrently; the cached slice is in
// suite order regardless of scheduling.
func (r *Runner) SuiteEvals() ([]*WorkloadEval, error) {
	first := false
	r.suiteOnce.Do(func() {
		first = true
		if r.cfg.Suite != nil {
			r.suite = r.cfg.Suite
			r.suiteReady.Store(true)
			return
		}
		r.suite, r.suiteErr = r.evalNamed(workloads.SPECNames())
		if r.suiteErr == nil {
			r.suiteReady.Store(true)
		}
	})
	if !first && r.suiteErr == nil {
		r.noteReused(len(r.suite))
	}
	return r.suite, r.suiteErr
}

// EvaluatedSuite returns the suite evaluations without forcing the
// runs: ok is false until an experiment has needed the suite and
// obtained it successfully. The per-invocation-Runner counterpart of
// TrainedModel.
func (r *Runner) EvaluatedSuite() (evals []*WorkloadEval, ok bool) {
	if !r.suiteReady.Load() {
		return nil, false
	}
	return r.suite, true
}

// ExperimentNames lists every regenerable experiment: the paper's
// tables and figures in paper order, then the reproduction's own
// fleet-scale experiment. The list is derived from the experiment
// registry, the same source of truth Run and the planner use.
func ExperimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}
