package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// runAllPlanned renders every experiment through one planned Runner.
func runAllPlanned(t *testing.T, parallelism int) (string, *Runner) {
	t.Helper()
	var buf bytes.Buffer
	cfg := goldenConfig(parallelism)
	cfg.Out = &buf
	r := New(cfg)
	if err := r.RunAll(); err != nil {
		t.Fatalf("planned RunAll (parallelism %d): %v", parallelism, err)
	}
	return buf.String(), r
}

// runAllPerExperiment renders every experiment the pre-planner way: a
// fresh Runner per experiment, no sharing of anything, concatenated in
// the RunAll layout (a blank line after every experiment). This is the
// frozen reference the planner must match byte for byte.
func runAllPerExperiment(t *testing.T, parallelism int) string {
	t.Helper()
	var out strings.Builder
	for _, name := range ExperimentNames() {
		var buf bytes.Buffer
		cfg := goldenConfig(parallelism)
		cfg.Out = &buf
		r := New(cfg)
		if err := r.Run(name); err != nil {
			t.Fatalf("per-experiment %s (parallelism %d): %v", name, parallelism, err)
		}
		out.WriteString(buf.String())
		out.WriteString("\n")
	}
	return out.String()
}

// TestPlannedRunAllBitIdentical proves the one-pass planner changes
// which run produces the bytes, never the bytes: RunAll through the
// shared collection plan must equal rendering each experiment on its
// own isolated Runner, at sequential and parallel pool widths.
func TestPlannedRunAllBitIdentical(t *testing.T) {
	want := runAllPerExperiment(t, 1)
	for _, parallelism := range []int{1, 4} {
		got, _ := runAllPlanned(t, parallelism)
		if got != want {
			t.Errorf("parallelism %d: planned RunAll drifted from the per-experiment reference\ngot:\n%s\nwant:\n%s",
				parallelism, got, want)
		}
	}
	// The per-experiment reference itself must also be
	// parallelism-independent, or the comparison above proves less
	// than it claims.
	if ref4 := runAllPerExperiment(t, 4); ref4 != want {
		t.Errorf("per-experiment reference differs between parallelism 1 and 4")
	}
}

// TestPlanCollectsExactlyOnce proves the planner's core guarantee with
// the collection tally recorded at the actual collection sites: after
// RunAll, every (workload, config) pair — each corpus run and each
// evaluated workload — was collected exactly once, at any parallelism,
// and running the full set again on the same Runner collects nothing
// new.
func TestPlanCollectsExactlyOnce(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		_, r := runAllPlanned(t, parallelism)
		counts := r.CollectionCounts()
		if len(counts) == 0 {
			t.Fatalf("parallelism %d: no collections recorded", parallelism)
		}
		for key, n := range counts {
			if n != 1 {
				t.Errorf("parallelism %d: %s collected %d times, want exactly 1", parallelism, key, n)
			}
		}
		collected, reusedBefore := r.Collections()
		if collected != len(counts) {
			t.Errorf("parallelism %d: Collections() = %d, want %d", parallelism, collected, len(counts))
		}
		// A second full pass on the same Runner must be pure cache.
		if err := r.RunAll(); err != nil {
			t.Fatalf("parallelism %d: second RunAll: %v", parallelism, err)
		}
		for key, n := range r.CollectionCounts() {
			if n != 1 {
				t.Errorf("parallelism %d: %s collected %d times after second RunAll, want 1", parallelism, key, n)
			}
		}
		if _, reusedAfter := r.Collections(); reusedAfter <= reusedBefore {
			t.Errorf("parallelism %d: second RunAll reused nothing (%d -> %d)",
				parallelism, reusedBefore, reusedAfter)
		}
	}
}

// TestPlanForUnions checks plan computation: request order preserved,
// workload unions deduplicated in first-request order, requirements
// OR-ed, and unknown names rejected with the frozen error text before
// any collection could start.
func TestPlanForUnions(t *testing.T) {
	plan, err := PlanFor("table5", "figure3", "table8", "figure1")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"table5", "figure3", "table8", "figure1"}; !reflect.DeepEqual(plan.Experiments, want) {
		t.Errorf("Experiments = %v, want %v", plan.Experiments, want)
	}
	// test40 is needed by both table5 and figure3 but planned once;
	// table8's pair follows in first-request order.
	if want := []string{"test40", "clforward-before", "clforward-after"}; !reflect.DeepEqual(plan.Workloads, want) {
		t.Errorf("Workloads = %v, want %v", plan.Workloads, want)
	}
	if !plan.Model {
		t.Error("figure1 should set Model")
	}
	if plan.Suite {
		t.Error("no requested experiment needs the suite")
	}

	if _, err := PlanFor("table5", "table9"); err == nil {
		t.Fatal("unknown experiment accepted")
	} else {
		want := fmt.Sprintf("harness: unknown experiment %q (known: %v)", "table9", ExperimentNames())
		if err.Error() != want {
			t.Errorf("unknown-name error = %q, want %q", err, want)
		}
	}
}

// TestRunPlanReport checks the report the façade and cmd/experiments
// surface: one render timing per requested experiment in request
// order, and a second overlapping plan on the same Runner served
// mostly from cache.
func TestRunPlanReport(t *testing.T) {
	cfg := goldenConfig(4)
	r := New(cfg)
	rep, err := r.RunPlan("table5", "table2", "figure3")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tm := range rep.Renders {
		names = append(names, tm.Name)
	}
	if want := []string{"table5", "table2", "figure3"}; !reflect.DeepEqual(names, want) {
		t.Errorf("render order = %v, want %v", names, want)
	}
	// 16 corpus runs plus the shared test40 evaluation.
	if rep.Collected == 0 {
		t.Errorf("first plan collected nothing")
	}
	if rep.Reused != 2 {
		// table5 and figure3 each re-request test40 at render time,
		// after the collect phase already ran it.
		t.Errorf("first plan Reused = %d, want 2", rep.Reused)
	}
	rep2, err := r.RunPlan("table5", "figure4")
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Collected != 0 {
		t.Errorf("overlapping second plan collected %d new runs, want 0", rep2.Collected)
	}
	if rep2.Reused == 0 {
		t.Errorf("overlapping second plan reused nothing")
	}
}
