package harness

import "testing"

// TestFastPathParityAcrossPipeline is the end-to-end guarantee of the
// retirement fast path: a runner on the block-granularity pipeline —
// at full parallelism — renders the identical learned model and the
// identical tables as a runner forced through the per-instruction
// reference dispatch running strictly sequentially. Same seeds ⇒ same
// samples ⇒ same model ⇒ same rendered bytes, across the Test40
// evaluation (Table 5) and the kernel workload (Table 7).
func TestFastPathParityAcrossPipeline(t *testing.T) {
	render := func(perInstruction bool, parallelism int) (model, t5, t7 string) {
		r := New(Config{
			Fast: true, FastFactor: 0.1, Seed: 3,
			Parallelism: parallelism, PerInstruction: perInstruction,
		})
		m, err := r.Model()
		if err != nil {
			t.Fatalf("Model (perInstruction=%v): %v", perInstruction, err)
		}
		tab5, err := r.Table5()
		if err != nil {
			t.Fatalf("Table5 (perInstruction=%v): %v", perInstruction, err)
		}
		tab7, err := r.Table7()
		if err != nil {
			t.Fatalf("Table7 (perInstruction=%v): %v", perInstruction, err)
		}
		return m.Describe(), tab5.Render(), tab7.Render()
	}
	refModel, refT5, refT7 := render(true, 1)
	fastModel, fastT5, fastT7 := render(false, 4)
	if fastModel != refModel {
		t.Errorf("model differs from reference path:\nfast:      %s\nreference: %s", fastModel, refModel)
	}
	if fastT5 != refT5 {
		t.Errorf("Table 5 differs from reference path:\nfast:\n%s\nreference:\n%s", fastT5, refT5)
	}
	if fastT7 != refT7 {
		t.Errorf("Table 7 differs from reference path:\nfast:\n%s\nreference:\n%s", fastT7, refT7)
	}
}
