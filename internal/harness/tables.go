package harness

import (
	"fmt"
	"strings"

	"hbbp/internal/collector"
	"hbbp/internal/pmu"
	"hbbp/internal/workloads"
)

// ---------------------------------------------------------------- Table 1

// Table1Row compares clean and instrumented wall-clock runtime for one
// workload or group.
type Table1Row struct {
	Name         string
	CleanSeconds float64
	SDESeconds   float64
	Factor       float64
}

// Table1Result reproduces Table 1: "a comparison of wall clock runtimes
// of select benchmarks: clean (1), using software instrumentation with
// SDE (2)".
type Table1Result struct {
	Rows []Table1Row
}

// table1Extras is the non-SPEC benchmark set of Table 1, declared once
// so the table builder and the experiment registry's plan cannot
// drift apart. Order matters: the renderer treats the last entry
// (hydro-post) as its own row.
var table1Extras = []string{
	"test40",
	"fitter-sse",
	"fitter-x87",
	"clforward-before",
	"kernel-prime",
	"hydro-post",
}

// Table1 measures the SPEC suite (aggregate plus the povray and
// omnetpp extremes), the non-SPEC benchmark set, and the Hydro-post
// benchmark.
func (r *Runner) Table1() (*Table1Result, error) {
	suite, err := r.SuiteEvals()
	if err != nil {
		return nil, err
	}
	var all, allSDE float64
	byName := map[string]*WorkloadEval{}
	for _, ev := range suite {
		all += ev.CleanSeconds
		allSDE += ev.SDESeconds
		byName[ev.Name] = ev
	}
	res := &Table1Result{}
	add := func(name string, clean, sdeSec float64) {
		res.Rows = append(res.Rows, Table1Row{
			Name: name, CleanSeconds: clean, SDESeconds: sdeSec,
			Factor: sdeSec / clean,
		})
	}
	add("SPEC all", all, allSDE)
	for _, name := range []string{"povray", "omnetpp"} {
		ev := byName[name]
		add("SPEC "+name, ev.CleanSeconds, ev.SDESeconds)
	}

	evs, err := r.evalNamed(table1Extras)
	if err != nil {
		return nil, err
	}
	hydro := evs[len(evs)-1]
	var others, othersSDE float64
	for _, ev := range evs[:len(evs)-1] {
		others += ev.CleanSeconds
		othersSDE += ev.SDESeconds
	}
	add("All other benchmarks", others, othersSDE)
	add("Hydro-post benchmark", hydro.CleanSeconds, hydro.SDESeconds)
	return res, nil
}

// Render prints the table in the paper's layout.
func (t *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1: wall clock runtimes [s]: clean vs software instrumentation (SDE)\n")
	fmt.Fprintf(&sb, "%-24s %12s %12s %8s\n", "Benchmark", "(1) Clean", "(2) SDE", "Factor")
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-24s %12.0f %12.0f %7.2fx\n",
			row.Name, row.CleanSeconds, row.SDESeconds, row.Factor)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Result reproduces Table 2: instruction-specific event support
// across PMU generations.
type Table2Result struct {
	Events      []pmu.Event
	Generations []pmu.Generation
	Support     map[pmu.Generation]map[pmu.Event]pmu.Support
}

// Table2 builds the capability matrix. It is static — the paper's point
// is the trend, "dictated by a general trend of reducing PMU
// complexity".
func Table2() *Table2Result {
	res := &Table2Result{
		Events:      pmu.InstructionSpecificEvents(),
		Generations: pmu.Generations(),
		Support:     map[pmu.Generation]map[pmu.Event]pmu.Support{},
	}
	for _, g := range res.Generations {
		res.Support[g] = map[pmu.Event]pmu.Support{}
		for _, e := range res.Events {
			res.Support[g][e] = pmu.Supports(g, e)
		}
	}
	return res
}

// rowLabels gives Table 2's human row names.
var table2RowLabels = map[pmu.Event]string{
	pmu.DivCycles: "DIV (cycles)",
	pmu.MathSSEFP: "Math SSE FP",
	pmu.MathAVXFP: "Math AVX FP",
	pmu.IntSIMD:   "INT SIMD",
	pmu.X87Ops:    "X87",
}

// Render prints the matrix.
func (t *Table2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 2: instruction-specific event support on Intel server PMUs\n")
	fmt.Fprintf(&sb, "%-14s", "")
	for _, g := range t.Generations {
		fmt.Fprintf(&sb, " %-18s", fmt.Sprintf("%s (%d)", g, g.Year()))
	}
	sb.WriteByte('\n')
	for _, e := range t.Events {
		fmt.Fprintf(&sb, "%-14s", table2RowLabels[e])
		for _, g := range t.Generations {
			fmt.Fprintf(&sb, " %-18s", t.Support[g][e])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one basic block's BBEC under each method, in millions.
type Table3Row struct {
	BB       int
	EBS, LBR float64
	SDE      float64
	EBSBad   bool // error > 25%
	LBRBad   bool
}

// Table3Result reproduces Table 3: per-block BBECs from EBS and LBR on
// the Fitter SSE variant, against the instrumentation reference, with
// errors above 25% flagged.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 profiles Fitter-SSE and reports the fit_track function's
// blocks plus the main driver's, numbered from 1 as in the paper.
func (r *Runner) Table3() (*Table3Result, error) {
	ev, err := r.evalNamedOne(workloads.FitterSSE.WorkloadName())
	if err != nil {
		return nil, err
	}
	prof := ev.Profile
	scale := float64(ev.Scale) / 1e6 // counts -> paper-style millions
	res := &Table3Result{}
	prog := prof.Prog
	n := 0
	for _, fn := range []string{"fit_track", "main"} {
		f := prog.FuncByName(fn)
		for _, blk := range f.Blocks {
			n++
			if n > 15 {
				break
			}
			refCount := refBBEC(ev, blk.ID) * scale
			row := Table3Row{
				BB:  n,
				EBS: prof.EBS[blk.ID] * scale,
				LBR: prof.LBR[blk.ID] * scale,
				SDE: refCount,
			}
			if refCount > 0 {
				row.EBSBad = relErr(row.EBS, refCount) > 0.25
				row.LBRBad = relErr(row.LBR, refCount) > 0.25
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func relErr(meas, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	d := meas - ref
	if d < 0 {
		d = -d
	}
	return d / ref
}

// refBBEC recovers the reference execution count of a block from the
// SDE mix side channel: the evaluation keeps exact per-block counts in
// the profile's collection listeners; here we re-derive them from the
// reference instrumenter attached during evalWorkload.
func refBBEC(ev *WorkloadEval, blockID int) float64 {
	return ev.refBBECs[blockID]
}

// Render prints the per-block table.
func (t *Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3: BBECs (millions) from EBS and LBR on Fitter (SSE), vs instrumentation\n")
	fmt.Fprintf(&sb, "%3s %10s %10s %10s %s\n", "BB", "EBS", "LBR", "SDE", "flags(>25% error)")
	for _, row := range t.Rows {
		var flags []string
		if row.EBSBad {
			flags = append(flags, "EBS!")
		}
		if row.LBRBad {
			flags = append(flags, "LBR!")
		}
		fmt.Fprintf(&sb, "%3d %10.2f %10.2f %10.2f %s\n",
			row.BB, row.EBS, row.LBR, row.SDE, strings.Join(flags, " "))
	}
	return sb.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one runtime class's sampling periods.
type Table4Row struct {
	Class     collector.RuntimeClass
	EBSPeriod uint64
	LBRPeriod uint64
}

// Table4Result reproduces Table 4: EBS and LBR sampling periods by
// workload runtime.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 lists the period selection rules.
func Table4() *Table4Result {
	res := &Table4Result{}
	for _, c := range []collector.RuntimeClass{
		collector.ClassSeconds, collector.ClassMinuteOrTwo, collector.ClassMinutes,
	} {
		ebs, lbr := collector.PeriodsFor(c)
		res.Rows = append(res.Rows, Table4Row{Class: c, EBSPeriod: ebs, LBRPeriod: lbr})
	}
	return res
}

// Render prints the period table.
func (t *Table4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4: EBS and LBR sampling periods in HBBP\n")
	fmt.Fprintf(&sb, "%-26s %18s %18s\n", "Runtime", "EBS period", "LBR period")
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-26s %18d %18d\n", row.Class, row.EBSPeriod, row.LBRPeriod)
	}
	return sb.String()
}
