package harness

import (
	"bytes"
	"strings"
	"testing"

	"hbbp/internal/workloads"
)

// sharedRunner caches the trained model and suite evaluation across
// tests in this package; experiments are deterministic for a fixed
// config.
var sharedRunner = New(Config{Fast: true, FastFactor: 0.2, Seed: 1})

func TestTable1Shapes(t *testing.T) {
	res, err := sharedRunner.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		// Instrumentation always costs a multiple of clean runtime.
		if row.Factor < 1.5 {
			t.Errorf("%s: SDE factor %.2f implausibly low", row.Name, row.Factor)
		}
	}
	all := byName["SPEC all"]
	pov := byName["SPEC povray"]
	hydro := byName["Hydro-post benchmark"]
	// Paper shape: povray's slowdown well above the suite average;
	// Hydro-post the extreme of the table.
	if pov.Factor <= all.Factor {
		t.Errorf("povray factor %.1f should exceed suite average %.1f", pov.Factor, all.Factor)
	}
	if hydro.Factor <= pov.Factor {
		t.Errorf("Hydro-post factor %.1f should be the extreme (povray %.1f)",
			hydro.Factor, pov.Factor)
	}
	if hydro.Factor < 20 {
		t.Errorf("Hydro-post factor %.1f; paper reports 76.6x-scale extremes", hydro.Factor)
	}
	out := res.Render()
	for _, want := range []string{"SPEC all", "povray", "Hydro-post"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	res := Table2()
	if len(res.Events) != 5 || len(res.Generations) != 3 {
		t.Fatalf("matrix is %dx%d, want 5x3", len(res.Events), len(res.Generations))
	}
	out := res.Render()
	for _, want := range []string{"Westmere", "Ivy Bridge", "Haswell", "DIV (cycles)", "N/A"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := sharedRunner.Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("Table 3 has %d rows, want >= 10", len(res.Rows))
	}
	var anyNonZero bool
	for _, row := range res.Rows {
		if row.SDE > 0 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Error("all reference BBECs zero")
	}
	out := res.Render()
	if !strings.Contains(out, "BB") {
		t.Errorf("render: %q", out)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	res := Table4()
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0].EBSPeriod != 1_000_037 || res.Rows[2].LBRPeriod != 10_000_019 {
		t.Errorf("periods differ from Table 4: %+v", res.Rows)
	}
	if !strings.Contains(res.Render(), "SPEC workloads") {
		t.Error("render missing class label")
	}
}

func TestTable5Shapes(t *testing.T) {
	res, err := sharedRunner.Table5()
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	// Paper shape: SDE is ~9x clean; HBBP within a few percent.
	if res.SDEPenalty < 2 {
		t.Errorf("SDE penalty %.2f, want multiple of clean runtime", res.SDEPenalty)
	}
	if res.HBBPPenalty > 0.10 {
		t.Errorf("HBBP penalty %.3f, want small fraction", res.HBBPPenalty)
	}
	if res.AvgWErr > 0.06 {
		t.Errorf("Test40 HBBP error %.2f%%, paper band is ~1%%", res.AvgWErr*100)
	}
	if !strings.Contains(res.Render(), "Test40") {
		t.Error("render missing title")
	}
}

func TestTable6Shapes(t *testing.T) {
	res, err := sharedRunner.Table6()
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	exp := res.Expected
	meas := res.Measured
	x87 := exp[workloads.FitterX87]
	sse := exp[workloads.FitterSSE]
	avxB := exp[workloads.FitterAVX]
	avxF := exp[workloads.FitterAVXFix]

	// Vector width shrinks the math volume: scalar > SSE > AVX.
	if !(x87.SSEInst > sse.SSEInst) {
		t.Errorf("scalar SSE volume %.0f should exceed packed %.0f", x87.SSEInst, sse.SSEInst)
	}
	if !(sse.SSEInst > avxF.AVXInst) {
		t.Errorf("SSE volume %.0f should exceed AVX %.0f", sse.SSEInst, avxF.AVXInst)
	}
	// The broken build explodes calls and x87 spills, and is much
	// slower per track than the fix.
	if avxB.Calls < 5*avxF.Calls {
		t.Errorf("broken AVX calls %.0f vs fixed %.0f", avxB.Calls, avxF.Calls)
	}
	if avxB.X87Inst < 3*avxF.X87Inst {
		t.Errorf("broken AVX x87 %.0f vs fixed %.0f", avxB.X87Inst, avxF.X87Inst)
	}
	if avxB.TimePerTrack < 2*avxF.TimePerTrack {
		t.Errorf("broken AVX %.2fus/track vs fixed %.2fus", avxB.TimePerTrack, avxF.TimePerTrack)
	}
	// Healthy builds get faster with wider vectors.
	if !(x87.TimePerTrack > sse.TimePerTrack && sse.TimePerTrack > avxF.TimePerTrack) {
		t.Errorf("time/track not descending: %.2f %.2f %.2f",
			x87.TimePerTrack, sse.TimePerTrack, avxF.TimePerTrack)
	}
	// Measured mixes track expected ones: the broken build's CALL
	// explosion is visible through HBBP, the paper's key diagnosis.
	if meas[workloads.FitterAVX].Calls < 5*meas[workloads.FitterAVXFix].Calls {
		t.Errorf("measured broken calls %.0f vs fixed %.0f",
			meas[workloads.FitterAVX].Calls, meas[workloads.FitterAVXFix].Calls)
	}
	for _, v := range res.Variants {
		if meas[v].AvgWErr > 0.08 {
			t.Errorf("%v measured error %.2f%% too high", v, meas[v].AvgWErr*100)
		}
	}
	if !strings.Contains(res.Render(), "AVX fix") {
		t.Error("render missing variant column")
	}
}

func TestTable7Shapes(t *testing.T) {
	res, err := sharedRunner.Table7()
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(res.Mnemonics) < 8 {
		t.Fatalf("only %d mnemonics", len(res.Mnemonics))
	}
	// The three columns must agree: HBBP's kernel and user views match
	// the SDE user reference within a modest tolerance per mnemonic
	// ("the results are in very good agreement").
	for _, op := range res.Mnemonics {
		ref := res.SDEUser[op]
		if ref == 0 {
			continue
		}
		for name, got := range map[string]float64{
			"HBBP user":   res.HBBPUser[op],
			"HBBP kernel": res.HBBPKernel[op],
		} {
			if rel := relErr(got, ref); rel > 0.25 {
				t.Errorf("%s %v: %.0f vs ref %.0f (%.0f%% off)",
					name, op, got, ref, rel*100)
			}
		}
	}
	if res.TotalKernel == 0 {
		t.Fatal("kernel column empty — ring-0 coverage missing")
	}
	if got := relErr(res.TotalKernel, res.TotalSDE); got > 0.10 {
		t.Errorf("kernel total %.0f vs SDE user total %.0f (%.0f%%)",
			res.TotalKernel, res.TotalSDE, got*100)
	}
	if !strings.Contains(res.Render(), "hello.ko") {
		t.Error("render missing kernel module column")
	}
}

func TestTable8Shapes(t *testing.T) {
	res, err := sharedRunner.Table8()
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	var scalarBefore, scalarAfter, packedBefore, packedAfter float64
	for _, row := range res.Rows {
		if row.InstSet != "AVX" {
			continue
		}
		switch row.Packing {
		case "SCALAR":
			scalarBefore, scalarAfter = row.Before, row.After
		case "PACKED":
			packedBefore, packedAfter = row.Before, row.After
		}
	}
	// Table 8 shape: scalar dominates before, packed dominates after,
	// total volume shrinks.
	if scalarBefore <= packedBefore {
		t.Errorf("before: scalar %.1f should dominate packed %.1f", scalarBefore, packedBefore)
	}
	if packedAfter <= scalarAfter {
		t.Errorf("after: packed %.1f should dominate scalar %.1f", packedAfter, scalarAfter)
	}
	if res.TotalAfter >= res.TotalBefore {
		t.Errorf("total should shrink: %.1f -> %.1f", res.TotalBefore, res.TotalAfter)
	}
	if !strings.Contains(res.Render(), "PACKING") {
		t.Error("render missing header")
	}
}

func TestFigure1Shapes(t *testing.T) {
	res, err := sharedRunner.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if res.Cutoff < 8 || res.Cutoff > 32 {
		t.Errorf("cutoff %.1f outside the band around 18", res.Cutoff)
	}
	if res.Importances["block_len"] < 0.4 {
		t.Errorf("block_len importance %.2f too low", res.Importances["block_len"])
	}
	out := res.Render()
	for _, want := range []string{"gini", "samples", "block_len", "cutoff"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure2Shapes(t *testing.T) {
	res, err := sharedRunner.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(res.Rows) != 29 {
		t.Fatalf("%d rows, want 29", len(res.Rows))
	}
	// Headline shape (Section VIII.A): HBBP's average beats EBS and
	// tracks LBR. This fast-mode run samples 5x below production
	// density, so the strict HBBP-beats-both ordering is asserted in
	// TestFigure2FullScale; here a noise margin applies.
	if res.MeanHBBP >= res.MeanEBS {
		t.Errorf("HBBP mean %.3f should beat EBS %.3f", res.MeanHBBP, res.MeanEBS)
	}
	if res.MeanHBBP > res.MeanLBR*1.25 {
		t.Errorf("HBBP mean %.3f should track LBR %.3f", res.MeanHBBP, res.MeanLBR)
	}
	if res.MeanHBBP > 0.06 {
		t.Errorf("HBBP mean %.2f%% far above the paper's 1.83%%", res.MeanHBBP*100)
	}
	if len(res.Excluded) != 1 || res.Excluded[0] != "h264ref" {
		t.Errorf("excluded = %v, want [h264ref] (the paper's x264ref footnote)", res.Excluded)
	}
	// Per-benchmark overheads: collection is always cheap.
	for _, ev := range res.Rows {
		if ev.HBBPOverhead > 0.10 {
			t.Errorf("%s: HBBP overhead %.1f%%", ev.Name, ev.HBBPOverhead*100)
		}
		if ev.SDEFactor < 1.5 {
			t.Errorf("%s: SDE factor %.2f", ev.Name, ev.SDEFactor)
		}
	}
	if !strings.Contains(res.Render(), "OVERALL") {
		t.Error("render missing aggregate row")
	}
}

func TestFigures34Shapes(t *testing.T) {
	f3, err := sharedRunner.Figure3()
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(f3.Rows) != 20 {
		t.Fatalf("Figure 3 has %d rows, want 20", len(f3.Rows))
	}
	// Rows are sorted by count descending.
	for i := 1; i < len(f3.Rows); i++ {
		if f3.Rows[i].Count > f3.Rows[i-1].Count {
			t.Fatalf("rows not sorted by count at %d", i)
		}
	}
	f4, err := sharedRunner.Figure4()
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(f4.Rows) != 20 {
		t.Fatalf("Figure 4 has %d rows, want 20", len(f4.Rows))
	}
	// Shape: on the top-5 mnemonics HBBP is accurate, and across the
	// top-20 HBBP's mean error beats EBS's (the paper's Test40 story).
	var sumH, sumL, sumE float64
	for _, row := range f4.Rows {
		sumH += row.HBBP
		sumL += row.LBR
		sumE += row.EBS
	}
	if sumH/20 >= sumE/20 {
		t.Errorf("mean per-mnemonic: HBBP %.3f should beat EBS %.3f", sumH/20, sumE/20)
	}
	for _, row := range f4.Rows[:5] {
		if row.HBBP > 0.10 {
			t.Errorf("top-5 mnemonic %v: HBBP error %.1f%%", row.Mnemonic, row.HBBP*100)
		}
	}
	if !strings.Contains(f3.Render(), "count") || !strings.Contains(f4.Render(), "EBS") {
		t.Error("figure renders incomplete")
	}
}

// TestParallelismDoesNotChangeResults pins the scheduler guarantee:
// every run is independently seeded and results are assembled in
// workload order, so a sequential runner and a parallel runner render
// bit-identical experiments (training corpus included).
func TestParallelismDoesNotChangeResults(t *testing.T) {
	render := func(parallelism int) (string, string) {
		r := New(Config{Fast: true, FastFactor: 0.1, Seed: 3, Parallelism: parallelism})
		t6, err := r.Table6()
		if err != nil {
			t.Fatalf("Table6 (parallelism %d): %v", parallelism, err)
		}
		f1, err := r.Figure1()
		if err != nil {
			t.Fatalf("Figure1 (parallelism %d): %v", parallelism, err)
		}
		return t6.Render(), f1.Render()
	}
	seqTable, seqTree := render(1)
	// An explicit width keeps the pool path exercised even on
	// single-core machines, where GOMAXPROCS would collapse it to 1.
	parTable, parTree := render(4)
	if seqTable != parTable {
		t.Errorf("Table 6 differs under parallelism:\nsequential:\n%s\nparallel:\n%s", seqTable, parTable)
	}
	if seqTree != parTree {
		t.Errorf("learned tree differs under parallelism:\nsequential:\n%s\nparallel:\n%s", seqTree, parTree)
	}
}

func TestRunAllAndNames(t *testing.T) {
	if len(ExperimentNames()) != 13 {
		t.Fatalf("%d experiments", len(ExperimentNames()))
	}
	var buf bytes.Buffer
	r := New(Config{Out: &buf, Fast: true, FastFactor: 0.1, Seed: 5})
	// Static experiments render through Run without errors.
	for _, name := range []string{"table2", "table4"} {
		if err := r.Run(name); err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
	}
	if err := r.Run("table9"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if buf.Len() == 0 {
		t.Fatal("no output rendered")
	}
}
