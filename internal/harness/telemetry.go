package harness

import "hbbp/internal/telemetry"

// Package-level metric handles for the collection planner, resolved
// once at init against the process-wide registry. These mirror the
// per-Runner Report numbers: the Report stays the per-call receipt,
// the registry the process-lifetime view /metrics serves.
var (
	runcacheMisses = telemetry.Default().Counter("hbbp_harness_runcache_total",
		"Keyed run-cache requests by result (miss = collection executed).", "result", "miss")
	runcacheHits = telemetry.Default().Counter("hbbp_harness_runcache_total",
		"Keyed run-cache requests by result (miss = collection executed).", "result", "hit")
	collectWall = telemetry.Default().Histogram("hbbp_harness_collect_seconds",
		"Shared collection-phase wall time per plan.", telemetry.NanosToSeconds, telemetry.DurationBuckets())
	renderWall = telemetry.Default().Histogram("hbbp_harness_render_seconds",
		"Per-experiment render wall time.", telemetry.NanosToSeconds, telemetry.DurationBuckets())
)
