package harness

import (
	"fmt"
	"time"

	"hbbp/internal/telemetry"
	"hbbp/internal/workloads"
)

// experiment is one row of the experiment registry: the declarative
// collection requirements the planner unions across experiments, plus
// the renderer. The registry is the single source of truth behind
// ExperimentNames, Run and the planner — adding an experiment means
// adding a row, nothing else.
type experiment struct {
	name string
	// model marks experiments that need the corpus-trained model even
	// without any evaluation (figure1). Evaluations resolve the model
	// themselves, so rows with workloads or suite leave it false.
	model bool
	// suite marks consumers of the full SPEC-suite evaluation set.
	suite bool
	// workloads lists the named registry workloads whose evaluations
	// the renderer consumes through the keyed run cache.
	workloads []string
	// render regenerates the experiment and returns the rendered text.
	render func(r *Runner) (string, error)
}

// fitterWorkloadNames maps the Table 6 variants to registry names.
func fitterWorkloadNames() []string {
	variants := workloads.FitterVariants()
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.WorkloadName()
	}
	return names
}

// experiments is the registry, in paper order (then the fleet
// experiment). Each renderer returns its table or figure as text; the
// collection requirements mirror exactly what the builder consumes.
var experiments = []experiment{
	{name: "table1", suite: true, workloads: table1Extras,
		render: func(r *Runner) (string, error) {
			res, err := r.Table1()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "table2",
		render: func(r *Runner) (string, error) { return Table2().Render(), nil }},
	{name: "table3", workloads: []string{"fitter-sse"},
		render: func(r *Runner) (string, error) {
			res, err := r.Table3()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "table4",
		render: func(r *Runner) (string, error) { return Table4().Render(), nil }},
	{name: "table5", workloads: []string{"test40"},
		render: func(r *Runner) (string, error) {
			res, err := r.Table5()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "table6", workloads: fitterWorkloadNames(),
		render: func(r *Runner) (string, error) {
			res, err := r.Table6()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "table7", workloads: []string{"kernel-prime"},
		render: func(r *Runner) (string, error) {
			res, err := r.Table7()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "table8", workloads: table8Workloads,
		render: func(r *Runner) (string, error) {
			res, err := r.Table8()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "figure1", model: true,
		render: func(r *Runner) (string, error) {
			res, err := r.Figure1()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "figure2", suite: true,
		render: func(r *Runner) (string, error) {
			res, err := r.Figure2()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "figure3", workloads: []string{"test40"},
		render: func(r *Runner) (string, error) {
			res, err := r.Figure3()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "figure4", workloads: []string{"test40"},
		render: func(r *Runner) (string, error) {
			res, err := r.Figure4()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
	{name: "fleet", suite: true,
		render: func(r *Runner) (string, error) {
			res, err := r.Fleet()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
}

// experimentByName looks a registry row up.
func experimentByName(name string) (*experiment, bool) {
	for i := range experiments {
		if experiments[i].name == name {
			return &experiments[i], true
		}
	}
	return nil, false
}

// Plan is the resolved collection plan of one multi-experiment run:
// the union of the requested experiments' declared requirements, each
// to be collected exactly once before any render.
type Plan struct {
	// Experiments are the validated requested names, in request order
	// (duplicates preserved — they render twice, collect once).
	Experiments []string
	// Model reports whether any experiment needs the trained model.
	Model bool
	// Suite reports whether any experiment consumes the SPEC suite.
	Suite bool
	// Workloads is the union of named workload evaluations, in
	// first-request order with duplicates removed.
	Workloads []string
}

// PlanFor computes the shared collection plan for the named
// experiments. Unknown names fail here, before any collection starts.
func PlanFor(names ...string) (*Plan, error) {
	plan := &Plan{}
	seen := map[string]bool{}
	for _, name := range names {
		exp, ok := experimentByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown experiment %q (known: %v)", name, ExperimentNames())
		}
		plan.Experiments = append(plan.Experiments, name)
		plan.Model = plan.Model || exp.model
		plan.Suite = plan.Suite || exp.suite
		for _, w := range exp.workloads {
			if !seen[w] {
				seen[w] = true
				plan.Workloads = append(plan.Workloads, w)
			}
		}
	}
	return plan, nil
}

// ExperimentTiming records one rendered experiment's wall time within
// a planned run.
type ExperimentTiming struct {
	Name string
	Wall time.Duration
}

// Report summarises one planned multi-experiment run: what the shared
// collection phase executed, what later requests were served from the
// keyed run cache, and how long each render took. The rendered bytes
// themselves go to the runner's output writer and are independent of
// the planning — bit-identical to rendering each experiment on its
// own runner.
type Report struct {
	// Plan is the resolved collection plan.
	Plan *Plan
	// Collected is the number of (workload, config) collection runs
	// executed during this call; Reused counts requests served from
	// the keyed run or suite cache instead of collecting again.
	Collected, Reused int
	// CollectWall is the wall time of the shared collection phase.
	CollectWall time.Duration
	// Renders records per-experiment render wall time, in plan order.
	Renders []ExperimentTiming
}

// collect executes the plan's shared collection phase: the trained
// model first (every evaluation resolves it), then the suite, then
// every remaining named workload exactly once on the bounded worker
// pool. Cancellation follows the same contract as the rest of the
// harness: the pool stops dispatching between runs and a run in
// flight aborts at the machine's 1024-block context poll, while cache
// entries completed before the cancellation stay valid.
func (r *Runner) collect(plan *Plan) error {
	if plan.Model || plan.Suite || len(plan.Workloads) > 0 {
		if _, err := r.Model(); err != nil {
			return err
		}
	}
	if plan.Suite {
		if _, err := r.SuiteEvals(); err != nil {
			return err
		}
	}
	return r.forEach(len(plan.Workloads), func(i int) error {
		_, err := r.eval(plan.Workloads[i])
		return err
	})
}

// Run executes one or more experiments by name through a shared
// collection plan: the union of required runs is collected exactly
// once, then every experiment renders from the shared result set, in
// request order. A multi-experiment run separates renders with a
// blank line (the RunAll layout); a single-name call renders bare.
// Unknown names fail before any collection starts.
func (r *Runner) Run(names ...string) error {
	_, err := r.RunPlan(names...)
	return err
}

// RunPlan is Run returning the plan's execution report — per-experiment
// wall time plus collected-versus-reused run counts, the numbers that
// make the dedup visible to cmd/experiments. The report is about
// timing and cache behaviour only; rendered output is bit-identical
// at any parallelism and to the unplanned per-experiment path.
func (r *Runner) RunPlan(names ...string) (*Report, error) {
	plan, err := PlanFor(names...)
	if err != nil {
		return nil, err
	}
	if err := r.ctxErr(); err != nil {
		return nil, err
	}
	rep := &Report{Plan: plan}
	collected0, reused0 := r.Collections()
	finish := func() {
		collected1, reused1 := r.Collections()
		rep.Collected, rep.Reused = collected1-collected0, reused1-reused0
	}
	start := time.Now()
	if err := r.collect(plan); err != nil {
		finish()
		return rep, err
	}
	rep.CollectWall = time.Since(start)
	collectWall.Observe(int64(rep.CollectWall))
	telemetry.Default().Slow().Observe("harness/collect", rep.CollectWall, func() string {
		return fmt.Sprintf("experiments=%v", plan.Experiments)
	})
	for _, name := range plan.Experiments {
		// Checking between renders keeps a cancelled multi-experiment
		// run from starting further renders while leaving the ones
		// already written to the output untouched.
		if err := r.ctxErr(); err != nil {
			finish()
			return rep, err
		}
		exp, _ := experimentByName(name)
		t0 := time.Now()
		text, err := exp.render(r)
		if err != nil {
			finish()
			return rep, fmt.Errorf("harness: %s: %w", name, err)
		}
		r.printf("%s", text)
		if len(plan.Experiments) > 1 {
			r.printf("\n")
		}
		wall := time.Since(t0)
		renderWall.Observe(int64(wall))
		telemetry.Default().Slow().Observe("harness/render", wall, func() string { return name })
		rep.Renders = append(rep.Renders, ExperimentTiming{Name: name, Wall: wall})
	}
	finish()
	return rep, nil
}

// RunAll executes every experiment in paper order through one shared
// collection plan.
func (r *Runner) RunAll() error {
	return r.Run(ExperimentNames()...)
}
