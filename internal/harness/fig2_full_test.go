package harness

import "testing"

// TestFigure2FullScale asserts the paper's headline ordering — HBBP's
// suite-average weighted error beats both raw estimators' — at full
// production sampling density. The fast-mode shape test tolerates more
// noise; this one does not, at the cost of a ~2 minute runtime.
// Run with -short to skip.
func TestFigure2FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale suite evaluation")
	}
	r := New(Config{Seed: 1})
	res, err := r.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	t.Logf("suite means: HBBP=%.4f LBR=%.4f EBS=%.4f (paper: 0.0183/0.0315/0.0443)",
		res.MeanHBBP, res.MeanLBR, res.MeanEBS)
	if res.MeanHBBP >= res.MeanLBR {
		t.Errorf("HBBP mean %.4f should beat LBR %.4f", res.MeanHBBP, res.MeanLBR)
	}
	if res.MeanHBBP >= res.MeanEBS {
		t.Errorf("HBBP mean %.4f should beat EBS %.4f", res.MeanHBBP, res.MeanEBS)
	}
	if res.MeanHBBP > 0.04 {
		t.Errorf("HBBP mean %.2f%% far above the paper's 1.83%%", res.MeanHBBP*100)
	}
	// HBBP is never catastrophically worse than the better raw source
	// on any single benchmark.
	for _, ev := range res.Rows {
		better := ev.ErrLBR
		if ev.ErrEBS < better {
			better = ev.ErrEBS
		}
		if ev.ErrHBBP > better*3 && ev.ErrHBBP > 0.08 {
			t.Errorf("%s: HBBP %.3f vs best raw %.3f", ev.Name, ev.ErrHBBP, better)
		}
	}
}
