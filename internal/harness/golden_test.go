package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden table files")

// goldenConfig is the fixed configuration the golden tables were
// rendered with. Fast mode keeps the run short; the seed is arbitrary
// but frozen — the files record the exact bytes the pre-refactor
// hand-rolled workload constructors produced.
func goldenConfig(parallelism int) Config {
	return Config{Fast: true, FastFactor: 0.1, Seed: 3, Parallelism: parallelism}
}

// renderGoldenTables renders the multi-workload experiments — the ones
// whose workload sets the declarative registry now assembles — with
// the given parallelism.
func renderGoldenTables(t *testing.T, parallelism int) map[string]string {
	t.Helper()
	r := New(goldenConfig(parallelism))
	out := map[string]string{}
	t1, err := r.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	out["table1"] = t1.Render()
	t6, err := r.Table6()
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	out["table6"] = t6.Render()
	t8, err := r.Table8()
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	out["table8"] = t8.Render()
	f2, err := r.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	out["figure2"] = f2.Render()
	return out
}

// TestGoldenTablesBitIdentical freezes the rendered bytes of Tables 1,
// 6 and 8 and Figure 2 against files recorded before the workload
// subsystem moved onto shape specs: the declarative registry must
// reproduce the hand-rolled constructors' programs — and therefore the
// paper tables — bit for bit, at any parallelism (construction now
// happens inside the worker pool).
func TestGoldenTablesBitIdentical(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		got := renderGoldenTables(t, parallelism)
		for name, text := range got {
			path := filepath.Join("testdata", "golden_"+name+".txt")
			if *updateGolden && parallelism == 1 {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if text != string(want) {
				t.Errorf("parallelism %d: %s drifted from the pre-refactor golden bytes:\ngot:\n%s\nwant:\n%s",
					parallelism, name, text, want)
			}
		}
	}
}
