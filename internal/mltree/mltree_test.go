package mltree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// thresholdDataset labels rows by whether feature 0 exceeds cut, with a
// noisy irrelevant feature 1.
func thresholdDataset(n int, cut float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		FeatureNames: []string{"block_len", "noise"},
		ClassNames:   []string{"LBR", "EBS"},
	}
	for i := 0; i < n; i++ {
		x := rng.Float64() * 40
		y := 0
		if x > cut {
			y = 1
		}
		ds.X = append(ds.X, []float64{x, rng.Float64()})
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestLearnsThreshold(t *testing.T) {
	ds := thresholdDataset(2000, 18, 1)
	tree, err := Train(ds, Params{MaxDepth: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if tree.Root.IsLeaf() {
		t.Fatal("tree did not split")
	}
	if tree.Root.Feature != 0 {
		t.Fatalf("root split on feature %d, want 0", tree.Root.Feature)
	}
	if math.Abs(tree.Root.Threshold-18) > 1.0 {
		t.Errorf("root threshold %.2f, want about 18", tree.Root.Threshold)
	}
	// Perfect separability: predictions match labels.
	for i, x := range ds.X {
		if got := tree.Predict(x); got != ds.Y[i] {
			t.Fatalf("row %d: predicted %d, want %d", i, got, ds.Y[i])
		}
	}
	imp := tree.FeatureImportances()
	if imp[0] < 0.9 {
		t.Errorf("block_len importance %.3f, want > 0.9", imp[0])
	}
	if got := tree.PredictName([]float64{5, 0.5}); got != "LBR" {
		t.Errorf("PredictName(5) = %q, want LBR", got)
	}
	if got := tree.PredictName([]float64{30, 0.5}); got != "EBS" {
		t.Errorf("PredictName(30) = %q, want EBS", got)
	}
}

func TestWeightsDecideMajority(t *testing.T) {
	// Identical feature values force a mixed leaf; sample weights must
	// decide its class, mirroring the paper's execution-count weighting.
	train := func(w []float64) string {
		ds := &Dataset{
			FeatureNames: []string{"f"},
			ClassNames:   []string{"A", "B"},
			X:            [][]float64{{1}, {1}},
			Y:            []int{0, 1},
			W:            w,
		}
		tree, err := Train(ds, Params{MaxDepth: 3})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		if !tree.Root.IsLeaf() {
			t.Fatal("identical features must not split")
		}
		return tree.PredictName([]float64{1})
	}
	if got := train([]float64{1, 10}); got != "B" {
		t.Errorf("weights (1,10) predicted %q, want B", got)
	}
	if got := train([]float64{10, 1}); got != "A" {
		t.Errorf("weights (10,1) predicted %q, want A", got)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	ds := thresholdDataset(500, 10, 2)
	for _, depth := range []int{1, 2, 3} {
		tree, err := Train(ds, Params{MaxDepth: depth})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		if got := tree.Depth(); got > depth {
			t.Errorf("depth %d exceeds max %d", got, depth)
		}
	}
}

func TestMinLeafWeight(t *testing.T) {
	ds := thresholdDataset(200, 20, 3)
	tree, err := Train(ds, Params{MaxDepth: 8, MinLeafWeight: 30})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var check func(n *Node)
	check = func(n *Node) {
		if n.IsLeaf() {
			if n.Weight < 30 {
				t.Errorf("leaf weight %.0f below minimum 30", n.Weight)
			}
			return
		}
		check(n.Left)
		check(n.Right)
	}
	check(tree.Root)
}

func TestPureNodeStops(t *testing.T) {
	ds := &Dataset{
		FeatureNames: []string{"f"},
		ClassNames:   []string{"A", "B"},
		X:            [][]float64{{1}, {2}, {3}, {4}},
		Y:            []int{0, 0, 0, 0},
	}
	tree, err := Train(ds, Params{MaxDepth: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("pure dataset should produce a leaf-only tree")
	}
	if tree.Root.Gini != 0 {
		t.Errorf("pure node gini %.3f, want 0", tree.Root.Gini)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Dataset{
		{FeatureNames: []string{"f"}, ClassNames: []string{"A"}},                                                       // empty
		{FeatureNames: []string{"f"}, ClassNames: []string{"A"}, X: [][]float64{{1}}, Y: []int{0, 1}},                  // len mismatch
		{FeatureNames: []string{"f"}, ClassNames: []string{"A"}, X: [][]float64{{1, 2}}, Y: []int{0}},                  // row width
		{FeatureNames: []string{"f"}, ClassNames: []string{"A"}, X: [][]float64{{1}}, Y: []int{3}},                     // label range
		{FeatureNames: []string{"f"}, ClassNames: []string{"A"}, X: [][]float64{{1}}, Y: []int{0}, W: []float64{-1}},   // bad weight
		{FeatureNames: []string{"f"}, ClassNames: []string{"A"}, X: [][]float64{{1}}, Y: []int{0}, W: []float64{1, 2}}, // weight len
	}
	for i, ds := range cases {
		if _, err := Train(ds, Params{}); err == nil {
			t.Errorf("case %d: Train accepted invalid dataset", i)
		}
	}
}

func TestRenderContainsGiniAndSamples(t *testing.T) {
	ds := thresholdDataset(300, 18, 4)
	tree, err := Train(ds, Params{MaxDepth: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	out := tree.Render()
	for _, want := range []string{"gini", "samples", "block_len", "class = "} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	rule := tree.RootRule()
	if !strings.Contains(rule, "block_len <=") {
		t.Errorf("RootRule() = %q", rule)
	}
}

func TestGiniComputation(t *testing.T) {
	if g := gini([]float64{5, 5}, 10); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("gini(5,5) = %f, want 0.5", g)
	}
	if g := gini([]float64{10, 0}, 10); g != 0 {
		t.Errorf("gini(10,0) = %f, want 0", g)
	}
	if g := gini(nil, 0); g != 0 {
		t.Errorf("gini(empty) = %f, want 0", g)
	}
}

// Property: on any separable single-feature dataset, training achieves
// zero training error with enough depth.
func TestQuickSeparable(t *testing.T) {
	f := func(seed int64, cutRaw uint8) bool {
		cut := float64(cutRaw%30) + 1
		ds := thresholdDataset(300, cut, seed)
		tree, err := Train(ds, Params{MaxDepth: 6})
		if err != nil {
			return false
		}
		for i, x := range ds.X {
			if tree.Predict(x) != ds.Y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: feature importances are non-negative and sum to ~1 when any
// split happened.
func TestQuickImportancesNormalized(t *testing.T) {
	f := func(seed int64) bool {
		ds := thresholdDataset(200, 15, seed)
		tree, err := Train(ds, Params{MaxDepth: 4})
		if err != nil {
			return false
		}
		imp := tree.FeatureImportances()
		var sum float64
		for _, v := range imp {
			if v < 0 {
				return false
			}
			sum += v
		}
		return tree.Root.IsLeaf() || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
