// Package mltree implements CART-style classification trees (Breiman et
// al.), the "industry-standard Machine Learning method" the paper uses
// to learn the HBBP data-source rule (Section IV).
//
// The implementation covers exactly what the paper relies on: binary
// splits on numeric features chosen by Gini impurity decrease, depth and
// leaf-size limits, weighted training samples, scikit-style feature
// importances, and a white-box text rendering equivalent to Figure 1.
package mltree

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dataset is a labelled training set. Rows of X are feature vectors; Y
// holds class indices into ClassNames; W holds optional per-sample
// weights (nil means uniform). The paper weights blocks "by the number
// of executions of the basic block".
type Dataset struct {
	FeatureNames []string
	ClassNames   []string
	X            [][]float64
	Y            []int
	W            []float64
}

// Validate checks the dataset's structural consistency.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return fmt.Errorf("mltree: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("mltree: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.W != nil && len(d.W) != len(d.X) {
		return fmt.Errorf("mltree: %d rows but %d weights", len(d.X), len(d.W))
	}
	nf := len(d.FeatureNames)
	for i, row := range d.X {
		if len(row) != nf {
			return fmt.Errorf("mltree: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= len(d.ClassNames) {
			return fmt.Errorf("mltree: row %d has label %d outside %d classes", i, y, len(d.ClassNames))
		}
	}
	if d.W != nil {
		for i, w := range d.W {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("mltree: row %d has invalid weight %g", i, w)
			}
		}
	}
	return nil
}

// weight returns the weight of row i.
func (d *Dataset) weight(i int) float64 {
	if d.W == nil {
		return 1
	}
	return d.W[i]
}

// Params bound tree growth.
type Params struct {
	// MaxDepth limits tree depth (root = depth 0). Zero means 4 — the
	// paper keeps the rule small "for simplicity".
	MaxDepth int
	// MinLeafWeight is the minimum total sample weight in a leaf.
	// Zero means 1.
	MinLeafWeight float64
	// MinImpurityDecrease prunes splits that do not reduce weighted
	// Gini impurity by at least this much.
	MinImpurityDecrease float64
}

func (p Params) withDefaults() Params {
	if p.MaxDepth == 0 {
		p.MaxDepth = 4
	}
	if p.MinLeafWeight == 0 {
		p.MinLeafWeight = 1
	}
	return p
}

// Node is one tree node. Leaves have Left == Right == nil.
type Node struct {
	// Feature and Threshold define the split: rows with
	// x[Feature] <= Threshold go left. Valid on internal nodes only.
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	// Class is the majority class of the node's training samples.
	Class int
	// Gini is the node's Gini impurity.
	Gini float64
	// Weight is the total training weight reaching the node.
	Weight float64
	// Samples is the unweighted training row count reaching the node.
	Samples int
	// ClassWeights is the per-class training weight at the node.
	ClassWeights []float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a trained classifier.
type Tree struct {
	Root         *Node
	FeatureNames []string
	ClassNames   []string
	importances  []float64
}

// gini computes the Gini impurity of a class-weight vector with total w.
func gini(classW []float64, w float64) float64 {
	if w == 0 {
		return 0
	}
	s := 1.0
	for _, cw := range classW {
		p := cw / w
		s -= p * p
	}
	return s
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Train grows a classification tree on ds.
func Train(ds *Dataset, params Params) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	idx := make([]int, len(ds.X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{
		FeatureNames: ds.FeatureNames,
		ClassNames:   ds.ClassNames,
		importances:  make([]float64, len(ds.FeatureNames)),
	}
	t.Root = t.grow(ds, idx, 0, params)
	// Normalize importances.
	var tot float64
	for _, v := range t.importances {
		tot += v
	}
	if tot > 0 {
		for i := range t.importances {
			t.importances[i] /= tot
		}
	}
	return t, nil
}

// grow recursively builds the subtree over the rows in idx.
func (t *Tree) grow(ds *Dataset, idx []int, depth int, params Params) *Node {
	classW := make([]float64, len(ds.ClassNames))
	var total float64
	for _, i := range idx {
		w := ds.weight(i)
		classW[ds.Y[i]] += w
		total += w
	}
	node := &Node{
		Class:        argmax(classW),
		Gini:         gini(classW, total),
		Weight:       total,
		Samples:      len(idx),
		ClassWeights: classW,
	}
	if depth >= params.MaxDepth || node.Gini == 0 || total < 2*params.MinLeafWeight {
		return node
	}
	feature, threshold, decrease := bestSplit(ds, idx, classW, total, params)
	if feature < 0 || decrease < params.MinImpurityDecrease {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if ds.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.Feature = feature
	node.Threshold = threshold
	t.importances[feature] += decrease
	node.Left = t.grow(ds, left, depth+1, params)
	node.Right = t.grow(ds, right, depth+1, params)
	return node
}

// bestSplit scans every feature for the threshold maximising weighted
// Gini impurity decrease. It returns (-1, 0, 0) when no admissible split
// exists.
func bestSplit(ds *Dataset, idx []int, parentClassW []float64, total float64, params Params) (feature int, threshold, decrease float64) {
	parentGini := gini(parentClassW, total)
	feature = -1
	nClass := len(ds.ClassNames)

	order := make([]int, len(idx))
	leftW := make([]float64, nClass)
	for f := 0; f < len(ds.FeatureNames); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return ds.X[order[a]][f] < ds.X[order[b]][f] })
		for i := range leftW {
			leftW[i] = 0
		}
		var wLeft float64
		for k := 0; k+1 < len(order); k++ {
			i := order[k]
			w := ds.weight(i)
			leftW[ds.Y[i]] += w
			wLeft += w
			x, xNext := ds.X[i][f], ds.X[order[k+1]][f]
			if x == xNext {
				continue
			}
			wRight := total - wLeft
			if wLeft < params.MinLeafWeight || wRight < params.MinLeafWeight {
				continue
			}
			gLeft := gini(leftW, wLeft)
			// Right class weights = parent - left.
			gRight := giniComplement(parentClassW, leftW, wRight)
			childGini := (wLeft*gLeft + wRight*gRight) / total
			dec := (parentGini - childGini) * total
			if dec > decrease {
				decrease = dec
				feature = f
				threshold = (x + xNext) / 2
			}
		}
	}
	return feature, threshold, decrease
}

// giniComplement computes the Gini impurity of (parent - left) with
// total weight w, without allocating.
func giniComplement(parent, left []float64, w float64) float64 {
	if w == 0 {
		return 0
	}
	s := 1.0
	for i := range parent {
		p := (parent[i] - left[i]) / w
		s -= p * p
	}
	return s
}

// Predict returns the class index for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}

// PredictName returns the class name for a feature vector.
func (t *Tree) PredictName(x []float64) string {
	return t.ClassNames[t.Predict(x)]
}

// FeatureImportances returns the normalized total impurity decrease per
// feature — the quantity the paper quotes as "feature importance
// (reported by Scikit)".
func (t *Tree) FeatureImportances() []float64 {
	out := make([]float64, len(t.importances))
	copy(out, t.importances)
	return out
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeDepth(n *Node) int {
	if n.IsLeaf() {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if r > l {
		l = r
	}
	return l + 1
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Render returns a white-box text rendering of the tree in the style of
// the paper's Figure 1: each node shows its split, Gini impurity and
// training sample count, each leaf its class.
func (t *Tree) Render() string {
	var sb strings.Builder
	t.render(&sb, t.Root, "", true)
	return sb.String()
}

func (t *Tree) render(sb *strings.Builder, n *Node, indent string, isRoot bool) {
	if n.IsLeaf() {
		fmt.Fprintf(sb, "%sclass = %s (gini %.3f, samples %d, weight %.0f)\n",
			indent, t.ClassNames[n.Class], n.Gini, n.Samples, n.Weight)
		return
	}
	fmt.Fprintf(sb, "%s%s <= %.2f? (gini %.3f, samples %d, weight %.0f)\n",
		indent, t.FeatureNames[n.Feature], n.Threshold, n.Gini, n.Samples, n.Weight)
	childIndent := indent + "  "
	fmt.Fprintf(sb, "%s├─ yes:\n", indent)
	t.render(sb, n.Left, childIndent+"│ ", false)
	fmt.Fprintf(sb, "%s└─ no:\n", indent)
	t.render(sb, n.Right, childIndent, false)
}

// RootRule summarises the root split as a human-readable sentence, e.g.
// "block_len <= 18.50 -> LBR else EBS". It returns an empty string for a
// leaf-only tree.
func (t *Tree) RootRule() string {
	r := t.Root
	if r.IsLeaf() {
		return ""
	}
	return fmt.Sprintf("%s <= %.2f -> %s else %s",
		t.FeatureNames[r.Feature], r.Threshold,
		t.ClassNames[majorityClass(r.Left)], t.ClassNames[majorityClass(r.Right)])
}

func majorityClass(n *Node) int { return n.Class }
