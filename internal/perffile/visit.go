package perffile

import (
	"fmt"
	"io"
)

// Visitor receives records during a streaming Visit pass, in file
// order. The *Sample passed to VisitSample (including its Stack) is
// decoded into a reused buffer and is only valid for the duration of
// the call; implementations that retain sample data must copy it.
// Returning a non-nil error aborts the pass.
type Visitor interface {
	VisitComm(c Comm) error
	VisitMmap(m Mmap) error
	VisitSample(s *Sample) error
	VisitLost(l Lost) error
}

// Visit validates the header of rd and streams every record to v.
// Unlike the pull-style Reader.Next, the pass allocates no per-record
// memory, so replaying a file costs one decode per record and nothing
// else — the property the collector's replay path relies on.
func Visit(rd io.Reader, v Visitor) error {
	r, err := NewReader(rd)
	if err != nil {
		return err
	}
	return r.Visit(v)
}

// Visit streams the reader's remaining records to v.
func (r *Reader) Visit(v Visitor) error {
	var s Sample
	for {
		t, payload, err := r.readRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch t {
		case RecordComm:
			c, err := parseComm(payload)
			if err != nil {
				return err
			}
			if err := v.VisitComm(*c); err != nil {
				return err
			}
		case RecordMmap:
			m, err := parseMmap(payload)
			if err != nil {
				return err
			}
			if err := v.VisitMmap(*m); err != nil {
				return err
			}
		case RecordSample:
			if err := parseSampleInto(payload, &s); err != nil {
				return err
			}
			if err := v.VisitSample(&s); err != nil {
				return err
			}
		case RecordLost:
			l, err := parseLost(payload)
			if err != nil {
				return err
			}
			if err := v.VisitLost(*l); err != nil {
				return err
			}
		default:
			return fmt.Errorf("perffile: unknown record type %d", uint8(t))
		}
	}
}
