// Package perffile implements the raw collection file format — the
// reproduction's stand-in for Linux perf.data.
//
// The paper's collector "gathers raw data from perf at runtime, which is
// later processed to extract EBS and LBR samples". Keeping a real binary
// serialization boundary between collection and analysis preserves that
// pipeline shape: the collector only ever appends records, and the
// analyzer reconstructs everything from the file, including the process
// and memory-map metadata needed to attribute samples to modules.
//
// Format (all integers little-endian):
//
//	header:  magic "HBBPERF1" | uint32 version
//	record:  uint8 type | uint32 payloadLen | payload
//
// Record payloads:
//
//	Comm:   uint32 pid | uint16 len | name bytes
//	Mmap:   uint32 pid | uint64 start | uint64 size | uint8 ring |
//	        uint16 len | module name bytes
//	Sample: uint8 event | uint64 ip | uint8 ring | uint64 cycle |
//	        uint16 nbranch | nbranch x (uint64 from | uint64 to)
//	Lost:   uint64 count | uint8 event
//
// Version 2 added the event tag to LOST records so replayed files
// recover per-counter drop counts. Version-1 files still read: their
// LOST records carry Event 0 (unattributed).
//
// Files can be consumed two ways: the pull-style Reader.Next, which
// materializes each record, and the streaming Visit path, which
// decodes into reused buffers and hands records to a Visitor — the
// allocation-free spine of the collector's replay pipeline.
package perffile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies the file format.
const Magic = "HBBPERF1"

// Version is the current format version.
const Version uint32 = 2

// RecordType discriminates record payloads.
type RecordType uint8

// Record types.
const (
	RecordComm RecordType = iota + 1
	RecordMmap
	RecordSample
	RecordLost
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecordComm:
		return "COMM"
	case RecordMmap:
		return "MMAP"
	case RecordSample:
		return "SAMPLE"
	case RecordLost:
		return "LOST"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// Comm announces a process.
type Comm struct {
	PID  uint32
	Name string
}

// Mmap announces a module mapping, used for address-to-module
// attribution at analysis time.
type Mmap struct {
	PID    uint32
	Start  uint64
	Size   uint64
	Ring   uint8
	Module string
}

// Branch is one LBR entry in a sample record.
type Branch struct {
	From, To uint64
}

// Sample is one PMI capture.
type Sample struct {
	Event uint8
	IP    uint64
	Ring  uint8
	Cycle uint64
	Stack []Branch
}

// Lost reports dropped samples for one sampling event.
type Lost struct {
	Count uint64
	Event uint8
}

// Writer appends records to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) record(t RecordType, payload []byte) {
	if w.err != nil {
		return
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
	}
}

// WriteComm appends a process record.
func (w *Writer) WriteComm(c Comm) {
	b := w.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, c.PID)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
	b = append(b, c.Name...)
	w.buf = b
	w.record(RecordComm, b)
}

// WriteMmap appends a mapping record.
func (w *Writer) WriteMmap(m Mmap) {
	b := w.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, m.PID)
	b = binary.LittleEndian.AppendUint64(b, m.Start)
	b = binary.LittleEndian.AppendUint64(b, m.Size)
	b = append(b, m.Ring)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Module)))
	b = append(b, m.Module...)
	w.buf = b
	w.record(RecordMmap, b)
}

// WriteSample appends a sample record.
func (w *Writer) WriteSample(s Sample) {
	b := w.buf[:0]
	b = append(b, s.Event)
	b = binary.LittleEndian.AppendUint64(b, s.IP)
	b = append(b, s.Ring)
	b = binary.LittleEndian.AppendUint64(b, s.Cycle)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Stack)))
	for _, br := range s.Stack {
		b = binary.LittleEndian.AppendUint64(b, br.From)
		b = binary.LittleEndian.AppendUint64(b, br.To)
	}
	w.buf = b
	w.record(RecordSample, b)
}

// WriteLost appends a lost-samples record.
func (w *Writer) WriteLost(l Lost) {
	b := w.buf[:0]
	b = binary.LittleEndian.AppendUint64(b, l.Count)
	b = append(b, l.Event)
	w.buf = b
	w.record(RecordLost, b)
}

// Flush flushes buffered records and reports any deferred write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader iterates over a file's records.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// Sentinel errors for malformed streams. Parse failures wrap one of
// these, so callers classify them with errors.Is regardless of the
// contextual detail in the message.
var (
	// ErrBadMagic reports a stream that is not a perffile.
	ErrBadMagic = errors.New("perffile: bad magic")
	// ErrTruncatedRecord reports a stream that ends (or claims a
	// length) mid-record: a record header, payload or variable-length
	// field is shorter than its declared size.
	ErrTruncatedRecord = errors.New("perffile: truncated record")
	// ErrUnsupportedVersion reports a valid header whose format version
	// this package cannot read.
	ErrUnsupportedVersion = errors.New("perffile: unsupported version")
)

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(Magic)+4)
	if _, err := io.ReadFull(br, head); err != nil {
		// A stream that ends inside (or before) the header — empty
		// files included — is truncated; any other I/O failure keeps
		// its own identity.
		return nil, classifyReadError("header", err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	// Version 1 differs only in the LOST payload (no event tag), so
	// both versions read through the same parsers.
	if v := binary.LittleEndian.Uint32(head[len(Magic):]); v != Version && v != 1 {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedVersion, v)
	}
	return &Reader{r: br}, nil
}

// classifyReadError maps a mid-record read failure to the sentinel it
// deserves: a stream that ends early is a truncated record, while any
// other I/O failure (a broken pipe, a transient network error) keeps
// its own identity so callers do not mistake a retryable read for
// file corruption. The cause stays on the unwrap chain either way.
func classifyReadError(what string, err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %s: %w", ErrTruncatedRecord, what, err)
	}
	return fmt.Errorf("perffile: reading %s: %w", what, err)
}

// readRecord pulls the next raw record into the reader's reused
// buffer. The payload slice is only valid until the next call.
func (r *Reader) readRecord() (RecordType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("perffile: reading record type: %w", err)
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		return 0, nil, classifyReadError("record length", err)
	}
	t := RecordType(hdr[0])
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > 1<<24 {
		return 0, nil, fmt.Errorf("perffile: implausible record size %d", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return 0, nil, classifyReadError(fmt.Sprintf("%v payload", t), err)
	}
	return t, payload, nil
}

// Next returns the next record as one of *Comm, *Mmap, *Sample or
// *Lost. It returns io.EOF at end of stream.
func (r *Reader) Next() (any, error) {
	t, payload, err := r.readRecord()
	if err != nil {
		return nil, err
	}
	switch t {
	case RecordComm:
		return parseComm(payload)
	case RecordMmap:
		return parseMmap(payload)
	case RecordSample:
		s := new(Sample)
		if err := parseSampleInto(payload, s); err != nil {
			return nil, err
		}
		return s, nil
	case RecordLost:
		return parseLost(payload)
	}
	return nil, fmt.Errorf("perffile: unknown record type %d", uint8(t))
}

func parseComm(b []byte) (*Comm, error) {
	if len(b) < 6 {
		return nil, fmt.Errorf("%w: short COMM record", ErrTruncatedRecord)
	}
	n := int(binary.LittleEndian.Uint16(b[4:6]))
	if len(b) < 6+n {
		return nil, fmt.Errorf("%w: COMM name", ErrTruncatedRecord)
	}
	return &Comm{
		PID:  binary.LittleEndian.Uint32(b),
		Name: string(b[6 : 6+n]),
	}, nil
}

func parseMmap(b []byte) (*Mmap, error) {
	if len(b) < 23 {
		return nil, fmt.Errorf("%w: short MMAP record", ErrTruncatedRecord)
	}
	n := int(binary.LittleEndian.Uint16(b[21:23]))
	if len(b) < 23+n {
		return nil, fmt.Errorf("%w: MMAP name", ErrTruncatedRecord)
	}
	return &Mmap{
		PID:    binary.LittleEndian.Uint32(b),
		Start:  binary.LittleEndian.Uint64(b[4:]),
		Size:   binary.LittleEndian.Uint64(b[12:]),
		Ring:   b[20],
		Module: string(b[23 : 23+n]),
	}, nil
}

// parseSampleInto decodes a SAMPLE payload into s, reusing s.Stack's
// backing array when it is large enough.
func parseSampleInto(b []byte, s *Sample) error {
	if len(b) < 20 {
		return fmt.Errorf("%w: short SAMPLE record", ErrTruncatedRecord)
	}
	s.Event = b[0]
	s.IP = binary.LittleEndian.Uint64(b[1:])
	s.Ring = b[9]
	s.Cycle = binary.LittleEndian.Uint64(b[10:])
	nb := int(binary.LittleEndian.Uint16(b[18:20]))
	if len(b) < 20+16*nb {
		return fmt.Errorf("%w: SAMPLE stack", ErrTruncatedRecord)
	}
	s.Stack = s.Stack[:0]
	if nb > 0 {
		if cap(s.Stack) < nb {
			s.Stack = make([]Branch, 0, nb)
		}
		off := 20
		for i := 0; i < nb; i++ {
			s.Stack = append(s.Stack, Branch{
				From: binary.LittleEndian.Uint64(b[off:]),
				To:   binary.LittleEndian.Uint64(b[off+8:]),
			})
			off += 16
		}
	}
	return nil
}

func parseLost(b []byte) (*Lost, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: short LOST record", ErrTruncatedRecord)
	}
	l := &Lost{Count: binary.LittleEndian.Uint64(b)}
	// Version-1 records end after the count; their drops stay
	// unattributed (Event 0 is the plain counting event).
	if len(b) >= 9 {
		l.Event = b[8]
	}
	return l, nil
}
