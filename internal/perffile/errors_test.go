package perffile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// validFile serializes a small well-formed perffile for corruption
// tests.
func validFile(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.WriteComm(Comm{PID: 1, Name: "prog"})
	w.WriteMmap(Mmap{PID: 1, Start: 0x1000, Size: 0x100, Module: "prog.bin"})
	w.WriteSample(Sample{Event: 1, IP: 0x1004, Cycle: 7,
		Stack: []Branch{{From: 0x1008, To: 0x1000}}})
	w.WriteLost(Lost{Count: 3, Event: 1})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// drain consumes every record of a stream and returns the first error.
func drain(raw []byte) error {
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestBadMagicIsTyped(t *testing.T) {
	raw := validFile(t)
	raw[0] = 'X'
	err := drain(raw)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("corrupted magic: got %v, want errors.Is(ErrBadMagic)", err)
	}
	if errors.Is(err, ErrTruncatedRecord) || errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("bad magic matched an unrelated sentinel: %v", err)
	}
}

func TestUnsupportedVersionIsTyped(t *testing.T) {
	raw := validFile(t)
	binary.LittleEndian.PutUint32(raw[len(Magic):], 99)
	if err := drain(raw); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version 99: got %v, want errors.Is(ErrUnsupportedVersion)", err)
	}
	// Version 1 must still read (LOST records lose their event tag
	// only).
	binary.LittleEndian.PutUint32(raw[len(Magic):], 1)
	if err := drain(raw); err != nil {
		t.Fatalf("version 1 stream should read, got %v", err)
	}
}

// TestTruncationIsTyped chops a valid stream at every byte boundary:
// any cut after the header must surface as ErrTruncatedRecord (clean
// record boundaries read to EOF instead).
func TestTruncationIsTyped(t *testing.T) {
	raw := validFile(t)
	header := len(Magic) + 4
	var truncated int
	for cut := header; cut < len(raw); cut++ {
		err := drain(raw[:cut])
		if err == nil {
			continue // cut landed on a record boundary
		}
		if !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("cut at %d/%d: got %v, want errors.Is(ErrTruncatedRecord)", cut, len(raw), err)
		}
		truncated++
	}
	if truncated == 0 {
		t.Fatal("no cut produced a truncation error; test is vacuous")
	}
	// A partial header is a truncated stream too — and so is an empty
	// one (e.g. a raw file from a run that died before the header),
	// so every malformed input classifies under some sentinel.
	if err := drain(raw[:header/2]); !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("partial header: got %v, want errors.Is(ErrTruncatedRecord)", err)
	}
	if err := drain(nil); !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("empty stream: got %v, want errors.Is(ErrTruncatedRecord)", err)
	}
}

// flakyReader serves a prefix of a stream, then fails with a non-EOF
// I/O error — a transient transport failure, not a truncated file.
type flakyReader struct {
	data []byte
	off  int
	err  error
}

func (f *flakyReader) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, f.err
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

// TestIOErrorsAreNotTruncation asserts a genuine read failure
// mid-stream keeps its own identity — it must not satisfy
// errors.Is(ErrTruncatedRecord), and the cause must stay on the
// unwrap chain.
func TestIOErrorsAreNotTruncation(t *testing.T) {
	raw := validFile(t)
	cause := errors.New("connection reset")
	r, err := NewReader(&flakyReader{data: raw[:len(raw)-3], err: cause})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, cause) {
		t.Errorf("I/O cause lost from the unwrap chain: %v", err)
	}
	if errors.Is(err, ErrTruncatedRecord) {
		t.Errorf("transient I/O failure misclassified as truncation: %v", err)
	}
}

// TestTruncationKeepsEOFCause asserts the truncation sentinel still
// carries the underlying io error for unwrap-based handling.
func TestTruncationKeepsEOFCause(t *testing.T) {
	raw := validFile(t)
	err := drain(raw[:len(raw)-3])
	if !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("cut stream returned %v, want ErrTruncatedRecord", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Errorf("truncation dropped the io cause from the unwrap chain: %v", err)
	}
}

// TestPayloadLengthLies corrupts declared lengths inside otherwise
// intact payloads: a COMM name length pointing past the payload end
// must be a typed truncation, not a crash.
func TestPayloadLengthLies(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.WriteComm(Comm{PID: 1, Name: "prog"})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	raw := buf.Bytes()
	// COMM payload starts after header(12) + record header(5); its name
	// length field is at offset 4 of the payload.
	nameLen := len(Magic) + 4 + 5 + 4
	binary.LittleEndian.PutUint16(raw[nameLen:], 500)
	if err := drain(raw); !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("lying COMM name length: got %v, want errors.Is(ErrTruncatedRecord)", err)
	}
}
