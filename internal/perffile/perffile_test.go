package perffile

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.WriteComm(Comm{PID: 42, Name: "fitter"})
	w.WriteMmap(Mmap{PID: 42, Start: 0x400000, Size: 0x2000, Ring: 0, Module: "fitter"})
	w.WriteMmap(Mmap{PID: 0, Start: 0xffffffff81000000, Size: 0x100000, Ring: 1, Module: "vmlinux"})
	w.WriteSample(Sample{Event: 1, IP: 0x400123, Ring: 0, Cycle: 999,
		Stack: []Branch{{From: 0x400100, To: 0x400050}, {From: 0x400080, To: 0x400100}}})
	w.WriteSample(Sample{Event: 2, IP: 0x400999, Ring: 0, Cycle: 1234})
	w.WriteLost(Lost{Count: 7})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rec1, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	c, ok := rec1.(*Comm)
	if !ok || c.PID != 42 || c.Name != "fitter" {
		t.Fatalf("record 1 = %#v", rec1)
	}
	rec2, _ := r.Next()
	m, ok := rec2.(*Mmap)
	if !ok || m.Start != 0x400000 || m.Module != "fitter" {
		t.Fatalf("record 2 = %#v", rec2)
	}
	rec3, _ := r.Next()
	k := rec3.(*Mmap)
	if k.Ring != 1 || k.Module != "vmlinux" {
		t.Fatalf("record 3 = %#v", rec3)
	}
	rec4, _ := r.Next()
	s := rec4.(*Sample)
	if s.Event != 1 || s.IP != 0x400123 || len(s.Stack) != 2 || s.Stack[1].From != 0x400080 {
		t.Fatalf("record 4 = %#v", rec4)
	}
	rec5, _ := r.Next()
	if s := rec5.(*Sample); s.Stack != nil {
		t.Fatalf("record 5 should have empty stack: %#v", rec5)
	}
	rec6, _ := r.Next()
	if l := rec6.(*Lost); l.Count != 7 {
		t.Fatalf("record 6 = %#v", rec6)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTAPERF\x01\x00\x00\x00")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte(Magic + "\x09\x00\x00\x00")))
	if err == nil {
		t.Fatal("unsupported version accepted")
	}
}

// TestReadsVersion1 pins backward compatibility: files written before
// the LOST event tag (version 1, 8-byte LOST payload) still read, with
// their drops unattributed.
func TestReadsVersion1(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{1, 0, 0, 0}) // version 1
	// One v1 LOST record: count only, no event byte.
	buf.Write([]byte{byte(RecordLost), 8, 0, 0, 0})
	buf.Write([]byte{7, 0, 0, 0, 0, 0, 0, 0})
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader on v1 stream: %v", err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	l, ok := rec.(*Lost)
	if !ok || l.Count != 7 || l.Event != 0 {
		t.Fatalf("v1 LOST = %#v, want count 7, event 0", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteSample(Sample{Event: 1, IP: 1, Cycle: 2, Stack: []Branch{{1, 2}}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop the stream mid-record at several points; the reader must
	// error rather than fabricate data.
	for cut := len(Magic) + 5; cut < len(full)-1; cut += 3 {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header itself truncated: acceptable failure
		}
		if _, err := r.Next(); err == nil {
			t.Errorf("cut at %d: truncated record parsed without error", cut)
		}
	}
}

// Property: arbitrary batches of samples round-trip exactly.
func TestQuickSampleRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%32 + 1
		in := make([]Sample, n)
		for i := range in {
			s := Sample{
				Event: uint8(rng.Intn(3)),
				IP:    rng.Uint64(),
				Ring:  uint8(rng.Intn(2)),
				Cycle: rng.Uint64(),
			}
			for j := rng.Intn(17); j > 0; j-- {
				s.Stack = append(s.Stack, Branch{From: rng.Uint64(), To: rng.Uint64()})
			}
			in[i] = s
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, s := range in {
			w.WriteSample(s)
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range in {
			rec, err := r.Next()
			if err != nil {
				return false
			}
			got, ok := rec.(*Sample)
			if !ok || got.Event != want.Event || got.IP != want.IP ||
				got.Ring != want.Ring || got.Cycle != want.Cycle ||
				len(got.Stack) != len(want.Stack) {
				return false
			}
			for i := range want.Stack {
				if got.Stack[i] != want.Stack[i] {
					return false
				}
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeString(t *testing.T) {
	for _, rt := range []RecordType{RecordComm, RecordMmap, RecordSample, RecordLost} {
		if rt.String() == "" {
			t.Errorf("RecordType(%d) has empty name", rt)
		}
	}
}
