// Package bbec turns raw PMU samples into basic block execution count
// (BBEC) estimates — the EBS and LBR estimators of Section III.
//
// Both estimators return per-block expected execution counts in the same
// units the ground truth uses, so the downstream HBBP chooser and the
// error metrics can compare them directly.
package bbec

import (
	"hbbp/internal/program"
)

// Branch mirrors one LBR entry (source, target). It is structurally
// identical to pmu.BranchRecord and perffile.Branch; the estimator keeps
// its own type so it depends on neither collection path.
type Branch struct {
	From, To uint64
}

// FromEBS computes BBECs from EBS-style IP samples (the paper's enhanced
// EBS): every sampled IP is credited to all instructions of the
// enclosing block — if one instruction of the block retired, the whole
// block did — and the per-block total is divided by the block's
// instruction length to recover executions. Each sample represents
// `period` retirements.
//
// Samples landing outside any known block (skid past a block boundary
// into padding, or kernel addresses with no symbols) are dropped and
// counted in the second return value.
func FromEBS(p *program.Program, ips []uint64, period uint64) (counts []float64, dropped int) {
	counts = make([]float64, p.NumBlocks())
	perBlock := make([]uint64, p.NumBlocks())
	for _, ip := range ips {
		blk := p.BlockAt(ip)
		if blk == nil {
			dropped++
			continue
		}
		perBlock[blk.ID]++
	}
	for id, n := range perBlock {
		if n == 0 {
			continue
		}
		blk := p.BlockByID(id)
		counts[id] = float64(n) * float64(period) / float64(blk.Len())
	}
	return counts, dropped
}

// LBROptions configures the LBR stream walker.
type LBROptions struct {
	// KernelLivePatched indicates the static kernel text has been
	// re-patched from the live image (Section III.C's remedy), so
	// trace-point blocks are known to fall through. When false, the
	// walker sees a static unconditional JMP mid-stream, concludes the
	// stream is corrupt and stops crediting blocks past it —
	// reproducing the undercount the paper observed on kernel code.
	KernelLivePatched bool
	// MaxStreamBytes is a sanity bound on the address span of one
	// stream. Genuine streams are short (code between two taken
	// branches); corrupt records — merged entries, missed branches —
	// can span arbitrary code and would smear counts across whole
	// modules if credited. Streams wider than the bound are dropped.
	// Zero means DefaultMaxStreamBytes.
	MaxStreamBytes uint64
	// ArchDepth is the architectural LBR depth used for weight
	// normalization. Stacks delivered shorter than the architectural
	// depth (context switches, the entry[0] anomaly) still normalize
	// by ArchDepth-1: the missing streams are lost, not re-weighted
	// onto the survivors. Zero means 16.
	ArchDepth int
}

// DefaultMaxStreamBytes is the default stream-span sanity bound.
const DefaultMaxStreamBytes = 1024

// FromLBR computes BBECs from LBR stack samples. Each stack of N entries
// (entry[0] oldest) yields N-1 streams <Target[i-1], Source[i]>; every
// block on the straight-line path covered by a stream executed. To
// normalize the N-1 streams to a single sample each stream gets weight
// 1/(N-1); each sample represents `period` retired taken branches, so a
// block's estimated execution count is its accumulated weight times the
// period.
//
// It returns the per-block estimates and the number of streams dropped
// because an endpoint was unmapped.
func FromLBR(p *program.Program, stacks [][]Branch, period uint64, opts LBROptions) (counts []float64, droppedStreams int) {
	maxSpan := opts.MaxStreamBytes
	if maxSpan == 0 {
		maxSpan = DefaultMaxStreamBytes
	}
	archDepth := opts.ArchDepth
	if archDepth == 0 {
		archDepth = 16
	}
	weights := make([]float64, p.NumBlocks())
	for _, stack := range stacks {
		if len(stack) < 2 {
			continue
		}
		norm := len(stack) - 1
		if norm < archDepth-1 {
			norm = archDepth - 1
		}
		w := 1 / float64(norm)
		for i := 1; i < len(stack); i++ {
			from, to := stack[i-1].To, stack[i].From
			if to < from || to-from > maxSpan {
				droppedStreams++
				continue
			}
			blocks := p.BlocksBetween(from, to)
			if blocks == nil {
				droppedStreams++
				continue
			}
			for j, blk := range blocks {
				weights[blk.ID] += w
				if !opts.KernelLivePatched && blk.TraceJump && j < len(blocks)-1 {
					// Static text shows an unconditional JMP here, yet
					// the stream continues past it: treat the rest as
					// unreliable.
					break
				}
			}
		}
	}
	counts = make([]float64, p.NumBlocks())
	for id, w := range weights {
		counts[id] = w * float64(period)
	}
	return counts, droppedStreams
}

// BiasStat records how often one branch source appeared in sampled
// stacks and how often it was pinned at entry[0].
type BiasStat struct {
	Entry0  uint64 // stacks with this source at entry[0]
	Present uint64 // stacks containing this source anywhere
	Copies  uint64 // total entries carrying this source across all stacks
}

// Entry0Fraction returns Entry0/Present, or 0 when unseen.
func (s BiasStat) Entry0Fraction() float64 {
	if s.Present == 0 {
		return 0
	}
	return float64(s.Entry0) / float64(s.Present)
}

// ExpectedEntry0Fraction returns the entry[0] occupancy an unbiased
// branch with this occupancy profile would show: a branch holding k of
// the depth entries of a stack lands at entry[0] with probability k/depth.
// Tight loops legitimately occupy many entries per stack, so anomaly
// detection must compare against this baseline rather than 1/depth.
func (s BiasStat) ExpectedEntry0Fraction(depth int) float64 {
	if s.Present == 0 || depth <= 0 {
		return 0
	}
	f := float64(s.Copies) / float64(s.Present) / float64(depth)
	if f > 1 {
		return 1
	}
	return f
}

// BiasReport is the outcome of LBR bias detection.
type BiasReport struct {
	// BlockBias flags, per block ID, blocks terminated by a branch that
	// shows the entry[0] anomaly — the "bias flag" of Section III.C.
	BlockBias []bool
	// Branches holds the per-branch-source statistics.
	Branches map[uint64]BiasStat
}

// BiasOptions configures anomaly detection.
type BiasOptions struct {
	// Threshold is the factor by which a branch's observed entry[0]
	// occupancy must exceed its expected occupancy (Copies/Present/
	// Depth) before it is declared biased, with an absolute floor of
	// FloorFraction.
	Threshold float64
	// FloorFraction is the minimum absolute entry[0] fraction for a
	// biased verdict, keeping sparse noise out.
	FloorFraction float64
	// Depth is the architectural LBR depth used for the expected
	// occupancy baseline. Zero means 16.
	Depth int
	// MinPresent is the minimum number of stacks a branch must appear
	// in before it can be judged, to avoid flagging noise.
	MinPresent uint64
	// DamageShare is the fraction of a block's LBR stream coverage
	// that must come from streams closing at a biased branch before
	// the block is flagged. Blocks mostly covered through such streams
	// lose a large part of their counts to the anomaly; blocks only
	// occasionally covered are barely affected.
	DamageShare float64
}

// DefaultBiasOptions returns the detection thresholds used by the tool.
func DefaultBiasOptions() BiasOptions {
	return BiasOptions{
		Threshold:     2.5,
		FloorFraction: 0.15,
		Depth:         16,
		MinPresent:    8,
		DamageShare:   0.60,
	}
}

// DetectBias scans LBR stacks for branches that occur disproportionately
// at entry[0] and flags the blocks whose LBR counts the anomaly
// distorts: a biased branch's closing stream (the blocks between the
// previous target and the branch) goes uncounted whenever the branch is
// pinned at entry[0], and the streams adjacent to it absorb the
// mis-normalised weight. The flag therefore propagates to every block
// observed in streams ending at or starting just after a biased branch.
func DetectBias(p *program.Program, stacks [][]Branch, opts BiasOptions) BiasReport {
	if opts.Threshold == 0 {
		opts = DefaultBiasOptions()
	}
	depth := opts.Depth
	if depth == 0 {
		depth = 16
	}
	stats := make(map[uint64]*BiasStat)
	for _, stack := range stacks {
		for i, rec := range stack {
			s := stats[rec.From]
			if s == nil {
				s = &BiasStat{}
				stats[rec.From] = s
			}
			s.Copies++
			// First occurrence within this stack? Stacks are at most the
			// architectural depth, so a linear scan of the preceding
			// entries beats a per-stack seen map.
			first := true
			for j := 0; j < i; j++ {
				if stack[j].From == rec.From {
					first = false
					break
				}
			}
			if first {
				s.Present++
				if i == 0 {
					s.Entry0++
				}
			}
		}
	}
	branches := make(map[uint64]BiasStat, len(stats))
	for addr, s := range stats {
		branches[addr] = *s
	}
	report := BiasReport{
		BlockBias: make([]bool, p.NumBlocks()),
		Branches:  branches,
	}
	biased := make(map[uint64]bool)
	for addr, s := range stats {
		if s.Present < opts.MinPresent {
			continue
		}
		got := s.Entry0Fraction()
		want := s.ExpectedEntry0Fraction(depth)
		if got <= opts.FloorFraction || got <= opts.Threshold*want {
			continue
		}
		biased[addr] = true
		if blk := p.BlockAt(addr); blk != nil {
			report.BlockBias[blk.ID] = true
		}
	}
	if len(biased) == 0 {
		return report
	}
	// Propagation pass: when a biased branch is in the LBR window, the
	// anomalous read can drop every entry older than it, so all
	// coverage delivered alongside a biased branch is threatened. A
	// block whose coverage comes mostly from such stacks is
	// systematically undercounted and gets the flag; blocks with
	// plenty of coverage away from biased branches do not.
	damageShare := opts.DamageShare
	if damageShare == 0 {
		damageShare = DefaultBiasOptions().DamageShare
	}
	threatened := make([]float64, p.NumBlocks())
	total := make([]float64, p.NumBlocks())
	for _, stack := range stacks {
		hasBiased := false
		for _, rec := range stack {
			if biased[rec.From] {
				hasBiased = true
				break
			}
		}
		for i := 1; i < len(stack); i++ {
			for _, blk := range p.BlocksBetween(stack[i-1].To, stack[i].From) {
				total[blk.ID]++
				if hasBiased {
					threatened[blk.ID]++
				}
			}
		}
	}
	for id := range total {
		if total[id] > 0 && threatened[id]/total[id] > damageShare {
			report.BlockBias[id] = true
		}
	}
	return report
}
