package bbec

import (
	"math"
	"testing"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// chainProgram builds fn with blocks A(3) -> B(2) -> C(4) -> ret, plus a
// kernel function with a trace point, for walker tests.
func chainProgram(t testing.TB) (*program.Program, []*program.Block, []*program.Block) {
	t.Helper()
	b := program.NewBuilder("bbec")
	mod := b.Module("m", program.RingUser)
	kmod := b.Module("k", program.RingKernel)

	f := b.Function(mod, "f")
	a := b.Block(f, isa.MOV, isa.ADD) // +JMP-less: falls through
	bb := b.Block(f, isa.SUB)         // 1 op
	c := b.Block(f, isa.CMP, isa.MOV, isa.ADD)
	b.Fallthrough(a, bb)
	b.Fallthrough(bb, c)
	b.Return(c)

	kf := b.Function(kmod, "kfn")
	k1 := b.Block(kf, isa.MOV)
	k2 := b.Block(kf, isa.ADD)
	k3 := b.Block(kf, isa.SUB)
	b.TracePoint(k1, k2)
	b.Fallthrough(k2, k3)
	b.Return(k3)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, []*program.Block{a, bb, c}, []*program.Block{k1, k2, k3}
}

func TestFromEBSDividesByLength(t *testing.T) {
	p, blocks, _ := chainProgram(t)
	a := blocks[0] // len 2
	c := blocks[2] // len 4 (CMP MOV ADD RET)
	ips := []uint64{
		a.Addr, a.Addr, a.InstAddrs()[1], // 3 samples in a (len 2)
		c.Addr, c.InstAddrs()[3], // 2 samples in c (len 4)
		0xdead, // unmapped
	}
	counts, dropped := FromEBS(p, ips, 100)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if want := 3.0 * 100 / 2; counts[a.ID] != want {
		t.Errorf("block a = %v, want %v", counts[a.ID], want)
	}
	if want := 2.0 * 100 / 4; counts[c.ID] != want {
		t.Errorf("block c = %v, want %v", counts[c.ID], want)
	}
	if counts[blocks[1].ID] != 0 {
		t.Errorf("unsampled block = %v, want 0", counts[blocks[1].ID])
	}
}

func TestFromLBRStreamCoverage(t *testing.T) {
	p, blocks, _ := chainProgram(t)
	a, bb, c := blocks[0], blocks[1], blocks[2]
	// Stack with 3 entries = 2 streams; the second stream covers a..c's
	// return: target a.Addr, source c's RET.
	ret := c.LastAddr()
	stack := []Branch{
		{From: 0x999, To: a.Addr}, // entry[0]: source unusable
		{From: ret, To: 0x111},    // stream 1: a.Addr .. ret
		{From: ret, To: 0x111},    // stream 2: invalid (0x111 unmapped -> dropped)
	}
	counts, dropped := FromLBR(p, [][]Branch{stack}, 50, LBROptions{ArchDepth: 3})
	// Stream 1 weight = 1/2, so each covered block gets 0.5*50 = 25.
	for _, blk := range []*program.Block{a, bb, c} {
		if math.Abs(counts[blk.ID]-25) > 1e-9 {
			t.Errorf("%v = %v, want 25", blk, counts[blk.ID])
		}
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestFromLBRSpanCap(t *testing.T) {
	p, blocks, _ := chainProgram(t)
	a := blocks[0]
	// A stream claiming to span from user code far beyond the cap.
	stack := []Branch{
		{From: 1, To: a.Addr},
		{From: a.Addr + 5000, To: 2},
	}
	counts, dropped := FromLBR(p, [][]Branch{stack}, 50, LBROptions{MaxStreamBytes: 1024})
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (span cap)", dropped)
	}
	if counts[a.ID] != 0 {
		t.Errorf("capped stream credited block a: %v", counts[a.ID])
	}
	// Backward stream also dropped.
	back := []Branch{
		{From: 1, To: a.Addr + 100},
		{From: a.Addr, To: 2},
	}
	_, dropped = FromLBR(p, [][]Branch{back}, 50, LBROptions{})
	if dropped != 1 {
		t.Errorf("backward stream dropped = %d, want 1", dropped)
	}
}

func TestFromLBRTracePointHandling(t *testing.T) {
	p, _, kblocks := chainProgram(t)
	k1, k2, k3 := kblocks[0], kblocks[1], kblocks[2]
	// A stream covering k1..k3 (the live kernel falls through the
	// patched trace point).
	stack := []Branch{
		{From: 0x42, To: k1.Addr},
		{From: k3.LastAddr(), To: 0x43},
	}
	// Without live patching: the walker sees k1's static JMP and stops.
	counts, _ := FromLBR(p, [][]Branch{stack}, 10, LBROptions{KernelLivePatched: false})
	if counts[k1.ID] == 0 {
		t.Error("trace-point block itself should be credited")
	}
	if counts[k2.ID] != 0 || counts[k3.ID] != 0 {
		t.Errorf("blocks past the static JMP credited: k2=%v k3=%v",
			counts[k2.ID], counts[k3.ID])
	}
	// With live patching: the full stream is credited.
	counts, _ = FromLBR(p, [][]Branch{stack}, 10, LBROptions{KernelLivePatched: true})
	for _, blk := range kblocks {
		if counts[blk.ID] == 0 {
			t.Errorf("%v not credited with live patching", blk)
		}
	}
}

func TestFromLBRShortStacks(t *testing.T) {
	p, blocks, _ := chainProgram(t)
	// Single-entry stacks carry no streams and must be ignored.
	counts, dropped := FromLBR(p, [][]Branch{{{From: 1, To: 2}}}, 10, LBROptions{})
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
	for _, blk := range blocks {
		if counts[blk.ID] != 0 {
			t.Errorf("%v credited from empty stream set", blk)
		}
	}
}

func TestDetectBiasFlagsHighEntry0(t *testing.T) {
	p, blocks, _ := chainProgram(t)
	c := blocks[2]
	ret := c.LastAddr()
	other := blocks[0].Addr // pretend another branch source inside a
	var stacks [][]Branch
	// "ret" appears at entry[0] in half its stacks; "other" never does.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			stacks = append(stacks, []Branch{{From: ret, To: 1}, {From: other, To: 2}})
		} else {
			stacks = append(stacks, []Branch{{From: other, To: 1}, {From: ret, To: 2}})
		}
	}
	rep := DetectBias(p, stacks, BiasOptions{Threshold: 0.2, MinPresent: 5})
	if !rep.BlockBias[c.ID] {
		t.Error("block with biased branch not flagged")
	}
	st := rep.Branches[ret]
	if st.Present != 20 || st.Entry0 != 10 {
		t.Errorf("stats for biased branch: %+v", st)
	}
	if f := st.Entry0Fraction(); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("Entry0Fraction = %v", f)
	}
}

func TestDetectBiasIgnoresRareAndUniform(t *testing.T) {
	p, blocks, _ := chainProgram(t)
	c := blocks[2]
	ret := c.LastAddr()
	// Appears at entry[0] always but only 3 times: below MinPresent.
	var stacks [][]Branch
	for i := 0; i < 3; i++ {
		stacks = append(stacks, []Branch{{From: ret, To: 1}, {From: 0x5, To: 2}})
	}
	rep := DetectBias(p, stacks, BiasOptions{Threshold: 0.2, MinPresent: 8})
	if rep.BlockBias[c.ID] {
		t.Error("rare branch flagged despite MinPresent")
	}
	// Uniform occupancy (1 in 16) stays below the threshold.
	stacks = nil
	for i := 0; i < 160; i++ {
		stack := make([]Branch, 16)
		for j := range stack {
			stack[j] = Branch{From: uint64(1000 + j), To: uint64(2000 + j)}
		}
		if i%16 == 0 {
			stack[0] = Branch{From: ret, To: 1}
		} else {
			stack[(i%15)+1] = Branch{From: ret, To: 1}
		}
		stacks = append(stacks, stack)
	}
	rep = DetectBias(p, stacks, DefaultBiasOptions())
	if rep.BlockBias[c.ID] {
		t.Error("uniformly placed branch flagged as biased")
	}
}

func TestBiasStatZeroValue(t *testing.T) {
	var s BiasStat
	if s.Entry0Fraction() != 0 {
		t.Error("zero-value BiasStat should have fraction 0")
	}
}
