package sde

import (
	"testing"

	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

func buildMixedRingProgram(t testing.TB) (*program.Program, *program.Function) {
	t.Helper()
	b := program.NewBuilder("sdetest")
	mod := b.Module("main", program.RingUser)
	kmod := b.Module("kernel", program.RingKernel)

	kfn := b.Function(kmod, "sys_x")
	kb := b.Block(kfn, isa.MOV, isa.ADD)
	b.Return(kb)

	main := b.Function(mod, "main")
	entry := b.Block(main, isa.PUSH, isa.MOV, isa.DIV)
	loopB := b.Block(main, isa.ADD, isa.CMP)
	callB := b.Block(main, isa.MOV)
	exit := b.Block(main, isa.POP)
	b.Fallthrough(entry, loopB)
	b.Loop(loopB, isa.JNZ, loopB, callB, 5)
	b.Call(callB, kfn, exit)
	b.Return(exit)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, main
}

func TestExactCountsUserOnly(t *testing.T) {
	p, main := buildMixedRingProgram(t)
	in := New(p)
	oracle := cpu.NewCountingListener(p)
	stats, err := cpu.Run(p, main, cpu.Config{Repeat: 3}, in, oracle)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	loopB := p.FuncByName("main").Blocks[1]
	if got := in.BlockExec(loopB.ID); got != 15 {
		t.Errorf("loop block: SDE counted %d, want 15", got)
	}
	// Kernel block invisible to SDE but visible to the oracle.
	kb := p.FuncByName("sys_x").Blocks[0]
	if got := in.BlockExec(kb.ID); got != 0 {
		t.Errorf("kernel block: SDE counted %d, want 0 (user-only)", got)
	}
	if oracle.Exec[kb.ID] != 3 {
		t.Errorf("oracle kernel count = %d, want 3", oracle.Exec[kb.ID])
	}
	if in.Instructions() != stats.Retired-stats.KernelRetired {
		t.Errorf("SDE saw %d insts, want %d", in.Instructions(), stats.Retired-stats.KernelRetired)
	}
	m := in.Mnemonics()
	if m[isa.SYSRET] != 0 {
		t.Error("SDE should not see SYSRET")
	}
	if m[isa.SYSCALL] != 3 {
		t.Errorf("SYSCALL count %d, want 3 (retires in user mode)", m[isa.SYSCALL])
	}
	if m[isa.DIV] != 3 {
		t.Errorf("DIV count %d, want 3", m[isa.DIV])
	}
}

func TestSlowdownGrowsWithBlockFragmentation(t *testing.T) {
	// Two programs retiring the same instruction count: one as a single
	// long block, one fragmented into 2-instruction blocks. The
	// fragmented program must show a larger modelled slowdown, which is
	// the Table 1 mechanism (povray/Hydro-post vs the SPEC average).
	run := func(frag bool) float64 {
		b := program.NewBuilder("slow")
		mod := b.Module("m", program.RingUser)
		f := b.Function(mod, "f")
		if frag {
			var blocks []*program.Block
			for i := 0; i < 12; i++ {
				blocks = append(blocks, b.Block(f, isa.ADD, isa.MOV))
			}
			for i := 0; i+1 < len(blocks); i++ {
				b.Fallthrough(blocks[i], blocks[i+1])
			}
			b.Return(blocks[len(blocks)-1])
		} else {
			ops := make([]isa.Op, 0, 24)
			for i := 0; i < 12; i++ {
				ops = append(ops, isa.ADD, isa.MOV)
			}
			blk := b.Block(f, ops...)
			b.Return(blk)
		}
		p, err := b.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		in := New(p)
		stats, err := cpu.Run(p, f, cpu.Config{Repeat: 100}, in)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return in.SlowdownFactor(stats.Cycles)
	}
	whole, frag := run(false), run(true)
	if frag <= whole {
		t.Errorf("fragmented slowdown %.2f <= whole-block slowdown %.2f", frag, whole)
	}
	if whole < 1.5 {
		t.Errorf("instrumentation slowdown %.2f implausibly low", whole)
	}
}
