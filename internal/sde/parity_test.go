package sde

import (
	"reflect"
	"testing"

	"hbbp/internal/cpu"
)

// TestBlockPathMatchesReference asserts the block-granularity
// instrumenter produces exactly the per-instruction reference results:
// same BBECs, mnemonic histogram, instruction total and modelled cost.
func TestBlockPathMatchesReference(t *testing.T) {
	p, main := buildMixedRingProgram(t)
	for _, userOnly := range []bool{true, false} {
		fast := New(p)
		fast.UserOnly = userOnly
		if _, err := cpu.Run(p, main, cpu.Config{Seed: 5, Repeat: 4}, fast); err != nil {
			t.Fatalf("fast run: %v", err)
		}
		ref := New(p)
		ref.UserOnly = userOnly
		if _, err := cpu.Run(p, main, cpu.Config{Seed: 5, Repeat: 4, PerInstruction: true}, ref); err != nil {
			t.Fatalf("reference run: %v", err)
		}
		if !reflect.DeepEqual(fast.BBECs(), ref.BBECs()) {
			t.Errorf("userOnly=%v: BBECs diverged:\nfast %v\nref  %v", userOnly, fast.BBECs(), ref.BBECs())
		}
		if !reflect.DeepEqual(fast.Mnemonics(), ref.Mnemonics()) {
			t.Errorf("userOnly=%v: mnemonics diverged:\nfast %v\nref  %v",
				userOnly, fast.Mnemonics(), ref.Mnemonics())
		}
		if fast.Instructions() != ref.Instructions() {
			t.Errorf("userOnly=%v: instructions %d fast, %d reference",
				userOnly, fast.Instructions(), ref.Instructions())
		}
		if fast.ExtraCycles() != ref.ExtraCycles() {
			t.Errorf("userOnly=%v: extra cycles %d fast, %d reference",
				userOnly, fast.ExtraCycles(), ref.ExtraCycles())
		}
	}
}
