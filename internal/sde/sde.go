// Package sde models the software-instrumentation reference tool — the
// role Intel's Software Development Emulator (SDE, built on Pin) plays in
// the paper.
//
// Three properties of the real tool matter to the evaluation and are
// reproduced here:
//
//  1. Exactness: per-block execution counts and the per-mnemonic
//     histogram are exact, so SDE output is the ground truth against
//     which PMU-based estimates are scored (Section VI.A).
//  2. Cost: instrumentation multiplies runtime by 2-76x depending on the
//     workload's block structure. The model charges a fixed dispatch
//     cost per block entry plus per-instruction emulation costs, so the
//     slowdown factor emerges from workload shape: short, branchy blocks
//     (povray-like, Hydro-post-like) are penalised the most, exactly as
//     in Table 1.
//  3. Blindness to ring 0: like Pin, the instrumenter only observes
//     user-mode execution. Kernel-side retirements are invisible
//     (Section VII.B), which is what HBBP's kernel coverage is compared
//     against in Table 7.
package sde

import (
	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// Cost model constants, in simulated cycles. Calibrated so that the
// SPEC-like suite lands near the paper's 4x average slowdown with
// extremes around 10-80x for short-block call-heavy code.
const (
	costBlockEntry = 20  // JIT dispatch / trace lookup per block entry
	costPerInst    = 3   // per-instruction bookkeeping
	costPerBranch  = 30  // branch resolution and chaining
	costPerMemOp   = 6   // effective-address re-translation
	costPerCall    = 220 // call/return tracing, stack validation, trace relinking
)

// Instrumenter observes a run and produces exact ground truth. It
// implements cpu.Listener.
type Instrumenter struct {
	prog *program.Program

	// UserOnly hides ring-0 retirements, which is the faithful SDE/Pin
	// behaviour. Tests may disable it to get an all-ring oracle.
	UserOnly bool

	blockExec []uint64               // per block ID
	mnemonics [isa.NumOps + 2]uint64 // per opcode
	insts     uint64
	extraCost uint64 // instrumentation cycles added on top of the clean run
}

// New returns an instrumenter for program p with faithful user-only
// visibility.
func New(p *program.Program) *Instrumenter {
	return &Instrumenter{
		prog:      p,
		UserOnly:  true,
		blockExec: make([]uint64, p.NumBlocks()),
	}
}

// Retire implements cpu.Listener.
func (in *Instrumenter) Retire(ev *cpu.RetireEvent) {
	if in.UserOnly && ev.Ring == program.RingKernel {
		return
	}
	info := ev.Op.Info()
	if ev.Addr == ev.Block.Addr {
		in.blockExec[ev.Block.ID]++
		in.extraCost += costBlockEntry
	}
	in.mnemonics[ev.Op]++
	in.insts++
	in.extraCost += costPerInst
	if info.IsBranch() {
		in.extraCost += costPerBranch
		if info.Cat == isa.CatCall || info.Cat == isa.CatReturn {
			in.extraCost += costPerCall
		}
	}
	if info.ReadsMem || info.WritesMem {
		in.extraCost += costPerMemOp
	}
}

// BlockExec returns the exact execution count of the block with the
// given ID.
func (in *Instrumenter) BlockExec(id int) uint64 { return in.blockExec[id] }

// BBECs returns the exact per-block execution counts indexed by block
// ID. The returned slice is the instrumenter's live storage; callers
// must not modify it.
func (in *Instrumenter) BBECs() []uint64 { return in.blockExec }

// Mnemonics returns the exact per-mnemonic execution histogram.
func (in *Instrumenter) Mnemonics() map[isa.Op]uint64 {
	out := make(map[isa.Op]uint64)
	for op, n := range in.mnemonics {
		if n > 0 {
			out[isa.Op(op)] = n
		}
	}
	return out
}

// Instructions returns the total retired instructions observed.
func (in *Instrumenter) Instructions() uint64 { return in.insts }

// ExtraCycles returns the instrumentation cost accumulated on top of the
// clean run's cycles. InstrumentedCycles = cleanCycles + ExtraCycles.
func (in *Instrumenter) ExtraCycles() uint64 { return in.extraCost }

// SlowdownFactor returns the modelled runtime multiplier relative to a
// clean run that took cleanCycles.
func (in *Instrumenter) SlowdownFactor(cleanCycles uint64) float64 {
	if cleanCycles == 0 {
		return 1
	}
	return float64(cleanCycles+in.extraCost) / float64(cleanCycles)
}

var _ cpu.Listener = (*Instrumenter)(nil)
