// Package sde models the software-instrumentation reference tool — the
// role Intel's Software Development Emulator (SDE, built on Pin) plays in
// the paper.
//
// Three properties of the real tool matter to the evaluation and are
// reproduced here:
//
//  1. Exactness: per-block execution counts and the per-mnemonic
//     histogram are exact, so SDE output is the ground truth against
//     which PMU-based estimates are scored (Section VI.A).
//  2. Cost: instrumentation multiplies runtime by 2-76x depending on the
//     workload's block structure. The model charges a fixed dispatch
//     cost per block entry plus per-instruction emulation costs, so the
//     slowdown factor emerges from workload shape: short, branchy blocks
//     (povray-like, Hydro-post-like) are penalised the most, exactly as
//     in Table 1.
//  3. Blindness to ring 0: like Pin, the instrumenter only observes
//     user-mode execution. Kernel-side retirements are invisible
//     (Section VII.B), which is what HBBP's kernel coverage is compared
//     against in Table 7.
package sde

import (
	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// Cost model constants, in simulated cycles. Calibrated so that the
// SPEC-like suite lands near the paper's 4x average slowdown with
// extremes around 10-80x for short-block call-heavy code.
const (
	costBlockEntry = 20  // JIT dispatch / trace lookup per block entry
	costPerInst    = 3   // per-instruction bookkeeping
	costPerBranch  = 30  // branch resolution and chaining
	costPerMemOp   = 6   // effective-address re-translation
	costPerCall    = 220 // call/return tracing, stack validation, trace relinking
)

// opCount is one entry of a block's compacted mnemonic histogram.
type opCount struct {
	op isa.Op
	n  uint64
}

// opCost returns the modelled instrumentation cost of emulating one
// instruction, excluding the per-block dispatch cost. It is the single
// definition of the per-instruction cost rules: the blockProfile
// derivation and the per-instruction reference path both use it, so
// the two dispatch paths cannot drift apart.
func opCost(info *isa.Info) uint64 {
	cost := uint64(costPerInst)
	if info.IsBranch() {
		cost += costPerBranch
		if info.Cat == isa.CatCall || info.Cat == isa.CatReturn {
			cost += costPerCall
		}
	}
	if info.ReadsMem || info.WritesMem {
		cost += costPerMemOp
	}
	return cost
}

// blockProfile caches what one execution of a block contributes to the
// instrumentation totals: instruction count, the full modelled dispatch
// and emulation cost, and the compacted per-mnemonic tallies. All of it
// is static, so it is derived once per block at construction.
type blockProfile struct {
	insts uint64
	cost  uint64
	ops   []opCount
}

// Instrumenter observes a run and produces exact ground truth. It
// implements cpu.BlockListener (block-granularity fast path) and
// cpu.Listener (per-instruction reference path).
type Instrumenter struct {
	prog *program.Program

	// UserOnly hides ring-0 retirements, which is the faithful SDE/Pin
	// behaviour. Tests may disable it to get an all-ring oracle.
	UserOnly bool

	blockExec []uint64               // per block ID
	blocks    []blockProfile         // per block ID, static contributions
	mnemonics [isa.NumOps + 2]uint64 // per opcode
	insts     uint64
	extraCost uint64 // instrumentation cycles added on top of the clean run
}

// New returns an instrumenter for program p with faithful user-only
// visibility.
func New(p *program.Program) *Instrumenter {
	in := &Instrumenter{
		prog:      p,
		UserOnly:  true,
		blockExec: make([]uint64, p.NumBlocks()),
		blocks:    make([]blockProfile, p.NumBlocks()),
	}
	for _, blk := range p.Blocks() {
		ops := blk.EffectiveOps()
		bp := blockProfile{
			insts: uint64(len(ops)),
			cost:  costBlockEntry,
		}
	tally:
		for _, op := range ops {
			info := op.Info()
			bp.cost += opCost(&info)
			for i := range bp.ops {
				if bp.ops[i].op == op {
					bp.ops[i].n++
					continue tally
				}
			}
			bp.ops = append(bp.ops, opCount{op: op, n: 1})
		}
		in.blocks[blk.ID] = bp
	}
	return in
}

// RetireBlock implements cpu.BlockListener: one block entry applies the
// block's precomputed contribution in O(distinct mnemonics).
func (in *Instrumenter) RetireBlock(ev *cpu.BlockEvent) {
	if in.UserOnly && ev.Ring == program.RingKernel {
		return
	}
	if len(ev.Ops) == 0 {
		return
	}
	bp := &in.blocks[ev.Block.ID]
	in.blockExec[ev.Block.ID]++
	in.insts += bp.insts
	in.extraCost += bp.cost
	for _, oc := range bp.ops {
		in.mnemonics[oc.op] += oc.n
	}
}

// Retire implements cpu.Listener, the per-instruction reference path.
func (in *Instrumenter) Retire(ev *cpu.RetireEvent) {
	if in.UserOnly && ev.Ring == program.RingKernel {
		return
	}
	info := ev.Op.Info()
	if ev.Addr == ev.Block.Addr {
		in.blockExec[ev.Block.ID]++
		in.extraCost += costBlockEntry
	}
	in.mnemonics[ev.Op]++
	in.insts++
	in.extraCost += opCost(&info)
}

// BlockExec returns the exact execution count of the block with the
// given ID.
func (in *Instrumenter) BlockExec(id int) uint64 { return in.blockExec[id] }

// BBECs returns the exact per-block execution counts indexed by block
// ID. The returned slice is the instrumenter's live storage; callers
// must not modify it.
func (in *Instrumenter) BBECs() []uint64 { return in.blockExec }

// Mnemonics returns the exact per-mnemonic execution histogram.
func (in *Instrumenter) Mnemonics() map[isa.Op]uint64 {
	out := make(map[isa.Op]uint64)
	for op, n := range in.mnemonics {
		if n > 0 {
			out[isa.Op(op)] = n
		}
	}
	return out
}

// Instructions returns the total retired instructions observed.
func (in *Instrumenter) Instructions() uint64 { return in.insts }

// ExtraCycles returns the instrumentation cost accumulated on top of the
// clean run's cycles. InstrumentedCycles = cleanCycles + ExtraCycles.
func (in *Instrumenter) ExtraCycles() uint64 { return in.extraCost }

// SlowdownFactor returns the modelled runtime multiplier relative to a
// clean run that took cleanCycles.
func (in *Instrumenter) SlowdownFactor(cleanCycles uint64) float64 {
	if cleanCycles == 0 {
		return 1
	}
	return float64(cleanCycles+in.extraCost) / float64(cleanCycles)
}

var (
	_ cpu.Listener      = (*Instrumenter)(nil)
	_ cpu.BlockListener = (*Instrumenter)(nil)
)
