// Package sde models the software-instrumentation reference tool — the
// role Intel's Software Development Emulator (SDE, built on Pin) plays in
// the paper.
//
// Three properties of the real tool matter to the evaluation and are
// reproduced here:
//
//  1. Exactness: per-block execution counts and the per-mnemonic
//     histogram are exact, so SDE output is the ground truth against
//     which PMU-based estimates are scored (Section VI.A).
//  2. Cost: instrumentation multiplies runtime by 2-76x depending on the
//     workload's block structure. The model charges a fixed dispatch
//     cost per block entry plus per-instruction emulation costs, so the
//     slowdown factor emerges from workload shape: short, branchy blocks
//     (povray-like, Hydro-post-like) are penalised the most, exactly as
//     in Table 1.
//  3. Blindness to ring 0: like Pin, the instrumenter only observes
//     user-mode execution. Kernel-side retirements are invisible
//     (Section VII.B), which is what HBBP's kernel coverage is compared
//     against in Table 7.
package sde

import (
	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// Cost model constants, in simulated cycles. Calibrated so that the
// SPEC-like suite lands near the paper's 4x average slowdown with
// extremes around 10-80x for short-block call-heavy code.
const (
	costBlockEntry = 20  // JIT dispatch / trace lookup per block entry
	costPerInst    = 3   // per-instruction bookkeeping
	costPerBranch  = 30  // branch resolution and chaining
	costPerMemOp   = 6   // effective-address re-translation
	costPerCall    = 220 // call/return tracing, stack validation, trace relinking
)

// opCount is one entry of a block's compacted mnemonic histogram.
type opCount struct {
	op isa.Op
	n  uint64
}

// opCost returns the modelled instrumentation cost of emulating one
// instruction, excluding the per-block dispatch cost. It is the single
// definition of the per-instruction cost rules: the blockProfile
// derivation and the per-instruction reference path both use it, so
// the two dispatch paths cannot drift apart.
func opCost(info *isa.Info) uint64 {
	cost := uint64(costPerInst)
	if info.IsBranch() {
		cost += costPerBranch
		if info.Cat == isa.CatCall || info.Cat == isa.CatReturn {
			cost += costPerCall
		}
	}
	if info.ReadsMem || info.WritesMem {
		cost += costPerMemOp
	}
	return cost
}

// blockProfile caches what one execution of a block contributes to the
// instrumentation totals: instruction count, the full modelled dispatch
// and emulation cost, and the compacted per-mnemonic tallies. All of it
// is static, so it is derived once per block at construction.
type blockProfile struct {
	insts uint64
	cost  uint64
	ops   []opCount
}

// Static is the per-program half of an instrumenter: the per-block
// cost and mnemonic profiles derived from the static image. Deriving
// it walks every block once; the table is immutable afterwards and
// safe to share across any number of concurrent Instrumenters of the
// same program, so callers that instrument one workload many times
// (the experiment harness, the workload registry's snapshotted images)
// pay the derivation once instead of per run.
type Static struct {
	prog   *program.Program
	blocks []blockProfile // per block ID, static contributions
}

// NewStatic derives the per-block profile table for p.
func NewStatic(p *program.Program) *Static {
	s := &Static{prog: p, blocks: make([]blockProfile, p.NumBlocks())}
	for _, blk := range p.Blocks() {
		ops := blk.EffectiveOps()
		bp := blockProfile{
			insts: uint64(len(ops)),
			cost:  costBlockEntry,
		}
	tally:
		for _, op := range ops {
			info := op.Info()
			bp.cost += opCost(&info)
			for i := range bp.ops {
				if bp.ops[i].op == op {
					bp.ops[i].n++
					continue tally
				}
			}
			bp.ops = append(bp.ops, opCount{op: op, n: 1})
		}
		s.blocks[blk.ID] = bp
	}
	return s
}

// Program returns the image the profiles were derived from.
func (s *Static) Program() *program.Program { return s.prog }

// Instrumenter observes a run and produces exact ground truth. It
// implements cpu.BlockListener (block-granularity fast path) and
// cpu.Listener (per-instruction reference path).
type Instrumenter struct {
	prog *program.Program

	// UserOnly hides ring-0 retirements, which is the faithful SDE/Pin
	// behaviour. Tests may disable it to get an all-ring oracle.
	UserOnly bool

	blockExec []uint64               // per block ID
	blocks    []blockProfile         // per block ID, static contributions
	mnemonics [isa.NumOps + 2]uint64 // per opcode
	insts     uint64
	extraCost uint64 // instrumentation cycles added on top of the clean run

	// fastExec tallies block-path retirements not yet folded into the
	// totals above: the fast path is one increment per block entry,
	// and the per-block static contributions are applied lazily as
	// count × profile when a result accessor needs them.
	fastExec []uint64
	dirty    bool
}

// New returns an instrumenter for program p with faithful user-only
// visibility, deriving a fresh static profile table. Callers that
// instrument the same program repeatedly should derive the table once
// with NewStatic and construct instrumenters with NewFromStatic.
func New(p *program.Program) *Instrumenter {
	return NewFromStatic(NewStatic(p))
}

// NewFromStatic returns an instrumenter sharing the precomputed
// profile table s — per-run state is fresh, the static table is the
// shared one. The instrumenter observes runs of s.Program().
func NewFromStatic(s *Static) *Instrumenter {
	return &Instrumenter{
		prog:      s.prog,
		UserOnly:  true,
		blockExec: make([]uint64, len(s.blocks)),
		blocks:    s.blocks,
		fastExec:  make([]uint64, len(s.blocks)),
	}
}

// RetireBlock implements cpu.BlockListener: one block entry is one
// tally — the block's static contributions (instructions, cost, the
// mnemonic histogram) are folded in lazily as count × profile, so the
// per-retirement work is O(1) regardless of block content.
func (in *Instrumenter) RetireBlock(ev *cpu.BlockEvent) {
	if in.UserOnly && ev.Ring() == program.RingKernel {
		return
	}
	if ev.Len() == 0 {
		return
	}
	in.fastExec[ev.BlockID()]++
	in.dirty = true
}

// fold applies the deferred block-path tallies to the totals.
// Idempotent: folded tallies are consumed.
func (in *Instrumenter) fold() {
	if !in.dirty {
		return
	}
	in.dirty = false
	for id, n := range in.fastExec {
		if n == 0 {
			continue
		}
		in.fastExec[id] = 0
		bp := &in.blocks[id]
		in.blockExec[id] += n
		in.insts += n * bp.insts
		in.extraCost += n * bp.cost
		for _, oc := range bp.ops {
			in.mnemonics[oc.op] += n * oc.n
		}
	}
}

// Retire implements cpu.Listener, the per-instruction reference path.
func (in *Instrumenter) Retire(ev *cpu.RetireEvent) {
	if in.UserOnly && ev.Ring == program.RingKernel {
		return
	}
	info := ev.Op.Info()
	if ev.Addr == ev.Block.Addr {
		in.blockExec[ev.Block.ID]++
		in.extraCost += costBlockEntry
	}
	in.mnemonics[ev.Op]++
	in.insts++
	in.extraCost += opCost(&info)
}

// BlockExec returns the exact execution count of the block with the
// given ID.
func (in *Instrumenter) BlockExec(id int) uint64 {
	in.fold()
	return in.blockExec[id]
}

// BBECs returns the exact per-block execution counts indexed by block
// ID. The returned slice is the instrumenter's live storage; callers
// must not modify it.
func (in *Instrumenter) BBECs() []uint64 {
	in.fold()
	return in.blockExec
}

// Mnemonics returns the exact per-mnemonic execution histogram.
func (in *Instrumenter) Mnemonics() map[isa.Op]uint64 {
	in.fold()
	out := make(map[isa.Op]uint64)
	for op, n := range in.mnemonics {
		if n > 0 {
			out[isa.Op(op)] = n
		}
	}
	return out
}

// Instructions returns the total retired instructions observed.
func (in *Instrumenter) Instructions() uint64 {
	in.fold()
	return in.insts
}

// ExtraCycles returns the instrumentation cost accumulated on top of the
// clean run's cycles. InstrumentedCycles = cleanCycles + ExtraCycles.
func (in *Instrumenter) ExtraCycles() uint64 {
	in.fold()
	return in.extraCost
}

// SlowdownFactor returns the modelled runtime multiplier relative to a
// clean run that took cleanCycles.
func (in *Instrumenter) SlowdownFactor(cleanCycles uint64) float64 {
	if cleanCycles == 0 {
		return 1
	}
	in.fold()
	return float64(cleanCycles+in.extraCost) / float64(cleanCycles)
}

var (
	_ cpu.Listener      = (*Instrumenter)(nil)
	_ cpu.BlockListener = (*Instrumenter)(nil)
)
