package pivot

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	t := New()
	t.Add(map[string]string{"fn": "a", "mnemonic": "MOV", "ext": "BASE"}, 100)
	t.Add(map[string]string{"fn": "a", "mnemonic": "ADD", "ext": "BASE"}, 50)
	t.Add(map[string]string{"fn": "b", "mnemonic": "MOV", "ext": "BASE"}, 30)
	t.Add(map[string]string{"fn": "b", "mnemonic": "VADDPS", "ext": "AVX"}, 70)
	t.Add(map[string]string{"fn": "b", "mnemonic": "VADDPS", "ext": "AVX"}, 5)
	return t
}

func TestGroupBySingleDim(t *testing.T) {
	rows := sampleTable().Pivot(Query{GroupBy: []string{"mnemonic"}})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Default order: by value descending: MOV 130, VADDPS 75, ADD 50.
	if rows[0].Keys[0] != "MOV" || rows[0].Value != 130 {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1].Keys[0] != "VADDPS" || rows[1].Value != 75 {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2].Keys[0] != "ADD" || rows[2].Value != 50 {
		t.Errorf("row 2 = %v", rows[2])
	}
}

func TestGroupByTwoDims(t *testing.T) {
	rows := sampleTable().Pivot(Query{
		GroupBy: []string{"fn", "ext"},
		Sort:    OrderByKey,
	})
	want := []struct {
		fn, ext string
		v       float64
	}{
		{"a", "BASE", 150}, {"b", "AVX", 75}, {"b", "BASE", 30},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i].Keys[0] != w.fn || rows[i].Keys[1] != w.ext || rows[i].Value != w.v {
			t.Errorf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestFilter(t *testing.T) {
	rows := sampleTable().Pivot(Query{
		GroupBy: []string{"mnemonic"},
		Filter:  map[string]string{"fn": "b"},
	})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Keys[0] != "VADDPS" || rows[0].Value != 75 {
		t.Errorf("row 0 = %v", rows[0])
	}
}

func TestLimit(t *testing.T) {
	rows := sampleTable().Pivot(Query{GroupBy: []string{"mnemonic"}, Limit: 1})
	if len(rows) != 1 || rows[0].Keys[0] != "MOV" {
		t.Fatalf("limit 1: %v", rows)
	}
}

func TestTotal(t *testing.T) {
	tab := sampleTable()
	if got := tab.Total(nil); got != 255 {
		t.Errorf("Total() = %v, want 255", got)
	}
	if got := tab.Total(map[string]string{"ext": "AVX"}); got != 75 {
		t.Errorf("Total(AVX) = %v, want 75", got)
	}
}

func TestDimensions(t *testing.T) {
	dims := sampleTable().Dimensions()
	want := []string{"ext", "fn", "mnemonic"}
	if len(dims) != len(want) {
		t.Fatalf("dims = %v", dims)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims = %v, want %v", dims, want)
		}
	}
}

func TestRenderAligned(t *testing.T) {
	rows := sampleTable().Pivot(Query{GroupBy: []string{"fn", "mnemonic"}, Sort: OrderByKey})
	out := Render([]string{"FUNCTION", "MNEMONIC"}, rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("render produced %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "FUNCTION") || !strings.Contains(lines[0], "VALUE") {
		t.Errorf("header line %q", lines[0])
	}
	// All lines equally... at least every data line mentions its fn.
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "a") && !strings.HasPrefix(l, "b") {
			t.Errorf("data line %q does not start with a group key", l)
		}
	}
}

func TestFormatValueUnits(t *testing.T) {
	cases := map[float64]string{
		12:      "12",
		54321:   "54.3k",
		2500000: "2.50M",
		3.2e9:   "3.20B",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", v, got, want)
		}
	}
}

// Property: the sum of any grouped pivot equals the filtered total.
func TestQuickGroupSumsPreserveTotal(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New()
		fns := []string{"a", "b", "c"}
		ops := []string{"MOV", "ADD", "MUL", "DIV"}
		var total float64
		for i := 0; i < int(n)%50+1; i++ {
			v := float64(rng.Intn(1000))
			total += v
			tab.Add(map[string]string{
				"fn":       fns[rng.Intn(len(fns))],
				"mnemonic": ops[rng.Intn(len(ops))],
			}, v)
		}
		for _, group := range [][]string{{"fn"}, {"mnemonic"}, {"fn", "mnemonic"}} {
			var sum float64
			for _, row := range tab.Pivot(Query{GroupBy: group}) {
				sum += row.Value
			}
			if math.Abs(sum-total) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: filtering then totalling equals summing matching records.
func TestQuickFilterConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New()
		var wantA float64
		for i := 0; i < 40; i++ {
			fn := "a"
			if rng.Intn(2) == 1 {
				fn = "b"
			}
			v := float64(rng.Intn(100))
			if fn == "a" {
				wantA += v
			}
			tab.Add(map[string]string{"fn": fn}, v)
		}
		return math.Abs(tab.Total(map[string]string{"fn": "a"})-wantA) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
