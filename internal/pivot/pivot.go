// Package pivot implements a small pivot-table engine.
//
// The paper's analyzer emits instruction mixes "as a pivot table, a
// format frequently used for exploratory data analysis, with
// user-configurable headers and values": the user groups, filters and
// sorts the (dynamic count x static attribute) records to build views
// like top functions, top mnemonics or instruction family breakdowns in
// a few clicks. This package provides that engine: records carry string
// dimensions and a float value; queries select group-by dimensions,
// equality filters, ordering and limits.
package pivot

import (
	"fmt"
	"sort"
	"strings"
)

// Record is one data point: named dimensions plus a value.
type Record struct {
	Dims  map[string]string
	Value float64
}

// Table accumulates records.
type Table struct {
	records []Record
	dims    map[string]bool
}

// New returns an empty table.
func New() *Table {
	return &Table{dims: make(map[string]bool)}
}

// Add appends one record. The dims map is copied.
func (t *Table) Add(dims map[string]string, value float64) {
	cp := make(map[string]string, len(dims))
	for k, v := range dims {
		cp[k] = v
		t.dims[k] = true
	}
	t.records = append(t.records, Record{Dims: cp, Value: value})
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.records) }

// Dimensions returns the dimension names seen so far, sorted.
func (t *Table) Dimensions() []string {
	out := make([]string, 0, len(t.dims))
	for d := range t.dims {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Order controls result ordering.
type Order uint8

// Orders.
const (
	// OrderByValueDesc sorts by aggregated value, largest first (the
	// "top mnemonics" style view).
	OrderByValueDesc Order = iota
	// OrderByKey sorts lexicographically by group keys.
	OrderByKey
)

// Query describes one pivot view.
type Query struct {
	// GroupBy lists the dimensions forming the row key, in order.
	GroupBy []string
	// Filter keeps only records whose dimensions equal every entry.
	Filter map[string]string
	// Sort selects the row ordering (default: by value, descending).
	Sort Order
	// Limit truncates the result to the first N rows (0: no limit).
	Limit int
}

// ResultRow is one aggregated output row.
type ResultRow struct {
	Keys  []string // group-by dimension values, in GroupBy order
	Value float64  // summed values
}

// Pivot runs a query and returns aggregated rows.
func (t *Table) Pivot(q Query) []ResultRow {
	type agg struct {
		keys []string
		sum  float64
	}
	groups := make(map[string]*agg)
	var orderKeys []string
	var sb strings.Builder
record:
	for _, r := range t.records {
		for dim, want := range q.Filter {
			if r.Dims[dim] != want {
				continue record
			}
		}
		sb.Reset()
		keys := make([]string, len(q.GroupBy))
		for i, dim := range q.GroupBy {
			keys[i] = r.Dims[dim]
			sb.WriteString(keys[i])
			sb.WriteByte(0)
		}
		k := sb.String()
		g, ok := groups[k]
		if !ok {
			g = &agg{keys: keys}
			groups[k] = g
			orderKeys = append(orderKeys, k)
		}
		g.sum += r.Value
	}
	rows := make([]ResultRow, 0, len(groups))
	sort.Strings(orderKeys)
	for _, k := range orderKeys {
		g := groups[k]
		rows = append(rows, ResultRow{Keys: g.keys, Value: g.sum})
	}
	if q.Sort == OrderByValueDesc {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

// Total sums the values of all records matching the filter.
func (t *Table) Total(filter map[string]string) float64 {
	var sum float64
record:
	for _, r := range t.records {
		for dim, want := range filter {
			if r.Dims[dim] != want {
				continue record
			}
		}
		sum += r.Value
	}
	return sum
}

// Render formats rows as an aligned text table with the given headers
// (one per group-by dimension, plus an implied value column).
func Render(headers []string, rows []ResultRow) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	valueW := len("VALUE")
	for ri, r := range rows {
		cells[ri] = r.Keys
		for i, k := range r.Keys {
			if i < len(widths) && len(k) > widths[i] {
				widths[i] = len(k)
			}
		}
		if v := len(formatValue(r.Value)); v > valueW {
			valueW = v
		}
	}
	var sb strings.Builder
	for i, h := range headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintf(&sb, "%*s\n", valueW, "VALUE")
	for _, r := range rows {
		for i, k := range r.Keys {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, k)
		}
		fmt.Fprintf(&sb, "%*s\n", valueW, formatValue(r.Value))
	}
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
