package program

import "sync"

// Snapshot freezes one compiled program image for reuse across runs.
//
// A finished program is immutable — the builder lays out addresses and
// encodes code exactly once, and nothing in a run mutates the image:
// the machine keeps all execution state (loop counters, call stacks,
// RNG) outside the program, and live-text patching happens in copies
// (see Module.LiveText). A Snapshot makes that contract explicit and
// exploitable: callers check the image out per run in O(1) instead of
// recompiling it, and the one mutation-shaped operation — materializing
// a module's live (trace-point-patched) text — is copy-on-write and
// memoized here, so pages are copied at most once per snapshot and only
// when a patch actually lands.
//
// A Snapshot is safe for concurrent use; any number of runs may execute
// the shared image at once.
type Snapshot struct {
	prog *Program

	mu   sync.Mutex
	live map[*Module][]byte
}

// NewSnapshot freezes p. The caller must not mutate p afterwards —
// every checkout shares it.
func NewSnapshot(p *Program) *Snapshot {
	return &Snapshot{prog: p}
}

// Program returns the frozen image.
func (s *Snapshot) Program() *Program { return s.prog }

// Checkout hands the image out for another run. It is the
// copy-on-write reset: because runs never write to the image, there is
// nothing to copy and nothing to undo — the reset is O(1) regardless
// of program size. The returned program is shared; treat it as
// read-only like any finished program.
func (s *Snapshot) Checkout() *Program { return s.prog }

// LiveText returns module m's code bytes as they appear in the live
// image, with every trace-point JMP overwritten by NOPs. This is the
// copy-on-write half of the snapshot: a module without trace points
// returns its static text unchanged (no copy), and a patched module's
// pages are copied and patched once, then memoized — repeated calls
// share the materialized copy instead of re-patching per run the way
// Module.LiveText does.
func (s *Snapshot) LiveText(m *Module) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if text, ok := s.live[m]; ok {
		return text
	}
	text := m.LiveText()
	if s.live == nil {
		s.live = make(map[*Module][]byte)
	}
	s.live[m] = text
	return text
}
