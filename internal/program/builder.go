package program

import (
	"fmt"

	"hbbp/internal/isa"
)

// Builder assembles a Program module by module. Typical use:
//
//	b := program.NewBuilder("fitter")
//	mod := b.Module("fitter", program.RingUser)
//	fn := b.Function(mod, "main")
//	body := b.Block(fn, ops...)
//	...wire terminators...
//	prog, err := b.Finish()
//
// Finish assigns dense block IDs, lays out addresses, encodes code bytes
// and validates the result.
type Builder struct {
	prog   *Program
	nextID int
	err    error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// Module adds a module. Modules are laid out in creation order.
func (b *Builder) Module(name string, ring Ring) *Module {
	m := &Module{Name: name, Ring: ring}
	b.prog.Modules = append(b.prog.Modules, m)
	return m
}

// Function adds an empty function to a module.
func (b *Builder) Function(m *Module, name string) *Function {
	f := &Function{Name: name, Mod: m}
	m.Funcs = append(m.Funcs, f)
	return f
}

// Block appends a basic block with the given instructions to a function.
// The terminator defaults to TermReturn for blocks ending in RET_NEAR or
// SYSRET and must otherwise be wired explicitly before Finish.
func (b *Builder) Block(f *Function, ops ...isa.Op) *Block {
	blk := &Block{
		ID:    b.nextID,
		Fn:    f,
		Ops:   ops,
		Index: len(f.Blocks),
	}
	b.nextID++
	if n := len(ops); n > 0 {
		switch ops[n-1] {
		case isa.RET_NEAR, isa.SYSRET:
			blk.Term = Terminator{Kind: TermReturn}
		}
	}
	f.Blocks = append(f.Blocks, blk)
	b.prog.byIDAppend(blk)
	return blk
}

func (p *Program) byIDAppend(blk *Block) { p.byID = append(p.byID, blk) }

// Fallthrough wires blk to continue into next.
func (b *Builder) Fallthrough(blk, next *Block) {
	blk.Term = Terminator{Kind: TermFallthrough, Next: next}
}

// Jump appends a JMP and wires blk to target unconditionally.
func (b *Builder) Jump(blk, target *Block) {
	blk.Ops = append(blk.Ops, isa.JMP)
	blk.Term = Terminator{Kind: TermJump, Target: target}
}

// Loop appends the conditional branch br and wires blk as a counted
// back-edge: per activation the branch to head is taken trip-1 times,
// then control falls through to next. The loop body therefore executes
// trip times per activation.
func (b *Builder) Loop(blk *Block, br isa.Op, head, next *Block, trip int) {
	if br.Info().Cat != isa.CatCondBranch {
		b.fail(fmt.Errorf("Loop terminator %v is not a conditional branch", br))
	}
	blk.Ops = append(blk.Ops, br)
	blk.Term = Terminator{Kind: TermLoop, Target: head, Next: next, Trip: trip}
}

// Cond appends the conditional branch br and wires blk to take it to
// target with probability prob, falling through to next otherwise.
func (b *Builder) Cond(blk *Block, br isa.Op, target, next *Block, prob float64) {
	if br.Info().Cat != isa.CatCondBranch {
		b.fail(fmt.Errorf("Cond terminator %v is not a conditional branch", br))
	}
	blk.Ops = append(blk.Ops, br)
	blk.Term = Terminator{Kind: TermCond, Target: target, Next: next, Prob: prob}
}

// Call appends a CALL (or SYSCALL for cross-ring calls) and wires blk to
// invoke callee and continue at next.
func (b *Builder) Call(blk *Block, callee *Function, next *Block) {
	op := isa.CALL
	if callee.Mod.Ring == RingKernel && blk.Fn.Mod.Ring == RingUser {
		op = isa.SYSCALL
	}
	blk.Ops = append(blk.Ops, op)
	blk.Term = Terminator{Kind: TermCall, Callee: callee, Next: next}
}

// TracePoint appends a JMP to blk and wires it as a kernel trace point:
// the static image shows an unconditional jump to next, but the live
// kernel patches the jump to NOPs, so execution falls through to next.
func (b *Builder) TracePoint(blk, next *Block) {
	if blk.Fn.Mod.Ring != RingKernel {
		b.fail(fmt.Errorf("trace point in user block %s", blk))
	}
	blk.Ops = append(blk.Ops, isa.JMP)
	blk.Term = Terminator{Kind: TermFallthrough, Next: next}
	blk.TraceJump = true
}

// Return appends a RET_NEAR (or SYSRET from kernel functions) and marks
// blk as a function exit.
func (b *Builder) Return(blk *Block) {
	op := isa.RET_NEAR
	if blk.Fn.Mod.Ring == RingKernel {
		op = isa.SYSRET
	}
	blk.Ops = append(blk.Ops, op)
	blk.Term = Terminator{Kind: TermReturn}
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// userBase and kernelBase separate the two halves of the address space
// the way Linux does: user code low, kernel code high.
const (
	userBase   = uint64(0x400000)
	kernelBase = uint64(0xffffffff81000000)
	moduleGap  = uint64(0x10000)
)

// Finish lays the program out, encodes module code, builds the sorted
// block index and validates the result.
func (b *Builder) Finish() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.prog
	nextUser, nextKernel := userBase, kernelBase
	for _, m := range p.Modules {
		var base uint64
		if m.Ring == RingKernel {
			base = nextKernel
		} else {
			base = nextUser
		}
		m.Base = base
		addr := base
		var code []byte
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				blk.Addr = addr
				for _, op := range blk.Ops {
					code = isa.AppendEncode(code, op)
					addr += uint64(op.Bytes())
				}
				blk.Size = addr - blk.Addr
			}
		}
		m.Code = code
		if m.Ring == RingKernel {
			nextKernel = addr + moduleGap
		} else {
			nextUser = addr + moduleGap
		}
	}
	// The byID slice was appended in creation order, which after layout
	// is also address order within each module; build the global
	// address-sorted view.
	p.blocks = make([]*Block, len(p.byID))
	copy(p.blocks, p.byID)
	sortBlocksByAddr(p.blocks)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func sortBlocksByAddr(blocks []*Block) {
	// Insertion-friendly: block lists are nearly sorted already.
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j-1].Addr > blocks[j].Addr; j-- {
			blocks[j-1], blocks[j] = blocks[j], blocks[j-1]
		}
	}
}

// Disassemble decodes a module's code bytes back into instructions, the
// analyzer-side path that mirrors the paper's XED-based disassembler. It
// is used to rebuild static block maps from code bytes alone and to
// verify that the encoded image matches the structured program.
func Disassemble(m *Module) ([]isa.Decoded, error) {
	return isa.Decode(m.Code, m.Base)
}
