package program

import (
	"bytes"
	"sync"
	"testing"

	"hbbp/internal/isa"
)

// snapshotProgram builds a two-module image: a plain user module and a
// kernel module containing one trace point (the only construct whose
// live text differs from the static image).
func snapshotProgram(t *testing.T) (*Program, *Module, *Module) {
	t.Helper()
	b := NewBuilder("snapshot-test")
	umod := b.Module("main", RingUser)
	uf := b.Function(umod, "main")
	ub := b.Block(uf, isa.MOV, isa.ADD)
	b.Return(ub)
	kmod := b.Module("kernel", RingKernel)
	kf := b.Function(kmod, "sys_traced")
	pre := b.Block(kf, isa.MOV)
	post := b.Block(kf, isa.SUB)
	b.TracePoint(pre, post)
	b.Return(post)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, umod, kmod
}

// TestSnapshotCheckoutShares pins the O(1) reset: every checkout is the
// same frozen image, not a copy.
func TestSnapshotCheckoutShares(t *testing.T) {
	p, _, _ := snapshotProgram(t)
	s := NewSnapshot(p)
	if s.Program() != p {
		t.Fatal("Program() does not return the frozen image")
	}
	if s.Checkout() != p || s.Checkout() != s.Checkout() {
		t.Fatal("Checkout must hand out the shared image")
	}
}

// TestSnapshotLiveTextCopyOnWrite asserts pages are copied only when a
// patch lands: the unpatched module's live text aliases its static
// code, the trace-point module's text is a patched copy, and repeated
// calls share the one materialized copy.
func TestSnapshotLiveTextCopyOnWrite(t *testing.T) {
	p, umod, kmod := snapshotProgram(t)
	s := NewSnapshot(p)

	utext := s.LiveText(umod)
	if &utext[0] != &umod.Code[0] {
		t.Error("unpatched module's live text should alias the static code (no copy)")
	}

	ktext := s.LiveText(kmod)
	if &ktext[0] == &kmod.Code[0] {
		t.Error("patched module's live text must be a copy, not the static image")
	}
	if bytes.Equal(ktext, kmod.Code) {
		t.Error("trace-point patch did not land in the live text")
	}
	if !bytes.Equal(ktext, kmod.LiveText()) {
		t.Error("snapshot live text differs from Module.LiveText")
	}
	if again := s.LiveText(kmod); &again[0] != &ktext[0] {
		t.Error("live text not memoized: second call materialized a new copy")
	}
}

// TestSnapshotLiveTextConcurrent exercises the memoization under
// concurrent checkouts (run with -race).
func TestSnapshotLiveTextConcurrent(t *testing.T) {
	p, umod, kmod := snapshotProgram(t)
	s := NewSnapshot(p)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Checkout()
			_ = s.LiveText(umod)
			_ = s.LiveText(kmod)
		}()
	}
	wg.Wait()
}
