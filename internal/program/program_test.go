package program

import (
	"testing"
	"testing/quick"

	"hbbp/internal/isa"
)

// buildLoopProgram builds a tiny program with a counted loop, a
// conditional diamond, a call and a kernel function — exercising every
// terminator kind.
func buildLoopProgram(t testing.TB) *Program {
	t.Helper()
	b := NewBuilder("test")
	mod := b.Module("main", RingUser)
	kmod := b.Module("kernel", RingKernel)

	helper := b.Function(mod, "helper")
	hb := b.Block(helper, isa.MOV, isa.ADD)
	b.Return(hb)

	kfn := b.Function(kmod, "sys_demo")
	kb := b.Block(kfn, isa.MOV, isa.CMP)
	b.Return(kb)

	main := b.Function(mod, "main")
	entry := b.Block(main, isa.PUSH, isa.MOV)
	head := b.Block(main, isa.ADD, isa.CMP)
	then := b.Block(main, isa.SUB)
	merge := b.Block(main, isa.MOV)
	latch := b.Block(main, isa.INC, isa.CMP)
	callBlk := b.Block(main, isa.MOV)
	exit := b.Block(main, isa.POP)

	b.Fallthrough(entry, head)
	b.Cond(head, isa.JNZ, merge, then, 0.3) // taken 30% -> skip `then`
	b.Fallthrough(then, merge)
	b.Fallthrough(merge, latch)
	b.Loop(latch, isa.JLE, head, callBlk, 10)
	b.Call(callBlk, helper, exit)
	b.Return(exit)

	// Wire a kernel call into helper? Keep main's call user-mode; add a
	// second function that syscalls.
	sysuser := b.Function(mod, "do_syscall")
	sb := b.Block(sysuser, isa.MOV)
	sret := b.Block(sysuser, isa.NOP)
	b.Call(sb, kfn, sret)
	b.Return(sret)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func TestLayoutAssignsAddresses(t *testing.T) {
	p := buildLoopProgram(t)
	var prevEnd uint64
	for _, m := range p.Modules {
		if m.Ring == RingKernel && m.Base < kernelBase {
			t.Errorf("kernel module %s based at %#x below kernel base", m.Name, m.Base)
		}
		if m.Ring == RingUser && m.Base < userBase {
			t.Errorf("user module %s based at %#x below user base", m.Name, m.Base)
		}
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				if blk.Size == 0 {
					t.Errorf("%s has zero size", blk)
				}
				var want uint64
				for _, op := range blk.Ops {
					want += uint64(op.Bytes())
				}
				if blk.Size != want {
					t.Errorf("%s: size %d, want %d", blk, blk.Size, want)
				}
				_ = prevEnd
			}
		}
	}
}

func TestBlockAt(t *testing.T) {
	p := buildLoopProgram(t)
	for _, blk := range p.Blocks() {
		for _, addr := range blk.InstAddrs() {
			got := p.BlockAt(addr)
			if got != blk {
				t.Fatalf("BlockAt(%#x) = %v, want %v", addr, got, blk)
			}
		}
		// Last byte of the block still resolves to the block.
		if got := p.BlockAt(blk.End() - 1); got != blk {
			t.Errorf("BlockAt(end-1) = %v, want %v", got, blk)
		}
	}
	if got := p.BlockAt(0); got != nil {
		t.Errorf("BlockAt(0) = %v, want nil", got)
	}
	if got := p.BlockAt(1 << 62); got != nil {
		t.Errorf("BlockAt(huge) = %v, want nil", got)
	}
}

func TestBlocksBetween(t *testing.T) {
	p := buildLoopProgram(t)
	main := p.FuncByName("main")
	blocks := main.Blocks
	// Straight-line run from entry through merge (indices 0..3).
	got := p.BlocksBetween(blocks[0].Addr, blocks[3].Addr)
	if len(got) != 4 {
		t.Fatalf("BlocksBetween covered %d blocks, want 4", len(got))
	}
	for i, blk := range got {
		if blk != blocks[i] {
			t.Errorf("block %d = %v, want %v", i, blk, blocks[i])
		}
	}
	// Same block start to its own last address: just that block.
	got = p.BlocksBetween(blocks[1].Addr, blocks[1].LastAddr())
	if len(got) != 1 || got[0] != blocks[1] {
		t.Errorf("single-block stream = %v", got)
	}
	// Reversed range yields nothing.
	if got := p.BlocksBetween(blocks[3].Addr, blocks[0].Addr); got != nil {
		t.Errorf("reversed range = %v, want nil", got)
	}
	// Unmapped endpoints yield nothing.
	if got := p.BlocksBetween(0, blocks[0].Addr); got != nil {
		t.Errorf("unmapped from = %v, want nil", got)
	}
}

func TestLastAddrIsBranchSource(t *testing.T) {
	p := buildLoopProgram(t)
	for _, blk := range p.Blocks() {
		if blk.Term.Kind == TermFallthrough || len(blk.Ops) == 0 {
			continue
		}
		last := blk.LastAddr()
		want := blk.End() - uint64(blk.Ops[len(blk.Ops)-1].Bytes())
		if last != want {
			t.Errorf("%s: LastAddr %#x, want %#x", blk, last, want)
		}
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	b := NewBuilder("bad")
	mod := b.Module("m", RingUser)
	f := b.Function(mod, "f")
	blk := b.Block(f, isa.MOV)
	blk.Term = Terminator{Kind: TermCond, Prob: 0.5} // missing targets
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted cond terminator without targets")
	}
}

func TestValidateCatchesBadProb(t *testing.T) {
	b := NewBuilder("bad")
	mod := b.Module("m", RingUser)
	f := b.Function(mod, "f")
	a := b.Block(f, isa.MOV)
	c := b.Block(f, isa.MOV)
	d := b.Block(f, isa.MOV)
	b.Cond(a, isa.JZ, c, d, 0.5)
	a.Term.Prob = 1.5
	b.Return(c)
	b.Return(d)
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted probability 1.5")
	}
}

func TestValidateCatchesZeroTrip(t *testing.T) {
	b := NewBuilder("bad")
	mod := b.Module("m", RingUser)
	f := b.Function(mod, "f")
	head := b.Block(f, isa.MOV)
	latch := b.Block(f, isa.ADD)
	exit := b.Block(f, isa.MOV)
	b.Fallthrough(head, latch)
	b.Loop(latch, isa.JNZ, head, exit, 0)
	b.Return(exit)
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted loop trip 0")
	}
}

func TestSyscallInsertedForKernelCallee(t *testing.T) {
	p := buildLoopProgram(t)
	f := p.FuncByName("do_syscall")
	blk := f.Blocks[0]
	if got := blk.Ops[len(blk.Ops)-1]; got != isa.SYSCALL {
		t.Errorf("cross-ring call compiled to %v, want SYSCALL", got)
	}
	kfn := p.FuncByName("sys_demo")
	kblk := kfn.Blocks[len(kfn.Blocks)-1]
	if got := kblk.Ops[len(kblk.Ops)-1]; got != isa.SYSRET {
		t.Errorf("kernel return compiled to %v, want SYSRET", got)
	}
}

func TestDisassembleMatchesProgram(t *testing.T) {
	p := buildLoopProgram(t)
	for _, m := range p.Modules {
		decoded, err := Disassemble(m)
		if err != nil {
			t.Fatalf("Disassemble(%s): %v", m.Name, err)
		}
		var want []isa.Op
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				want = append(want, blk.Ops...)
			}
		}
		if len(decoded) != len(want) {
			t.Fatalf("%s: decoded %d insts, want %d", m.Name, len(decoded), len(want))
		}
		for i := range want {
			if decoded[i].Op != want[i] {
				t.Errorf("%s inst %d: %v, want %v", m.Name, i, decoded[i].Op, want[i])
			}
		}
	}
}

func TestBlockIDsDense(t *testing.T) {
	p := buildLoopProgram(t)
	seen := make([]bool, p.NumBlocks())
	for _, blk := range p.Blocks() {
		if blk.ID < 0 || blk.ID >= p.NumBlocks() {
			t.Fatalf("%s: ID %d out of range", blk, blk.ID)
		}
		if seen[blk.ID] {
			t.Fatalf("duplicate ID %d", blk.ID)
		}
		seen[blk.ID] = true
		if p.BlockByID(blk.ID) != blk {
			t.Errorf("BlockByID(%d) mismatch", blk.ID)
		}
	}
}

// Property: for any address inside the program's range, BlockAt either
// returns nil or a block that actually contains the address.
func TestQuickBlockAtConsistent(t *testing.T) {
	p := buildLoopProgram(t)
	blocks := p.Blocks()
	lo := blocks[0].Addr
	hi := blocks[len(blocks)-1].End()
	f := func(offset uint32) bool {
		addr := lo + uint64(offset)%(hi-lo+64)
		blk := p.BlockAt(addr)
		if blk == nil {
			for _, b := range blocks {
				if b.Contains(addr) {
					return false
				}
			}
			return true
		}
		return blk.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFuncHelpers(t *testing.T) {
	p := buildLoopProgram(t)
	main := p.FuncByName("main")
	if main == nil {
		t.Fatal("main not found")
	}
	if main.Entry() != main.Blocks[0] {
		t.Error("Entry() is not first block")
	}
	if main.Addr() != main.Blocks[0].Addr {
		t.Error("Addr() mismatch")
	}
	if main.StaticLen() == 0 {
		t.Error("StaticLen() zero")
	}
	if p.FuncByName("nope") != nil {
		t.Error("FuncByName on missing name should be nil")
	}
	if p.ModuleByName("kernel") == nil {
		t.Error("ModuleByName(kernel) missing")
	}
	if p.TotalStaticInsts() == 0 {
		t.Error("TotalStaticInsts zero")
	}
}
