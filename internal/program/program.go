// Package program models static programs: modules, functions and basic
// blocks laid out in a flat address space.
//
// The paper's analyzer maps dynamic PMU samples onto "static basic block
// maps" extracted from binaries with a disassembler. Here the static side
// is explicit: workload generators build programs from typed basic
// blocks, the layout step assigns addresses and encodes the code bytes
// (via internal/isa), and the block map answers the two queries the
// profiling pipeline needs — "which block contains this IP?" and "which
// blocks lie on the straight-line path between these two addresses?".
package program

import (
	"fmt"
	"sort"

	"hbbp/internal/isa"
)

// Ring is the privilege level code executes in. The paper's headline
// coverage advantage over software instrumentation is ring 0 visibility.
type Ring uint8

// Privilege rings.
const (
	RingUser   Ring = iota // user mode (rings 1-3 on x86)
	RingKernel             // kernel mode (ring 0)
)

// String returns "user" or "kernel".
func (r Ring) String() string {
	if r == RingKernel {
		return "kernel"
	}
	return "user"
}

// TermKind classifies how control leaves a basic block.
type TermKind uint8

// Terminator kinds.
const (
	// TermFallthrough continues to Next unconditionally without a
	// branch instruction.
	TermFallthrough TermKind = iota
	// TermJump transfers to Target via an unconditional jump.
	TermJump
	// TermLoop branches back to Target (the loop head) Trip-1 times per
	// activation, then falls through to Next. It models a counted loop
	// back-edge.
	TermLoop
	// TermCond branches to Target with probability Prob, otherwise
	// falls through to Next. Used for forward (if/else) edges only.
	TermCond
	// TermCall invokes Callee and then continues to Next.
	TermCall
	// TermReturn returns to the caller.
	TermReturn
)

// String names the terminator kind.
func (k TermKind) String() string {
	switch k {
	case TermFallthrough:
		return "fallthrough"
	case TermJump:
		return "jump"
	case TermLoop:
		return "loop"
	case TermCond:
		return "cond"
	case TermCall:
		return "call"
	case TermReturn:
		return "return"
	}
	return fmt.Sprintf("TermKind(%d)", uint8(k))
}

// Terminator describes the control transfer at the end of a block.
type Terminator struct {
	Kind   TermKind
	Target *Block    // taken-branch destination (TermJump, TermLoop, TermCond)
	Next   *Block    // fallthrough successor (all kinds except TermJump/TermReturn)
	Callee *Function // callee (TermCall)
	Trip   int       // iterations per activation (TermLoop, >= 1)
	Prob   float64   // taken probability (TermCond, in [0,1])
}

// Block is a basic block: a straight-line instruction sequence with a
// single entry and a single terminator.
type Block struct {
	ID    int       // global, dense, assigned by the builder
	Fn    *Function // owning function
	Ops   []isa.Op  // instructions, including the terminating branch if any
	Term  Terminator
	Addr  uint64 // address of the first instruction (set by Layout)
	Size  uint64 // encoded size in bytes (set by Layout)
	Index int    // position within Fn.Blocks

	// TraceJump marks a kernel trace point: the static code image ends
	// this block with an unconditional JMP, but the live kernel patches
	// it to NOPs while tracing is disabled, so execution falls through.
	// This reproduces the self-modifying-kernel issue of Section III.C:
	// LBR streams appear to "ignore" a branch present in the static
	// disassembly until the analyzer re-patches the static text from
	// the live image.
	TraceJump bool
}

// Len returns the number of instructions in the block — the feature that
// dominates the paper's learned EBS-vs-LBR rule.
func (b *Block) Len() int { return len(b.Ops) }

// End returns the first address past the block.
func (b *Block) End() uint64 { return b.Addr + b.Size }

// Contains reports whether addr falls inside the block's address range.
func (b *Block) Contains(addr uint64) bool { return addr >= b.Addr && addr < b.End() }

// LastAddr returns the address of the block's final instruction — the
// branch source recorded by the LBR when the terminator is taken.
func (b *Block) LastAddr() uint64 {
	if len(b.Ops) == 0 {
		return b.Addr
	}
	addr := b.Addr
	for _, op := range b.Ops[:len(b.Ops)-1] {
		addr += uint64(op.Bytes())
	}
	return addr
}

// InstAddrs returns the address of every instruction in the block.
func (b *Block) InstAddrs() []uint64 {
	addrs := make([]uint64, len(b.Ops))
	addr := b.Addr
	for i, op := range b.Ops {
		addrs[i] = addr
		addr += uint64(op.Bytes())
	}
	return addrs
}

// EffectiveOps returns the instructions the live machine retires when
// executing this block. For ordinary blocks this is Ops; for kernel
// trace points the trailing static JMP (2 bytes) is replaced by the two
// 1-byte NOPs the live kernel patches in.
func (b *Block) EffectiveOps() []isa.Op {
	if !b.TraceJump {
		return b.Ops
	}
	ops := make([]isa.Op, 0, len(b.Ops)+1)
	ops = append(ops, b.Ops[:len(b.Ops)-1]...)
	return append(ops, isa.NOP, isa.NOP)
}

// String identifies the block for diagnostics.
func (b *Block) String() string {
	return fmt.Sprintf("%s.bb%d@%#x[%d]", b.Fn.Name, b.Index, b.Addr, b.Len())
}

// Function is a named, contiguous sequence of basic blocks. Blocks[0] is
// the entry.
type Function struct {
	Name   string
	Mod    *Module
	Blocks []*Block
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Addr returns the function's entry address.
func (f *Function) Addr() uint64 { return f.Blocks[0].Addr }

// StaticLen returns the total static instruction count of the function.
func (f *Function) StaticLen() int {
	n := 0
	for _, b := range f.Blocks {
		n += b.Len()
	}
	return n
}

// Module is a loadable unit: the main binary, a shared library, the
// kernel image, or a kernel module.
type Module struct {
	Name  string
	Ring  Ring
	Base  uint64 // load address (set by Layout)
	Code  []byte // encoded instruction bytes (set by Layout)
	Funcs []*Function
}

// Size returns the encoded size of the module in bytes.
func (m *Module) Size() uint64 { return uint64(len(m.Code)) }

// LiveText returns the module's code bytes as they appear in the live
// image: every trace-point JMP is overwritten with NOPs. For modules
// without trace points it returns Code unchanged. This is the image the
// paper's tool extracts from the running kernel to re-patch the static
// binary on disk.
func (m *Module) LiveText() []byte {
	patched := m.Code
	copied := false
	nop := isa.AppendEncode(nil, isa.NOP)[0]
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if !b.TraceJump {
				continue
			}
			if !copied {
				patched = append([]byte(nil), m.Code...)
				copied = true
			}
			off := b.LastAddr() - m.Base
			for i := 0; i < b.Ops[len(b.Ops)-1].Bytes(); i++ {
				patched[off+uint64(i)] = nop
			}
		}
	}
	return patched
}

// Program is a complete static program: one or more modules plus the
// sorted block index used to resolve sampled IPs.
type Program struct {
	Name    string
	Modules []*Module

	blocks []*Block // all blocks, sorted by address after Layout
	byID   []*Block // dense ID -> block
}

// Blocks returns all blocks in address order.
func (p *Program) Blocks() []*Block { return p.blocks }

// NumBlocks returns the total number of basic blocks.
func (p *Program) NumBlocks() int { return len(p.byID) }

// BlockByID returns the block with the given dense ID.
func (p *Program) BlockByID(id int) *Block { return p.byID[id] }

// BlockAt returns the block containing addr, or nil when the address
// falls outside every block (e.g. inter-module padding).
func (p *Program) BlockAt(addr uint64) *Block {
	i := sort.Search(len(p.blocks), func(i int) bool { return p.blocks[i].End() > addr })
	if i < len(p.blocks) && p.blocks[i].Contains(addr) {
		return p.blocks[i]
	}
	return nil
}

// BlocksBetween returns the blocks forming the straight-line execution
// path from the block starting at (or containing) from through the block
// containing to, inclusive. This resolves one LBR stream
// <Target[i-1], Source[i]>: between two taken branches the CPU executes
// sequentially through consecutive addresses, so the covered blocks are
// exactly the address-contiguous run. It returns nil when either address
// is unmapped or to precedes from.
func (p *Program) BlocksBetween(from, to uint64) []*Block {
	if to < from {
		return nil
	}
	// One binary search per endpoint: the first block whose end exceeds
	// the address is both the containment candidate and the slice
	// bound, and the search for to only scans the tail past from.
	i := sort.Search(len(p.blocks), func(k int) bool { return p.blocks[k].End() > from })
	if i == len(p.blocks) || !p.blocks[i].Contains(from) {
		return nil
	}
	j := i + sort.Search(len(p.blocks)-i, func(k int) bool { return p.blocks[i+k].End() > to })
	if j == len(p.blocks) || !p.blocks[j].Contains(to) {
		return nil
	}
	return p.blocks[i : j+1]
}

// FuncByName looks a function up by name across all modules.
func (p *Program) FuncByName(name string) *Function {
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// ModuleByName looks a module up by name.
func (p *Program) ModuleByName(name string) *Module {
	for _, m := range p.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// TotalStaticInsts returns the static instruction count across modules.
func (p *Program) TotalStaticInsts() int {
	n := 0
	for _, b := range p.blocks {
		n += b.Len()
	}
	return n
}

// Validate checks structural invariants: every block has a valid
// terminator wiring, loop trips are positive, probabilities are in
// range, and all referenced blocks/functions belong to the program.
func (p *Program) Validate() error {
	ids := make(map[int]bool, len(p.byID))
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			if len(f.Blocks) == 0 {
				return fmt.Errorf("program %s: function %s has no blocks", p.Name, f.Name)
			}
			for _, b := range f.Blocks {
				if ids[b.ID] {
					return fmt.Errorf("block ID %d duplicated", b.ID)
				}
				ids[b.ID] = true
				if err := validateTerm(b); err != nil {
					return fmt.Errorf("program %s: %v", p.Name, err)
				}
				// Fallthrough successors must be address-adjacent:
				// execution between taken branches is sequential in
				// addresses, and the LBR stream walker relies on it.
				if next := b.Term.Next; next != nil && b.Size > 0 && next.Addr != b.End() {
					return fmt.Errorf("program %s: %s falls through to non-adjacent %s (%#x != %#x)",
						p.Name, b, next, next.Addr, b.End())
				}
			}
		}
	}
	return nil
}

func validateTerm(b *Block) error {
	t := b.Term
	switch t.Kind {
	case TermFallthrough:
		if t.Next == nil {
			return fmt.Errorf("%s: fallthrough without Next", b)
		}
	case TermJump:
		if t.Target == nil {
			return fmt.Errorf("%s: jump without Target", b)
		}
	case TermLoop:
		if t.Target == nil || t.Next == nil {
			return fmt.Errorf("%s: loop needs Target and Next", b)
		}
		if t.Trip < 1 {
			return fmt.Errorf("%s: loop trip %d < 1", b, t.Trip)
		}
		if t.Target.Addr > b.Addr && t.Target.ID > b.ID {
			return fmt.Errorf("%s: loop target must be a back-edge", b)
		}
	case TermCond:
		if t.Target == nil || t.Next == nil {
			return fmt.Errorf("%s: cond needs Target and Next", b)
		}
		if t.Prob < 0 || t.Prob > 1 {
			return fmt.Errorf("%s: cond probability %g out of range", b, t.Prob)
		}
	case TermCall:
		if t.Callee == nil || t.Next == nil {
			return fmt.Errorf("%s: call needs Callee and Next", b)
		}
	case TermReturn:
		// nothing to check
	default:
		return fmt.Errorf("%s: unknown terminator kind %d", b, t.Kind)
	}
	if t.Kind != TermFallthrough && len(b.Ops) > 0 {
		last := b.Ops[len(b.Ops)-1]
		if !last.IsBranch() && t.Kind != TermLoop && t.Kind != TermCond {
			return fmt.Errorf("%s: terminator %v but last op %v is not a branch", b, t.Kind, last)
		}
	}
	return nil
}
