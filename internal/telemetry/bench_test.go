package telemetry

import (
	"io"
	"testing"
)

// BenchmarkTelemetryCounter measures the hot-path counter increment —
// the cost every instrumented ingest frame pays.
func BenchmarkTelemetryCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryHistogram measures one latency observation: the
// bucket scan plus two atomic adds.
func BenchmarkTelemetryHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", NanosToSeconds, DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%5000000 + 1000))
	}
}

// BenchmarkTelemetryExposition measures a full /metrics render of the
// golden registry — the cost of one scrape.
func BenchmarkTelemetryExposition(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
