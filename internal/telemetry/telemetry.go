// Package telemetry is the repo's runtime observability layer: a
// concurrency-safe metrics registry whose hot-path increments are
// allocation-free, a Prometheus text exposition writer (expose.go) and
// a threshold-gated slow-operation event log (slowlog.go).
//
// The paper's premise is measuring software at near-zero overhead; the
// same discipline applies to measuring this stack itself. Counters and
// gauges are single atomic words, histograms are fixed-bucket arrays
// of atomic words observed with a short linear scan, and none of them
// allocate or take locks on the update path — proven by
// testing.AllocsPerRun in the package tests — so instrumenting the
// wire ingest loop, the merge kernel and the collection planner does
// not perturb the numbers they produce.
//
// Metrics are registered get-or-create by (name, label pairs):
// registering the same metric twice returns the same handle, so
// package-level instrumentation (profstore's merge-path counters) and
// dynamically keyed instrumentation (fleetserver's per-tenant ledgers)
// both resolve their handles once, off the hot path, and share them
// freely across goroutines. Snapshot and WriteProm render the registry
// in a stable order (family name, then label string), so exposition
// bytes are deterministic for a deterministic sequence of updates —
// golden-testable like every other format in this repo.
//
// The package imports only the standard library and is imported by the
// instrumented internals, never the reverse; the repository's
// import-boundary test enforces both directions.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric: merges completed,
// frames shed, retries taken. The zero value is ready to use, but
// counters are normally obtained from [Registry.Counter] so they are
// exported. Add and Inc are one atomic add: lock-free and
// allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that goes up and down: queue depth, live
// connections. Updates are single atomic stores/adds.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution over int64 observations in
// a native integer unit (nanoseconds for latencies, entries for batch
// sizes). Bounds are inclusive upper bounds, ascending; one implicit
// +Inf bucket catches the overflow. Observe is a short linear scan
// plus two atomic adds — allocation-free and lock-free. Scale converts
// the native unit to the exposition base unit (1e-9 for ns → seconds;
// 1 for dimensionless counts).
type Histogram struct {
	bounds []int64
	scale  float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // total observed mass, native units
}

// Observe records one value. Negative values clamp to zero (durations
// from a stepping clock).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.sum.Add(uint64(v))
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
}

// ObserveSince records the elapsed nanoseconds from start — the timer
// idiom for latency histograms: h.ObserveSince(t0).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the observed mass in native units.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// NanosToSeconds is the histogram scale for nanosecond observations
// exposed in Prometheus base seconds.
const NanosToSeconds = 1e-9

// DurationBuckets returns the standard latency ladder in nanoseconds:
// 10µs to 5s, roughly half-decade steps. Pair with [NanosToSeconds].
func DurationBuckets() []int64 {
	return []int64{
		int64(10 * time.Microsecond),
		int64(50 * time.Microsecond),
		int64(100 * time.Microsecond),
		int64(500 * time.Microsecond),
		int64(1 * time.Millisecond),
		int64(5 * time.Millisecond),
		int64(10 * time.Millisecond),
		int64(50 * time.Millisecond),
		int64(100 * time.Millisecond),
		int64(500 * time.Millisecond),
		int64(1 * time.Second),
		int64(5 * time.Second),
	}
}

// CountBuckets returns the standard size ladder for dimensionless
// counts (batch entries, windows per query): powers of two, 1 to 1024.
// Use scale 1.
func CountBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// kind is a family's metric type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// String renders the Prometheus TYPE keyword.
func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (name, labels) time series inside a family. Exactly
// one of the value fields is set, per the family's kind.
type series struct {
	labels  string // rendered `k="v",...` form, possibly empty
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name: one TYPE, one
// HELP, many label sets.
type family struct {
	name   string
	help   string
	kind   kind
	scale  float64 // histograms only
	bounds []int64 // histograms only
	series map[string]*series
}

// Registry holds metric families and hands out shared metric handles.
// Registration (Counter, Gauge, Histogram, GaugeFunc) takes the
// registry lock and is get-or-create — call it at setup, keep the
// handle for the hot path. Snapshot and WriteProm iterate in stable
// (name, labels) order. The zero value is not usable; construct with
// [NewRegistry] or share the process-wide [Default].
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	slowOnce sync.Once
	slow     *SlowLog
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// std is the process-wide default registry: the one package-level
// instrumentation (profstore, tsstore, harness) writes to and the one
// hbbpd's /metrics endpoint serves.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// labelString renders label pairs in given order as `k="v",...` with
// Prometheus value escaping. Pairs are not sorted: callers register
// with a consistent order, and that order becomes the stable identity.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getFamily returns (creating if needed) the family for name,
// panicking on a kind conflict — re-registering one name as two
// metric types is a programming error, not a runtime condition.
func (r *Registry) getFamily(name, help string, k kind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, k))
	}
	return f
}

// Counter returns the counter for (name, labels), creating and
// registering it on first use. labels are alternating key, value
// pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls, counter: &Counter{}}
		f.series[ls] = s
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating and registering
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls, gauge: &Gauge{}}
		f.series[ls] = s
	}
	return s.gauge
}

// GaugeFunc registers a gauge sampled by calling fn at snapshot and
// exposition time — for values something else already tracks (queue
// depth as len(chan)). Re-registering the same (name, labels) replaces
// the callback (last writer wins: a restarted server re-binds its
// queue). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGaugeFunc)
	f.series[ls] = &series{labels: ls, gaugeFn: fn}
}

// Histogram returns the histogram for (name, labels), creating and
// registering it on first use with the given bucket bounds (inclusive
// upper bounds, ascending, native integer units) and exposition scale
// (use [NanosToSeconds] for nanosecond observations; 0 means 1). All
// series of one family share the first registration's bounds and
// scale.
func (r *Registry) Histogram(name, help string, scale float64, bounds []int64, labels ...string) *Histogram {
	if scale == 0 {
		scale = 1
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	if f.bounds == nil {
		f.bounds = append([]int64(nil), bounds...)
		f.scale = scale
	}
	s := f.series[ls]
	if s == nil {
		h := &Histogram{bounds: f.bounds, scale: f.scale}
		h.counts = make([]atomic.Uint64, len(f.bounds)+1)
		s = &series{labels: ls, hist: h}
		f.series[ls] = s
	}
	return s.hist
}

// Slow returns the registry's slow-operation log, creating it with
// [DefaultSlowThreshold] and [DefaultSlowCapacity] on first use.
func (r *Registry) Slow() *SlowLog {
	r.slowOnce.Do(func() {
		r.slow = NewSlowLog(DefaultSlowThreshold, DefaultSlowCapacity)
	})
	return r.slow
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns one family's series in label order. Called
// without the registry lock: the series map only grows, and growth
// races merely mean a just-registered series shows up one snapshot
// late.
func (f *family) sortedSeries(r *Registry) []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
