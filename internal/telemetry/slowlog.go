package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for [Registry.Slow]: an operation slower than 100ms is
// worth a log entry, and the newest 128 entries are retained.
const (
	DefaultSlowThreshold = 100 * time.Millisecond
	DefaultSlowCapacity  = 128
)

// SlowEvent is one recorded slow operation.
type SlowEvent struct {
	// Seq numbers events in record order, monotonically from 1, across
	// ring evictions — gaps in a read tell the reader how much history
	// the ring dropped.
	Seq uint64
	// Op names the operation class ("ingest", "fold", "collect").
	Op string
	// Detail is operation context rendered at record time (tenant,
	// window span, frame type).
	Detail string
	// Duration is how long the operation took.
	Duration time.Duration
	// When is the completion time.
	When time.Time
}

// SlowLog is a threshold-gated ring of slow operations: Observe
// compares a duration against the threshold with one atomic load and
// returns without allocating when the operation was fast — the only
// cost the hot path ever pays. Slow operations (the rare case by
// construction) take a lock, render their detail and enter the ring,
// evicting the oldest entry when full.
type SlowLog struct {
	threshold atomic.Int64 // ns
	total     atomic.Uint64

	mu   sync.Mutex
	ring []SlowEvent
	next int // ring insertion cursor
	seq  uint64
}

// NewSlowLog returns a log gated at threshold retaining up to capacity
// events (minimum 1).
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEvent, 0, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current gate.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// SetThreshold replaces the gate; a non-positive d disables the log
// (nothing is ever slow enough).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if d <= 0 {
		d = 1<<63 - 1
	}
	l.threshold.Store(int64(d))
}

// Observe records op if d reached the threshold, calling detail (which
// may be nil) only then — the gate runs before any formatting work, so
// fast operations pay one atomic load and one compare. Reports whether
// the event was recorded.
func (l *SlowLog) Observe(op string, d time.Duration, detail func() string) bool {
	if int64(d) < l.threshold.Load() {
		return false
	}
	l.total.Add(1)
	var det string
	if detail != nil {
		det = detail()
	}
	ev := SlowEvent{Op: op, Detail: det, Duration: d, When: time.Now()}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % len(l.ring)
	}
	l.mu.Unlock()
	return true
}

// Total returns how many slow operations have been recorded since
// creation, including ones the ring has since evicted.
func (l *SlowLog) Total() uint64 { return l.total.Load() }

// Events returns the retained events, oldest first.
func (l *SlowLog) Events() []SlowEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEvent, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// Render formats the retained events one per line, oldest first — the
// /slowops admin view and the CLI summary form.
func (l *SlowLog) Render() string {
	evs := l.Events()
	if len(evs) == 0 {
		return fmt.Sprintf("no operations over %s\n", l.Threshold())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d slow operations recorded (threshold %s), newest %d retained:\n",
		l.Total(), l.Threshold(), len(evs))
	for _, ev := range evs {
		fmt.Fprintf(&b, "  #%-6d %-10s %12s  %s\n", ev.Seq, ev.Op, ev.Duration.Round(time.Microsecond), ev.Detail)
	}
	return b.String()
}
