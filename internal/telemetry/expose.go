package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a [Metric]: the count
// of observations at or below LE (in exposition base units).
type Bucket struct {
	LE    float64
	Count uint64
}

// Metric is one time series in a [Snapshot]. Counters and gauges carry
// Value; histograms carry Count, Sum and cumulative Buckets (Value is
// zero).
type Metric struct {
	// Name is the family name, e.g. "hbbp_fleetserver_profiles_total".
	Name string
	// Type is the Prometheus type: "counter", "gauge" or "histogram".
	Type string
	// Labels is the rendered label set (`tenant="acme"`), empty when
	// the series has no labels.
	Labels string
	// Value is the counter or gauge reading.
	Value float64
	// Count and Sum summarize a histogram (Sum in base units).
	Count uint64
	Sum   float64
	// Buckets are the histogram's cumulative buckets, ending with +Inf.
	Buckets []Bucket
}

// Snapshot is a point-in-time read of a registry in stable (name,
// labels) order — the programmatic twin of the /metrics exposition.
type Snapshot []Metric

// Snapshot reads every series. Each individual value is one atomic
// load; the snapshot as a whole is not a cross-metric transaction
// (standard for metrics: monitoring reads race with updates
// harmlessly).
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries(r) {
			m := Metric{Name: f.name, Type: f.kind.String(), Labels: s.labels}
			switch f.kind {
			case kindCounter:
				m.Value = float64(s.counter.Value())
			case kindGauge:
				m.Value = float64(s.gauge.Value())
			case kindGaugeFunc:
				m.Value = s.gaugeFn()
			case kindHistogram:
				var cum uint64
				m.Buckets = make([]Bucket, 0, len(f.bounds)+1)
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					le := math.Inf(1)
					if i < len(f.bounds) {
						le = float64(f.bounds[i]) * f.scale
					}
					m.Buckets = append(m.Buckets, Bucket{LE: le, Count: cum})
				}
				m.Count = cum
				m.Sum = float64(s.hist.Sum()) * f.scale
			}
			out = append(out, m)
		}
	}
	return out
}

// Render formats the snapshot as aligned human-readable lines — the
// final-summary form cmd/experiments and examples/fleet print.
// Zero-valued series are skipped (an unexercised code path is noise in
// a run summary); histograms render as count and mean.
func (s Snapshot) Render() string {
	var b strings.Builder
	for _, m := range s {
		name := m.Name
		if m.Labels != "" {
			name += "{" + m.Labels + "}"
		}
		switch m.Type {
		case "histogram":
			if m.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-64s count=%d sum=%s\n", name, m.Count, formatFloat(m.Sum))
		default:
			if m.Value == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-64s %s\n", name, formatFloat(m.Value))
		}
	}
	return b.String()
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4): families in name order, series in label
// order, histograms as cumulative _bucket/_sum/_count series. The
// bytes are deterministic for deterministic metric values — the
// golden exposition test pins them.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries(r) {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, s.labels, "", float64(s.counter.Value()))
			case kindGauge:
				writeSample(bw, f.name, s.labels, "", float64(s.gauge.Value()))
			case kindGaugeFunc:
				writeSample(bw, f.name, s.labels, "", s.gaugeFn())
			case kindHistogram:
				var cum uint64
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					le := "+Inf"
					if i < len(f.bounds) {
						le = formatFloat(float64(f.bounds[i]) * f.scale)
					}
					writeSample(bw, f.name+"_bucket", s.labels, `le="`+le+`"`, float64(cum))
				}
				writeSample(bw, f.name+"_sum", s.labels, "", float64(s.hist.Sum())*f.scale)
				writeSample(bw, f.name+"_count", s.labels, "", float64(cum))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one exposition line, merging the series labels
// with an extra label (the histogram le).
func writeSample(w io.Writer, name, labels, extra string, v float64) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, extra, formatFloat(v))
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, formatFloat(v))
	}
}

// escapeHelp applies the exposition escapes for HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// formatFloat renders a value the way Prometheus clients conventionally
// do: whole numbers without an exponent or decimal point, everything
// else in shortest-round-trip form.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
