package telemetry

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// goldenRegistry builds the fixed registry the exposition golden test
// and benchmark share: every metric kind, labeled and unlabeled
// series, and a histogram with observations in distinct buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("hbbp_profiles_total", "Profiles by outcome.", "tenant", "acme", "outcome", "merged").Add(41)
	r.Counter("hbbp_profiles_total", "Profiles by outcome.", "tenant", "acme", "outcome", "shed").Add(1)
	r.Counter("hbbp_profiles_total", "Profiles by outcome.", "tenant", `we"ird\te nant`, "outcome", "merged").Add(2)
	r.Counter("hbbp_connections_total", "Connections accepted.").Add(7)
	r.Gauge("hbbp_queue_depth", "Ingest queue occupancy.").Set(3)
	r.GaugeFunc("hbbp_queue_capacity", "Ingest queue bound.", func() float64 { return 64 })
	h := r.Histogram("hbbp_ingest_seconds", "Ingest latency.", NanosToSeconds, DurationBuckets(), "frame", "profile")
	h.Observe(int64(25 * time.Microsecond))
	h.Observe(int64(25 * time.Microsecond))
	h.Observe(int64(3 * time.Millisecond))
	h.Observe(int64(2 * time.Second))
	h.Observe(int64(90 * time.Second)) // +Inf bucket
	r.Histogram("hbbp_batch_entries", "Entries per batch frame.", 1, CountBuckets()).Observe(16)
	return r
}

// TestExpositionGolden pins the /metrics bytes to the committed
// fixture: family and series order, float formatting, label escaping,
// cumulative histogram layout — the whole exposition surface.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_metrics.prom")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition diverged from %s:\n--- got ---\n%s--- want ---\n%s", path, buf.String(), want)
	}
}

// TestExpositionParses walks every exposition line through the
// format's structural rules: samples belong to a family announced by
// a preceding # TYPE, and every value parses as a float.
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := lintExposition(buf.Bytes()); len(problems) > 0 {
		t.Fatalf("exposition does not parse: %v", problems)
	}
}

// lintExposition is a minimal structural checker for the Prometheus
// text format: every non-comment line must be NAME{LABELS} VALUE with
// a parseable value, and every sample must follow a # TYPE for its
// family (histograms admit the _bucket/_sum/_count suffixes). Returns
// human-readable problems, empty when the input is well-formed.
func lintExposition(data []byte) []string {
	var problems []string
	typed := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if typed[base] == "" {
			problems = append(problems, "no preceding # TYPE for: "+line)
			continue
		}
		fields := strings.Fields(line)
		val := fields[len(fields)-1]
		if val != "+Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				problems = append(problems, "unparseable value on: "+line)
			}
		}
	}
	return problems
}
