package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGetOrCreateSharesHandles pins the registration contract: the
// same (name, labels) always resolves to the same handle, and label
// order is part of the identity.
func TestGetOrCreateSharesHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "k", "v")
	b := r.Counter("x_total", "other help ignored", "k", "v")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "help", "k", "w")
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
	h1 := r.Histogram("h_seconds", "help", NanosToSeconds, DurationBuckets(), "k", "v")
	h2 := r.Histogram("h_seconds", "help", NanosToSeconds, DurationBuckets(), "k", "v")
	if h1 != h2 {
		t.Error("same (name, labels) returned distinct histograms")
	}
}

// TestKindConflictPanics pins that re-registering a name as a
// different metric type is a loud programming error.
func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

// TestCounterGaugeHistogramValues drives each type through its update
// surface and checks the read-back.
func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	h := r.Histogram("h", "", 1, []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	// -5 clamps to 0.
	if got := h.Sum(); got != 1+10+11+1000 {
		t.Errorf("histogram sum = %d, want %d", got, 1+10+11+1000)
	}
	// Buckets: le=10 holds {1, 10, 0-clamped}, le=100 holds 11, +Inf holds 1000.
	snap := r.Snapshot()
	for _, m := range snap {
		if m.Name != "h" {
			continue
		}
		want := []uint64{3, 4, 5} // cumulative
		for i, b := range m.Buckets {
			if b.Count != want[i] {
				t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, want[i])
			}
		}
	}
}

// TestConcurrentUpdatesAndSnapshots hammers one registry from many
// goroutines — updates, registrations and snapshots interleaved — so
// the race detector can pass judgment, and checks the totals add up.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker resolves its own handles: get-or-create must
			// converge on shared storage.
			c := r.Counter("work_total", "")
			h := r.Histogram("lat", "", 1, CountBuckets())
			g := r.Gauge("depth", "")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 50))
				g.Set(int64(i))
				if i%1000 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("work_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", "", 1, CountBuckets()).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHotPathsAllocationFree is the ISSUE's allocation proof: the
// update paths instrumenting the PR-9 hot loops must not allocate.
func TestHotPathsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", NanosToSeconds, DurationBuckets())
	slow := r.Slow()
	t0 := time.Now()
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Histogram.ObserveSince", func() { h.ObserveSince(t0) }},
		{"SlowLog.Observe(fast)", func() { slow.Observe("op", time.Microsecond, nil) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", tc.name, allocs)
		}
	}
}

// TestSnapshotStableOrder pins snapshot ordering: families by name,
// series by label string, independent of registration order.
func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "", "t", "b")
	r.Counter("aaa_total", "", "t", "a")
	r.Gauge("mmm", "")
	var got []string
	for _, m := range r.Snapshot() {
		key := m.Name
		if m.Labels != "" {
			key += "{" + m.Labels + "}"
		}
		got = append(got, key)
	}
	want := []string{`aaa_total{t="a"}`, `aaa_total{t="b"}`, "mmm", "zzz_total"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
}

// TestGaugeFuncSampledAtReadTime pins callback gauges: the value is
// whatever the function says at snapshot time, and re-registration
// replaces the callback.
func TestGaugeFuncSampledAtReadTime(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("depth", "", func() float64 { return v })
	if got := r.Snapshot()[0].Value; got != 3 {
		t.Errorf("gauge func = %v, want 3", got)
	}
	v = 9
	if got := r.Snapshot()[0].Value; got != 9 {
		t.Errorf("gauge func = %v, want 9", got)
	}
	r.GaugeFunc("depth", "", func() float64 { return 100 })
	if got := r.Snapshot()[0].Value; got != 100 {
		t.Errorf("replaced gauge func = %v, want 100", got)
	}
}

// TestSlowLogGateAndRing drives the slow log through its gate, ring
// eviction and detail laziness.
func TestSlowLogGateAndRing(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	detailCalls := 0
	detail := func() string { detailCalls++; return "ctx" }
	if l.Observe("fast", time.Millisecond, detail) {
		t.Error("fast op recorded")
	}
	if detailCalls != 0 {
		t.Error("detail rendered for a fast op")
	}
	for i := 0; i < 5; i++ {
		if !l.Observe("slow", time.Duration(i+10)*time.Millisecond, detail) {
			t.Fatalf("slow op %d not recorded", i)
		}
	}
	if detailCalls != 5 {
		t.Errorf("detail calls = %d, want 5", detailCalls)
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5", l.Total())
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3 (ring capacity)", len(evs))
	}
	// Oldest-first with the two oldest evicted: seqs 3, 4, 5.
	for i, ev := range evs {
		if ev.Seq != uint64(i+3) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+3)
		}
		if ev.Detail != "ctx" {
			t.Errorf("event %d detail = %q", i, ev.Detail)
		}
	}
	if !strings.Contains(l.Render(), "5 slow operations") {
		t.Errorf("render missing total:\n%s", l.Render())
	}

	// Threshold is adjustable; non-positive disables.
	l.SetThreshold(0)
	if l.Observe("slow", time.Hour, nil) {
		t.Error("disabled log recorded an event")
	}
}

// TestSlowLogConcurrent exercises the log under the race detector.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe("op", 2*time.Millisecond, nil)
				if i%100 == 0 {
					l.Events()
				}
			}
		}()
	}
	wg.Wait()
	if l.Total() != 4000 {
		t.Errorf("total = %d, want 4000", l.Total())
	}
	evs := l.Events()
	if len(evs) != 8 {
		t.Fatalf("retained = %d, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("events not in seq order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestRenderSkipsZeroSeries pins the summary form: untouched metrics
// do not clutter the final snapshot print.
func TestRenderSkipsZeroSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("used_total", "").Add(2)
	r.Counter("unused_total", "")
	r.Histogram("h", "", 1, CountBuckets()) // never observed
	out := r.Snapshot().Render()
	if !strings.Contains(out, "used_total") {
		t.Errorf("render missing used_total:\n%s", out)
	}
	if strings.Contains(out, "unused_total") || strings.Contains(out, "h ") {
		t.Errorf("render shows zero series:\n%s", out)
	}
}
