package profstore

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randomProfile generates a deterministic pseudo-random single-run
// profile. Keys are drawn from small pools so independently generated
// profiles overlap — the interesting case for merging.
func randomProfile(rng *rand.Rand) *Profile {
	units := []string{"gcc", "povray", "fitter-avx", "svc"}
	modules := []string{"a.out", "libm.so", "vmlinux", "hot.ko"}
	funcs := []string{"main", "step", "kernel_entry", "solve", "inner"}
	mnemonics := []string{"add", "mov", "vaddps", "div", "jz", "call", "fmul"}

	unit := units[rng.Intn(len(units))]
	raw := &Profile{
		Workloads: []WorkloadWeight{{Name: unit, Runs: 1}},
	}
	for i, n := 0, 1+rng.Intn(40); i < n; i++ {
		ring := RingUser
		if rng.Intn(4) == 0 {
			ring = RingKernel
		}
		raw.Blocks = append(raw.Blocks, Block{
			Unit:     unit,
			Module:   modules[rng.Intn(len(modules))],
			Function: funcs[rng.Intn(len(funcs))],
			Addr:     uint64(rng.Intn(64)) * 16,
			Ring:     ring,
			Len:      uint32(1 + rng.Intn(30)),
			Count:    uint64(rng.Intn(1_000_000)),
		})
	}
	for i, n := 0, 1+rng.Intn(12); i < n; i++ {
		ring := RingUser
		if rng.Intn(4) == 0 {
			ring = RingKernel
		}
		raw.Ops = append(raw.Ops, OpMass{
			Mnemonic: mnemonics[rng.Intn(len(mnemonics))],
			Ring:     ring,
			Mass:     uint64(rng.Intn(10_000_000)),
		})
	}
	return Canonical(raw)
}

// mustBytes serializes a profile or fails the test.
func mustBytes(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// equalProfiles asserts both deep equality and bit-identical
// serialization — the property the fleet store promises.
func equalProfiles(t *testing.T, what string, a, b *Profile) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: profiles differ structurally:\n%+v\nvs\n%+v", what, a, b)
		return
	}
	if !bytes.Equal(mustBytes(t, a), mustBytes(t, b)) {
		t.Errorf("%s: profiles serialize to different bytes", what)
	}
}

// TestMergeIdentity pins merge(p) == p for canonical p, and that the
// empty merge is the identity element.
func TestMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := randomProfile(rng)
		equalProfiles(t, "merge(p) == p", Merge(p), p)
		equalProfiles(t, "merge(p, empty) == p", Merge(p, Merge()), p)
		equalProfiles(t, "merge(nil, p) == p", Merge(nil, p), p)
	}
}

// TestMergeOrderIndependence pins that merging any permutation of the
// same profiles produces bit-identical results.
func TestMergeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	profiles := make([]*Profile, 12)
	for i := range profiles {
		profiles[i] = randomProfile(rng)
	}
	want := Merge(profiles...)
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(profiles))
		shuffled := make([]*Profile, len(profiles))
		for i, j := range perm {
			shuffled[i] = profiles[j]
		}
		equalProfiles(t, "permuted merge", Merge(shuffled...), want)
	}
}

// TestMergeAssociativity pins that grouping does not matter: pairwise
// left folds, right folds and arbitrary tree shapes all match the
// flat merge.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	profiles := make([]*Profile, 9)
	for i := range profiles {
		profiles[i] = randomProfile(rng)
	}
	want := Merge(profiles...)

	left := Merge()
	for _, p := range profiles {
		left = Merge(left, p)
	}
	equalProfiles(t, "left fold", left, want)

	right := Merge()
	for i := len(profiles) - 1; i >= 0; i-- {
		right = Merge(profiles[i], right)
	}
	equalProfiles(t, "right fold", right, want)

	tree := Merge(
		Merge(profiles[0], Merge(profiles[1], profiles[2])),
		Merge(Merge(profiles[3], profiles[4]), profiles[5]),
		Merge(profiles[6], profiles[7], profiles[8]),
	)
	equalProfiles(t, "tree shape", tree, want)
}

// TestWeightedEqualsRepeatedMerge pins the weight accounting:
// p.Weighted(k) is exactly k copies merged.
func TestWeightedEqualsRepeatedMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomProfile(rng)
	equalProfiles(t, "weighted(3)", p.Weighted(3), Merge(p, p, p))
}

// TestCanonicalNormalizes pins that hand-assembled profiles — out of
// order, duplicated keys, zero-mass entries — normalize to the same
// canonical form.
func TestCanonicalNormalizes(t *testing.T) {
	messy := &Profile{
		Workloads: []WorkloadWeight{{Name: "b", Runs: 1}, {Name: "a", Runs: 2}, {Name: "b", Runs: 1}},
		Blocks: []Block{
			{Unit: "u", Module: "m", Function: "g", Addr: 32, Len: 4, Count: 5},
			{Unit: "u", Module: "m", Function: "f", Addr: 16, Len: 2, Count: 7},
			{Unit: "u", Module: "m", Function: "g", Addr: 32, Len: 4, Count: 5},
			{Unit: "u", Module: "m", Function: "z", Addr: 48, Len: 3, Count: 0}, // dropped
		},
		Ops: []OpMass{
			{Mnemonic: "mov", Ring: RingUser, Mass: 3},
			{Mnemonic: "add", Ring: RingKernel, Mass: 2},
			{Mnemonic: "add", Ring: RingUser, Mass: 1},
			{Mnemonic: "mov", Ring: RingUser, Mass: 4},
			{Mnemonic: "nop", Ring: RingUser, Mass: 0}, // dropped
		},
	}
	want := &Profile{
		Workloads: []WorkloadWeight{{Name: "a", Runs: 2}, {Name: "b", Runs: 2}},
		Blocks: []Block{
			{Unit: "u", Module: "m", Function: "f", Addr: 16, Len: 2, Count: 7},
			{Unit: "u", Module: "m", Function: "g", Addr: 32, Len: 4, Count: 10},
		},
		Ops: []OpMass{
			{Mnemonic: "add", Ring: RingUser, Mass: 1},
			{Mnemonic: "add", Ring: RingKernel, Mass: 2},
			{Mnemonic: "mov", Ring: RingUser, Mass: 7},
		},
	}
	equalProfiles(t, "canonical", Canonical(messy), want)
}

// TestProfileQueries covers the totals and top-N helpers.
func TestProfileQueries(t *testing.T) {
	p := Canonical(&Profile{
		Workloads: []WorkloadWeight{{Name: "w1", Runs: 2}, {Name: "w2", Runs: 3}},
		Blocks: []Block{
			{Unit: "u", Module: "m", Function: "hot", Addr: 0, Len: 10, Count: 100},  // mass 1000
			{Unit: "u", Module: "m", Function: "cold", Addr: 64, Len: 2, Count: 10},  // mass 20
			{Unit: "u", Module: "m", Function: "warm", Addr: 128, Len: 5, Count: 50}, // mass 250
		},
		Ops: []OpMass{
			{Mnemonic: "add", Ring: RingUser, Mass: 900},
			{Mnemonic: "mov", Ring: RingKernel, Mass: 370},
		},
	})
	if got := p.TotalRuns(); got != 5 {
		t.Errorf("TotalRuns = %d, want 5", got)
	}
	if got := p.TotalMass(); got != 1270 {
		t.Errorf("TotalMass = %d, want 1270", got)
	}
	if got := p.RingMass(RingKernel); got != 370 {
		t.Errorf("RingMass(kernel) = %d, want 370", got)
	}
	top := p.TopBlocks(2)
	if len(top) != 2 || top[0].Function != "hot" || top[1].Function != "warm" {
		t.Errorf("TopBlocks(2) = %+v", top)
	}
	ops := p.TopOps(1)
	if len(ops) != 1 || ops[0].Mnemonic != "add" {
		t.Errorf("TopOps(1) = %+v", ops)
	}
}

// ingestConcurrently feeds profiles into an aggregator with the given
// number of writer goroutines.
func ingestConcurrently(agg *Aggregator, profiles []*Profile, writers int) {
	var wg sync.WaitGroup
	idx := make(chan *Profile)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range idx {
				agg.Ingest(p)
			}
		}()
	}
	for _, p := range profiles {
		idx <- p
	}
	close(idx)
	wg.Wait()
}

// TestAggregatorMatchesMergeAtAnyParallelism pins the tentpole
// invariant: an Aggregator snapshot is bit-identical to the offline
// Merge of the same profiles, whether one goroutine ingested them or
// eight did. Run under -race this also proves the lock striping
// actually synchronizes the shards.
func TestAggregatorMatchesMergeAtAnyParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	profiles := make([]*Profile, 64)
	for i := range profiles {
		profiles[i] = randomProfile(rng)
	}
	want := Merge(profiles...)
	for _, writers := range []int{1, 8} {
		agg := NewAggregator()
		ingestConcurrently(agg, profiles, writers)
		equalProfiles(t, "snapshot vs merge", agg.Snapshot(), want)
	}
}

// TestAggregatorSnapshotDuringIngestion takes snapshots while writers
// are still ingesting: every snapshot must be a valid canonical
// profile whose mass is a whole number of ingested profiles (no torn
// Ingest is ever visible), and the final snapshot must equal the full
// merge.
func TestAggregatorSnapshotDuringIngestion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// All profiles identical, so partial visibility is detectable by
	// mass arithmetic: any consistent snapshot holds k whole copies.
	p := randomProfile(rng)
	for p.TotalMass() == 0 {
		p = randomProfile(rng)
	}
	const copies = 200
	profiles := make([]*Profile, copies)
	for i := range profiles {
		profiles[i] = p
	}
	agg := NewAggregator()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ingestConcurrently(agg, profiles, 8)
	}()
	unit := p.TotalMass()
	for i := 0; i < 50; i++ {
		snap := agg.Snapshot()
		if m := snap.TotalMass(); m%unit != 0 {
			t.Fatalf("snapshot observed a torn ingest: mass %d is not a multiple of %d", m, unit)
		}
	}
	<-done
	equalProfiles(t, "final snapshot", agg.Snapshot(), p.Weighted(copies))
}

// TestDiff covers the movement report: share deltas, threshold
// flagging, and determinism of ordering.
func TestDiff(t *testing.T) {
	before := Canonical(&Profile{
		Workloads: []WorkloadWeight{{Name: "w", Runs: 1}},
		Ops: []OpMass{
			{Mnemonic: "vaddps", Ring: RingUser, Mass: 500}, // 50%
			{Mnemonic: "mov", Ring: RingUser, Mass: 450},    // 45%
			{Mnemonic: "nop", Ring: RingUser, Mass: 50},     // 5%
		},
	})
	after := Canonical(&Profile{
		Workloads: []WorkloadWeight{{Name: "w", Runs: 2}},
		Ops: []OpMass{
			{Mnemonic: "addss", Ring: RingUser, Mass: 1000}, // 50%: new — devectorized
			{Mnemonic: "mov", Ring: RingUser, Mass: 900},    // 45%: unchanged share
			{Mnemonic: "nop", Ring: RingUser, Mass: 100},    // 5%: unchanged share
		},
	})
	rep := Diff(before, after, DiffOptions{Threshold: 0.02})
	if rep.TotalBefore != 1000 || rep.TotalAfter != 2000 {
		t.Fatalf("totals %d/%d", rep.TotalBefore, rep.TotalAfter)
	}
	if rep.RunsBefore != 1 || rep.RunsAfter != 2 {
		t.Fatalf("runs %d/%d", rep.RunsBefore, rep.RunsAfter)
	}
	if len(rep.Deltas) != 4 {
		t.Fatalf("Deltas = %+v", rep.Deltas)
	}
	// The two 50-point movers lead, alphabetically tied; unchanged
	// shares trail with zero delta.
	if rep.Deltas[0].Mnemonic != "addss" || rep.Deltas[0].ShareDelta != 0.5 {
		t.Errorf("Deltas[0] = %+v", rep.Deltas[0])
	}
	if rep.Deltas[1].Mnemonic != "vaddps" || rep.Deltas[1].ShareDelta != -0.5 {
		t.Errorf("Deltas[1] = %+v", rep.Deltas[1])
	}
	if len(rep.Regressions) != 2 {
		t.Errorf("Regressions = %+v", rep.Regressions)
	}
	// Zero threshold selects the default.
	if got := Diff(before, after, DiffOptions{}).Threshold; got != DefaultDiffThreshold {
		t.Errorf("default threshold = %v", got)
	}
	// Render mentions the regression and both totals.
	out := rep.Render(0)
	for _, want := range []string{"REGRESSION", "addss", "vaddps", "1 runs", "2 runs"} {
		if !containsStr(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Nil sides are empty.
	empty := Diff(nil, nil, DiffOptions{})
	if len(empty.Deltas) != 0 || empty.TotalBefore != 0 {
		t.Errorf("nil diff = %+v", empty)
	}
}

func containsStr(haystack, needle string) bool {
	return bytes.Contains([]byte(haystack), []byte(needle))
}
