package profstore

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Interned is a profile in index-keyed form: every unit, module,
// function and mnemonic string lives once in a dense, sorted symbol
// table, and rows carry fixed-width uint32 symbol IDs instead of
// string headers. It is the merge kernel's working representation.
//
// Two invariants make the form fast without giving anything up:
//
//   - The table is sorted and unique, so symbol-ID order *is* string
//     order: comparing two row keys degenerates to a handful of
//     integer compares, yet yields exactly the canonical order the
//     string keys define. Rows are therefore kept sorted by integer
//     key and are canonical in the [Profile] sense by construction.
//   - Merging two interned profiles unions their symbol tables first —
//     a linear merge of two small sorted string slices, the only place
//     strings are ever compared — and then sums rows with pure integer
//     passes. When the tables are equal (the hot case: every snapshot
//     of one fleet names the same symbols) the union is free and no
//     row is rewritten.
//
// An Interned is immutable once built; it is safe to share across
// goroutines. Materialize with [Interned.Profile].
type Interned struct {
	syms      []string // sorted, unique
	workloads []iWorkload
	blocks    []iBlock
	ops       []iOp
}

// iWorkload, iBlock and iOp mirror the Profile row types with symbol
// IDs in place of strings. Field order matches canonical key order.
type iWorkload struct {
	name uint32
	runs uint64
}

type iBlock struct {
	unit, module, function uint32
	addr                   uint64
	ring                   uint8
	blen                   uint32
	count                  uint64
}

type iOp struct {
	mnemonic uint32
	ring     uint8
	mass     uint64
}

// iBlockCmp orders block rows canonically: because symbol IDs are
// assigned in sorted-table order, integer ID comparison is string
// comparison, and this is blockKeyLess on integers.
func iBlockCmp(a, b *iBlock) int {
	switch {
	case a.unit != b.unit:
		if a.unit < b.unit {
			return -1
		}
		return 1
	case a.module != b.module:
		if a.module < b.module {
			return -1
		}
		return 1
	case a.function != b.function:
		if a.function < b.function {
			return -1
		}
		return 1
	case a.addr != b.addr:
		if a.addr < b.addr {
			return -1
		}
		return 1
	case a.ring != b.ring:
		if a.ring < b.ring {
			return -1
		}
		return 1
	case a.blen != b.blen:
		if a.blen < b.blen {
			return -1
		}
		return 1
	}
	return 0
}

// iOpCmp is iBlockCmp for op rows.
func iOpCmp(a, b *iOp) int {
	switch {
	case a.mnemonic != b.mnemonic:
		if a.mnemonic < b.mnemonic {
			return -1
		}
		return 1
	case a.ring != b.ring:
		if a.ring < b.ring {
			return -1
		}
		return 1
	}
	return 0
}

// Intern converts a profile to interned form. Canonical profiles (the
// common case — everything this package hands out) intern in one
// linear pass; anything else is canonicalized on the way in, so
// Intern(p).Profile() always equals Canonical(p).
func Intern(p *Profile) *Interned {
	if p == nil {
		return &Interned{}
	}
	return mergeProfilesInterned([]*Profile{p})
}

// mergeProfilesInterned is the merge kernel's front door: it merges a
// fan-in of profiles into one interned profile against one shared
// symbol table.
//
// The shape is chosen by what fleets actually merge — many snapshots
// of the same program, whose key sets overlap almost entirely. A
// scan-collect prepass builds the shared sorted table (a handful of
// map hits per profile: canonical sections keep equal strings in
// runs) and notes which inputs are canonical. Canonical profiles are
// then *folded in place* into a mutable interned accumulator: a
// two-pointer walk that translates each source row's key to symbol
// IDs on the fly and adds its mass straight into the matching
// accumulator row — zero allocation while the accumulator already
// knows the keys, one merging rebuild (into a recycled scratch slice)
// when it does not. If the accumulator outgrows its inputs — the
// disjoint-key regime where sequential folding would go quadratic —
// it is sealed into a chunk and a fresh one starts; the sealed chunks
// meet in the pairwise tournament, which handles disjoint key sets in
// O(N log k). Non-canonical inputs (rare) are translated, normalized
// and fed to the tournament as their own chunks.
func mergeProfilesInterned(profiles []*Profile) *Interned {
	if len(profiles) == 0 {
		return &Interned{}
	}
	tab := &symLookup{ids: make(map[string]uint32, 64)}
	canonical := make([]bool, len(profiles))
	maxRows := 0
	for i, p := range profiles {
		canonical[i] = scanCollect(p, tab)
		if r := len(p.Workloads) + len(p.Blocks) + len(p.Ops); r > maxRows {
			maxRows = r
		}
	}
	sort.Strings(tab.syms)
	for i, s := range tab.syms {
		tab.ids[s] = uint32(i)
	}
	growthCap := 4 * maxRows
	if growthCap < 2048 {
		growthCap = 2048
	}
	f := &folder{tab: tab}
	var chunks []*Interned
	for i, p := range profiles {
		switch {
		case !canonical[i]:
			in := internRows(p, tab, true)
			in.normalize()
			chunks = append(chunks, in)
		case f.acc == nil:
			f.acc = internRows(p, tab, false)
		case len(f.acc.workloads)+len(f.acc.blocks)+len(f.acc.ops) > growthCap:
			chunks = append(chunks, f.acc)
			f.acc = internRows(p, tab, false)
		default:
			f.fold(p)
		}
	}
	if f.acc != nil {
		chunks = append(chunks, f.acc)
	}
	return mergeInterned(chunks)
}

// scanCollect walks p once, folding its strings into the shared table
// (run-cached — equal strings sit in runs in canonical sections, and
// rows from one decode share backing arrays, so the map is consulted
// at run boundaries only) and reporting whether p is canonical: every
// section strictly ascending in key order with no zero-mass entries.
func scanCollect(p *Profile, tab *symLookup) bool {
	canonical := true
	var prev string
	first := true
	for i := range p.Workloads {
		w := &p.Workloads[i]
		if w.Runs == 0 {
			canonical = false
		}
		if i > 0 && p.Workloads[i-1].Name >= w.Name {
			canonical = false
		}
		if first || w.Name != prev {
			prev, first = w.Name, false
			tab.id(prev)
		}
	}
	var pu, pm, pf string
	firstB := true
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.Count == 0 {
			canonical = false
		}
		if !firstB && b.Unit == pu && b.Module == pm && b.Function == pf {
			// Inside a run the string keys are equal, so the canonical
			// order check reduces to the integer tail of the key.
			prev := &p.Blocks[i-1]
			if prev.Addr > b.Addr ||
				(prev.Addr == b.Addr && (prev.Ring > b.Ring ||
					(prev.Ring == b.Ring && prev.Len >= b.Len))) {
				canonical = false
			}
			continue
		}
		if i > 0 && !blockKeyLess(&p.Blocks[i-1], b) {
			canonical = false
		}
		if firstB || b.Unit != pu {
			pu = b.Unit
			tab.id(pu)
		}
		if firstB || b.Module != pm {
			pm = b.Module
			tab.id(pm)
		}
		if firstB || b.Function != pf {
			pf = b.Function
			tab.id(pf)
		}
		firstB = false
	}
	var prevMn string
	firstMn := true
	for i := range p.Ops {
		o := &p.Ops[i]
		if o.Mass == 0 {
			canonical = false
		}
		if i > 0 && !opKeyLess(&p.Ops[i-1], o) {
			canonical = false
		}
		if firstMn || o.Mnemonic != prevMn {
			prevMn, firstMn = o.Mnemonic, false
			tab.id(prevMn)
		}
	}
	return canonical
}

// folder folds canonical profiles into a mutable interned accumulator,
// recycling scratch slices across merging rebuilds.
type folder struct {
	tab *symLookup
	acc *Interned

	scratchW []iWorkload
	scratchB []iBlock
	scratchO []iOp
}

func (f *folder) fold(p *Profile) {
	f.acc.workloads = f.foldWorkloads(f.acc.workloads, p.Workloads)
	f.acc.blocks = f.foldBlocks(f.acc.blocks, p.Blocks)
	f.acc.ops = f.foldOps(f.acc.ops, p.Ops)
}

// foldWorkloads adds a sorted source section into the sorted
// accumulator section a, in place while every source key is already
// present, by merging rebuild once one is not. Returns the (possibly
// swapped) accumulator slice.
func (f *folder) foldWorkloads(a []iWorkload, src []WorkloadWeight) []iWorkload {
	ai := 0
	var prev string
	var prevID uint32
	first := true
	for i := range src {
		w := &src[i]
		if first || w.Name != prev {
			prevID, prev, first = f.tab.ids[w.Name], w.Name, false
		}
		for ai < len(a) && a[ai].name < prevID {
			ai++
		}
		if ai < len(a) && a[ai].name == prevID {
			a[ai].runs += w.Runs
			ai++
			continue
		}
		// New key: merge the tail into scratch and swap.
		out := append(f.scratchW[:0], a[:ai]...)
		out = append(out, iWorkload{name: prevID, runs: w.Runs})
		for _, w2 := range src[i+1:] {
			if w2.Name != prev {
				prevID, prev = f.tab.ids[w2.Name], w2.Name
			}
			for ai < len(a) && a[ai].name < prevID {
				out = append(out, a[ai])
				ai++
			}
			row := iWorkload{name: prevID, runs: w2.Runs}
			if ai < len(a) && a[ai].name == prevID {
				row.runs += a[ai].runs
				ai++
			}
			out = append(out, row)
		}
		out = append(out, a[ai:]...)
		f.scratchW = a[:0]
		return out
	}
	return a
}

// foldBlocks is foldWorkloads for the block section.
func (f *folder) foldBlocks(a []iBlock, src []Block) []iBlock {
	ai := 0
	var pu, pm, pf string
	var puID, pmID, pfID uint32
	first := true
	for i := range src {
		b := &src[i]
		if first || b.Unit != pu {
			puID, pu = f.tab.ids[b.Unit], b.Unit
		}
		if first || b.Module != pm {
			pmID, pm = f.tab.ids[b.Module], b.Module
		}
		if first || b.Function != pf {
			pfID, pf = f.tab.ids[b.Function], b.Function
		}
		first = false
		k := iBlock{unit: puID, module: pmID, function: pfID, addr: b.Addr, ring: b.Ring, blen: b.Len, count: b.Count}
		// One compare per row when the key sequences line up — the
		// aligned-fleet case this fold exists for.
		matched := false
		for ai < len(a) {
			c := iBlockCmp(&a[ai], &k)
			if c == 0 {
				a[ai].count += k.count
				ai++
				matched = true
				break
			}
			if c > 0 {
				break
			}
			ai++
		}
		if matched {
			continue
		}
		// New key: merge the tail into scratch and swap.
		out := append(f.scratchB[:0], a[:ai]...)
		out = append(out, k)
		for i2 := i + 1; i2 < len(src); i2++ {
			b2 := &src[i2]
			if b2.Unit != pu {
				puID, pu = f.tab.ids[b2.Unit], b2.Unit
			}
			if b2.Module != pm {
				pmID, pm = f.tab.ids[b2.Module], b2.Module
			}
			if b2.Function != pf {
				pfID, pf = f.tab.ids[b2.Function], b2.Function
			}
			k2 := iBlock{unit: puID, module: pmID, function: pfID, addr: b2.Addr, ring: b2.Ring, blen: b2.Len, count: b2.Count}
			for ai < len(a) && iBlockCmp(&a[ai], &k2) < 0 {
				out = append(out, a[ai])
				ai++
			}
			if ai < len(a) && iBlockCmp(&a[ai], &k2) == 0 {
				k2.count += a[ai].count
				ai++
			}
			out = append(out, k2)
		}
		out = append(out, a[ai:]...)
		f.scratchB = a[:0]
		return out
	}
	return a
}

// foldOps is foldWorkloads for the op section.
func (f *folder) foldOps(a []iOp, src []OpMass) []iOp {
	ai := 0
	var prev string
	var prevID uint32
	first := true
	for i := range src {
		o := &src[i]
		if first || o.Mnemonic != prev {
			prevID, prev, first = f.tab.ids[o.Mnemonic], o.Mnemonic, false
		}
		k := iOp{mnemonic: prevID, ring: o.Ring, mass: o.Mass}
		matched := false
		for ai < len(a) {
			c := iOpCmp(&a[ai], &k)
			if c == 0 {
				a[ai].mass += k.mass
				ai++
				matched = true
				break
			}
			if c > 0 {
				break
			}
			ai++
		}
		if matched {
			continue
		}
		// New key: merge the tail into scratch and swap.
		out := append(f.scratchO[:0], a[:ai]...)
		out = append(out, k)
		for i2 := i + 1; i2 < len(src); i2++ {
			o2 := &src[i2]
			if o2.Mnemonic != prev {
				prevID, prev = f.tab.ids[o2.Mnemonic], o2.Mnemonic
			}
			k2 := iOp{mnemonic: prevID, ring: o2.Ring, mass: o2.Mass}
			for ai < len(a) && iOpCmp(&a[ai], &k2) < 0 {
				out = append(out, a[ai])
				ai++
			}
			if ai < len(a) && iOpCmp(&a[ai], &k2) == 0 {
				k2.mass += a[ai].mass
				ai++
			}
			out = append(out, k2)
		}
		out = append(out, a[ai:]...)
		f.scratchO = a[:0]
		return out
	}
	return a
}

// symLookup interns strings into a growing table, caching the last hit
// per call site: canonical sections keep equal strings in runs (and
// rows decoded from one file share backing arrays), so the map is
// consulted only at run boundaries.
type symLookup struct {
	ids  map[string]uint32
	syms []string
}

func (t *symLookup) id(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.syms))
	t.ids[s] = id
	t.syms = append(t.syms, s)
	return id
}

// internRows translates p's rows to integer tuples against tab (fully
// populated and sorted by internAll, so every lookup hits and IDs are
// final). dropZero mirrors the canonicalization rule: zero-mass inputs
// carry no information and are dropped before any summing.
func internRows(p *Profile, tab *symLookup, dropZero bool) *Interned {
	in := &Interned{}
	if len(p.Workloads) > 0 {
		in.workloads = make([]iWorkload, 0, len(p.Workloads))
		var prev string
		var prevID uint32
		first := true
		for i := range p.Workloads {
			w := &p.Workloads[i]
			if dropZero && w.Runs == 0 {
				continue
			}
			if first || w.Name != prev {
				prevID, prev, first = tab.id(w.Name), w.Name, false
			}
			in.workloads = append(in.workloads, iWorkload{name: prevID, runs: w.Runs})
		}
	}
	if len(p.Blocks) > 0 {
		in.blocks = make([]iBlock, 0, len(p.Blocks))
		var pu, pm, pf string
		var puID, pmID, pfID uint32
		first := true
		for i := range p.Blocks {
			b := &p.Blocks[i]
			if dropZero && b.Count == 0 {
				continue
			}
			if first || b.Unit != pu {
				puID, pu = tab.id(b.Unit), b.Unit
			}
			if first || b.Module != pm {
				pmID, pm = tab.id(b.Module), b.Module
			}
			if first || b.Function != pf {
				pfID, pf = tab.id(b.Function), b.Function
			}
			first = false
			in.blocks = append(in.blocks, iBlock{
				unit: puID, module: pmID, function: pfID,
				addr: b.Addr, ring: b.Ring, blen: b.Len, count: b.Count,
			})
		}
	}
	if len(p.Ops) > 0 {
		in.ops = make([]iOp, 0, len(p.Ops))
		var prev string
		var prevID uint32
		first := true
		for i := range p.Ops {
			o := &p.Ops[i]
			if dropZero && o.Mass == 0 {
				continue
			}
			if first || o.Mnemonic != prev {
				prevID, prev, first = tab.id(o.Mnemonic), o.Mnemonic, false
			}
			in.ops = append(in.ops, iOp{mnemonic: prevID, ring: o.Ring, mass: o.Mass})
		}
	}
	in.syms = tab.syms
	return in
}

// sortSyms sorts the symbol table and rewrites every row ID through
// the resulting permutation.
func (in *Interned) sortSyms() {
	n := len(in.syms)
	if n == 0 {
		return
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return in.syms[perm[i]] < in.syms[perm[j]] })
	sorted := make([]string, n)
	remap := make([]uint32, n)
	for rank, old := range perm {
		sorted[rank] = in.syms[old]
		remap[old] = uint32(rank)
	}
	in.syms = sorted
	in.remapIDs(remap)
}

// remapIDs rewrites every row's symbol IDs through remap, in place.
func (in *Interned) remapIDs(remap []uint32) {
	for i := range in.workloads {
		in.workloads[i].name = remap[in.workloads[i].name]
	}
	for i := range in.blocks {
		b := &in.blocks[i]
		b.unit, b.module, b.function = remap[b.unit], remap[b.module], remap[b.function]
	}
	for i := range in.ops {
		in.ops[i].mnemonic = remap[in.ops[i].mnemonic]
	}
}

// normalize integer-sorts every section and folds duplicate keys.
// Zero-mass *inputs* were already dropped; folded sums are kept even
// if they wrap to zero, matching exact integer merge semantics.
func (in *Interned) normalize() {
	if len(in.workloads) > 1 {
		sort.Slice(in.workloads, func(i, j int) bool { return in.workloads[i].name < in.workloads[j].name })
		out := in.workloads[:0]
		for _, w := range in.workloads {
			if n := len(out); n > 0 && out[n-1].name == w.name {
				out[n-1].runs += w.runs
			} else {
				out = append(out, w)
			}
		}
		in.workloads = out
	}
	if len(in.blocks) > 1 {
		sort.Slice(in.blocks, func(i, j int) bool { return iBlockCmp(&in.blocks[i], &in.blocks[j]) < 0 })
		out := in.blocks[:0]
		for _, b := range in.blocks {
			if n := len(out); n > 0 && iBlockCmp(&out[n-1], &b) == 0 {
				out[n-1].count += b.count
			} else {
				out = append(out, b)
			}
		}
		in.blocks = out
	}
	if len(in.ops) > 1 {
		sort.Slice(in.ops, func(i, j int) bool { return iOpCmp(&in.ops[i], &in.ops[j]) < 0 })
		out := in.ops[:0]
		for _, o := range in.ops {
			if n := len(out); n > 0 && iOpCmp(&out[n-1], &o) == 0 {
				out[n-1].mass += o.mass
			} else {
				out = append(out, o)
			}
		}
		in.ops = out
	}
}

// Profile materializes the interned form back to a canonical Profile.
// Strings are shared with the symbol table; row slices are fresh, so
// the result is the caller's own.
func (in *Interned) Profile() *Profile {
	out := &Profile{}
	if len(in.workloads) > 0 {
		out.Workloads = make([]WorkloadWeight, len(in.workloads))
		for i, w := range in.workloads {
			out.Workloads[i] = WorkloadWeight{Name: in.syms[w.name], Runs: w.runs}
		}
	}
	if len(in.blocks) > 0 {
		out.Blocks = make([]Block, len(in.blocks))
		for i := range in.blocks {
			b := &in.blocks[i]
			out.Blocks[i] = Block{
				Unit: in.syms[b.unit], Module: in.syms[b.module], Function: in.syms[b.function],
				Addr: b.addr, Ring: b.ring, Len: b.blen, Count: b.count,
			}
		}
	}
	if len(in.ops) > 0 {
		out.Ops = make([]OpMass, len(in.ops))
		for i := range in.ops {
			o := &in.ops[i]
			out.Ops[i] = OpMass{Mnemonic: in.syms[o.mnemonic], Ring: o.ring, Mass: o.mass}
		}
	}
	return out
}

// unionSyms merges two sorted symbol tables. It returns the union and
// per-input remap slices (old ID to union ID); a nil remap means that
// input's IDs are already the union's. Equal tables — the hot case —
// short-circuit to a few pointer-equal string compares and share a's
// backing array, so tournament rounds over one fleet's snapshots never
// rewrite a row.
func unionSyms(a, b []string) (syms []string, amap, bmap []uint32) {
	if len(a) == len(b) {
		eq := true
		for i := range a {
			if a[i] != b[i] {
				eq = false
				break
			}
		}
		if eq {
			return a, nil, nil
		}
	}
	syms = make([]string, 0, len(a)+len(b))
	amap = make([]uint32, len(a))
	bmap = make([]uint32, len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			amap[i] = uint32(len(syms))
			syms = append(syms, a[i])
			i++
		case b[j] < a[i]:
			bmap[j] = uint32(len(syms))
			syms = append(syms, b[j])
			j++
		default:
			id := uint32(len(syms))
			amap[i], bmap[j] = id, id
			syms = append(syms, a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		amap[i] = uint32(len(syms))
		syms = append(syms, a[i])
	}
	for ; j < len(b); j++ {
		bmap[j] = uint32(len(syms))
		syms = append(syms, b[j])
	}
	// A same-length union means that input was a superset: the remap is
	// the identity (both are sorted), so skip the row rewrite.
	if len(syms) == len(a) {
		amap = nil
	}
	if len(syms) == len(b) {
		bmap = nil
	}
	return syms, amap, bmap
}

// remapped returns a copy of in with row IDs rewritten into the union
// table. remap is monotonic (both tables are sorted), so row order is
// preserved.
func (in *Interned) remapped(syms []string, remap []uint32) *Interned {
	out := &Interned{
		syms:      syms,
		workloads: append([]iWorkload(nil), in.workloads...),
		blocks:    append([]iBlock(nil), in.blocks...),
		ops:       append([]iOp(nil), in.ops...),
	}
	out.remapIDs(remap)
	return out
}

// mergeInterned2 merges two interned profiles: union the tables, then
// sum each section with a linear integer-compare pass.
func mergeInterned2(a, b *Interned) *Interned {
	syms, amap, bmap := unionSyms(a.syms, b.syms)
	if amap != nil {
		a = a.remapped(syms, amap)
	}
	if bmap != nil {
		b = b.remapped(syms, bmap)
	}
	return &Interned{
		syms:      syms,
		workloads: merge2IWorkloads(a.workloads, b.workloads),
		blocks:    merge2IBlocks(a.blocks, b.blocks),
		ops:       merge2IOps(a.ops, b.ops),
	}
}

func merge2IWorkloads(a, b []iWorkload) []iWorkload {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]iWorkload, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].name < b[j].name:
			out = append(out, a[i])
			i++
		case b[j].name < a[i].name:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.runs += b[j].runs
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func merge2IBlocks(a, b []iBlock) []iBlock {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]iBlock, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		c := iBlockCmp(&a[i], &b[j])
		switch {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.count += b[j].count
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func merge2IOps(a, b []iOp) []iOp {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]iOp, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		c := iOpCmp(&a[i], &b[j])
		switch {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.mass += b[j].mass
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// parallelMergePairs is the per-round pair count above which a
// tournament round fans out across the worker pool. Below it the
// goroutine hand-off costs more than the merges.
const parallelMergePairs = 16

// mergeInterned merges any number of interned profiles by a pairwise
// tournament: each round halves the profile count with linear two-way
// merges, so total work is O(N log k) integer comparisons. Rounds with
// enough pairs run them in parallel on up to GOMAXPROCS workers —
// safe because every pair writes a distinct slot and integer merge is
// associative, so the result is bit-identical at any parallelism. A
// lone input is returned as-is (Interned is immutable).
func mergeInterned(ins []*Interned) *Interned {
	switch len(ins) {
	case 0:
		return &Interned{}
	case 1:
		return ins[0]
	}
	round := ins
	for len(round) > 1 {
		pairs := len(round) / 2
		next := make([]*Interned, (len(round)+1)/2)
		if len(round)%2 == 1 {
			next[pairs] = round[len(round)-1]
		}
		if workers := runtime.GOMAXPROCS(0); workers > 1 && pairs >= parallelMergePairs {
			if workers > pairs {
				workers = pairs
			}
			var idx atomic.Int64
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for {
						i := int(idx.Add(1)) - 1
						if i >= pairs {
							return
						}
						next[i] = mergeInterned2(round[2*i], round[2*i+1])
					}
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < pairs; i++ {
				next[i] = mergeInterned2(round[2*i], round[2*i+1])
			}
		}
		round = next
	}
	return round[0]
}
