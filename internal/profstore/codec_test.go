package profstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// sampleProfile is a small fixed profile exercising every section.
func sampleProfile() *Profile {
	return Canonical(&Profile{
		Workloads: []WorkloadWeight{{Name: "gcc", Runs: 3}, {Name: "povray", Runs: 1}},
		Blocks: []Block{
			{Unit: "gcc", Module: "a.out", Function: "main", Addr: 0x1000, Ring: RingUser, Len: 7, Count: 12345},
			{Unit: "gcc", Module: "vmlinux", Function: "sys_call", Addr: 0xffff800, Ring: RingKernel, Len: 3, Count: 99},
			{Unit: "povray", Module: "a.out", Function: "trace", Addr: 0x2000, Ring: RingUser, Len: 21, Count: 1 << 40},
		},
		Ops: []OpMass{
			{Mnemonic: "add", Ring: RingUser, Mass: 1 << 50},
			{Mnemonic: "mov", Ring: RingKernel, Mass: 5},
			{Mnemonic: "vaddps", Ring: RingUser, Mass: 777},
		},
	})
}

// TestRoundTrip pins save -> load identity, including for the empty
// profile, and that equal profiles serialize identically.
func TestRoundTrip(t *testing.T) {
	for _, p := range []*Profile{sampleProfile(), Merge()} {
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			t.Fatalf("Save: %v", err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("round trip changed the profile:\n%+v\nvs\n%+v", got, p)
		}
		var again bytes.Buffer
		if err := Save(&again, got); err != nil {
			t.Fatalf("re-Save: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Error("save -> load -> save is not byte-stable")
		}
	}
}

// TestRoundTripRandom fuzzes the round trip with generated profiles.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := randomProfile(rng)
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			t.Fatalf("Save: %v", err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		equalProfiles(t, "random round trip", got, p)
	}
}

// TestSaveNil pins the nil guard.
func TestSaveNil(t *testing.T) {
	if err := Save(io.Discard, nil); err == nil {
		t.Fatal("Save(nil) succeeded")
	}
}

// TestLoadBadMagic classifies streams that are not stored profiles.
func TestLoadBadMagic(t *testing.T) {
	for _, stream := range [][]byte{
		[]byte("HBBPERF1\x02\x00\x00\x00"), // a perffile, not a profile
		[]byte("GARBAGE!\x01\x00\x00\x00"),
		[]byte("PROFILE\x00\x01\x00\x00\x00"),
		[]byte("junk"), // shorter than the header but plainly not a profile
		[]byte("x"),
	} {
		if _, err := Load(bytes.NewReader(stream)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("Load(%q) = %v, want ErrBadMagic", stream, err)
		}
	}
	// A genuine magic prefix cut short, by contrast, is truncation:
	// the stream really was (the start of) a stored profile.
	if _, err := Load(bytes.NewReader([]byte(Magic[:5]))); !errors.Is(err, ErrTruncatedRecord) {
		t.Errorf("Load(magic prefix) = %v, want ErrTruncatedRecord", err)
	}
}

// TestLoadRejectsTrailingData pins the end-of-stream check: bytes
// after the last section mean a section count lied (or the file was
// concatenated), so the profile cannot be trusted.
func TestLoadRejectsTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	stream := append(buf.Bytes(), "extra"...)
	_, err := Load(bytes.NewReader(stream))
	if err == nil || !containsStr(err.Error(), "trailing data") {
		t.Fatalf("trailing data = %v", err)
	}
}

// TestLoadUnsupportedVersion classifies valid-magic streams from a
// future format.
func TestLoadUnsupportedVersion(t *testing.T) {
	stream := append([]byte(Magic), 9, 0, 0, 0)
	_, err := Load(bytes.NewReader(stream))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Load = %v, want ErrUnsupportedVersion", err)
	}
	if !containsStr(err.Error(), "9") {
		t.Errorf("message does not name the version: %v", err)
	}
}

// TestLoadTruncated cuts a valid stream at every byte boundary: every
// prefix must classify as truncated (or, before the magic completes,
// still truncated via the header read), never succeed, never panic.
func TestLoadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Load(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("Load of %d/%d-byte prefix succeeded", cut, len(full))
		}
		if !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("Load of %d-byte prefix = %v, want ErrTruncatedRecord", cut, err)
		}
	}
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

// TestLoadKeepsIOErrors pins perffile's classification contract: a
// non-EOF read failure is not misreported as truncation.
func TestLoadKeepsIOErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("transient network failure")
	r := io.MultiReader(bytes.NewReader(buf.Bytes()[:20]), &failingReader{err: boom})
	_, err := Load(r)
	if err == nil {
		t.Fatal("Load succeeded through a failing reader")
	}
	if errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("I/O failure misclassified as truncation: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost from unwrap chain: %v", err)
	}
}

type failingReader struct{ err error }

func (r *failingReader) Read([]byte) (int, error) { return 0, r.err }

// corrupt builds a stream with a hand-crafted body after a valid
// header.
func corrupt(body ...byte) []byte {
	stream := []byte(Magic)
	stream = append(stream, 1, 0, 0, 0)
	return append(stream, body...)
}

// TestLoadRejectsImplausibleSections pins the allocation guards: lying
// section headers fail fast instead of allocating unbounded memory.
func TestLoadRejectsImplausibleSections(t *testing.T) {
	huge := binary.AppendUvarint(nil, 1<<40)
	cases := map[string][]byte{
		"string table size": corrupt(huge...),
		"string length":     corrupt(append([]byte{1}, huge...)...),
		"workload count":    corrupt(append([]byte{0}, huge...)...), // 0 strings, huge workloads
	}
	for name, stream := range cases {
		_, err := Load(bytes.NewReader(stream))
		if err == nil {
			t.Errorf("%s: implausible stream accepted", name)
			continue
		}
		if !containsStr(err.Error(), "implausible") {
			t.Errorf("%s: error does not classify: %v", name, err)
		}
	}
}

// TestLoadRejectsBadStringIndex pins reference validation.
func TestLoadRejectsBadStringIndex(t *testing.T) {
	// 1 string "w", then 1 workload referencing string index 5.
	body := []byte{1, 1, 'w', 1, 5, 1}
	_, err := Load(bytes.NewReader(corrupt(body...)))
	if err == nil || !containsStr(err.Error(), "out of range") {
		t.Fatalf("bad index = %v", err)
	}
}

// FuzzLoadProfile drives the decoder with arbitrary bytes, mirroring
// perffile's corrupted-stream error tests: Load must never panic, and
// anything it accepts must re-serialize and re-load to the identical
// canonical profile (the decoder's output is always in-domain).
func FuzzLoadProfile(f *testing.F) {
	// Seed corpus: a real stream, the empty profile, and the
	// interesting failure shapes.
	var real, empty bytes.Buffer
	if err := Save(&real, sampleProfile()); err != nil {
		f.Fatal(err)
	}
	if err := Save(&empty, Merge()); err != nil {
		f.Fatal(err)
	}
	f.Add(real.Bytes())
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(append([]byte(Magic), 1, 0, 0, 0))
	f.Add(append([]byte(Magic), 9, 0, 0, 0))
	f.Add([]byte("HBBPERF1\x02\x00\x00\x00"))
	f.Add(real.Bytes()[:real.Len()/2])
	f.Add(corrupt(1, 1, 'w', 1, 5, 1))
	f.Add(corrupt(binary.AppendUvarint(nil, 1<<40)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			t.Fatalf("accepted profile failed to save: %v", err)
		}
		again, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-load of accepted profile failed: %v", err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("accepted profile is not canonical-stable:\n%+v\nvs\n%+v", p, again)
		}
	})
}

// TestFormatIsCompact sanity-checks the varint+string-table encoding:
// a thousand-block profile should cost a handful of bytes per block,
// not a fixed-width record.
func TestFormatIsCompact(t *testing.T) {
	raw := &Profile{Workloads: []WorkloadWeight{{Name: "w", Runs: 1}}}
	for i := 0; i < 1000; i++ {
		raw.Blocks = append(raw.Blocks, Block{
			Unit: "w", Module: "a.out", Function: fmt.Sprintf("fn%02d", i%40),
			Addr: uint64(i) * 64, Len: uint32(1 + i%30), Count: uint64(i) * 1000,
		})
	}
	var buf bytes.Buffer
	if err := Save(&buf, Canonical(raw)); err != nil {
		t.Fatal(err)
	}
	if perBlock := buf.Len() / 1000; perBlock > 16 {
		t.Errorf("%d bytes per block; the string table or varints regressed", perBlock)
	}
}
