package profstore

import (
	"bytes"
	"os"
	"testing"
)

// TestGoldenV1ByteIdentity pins the on-disk format against a committed
// v1 fixture: bytes written before the interned kernel existed must
// load through it and re-save to the identical bytes, on every decode
// and encode path. This is the compatibility gate for the format —
// if any kernel change shifts even one byte, this fails before a
// fleet's stored profiles do.
func TestGoldenV1ByteIdentity(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_v1.prof")
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}

	p, err := LoadBytes(data)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	out, err := AppendSave(nil, p)
	if err != nil {
		t.Fatalf("AppendSave: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("LoadBytes → AppendSave is not byte-identical to the v1 fixture")
	}

	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("LoadBytes → Save is not byte-identical to the v1 fixture")
	}

	// The reader path decodes to the same profile.
	p2, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	out2, err := AppendSave(nil, p2)
	if err != nil {
		t.Fatalf("AppendSave(Load): %v", err)
	}
	if !bytes.Equal(out2, data) {
		t.Fatal("Load → AppendSave is not byte-identical to the v1 fixture")
	}

	// The interned decode exposed directly, materialized back.
	in, err := LoadInterned(data)
	if err != nil {
		t.Fatalf("LoadInterned: %v", err)
	}
	out3, err := AppendSave(nil, in.Profile())
	if err != nil {
		t.Fatalf("AppendSave(Interned): %v", err)
	}
	if !bytes.Equal(out3, data) {
		t.Fatal("LoadInterned → Profile → AppendSave is not byte-identical to the v1 fixture")
	}

	// Merging the fixture alone is the identity; merging it with the
	// empty profile must also leave the bytes unchanged.
	for _, m := range []*Profile{Merge(p), Merge(p, &Profile{})} {
		mout, err := AppendSave(nil, m)
		if err != nil {
			t.Fatalf("AppendSave(Merge): %v", err)
		}
		if !bytes.Equal(mout, data) {
			t.Fatal("identity merge of the v1 fixture changed its bytes")
		}
	}
}
