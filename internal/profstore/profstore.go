// Package profstore implements the fleet profile store: a mergeable,
// serializable form of a profiling run, built for continuous profiling
// at scale.
//
// The paper's pitch is profiling cheap enough to leave on everywhere
// (Sections I and V); what a fleet then needs is a way to persist each
// run's result, merge thousands of them from concurrent sessions, and
// ask what changed between two fleet mixes. A [Profile] here is that
// stored form: integer retirement mass keyed by stable identities —
// basic blocks by (unit, module, function, address) and instruction
// mass by (mnemonic, ring) — rather than by the in-memory block IDs of
// a live run, so profiles captured by different processes, machines or
// days merge meaningfully.
//
// Three properties are load-bearing:
//
//   - Canonical form. Every Profile this package hands out has its
//     workloads, blocks and ops sorted by key with no duplicates, so
//     two equal profiles are deeply equal and serialize to identical
//     bytes.
//   - Integer mass accounting. Counts are quantized to integers at
//     capture time, so merging is exact integer addition —
//     commutative and associative by construction. N profiles merged
//     in any order, grouping or sharding produce bit-identical
//     results.
//   - Self-containment. Like internal/perffile, this package depends
//     only on the standard library plus the stdlib-only
//     internal/telemetry counters (enforced by the repository's
//     import-boundary test), so the store format can be lifted into
//     external fleet tooling unchanged.
//
// [Merge] combines profiles offline; [Aggregator] does the same online
// under concurrent ingestion with lock-striped shards; [Diff] compares
// two merged views and flags per-op share regressions.
package profstore

import (
	"fmt"
	"sort"

	"hbbp/internal/telemetry"
)

// Merge-path counters: which kernel a Merge call took. The fast path
// handles registration once at init; the per-call cost is one atomic
// add, so instrumenting the merge kernel does not move its benchmark.
var (
	mergeTwoPointer = telemetry.Default().Counter("hbbp_profstore_merge_total",
		"Merge calls by kernel path.", "path", "two_pointer")
	mergeViaInterned = telemetry.Default().Counter("hbbp_profstore_merge_total",
		"Merge calls by kernel path.", "path", "interned")
)

// Ring is the privilege level a block executes in, mirroring the
// program model's rings without importing it (this package is
// stdlib-only by design).
const (
	// RingUser is user mode.
	RingUser uint8 = 0
	// RingKernel is kernel mode.
	RingKernel uint8 = 1
)

// ringString names a ring for rendering.
func ringString(r uint8) string {
	if r == RingKernel {
		return "kernel"
	}
	return "user"
}

// Block is one basic block's merged execution mass. The identity
// fields (Unit through Len) form the merge key; Count accumulates.
type Block struct {
	// Unit is the deployable unit the block was captured from — the
	// workload name at capture time, playing the role of a build ID:
	// two builds of the same module (e.g. a before/after pair) keep
	// distinct block namespaces.
	Unit string
	// Module is the linked image (binary, shared object, kernel
	// module) containing the block.
	Module string
	// Function is the symbol containing the block.
	Function string
	// Addr is the block's start address within the unit.
	Addr uint64
	// Ring is the privilege level the block executes in.
	Ring uint8
	// Len is the number of instructions the block retires per
	// execution (live text, trace points patched).
	Len uint32
	// Count is the merged execution count of the block.
	Count uint64
}

// Mass returns the block's retired-instruction mass: executions times
// instructions per execution.
func (b *Block) Mass() uint64 { return b.Count * uint64(b.Len) }

// key returns the block's merge identity (everything but Count).
func (b *Block) key() Block {
	k := *b
	k.Count = 0
	return k
}

// String identifies the block for diagnostics.
func (b *Block) String() string {
	return fmt.Sprintf("%s/%s.%s@%#x[%d]", b.Unit, b.Module, b.Function, b.Addr, b.Len)
}

// OpMass is the merged retirement mass of one mnemonic in one ring.
// (Mnemonic, Ring) is the merge key; Mass accumulates.
type OpMass struct {
	// Mnemonic is the instruction name (e.g. "vaddps"). Stored as a
	// string so the format does not depend on any ISA table's numeric
	// encoding.
	Mnemonic string
	// Ring is the privilege level the retirements happened in.
	Ring uint8
	// Mass is the merged retired-instruction count.
	Mass uint64
}

// WorkloadWeight records how many profiled runs of one workload a
// profile aggregates — the merge's weight accounting.
type WorkloadWeight struct {
	// Name is the workload (capture unit) name.
	Name string
	// Runs is the number of single-run profiles merged in.
	Runs uint64
}

// Profile is a mergeable stored profile in canonical form: workloads
// sorted by name, blocks sorted by identity, ops sorted by
// (mnemonic, ring), each key appearing at most once. Profiles returned
// by this package are always canonical; hand-assembled ones can be
// normalized with [Canonical].
type Profile struct {
	Workloads []WorkloadWeight
	Blocks    []Block
	Ops       []OpMass
}

// TotalRuns returns the number of single-run profiles merged in.
func (p *Profile) TotalRuns() uint64 {
	var n uint64
	for _, w := range p.Workloads {
		n += w.Runs
	}
	return n
}

// TotalMass returns the profile's total retired-instruction mass
// across rings.
func (p *Profile) TotalMass() uint64 {
	var n uint64
	for _, o := range p.Ops {
		n += o.Mass
	}
	return n
}

// RingMass returns the retired-instruction mass of one ring.
func (p *Profile) RingMass(ring uint8) uint64 {
	var n uint64
	for _, o := range p.Ops {
		if o.Ring == ring {
			n += o.Mass
		}
	}
	return n
}

// TopBlocks returns the n hottest blocks by retired-instruction mass
// (count times length), ties broken by identity for determinism.
func (p *Profile) TopBlocks(n int) []Block {
	out := append([]Block(nil), p.Blocks...)
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Mass(), out[j].Mass()
		if mi != mj {
			return mi > mj
		}
		return blockKeyLess(&out[i], &out[j])
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopOps returns the n most-retired (mnemonic, ring) entries, ties
// broken by key.
func (p *Profile) TopOps(n int) []OpMass {
	out := append([]OpMass(nil), p.Ops...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mass != out[j].Mass {
			return out[i].Mass > out[j].Mass
		}
		return opKeyLess(&out[i], &out[j])
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	return &Profile{
		Workloads: append([]WorkloadWeight(nil), p.Workloads...),
		Blocks:    append([]Block(nil), p.Blocks...),
		Ops:       append([]OpMass(nil), p.Ops...),
	}
}

// Weighted returns the profile scaled by an integer weight: every
// count, mass and run multiplied by times. Weighted(k) equals merging
// k copies — the explicit form of the merge's weight accounting (e.g.
// one profile standing in for k identical machines).
func (p *Profile) Weighted(times uint64) *Profile {
	out := p.Clone()
	for i := range out.Workloads {
		out.Workloads[i].Runs *= times
	}
	for i := range out.Blocks {
		out.Blocks[i].Count *= times
	}
	for i := range out.Ops {
		out.Ops[i].Mass *= times
	}
	return out
}

// BlockKeyLess reports whether a orders before b in canonical form —
// the block identity order Merge emits. Producers that build sections
// already unique by key can sort with it and take Merge's canonical
// fast path (a one-pass intern instead of a canonicalizing sort).
func BlockKeyLess(a, b *Block) bool { return blockKeyLess(a, b) }

// OpKeyLess is BlockKeyLess for op-mass entries.
func OpKeyLess(a, b *OpMass) bool { return opKeyLess(a, b) }

// blockKeyLess orders blocks canonically by identity.
func blockKeyLess(a, b *Block) bool {
	if a.Unit != b.Unit {
		return a.Unit < b.Unit
	}
	if a.Module != b.Module {
		return a.Module < b.Module
	}
	if a.Function != b.Function {
		return a.Function < b.Function
	}
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	if a.Ring != b.Ring {
		return a.Ring < b.Ring
	}
	return a.Len < b.Len
}

// opKeyLess orders op masses canonically by key.
func opKeyLess(a, b *OpMass) bool {
	if a.Mnemonic != b.Mnemonic {
		return a.Mnemonic < b.Mnemonic
	}
	return a.Ring < b.Ring
}

// Merge combines any number of profiles into one canonical profile.
// Mass accounting is pure integer addition over canonical keys, so the
// result is independent of argument order and grouping down to the
// bit: Merge(a, b, c), Merge(Merge(a, b), c) and Merge(a, Merge(c, b))
// are identical, Merge(p) of a canonical p returns an equal profile,
// and Merge() returns the empty profile (the merge identity). Nil
// arguments are ignored.
//
// Internally every input is interned — string keys become fixed-width
// symbol-ID tuples against a sorted table (see [Interned]) — and the
// inputs meet in a pairwise tournament of linear integer-compare
// merges, parallel across the worker pool for large fan-ins. Profiles
// this package produces intern in one linear pass; hand-assembled
// ones are canonicalized on the way in.
func Merge(profiles ...*Profile) *Profile {
	live := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		if p != nil {
			live = append(live, p)
		}
	}
	// Tiny canonical fan-ins skip the interning machinery: a left fold
	// of linear two-way string-key merges beats paying the symbol-table
	// setup per call (the per-epoch accumulate path merges two small
	// profiles at a time; retention folds a handful). Identical integer
	// sums in identical key order — associativity makes the fold
	// bit-for-bit what the interned tournament gives.
	if n := len(live); n >= 1 && n <= smallMergeFanIn {
		canonical := true
		for _, p := range live {
			if !isCanonical(p) {
				canonical = false
				break
			}
		}
		if canonical {
			mergeTwoPointer.Inc()
			if n == 1 {
				return live[0].Clone()
			}
			out := merge2Canonical(live[0], live[1])
			for _, p := range live[2:] {
				out = merge2Canonical(out, p)
			}
			return out
		}
	}
	mergeViaInterned.Inc()
	return mergeProfilesInterned(live).Profile()
}

// smallMergeFanIn is the largest all-canonical fan-in Merge folds with
// direct two-way merges instead of the interned tournament. Above it
// the shared symbol table starts paying for itself.
const smallMergeFanIn = 4

// merge2Canonical merges two canonical profiles with linear two-pointer
// walks over string keys — no symbol table, one allocation per section.
// Summed rows are kept as the interned merges keep them, so both paths
// emit identical bytes.
func merge2Canonical(a, b *Profile) *Profile {
	out := &Profile{}
	if n := len(a.Workloads) + len(b.Workloads); n > 0 {
		out.Workloads = make([]WorkloadWeight, 0, n)
		i, j := 0, 0
		for i < len(a.Workloads) && j < len(b.Workloads) {
			switch {
			case a.Workloads[i].Name < b.Workloads[j].Name:
				out.Workloads = append(out.Workloads, a.Workloads[i])
				i++
			case b.Workloads[j].Name < a.Workloads[i].Name:
				out.Workloads = append(out.Workloads, b.Workloads[j])
				j++
			default:
				w := a.Workloads[i]
				w.Runs += b.Workloads[j].Runs
				out.Workloads = append(out.Workloads, w)
				i++
				j++
			}
		}
		out.Workloads = append(out.Workloads, a.Workloads[i:]...)
		out.Workloads = append(out.Workloads, b.Workloads[j:]...)
	}
	if n := len(a.Blocks) + len(b.Blocks); n > 0 {
		out.Blocks = make([]Block, 0, n)
		i, j := 0, 0
		for i < len(a.Blocks) && j < len(b.Blocks) {
			switch {
			case blockKeyLess(&a.Blocks[i], &b.Blocks[j]):
				out.Blocks = append(out.Blocks, a.Blocks[i])
				i++
			case blockKeyLess(&b.Blocks[j], &a.Blocks[i]):
				out.Blocks = append(out.Blocks, b.Blocks[j])
				j++
			default:
				blk := a.Blocks[i]
				blk.Count += b.Blocks[j].Count
				out.Blocks = append(out.Blocks, blk)
				i++
				j++
			}
		}
		out.Blocks = append(out.Blocks, a.Blocks[i:]...)
		out.Blocks = append(out.Blocks, b.Blocks[j:]...)
	}
	if n := len(a.Ops) + len(b.Ops); n > 0 {
		out.Ops = make([]OpMass, 0, n)
		i, j := 0, 0
		for i < len(a.Ops) && j < len(b.Ops) {
			switch {
			case opKeyLess(&a.Ops[i], &b.Ops[j]):
				out.Ops = append(out.Ops, a.Ops[i])
				i++
			case opKeyLess(&b.Ops[j], &a.Ops[i]):
				out.Ops = append(out.Ops, b.Ops[j])
				j++
			default:
				o := a.Ops[i]
				o.Mass += b.Ops[j].Mass
				out.Ops = append(out.Ops, o)
				i++
				j++
			}
		}
		out.Ops = append(out.Ops, a.Ops[i:]...)
		out.Ops = append(out.Ops, b.Ops[j:]...)
	}
	return out
}

// isCanonical reports whether p is already in canonical form: every
// section strictly ascending in key order (which implies unique keys)
// with no zero-mass entries.
func isCanonical(p *Profile) bool {
	for i := range p.Workloads {
		if p.Workloads[i].Runs == 0 {
			return false
		}
		if i > 0 && p.Workloads[i-1].Name >= p.Workloads[i].Name {
			return false
		}
	}
	for i := range p.Blocks {
		if p.Blocks[i].Count == 0 {
			return false
		}
		if i > 0 && !blockKeyLess(&p.Blocks[i-1], &p.Blocks[i]) {
			return false
		}
	}
	for i := range p.Ops {
		if p.Ops[i].Mass == 0 {
			return false
		}
		if i > 0 && !opKeyLess(&p.Ops[i-1], &p.Ops[i]) {
			return false
		}
	}
	return true
}

// Canonical normalizes a hand-assembled profile: duplicate keys are
// summed, zero-mass entries dropped, everything sorted. Profiles
// produced by this package are already canonical.
func Canonical(p *Profile) *Profile { return Merge(p) }
