// Package profstore implements the fleet profile store: a mergeable,
// serializable form of a profiling run, built for continuous profiling
// at scale.
//
// The paper's pitch is profiling cheap enough to leave on everywhere
// (Sections I and V); what a fleet then needs is a way to persist each
// run's result, merge thousands of them from concurrent sessions, and
// ask what changed between two fleet mixes. A [Profile] here is that
// stored form: integer retirement mass keyed by stable identities —
// basic blocks by (unit, module, function, address) and instruction
// mass by (mnemonic, ring) — rather than by the in-memory block IDs of
// a live run, so profiles captured by different processes, machines or
// days merge meaningfully.
//
// Three properties are load-bearing:
//
//   - Canonical form. Every Profile this package hands out has its
//     workloads, blocks and ops sorted by key with no duplicates, so
//     two equal profiles are deeply equal and serialize to identical
//     bytes.
//   - Integer mass accounting. Counts are quantized to integers at
//     capture time, so merging is exact integer addition —
//     commutative and associative by construction. N profiles merged
//     in any order, grouping or sharding produce bit-identical
//     results.
//   - Self-containment. Like internal/perffile, this package depends
//     only on the standard library (enforced by the repository's
//     import-boundary test), so the store format can be lifted into
//     external fleet tooling unchanged.
//
// [Merge] combines profiles offline; [Aggregator] does the same online
// under concurrent ingestion with lock-striped shards; [Diff] compares
// two merged views and flags per-op share regressions.
package profstore

import (
	"fmt"
	"sort"
)

// Ring is the privilege level a block executes in, mirroring the
// program model's rings without importing it (this package is
// stdlib-only by design).
const (
	// RingUser is user mode.
	RingUser uint8 = 0
	// RingKernel is kernel mode.
	RingKernel uint8 = 1
)

// ringString names a ring for rendering.
func ringString(r uint8) string {
	if r == RingKernel {
		return "kernel"
	}
	return "user"
}

// Block is one basic block's merged execution mass. The identity
// fields (Unit through Len) form the merge key; Count accumulates.
type Block struct {
	// Unit is the deployable unit the block was captured from — the
	// workload name at capture time, playing the role of a build ID:
	// two builds of the same module (e.g. a before/after pair) keep
	// distinct block namespaces.
	Unit string
	// Module is the linked image (binary, shared object, kernel
	// module) containing the block.
	Module string
	// Function is the symbol containing the block.
	Function string
	// Addr is the block's start address within the unit.
	Addr uint64
	// Ring is the privilege level the block executes in.
	Ring uint8
	// Len is the number of instructions the block retires per
	// execution (live text, trace points patched).
	Len uint32
	// Count is the merged execution count of the block.
	Count uint64
}

// Mass returns the block's retired-instruction mass: executions times
// instructions per execution.
func (b *Block) Mass() uint64 { return b.Count * uint64(b.Len) }

// key returns the block's merge identity (everything but Count).
func (b *Block) key() Block {
	k := *b
	k.Count = 0
	return k
}

// String identifies the block for diagnostics.
func (b *Block) String() string {
	return fmt.Sprintf("%s/%s.%s@%#x[%d]", b.Unit, b.Module, b.Function, b.Addr, b.Len)
}

// OpMass is the merged retirement mass of one mnemonic in one ring.
// (Mnemonic, Ring) is the merge key; Mass accumulates.
type OpMass struct {
	// Mnemonic is the instruction name (e.g. "vaddps"). Stored as a
	// string so the format does not depend on any ISA table's numeric
	// encoding.
	Mnemonic string
	// Ring is the privilege level the retirements happened in.
	Ring uint8
	// Mass is the merged retired-instruction count.
	Mass uint64
}

// WorkloadWeight records how many profiled runs of one workload a
// profile aggregates — the merge's weight accounting.
type WorkloadWeight struct {
	// Name is the workload (capture unit) name.
	Name string
	// Runs is the number of single-run profiles merged in.
	Runs uint64
}

// Profile is a mergeable stored profile in canonical form: workloads
// sorted by name, blocks sorted by identity, ops sorted by
// (mnemonic, ring), each key appearing at most once. Profiles returned
// by this package are always canonical; hand-assembled ones can be
// normalized with [Canonical].
type Profile struct {
	Workloads []WorkloadWeight
	Blocks    []Block
	Ops       []OpMass
}

// TotalRuns returns the number of single-run profiles merged in.
func (p *Profile) TotalRuns() uint64 {
	var n uint64
	for _, w := range p.Workloads {
		n += w.Runs
	}
	return n
}

// TotalMass returns the profile's total retired-instruction mass
// across rings.
func (p *Profile) TotalMass() uint64 {
	var n uint64
	for _, o := range p.Ops {
		n += o.Mass
	}
	return n
}

// RingMass returns the retired-instruction mass of one ring.
func (p *Profile) RingMass(ring uint8) uint64 {
	var n uint64
	for _, o := range p.Ops {
		if o.Ring == ring {
			n += o.Mass
		}
	}
	return n
}

// TopBlocks returns the n hottest blocks by retired-instruction mass
// (count times length), ties broken by identity for determinism.
func (p *Profile) TopBlocks(n int) []Block {
	out := append([]Block(nil), p.Blocks...)
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Mass(), out[j].Mass()
		if mi != mj {
			return mi > mj
		}
		return blockKeyLess(&out[i], &out[j])
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopOps returns the n most-retired (mnemonic, ring) entries, ties
// broken by key.
func (p *Profile) TopOps(n int) []OpMass {
	out := append([]OpMass(nil), p.Ops...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mass != out[j].Mass {
			return out[i].Mass > out[j].Mass
		}
		return opKeyLess(&out[i], &out[j])
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	return &Profile{
		Workloads: append([]WorkloadWeight(nil), p.Workloads...),
		Blocks:    append([]Block(nil), p.Blocks...),
		Ops:       append([]OpMass(nil), p.Ops...),
	}
}

// Weighted returns the profile scaled by an integer weight: every
// count, mass and run multiplied by times. Weighted(k) equals merging
// k copies — the explicit form of the merge's weight accounting (e.g.
// one profile standing in for k identical machines).
func (p *Profile) Weighted(times uint64) *Profile {
	out := p.Clone()
	for i := range out.Workloads {
		out.Workloads[i].Runs *= times
	}
	for i := range out.Blocks {
		out.Blocks[i].Count *= times
	}
	for i := range out.Ops {
		out.Ops[i].Mass *= times
	}
	return out
}

// BlockKeyLess reports whether a orders before b in canonical form —
// the block identity order Merge emits. Producers that build sections
// already unique by key can sort with it and skip the accumulator
// round-trip (see Merge's canonical fast path).
func BlockKeyLess(a, b *Block) bool { return blockKeyLess(a, b) }

// OpKeyLess is BlockKeyLess for op-mass entries.
func OpKeyLess(a, b *OpMass) bool { return opKeyLess(a, b) }

// blockKeyLess orders blocks canonically by identity.
func blockKeyLess(a, b *Block) bool {
	if a.Unit != b.Unit {
		return a.Unit < b.Unit
	}
	if a.Module != b.Module {
		return a.Module < b.Module
	}
	if a.Function != b.Function {
		return a.Function < b.Function
	}
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	if a.Ring != b.Ring {
		return a.Ring < b.Ring
	}
	return a.Len < b.Len
}

// opKeyLess orders op masses canonically by key.
func opKeyLess(a, b *OpMass) bool {
	if a.Mnemonic != b.Mnemonic {
		return a.Mnemonic < b.Mnemonic
	}
	return a.Ring < b.Ring
}

// accumulator gathers mass under map keys; canonicalization sorts it
// back out. It is the shared spine of Merge, Canonical, the codec's
// load path and the Aggregator's snapshot.
type accumulator struct {
	workloads map[string]uint64
	blocks    map[Block]uint64 // key: Block with Count zeroed
	ops       map[opKey]uint64
}

type opKey struct {
	mnemonic string
	ring     uint8
}

func newAccumulator() *accumulator {
	return &accumulator{
		workloads: make(map[string]uint64),
		blocks:    make(map[Block]uint64),
		ops:       make(map[opKey]uint64),
	}
}

// add folds one profile in. Zero-mass entries are dropped: they carry
// no information and would otherwise make canonical form depend on
// capture noise.
func (acc *accumulator) add(p *Profile) {
	for _, w := range p.Workloads {
		if w.Runs != 0 {
			acc.workloads[w.Name] += w.Runs
		}
	}
	for i := range p.Blocks {
		if p.Blocks[i].Count != 0 {
			acc.blocks[p.Blocks[i].key()] += p.Blocks[i].Count
		}
	}
	for _, o := range p.Ops {
		if o.Mass != 0 {
			acc.ops[opKey{o.Mnemonic, o.Ring}] += o.Mass
		}
	}
}

// profile converts the accumulated mass to a canonical Profile.
func (acc *accumulator) profile() *Profile {
	out := &Profile{}
	if len(acc.workloads) > 0 {
		out.Workloads = make([]WorkloadWeight, 0, len(acc.workloads))
		for name, runs := range acc.workloads {
			out.Workloads = append(out.Workloads, WorkloadWeight{Name: name, Runs: runs})
		}
		sort.Slice(out.Workloads, func(i, j int) bool {
			return out.Workloads[i].Name < out.Workloads[j].Name
		})
	}
	if len(acc.blocks) > 0 {
		out.Blocks = make([]Block, 0, len(acc.blocks))
		for k, count := range acc.blocks {
			k.Count = count
			out.Blocks = append(out.Blocks, k)
		}
		sort.Slice(out.Blocks, func(i, j int) bool {
			return blockKeyLess(&out.Blocks[i], &out.Blocks[j])
		})
	}
	if len(acc.ops) > 0 {
		out.Ops = make([]OpMass, 0, len(acc.ops))
		for k, mass := range acc.ops {
			out.Ops = append(out.Ops, OpMass{Mnemonic: k.mnemonic, Ring: k.ring, Mass: mass})
		}
		sort.Slice(out.Ops, func(i, j int) bool {
			return opKeyLess(&out.Ops[i], &out.Ops[j])
		})
	}
	return out
}

// Merge combines any number of profiles into one canonical profile.
// Mass accounting is pure integer addition over canonical keys, so the
// result is independent of argument order and grouping down to the
// bit: Merge(a, b, c), Merge(Merge(a, b), c) and Merge(a, Merge(c, b))
// are identical, Merge(p) of a canonical p returns an equal profile,
// and Merge() returns the empty profile (the merge identity). Nil
// arguments are ignored.
func Merge(profiles ...*Profile) *Profile {
	live := make([]*Profile, 0, len(profiles))
	canonical := true
	for _, p := range profiles {
		if p == nil {
			continue
		}
		live = append(live, p)
		canonical = canonical && isCanonical(p)
	}
	if canonical && len(live) <= canonicalMergeMax {
		// Profiles this package produces are already canonical, so the
		// common case — merging stored profiles — sums by key order
		// without hashing a single block identity.
		return mergeCanonical(live)
	}
	acc := newAccumulator()
	for _, p := range live {
		acc.add(p)
	}
	return acc.profile()
}

// isCanonical reports whether p is already in canonical form: every
// section strictly ascending in key order (which implies unique keys)
// with no zero-mass entries.
func isCanonical(p *Profile) bool {
	for i := range p.Workloads {
		if p.Workloads[i].Runs == 0 {
			return false
		}
		if i > 0 && p.Workloads[i-1].Name >= p.Workloads[i].Name {
			return false
		}
	}
	for i := range p.Blocks {
		if p.Blocks[i].Count == 0 {
			return false
		}
		if i > 0 && !blockKeyLess(&p.Blocks[i-1], &p.Blocks[i]) {
			return false
		}
	}
	for i := range p.Ops {
		if p.Ops[i].Mass == 0 {
			return false
		}
		if i > 0 && !opKeyLess(&p.Ops[i-1], &p.Ops[i]) {
			return false
		}
	}
	return true
}

// canonicalMergeMax bounds the fan-in of the sort-free canonical merge
// path. Small merges (the harness's per-suite fleet rollups) are
// dominated by per-call constants, where linear key-ordered merging
// wins; bulk merges of hundreds of profiles amortize the accumulator's
// map away and its single hash pass beats the tournament's slice churn.
const canonicalMergeMax = 32

// mergeCanonical merges profiles that are each already canonical by a
// pairwise tournament of linear two-way merges. Each round halves the
// profile count, so total work is O(N log k) direct key comparisons —
// never the sort a concatenate-and-sort scheme would pay, and unlike a
// sequential fold it stays cheap whether the inputs share keys (fleet
// snapshots of one program, where every round's output stays
// union-sized) or are disjoint (per-workload profiles). Integer
// addition over the same canonical keys the accumulator would use, so
// the result is bit-identical to the map path.
func mergeCanonical(profiles []*Profile) *Profile {
	switch len(profiles) {
	case 0:
		return &Profile{}
	case 1:
		// Callers own the result, so a lone input is copied, not aliased.
		p := profiles[0]
		out := &Profile{}
		if len(p.Workloads) > 0 {
			out.Workloads = append([]WorkloadWeight(nil), p.Workloads...)
		}
		if len(p.Blocks) > 0 {
			out.Blocks = append([]Block(nil), p.Blocks...)
		}
		if len(p.Ops) > 0 {
			out.Ops = append([]OpMass(nil), p.Ops...)
		}
		return out
	}
	round := profiles
	for len(round) > 1 {
		next := make([]*Profile, 0, (len(round)+1)/2)
		for i := 0; i+1 < len(round); i += 2 {
			next = append(next, merge2(round[i], round[i+1]))
		}
		if len(round)%2 == 1 {
			next = append(next, round[len(round)-1])
		}
		round = next
	}
	return round[0]
}

// merge2 merges two canonical profiles section by section.
func merge2(a, b *Profile) *Profile {
	return &Profile{
		Workloads: merge2Workloads(a.Workloads, b.Workloads),
		Blocks:    merge2Blocks(a.Blocks, b.Blocks),
		Ops:       merge2Ops(a.Ops, b.Ops),
	}
}

// merge2Workloads linearly merges two sorted workload sections.
func merge2Workloads(a, b []WorkloadWeight) []WorkloadWeight {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]WorkloadWeight, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case b[j].Name < a[i].Name:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.Runs += b[j].Runs
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// merge2Blocks linearly merges two sorted block sections.
func merge2Blocks(a, b []Block) []Block {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]Block, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case blockKeyLess(&a[i], &b[j]):
			out = append(out, a[i])
			i++
		case blockKeyLess(&b[j], &a[i]):
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.Count += b[j].Count
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// merge2Ops linearly merges two sorted op sections.
func merge2Ops(a, b []OpMass) []OpMass {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]OpMass, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case opKeyLess(&a[i], &b[j]):
			out = append(out, a[i])
			i++
		case opKeyLess(&b[j], &a[i]):
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.Mass += b[j].Mass
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Canonical normalizes a hand-assembled profile: duplicate keys are
// summed, zero-mass entries dropped, everything sorted. Profiles
// produced by this package are already canonical.
func Canonical(p *Profile) *Profile { return Merge(p) }
