package profstore

import (
	"runtime"
	"sort"
	"sync"
)

// Aggregator merges profiles online: many goroutines ingest while
// readers take consistent snapshots, the live counterpart of [Merge]
// for fleets of concurrent sessions.
//
// Interning design. The aggregator carries its own symbol table:
// every unit/module/function/mnemonic string is assigned a dense
// uint32 ID on first sight (a read-mostly map — one shared-lock
// lookup per *distinct* string per profile, not per row), and all
// shard keys are fixed-width integer tuples. Ingesting a profile is
// then pure integer work: hash integers to pick a stripe, add
// integers under its lock. Profiles arriving in interned form — e.g.
// decoded off the wire with [LoadInterned] — skip string handling
// per row entirely: their table is remapped onto the aggregator's
// once, and rows flow through as integers.
//
// Concurrency design. Mass lives in lock-striped shards: each block or
// op key hashes to one shard, and concurrent ingests of different keys
// proceed in parallel, only colliding on a shard's mutex when their
// keys land together. Around the stripes sits a reader-writer lock
// held shared by every ingest and exclusively by Snapshot, which buys
// the snapshot guarantee: a snapshot reflects every Ingest that
// returned before the call and no partial ones — it can never observe
// half of an in-flight profile. Ingestion never stops for long: the
// exclusive section only copies out the raw counters; sorting and
// canonicalization happen after the lock is released.
//
// Because the shards accumulate the same integer masses Merge would,
// a Snapshot is bit-identical to Merge over the same profiles — at
// any ingestion parallelism, in any arrival order.
type Aggregator struct {
	mu     sync.RWMutex
	shards []aggShard
	mask   uint64

	// Symbol table: append-only, insertion-ordered; IDs are sorted into
	// canonical order at snapshot time. Guarded by its own lock rather
	// than mu so table growth never blocks snapshot admission.
	smu    sync.RWMutex
	symIDs map[string]uint32
	syms   []string

	wmu       sync.Mutex
	workloads map[uint32]uint64
}

// aggBlockKey is a block identity with interned strings — the shard
// map key. Field order matches canonical key order.
type aggBlockKey struct {
	unit, module, function uint32
	addr                   uint64
	ring                   uint8
	blen                   uint32
}

// aggOpKey is aggBlockKey for ops.
type aggOpKey struct {
	mnemonic uint32
	ring     uint8
}

// aggShard is one lock stripe.
type aggShard struct {
	mu     sync.Mutex
	blocks map[aggBlockKey]uint64
	ops    map[aggOpKey]uint64
}

// NewAggregator returns an empty aggregator sized for the machine:
// the stripe count is the smallest power of two covering four lanes
// per processor (minimum 8), so same-shard collisions stay rare at
// high ingest parallelism.
func NewAggregator() *Aggregator {
	n := 8
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	a := &Aggregator{
		shards:    make([]aggShard, n),
		mask:      uint64(n - 1),
		symIDs:    make(map[string]uint32),
		workloads: make(map[uint32]uint64),
	}
	for i := range a.shards {
		a.shards[i].blocks = make(map[aggBlockKey]uint64)
		a.shards[i].ops = make(map[aggOpKey]uint64)
	}
	return a
}

// sym interns one string into the aggregator's table. Read-locked
// lookup first: after warm-up every call is a shared-lock map hit.
func (a *Aggregator) sym(s string) uint32 {
	a.smu.RLock()
	id, ok := a.symIDs[s]
	a.smu.RUnlock()
	if ok {
		return id
	}
	a.smu.Lock()
	defer a.smu.Unlock()
	if id, ok = a.symIDs[s]; ok {
		return id
	}
	id = uint32(len(a.syms))
	a.syms = append(a.syms, s)
	a.symIDs[s] = id
	return id
}

// mix64 finalizes an integer hash (splitmix64's mixer) so shard
// selection costs a few multiplies instead of byte-at-a-time FNV over
// string keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (a *Aggregator) blockShard(k *aggBlockKey) *aggShard {
	h := uint64(k.unit) | uint64(k.module)<<21 | uint64(k.function)<<42
	h = mix64(h ^ mix64(k.addr^uint64(k.ring)<<56^uint64(k.blen)<<24))
	return &a.shards[h&a.mask]
}

func (a *Aggregator) opShard(k aggOpKey) *aggShard {
	h := mix64(uint64(k.mnemonic)<<8 | uint64(k.ring))
	return &a.shards[h&a.mask]
}

// Ingest folds one profile into the aggregator. Safe for any number of
// concurrent callers; each call is atomic with respect to Snapshot.
// Nil profiles are ignored.
func (a *Aggregator) Ingest(p *Profile) {
	if p == nil {
		return
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	// Per-field run caches: canonical sections repeat strings in runs,
	// so the table is consulted once per run, not once per row.
	var prevName string
	var prevNameID uint32
	firstName := true
	for _, w := range p.Workloads {
		if w.Runs == 0 {
			continue
		}
		if firstName || w.Name != prevName {
			prevNameID, prevName, firstName = a.sym(w.Name), w.Name, false
		}
		a.wmu.Lock()
		a.workloads[prevNameID] += w.Runs
		a.wmu.Unlock()
	}
	var pu, pm, pf string
	var puID, pmID, pfID uint32
	first := true
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.Count == 0 {
			continue
		}
		if first || b.Unit != pu {
			puID, pu = a.sym(b.Unit), b.Unit
		}
		if first || b.Module != pm {
			pmID, pm = a.sym(b.Module), b.Module
		}
		if first || b.Function != pf {
			pfID, pf = a.sym(b.Function), b.Function
		}
		first = false
		k := aggBlockKey{unit: puID, module: pmID, function: pfID, addr: b.Addr, ring: b.Ring, blen: b.Len}
		s := a.blockShard(&k)
		s.mu.Lock()
		s.blocks[k] += b.Count
		s.mu.Unlock()
	}
	var prevMn string
	var prevMnID uint32
	firstMn := true
	for _, o := range p.Ops {
		if o.Mass == 0 {
			continue
		}
		if firstMn || o.Mnemonic != prevMn {
			prevMnID, prevMn, firstMn = a.sym(o.Mnemonic), o.Mnemonic, false
		}
		k := aggOpKey{mnemonic: prevMnID, ring: o.Ring}
		s := a.opShard(k)
		s.mu.Lock()
		s.ops[k] += o.Mass
		s.mu.Unlock()
	}
}

// IngestInterned folds an interned profile in — the wire-ingest fast
// path. The profile's symbol table is remapped onto the aggregator's
// once (one table lookup per distinct symbol), and every row is then
// pure integer work: no string is touched per row. Semantically
// identical to Ingest of the materialized profile.
func (a *Aggregator) IngestInterned(in *Interned) {
	if in == nil {
		return
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	var remapBuf [64]uint32
	remap := remapBuf[:0]
	if len(in.syms) > len(remapBuf) {
		remap = make([]uint32, 0, len(in.syms))
	}
	for _, s := range in.syms {
		remap = append(remap, a.sym(s))
	}
	for _, w := range in.workloads {
		if w.runs == 0 {
			continue
		}
		a.wmu.Lock()
		a.workloads[remap[w.name]] += w.runs
		a.wmu.Unlock()
	}
	for i := range in.blocks {
		b := &in.blocks[i]
		if b.count == 0 {
			continue
		}
		k := aggBlockKey{
			unit: remap[b.unit], module: remap[b.module], function: remap[b.function],
			addr: b.addr, ring: b.ring, blen: b.blen,
		}
		s := a.blockShard(&k)
		s.mu.Lock()
		s.blocks[k] += b.count
		s.mu.Unlock()
	}
	for i := range in.ops {
		o := &in.ops[i]
		if o.mass == 0 {
			continue
		}
		k := aggOpKey{mnemonic: remap[o.mnemonic], ring: o.ring}
		s := a.opShard(k)
		s.mu.Lock()
		s.ops[k] += o.mass
		s.mu.Unlock()
	}
}

// Snapshot returns the merged view of everything ingested so far, as a
// canonical profile. It is consistent: every Ingest that returned
// before the call is fully included, and no in-flight Ingest is
// partially visible. Ingestion resumes the moment the raw counters are
// copied out; canonicalization runs outside the lock.
func (a *Aggregator) Snapshot() *Profile {
	in := &Interned{}
	a.mu.Lock()
	// Copy out raw interned state under the exclusive lock. The symbol
	// lock is not needed: every writer to the table holds mu shared, so
	// mu exclusive orders after all of them.
	in.syms = append([]string(nil), a.syms...)
	if len(a.workloads) > 0 {
		in.workloads = make([]iWorkload, 0, len(a.workloads))
		for id, runs := range a.workloads {
			in.workloads = append(in.workloads, iWorkload{name: id, runs: runs})
		}
	}
	var nb, no int
	for i := range a.shards {
		nb += len(a.shards[i].blocks)
		no += len(a.shards[i].ops)
	}
	if nb > 0 {
		in.blocks = make([]iBlock, 0, nb)
	}
	if no > 0 {
		in.ops = make([]iOp, 0, no)
	}
	for i := range a.shards {
		for k, count := range a.shards[i].blocks {
			in.blocks = append(in.blocks, iBlock{
				unit: k.unit, module: k.module, function: k.function,
				addr: k.addr, ring: k.ring, blen: k.blen, count: count,
			})
		}
		for k, mass := range a.shards[i].ops {
			in.ops = append(in.ops, iOp{mnemonic: k.mnemonic, ring: k.ring, mass: mass})
		}
	}
	a.mu.Unlock()
	// Canonicalize outside the lock: sort the insertion-ordered table
	// (remapping row IDs through the permutation makes integer order
	// string order), then integer-sort the rows. IDs are bijective with
	// strings, so no folding is needed — keys were unique in the maps.
	in.sortSyms()
	if len(in.workloads) > 1 {
		sort.Slice(in.workloads, func(i, j int) bool { return in.workloads[i].name < in.workloads[j].name })
	}
	if len(in.blocks) > 1 {
		sort.Slice(in.blocks, func(i, j int) bool { return iBlockCmp(&in.blocks[i], &in.blocks[j]) < 0 })
	}
	if len(in.ops) > 1 {
		sort.Slice(in.ops, func(i, j int) bool { return iOpCmp(&in.ops[i], &in.ops[j]) < 0 })
	}
	return in.Profile()
}
