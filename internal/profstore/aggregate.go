package profstore

import (
	"runtime"
	"sync"
)

// Aggregator merges profiles online: many goroutines ingest while
// readers take consistent snapshots, the live counterpart of [Merge]
// for fleets of concurrent sessions.
//
// Concurrency design. Mass lives in lock-striped shards: each block or
// op key hashes to one shard, and concurrent ingests of different keys
// proceed in parallel, only colliding on a shard's mutex when their
// keys land together. Around the stripes sits a reader-writer lock
// held shared by every ingest and exclusively by Snapshot, which buys
// the snapshot guarantee: a snapshot reflects every Ingest that
// returned before the call and no partial ones — it can never observe
// half of an in-flight profile. Ingestion never stops for long: the
// exclusive section only copies out the raw counters; sorting and
// canonicalization happen after the lock is released.
//
// Because the shards accumulate the same integer masses Merge would,
// a Snapshot is bit-identical to Merge over the same profiles — at
// any ingestion parallelism, in any arrival order.
type Aggregator struct {
	mu     sync.RWMutex
	shards []aggShard
	mask   uint64

	wmu       sync.Mutex
	workloads map[string]uint64
}

// aggShard is one lock stripe.
type aggShard struct {
	mu     sync.Mutex
	blocks map[Block]uint64 // key: Block with Count zeroed
	ops    map[opKey]uint64
}

// NewAggregator returns an empty aggregator sized for the machine:
// the stripe count is the smallest power of two covering four lanes
// per processor (minimum 8), so same-shard collisions stay rare at
// high ingest parallelism.
func NewAggregator() *Aggregator {
	n := 8
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	a := &Aggregator{
		shards:    make([]aggShard, n),
		mask:      uint64(n - 1),
		workloads: make(map[string]uint64),
	}
	for i := range a.shards {
		a.shards[i].blocks = make(map[Block]uint64)
		a.shards[i].ops = make(map[opKey]uint64)
	}
	return a
}

// fnv-1a, inlined so hashing a key allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

func (a *Aggregator) blockShard(k *Block) *aggShard {
	h := fnvString(fnvOffset, k.Unit)
	h = fnvString(h, k.Module)
	h = fnvString(h, k.Function)
	h = fnvUint64(h, k.Addr)
	h = fnvUint64(h, uint64(k.Ring)<<32|uint64(k.Len))
	return &a.shards[h&a.mask]
}

func (a *Aggregator) opShard(k opKey) *aggShard {
	h := fnvString(fnvOffset, k.mnemonic)
	h = fnvUint64(h, uint64(k.ring))
	return &a.shards[h&a.mask]
}

// Ingest folds one profile into the aggregator. Safe for any number of
// concurrent callers; each call is atomic with respect to Snapshot.
// Nil profiles are ignored.
func (a *Aggregator) Ingest(p *Profile) {
	if p == nil {
		return
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, w := range p.Workloads {
		if w.Runs == 0 {
			continue
		}
		a.wmu.Lock()
		a.workloads[w.Name] += w.Runs
		a.wmu.Unlock()
	}
	for i := range p.Blocks {
		if p.Blocks[i].Count == 0 {
			continue
		}
		k := p.Blocks[i].key()
		s := a.blockShard(&k)
		s.mu.Lock()
		s.blocks[k] += p.Blocks[i].Count
		s.mu.Unlock()
	}
	for _, o := range p.Ops {
		if o.Mass == 0 {
			continue
		}
		k := opKey{o.Mnemonic, o.Ring}
		s := a.opShard(k)
		s.mu.Lock()
		s.ops[k] += o.Mass
		s.mu.Unlock()
	}
}

// Snapshot returns the merged view of everything ingested so far, as a
// canonical profile. It is consistent: every Ingest that returned
// before the call is fully included, and no in-flight Ingest is
// partially visible. Ingestion resumes the moment the raw counters are
// copied out; canonicalization runs outside the lock.
func (a *Aggregator) Snapshot() *Profile {
	acc := newAccumulator()
	a.mu.Lock()
	for name, runs := range a.workloads {
		acc.workloads[name] = runs
	}
	for i := range a.shards {
		for k, count := range a.shards[i].blocks {
			acc.blocks[k] = count
		}
		for k, mass := range a.shards[i].ops {
			acc.ops[k] = mass
		}
	}
	a.mu.Unlock()
	return acc.profile()
}
