package profstore

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultDiffThreshold is the regression threshold used when
// DiffOptions.Threshold is zero: an op whose share of total mass moved
// by at least one percentage point is flagged.
const DefaultDiffThreshold = 0.01

// DiffOptions parameterise a profile comparison.
type DiffOptions struct {
	// Threshold is the minimum absolute share change — measured as a
	// fraction of total retirement mass, e.g. 0.01 = one percentage
	// point — for an op to be flagged as a regression. Zero selects
	// DefaultDiffThreshold; comparisons use >=, so a threshold of
	// exactly the observed change still flags it.
	Threshold float64
}

// OpDelta is one mnemonic's movement between two profiles.
type OpDelta struct {
	Mnemonic string
	Ring     uint8
	// BeforeMass and AfterMass are the absolute retirement masses.
	BeforeMass, AfterMass uint64
	// BeforeShare and AfterShare are the op's fraction of each
	// profile's total mass — the volume-independent quantity fleets
	// compare, since yesterday's mix and today's rarely cover the same
	// number of runs.
	BeforeShare, AfterShare float64
	// ShareDelta is AfterShare - BeforeShare: positive means the op
	// grew relative to the fleet, negative that it shrank.
	ShareDelta float64
}

// Regressed reports whether the delta crosses the report's threshold.
func (d *OpDelta) regressed(threshold float64) bool {
	abs := d.ShareDelta
	if abs < 0 {
		abs = -abs
	}
	return abs >= threshold
}

// DiffReport is the outcome of comparing two merged profiles.
type DiffReport struct {
	// TotalBefore and TotalAfter are the two profiles' total masses.
	TotalBefore, TotalAfter uint64
	// RunsBefore and RunsAfter are the merged run counts.
	RunsBefore, RunsAfter uint64
	// Threshold is the resolved regression threshold.
	Threshold float64
	// Deltas holds one entry per (mnemonic, ring) present in either
	// profile, sorted by decreasing absolute share movement, ties
	// broken by key — so Deltas[0] is the headline change.
	Deltas []OpDelta
	// Regressions is the subset of Deltas at or above Threshold, in
	// the same order.
	Regressions []OpDelta
}

// Diff compares two merged profiles op by op. Shares are computed
// against each profile's own total mass, so fleets of different sizes
// compare directly; ops present on only one side diff against a zero
// share. Nil profiles are treated as empty.
func Diff(before, after *Profile, opts DiffOptions) *DiffReport {
	if before == nil {
		before = &Profile{}
	}
	if after == nil {
		after = &Profile{}
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultDiffThreshold
	}
	rep := &DiffReport{
		TotalBefore: before.TotalMass(),
		TotalAfter:  after.TotalMass(),
		RunsBefore:  before.TotalRuns(),
		RunsAfter:   after.TotalRuns(),
		Threshold:   threshold,
	}

	type opKey struct {
		mnemonic string
		ring     uint8
	}
	masses := make(map[opKey][2]uint64, len(before.Ops)+len(after.Ops))
	for _, o := range before.Ops {
		k := opKey{o.Mnemonic, o.Ring}
		m := masses[k]
		m[0] += o.Mass
		masses[k] = m
	}
	for _, o := range after.Ops {
		k := opKey{o.Mnemonic, o.Ring}
		m := masses[k]
		m[1] += o.Mass
		masses[k] = m
	}

	share := func(mass, total uint64) float64 {
		if total == 0 {
			return 0
		}
		return float64(mass) / float64(total)
	}
	rep.Deltas = make([]OpDelta, 0, len(masses))
	for k, m := range masses {
		d := OpDelta{
			Mnemonic:    k.mnemonic,
			Ring:        k.ring,
			BeforeMass:  m[0],
			AfterMass:   m[1],
			BeforeShare: share(m[0], rep.TotalBefore),
			AfterShare:  share(m[1], rep.TotalAfter),
		}
		d.ShareDelta = d.AfterShare - d.BeforeShare
		rep.Deltas = append(rep.Deltas, d)
	}
	sort.Slice(rep.Deltas, func(i, j int) bool {
		ai, aj := rep.Deltas[i].ShareDelta, rep.Deltas[j].ShareDelta
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		if rep.Deltas[i].Mnemonic != rep.Deltas[j].Mnemonic {
			return rep.Deltas[i].Mnemonic < rep.Deltas[j].Mnemonic
		}
		return rep.Deltas[i].Ring < rep.Deltas[j].Ring
	})
	for _, d := range rep.Deltas {
		if d.regressed(threshold) {
			rep.Regressions = append(rep.Regressions, d)
		}
	}
	return rep
}

// Render formats the report as an aligned text table showing the top n
// movers (n <= 0: all), regressions flagged in the last column.
func (rep *DiffReport) Render(n int) string {
	rows := rep.Deltas
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "PROFILE DIFF — before %s insts (%d runs), after %s insts (%d runs); %d/%d ops moved >= %.1fpp\n",
		humanMass(rep.TotalBefore), rep.RunsBefore,
		humanMass(rep.TotalAfter), rep.RunsAfter,
		len(rep.Regressions), len(rep.Deltas), rep.Threshold*100)
	mw := len("MNEMONIC")
	for _, d := range rows {
		if len(d.Mnemonic) > mw {
			mw = len(d.Mnemonic)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %-6s  %12s  %12s  %8s\n", mw, "MNEMONIC", "RING", "BEFORE", "AFTER", "DELTA")
	for _, d := range rows {
		flag := ""
		if d.regressed(rep.Threshold) {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-*s  %-6s  %5s %5.1f%%  %5s %5.1f%%  %+7.2fpp%s\n",
			mw, d.Mnemonic, ringString(d.Ring),
			humanMass(d.BeforeMass), d.BeforeShare*100,
			humanMass(d.AfterMass), d.AfterShare*100,
			d.ShareDelta*100, flag)
	}
	return sb.String()
}

// humanMass formats an instruction count compactly.
func humanMass(v uint64) string {
	switch f := float64(v); {
	case v >= 1e9:
		return fmt.Sprintf("%.1fB", f/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", f/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", f/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
