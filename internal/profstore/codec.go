package profstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// prealloc bounds an up-front slice capacity claimed by a section
// header to preallocCap entries.
func prealloc(n uint64) int {
	if n > preallocCap {
		return preallocCap
	}
	return int(n)
}

// The stored-profile format, following perffile's conventions: a fixed
// magic, a little-endian uint32 version, then varint-packed sections.
// Strings (units, modules, functions, mnemonics) are deduplicated into
// one table and referenced by index, so block rows cost a handful of
// bytes each.
//
// Layout (uvarint = unsigned LEB128, binary/varint):
//
//	header:    magic "HBBPROF1" | uint32 version
//	strings:   uvarint n | n x (uvarint len | bytes)
//	workloads: uvarint n | n x (uvarint nameIdx | uvarint runs)
//	blocks:    uvarint n | n x (uvarint unitIdx | uvarint moduleIdx |
//	           uvarint funcIdx | uvarint addr | uvarint ring |
//	           uvarint len | uvarint count)
//	ops:       uvarint n | n x (uvarint mnemonicIdx | uvarint ring |
//	           uvarint mass)
//
// Sections are written from the canonical profile, so equal profiles
// serialize to identical bytes, and the string table (sorted unique
// strings) is itself canonical.
//
// The on-disk form and the in-memory [Interned] form are the same
// shape — sorted unique string table, index-keyed rows in canonical
// order — so encode is a flat dump of the interned profile and decode
// verifies the invariants instead of rebuilding them: a file this
// package wrote is interned by construction, and the canonicalizing
// path only runs for streams written by something else.

// Magic identifies a stored profile.
const Magic = "HBBPROF1"

// Version is the current format version.
const Version uint32 = 1

// Sentinel errors for malformed streams, mirroring perffile's
// classification pattern: parse failures wrap one of these, so callers
// use errors.Is regardless of the contextual detail in the message.
var (
	// ErrBadMagic reports a stream that is not a stored profile.
	ErrBadMagic = errors.New("profstore: bad magic")
	// ErrTruncatedRecord reports a stream that ends (or claims a
	// length) mid-record.
	ErrTruncatedRecord = errors.New("profstore: truncated record")
	// ErrUnsupportedVersion reports a valid header whose format
	// version this package cannot read.
	ErrUnsupportedVersion = errors.New("profstore: unsupported version")
)

// Decoder guards against lying section headers: a corrupt count must
// fail fast, not allocate unbounded memory.
const (
	maxStrings   = 1 << 22
	maxStringLen = 1 << 16
	maxEntries   = 1 << 26
	// preallocCap bounds up-front slice allocation; a stream claiming
	// more entries earns them by actually carrying the bytes.
	preallocCap = 1 << 12
	// maxBlockLen bounds a block's instruction count.
	maxBlockLen = 1 << 20
)

// Save writes the profile in the stored format. The profile is
// canonicalized first, so any two equal profiles — regardless of how
// they were assembled — produce identical bytes.
func Save(w io.Writer, p *Profile) error {
	buf, err := AppendSave(nil, p)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// AppendSave appends the profile's stored form to dst and returns the
// extended slice — Save without the Writer round-trip, for callers
// assembling frames or reusing buffers.
func AppendSave(dst []byte, p *Profile) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("profstore: Save of a nil profile")
	}
	return Intern(p).appendStored(dst), nil
}

// appendStored dumps the interned profile: the symbol table is already
// the format's sorted unique string table, and row IDs are already the
// table indexes the format wants.
func (in *Interned) appendStored(dst []byte) []byte {
	dst = append(dst, Magic...)
	dst = binary.LittleEndian.AppendUint32(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(len(in.syms)))
	for _, s := range in.syms {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(in.workloads)))
	for _, w := range in.workloads {
		dst = binary.AppendUvarint(dst, uint64(w.name))
		dst = binary.AppendUvarint(dst, w.runs)
	}
	dst = binary.AppendUvarint(dst, uint64(len(in.blocks)))
	for i := range in.blocks {
		b := &in.blocks[i]
		dst = binary.AppendUvarint(dst, uint64(b.unit))
		dst = binary.AppendUvarint(dst, uint64(b.module))
		dst = binary.AppendUvarint(dst, uint64(b.function))
		dst = binary.AppendUvarint(dst, b.addr)
		dst = binary.AppendUvarint(dst, uint64(b.ring))
		dst = binary.AppendUvarint(dst, uint64(b.blen))
		dst = binary.AppendUvarint(dst, b.count)
	}
	dst = binary.AppendUvarint(dst, uint64(len(in.ops)))
	for i := range in.ops {
		o := &in.ops[i]
		dst = binary.AppendUvarint(dst, uint64(o.mnemonic))
		dst = binary.AppendUvarint(dst, uint64(o.ring))
		dst = binary.AppendUvarint(dst, o.mass)
	}
	return dst
}

// byteDecoder walks a fully-buffered stream. Running out of bytes is a
// truncated record by definition — I/O errors cannot happen here, so
// the classification old streaming decoders had to do per read site is
// built into the two primitives.
type byteDecoder struct {
	data []byte
	off  int
}

func (d *byteDecoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n > 0 {
		d.off += n
		return v, nil
	}
	if n == 0 {
		return 0, fmt.Errorf("%w: %s: %w", ErrTruncatedRecord, what, io.ErrUnexpectedEOF)
	}
	return 0, fmt.Errorf("profstore: reading %s: varint overflows a 64-bit integer", what)
}

func (d *byteDecoder) take(n uint64, what string) ([]byte, error) {
	if uint64(len(d.data)-d.off) < n {
		return nil, fmt.Errorf("%w: %s: %w", ErrTruncatedRecord, what, io.ErrUnexpectedEOF)
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// classifyReadError maps a stream read failure to the sentinel it
// deserves, exactly as perffile does: an early end is a truncated
// record; any other I/O failure keeps its own identity so callers do
// not mistake a retryable read for file corruption. The cause stays on
// the unwrap chain either way.
func classifyReadError(what string, err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %s: %w", ErrTruncatedRecord, what, err)
	}
	return fmt.Errorf("profstore: reading %s: %w", what, err)
}

// badMagicPrefix reports whether a stream that ended early was never a
// stored profile to begin with: a short stream that does not even
// start with the magic is a wrong-file-type error, not a truncated
// one. Only a genuine magic prefix earns the truncation classification.
func badMagicPrefix(data []byte) bool {
	prefix := len(data)
	if prefix > len(Magic) {
		prefix = len(Magic)
	}
	return string(data[:prefix]) != Magic[:prefix]
}

// Load reads one stored profile. Malformed streams return errors
// matching [ErrBadMagic], [ErrTruncatedRecord] or
// [ErrUnsupportedVersion] under errors.Is. The result is canonical:
// a well-formed but unsorted or duplicated stream (which this package
// never writes) is normalized on the way in.
func Load(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		if badMagicPrefix(data) {
			return nil, ErrBadMagic
		}
		return nil, classifyReadError("stream", err)
	}
	return LoadBytes(data)
}

// LoadBytes is Load for a fully-buffered stream.
func LoadBytes(data []byte) (*Profile, error) {
	in, err := LoadInterned(data)
	if err != nil {
		return nil, err
	}
	return in.Profile(), nil
}

// LoadInterned decodes a stored profile straight into interned form,
// without materializing string-keyed rows: row keys stay integer
// tuples against the file's own string table. Files this package
// writes are canonical on disk — sorted unique table, rows ascending
// by integer key — so the decode is a verify-only pass; anything else
// is canonicalized the long way. Error classification matches [Load].
// The returned Interned copies what it needs: data may be reused.
func LoadInterned(data []byte) (*Interned, error) {
	if len(data) < len(Magic)+4 {
		if badMagicPrefix(data) {
			return nil, ErrBadMagic
		}
		return nil, classifyReadError("header", io.ErrUnexpectedEOF)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedVersion, v)
	}
	d := &byteDecoder{data: data, off: len(Magic) + 4}

	nStrings, err := d.uvarint("string table size")
	if err != nil {
		return nil, err
	}
	if nStrings > maxStrings {
		return nil, fmt.Errorf("profstore: implausible string table size %d", nStrings)
	}
	table := make([]string, 0, prealloc(nStrings))
	for i := uint64(0); i < nStrings; i++ {
		n, err := d.uvarint("string length")
		if err != nil {
			return nil, err
		}
		if n > maxStringLen {
			return nil, fmt.Errorf("profstore: implausible string length %d", n)
		}
		b, err := d.take(n, "string")
		if err != nil {
			return nil, err
		}
		table = append(table, string(b))
	}
	symIdx := func(idx uint64, what string) (uint32, error) {
		if idx >= uint64(len(table)) {
			return 0, fmt.Errorf("profstore: %s string index %d out of range (table has %d)",
				what, idx, len(table))
		}
		return uint32(idx), nil
	}
	ring := func(v uint64) (uint8, error) {
		if v > 255 {
			return 0, fmt.Errorf("profstore: implausible ring %d", v)
		}
		return uint8(v), nil
	}

	in := &Interned{syms: table}
	nWorkloads, err := d.uvarint("workload count")
	if err != nil {
		return nil, err
	}
	if nWorkloads > maxEntries {
		return nil, fmt.Errorf("profstore: implausible workload count %d", nWorkloads)
	}
	if nWorkloads > 0 {
		in.workloads = make([]iWorkload, 0, prealloc(nWorkloads))
	}
	for i := uint64(0); i < nWorkloads; i++ {
		nameIdx, err := d.uvarint("workload name")
		if err != nil {
			return nil, err
		}
		name, err := symIdx(nameIdx, "workload name")
		if err != nil {
			return nil, err
		}
		runs, err := d.uvarint("workload runs")
		if err != nil {
			return nil, err
		}
		in.workloads = append(in.workloads, iWorkload{name: name, runs: runs})
	}

	nBlocks, err := d.uvarint("block count")
	if err != nil {
		return nil, err
	}
	if nBlocks > maxEntries {
		return nil, fmt.Errorf("profstore: implausible block count %d", nBlocks)
	}
	if nBlocks > 0 {
		in.blocks = make([]iBlock, 0, prealloc(nBlocks))
	}
	for i := uint64(0); i < nBlocks; i++ {
		var b iBlock
		var fields [7]uint64
		for fi, what := range [7]string{
			"block unit", "block module", "block function",
			"block addr", "block ring", "block length", "block count",
		} {
			fields[fi], err = d.uvarint(what)
			if err != nil {
				return nil, err
			}
		}
		if b.unit, err = symIdx(fields[0], "block unit"); err != nil {
			return nil, err
		}
		if b.module, err = symIdx(fields[1], "block module"); err != nil {
			return nil, err
		}
		if b.function, err = symIdx(fields[2], "block function"); err != nil {
			return nil, err
		}
		b.addr = fields[3]
		if b.ring, err = ring(fields[4]); err != nil {
			return nil, err
		}
		if fields[5] > maxBlockLen {
			return nil, fmt.Errorf("profstore: implausible block length %d", fields[5])
		}
		b.blen = uint32(fields[5])
		b.count = fields[6]
		in.blocks = append(in.blocks, b)
	}

	nOps, err := d.uvarint("op count")
	if err != nil {
		return nil, err
	}
	if nOps > maxEntries {
		return nil, fmt.Errorf("profstore: implausible op count %d", nOps)
	}
	if nOps > 0 {
		in.ops = make([]iOp, 0, prealloc(nOps))
	}
	for i := uint64(0); i < nOps; i++ {
		var o iOp
		mnIdx, err := d.uvarint("op mnemonic")
		if err != nil {
			return nil, err
		}
		if o.mnemonic, err = symIdx(mnIdx, "op mnemonic"); err != nil {
			return nil, err
		}
		rv, err := d.uvarint("op ring")
		if err != nil {
			return nil, err
		}
		if o.ring, err = ring(rv); err != nil {
			return nil, err
		}
		if o.mass, err = d.uvarint("op mass"); err != nil {
			return nil, err
		}
		in.ops = append(in.ops, o)
	}
	// The ops section is the last one: a well-formed stream ends here.
	// Trailing bytes mean the section counts lied (e.g. a corrupted
	// count varint shrank a section), so the mass parsed so far cannot
	// be trusted either.
	if d.off != len(data) {
		return nil, fmt.Errorf("profstore: trailing data after profile")
	}
	if in.isCanonicalInterned() {
		return in, nil
	}
	// A stream some other writer produced: unsorted table or rows,
	// duplicate strings, zero masses. Materialize and re-intern, which
	// canonicalizes — exactly what the accepting fuzz property demands.
	return Intern(in.Profile()), nil
}

// isCanonicalInterned verifies the decode-side invariants the fast
// path relies on: a strictly-ascending symbol table (sorted + unique,
// so ID order is string order) and strictly-ascending, zero-free rows.
func (in *Interned) isCanonicalInterned() bool {
	for i := 1; i < len(in.syms); i++ {
		if in.syms[i-1] >= in.syms[i] {
			return false
		}
	}
	for i := range in.workloads {
		if in.workloads[i].runs == 0 {
			return false
		}
		if i > 0 && in.workloads[i-1].name >= in.workloads[i].name {
			return false
		}
	}
	for i := range in.blocks {
		if in.blocks[i].count == 0 {
			return false
		}
		if i > 0 && iBlockCmp(&in.blocks[i-1], &in.blocks[i]) >= 0 {
			return false
		}
	}
	for i := range in.ops {
		if in.ops[i].mass == 0 {
			return false
		}
		if i > 0 && iOpCmp(&in.ops[i-1], &in.ops[i]) >= 0 {
			return false
		}
	}
	return true
}
