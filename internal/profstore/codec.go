package profstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// prealloc bounds an up-front slice capacity claimed by a section
// header to preallocCap entries.
func prealloc(n uint64) int {
	if n > preallocCap {
		return preallocCap
	}
	return int(n)
}

// The stored-profile format, following perffile's conventions: a fixed
// magic, a little-endian uint32 version, then varint-packed sections.
// Strings (units, modules, functions, mnemonics) are deduplicated into
// one table and referenced by index, so block rows cost a handful of
// bytes each.
//
// Layout (uvarint = unsigned LEB128, binary/varint):
//
//	header:    magic "HBBPROF1" | uint32 version
//	strings:   uvarint n | n x (uvarint len | bytes)
//	workloads: uvarint n | n x (uvarint nameIdx | uvarint runs)
//	blocks:    uvarint n | n x (uvarint unitIdx | uvarint moduleIdx |
//	           uvarint funcIdx | uvarint addr | uvarint ring |
//	           uvarint len | uvarint count)
//	ops:       uvarint n | n x (uvarint mnemonicIdx | uvarint ring |
//	           uvarint mass)
//
// Sections are written from the canonical profile, so equal profiles
// serialize to identical bytes, and the string table (sorted unique
// strings) is itself canonical.

// Magic identifies a stored profile.
const Magic = "HBBPROF1"

// Version is the current format version.
const Version uint32 = 1

// Sentinel errors for malformed streams, mirroring perffile's
// classification pattern: parse failures wrap one of these, so callers
// use errors.Is regardless of the contextual detail in the message.
var (
	// ErrBadMagic reports a stream that is not a stored profile.
	ErrBadMagic = errors.New("profstore: bad magic")
	// ErrTruncatedRecord reports a stream that ends (or claims a
	// length) mid-record.
	ErrTruncatedRecord = errors.New("profstore: truncated record")
	// ErrUnsupportedVersion reports a valid header whose format
	// version this package cannot read.
	ErrUnsupportedVersion = errors.New("profstore: unsupported version")
)

// Decoder guards against lying section headers: a corrupt count must
// fail fast, not allocate unbounded memory.
const (
	maxStrings   = 1 << 22
	maxStringLen = 1 << 16
	maxEntries   = 1 << 26
	// preallocCap bounds up-front slice allocation; a stream claiming
	// more entries earns them by actually carrying the bytes.
	preallocCap = 1 << 12
)

// Save writes the profile in the stored format. The profile is
// canonicalized first, so any two equal profiles — regardless of how
// they were assembled — produce identical bytes.
func Save(w io.Writer, p *Profile) error {
	if p == nil {
		return fmt.Errorf("profstore: Save of a nil profile")
	}
	p = Canonical(p)

	// String table: sorted unique strings; the canonical profile's
	// sorted sections make first-use order non-deterministic-looking
	// but a sorted table is simplest to reason about.
	index := make(map[string]uint64)
	var table []string
	intern := func(s string) {
		if _, ok := index[s]; !ok {
			index[s] = 0 // placeholder; assigned after sort
			table = append(table, s)
		}
	}
	for _, wl := range p.Workloads {
		intern(wl.Name)
	}
	for i := range p.Blocks {
		intern(p.Blocks[i].Unit)
		intern(p.Blocks[i].Module)
		intern(p.Blocks[i].Function)
	}
	for _, o := range p.Ops {
		intern(o.Mnemonic)
	}
	sort.Strings(table)
	for i, s := range table {
		index[s] = uint64(i)
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		return err
	}
	var buf []byte
	flush := func() error {
		_, err := bw.Write(buf)
		buf = buf[:0]
		return err
	}

	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, s := range table {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Workloads)))
	for _, wl := range p.Workloads {
		buf = binary.AppendUvarint(buf, index[wl.Name])
		buf = binary.AppendUvarint(buf, wl.Runs)
	}
	if err := flush(); err != nil {
		return err
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Blocks)))
	for i := range p.Blocks {
		b := &p.Blocks[i]
		buf = binary.AppendUvarint(buf, index[b.Unit])
		buf = binary.AppendUvarint(buf, index[b.Module])
		buf = binary.AppendUvarint(buf, index[b.Function])
		buf = binary.AppendUvarint(buf, b.Addr)
		buf = binary.AppendUvarint(buf, uint64(b.Ring))
		buf = binary.AppendUvarint(buf, uint64(b.Len))
		buf = binary.AppendUvarint(buf, b.Count)
		if len(buf) >= 1<<15 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Ops)))
	for _, o := range p.Ops {
		buf = binary.AppendUvarint(buf, index[o.Mnemonic])
		buf = binary.AppendUvarint(buf, uint64(o.Ring))
		buf = binary.AppendUvarint(buf, o.Mass)
		if len(buf) >= 1<<15 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return bw.Flush()
}

// decoder wraps the varint read path with truncation classification.
type decoder struct {
	r *bufio.Reader
}

// uvarint reads one varint; a stream ending inside it is a truncated
// record.
func (d *decoder) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, classifyReadError(what, err)
	}
	return v, nil
}

// classifyReadError maps a mid-stream read failure to the sentinel it
// deserves, exactly as perffile does: an early end is a truncated
// record; any other I/O failure keeps its own identity so callers do
// not mistake a retryable read for file corruption. The cause stays on
// the unwrap chain either way.
func classifyReadError(what string, err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %s: %w", ErrTruncatedRecord, what, err)
	}
	return fmt.Errorf("profstore: reading %s: %w", what, err)
}

// Load reads one stored profile. Malformed streams return errors
// matching [ErrBadMagic], [ErrTruncatedRecord] or
// [ErrUnsupportedVersion] under errors.Is. The result is canonical:
// a well-formed but unsorted or duplicated stream (which this package
// never writes) is normalized on the way in.
func Load(r io.Reader) (*Profile, error) {
	d := &decoder{r: bufio.NewReaderSize(r, 1<<16)}
	head := make([]byte, len(Magic)+4)
	if n, err := io.ReadFull(d.r, head); err != nil {
		// A short stream that does not even start with the magic was
		// never a stored profile — that is a wrong-file-type error,
		// not a truncated one. Only a genuine magic prefix earns the
		// truncation classification.
		prefix := n
		if prefix > len(Magic) {
			prefix = len(Magic)
		}
		if string(head[:prefix]) != Magic[:prefix] {
			return nil, ErrBadMagic
		}
		return nil, classifyReadError("header", err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(head[len(Magic):]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedVersion, v)
	}

	nStrings, err := d.uvarint("string table size")
	if err != nil {
		return nil, err
	}
	if nStrings > maxStrings {
		return nil, fmt.Errorf("profstore: implausible string table size %d", nStrings)
	}
	table := make([]string, 0, prealloc(nStrings))
	buf := make([]byte, 0, 64)
	for i := uint64(0); i < nStrings; i++ {
		n, err := d.uvarint("string length")
		if err != nil {
			return nil, err
		}
		if n > maxStringLen {
			return nil, fmt.Errorf("profstore: implausible string length %d", n)
		}
		if uint64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return nil, classifyReadError("string", err)
		}
		table = append(table, string(buf))
	}
	str := func(idx uint64, what string) (string, error) {
		if idx >= uint64(len(table)) {
			return "", fmt.Errorf("profstore: %s string index %d out of range (table has %d)",
				what, idx, len(table))
		}
		return table[idx], nil
	}
	ring := func(v uint64) (uint8, error) {
		if v > 255 {
			return 0, fmt.Errorf("profstore: implausible ring %d", v)
		}
		return uint8(v), nil
	}

	p := &Profile{}
	nWorkloads, err := d.uvarint("workload count")
	if err != nil {
		return nil, err
	}
	if nWorkloads > maxEntries {
		return nil, fmt.Errorf("profstore: implausible workload count %d", nWorkloads)
	}
	p.Workloads = make([]WorkloadWeight, 0, prealloc(nWorkloads))
	for i := uint64(0); i < nWorkloads; i++ {
		nameIdx, err := d.uvarint("workload name")
		if err != nil {
			return nil, err
		}
		name, err := str(nameIdx, "workload name")
		if err != nil {
			return nil, err
		}
		runs, err := d.uvarint("workload runs")
		if err != nil {
			return nil, err
		}
		p.Workloads = append(p.Workloads, WorkloadWeight{Name: name, Runs: runs})
	}

	nBlocks, err := d.uvarint("block count")
	if err != nil {
		return nil, err
	}
	if nBlocks > maxEntries {
		return nil, fmt.Errorf("profstore: implausible block count %d", nBlocks)
	}
	p.Blocks = make([]Block, 0, prealloc(nBlocks))
	for i := uint64(0); i < nBlocks; i++ {
		var b Block
		var fields [7]uint64
		for fi, what := range [7]string{
			"block unit", "block module", "block function",
			"block addr", "block ring", "block length", "block count",
		} {
			fields[fi], err = d.uvarint(what)
			if err != nil {
				return nil, err
			}
		}
		if b.Unit, err = str(fields[0], "block unit"); err != nil {
			return nil, err
		}
		if b.Module, err = str(fields[1], "block module"); err != nil {
			return nil, err
		}
		if b.Function, err = str(fields[2], "block function"); err != nil {
			return nil, err
		}
		b.Addr = fields[3]
		if b.Ring, err = ring(fields[4]); err != nil {
			return nil, err
		}
		if fields[5] > 1<<20 {
			return nil, fmt.Errorf("profstore: implausible block length %d", fields[5])
		}
		b.Len = uint32(fields[5])
		b.Count = fields[6]
		p.Blocks = append(p.Blocks, b)
	}

	nOps, err := d.uvarint("op count")
	if err != nil {
		return nil, err
	}
	if nOps > maxEntries {
		return nil, fmt.Errorf("profstore: implausible op count %d", nOps)
	}
	p.Ops = make([]OpMass, 0, prealloc(nOps))
	for i := uint64(0); i < nOps; i++ {
		var o OpMass
		mnIdx, err := d.uvarint("op mnemonic")
		if err != nil {
			return nil, err
		}
		if o.Mnemonic, err = str(mnIdx, "op mnemonic"); err != nil {
			return nil, err
		}
		rv, err := d.uvarint("op ring")
		if err != nil {
			return nil, err
		}
		if o.Ring, err = ring(rv); err != nil {
			return nil, err
		}
		if o.Mass, err = d.uvarint("op mass"); err != nil {
			return nil, err
		}
		p.Ops = append(p.Ops, o)
	}
	// The ops section is the last one: a well-formed stream ends here.
	// Trailing bytes mean the section counts lied (e.g. a corrupted
	// count varint shrank a section), so the mass parsed so far cannot
	// be trusted either.
	if _, err := d.r.ReadByte(); err == nil {
		return nil, fmt.Errorf("profstore: trailing data after profile")
	} else if err != io.EOF {
		return nil, fmt.Errorf("profstore: reading trailer: %w", err)
	}
	return Canonical(p), nil
}
