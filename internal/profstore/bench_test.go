package profstore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// benchProfiles builds n distinct single-run profiles of realistic
// size (a few hundred blocks, a few dozen ops) with overlapping keys.
func benchProfiles(n int) []*Profile {
	rng := rand.New(rand.NewSource(42))
	out := make([]*Profile, n)
	for i := range out {
		raw := &Profile{Workloads: []WorkloadWeight{{Name: "bench", Runs: 1}}}
		for b := 0; b < 300; b++ {
			raw.Blocks = append(raw.Blocks, Block{
				Unit:     "bench",
				Module:   "a.out",
				Function: [4]string{"main", "step", "solve", "inner"}[b%4],
				Addr:     uint64(b) * 32,
				Ring:     uint8(b & 1),
				Len:      uint32(1 + b%24),
				Count:    uint64(rng.Intn(1_000_000)),
			})
		}
		for o := 0; o < 48; o++ {
			raw.Ops = append(raw.Ops, OpMass{
				Mnemonic: [6]string{"add", "mov", "vaddps", "div", "jz", "call"}[o%6],
				Ring:     uint8(o & 1),
				Mass:     uint64(rng.Intn(10_000_000)),
			})
		}
		out[i] = Canonical(raw)
	}
	return out
}

// benchmarkIngest measures aggregator ingestion throughput at a fixed
// writer count: b.N total ingests split across the writers, so
// ns/op is directly comparable between the variants.
func benchmarkIngest(b *testing.B, writers int) {
	profiles := benchProfiles(8)
	agg := NewAggregator()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				agg.Ingest(profiles[i%len(profiles)])
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

func BenchmarkAggregatorIngest1Writers(b *testing.B)  { benchmarkIngest(b, 1) }
func BenchmarkAggregatorIngest8Writers(b *testing.B)  { benchmarkIngest(b, 8) }
func BenchmarkAggregatorIngest64Writers(b *testing.B) { benchmarkIngest(b, 64) }

// BenchmarkMerge1000Profiles measures the offline fleet merge: one
// thousand single-run profiles into one canonical fleet profile.
func BenchmarkMerge1000Profiles(b *testing.B) {
	profiles := benchProfiles(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := Merge(profiles...); len(m.Blocks) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkSnapshot measures snapshot cost on a loaded aggregator —
// the pause ingestion pays when a reader asks for the fleet view.
func BenchmarkSnapshot(b *testing.B) {
	profiles := benchProfiles(64)
	agg := NewAggregator()
	for _, p := range profiles {
		agg.Ingest(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := agg.Snapshot(); len(s.Blocks) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkSaveLoad measures the codec round trip on a merged fleet
// profile.
func BenchmarkSaveLoad(b *testing.B) {
	merged := Merge(benchProfiles(64)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Save(&buf, merged); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
