package fleetserver

import (
	"hbbp/internal/profstore"
	"hbbp/internal/tsstore"
)

// Epoch rolling: the time axis of the ingest tier.
//
// Without retention, a tenant's epochs map grows one aggregator per
// epoch forever — fine for a test run, unbounded for a daemon. With
// Config.Retention set, each merge advances the tenant's epoch clock
// and rolls every completed epoch (older than the clock by at least
// EpochLag) out of its live aggregator into a tsstore.Series, which
// the ladder then downsamples. Rolling preserves the ingest tier's
// keystone invariant: a rolled epoch's snapshot is bit-identical to
// the flat merge of its acked profiles (the Aggregator contract), and
// tsstore folding is lossless by construction, so any windowed query
// remains bit-identical to the flat merge of the acked profiles in
// those epochs — before, during and after folds.
//
// A late profile for an already-rolled epoch is not refused: it lands
// in a fresh aggregator for that epoch and rolls again on the next
// merge, merging into the series window that already covers the epoch
// (tsstore.AppendEpoch's late-arrival path). Exactly-once still holds
// — dedup is per (agent, seq), independent of epochs.

// roll folds the tenant's completed epochs into its series and
// downsamples. Called by ingest workers after each merge; a no-op
// unless rolling is configured.
func (s *Server) roll(t *tenant, epoch uint64) {
	if !s.cfg.rolling() {
		return
	}
	t.mu.Lock()
	if epoch > t.maxEpoch {
		t.maxEpoch = epoch
	}
	if t.maxEpoch < s.cfg.EpochLag {
		t.mu.Unlock()
		return
	}
	horizon := t.maxEpoch - s.cfg.EpochLag // newest complete epoch
	rolled := false
	for e, ent := range t.epochs {
		// Skip epochs with merges in flight: a worker holding the
		// entry's aggregator must not have it snapshotted away beneath
		// it. The skipped epoch is not stuck — that worker's own roll
		// call, after releaseEpoch, picks it up.
		if e > horizon || ent.inflight > 0 {
			continue
		}
		delete(t.epochs, e)
		if t.series == nil {
			t.series = &tsstore.Series{}
		}
		// Snapshot under t.mu: every new merge acquires the epoch via
		// acquireEpoch, which also needs t.mu, so nothing can slip into
		// this aggregator between the snapshot and the delete.
		t.series.AppendEpoch(e, ent.agg.Snapshot())
		rolled = true
	}
	if rolled {
		t.series.Downsample(s.cfg.Retention, horizon)
	}
	t.mu.Unlock()
}

// SeriesSnapshot returns the tenant's full time axis as a series:
// every rolled window plus every still-live epoch appended as a raw
// window (snapshotting its aggregator), so the result covers all
// merged state regardless of roll timing. Returns an empty series for
// an unknown tenant. The returned series is the caller's own — safe
// to downsample, save or query without further locking.
func (s *Server) SeriesSnapshot(tenantName string) *tsstore.Series {
	s.mu.Lock()
	t := s.tenants[tenantName]
	s.mu.Unlock()
	if t == nil {
		return &tsstore.Series{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out *tsstore.Series
	if t.series != nil {
		out = t.series.Clone()
	} else {
		out = &tsstore.Series{}
	}
	for e, ent := range t.epochs {
		out.AppendEpoch(e, ent.agg.Snapshot())
	}
	return out
}

// Window merges the tenant's state over the inclusive epoch range
// [since, until] — rolled windows and live epochs alike — into one
// canonical profile, returning the spans that contributed. The result
// is bit-identical to the flat profstore.Merge of every acked profile
// in those spans. A nil profile is never returned; an empty overlap
// (or unknown tenant) yields an empty profile and no spans.
func (s *Server) Window(tenantName string, since, until uint64) (*profstore.Profile, []tsstore.Span) {
	return s.SeriesSnapshot(tenantName).Window(since, until)
}
