package fleetserver

// The chaos suite: every test here drives the ingest tier through
// injected transport faults (fleetwire.FlakyConn) and asserts the
// accounting invariants the package documents. Test names share the
// TestChaos prefix so CI can smoke exactly this suite under -race.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbbp/internal/fleetwire"
	"hbbp/internal/profstore"
)

// flakyDialer returns a Dialer whose every connection misbehaves with
// a distinct deterministic seed derived from base.
func flakyDialer(base int64, f fleetwire.Faults) func(ctx context.Context, addr string) (net.Conn, error) {
	var n atomic.Int64
	d := &net.Dialer{Timeout: 5 * time.Second}
	return func(ctx context.Context, addr string) (net.Conn, error) {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		ff := f
		ff.Seed = base*1000003 + n.Add(1)
		return fleetwire.NewFlakyConn(c, ff), nil
	}
}

// countGoroutines waits for the goroutine count to settle back to at
// most base plus slack — the no-leak half of the chaos contract.
func countGoroutines(t *testing.T, base int, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines leaked: %d now vs %d at start\n%s", n, base, buf)
}

// TestChaosAccountingUnderFaults is the keystone invariant test: many
// agents push profiles through connections that chunk writes, flip
// bits and inject resets; every Send retries until confirmed; and the
// post-chaos snapshot must be bit-identical to an offline
// profstore.Merge of exactly the profiles that were confirmed. No
// panic, no leak, no silent loss, no double merge — under -race.
func TestChaosAccountingUnderFaults(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Faults on the server side of every conn too: chaos on both ends.
	s := Serve(fleetwire.NewFlakyListener(ln, fleetwire.Faults{
		Seed:          71,
		MaxWriteChunk: 9,
	}), Config{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second})

	const agents, each = 10, 12
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	profiles := make([][]*profstore.Profile, agents)
	for a := range profiles {
		rng := rand.New(rand.NewSource(int64(700 + a)))
		for i := 0; i < each; i++ {
			profiles[a] = append(profiles[a], testProfile(rng, "gcc"))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			c, err := Dial(ctx, ln.Addr().String(), ClientConfig{
				Tenant: "acme",
				Agent:  fmt.Sprintf("host-%d", a),
				Dialer: flakyDialer(int64(a), fleetwire.Faults{
					MaxWriteChunk: 7,
					CorruptProb:   0.01,
					ResetProb:     0.01,
				}),
				BackoffBase: 2 * time.Millisecond,
				BackoffMax:  50 * time.Millisecond,
				Seed:        int64(a + 1),
			})
			if err != nil {
				errs <- fmt.Errorf("agent %d dial: %w", a, err)
				return
			}
			defer c.Close()
			for i, p := range profiles[a] {
				if err := c.Send(ctx, uint64(1+i%3), p); err != nil {
					errs <- fmt.Errorf("agent %d send %d: %w", a, i, err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every Send was confirmed, so the offline merge of everything
	// sent is exactly what the server must hold — per epoch.
	for epoch := uint64(1); epoch <= 3; epoch++ {
		var want []*profstore.Profile
		for a := range profiles {
			for i, p := range profiles[a] {
				if uint64(1+i%3) == epoch {
					want = append(want, p)
				}
			}
		}
		got := s.Snapshot("acme", epoch)
		if got == nil {
			t.Fatalf("no snapshot for epoch %d", epoch)
		}
		if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(want...))) {
			t.Errorf("epoch %d: post-chaos snapshot diverges from offline merge of the acked profiles", epoch)
		}
	}

	// Ledger coherence: every confirmed profile merged exactly once.
	ts := tenantStats(t, s, "acme")
	if ts.Merged != agents*each {
		t.Errorf("merged = %d, want exactly %d (no loss, no double merge)", ts.Merged, agents*each)
	}
	// Client-side: confirmations equal profiles, however they arrived.
	// (Duplicate acks re-confirm an existing merge and are counted
	// within Acked; resume skips are confirmations without an ack.)

	// Graceful shutdown must drain cleanly even after chaos.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}
	countGoroutines(t, baseGoroutines, 4)
}

// TestChaosOverloadShedsAreCounted forces deterministic overload — a
// one-deep queue, one deliberately slow worker, no-retry clients — and
// pins the exact accounting equality: server-side Shed equals the
// overload refusals clients observed, and the snapshot equals the
// offline merge of exactly the successful Sends.
func TestChaosOverloadShedsAreCounted(t *testing.T) {
	s := startServer(t, Config{
		Queue:           1,
		Workers:         1,
		EnqueueWait:     time.Millisecond,
		testIngestDelay: 10 * time.Millisecond,
	})
	ctx := context.Background()
	const agents, each = 8, 6

	var (
		mu        sync.Mutex
		delivered []*profstore.Profile
		overloads uint64
	)
	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			c, err := Dial(ctx, s.Addr().String(), ClientConfig{
				Tenant:      "acme",
				Agent:       fmt.Sprintf("host-%d", a),
				MaxAttempts: 1, // observe every shed instead of retrying it away
			})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(900 + a)))
			for i := 0; i < each; i++ {
				p := testProfile(rng, "gcc")
				err := c.Send(ctx, 1, p)
				mu.Lock()
				switch {
				case err == nil:
					delivered = append(delivered, p)
				case errors.Is(err, ErrOverloaded):
					overloads++
				default:
					mu.Unlock()
					errs <- fmt.Errorf("agent %d: unexpected error: %w", a, err)
					return
				}
				mu.Unlock()
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if overloads == 0 {
		t.Fatal("overload scenario produced no sheds; the test lost its teeth")
	}
	ts := tenantStats(t, s, "acme")
	if ts.Shed != overloads {
		t.Errorf("server shed ledger = %d, clients observed %d overload refusals — every drop must be accounted",
			ts.Shed, overloads)
	}
	if ts.Merged != uint64(len(delivered)) {
		t.Errorf("merged = %d, want %d (the successful Sends)", ts.Merged, len(delivered))
	}
	got := s.Snapshot("acme", 1)
	if len(delivered) == 0 {
		if got != nil {
			t.Fatal("nothing delivered but snapshot non-nil")
		}
		return
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(delivered...))) {
		t.Error("snapshot diverges from offline merge of exactly the successful Sends")
	}
}

// TestChaosExactlyOnceAcrossReset injects the nastiest retry shape: the
// connection dies after the profile frame is delivered but before the
// ack comes back. The client must learn the truth on redial — from the
// handshake resume point or a duplicate ack — and the profile must
// merge exactly once.
func TestChaosExactlyOnceAcrossReset(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()

	// First connection: write 1 is the handshake flush, write 2 is the
	// profile frame — delivered in full, then the conn is cut before
	// the ack can be read. Later dials are clean.
	var dials atomic.Int64
	d := &net.Dialer{Timeout: 5 * time.Second}
	dialer := func(ctx context.Context, addr string) (net.Conn, error) {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return fleetwire.NewFlakyConn(c, fleetwire.Faults{Seed: 11, CutAfterWrites: 2}), nil
		}
		return c, nil
	}

	c, err := Dial(ctx, s.Addr().String(), ClientConfig{
		Tenant: "acme", Agent: "host-1", Dialer: dialer,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(8))
	p := testProfile(rng, "gcc")
	if err := c.Send(ctx, 1, p); err != nil {
		t.Fatalf("send across reset: %v", err)
	}

	st := c.Stats()
	if st.Dials < 2 {
		t.Fatalf("client stats = %+v, want a redial after the injected cut", st)
	}
	if st.ResumeSkipped+st.DuplicateAcks == 0 {
		t.Fatalf("client stats = %+v, want the redelivery confirmed via resume point or duplicate ack", st)
	}
	// Exactly once: the ledger shows one merge, and the snapshot is
	// the profile itself — not a doubled merge of it.
	ts := tenantStats(t, s, "acme")
	if ts.Merged != 1 {
		t.Fatalf("merged = %d, want exactly 1", ts.Merged)
	}
	if !bytes.Equal(saveBytes(t, s.Snapshot("acme", 1)), saveBytes(t, profstore.Merge(p))) {
		t.Fatal("snapshot is not the single profile — the reset double-merged or lost it")
	}

	// The next Send proceeds normally on the healed connection.
	p2 := testProfile(rng, "gcc")
	if err := c.Send(ctx, 1, p2); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
	if ts := tenantStats(t, s, "acme"); ts.Merged != 2 {
		t.Fatalf("merged = %d after second send, want 2", ts.Merged)
	}
}

// TestChaosMidHandshakeDrops cuts connections during the handshake —
// mid-preamble and mid-hello — and pins that the server counts the
// failures, survives, and the client's retry loop eventually lands a
// clean handshake.
func TestChaosMidHandshakeDrops(t *testing.T) {
	s := startServer(t, Config{ReadTimeout: time.Second, WriteTimeout: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Cut after 4 bytes: mid-preamble, before the hello completes.
	const flakyDials = 3
	var dials atomic.Int64
	d := &net.Dialer{Timeout: 5 * time.Second}
	dialer := func(ctx context.Context, addr string) (net.Conn, error) {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if n := dials.Add(1); n <= flakyDials {
			return fleetwire.NewFlakyConn(c, fleetwire.Faults{Seed: n, CutAfterBytes: 4, MaxWriteChunk: 2}), nil
		}
		return c, nil
	}

	c, err := Dial(ctx, s.Addr().String(), ClientConfig{
		Tenant: "acme", Agent: "host-1", Dialer: dialer,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial through handshake drops: %v", err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(9))
	p := testProfile(rng, "gcc")
	if err := c.Send(ctx, 1, p); err != nil {
		t.Fatalf("send after handshake chaos: %v", err)
	}
	if st := c.Stats(); st.Dials != 1 || st.ConnErrors < flakyDials {
		t.Fatalf("client stats = %+v, want %d failed handshakes then 1 dial", st, flakyDials)
	}
	// The server eventually counts every cut handshake; the cut conns
	// may still be timing out, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.HandshakeFailures >= flakyDials {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stats = %+v, want >= %d handshake failures", s.Stats(), flakyDials)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !bytes.Equal(saveBytes(t, s.Snapshot("acme", 1)), saveBytes(t, profstore.Merge(p))) {
		t.Fatal("snapshot diverged")
	}
}

// TestChaosSlowLoris parks a connection that trickles half a frame and
// stops. The server's read deadline must reap it — the conn closes and
// the handler goroutine exits instead of waiting forever.
func TestChaosSlowLoris(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, Config{ReadTimeout: 100 * time.Millisecond, WriteTimeout: time.Second})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := fleetwire.NewConn(conn, fleetwire.ConnConfig{ReadTimeout: 5 * time.Second, WriteTimeout: time.Second})
	if err := wc.WritePreamble(); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(fleetwire.FrameHello,
		fleetwire.AppendHello(nil, fleetwire.Hello{Tenant: "acme", Agent: "loris"})); err != nil {
		t.Fatal(err)
	}
	if err := wc.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.ReadFrame(); err != nil || typ != fleetwire.FrameWelcome {
		t.Fatalf("welcome = %v, %v", typ, err)
	}

	// Trickle half a profile frame, then go silent.
	full := fleetwire.AppendFrame(nil, fleetwire.FrameProfile,
		fleetwire.AppendProfile(nil, fleetwire.ProfileHeader{Seq: 1, Epoch: 1}, []byte("xxxx")))
	if _, err := conn.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}

	// The server must hang up within its read deadline (plus slack).
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a half-frame with data")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not reap the slow-loris connection")
	}
	countGoroutines(t, baseGoroutines, 4)
}

// TestChaosGracefulShutdownDrains stops the server mid-stream and pins
// the drain contract: Shutdown returns cleanly, every profile whose
// Send was confirmed is in the final snapshot (bit-identical offline
// merge), unconfirmed Sends are genuinely absent, and nothing leaks.
func TestChaosGracefulShutdownDrains(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln, Config{})
	const agents = 6

	var (
		mu        sync.Mutex
		delivered []*profstore.Profile
	)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			c, err := Dial(ctx, ln.Addr().String(), ClientConfig{
				Tenant: "acme", Agent: fmt.Sprintf("host-%d", a),
				BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
				MaxAttempts: 5,
			})
			if err != nil {
				return
			}
			defer c.Close()
			<-start
			rng := rand.New(rand.NewSource(int64(1100 + a)))
			for i := 0; i < 50; i++ {
				p := testProfile(rng, "gcc")
				if err := c.Send(ctx, 1, p); err != nil {
					return // shutdown reached this agent
				}
				mu.Lock()
				delivered = append(delivered, p)
				mu.Unlock()
			}
		}(a)
	}

	close(start)
	time.Sleep(20 * time.Millisecond) // let the stream build up
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(delivered) == 0 {
		t.Fatal("shutdown landed before any profile was confirmed; widen the sleep")
	}
	got := s.Snapshot("acme", 1)
	if got == nil {
		t.Fatal("confirmed profiles but no snapshot")
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(delivered...))) {
		t.Fatal("post-drain snapshot diverges from the confirmed profiles: a drained ingest was lost or an unconfirmed one leaked in")
	}
	countGoroutines(t, baseGoroutines, 4)

	// After shutdown the address refuses connections.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestChaosCorruptFramesAreCountedNotMerged sends deliberately
// CRC-broken frames and pins that they land in the corruption ledger,
// never in merged state, and the server survives them.
func TestChaosCorruptFramesAreCountedNotMerged(t *testing.T) {
	s := startServer(t, Config{ReadTimeout: time.Second})

	// Handshake by hand, then send a frame with a flipped payload bit.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := fleetwire.NewConn(conn, fleetwire.ConnConfig{ReadTimeout: 5 * time.Second, WriteTimeout: time.Second})
	if err := wc.WritePreamble(); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(fleetwire.FrameHello,
		fleetwire.AppendHello(nil, fleetwire.Hello{Tenant: "acme", Agent: "evil"})); err != nil {
		t.Fatal(err)
	}
	if err := wc.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.ReadFrame(); err != nil || typ != fleetwire.FrameWelcome {
		t.Fatalf("welcome = %v, %v", typ, err)
	}
	rng := rand.New(rand.NewSource(10))
	frame := fleetwire.AppendFrame(nil, fleetwire.FrameProfile,
		fleetwire.AppendProfile(nil, fleetwire.ProfileHeader{Seq: 1, Epoch: 1},
			saveBytes(t, testProfile(rng, "gcc"))))
	frame[len(frame)/2] ^= 0x10
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server hangs up on corruption (framing is unrecoverable).
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	io := make([]byte, 64)
	if _, err := conn.Read(io); err == nil {
		t.Fatal("server kept talking after a corrupt frame")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		ts := tenantStats(t, s, "acme")
		if ts.Corrupt >= 1 {
			if ts.Merged != 0 {
				t.Fatalf("ledger = %+v: corrupt frame reached the aggregator", ts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("corruption never counted: %+v", tenantStats(t, s, "acme"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Snapshot("acme", 1) != nil {
		t.Fatal("corrupt frame produced merged state")
	}
}

// TestChaosErrorsAreInjectedShaped sanity-pins that the chaos
// machinery itself is what the retry loop sees: a cut conn's error
// chain carries fleetwire.ErrInjected, so genuine transport bugs can
// never hide behind injected ones in these tests.
func TestChaosErrorsAreInjectedShaped(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := fleetwire.NewFlakyConn(a, fleetwire.Faults{Seed: 1, CutAfterWrites: 1})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write([]byte("x")); !errors.Is(err, fleetwire.ErrInjected) {
		t.Fatalf("cut error = %v, want ErrInjected in the chain", err)
	}
	var opErr *net.OpError
	if _, err := fc.Write([]byte("y")); !errors.As(err, &opErr) || !strings.Contains(opErr.Net, "flaky") {
		t.Fatalf("injected error should look like a net.OpError from the flaky transport, got %v", err)
	}
}
