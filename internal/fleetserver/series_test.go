package fleetserver

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"hbbp/internal/profstore"
	"hbbp/internal/tsstore"
)

// rollConfig is the retention setup the roll tests use: tiny bands so
// folds happen within a few epochs.
func rollConfig() Config {
	return Config{
		Retention: tsstore.Retention{Levels: []tsstore.Level{
			{Width: 1, Keep: 2}, {Width: 4},
		}},
	}
}

// sendEpochs delivers n profiles per epoch over [0, epochs) and
// returns every sent profile grouped by epoch.
func sendEpochs(t *testing.T, s *Server, tenant string, epochs uint64, perEpoch int, seed int64) map[uint64][]*profstore.Profile {
	t.Helper()
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: tenant, Agent: "roller"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(seed))
	sent := map[uint64][]*profstore.Profile{}
	for e := uint64(0); e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			p := testProfile(rng, "gcc")
			if err := c.Send(ctx, e, p); err != nil {
				t.Fatalf("send epoch %d: %v", e, err)
			}
			sent[e] = append(sent[e], p)
		}
	}
	return sent
}

// TestEpochRollBoundsMemory pins the daemon-memory property: with
// retention configured, old epochs leave the live aggregator map and
// fold into a bounded series, while every windowed query remains
// bit-identical to the flat offline merge of exactly the acked
// profiles in those epochs.
func TestEpochRollBoundsMemory(t *testing.T) {
	s := startServer(t, rollConfig())
	const epochs = 40
	sent := sendEpochs(t, s, "acme", epochs, 3, 1)

	ts := tenantStats(t, s, "acme")
	// Live epochs: the lagged epoch plus at most what in-flight skips
	// left behind — with sends long settled, that is epochs > horizon,
	// i.e. at most EpochLag+1 entries (defaults: lag 1 → epochs 38, 39).
	if len(ts.Epochs) > 2 {
		t.Fatalf("live epochs = %v; rolling is not draining the aggregator map", ts.Epochs)
	}
	if len(ts.Windows) == 0 {
		t.Fatal("no retained windows in stats")
	}
	// Retained windows stay near the ladder's steady state (2 raw +
	// ~ceil(38/4) wide + slop), nowhere near one per epoch.
	if got := len(ts.Windows) + len(ts.Epochs); got > 16 {
		t.Fatalf("%d windows+epochs retained over %d epochs; folding is not bounding memory", got, epochs)
	}

	// Full-range windowed query == flat merge of everything acked.
	var all []*profstore.Profile
	for _, ps := range sent {
		all = append(all, ps...)
	}
	got, spans := s.Window("acme", 0, epochs-1)
	if len(spans) == 0 {
		t.Fatal("full-range query matched no spans")
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(all...))) {
		t.Fatal("windowed query diverges from flat merge of the acked profiles")
	}

	// Aligned sub-queries are exact per epoch range too.
	for _, span := range [][2]uint64{{0, 3}, {4, 11}, {0, epochs - 1}} {
		var flat []*profstore.Profile
		for e := span[0]; e <= span[1]; e++ {
			flat = append(flat, sent[e]...)
		}
		got, _ := s.Window("acme", span[0], span[1])
		if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(flat...))) {
			t.Fatalf("Window(%d,%d) diverges from flat merge of those epochs", span[0], span[1])
		}
	}
}

// TestWindowedQueryStableAcrossFolds pins that a fold changes the
// store's granularity, never a query's bytes: the same aligned query
// answers identically before and after later epochs force old raw
// windows to fold coarser.
func TestWindowedQueryStableAcrossFolds(t *testing.T) {
	s := startServer(t, rollConfig())
	// 5 epochs: 0..3 are rolled but still raw (the fold horizon has
	// not passed them), 4 is live.
	sendEpochs(t, s, "acme", 5, 2, 2)
	before, beforeSpans := s.Window("acme", 0, 3)
	if len(beforeSpans) != 4 {
		t.Fatalf("spans before the fold = %v, want 4 raw epochs", beforeSpans)
	}

	// More epochs: the [0,3] range ages past the raw band and folds.
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "late-waves"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for e := uint64(5); e < 24; e++ {
		if err := c.Send(ctx, e, testProfile(rng, "gcc")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	after, afterSpans := s.Window("acme", 0, 3)
	if !bytes.Equal(saveBytes(t, before), saveBytes(t, after)) {
		t.Fatal("aligned query changed across a fold")
	}
	// The granularity did change: fewer, coarser spans.
	if len(afterSpans) >= len(beforeSpans) {
		t.Fatalf("expected coarser spans after fold: before %v after %v", beforeSpans, afterSpans)
	}
}

// TestLateArrivalToRolledEpoch pins that a profile for an epoch
// already folded out of the live map still lands exactly once and is
// visible to queries — the roll path cannot strand stragglers.
func TestLateArrivalToRolledEpoch(t *testing.T) {
	s := startServer(t, rollConfig())
	sent := sendEpochs(t, s, "acme", 20, 1, 4)
	var all []*profstore.Profile
	for _, ps := range sent {
		all = append(all, ps...)
	}

	// Epoch 2 rolled long ago. Deliver one more profile to it.
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "straggler"})
	if err != nil {
		t.Fatal(err)
	}
	late := testProfile(rand.New(rand.NewSource(5)), "llvm")
	if err := c.Send(ctx, 2, late); err != nil {
		t.Fatalf("late send: %v", err)
	}
	c.Close()
	all = append(all, late)

	got, _ := s.Window("acme", 0, 19)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(all...))) {
		t.Fatal("late arrival lost or double-counted across the roll")
	}
}

// TestSeriesSnapshotCoversEverything pins SeriesSnapshot's contract:
// rolled windows plus live epochs, merged, equals the flat merge of
// all acked profiles; an unknown tenant yields an empty series.
func TestSeriesSnapshotCoversEverything(t *testing.T) {
	s := startServer(t, rollConfig())
	sent := sendEpochs(t, s, "acme", 12, 2, 6)
	var all []*profstore.Profile
	for _, ps := range sent {
		all = append(all, ps...)
	}
	series := s.SeriesSnapshot("acme")
	if !bytes.Equal(saveBytes(t, series.Merged()), saveBytes(t, profstore.Merge(all...))) {
		t.Fatal("series snapshot diverges from flat merge")
	}
	if s.SeriesSnapshot("nobody").Len() != 0 {
		t.Error("unknown tenant's series not empty")
	}
}

// TestRollingOffKeepsHistoricalBehavior pins the default: without
// retention, every epoch's aggregator stays live and per-epoch
// Snapshot still answers for all of them.
func TestRollingOffKeepsHistoricalBehavior(t *testing.T) {
	s := startServer(t, Config{})
	sent := sendEpochs(t, s, "acme", 10, 1, 7)
	ts := tenantStats(t, s, "acme")
	if len(ts.Epochs) != 10 {
		t.Fatalf("live epochs = %v, want all 10", ts.Epochs)
	}
	if len(ts.Windows) != 0 {
		t.Fatalf("windows = %v, want none without retention", ts.Windows)
	}
	for e := uint64(0); e < 10; e++ {
		got := s.Snapshot("acme", e)
		if got == nil {
			t.Fatalf("no snapshot for epoch %d", e)
		}
		if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(sent[e]...))) {
			t.Fatalf("epoch %d snapshot diverges", e)
		}
	}
	// Window still works without retention: it sees the live epochs.
	got, spans := s.Window("acme", 3, 6)
	var flat []*profstore.Profile
	for e := uint64(3); e <= 6; e++ {
		flat = append(flat, sent[e]...)
	}
	if len(spans) != 4 {
		t.Fatalf("spans = %v", spans)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(flat...))) {
		t.Fatal("windowed query over live epochs diverges")
	}
}
