package fleetserver

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"hbbp/internal/fleetwire"
	"hbbp/internal/profstore"
)

// TestBatchRoundTrip pins the batched happy path: one SendBatch, one
// round trip, every profile merged, and the snapshot bit-identical to
// the offline merge.
func TestBatchRoundTrip(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(11))
	var sent []*profstore.Profile
	for i := 0; i < 8; i++ {
		sent = append(sent, testProfile(rng, "gcc"))
	}
	if err := c.SendBatch(ctx, 7, sent); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}

	got := s.Snapshot("acme", 7)
	if got == nil {
		t.Fatal("no snapshot for acme/7")
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(sent...))) {
		t.Fatal("snapshot diverges from offline merge of the batched profiles")
	}
	st := c.Stats()
	if st.Acked != 8 || st.Sent != 8 {
		t.Fatalf("client stats = %+v, want 8 acked", st)
	}
	ts := tenantStats(t, s, "acme")
	if ts.Merged != 8 || ts.Batches != 1 || ts.Rejected != 0 || ts.Shed != 0 {
		t.Fatalf("tenant ledger = %+v, want 8 merges in 1 batch", ts)
	}
}

// TestBatchMixedEpochs pins that one batch can span epochs: each entry
// lands in its own epoch's aggregator.
func TestBatchMixedEpochs(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(12))
	p3, p4 := testProfile(rng, "gcc"), testProfile(rng, "gcc")
	items := []BatchItem{
		{Epoch: 3, Payload: saveBytes(t, p3)},
		{Epoch: 4, Payload: saveBytes(t, p4)},
	}
	if err := c.SendBatchBytes(ctx, items); err != nil {
		t.Fatalf("SendBatchBytes: %v", err)
	}
	for epoch, want := range map[uint64]*profstore.Profile{3: p3, 4: p4} {
		got := s.Snapshot("acme", epoch)
		if got == nil || !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(want))) {
			t.Fatalf("epoch %d snapshot wrong", epoch)
		}
	}
}

// TestBatchMixedBadProfile pins the partial-failure contract: a batch
// with an unloadable entry still merges its good entries exactly once,
// the send reports ErrRejected, and the agent's sequence stream stays
// usable afterwards.
func TestBatchMixedBadProfile(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(13))
	good1, good2 := testProfile(rng, "gcc"), testProfile(rng, "gcc")
	items := []BatchItem{
		{Epoch: 1, Payload: saveBytes(t, good1)},
		{Epoch: 1, Payload: []byte("not a profile")},
		{Epoch: 1, Payload: saveBytes(t, good2)},
	}
	err = c.SendBatchBytes(ctx, items)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("SendBatchBytes = %v, want ErrRejected", err)
	}

	got := s.Snapshot("acme", 1)
	if got == nil || !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(good1, good2))) {
		t.Fatal("good batch entries did not merge around the rejected one")
	}
	ts := tenantStats(t, s, "acme")
	if ts.Merged != 2 || ts.Rejected != 1 {
		t.Fatalf("ledger = %+v, want 2 merged 1 rejected", ts)
	}

	// The stream continues: a follow-up single send merges normally.
	late := testProfile(rng, "gcc")
	if err := c.Send(ctx, 1, late); err != nil {
		t.Fatalf("send after mixed batch: %v", err)
	}
	got = s.Snapshot("acme", 1)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(good1, good2, late))) {
		t.Fatal("post-batch send diverged")
	}
}

// TestBatchDuplicateSuppression drives the wire directly to pin the
// server's watermark semantics for batches: re-sent entries answer
// duplicate without a second merge, new entries merge.
func TestBatchDuplicateSuppression(t *testing.T) {
	s := startServer(t, Config{})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	wc := fleetwire.NewConn(conn, fleetwire.ConnConfig{
		ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second})
	defer wc.Close()
	if err := wc.WritePreamble(); err != nil {
		t.Fatal(err)
	}
	if err := wc.WriteFrame(fleetwire.FrameHello,
		fleetwire.AppendHello(nil, fleetwire.Hello{Tenant: "acme", Agent: "raw"})); err != nil {
		t.Fatal(err)
	}
	if err := wc.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.ReadFrame(); err != nil || typ != fleetwire.FrameWelcome {
		t.Fatalf("welcome: %v %v", typ, err)
	}

	rng := rand.New(rand.NewSource(14))
	payloads := [][]byte{
		saveBytes(t, testProfile(rng, "gcc")),
		saveBytes(t, testProfile(rng, "gcc")),
		saveBytes(t, testProfile(rng, "gcc")),
	}
	sendBatch := func(entries []fleetwire.BatchEntry) []fleetwire.BatchVerdict {
		t.Helper()
		if err := wc.WriteFrame(fleetwire.FrameProfileBatch,
			fleetwire.AppendProfileBatch(nil, entries)); err != nil {
			t.Fatal(err)
		}
		typ, p, err := wc.ReadFrame()
		if err != nil || typ != fleetwire.FrameAckBatch {
			t.Fatalf("batch ack: %v %v", typ, err)
		}
		verdicts, err := fleetwire.ParseAckBatch(p)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts
	}

	first := sendBatch([]fleetwire.BatchEntry{
		{Seq: 1, Epoch: 1, Profile: payloads[0]},
		{Seq: 2, Epoch: 1, Profile: payloads[1]},
	})
	for i, v := range first {
		if v.Status != fleetwire.BatchMerged {
			t.Fatalf("first batch verdict %d = %v", i, v.Status)
		}
	}
	// Re-send seq 2 (its ack "was lost") alongside new seq 3.
	second := sendBatch([]fleetwire.BatchEntry{
		{Seq: 2, Epoch: 1, Profile: payloads[1]},
		{Seq: 3, Epoch: 1, Profile: payloads[2]},
	})
	if second[0].Status != fleetwire.BatchDuplicate || second[1].Status != fleetwire.BatchMerged {
		t.Fatalf("second batch verdicts = %v %v, want duplicate then merged",
			second[0].Status, second[1].Status)
	}

	var want []*profstore.Profile
	for _, p := range payloads {
		prof, err := profstore.LoadBytes(p)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, prof)
	}
	got := s.Snapshot("acme", 1)
	if got == nil || !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(want...))) {
		t.Fatal("snapshot diverges: duplicate batch entry merged twice or new entry lost")
	}
	ts := tenantStats(t, s, "acme")
	if ts.Merged != 3 || ts.Duplicates != 1 || ts.Batches != 2 {
		t.Fatalf("ledger = %+v, want 3 merged 1 duplicate over 2 batches", ts)
	}
}

// benchWireIngestBatch is benchWireIngest with batched delivery: each
// round trip carries batchSize profiles.
func benchWireIngestBatch(b *testing.B, agents, batchSize int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := Serve(ln, Config{Queue: 256})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	rng := rand.New(rand.NewSource(1))
	payload := saveBytes(b, testProfile(rng, "gcc"))
	ctx := context.Background()

	clients := make([]*Client, agents)
	for a := range clients {
		c, err := Dial(ctx, ln.Addr().String(), ClientConfig{
			Tenant: "bench", Agent: "agent-" + string(rune('a'+a))})
		if err != nil {
			b.Fatal(err)
		}
		clients[a] = c
		defer c.Close()
	}

	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	errs := make(chan error, agents)
	per := b.N / agents
	extra := b.N % agents
	for a := 0; a < agents; a++ {
		n := per
		if a < extra {
			n++
		}
		go func(c *Client, n int) {
			var err error
			items := make([]BatchItem, 0, batchSize)
			for i := 0; i < n && err == nil; i += len(items) {
				items = items[:0]
				for k := 0; k < batchSize && i+k < n; k++ {
					items = append(items, BatchItem{Epoch: 1, Payload: payload})
				}
				err = c.SendBatchBytes(ctx, items)
			}
			errs <- err
		}(clients[a], n)
	}
	for a := 0; a < agents; a++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

func BenchmarkWireIngestBatch1Agent(b *testing.B)  { benchWireIngestBatch(b, 1, 16) }
func BenchmarkWireIngestBatch8Agents(b *testing.B) { benchWireIngestBatch(b, 8, 16) }
