package fleetserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"hbbp/internal/fleetwire"
	"hbbp/internal/profstore"
	"hbbp/internal/telemetry"
)

// ClientConfig parameterizes a fleet agent's ingest client. Tenant
// and Agent are required; everything else defaults.
type ClientConfig struct {
	// Tenant names the aggregation namespace profiles merge into.
	Tenant string
	// Agent is this agent's stable identity — the key of the server's
	// exactly-once ledger. Reusing an Agent name across restarts
	// without continuing its sequence numbering is the one way to
	// confuse the ledger; the client guards against it by adopting
	// the server's resume point on every handshake.
	Agent string
	// Dialer opens transport connections; defaults to a net.Dialer
	// with a 10s timeout. Chaos tests inject faults here.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// MaxFrame bounds incoming frames; defaults to
	// fleetwire.DefaultMaxFrame.
	MaxFrame int
	// ReadTimeout bounds each ack/nack wait; defaults to 10s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write; defaults to 10s.
	WriteTimeout time.Duration
	// BackoffBase is the first retry delay; defaults to 10ms. Each
	// retry doubles it up to BackoffMax (default 1s), jittered to
	// half-to-full so a fleet of agents does not retry in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts bounds how many times one profile is tried before
	// Send gives up; 0 means retry until the context cancels.
	MaxAttempts int
	// Seed makes the retry jitter reproducible in tests; 0 derives a
	// per-agent seed from Tenant/Agent.
	Seed int64
	// Telemetry is the registry the client counts its dials, re-dials,
	// retries and backoff wall into, labeled by tenant. Nil uses the
	// process-wide default registry: agents are normally embedded in a
	// process that wants one exposition of everything it does.
	Telemetry *telemetry.Registry
}

// withDefaults resolves the zero value and validates identity.
func (c ClientConfig) withDefaults() (ClientConfig, error) {
	if c.Tenant == "" || c.Agent == "" {
		return c, fmt.Errorf("fleetserver: client requires Tenant and Agent: %w", fleetwire.ErrProtocol)
	}
	if c.Dialer == nil {
		d := &net.Dialer{Timeout: 10 * time.Second}
		c.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = fleetwire.DefaultMaxFrame
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.Seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(c.Tenant))
		h.Write([]byte{0})
		h.Write([]byte(c.Agent))
		c.Seed = int64(h.Sum64())
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
	return c, nil
}

// ClientStats counts what one client did and observed — the
// client-side half of the drop-accounting invariant.
type ClientStats struct {
	// Dials counts completed handshakes (first dial and re-dials).
	Dials uint64
	// Sent counts profile frames written to the wire, including
	// re-sends of the same profile.
	Sent uint64
	// Acked counts profiles the server confirmed merged. This is the
	// number an offline Merge of this agent's acked profiles must
	// reproduce.
	Acked uint64
	// DuplicateAcks counts acks flagged duplicate — re-sends whose
	// first delivery had already merged (the lost-ack retry shape).
	DuplicateAcks uint64
	// ResumeSkipped counts profiles confirmed merged by the handshake
	// resume point instead of an ack frame (the reset-before-ack
	// retry shape).
	ResumeSkipped uint64
	// OverloadNacks counts NackOverloaded refusals observed.
	OverloadNacks uint64
	// RejectedNacks counts NackBadProfile refusals observed.
	RejectedNacks uint64
	// ConnErrors counts dial, write and read failures that dropped a
	// connection.
	ConnErrors uint64
	// Retries counts backoff sleeps taken.
	Retries uint64
}

// Client delivers profiles to a fleet ingest server with retries,
// reconnection and exactly-once delivery accounting. Safe for
// concurrent use; Sends serialize internally (one agent identity is
// one ordered stream of profiles).
type Client struct {
	// mu serializes all client state; Send holds it end-to-end so the
	// per-agent sequence stream stays ordered.
	mu sync.Mutex

	cfg  ClientConfig
	addr string
	rng  *rand.Rand

	wc *fleetwire.Conn
	// seq is the last sequence number this client assigned.
	seq uint64
	// serverSeq is the highest sequence the server has confirmed
	// merged (via ack or handshake resume point).
	serverSeq uint64

	closed bool
	stats  ClientStats

	// Telemetry handles, resolved at Dial against cfg.Telemetry.
	telDials   *telemetry.Counter
	telRedials *telemetry.Counter
	telRetries *telemetry.Counter
	telBackoff *telemetry.Histogram // backoff sleep wall, seconds

	// frameBuf is the reused frame-encode scratch; safe because mu is
	// held across every send, including its retries.
	frameBuf []byte
}

// Dial validates cfg and connects to addr, retrying transient
// failures under the client's backoff policy until ctx cancels or
// MaxAttempts is exhausted. The returned client re-dials transparently
// whenever its connection drops.
func Dial(ctx context.Context, addr string, cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:  cfg,
		addr: addr,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	tel := cfg.Telemetry
	c.telDials = tel.Counter("hbbp_fleetclient_dials_total",
		"Completed handshakes (first dial and re-dials).", "tenant", cfg.Tenant)
	c.telRedials = tel.Counter("hbbp_fleetclient_redials_total",
		"Re-dials after a dropped connection.", "tenant", cfg.Tenant)
	c.telRetries = tel.Counter("hbbp_fleetclient_retries_total",
		"Backoff sleeps taken.", "tenant", cfg.Tenant)
	c.telBackoff = tel.Histogram("hbbp_fleetclient_backoff_seconds",
		"Wall time spent in retry backoff.",
		telemetry.NanosToSeconds, telemetry.DurationBuckets(), "tenant", cfg.Tenant)
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 1; ; attempt++ {
		if err := c.ensureConn(ctx); err == nil {
			return c, nil
		} else if giveUp := c.retryBudget(ctx, attempt, err); giveUp != nil {
			return nil, giveUp
		}
	}
}

// Send delivers one profile for one epoch, retrying across resets,
// overload nacks and redials until the server confirms it merged
// exactly once, the server rejects it permanently (ErrRejected), the
// retry budget runs out, or ctx cancels.
func (c *Client) Send(ctx context.Context, epoch uint64, p *profstore.Profile) error {
	var buf bytes.Buffer
	if err := profstore.Save(&buf, p); err != nil {
		return err
	}
	return c.SendBytes(ctx, epoch, buf.Bytes())
}

// SendBytes is Send for an already-serialized stored profile (the
// bytes profstore.Save produces). The payload is delivered verbatim.
func (c *Client) SendBytes(ctx context.Context, epoch uint64, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.seq++
	seq := c.seq
	c.frameBuf = fleetwire.AppendProfile(c.frameBuf[:0], fleetwire.ProfileHeader{Seq: seq, Epoch: epoch}, payload)
	frame := c.frameBuf

	for attempt := 1; ; attempt++ {
		err := c.trySend(ctx, seq, frame)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrRejected) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if giveUp := c.retryBudget(ctx, attempt, err); giveUp != nil {
			return giveUp
		}
	}
}

// BatchItem is one profile for SendBatchBytes: a serialized stored
// profile bound for one epoch.
type BatchItem struct {
	Epoch   uint64
	Payload []byte
}

// SendBatch delivers several profiles for one epoch in batch frames —
// one round trip per batch instead of one per profile. Each profile
// still merges exactly once under the same retry semantics as Send.
// Returns nil when every profile merged; ErrRejected (wrapped) when
// the server permanently refused at least one entry (the others still
// merged); any other error means the retry budget ran out with
// profiles undelivered.
func (c *Client) SendBatch(ctx context.Context, epoch uint64, profiles []*profstore.Profile) error {
	items := make([]BatchItem, 0, len(profiles))
	for _, p := range profiles {
		data, err := profstore.AppendSave(nil, p)
		if err != nil {
			return err
		}
		items = append(items, BatchItem{Epoch: epoch, Payload: data})
	}
	return c.SendBatchBytes(ctx, items)
}

// SendBatchBytes is SendBatch for already-serialized profiles, each
// with its own epoch. Entries are assigned consecutive sequence
// numbers and sent as one batch frame; on resets or overload the
// still-unconfirmed suffix retries as a smaller batch, with the
// handshake resume point confirming anything merged before a lost ack.
func (c *Client) SendBatchBytes(ctx context.Context, items []BatchItem) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if len(items) == 0 {
		return nil
	}
	entries := make([]fleetwire.BatchEntry, len(items))
	for i, it := range items {
		c.seq++
		entries[i] = fleetwire.BatchEntry{Seq: c.seq, Epoch: it.Epoch, Profile: it.Payload}
	}
	// done tracks entries confirmed merged (ack or resume point);
	// rejection remembers permanent refusals so they are not re-sent.
	done := make([]bool, len(entries))
	var firstRejection error
	rejections := 0
	for attempt := 1; ; attempt++ {
		err := c.trySendBatch(ctx, entries, done, &firstRejection, &rejections)
		if err == nil {
			if firstRejection != nil {
				return fmt.Errorf("fleetserver: batch of %d: %d rejected (first: %v): %w",
					len(entries), rejections, firstRejection, ErrRejected)
			}
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if giveUp := c.retryBudget(ctx, attempt, err); giveUp != nil {
			return giveUp
		}
	}
}

// trySendBatch makes one delivery attempt for the batch's unresolved
// entries. nil means every entry is resolved (merged, duplicate,
// resume-skipped, or permanently rejected — recorded via firstRejection
// rather than returned, so one bad entry cannot abort its batchmates).
func (c *Client) trySendBatch(ctx context.Context, entries []fleetwire.BatchEntry,
	done []bool, firstRejection *error, rejections *int) error {
	if err := c.ensureConn(ctx); err != nil {
		return err
	}
	// Resolve what the resume point already confirms, then collect the
	// still-pending suffix. Indexes into entries ride along so verdicts
	// map back.
	var pending []fleetwire.BatchEntry
	var idx []int
	for i := range entries {
		if done[i] {
			continue
		}
		if entries[i].Seq <= c.serverSeq {
			done[i] = true
			c.stats.ResumeSkipped++
			continue
		}
		pending = append(pending, entries[i])
		idx = append(idx, i)
	}
	if len(pending) == 0 {
		return nil
	}
	c.frameBuf = fleetwire.AppendProfileBatch(c.frameBuf[:0], pending)
	if err := c.wc.WriteFrame(fleetwire.FrameProfileBatch, c.frameBuf); err != nil {
		c.dropConn()
		c.stats.ConnErrors++
		return err
	}
	c.stats.Sent += uint64(len(pending))
	typ, payload, err := c.wc.ReadFrame()
	if err != nil {
		c.dropConn()
		c.stats.ConnErrors++
		return err
	}
	if typ != fleetwire.FrameAckBatch {
		c.dropConn()
		c.stats.ConnErrors++
		return fmt.Errorf("fleetserver: unexpected %v frame awaiting batch verdicts: %w", typ, fleetwire.ErrProtocol)
	}
	verdicts, err := fleetwire.ParseAckBatch(payload)
	if err != nil || len(verdicts) != len(pending) {
		c.dropConn()
		c.stats.ConnErrors++
		return fmt.Errorf("fleetserver: bad batch ack (%d verdicts for %d entries): %w",
			len(verdicts), len(pending), fleetwire.ErrProtocol)
	}
	var retryable error
	for vi, v := range verdicts {
		if v.Seq != pending[vi].Seq {
			c.dropConn()
			c.stats.ConnErrors++
			return fmt.Errorf("fleetserver: batch verdict %d echoes seq %d, want %d: %w",
				vi, v.Seq, pending[vi].Seq, fleetwire.ErrProtocol)
		}
		i := idx[vi]
		switch v.Status {
		case fleetwire.BatchMerged, fleetwire.BatchDuplicate:
			done[i] = true
			c.stats.Acked++
			if v.Status == fleetwire.BatchDuplicate {
				c.stats.DuplicateAcks++
			}
			if v.Seq > c.serverSeq {
				c.serverSeq = v.Seq
			}
		case fleetwire.BatchNacked:
			switch v.Code {
			case fleetwire.NackBadProfile:
				// Permanent: resolve the entry, remember the refusal.
				done[i] = true
				c.stats.RejectedNacks++
				*rejections++
				if *firstRejection == nil {
					*firstRejection = fmt.Errorf("seq %d: %s", v.Seq, v.Msg)
				}
			case fleetwire.NackOverloaded:
				c.stats.OverloadNacks++
				retryable = fmt.Errorf("fleetserver: seq %d: %w", v.Seq, ErrOverloaded)
			default:
				// Shutting down or future codes: retry on a fresh
				// connection.
				retryable = fmt.Errorf("fleetserver: seq %d refused: %s (code %d)", v.Seq, v.Msg, v.Code)
			}
		}
	}
	if retryable != nil {
		if !errors.Is(retryable, ErrOverloaded) {
			c.dropConn()
		}
		return retryable
	}
	return nil
}

// trySend makes one delivery attempt: connect if needed, check the
// resume point, write the frame, wait for the verdict. Any failure
// that might have left the profile merged but unconfirmed drops the
// connection, so the next attempt re-handshakes and learns the truth
// from the server's resume point or a duplicate ack.
func (c *Client) trySend(ctx context.Context, seq uint64, frame []byte) error {
	if err := c.ensureConn(ctx); err != nil {
		return err
	}
	// The handshake resume point may already cover this profile: a
	// reset between the server's merge and our ack read means the
	// re-dial, not a re-send, confirms delivery.
	if c.serverSeq >= seq {
		c.stats.ResumeSkipped++
		return nil
	}
	if err := c.wc.WriteFrame(fleetwire.FrameProfile, frame); err != nil {
		c.dropConn()
		c.stats.ConnErrors++
		return err
	}
	c.stats.Sent++
	typ, payload, err := c.wc.ReadFrame()
	if err != nil {
		c.dropConn()
		c.stats.ConnErrors++
		return err
	}
	switch typ {
	case fleetwire.FrameAck:
		ack, err := fleetwire.ParseAck(payload)
		if err != nil || ack.Seq != seq {
			c.dropConn()
			c.stats.ConnErrors++
			return fmt.Errorf("fleetserver: bad ack for seq %d: %w", seq, fleetwire.ErrProtocol)
		}
		if ack.Seq > c.serverSeq {
			c.serverSeq = ack.Seq
		}
		c.stats.Acked++
		if ack.Duplicate {
			c.stats.DuplicateAcks++
		}
		return nil
	case fleetwire.FrameNack:
		nack, err := fleetwire.ParseNack(payload)
		if err != nil || nack.Seq != seq {
			c.dropConn()
			c.stats.ConnErrors++
			return fmt.Errorf("fleetserver: bad nack for seq %d: %w", seq, fleetwire.ErrProtocol)
		}
		switch nack.Code {
		case fleetwire.NackOverloaded:
			// Retryable on the same connection after backoff.
			c.stats.OverloadNacks++
			return fmt.Errorf("fleetserver: seq %d: %w", seq, ErrOverloaded)
		case fleetwire.NackBadProfile:
			c.stats.RejectedNacks++
			return fmt.Errorf("fleetserver: seq %d: %s: %w", seq, nack.Msg, ErrRejected)
		default:
			// Shutting down (or future codes): retry via a fresh
			// connection after backoff.
			c.dropConn()
			return fmt.Errorf("fleetserver: seq %d refused: %s (code %d)", seq, nack.Msg, nack.Code)
		}
	default:
		c.dropConn()
		c.stats.ConnErrors++
		return fmt.Errorf("fleetserver: unexpected %v frame awaiting verdict: %w", typ, fleetwire.ErrProtocol)
	}
}

// ensureConn dials and handshakes if no connection is live, adopting
// the server's resume point.
func (c *Client) ensureConn(ctx context.Context) error {
	if c.wc != nil {
		return nil
	}
	conn, err := c.cfg.Dialer(ctx, c.addr)
	if err != nil {
		c.stats.ConnErrors++
		return err
	}
	wc := fleetwire.NewConn(conn, fleetwire.ConnConfig{
		MaxFrame:     c.cfg.MaxFrame,
		ReadTimeout:  c.cfg.ReadTimeout,
		WriteTimeout: c.cfg.WriteTimeout,
	})
	fail := func(err error) error {
		wc.Close()
		c.stats.ConnErrors++
		return err
	}
	if err := wc.WritePreamble(); err != nil {
		return fail(err)
	}
	if err := wc.WriteFrame(fleetwire.FrameHello,
		fleetwire.AppendHello(nil, fleetwire.Hello{Tenant: c.cfg.Tenant, Agent: c.cfg.Agent})); err != nil {
		return fail(err)
	}
	if err := wc.ReadPreamble(); err != nil {
		return fail(err)
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil {
		return fail(err)
	}
	if typ != fleetwire.FrameWelcome {
		return fail(fmt.Errorf("fleetserver: expected welcome, got %v: %w", typ, fleetwire.ErrProtocol))
	}
	welcome, err := fleetwire.ParseWelcome(payload)
	if err != nil {
		return fail(err)
	}
	// Adopt the server's ledger: it knows what merged even if our
	// acks were lost, and it protects a restarted client that reused
	// its agent name from double-assigning sequence numbers.
	if welcome.LastSeq > c.serverSeq {
		c.serverSeq = welcome.LastSeq
	}
	if welcome.LastSeq > c.seq {
		c.seq = welcome.LastSeq
	}
	c.wc = wc
	c.stats.Dials++
	c.telDials.Inc()
	if c.stats.Dials > 1 {
		c.telRedials.Inc()
	}
	return nil
}

// dropConn closes the live connection (if any); the next attempt
// re-dials.
func (c *Client) dropConn() {
	if c.wc != nil {
		c.wc.Close()
		c.wc = nil
	}
}

// retryBudget charges one failed attempt against the budget: nil
// means backoff taken, retry; non-nil is the terminal error to
// return. Called with c.mu held.
func (c *Client) retryBudget(ctx context.Context, attempt int, cause error) error {
	if c.cfg.MaxAttempts > 0 && attempt >= c.cfg.MaxAttempts {
		return fmt.Errorf("fleetserver: giving up after %d attempts: %w", attempt, cause)
	}
	d := c.cfg.BackoffBase << (attempt - 1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	// Jitter to [d/2, d]: desynchronizes a fleet without collapsing
	// the backoff floor.
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.stats.Retries++
	c.telRetries.Inc()
	c.telBackoff.Observe(int64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleetserver: %w (last error: %v)", ctx.Err(), cause)
	}
}

// Stats snapshots the client's delivery accounting.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close drops the connection and fails future Sends with
// ErrClientClosed. In-flight retries finish their current attempt.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.dropConn()
	return nil
}
