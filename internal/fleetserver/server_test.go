package fleetserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"hbbp/internal/profstore"
)

// testProfile builds a small canonical profile whose content is a
// deterministic function of rng — distinct draws merge into distinct
// aggregates, so accounting mistakes change bytes.
func testProfile(rng *rand.Rand, unit string) *profstore.Profile {
	modules := []string{"a.out", "libm.so", "vmlinux"}
	funcs := []string{"main", "step", "solve", "inner"}
	mnemonics := []string{"add", "mov", "vaddps", "div", "call"}
	raw := &profstore.Profile{
		Workloads: []profstore.WorkloadWeight{{Name: unit, Runs: 1}},
	}
	for i, n := 0, 1+rng.Intn(8); i < n; i++ {
		raw.Blocks = append(raw.Blocks, profstore.Block{
			Unit:     unit,
			Module:   modules[rng.Intn(len(modules))],
			Function: funcs[rng.Intn(len(funcs))],
			Addr:     uint64(rng.Intn(32)) * 16,
			Ring:     profstore.RingUser,
			Len:      uint32(1 + rng.Intn(12)),
			Count:    uint64(1 + rng.Intn(100000)),
		})
	}
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		raw.Ops = append(raw.Ops, profstore.OpMass{
			Mnemonic: mnemonics[rng.Intn(len(mnemonics))],
			Ring:     profstore.RingUser,
			Mass:     uint64(1 + rng.Intn(1000000)),
		})
	}
	return profstore.Canonical(raw)
}

// saveBytes serializes a profile; tests compare profiles by their
// stored bytes so "bit-identical" means exactly that.
func saveBytes(t testing.TB, p *profstore.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profstore.Save(&buf, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// startServer runs a server on a loopback listener and tears it down
// with the test.
func startServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := Serve(ln, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// tenantStats fetches one tenant's ledger from a stats snapshot.
func tenantStats(t *testing.T, s *Server, name string) TenantStats {
	t.Helper()
	for _, ts := range s.Stats().Tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	t.Fatalf("tenant %q not in stats", name)
	return TenantStats{}
}

// TestSingleAgentRoundTrip pins the happy path: profiles sent by one
// agent land in the tenant/epoch aggregator, and the snapshot is
// bit-identical to an offline merge of what was acked.
func TestSingleAgentRoundTrip(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(1))
	var sent []*profstore.Profile
	for i := 0; i < 5; i++ {
		p := testProfile(rng, "gcc")
		if err := c.Send(ctx, 7, p); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		sent = append(sent, p)
	}

	got := s.Snapshot("acme", 7)
	if got == nil {
		t.Fatal("no snapshot for acme/7")
	}
	want := profstore.Merge(sent...)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, want)) {
		t.Fatal("snapshot diverges from offline merge of the acked profiles")
	}

	st := c.Stats()
	if st.Acked != 5 || st.Sent != 5 || st.Dials != 1 {
		t.Fatalf("client stats = %+v, want 5 acked over 1 dial", st)
	}
	ts := tenantStats(t, s, "acme")
	if ts.Merged != 5 || ts.Duplicates != 0 || ts.Shed != 0 || ts.Rejected != 0 || ts.Corrupt != 0 {
		t.Fatalf("tenant ledger = %+v, want 5 clean merges", ts)
	}
	if len(ts.Epochs) != 1 || ts.Epochs[0] != 7 {
		t.Fatalf("epochs = %v, want [7]", ts.Epochs)
	}
}

// TestTenantAndEpochIsolation pins that the (tenant, epoch) key really
// partitions state: same agent names in different tenants, same
// profiles in different epochs, nothing bleeds.
func TestTenantAndEpochIsolation(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))
	pA, pB := testProfile(rng, "gcc"), testProfile(rng, "povray")

	for _, tc := range []struct {
		tenant string
		epoch  uint64
		p      *profstore.Profile
	}{{"acme", 1, pA}, {"umbrella", 1, pB}, {"acme", 2, pB}} {
		c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: tc.tenant, Agent: "host-1"})
		if err != nil {
			t.Fatalf("dial %s: %v", tc.tenant, err)
		}
		if err := c.Send(ctx, tc.epoch, tc.p); err != nil {
			t.Fatalf("send %s/%d: %v", tc.tenant, tc.epoch, err)
		}
		c.Close()
	}

	if got := s.Snapshot("acme", 1); !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(pA))) {
		t.Error("acme/1 diverged")
	}
	if got := s.Snapshot("umbrella", 1); !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(pB))) {
		t.Error("umbrella/1 diverged")
	}
	if got := s.Snapshot("acme", 2); !bytes.Equal(saveBytes(t, got), saveBytes(t, profstore.Merge(pB))) {
		t.Error("acme/2 diverged")
	}
	if s.Snapshot("acme", 3) != nil || s.Snapshot("nobody", 1) != nil {
		t.Error("unknown tenant/epoch should snapshot nil")
	}
}

// TestConcurrentAgents drives many agents in parallel into one
// tenant/epoch and asserts the aggregate equals the offline merge —
// the wire tier must not weaken the aggregator's any-parallelism
// equivalence. Run with -race.
func TestConcurrentAgents(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	const agents, each = 16, 8

	profiles := make([][]*profstore.Profile, agents)
	for a := range profiles {
		rng := rand.New(rand.NewSource(int64(100 + a)))
		for i := 0; i < each; i++ {
			profiles[a] = append(profiles[a], testProfile(rng, "gcc"))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			c, err := Dial(ctx, s.Addr().String(), ClientConfig{
				Tenant: "acme", Agent: fmt.Sprintf("host-%d", a)})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i, p := range profiles[a] {
				if err := c.Send(ctx, 1, p); err != nil {
					errs <- fmt.Errorf("agent %d send %d: %w", a, i, err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var all []*profstore.Profile
	for _, ps := range profiles {
		all = append(all, ps...)
	}
	if !bytes.Equal(saveBytes(t, s.Snapshot("acme", 1)), saveBytes(t, profstore.Merge(all...))) {
		t.Fatal("concurrent wire ingest diverges from offline merge")
	}
	if ts := tenantStats(t, s, "acme"); ts.Merged != agents*each {
		t.Fatalf("merged = %d, want %d", ts.Merged, agents*each)
	}
}

// TestBadProfileRejected pins the rejection path: an intact frame
// carrying unloadable payload bytes nacks permanently, is counted, and
// does not poison the connection or the agent's sequence ledger.
func TestBadProfileRejected(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.SendBytes(ctx, 1, []byte("not a stored profile")); !errors.Is(err, ErrRejected) {
		t.Fatalf("bad payload error = %v, want ErrRejected", err)
	}
	// The same connection still serves good profiles afterwards.
	rng := rand.New(rand.NewSource(3))
	p := testProfile(rng, "gcc")
	if err := c.Send(ctx, 1, p); err != nil {
		t.Fatalf("send after rejection: %v", err)
	}
	ts := tenantStats(t, s, "acme")
	if ts.Rejected != 1 || ts.Merged != 1 {
		t.Fatalf("ledger = %+v, want 1 rejected + 1 merged", ts)
	}
	if st := c.Stats(); st.RejectedNacks != 1 || st.Dials != 1 {
		t.Fatalf("client stats = %+v, want 1 rejection on the original dial", st)
	}
	if !bytes.Equal(saveBytes(t, s.Snapshot("acme", 1)), saveBytes(t, profstore.Merge(p))) {
		t.Fatal("rejection leaked into merged state")
	}
}

// TestWelcomeResumeAcrossClients pins the handshake resume point: a
// fresh client reusing an agent identity adopts the server's sequence
// ledger instead of colliding with it.
func TestWelcomeResumeAcrossClients(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))

	c1, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	var sent []*profstore.Profile
	for i := 0; i < 3; i++ {
		p := testProfile(rng, "gcc")
		if err := c1.Send(ctx, 1, p); err != nil {
			t.Fatalf("c1 send %d: %v", i, err)
		}
		sent = append(sent, p)
	}
	c1.Close()

	// Same agent identity, fresh client: its numbering must continue
	// past the server's ledger, not restart at 1.
	c2, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: "acme", Agent: "host-1"})
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	for i := 0; i < 2; i++ {
		p := testProfile(rng, "gcc")
		if err := c2.Send(ctx, 1, p); err != nil {
			t.Fatalf("c2 send %d: %v", i, err)
		}
		sent = append(sent, p)
	}

	ts := tenantStats(t, s, "acme")
	if ts.Merged != 5 || ts.Duplicates != 0 {
		t.Fatalf("ledger = %+v, want 5 merges and no duplicates", ts)
	}
	if !bytes.Equal(saveBytes(t, s.Snapshot("acme", 1)), saveBytes(t, profstore.Merge(sent...))) {
		t.Fatal("resumed client diverged from offline merge")
	}
}

// TestClientConfigValidation pins that identity is required up front.
func TestClientConfigValidation(t *testing.T) {
	_, err := Dial(context.Background(), "127.0.0.1:1", ClientConfig{Tenant: "", Agent: "a"})
	if err == nil {
		t.Fatal("empty tenant accepted")
	}
	_, err = Dial(context.Background(), "127.0.0.1:1", ClientConfig{Tenant: "t", Agent: ""})
	if err == nil {
		t.Fatal("empty agent accepted")
	}
}

// TestDialRetriesUntilCancel pins that Dial keeps retrying an
// unreachable server under its backoff policy until the context says
// stop, and surfaces both the cancellation and the last cause.
func TestDialRetriesUntilCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	// A listener that never accepts a handshake: reserve a port, close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = Dial(ctx, addr, ClientConfig{Tenant: "t", Agent: "a",
		BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial error = %v, want deadline exceeded", err)
	}
}

// TestDialGivesUpAfterMaxAttempts pins the bounded retry budget.
func TestDialGivesUpAfterMaxAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = Dial(context.Background(), addr, ClientConfig{Tenant: "t", Agent: "a",
		MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

// TestSendAfterClose pins the closed-client sentinel.
func TestSendAfterClose(t *testing.T) {
	s := startServer(t, Config{})
	c, err := Dial(context.Background(), s.Addr().String(), ClientConfig{Tenant: "t", Agent: "a"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	rng := rand.New(rand.NewSource(5))
	if err := c.Send(context.Background(), 1, testProfile(rng, "gcc")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("send after close = %v, want ErrClientClosed", err)
	}
}

// TestStatsSorted pins the deterministic ordering of the stats view.
func TestStatsSorted(t *testing.T) {
	s := startServer(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(6))
	for _, tenant := range []string{"zeta", "alpha", "mid"} {
		c, err := Dial(ctx, s.Addr().String(), ClientConfig{Tenant: tenant, Agent: "a"})
		if err != nil {
			t.Fatal(err)
		}
		for _, epoch := range []uint64{9, 2, 5} {
			if err := c.Send(ctx, epoch, testProfile(rng, "gcc")); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}
	st := s.Stats()
	if len(st.Tenants) != 3 {
		t.Fatalf("tenants = %d, want 3", len(st.Tenants))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if st.Tenants[i].Tenant != want {
			t.Fatalf("tenant order = %v", st.Tenants)
		}
		if got := st.Tenants[i].Epochs; len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
			t.Fatalf("epoch order = %v, want [2 5 9]", got)
		}
	}
}
