// Package fleetserver is the fault-tolerant fleet ingest tier: a
// server that accepts stored profiles over the fleetwire protocol and
// merges them into per-tenant/epoch aggregators, and a retrying client
// agents use to deliver profiles across flaky networks.
//
// The design contract mirrors the collector's LOST records
// (internal/collector/sink.go): the tier degrades by shedding load
// with exact drop accounting, never by corrupting or silently losing
// merged state. Concretely:
//
//   - A profile is merged if and only if its sender was told so (an
//     Ack). Refusals are explicit Nacks, each counted in the owning
//     tenant's drop counters — the ingest-tier analogue of
//     LostEBS/LostLBR.
//   - Overload is bounded and explicit. Ingest flows through a bounded
//     queue; a full queue exerts backpressure up to a deadline, then
//     the profile is shed with NackOverloaded and counted. Memory
//     stays bounded no matter how many agents push.
//   - Duplicates merge exactly once. Each agent numbers its profiles;
//     the server remembers the last merged sequence per agent and
//     answers re-sends (acks lost to resets) with a duplicate Ack
//     instead of a second merge, so a retrying client achieves
//     exactly-once aggregation.
//   - Shutdown drains. Profiles already handed to the ingest queue are
//     merged and acked before their connections close; everything
//     after the drain point is refused with NackShuttingDown.
//
// The chaos suite (chaos_test.go) drives all of this through injected
// partial writes, resets, stalls and corruption, and asserts the
// keystone invariant: the post-chaos snapshot is bit-identical to an
// offline profstore.Merge of exactly the acked profiles.
package fleetserver

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"hbbp/internal/fleetwire"
	"hbbp/internal/profstore"
	"hbbp/internal/telemetry"
	"hbbp/internal/tsstore"
)

// Typed sentinels for ingest outcomes, following the façade's
// errors.Is classification pattern.
var (
	// ErrOverloaded reports a profile the server shed under load (a
	// NackOverloaded that exhausted the client's retry budget). The
	// shed is counted in the tenant's drop counters server-side.
	ErrOverloaded = errors.New("fleetserver: server overloaded, profile shed")
	// ErrRejected reports a profile the server refused as unloadable
	// (NackBadProfile). Not retryable: the same bytes cannot succeed.
	ErrRejected = errors.New("fleetserver: profile rejected by server")
	// ErrClientClosed reports a Send on a closed client.
	ErrClientClosed = errors.New("fleetserver: client is closed")
)

// Config parameterizes a Server. The zero value is usable: every
// field has a production-shaped default.
type Config struct {
	// Queue bounds the ingest queue (profiles admitted but not yet
	// merged); defaults to 64. This, times the frame size limit, is
	// the ingest tier's memory bound.
	Queue int
	// Workers is the number of ingest goroutines decoding and merging
	// profiles; defaults to GOMAXPROCS.
	Workers int
	// MaxFrame bounds a wire frame's payload;
	// defaults to fleetwire.DefaultMaxFrame.
	MaxFrame int
	// EnqueueWait is how long a connection exerts backpressure on a
	// full queue before shedding the profile with NackOverloaded;
	// defaults to 50ms. Zero keeps the default; negative sheds
	// immediately.
	EnqueueWait time.Duration
	// ReadTimeout bounds each frame read — the slow-loris defense and
	// the idle-connection reaper; defaults to 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write; defaults to 10s.
	WriteTimeout time.Duration
	// Logf, when set, receives one line per notable server event
	// (accept errors, handshake failures). Nil silences them.
	Logf func(format string, args ...any)

	// Telemetry is the metrics registry the server instruments itself
	// into: per-tenant ingest ledgers, frame latency histograms, queue
	// and connection gauges, and the slow-op log. Nil gets a fresh
	// private registry, so side-by-side servers (tests, embedders)
	// never share series; a daemon that serves /metrics passes the
	// process-wide registry instead.
	Telemetry *telemetry.Registry

	// Retention, when non-empty, turns on epoch rolling: each tenant's
	// completed epochs (see EpochLag) fold out of their live
	// aggregators into a tsstore.Series downsampled by this ladder, so
	// a long-lived daemon's memory is bounded by the ladder's window
	// count instead of growing with every epoch ever seen. Empty (the
	// zero value) keeps the historical behavior: every epoch's
	// aggregator lives until shutdown.
	Retention tsstore.Retention
	// EpochLag is how many epochs behind a tenant's newest epoch an
	// epoch must be before it is considered complete and rolled into
	// the series; defaults to 1 (the newest epoch is always live,
	// everything older rolls). Only meaningful with Retention set.
	EpochLag uint64

	// testIngestDelay slows every merge — the chaos suite's lever for
	// forcing deterministic overload without a real slow disk.
	testIngestDelay time.Duration
}

// withDefaults resolves the zero value to production defaults.
func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = fleetwire.DefaultMaxFrame
	}
	if c.EnqueueWait == 0 {
		c.EnqueueWait = 50 * time.Millisecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.EpochLag == 0 {
		c.EpochLag = 1
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	return c
}

// rolling reports whether epoch rolling is configured.
func (c Config) rolling() bool { return len(c.Retention.Levels) > 0 }

// tenant is one tenant's aggregation state and drop accounting.
type tenant struct {
	name string

	mu     sync.Mutex
	epochs map[uint64]*epochEntry
	agents map[string]*agentState
	// series holds completed epochs rolled out of their aggregators,
	// downsampled by the configured retention; nil when rolling is off.
	// maxEpoch is the highest epoch this tenant has ever merged into —
	// the clock the roll horizon is measured against.
	series   *tsstore.Series
	maxEpoch uint64

	// The ledger counters live in the server's telemetry registry
	// (handles resolved once in tenantFor), so Stats() and /metrics
	// read the same storage — one source of truth for the accounting
	// the chaos suite audits.
	merged     *telemetry.Counter // profiles merged (first time)
	duplicates *telemetry.Counter // re-sends answered without a second merge
	shed       *telemetry.Counter // profiles nacked NackOverloaded
	rejected   *telemetry.Counter // profiles nacked NackBadProfile
	corrupt    *telemetry.Counter // frames lost to CRC/truncation/protocol errors
	batches    *telemetry.Counter // batch frames answered with per-entry verdicts
}

// agentState is the per-agent exactly-once ledger: the highest
// sequence number durably merged. Guarded by its own mutex so the
// dedup check and the merge commit are one atomic step per agent
// while distinct agents merge in parallel.
type agentState struct {
	mu      sync.Mutex
	lastSeq uint64
}

// epochEntry is one live epoch's aggregator plus the number of merges
// currently in flight against it. The count is what makes epoch
// rolling safe alongside parallel ingest: a worker ingests without
// holding the tenant lock, so roll must not snapshot-and-delete an
// epoch a worker is still merging into — it skips entries with
// inflight > 0, and the releasing worker triggers its own roll.
type epochEntry struct {
	agg      *profstore.Aggregator
	inflight int
}

// acquireEpoch returns (creating if needed) the tenant's entry for one
// epoch with an in-flight merge registered; pair with releaseEpoch.
func (t *tenant) acquireEpoch(epoch uint64) *epochEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	ent := t.epochs[epoch]
	if ent == nil {
		ent = &epochEntry{agg: profstore.NewAggregator()}
		t.epochs[epoch] = ent
	}
	ent.inflight++
	return ent
}

// releaseEpoch retires one in-flight merge.
func (t *tenant) releaseEpoch(ent *epochEntry) {
	t.mu.Lock()
	ent.inflight--
	t.mu.Unlock()
}

// agent returns (creating if needed) the agent's dedup ledger.
func (t *tenant) agent(name string) *agentState {
	t.mu.Lock()
	defer t.mu.Unlock()
	ag := t.agents[name]
	if ag == nil {
		ag = &agentState{}
		t.agents[name] = ag
	}
	return ag
}

// job is one admitted unit of ingest on its way to a merge: a single
// profile (entries nil) or a whole batch. A batch is deliberately ONE
// job, not one per entry: the agent's watermark demands the entries
// apply in sequence order as an atomic run under the agent lock, and a
// single queue slot keeps the backpressure accounting whole-batch.
type job struct {
	t     *tenant
	agent *agentState
	seq   uint64
	epoch uint64
	body  []byte
	// entries, when non-nil, makes this a batch job; seq/epoch/body are
	// unused and the reply carries per-entry verdicts.
	entries []fleetwire.BatchEntry
	reply   chan jobReply
}

// jobReply is a worker's verdict on one job.
type jobReply struct {
	status ingestStatus
	msg    string
	// verdicts answers a batch job, one per entry in entry order.
	verdicts []fleetwire.BatchVerdict
}

type ingestStatus uint8

const (
	ingestMerged ingestStatus = iota
	ingestDuplicate
	ingestRejected
)

// Server ingests profiles over fleetwire connections. Construct with
// [Serve]; the zero value is not usable.
type Server struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	tenants map[string]*tenant
	conns   map[*fleetwire.Conn]struct{}

	queue    chan *job
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	closing  chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// Telemetry handles, resolved once in Serve so the per-frame path
	// pays only atomic updates.
	accepted        *telemetry.Counter
	handshakeFailed *telemetry.Counter
	profileLat      *telemetry.Histogram // FrameProfile read-to-reply
	batchLat        *telemetry.Histogram // FrameProfileBatch read-to-reply
	batchEntries    *telemetry.Histogram // entries per batch frame
	slow            *telemetry.SlowLog
}

// Serve starts ingesting on ln and returns immediately; the server
// owns the listener and closes it on shutdown.
func Serve(ln net.Listener, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		tenants: make(map[string]*tenant),
		conns:   make(map[*fleetwire.Conn]struct{}),
		queue:   make(chan *job, cfg.Queue),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	tel := cfg.Telemetry
	s.accepted = tel.Counter("hbbp_fleetserver_connections_total",
		"Connections admitted since start.")
	s.handshakeFailed = tel.Counter("hbbp_fleetserver_handshake_failures_total",
		"Connections that never completed a valid hello.")
	s.profileLat = tel.Histogram("hbbp_fleetserver_ingest_seconds",
		"Frame read-to-reply latency by frame type.",
		telemetry.NanosToSeconds, telemetry.DurationBuckets(), "frame", "profile")
	s.batchLat = tel.Histogram("hbbp_fleetserver_ingest_seconds",
		"Frame read-to-reply latency by frame type.",
		telemetry.NanosToSeconds, telemetry.DurationBuckets(), "frame", "batch")
	s.batchEntries = tel.Histogram("hbbp_fleetserver_batch_entries",
		"Entries per batch frame.", 1, telemetry.CountBuckets())
	s.slow = tel.Slow()
	tel.GaugeFunc("hbbp_fleetserver_queue_depth",
		"Ingest queue occupancy.", func() float64 { return float64(len(s.queue)) })
	tel.GaugeFunc("hbbp_fleetserver_queue_capacity",
		"Ingest queue bound.", func() float64 { return float64(cap(s.queue)) })
	tel.GaugeFunc("hbbp_fleetserver_active_connections",
		"Currently live connections.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// isClosing reports whether shutdown has begun.
func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

// tenantFor returns (creating if needed) one tenant's state.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil {
		tel := s.cfg.Telemetry
		outcome := func(o string) *telemetry.Counter {
			return tel.Counter("hbbp_fleetserver_profiles_total",
				"Profiles by ingest outcome.", "tenant", name, "outcome", o)
		}
		t = &tenant{
			name:       name,
			epochs:     make(map[uint64]*epochEntry),
			agents:     make(map[string]*agentState),
			merged:     outcome("merged"),
			duplicates: outcome("duplicate"),
			shed:       outcome("shed"),
			rejected:   outcome("rejected"),
			corrupt: tel.Counter("hbbp_fleetserver_corrupt_frames_total",
				"Frames lost to CRC, truncation or protocol errors.", "tenant", name),
			batches: tel.Counter("hbbp_fleetserver_batches_total",
				"Batch frames answered with per-entry verdicts.", "tenant", name),
		}
		s.tenants[name] = t
	}
	return t
}

// trackConn registers or unregisters a live connection.
func (s *Server) trackConn(c *fleetwire.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if !s.isClosing() {
				s.logf("fleetserver: accept: %v", err)
			}
			return
		}
		s.accepted.Add(1)
		s.connWG.Add(1)
		go s.handle(c)
	}
}

// handle speaks the protocol on one connection. Every exit path
// closes the conn; every data-loss path increments a counter first —
// nothing is dropped silently.
func (s *Server) handle(conn net.Conn) {
	defer s.connWG.Done()
	wc := fleetwire.NewConn(conn, fleetwire.ConnConfig{
		MaxFrame:     s.cfg.MaxFrame,
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
	})
	s.trackConn(wc, true)
	defer s.trackConn(wc, false)
	defer wc.Close()

	tn, ag, ok := s.handshake(wc)
	if !ok {
		s.handshakeFailed.Add(1)
		return
	}

	// Per-connection scratch: the protocol is strictly one in-flight
	// exchange per connection, so one job, one reply channel and one
	// ack buffer serve the connection's whole life — the reply is
	// always awaited before the next frame, so the worker is done with
	// the job before it is refilled.
	reply := make(chan jobReply, 1)
	connJob := &job{}
	var ackBuf []byte

	for {
		if s.isClosing() {
			return
		}
		typ, payload, err := wc.ReadFrame()
		if err != nil {
			// Clean closes, idle/stall timeouts and abrupt disconnects
			// are connection lifecycle; data-shaped failures are the
			// tenant's corruption ledger.
			if err != io.EOF && !fleetwire.IsTimeout(err) && isDataError(err) {
				tn.corrupt.Add(1)
			}
			return
		}
		// The latency clock starts after the frame is in hand — it
		// measures the server's parse/queue/merge/reply work, not how
		// long the agent took to send the next frame.
		t0 := time.Now()
		if typ == fleetwire.FrameProfileBatch {
			ok := s.handleBatch(wc, tn, ag, payload, connJob, reply)
			s.observeFrame(s.batchLat, "batch", tn, t0)
			if !ok {
				return
			}
			continue
		}
		if typ != fleetwire.FrameProfile {
			tn.corrupt.Add(1)
			return
		}
		hdr, body, err := fleetwire.ParseProfile(payload)
		if err != nil {
			tn.corrupt.Add(1)
			return
		}

		// Fast duplicate path: a re-send of an already-merged profile
		// (its ack was lost) is answered without a queue trip.
		ag.mu.Lock()
		dup := hdr.Seq <= ag.lastSeq
		ag.mu.Unlock()
		if dup {
			tn.duplicates.Add(1)
			ackBuf = fleetwire.AppendAck(ackBuf[:0], fleetwire.Ack{Seq: hdr.Seq, Duplicate: true})
			if err := wc.WriteFrame(fleetwire.FrameAck, ackBuf); err != nil {
				return
			}
			s.observeFrame(s.profileLat, "profile", tn, t0)
			continue
		}

		*connJob = job{t: tn, agent: ag, seq: hdr.Seq, epoch: hdr.Epoch, body: body, reply: reply}
		if !s.enqueue(connJob) {
			if s.isClosing() {
				// Refused because the server is draining: explicit,
				// retryable elsewhere, never merged.
				wc.WriteFrame(fleetwire.FrameNack,
					fleetwire.AppendNack(nil, fleetwire.Nack{Seq: hdr.Seq,
						Code: fleetwire.NackShuttingDown, Msg: "server draining"}))
				return
			}
			// Shed: the bounded queue stayed full past the
			// backpressure deadline. The drop is counted before the
			// nack is attempted, so the ledger can only over-report
			// refusals, never under-report them.
			tn.shed.Add(1)
			if err := wc.WriteFrame(fleetwire.FrameNack,
				fleetwire.AppendNack(nil, fleetwire.Nack{Seq: hdr.Seq,
					Code: fleetwire.NackOverloaded, Msg: "ingest queue full"})); err != nil {
				return
			}
			s.observeFrame(s.profileLat, "profile", tn, t0)
			continue
		}

		// The worker always replies — shutdown drains the queue before
		// the workers exit — so a merged profile is always answered.
		r := <-reply
		switch r.status {
		case ingestMerged, ingestDuplicate:
			ackBuf = fleetwire.AppendAck(ackBuf[:0], fleetwire.Ack{Seq: hdr.Seq,
				Duplicate: r.status == ingestDuplicate})
			if err := wc.WriteFrame(fleetwire.FrameAck, ackBuf); err != nil {
				return
			}
		case ingestRejected:
			if err := wc.WriteFrame(fleetwire.FrameNack,
				fleetwire.AppendNack(nil, fleetwire.Nack{Seq: hdr.Seq,
					Code: fleetwire.NackBadProfile, Msg: r.msg})); err != nil {
				return
			}
		}
		s.observeFrame(s.profileLat, "profile", tn, t0)
	}
}

// observeFrame records one answered frame's latency, feeding the slow
// log when it crossed the threshold. The threshold pre-check keeps the
// fast path free of the detail closure's allocation.
func (s *Server) observeFrame(h *telemetry.Histogram, frame string, tn *tenant, t0 time.Time) {
	d := time.Since(t0)
	h.Observe(int64(d))
	if d >= s.slow.Threshold() {
		s.slow.Observe("ingest/"+frame, d, func() string { return "tenant=" + tn.name })
	}
}

// handleBatch answers one batch frame: parse, admit as ONE queue job
// (whole-batch backpressure), reply with per-entry verdicts. Returns
// false when the connection should close. The entries alias the
// connection's read buffer; that is safe because the reply is awaited
// — and the bytes fully consumed — before the next ReadFrame.
func (s *Server) handleBatch(wc *fleetwire.Conn, tn *tenant, ag *agentState, payload []byte, j *job, reply chan jobReply) bool {
	entries, err := fleetwire.ParseProfileBatch(payload)
	if err != nil {
		tn.corrupt.Add(1)
		return false
	}
	tn.batches.Add(1)
	s.batchEntries.Observe(int64(len(entries)))
	*j = job{t: tn, agent: ag, entries: entries, reply: reply}
	if !s.enqueue(j) {
		code, msg := fleetwire.NackOverloaded, "ingest queue full"
		if s.isClosing() {
			code, msg = fleetwire.NackShuttingDown, "server draining"
		} else {
			// Whole-batch shed: the queue refused the unit, so every
			// entry is counted dropped before the nack is attempted.
			tn.shed.Add(uint64(len(entries)))
		}
		verdicts := make([]fleetwire.BatchVerdict, len(entries))
		for i := range entries {
			verdicts[i] = fleetwire.BatchVerdict{Seq: entries[i].Seq,
				Status: fleetwire.BatchNacked, Code: code, Msg: msg}
		}
		if err := wc.WriteFrame(fleetwire.FrameAckBatch,
			fleetwire.AppendAckBatch(nil, verdicts)); err != nil {
			return false
		}
		return !s.isClosing()
	}
	r := <-reply
	return wc.WriteFrame(fleetwire.FrameAckBatch,
		fleetwire.AppendAckBatch(nil, r.verdicts)) == nil
}

// handshake validates the preamble and hello and answers with the
// agent's resume point.
func (s *Server) handshake(wc *fleetwire.Conn) (*tenant, *agentState, bool) {
	if err := wc.ReadPreamble(); err != nil {
		return nil, nil, false
	}
	typ, payload, err := wc.ReadFrame()
	if err != nil || typ != fleetwire.FrameHello {
		return nil, nil, false
	}
	hello, err := fleetwire.ParseHello(payload)
	if err != nil {
		return nil, nil, false
	}
	tn := s.tenantFor(hello.Tenant)
	ag := tn.agent(hello.Agent)
	ag.mu.Lock()
	last := ag.lastSeq
	ag.mu.Unlock()
	if err := wc.WritePreamble(); err != nil {
		return nil, nil, false
	}
	if err := wc.WriteFrame(fleetwire.FrameWelcome,
		fleetwire.AppendWelcome(nil, fleetwire.Welcome{LastSeq: last})); err != nil {
		return nil, nil, false
	}
	return tn, ag, true
}

// isDataError reports whether a read failure is data-shaped (frame
// corruption, truncation, size lies, protocol violations) as opposed
// to a transport disconnect.
func isDataError(err error) bool {
	return errors.Is(err, fleetwire.ErrFrameCorrupt) ||
		errors.Is(err, fleetwire.ErrFrameTruncated) ||
		errors.Is(err, fleetwire.ErrFrameTooLarge) ||
		errors.Is(err, fleetwire.ErrProtocol) ||
		errors.Is(err, fleetwire.ErrFrameMagic) ||
		errors.Is(err, fleetwire.ErrUnsupportedVersion)
}

// enqueue admits a job to the bounded queue: immediately if there is
// room, otherwise holding the connection back (backpressure) up to
// EnqueueWait. False means the profile was not admitted — shed, or
// the server is draining.
func (s *Server) enqueue(j *job) bool {
	select {
	case s.queue <- j:
		return true
	default:
	}
	if s.cfg.EnqueueWait < 0 {
		return false
	}
	t := time.NewTimer(s.cfg.EnqueueWait)
	defer t.Stop()
	select {
	case s.queue <- j:
		return true
	case <-t.C:
		return false
	case <-s.closing:
		return false
	}
}

// worker merges admitted profiles. The dedup check, the merge and the
// ledger commit are one atomic step under the agent's lock, so a
// profile can never merge twice no matter how it was re-sent. Profiles
// decode straight into interned form (profstore.LoadInterned) and feed
// the aggregator as integer rows — the wire path never materializes a
// string-keyed profile.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		if j.entries != nil {
			j.reply <- s.processBatch(j)
			continue
		}
		if s.cfg.testIngestDelay > 0 {
			time.Sleep(s.cfg.testIngestDelay)
		}
		j.agent.mu.Lock()
		var r jobReply
		switch {
		case j.seq <= j.agent.lastSeq:
			r = jobReply{status: ingestDuplicate}
		default:
			in, err := profstore.LoadInterned(j.body)
			if err != nil {
				r = jobReply{status: ingestRejected, msg: err.Error()}
			} else {
				ent := j.t.acquireEpoch(j.epoch)
				ent.agg.IngestInterned(in)
				j.t.releaseEpoch(ent)
				j.agent.lastSeq = j.seq
				r = jobReply{status: ingestMerged}
			}
		}
		j.agent.mu.Unlock()
		switch r.status {
		case ingestMerged:
			j.t.merged.Add(1)
			s.roll(j.t, j.epoch)
		case ingestDuplicate:
			j.t.duplicates.Add(1)
		case ingestRejected:
			j.t.rejected.Add(1)
		}
		j.reply <- r
	}
}

// processBatch applies one batch job: every entry in sequence order
// under the agent lock, each with the same dedup/merge/reject
// semantics a single-profile job has. A bad entry is refused and
// skipped without advancing the watermark for it — later entries still
// merge (their higher seqs then advance the ledger past the refused
// one, which is sound: BadProfile is permanent, re-sending the same
// bytes could never succeed).
func (s *Server) processBatch(j *job) jobReply {
	verdicts := make([]fleetwire.BatchVerdict, 0, len(j.entries))
	var merged, dups, rejected uint64
	var maxMergedEpoch uint64
	j.agent.mu.Lock()
	for i := range j.entries {
		e := &j.entries[i]
		if s.cfg.testIngestDelay > 0 {
			time.Sleep(s.cfg.testIngestDelay)
		}
		if e.Seq <= j.agent.lastSeq {
			dups++
			verdicts = append(verdicts, fleetwire.BatchVerdict{Seq: e.Seq, Status: fleetwire.BatchDuplicate})
			continue
		}
		in, err := profstore.LoadInterned(e.Profile)
		if err != nil {
			rejected++
			verdicts = append(verdicts, fleetwire.BatchVerdict{Seq: e.Seq,
				Status: fleetwire.BatchNacked, Code: fleetwire.NackBadProfile, Msg: err.Error()})
			continue
		}
		ent := j.t.acquireEpoch(e.Epoch)
		ent.agg.IngestInterned(in)
		j.t.releaseEpoch(ent)
		j.agent.lastSeq = e.Seq
		merged++
		if e.Epoch > maxMergedEpoch {
			maxMergedEpoch = e.Epoch
		}
		verdicts = append(verdicts, fleetwire.BatchVerdict{Seq: e.Seq, Status: fleetwire.BatchMerged})
	}
	j.agent.mu.Unlock()
	j.t.merged.Add(merged)
	j.t.duplicates.Add(dups)
	j.t.rejected.Add(rejected)
	if merged > 0 {
		s.roll(j.t, maxMergedEpoch)
	}
	return jobReply{verdicts: verdicts}
}

// Snapshot returns the merged profile for one tenant and epoch — a
// canonical profile bit-identical to profstore.Merge over exactly the
// profiles acked into that pair — or nil if nothing has been merged
// there. Safe during ingestion; see profstore.Aggregator.Snapshot for
// the consistency contract. With epoch rolling configured the answer
// covers only a still-live epoch: rolled epochs live in the tenant's
// series, where folding may have merged them beyond per-epoch
// recovery — query those through [Server.Window] or
// [Server.SeriesSnapshot].
func (s *Server) Snapshot(tenantName string, epoch uint64) *profstore.Profile {
	s.mu.Lock()
	tn := s.tenants[tenantName]
	s.mu.Unlock()
	if tn == nil {
		return nil
	}
	tn.mu.Lock()
	ent := tn.epochs[epoch]
	tn.mu.Unlock()
	if ent == nil {
		return nil
	}
	return ent.agg.Snapshot()
}

// TenantStats is one tenant's ingest ledger: what merged and every
// way a profile or frame was refused or lost, each refusal counted
// exactly where it happened.
type TenantStats struct {
	Tenant string
	// Merged counts profiles aggregated (first delivery).
	Merged uint64
	// Duplicates counts re-sends answered without a second merge —
	// the retry path's acks that preserve exactly-once.
	Duplicates uint64
	// Shed counts profiles refused with NackOverloaded — load the
	// bounded queue explicitly dropped. The ingest-tier analogue of
	// the collector's LostEBS/LostLBR.
	Shed uint64
	// Rejected counts profiles refused with NackBadProfile
	// (unloadable payload bytes inside an intact frame).
	Rejected uint64
	// Corrupt counts frames lost to CRC mismatches, truncation or
	// protocol violations after handshake.
	Corrupt uint64
	// Batches counts batch frames answered with per-entry verdicts
	// (their entries are counted in the per-profile fields above).
	Batches uint64
	// Epochs lists the epochs holding live (unrolled) merged state,
	// ascending.
	Epochs []uint64
	// Windows lists the retained series windows rolled out of live
	// aggregators, ascending; empty unless epoch rolling is configured.
	Windows []tsstore.Span
}

// Stats is a point-in-time view of the server's accounting.
type Stats struct {
	// Accepted counts connections admitted since start.
	Accepted uint64
	// HandshakeFailures counts connections that never completed a
	// valid hello (wrong protocol, version skew, mid-handshake drops).
	HandshakeFailures uint64
	// ActiveConns is the number of currently live connections.
	ActiveConns int
	// Tenants carries per-tenant ledgers, sorted by name.
	Tenants []TenantStats
}

// Stats snapshots the accounting counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Accepted:          s.accepted.Value(),
		HandshakeFailures: s.handshakeFailed.Value(),
		ActiveConns:       len(s.conns),
	}
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	for _, t := range tenants {
		ts := TenantStats{
			Tenant:     t.name,
			Merged:     t.merged.Value(),
			Duplicates: t.duplicates.Value(),
			Shed:       t.shed.Value(),
			Rejected:   t.rejected.Value(),
			Corrupt:    t.corrupt.Value(),
			Batches:    t.batches.Value(),
		}
		t.mu.Lock()
		for e := range t.epochs {
			ts.Epochs = append(ts.Epochs, e)
		}
		if t.series != nil {
			ts.Windows = t.series.Spans()
		}
		t.mu.Unlock()
		sort.Slice(ts.Epochs, func(i, j int) bool { return ts.Epochs[i] < ts.Epochs[j] })
		st.Tenants = append(st.Tenants, ts)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// Shutdown drains and stops the server: the listener closes, live
// connections finish the frame they are processing (admitted profiles
// are merged and acked), the ingest queue drains, and only then do
// the workers exit. Returns nil on a clean drain, or ctx.Err() if the
// context expired first (connections are then force-closed, but the
// queue still drains — merged state is never abandoned mid-merge).
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		close(s.closing)
		s.ln.Close()
		go func() {
			s.acceptWG.Wait()
			s.connWG.Wait()
			close(s.queue)
			s.workerWG.Wait()
			close(s.done)
		}()
		// Nudge loop: parked frame reads re-arm their deadlines, so
		// one poke is not enough — keep expiring them until the
		// handlers are gone.
		go func() {
			tick := time.NewTicker(25 * time.Millisecond)
			defer tick.Stop()
			for {
				s.nudgeConns()
				select {
				case <-s.done:
					return
				case <-tick.C:
				}
			}
		}()
	})
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-s.done
		return ctx.Err()
	}
}

// Close force-stops the server without waiting for connections to
// finish politely; the ingest queue still drains so no admitted
// profile is half-merged.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

// nudgeConns expires every live connection's pending read.
func (s *Server) nudgeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Unblock()
	}
}

// closeConns force-closes every live connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}
