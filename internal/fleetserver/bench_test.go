package fleetserver

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"
)

// benchWireIngest measures sustained wire ingest over TCP loopback:
// `agents` concurrent clients, each its own connection, delivering
// pre-serialized profiles as fast as the server acks them. Compare
// against BenchmarkAggregatorIngest* (internal/profstore) to read the
// wire tier's overhead on top of the in-memory merge.
func benchWireIngest(b *testing.B, agents int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := Serve(ln, Config{Queue: 256})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	rng := rand.New(rand.NewSource(1))
	payload := saveBytes(b, testProfile(rng, "gcc"))
	ctx := context.Background()

	clients := make([]*Client, agents)
	for a := range clients {
		c, err := Dial(ctx, ln.Addr().String(), ClientConfig{
			Tenant: "bench", Agent: fmt.Sprintf("agent-%d", a)})
		if err != nil {
			b.Fatal(err)
		}
		clients[a] = c
		defer c.Close()
	}

	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	errs := make(chan error, agents)
	per := b.N / agents
	extra := b.N % agents
	for a := 0; a < agents; a++ {
		n := per
		if a < extra {
			n++
		}
		go func(c *Client, n int) {
			var err error
			for i := 0; i < n && err == nil; i++ {
				err = c.SendBytes(ctx, 1, payload)
			}
			errs <- err
		}(clients[a], n)
	}
	for a := 0; a < agents; a++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

func BenchmarkWireIngest1Agent(b *testing.B)   { benchWireIngest(b, 1) }
func BenchmarkWireIngest8Agents(b *testing.B)  { benchWireIngest(b, 8) }
func BenchmarkWireIngest64Agents(b *testing.B) { benchWireIngest(b, 64) }
