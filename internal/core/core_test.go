package core

import (
	"strings"
	"testing"

	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/program"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// buildWorkload compiles one registry workload for the tests here and
// in the parity/ablation files.
func buildWorkload(t testing.TB, name string) *workloads.Workload {
	t.Helper()
	w, err := workloads.Default().Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return w
}

func TestSourceStrings(t *testing.T) {
	if SourceLBR.String() != "LBR" || SourceEBS.String() != "EBS" {
		t.Fatal("bad source names")
	}
	names := ClassNames()
	if names[SourceLBR] != "LBR" || names[SourceEBS] != "EBS" {
		t.Fatal("class names out of order")
	}
}

func TestFeaturesVector(t *testing.T) {
	b := program.NewBuilder("f")
	mod := b.Module("m", program.RingUser)
	fn := b.Function(mod, "fn")
	blk := b.Block(fn, isa.MOV, isa.DIV, isa.PUSH, isa.ADD)
	b.Return(blk)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	f := Features(blk, true, 999)
	if len(f) != len(FeatureNames()) {
		t.Fatalf("feature vector length %d != %d names", len(f), len(FeatureNames()))
	}
	if f[0] != 5 { // MOV DIV PUSH ADD RET_NEAR
		t.Errorf("block_len = %v, want 5", f[0])
	}
	if f[1] != 1 {
		t.Errorf("bias = %v, want 1", f[1])
	}
	if f[2] < 2.9 || f[2] > 3.1 {
		t.Errorf("log_exec = %v, want ~3", f[2])
	}
	if f[3] != 1 {
		t.Errorf("long_latency = %v, want 1 (DIV present)", f[3])
	}
	// MOV reads mem, PUSH writes, RET reads: 3 of 5.
	if f[4] < 0.55 || f[4] > 0.65 {
		t.Errorf("mem_frac = %v, want 0.6", f[4])
	}
}

func TestDefaultModelRule(t *testing.T) {
	m := DefaultModel()
	short := []float64{18, 0, 2, 0, 0.3}
	long := []float64{19, 0, 2, 0, 0.3}
	if m.Choose(short) != SourceLBR {
		t.Error("length 18 should choose LBR (paper: '18 instructions or less')")
	}
	if m.Choose(long) != SourceEBS {
		t.Error("length 19 should choose EBS")
	}
	if !strings.Contains(m.Describe(), "18") {
		t.Errorf("Describe() = %q", m.Describe())
	}
}

func TestHybridSelection(t *testing.T) {
	b := program.NewBuilder("h")
	mod := b.Module("m", program.RingUser)
	fn := b.Function(mod, "fn")
	shortOps := []isa.Op{isa.MOV, isa.ADD}
	longOps := make([]isa.Op, 0, 24)
	for i := 0; i < 24; i++ {
		longOps = append(longOps, isa.ADD)
	}
	shortBlk := b.Block(fn, shortOps...)
	longBlk := b.Block(fn, longOps...)
	b.Fallthrough(shortBlk, longBlk)
	b.Return(longBlk)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ebs := []float64{100, 200}
	lbr := []float64{111, 222}
	counts, choices := DefaultModel().Hybrid(p, ebs, lbr, nil)
	if choices[shortBlk.ID] != SourceLBR || counts[shortBlk.ID] != 111 {
		t.Errorf("short block: %v/%v, want LBR/111", choices[shortBlk.ID], counts[shortBlk.ID])
	}
	if choices[longBlk.ID] != SourceEBS || counts[longBlk.ID] != 200 {
		t.Errorf("long block: %v/%v, want EBS/200", choices[longBlk.ID], counts[longBlk.ID])
	}
}

// collectCorpusRuns profiles the training corpus once per test binary.
var corpusRuns []*TrainingRun

func trainingRuns(t *testing.T) []*TrainingRun {
	t.Helper()
	if corpusRuns != nil {
		return corpusRuns
	}
	for i, name := range workloads.TrainingNames() {
		w := buildWorkload(t, name).Scaled(0.5)
		run, err := CollectTrainingRun(w.Prog, w.Entry, collector.Options{
			// Training samples at the production class periods so the
			// learned rule internalises production sampling noise.
			Class: w.Class,
			Scale: w.Scale, Seed: int64(100 + i),
			Repeat: w.Repeat,
		})
		if err != nil {
			t.Fatalf("training run %s: %v", w.Name, err)
		}
		corpusRuns = append(corpusRuns, run)
	}
	return corpusRuns
}

// TestTrainLearnsLengthRule is the reproduction of Section IV.B /
// Figure 1: training on ~1,100 diverse blocks must yield a tree whose
// root splits on block length with a cutoff in the paper's
// neighbourhood, and block length must dominate feature importance.
func TestTrainLearnsLengthRule(t *testing.T) {
	runs := trainingRuns(t)
	model, err := Train(runs, TrainParams{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	tree := model.Tree
	if tree == nil || tree.Root.IsLeaf() {
		t.Fatal("no tree learned")
	}
	t.Logf("learned tree:\n%s", tree.Render())
	t.Logf("importances: %v (features %v)", tree.FeatureImportances(), FeatureNames())
	t.Logf("rule: %s", model.Describe())

	if tree.Root.Feature != 0 {
		t.Errorf("root splits on %q, want block_len", FeatureNames()[tree.Root.Feature])
	}
	if model.LenCutoff < 8 || model.LenCutoff > 32 {
		t.Errorf("learned cutoff %.1f outside the plausible band around 18", model.LenCutoff)
	}
	imp := tree.FeatureImportances()
	if imp[0] < 0.5 {
		t.Errorf("block_len importance %.2f, want > 0.5 (paper: > 0.7)", imp[0])
	}
	// Short blocks must route to LBR and long blocks to EBS.
	if got := model.Choose([]float64{3, 0, 3, 0, 0.3}); got != SourceLBR {
		t.Errorf("len-3 block routed to %v, want LBR", got)
	}
	if got := model.Choose([]float64{34, 0, 3, 0, 0.3}); got != SourceEBS {
		t.Errorf("len-34 block routed to %v, want EBS", got)
	}
}

// TestHBBPBeatsRawEstimators reproduces the headline accuracy claim on
// a held-out workload: the hybrid's weighted BBEC error must beat both
// raw estimators.
func TestHBBPBeatsRawEstimators(t *testing.T) {
	runs := trainingRuns(t)
	model, err := Train(runs, TrainParams{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	w := buildWorkload(t, "test40").Scaled(0.5)
	ref := sde.New(w.Prog)
	ref.UserOnly = false
	prof, err := Run(w.Prog, w.Entry, model, Options{
		Collector: collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: 4242, Repeat: w.Repeat,
		},
		KernelLivePatched: true,
	}, ref)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Score with the paper's metric: per-mnemonic average weighted
	// error against the instrumentation reference (Section VI.B).
	refMix := analyzer.ToMix(ref.Mnemonics())
	mixOpts := analyzer.Options{LiveText: true}
	errH := metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.BBECs, mixOpts))
	errE := metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.EBS, mixOpts))
	errL := metrics.AvgWeightedError(refMix, analyzer.Mix(w.Prog, prof.LBR, mixOpts))
	t.Logf("avg weighted errors: HBBP=%.4f EBS=%.4f LBR=%.4f", errH, errE, errL)

	if errH > errE {
		t.Errorf("HBBP (%.4f) worse than raw EBS (%.4f)", errH, errE)
	}
	// The paper itself reports one benchmark (LBM) where HBBP is
	// slightly behind raw LBR while both are small; allow that margin.
	if errH > errL*1.2 {
		t.Errorf("HBBP (%.4f) worse than raw LBR (%.4f)", errH, errL)
	}
	if errH > 0.05 {
		t.Errorf("HBBP avg weighted error %.2f%% far above the paper-scale ~1-2%% band", errH*100)
	}
}

func TestRunWithDefaultModel(t *testing.T) {
	w := buildWorkload(t, "kernel-prime").Scaled(0.3)
	prof, err := Run(w.Prog, w.Entry, nil, DefaultOptions(w.Class, 9)) // nil model -> default

	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(prof.BBECs) != w.Prog.NumBlocks() {
		t.Fatalf("BBEC vector size %d", len(prof.BBECs))
	}
	// Kernel blocks must have nonzero estimates — the coverage SDE
	// cannot provide.
	kfn := w.Prog.FuncByName("hello_k")
	var kernelCovered bool
	for _, blk := range kfn.Blocks {
		if prof.BBECs[blk.ID] > 0 {
			kernelCovered = true
		}
	}
	if !kernelCovered {
		t.Error("no kernel block received a BBEC estimate")
	}
}

func TestBuildDatasetFiltersCold(t *testing.T) {
	runs := trainingRuns(t)
	dsAll := BuildDataset(runs, TrainParams{MinExec: 1})
	dsHot := BuildDataset(runs, TrainParams{MinExec: 500})
	if len(dsHot.X) >= len(dsAll.X) {
		t.Errorf("MinExec filter did nothing: %d vs %d", len(dsHot.X), len(dsAll.X))
	}
	if len(dsHot.X) == 0 {
		t.Error("filter removed everything")
	}
	// The corpus should supply on the order of the paper's ~1,100
	// training blocks.
	if n := len(dsAll.X); n < 500 || n > 4000 {
		t.Errorf("corpus yields %d training blocks, want on the order of 1,100", n)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, TrainParams{}); err == nil {
		t.Fatal("Train on no runs succeeded")
	}
}
