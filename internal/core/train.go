package core

import (
	"fmt"

	"hbbp/internal/bbec"
	"hbbp/internal/collector"
	"hbbp/internal/cpu"
	"hbbp/internal/metrics"
	"hbbp/internal/mltree"
	"hbbp/internal/program"
)

// TrainingRun is one profiled training workload with ground truth: the
// raw estimator outputs plus exact per-block execution counts gathered
// by instrumentation during the same run.
type TrainingRun struct {
	Prog *program.Program
	// Ref holds exact per-block executions (block ID indexed).
	Ref []uint64
	// EBS and LBR are the estimator outputs for the same run.
	EBS, LBR []float64
	// Bias flags blocks with the LBR entry[0] anomaly.
	Bias []bool
}

// CollectTrainingRun executes one workload with both the PMU collection
// and an exact all-ring oracle attached, producing a labelled run.
func CollectTrainingRun(p *program.Program, entry *program.Function, opt collector.Options) (*TrainingRun, error) {
	oracle := cpu.NewCountingListener(p)
	res, err := collector.Collect(p, entry, opt, oracle)
	if err != nil {
		return nil, fmt.Errorf("core: training run %s: %w", p.Name, err)
	}
	ebsEst, _ := bbec.FromEBS(p, res.EBSIPs, res.EBSPeriod)
	lbrEst, _ := bbec.FromLBR(p, res.Stacks, res.LBRPeriod,
		bbec.LBROptions{KernelLivePatched: true})
	normalizeLBRMass(p, ebsEst, lbrEst)
	bias := bbec.DetectBias(p, res.Stacks, bbec.DefaultBiasOptions())
	return &TrainingRun{
		Prog: p,
		Ref:  oracle.Exec,
		EBS:  ebsEst,
		LBR:  lbrEst,
		Bias: bias.BlockBias,
	}, nil
}

// TrainParams configure dataset construction and tree growth.
type TrainParams struct {
	// MinExec drops blocks executed fewer than this many times: their
	// estimates are dominated by sampling noise and their labels are
	// coin flips. Zero means 300.
	MinExec uint64
	// Tree bounds the classification tree (zero values get mltree
	// defaults; the paper keeps trees small for interpretability).
	Tree mltree.Params
}

func (tp TrainParams) withDefaults() TrainParams {
	if tp.MinExec == 0 {
		tp.MinExec = 300
	}
	if tp.Tree.MaxDepth == 0 {
		tp.Tree.MaxDepth = 3
	}
	return tp
}

// BuildDataset turns training runs into an mltree dataset. Each block
// executed at least MinExec times contributes one example: features per
// Features, label = whichever estimator landed closer to ground truth,
// weight = the block's share of retired instructions (executions times
// block length), matching the paper's execution-count weighting.
func BuildDataset(runs []*TrainingRun, tp TrainParams) *mltree.Dataset {
	tp = tp.withDefaults()
	ds := &mltree.Dataset{
		FeatureNames: FeatureNames(),
		ClassNames:   ClassNames(),
	}
	for _, run := range runs {
		for id, ref := range run.Ref {
			if ref < tp.MinExec {
				continue
			}
			blk := run.Prog.BlockByID(id)
			refF := float64(ref)
			errEBS := metrics.Error(refF, run.EBS[id])
			errLBR := metrics.Error(refF, run.LBR[id])
			label := int(SourceLBR)
			if errEBS < errLBR {
				label = int(SourceEBS)
			}
			biased := run.Bias != nil && run.Bias[id]
			est := (run.EBS[id] + run.LBR[id]) / 2
			ds.X = append(ds.X, Features(blk, biased, est))
			ds.Y = append(ds.Y, label)
			ds.W = append(ds.W, refF*float64(blk.Len()))
		}
	}
	return ds
}

// Train learns an HBBP model from training runs. The returned model
// carries both the tree and, as a fallback, the root threshold when the
// root split is on block length.
func Train(runs []*TrainingRun, tp TrainParams) (*Model, error) {
	tp = tp.withDefaults()
	ds := BuildDataset(runs, tp)
	if len(ds.X) == 0 {
		return nil, fmt.Errorf("core: no training blocks survived the MinExec=%d filter", tp.MinExec)
	}
	tree, err := mltree.Train(ds, tp.Tree)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := &Model{Tree: tree, LenCutoff: DefaultLenCutoff}
	if !tree.Root.IsLeaf() && tree.Root.Feature == 0 {
		m.LenCutoff = tree.Root.Threshold
	}
	return m, nil
}
