// Package core implements HBBP — Hybrid Basic Block Profiling, the
// paper's contribution (Section IV).
//
// Given the two PMU-derived BBEC estimates (EBS and LBR) for a profiled
// run, HBBP chooses, per basic block, which estimate to trust. The
// choice is a classification-tree rule learned offline from training
// workloads whose ground truth is known from software instrumentation:
// each training block is labelled with whichever estimator came closer,
// features are simple static/dynamic block attributes (instruction
// length, bias flag, execution count, instruction-related information),
// and samples are weighted by execution count. The learned rule is
// dominated by block length with a cutoff near 18 instructions — blocks
// at or below the cutoff use LBR, longer blocks use EBS.
package core

import (
	"context"
	"fmt"
	"io"
	"math"

	"hbbp/internal/bbec"
	"hbbp/internal/collector"
	"hbbp/internal/cpu"
	"hbbp/internal/mltree"
	"hbbp/internal/program"
)

// Source identifies which estimator supplies a block's BBEC.
type Source uint8

// Data sources. The numeric values double as mltree class indices.
const (
	SourceLBR Source = iota
	SourceEBS
)

// String returns "LBR" or "EBS".
func (s Source) String() string {
	if s == SourceEBS {
		return "EBS"
	}
	return "LBR"
}

// ClassNames returns the mltree class-name vector in Source order.
func ClassNames() []string { return []string{"LBR", "EBS"} }

// FeatureNames lists the block features in vector order. They mirror
// Section IV.B: "basic block lengths, instruction-related information,
// execution counts and bias flags".
func FeatureNames() []string {
	return []string{
		"block_len",    // instruction length of the block
		"bias",         // LBR entry[0] anomaly flag (0/1)
		"log_exec",     // log10(1 + estimated executions)
		"long_latency", // block contains a long-latency instruction (0/1)
		"mem_frac",     // fraction of memory-touching instructions
	}
}

// Features computes the feature vector of one block. execEstimate is
// the analysis-time execution estimate (available without ground
// truth); biased is the block's bias flag from LBR anomaly detection.
func Features(blk *program.Block, biased bool, execEstimate float64) []float64 {
	var longLat, mem float64
	for _, op := range blk.Ops {
		info := op.Info()
		if info.IsLongLatency() {
			longLat = 1
		}
		if info.ReadsMem || info.WritesMem {
			mem++
		}
	}
	biasF := 0.0
	if biased {
		biasF = 1
	}
	if execEstimate < 0 {
		execEstimate = 0
	}
	return []float64{
		float64(blk.Len()),
		biasF,
		math.Log10(1 + execEstimate),
		longLat,
		mem / float64(max(1, blk.Len())),
	}
}

// Model is a trained HBBP chooser.
type Model struct {
	// Tree is the learned classification tree. When nil, the model
	// falls back to the published threshold rule.
	Tree *mltree.Tree
	// LenCutoff is the fallback rule's block-length cutoff: length <=
	// cutoff selects LBR. The paper's learned value is 18.
	LenCutoff float64
}

// DefaultLenCutoff is the paper's published rule: blocks with 18
// instructions or fewer use LBR data, longer blocks use EBS data.
const DefaultLenCutoff = 18

// MinEBSSamples is the minimum per-block EBS sample support below which
// the hybrid falls back to the LBR value even when the rule prefers
// EBS.
const MinEBSSamples = 24

// DefaultModel returns the shipped rule-of-thumb model (Figure 1's
// outcome) for use without local training.
func DefaultModel() *Model { return &Model{LenCutoff: DefaultLenCutoff} }

// Choose returns the data source for a feature vector.
func (m *Model) Choose(features []float64) Source {
	if m.Tree != nil {
		return Source(m.Tree.Predict(features))
	}
	if features[0] <= m.LenCutoff {
		return SourceLBR
	}
	return SourceEBS
}

// Describe summarises the model's decision rule.
func (m *Model) Describe() string {
	if m.Tree != nil {
		if rule := m.Tree.RootRule(); rule != "" {
			return "learned tree: " + rule
		}
		return "learned tree (single leaf)"
	}
	return fmt.Sprintf("threshold rule: block_len <= %.0f -> LBR else EBS", m.LenCutoff)
}

// Hybrid combines the two estimates into the HBBP BBECs and reports the
// per-block choices. ebs, lbr and biasFlags are indexed by block ID.
func (m *Model) Hybrid(p *program.Program, ebs, lbr []float64, biasFlags []bool) (counts []float64, choices []Source) {
	n := p.NumBlocks()
	counts = make([]float64, n)
	choices = make([]Source, n)
	for id := 0; id < n; id++ {
		blk := p.BlockByID(id)
		biased := biasFlags != nil && biasFlags[id]
		est := (ebs[id] + lbr[id]) / 2
		src := m.Choose(Features(blk, biased, est))
		choices[id] = src
		if src == SourceEBS {
			counts[id] = ebs[id]
		} else {
			counts[id] = lbr[id]
		}
	}
	return counts, choices
}

// Options configures an end-to-end HBBP profiling run.
type Options struct {
	// Collector configures sampling (periods, scale, seed).
	Collector collector.Options
	// KernelLivePatched re-patches static kernel text from the live
	// image before LBR analysis (Section III.C's remedy). On by
	// default through DefaultOptions.
	KernelLivePatched bool
}

// DefaultOptions returns the tool's standard configuration for a
// workload of the given runtime class.
func DefaultOptions(class collector.RuntimeClass, seed int64) Options {
	return Options{
		Collector:         collector.Options{Class: class, Seed: seed},
		KernelLivePatched: true,
	}
}

// Profile is a completed HBBP profiling run.
type Profile struct {
	Prog *program.Program
	// BBECs are the hybrid per-block execution counts (block ID
	// indexed).
	BBECs []float64
	// EBS and LBR are the raw single-source estimates.
	EBS, LBR []float64
	// Choices records the per-block data source decisions.
	Choices []Source
	// Bias is the LBR anomaly report.
	Bias bbec.BiasReport
	// Collection is the underlying raw collection result.
	Collection *collector.Result
}

// Run profiles entry under the model: one collection pass, both
// estimators, bias detection, then the per-block hybrid choice. Extra
// listeners observe the same execution (e.g. reference instrumentation
// for evaluation runs).
func Run(p *program.Program, entry *program.Function, model *Model, opts Options, extra ...cpu.Listener) (*Profile, error) {
	res, err := collector.Collect(p, entry, opts.Collector, extra...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return Analyze(p, model, res, opts.KernelLivePatched)
}

// AnalyzeReplay reconstructs a profile from a serialized collection:
// it replays the perffile stream through the same sinks a live run
// dispatches to, then analyzes the result. The file records samples,
// not configuration, so the sampling periods and scale are resolved
// from opts, which must match the options used at collection time.
// Run statistics (cycle counts, PMI totals) are not in the file either;
// the returned profile's overhead model reports a clean factor of 1.
func AnalyzeReplay(p *program.Program, model *Model, rd io.Reader, opts Options) (*Profile, error) {
	ctx := opts.Collector.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := collector.ReplayResultContext(ctx, rd, opts.Collector.Sinks...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.EBSPeriod, res.LBRPeriod = opts.Collector.Periods()
	res.Scale = opts.Collector.EffectiveScale()
	return Analyze(p, model, res, opts.KernelLivePatched)
}

// Analyze computes the HBBP profile from an existing collection. It
// consumes the sink outputs (EBS IPs, LBR stacks) in place — no
// copies, no reparse — and works identically on a live Result and on
// one reconstructed from a perffile via AnalyzeReplay.
func Analyze(p *program.Program, model *Model, res *collector.Result, kernelLivePatched bool) (*Profile, error) {
	if model == nil {
		model = DefaultModel()
	}
	ebsEst, _ := bbec.FromEBS(p, res.EBSIPs, res.EBSPeriod)
	lbrEst, _ := bbec.FromLBR(p, res.Stacks, res.LBRPeriod,
		bbec.LBROptions{KernelLivePatched: kernelLivePatched})
	normalizeLBRMass(p, ebsEst, lbrEst)
	bias := bbec.DetectBias(p, res.Stacks, bbec.DefaultBiasOptions())
	hybrid, choices := model.Hybrid(p, ebsEst, lbrEst, bias.BlockBias)
	// Low-support guard: an EBS value resting on a handful of samples
	// is noise; fall back to the LBR value there. The threshold is in
	// samples: estimate * len / period.
	for id := range hybrid {
		if choices[id] != SourceEBS {
			continue
		}
		blk := p.BlockByID(id)
		samples := ebsEst[id] * float64(blk.Len()) / float64(res.EBSPeriod)
		if samples < MinEBSSamples && lbrEst[id] > 0 {
			choices[id] = SourceLBR
			hybrid[id] = lbrEst[id]
		}
	}
	return &Profile{
		Prog:       p,
		BBECs:      hybrid,
		EBS:        ebsEst,
		LBR:        lbrEst,
		Choices:    choices,
		Bias:       bias,
		Collection: res,
	}, nil
}

// normalizeLBRMass rescales the LBR estimate so each module's total
// retired-instruction mass matches the EBS estimate's.
//
// LBR anomalies (truncated stacks, dropped streams) lose count mass;
// EBS mass is unbiased — every retirement is equally likely to be
// sampled, and skid rarely crosses module boundaries — so the EBS
// channel, collected in the same run, provides a calibration target per
// module. This is the "adjusted sample data" step: after it, LBR's
// residual errors are relative distortions within a module, which the
// per-block hybrid choice addresses.
func normalizeLBRMass(p *program.Program, ebs, lbr []float64) {
	type mass struct{ e, l float64 }
	byMod := make(map[*program.Module]*mass)
	for _, blk := range p.Blocks() {
		m := byMod[blk.Fn.Mod]
		if m == nil {
			m = &mass{}
			byMod[blk.Fn.Mod] = m
		}
		n := float64(len(blk.EffectiveOps()))
		m.e += ebs[blk.ID] * n
		m.l += lbr[blk.ID] * n
	}
	for _, blk := range p.Blocks() {
		m := byMod[blk.Fn.Mod]
		if m.e > 0 && m.l > 0 {
			lbr[blk.ID] *= m.e / m.l
		}
	}
}
