package core

import (
	"testing"

	"hbbp/internal/analyzer"
	"hbbp/internal/bbec"
	"hbbp/internal/collector"
	"hbbp/internal/metrics"
	"hbbp/internal/sde"
)

// TestAblations quantifies the contribution of HBBP's design choices on
// a held-out workload by knocking each out:
//
//   - full:       learned tree + bias flags + LBR mass renormalization
//   - no-renorm:  LBR used raw (no per-module mass calibration)
//   - no-bias:    bias flags withheld from the chooser
//   - threshold:  the shipped length<=18 rule instead of the tree
//   - pure-LBR / pure-EBS: single-source baselines
//
// The full pipeline must be at least as good as the crippled variants
// (within noise), and both single-source baselines must not beat it
// meaningfully — the ablation counterpart of the paper's Section VIII
// comparisons.
func TestAblations(t *testing.T) {
	runs := trainingRuns(t)
	model, err := Train(runs, TrainParams{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	w := buildWorkload(t, "test40").Scaled(0.5)
	ref := sde.New(w.Prog)
	ref.UserOnly = false
	res, err := collector.Collect(w.Prog, w.Entry, collector.Options{
		Class: w.Class, Scale: w.Scale, Seed: 777, Repeat: w.Repeat,
	}, ref)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	refMix := analyzer.ToMix(ref.Mnemonics())
	score := func(bbecs []float64) float64 {
		return metrics.AvgWeightedError(refMix,
			analyzer.Mix(w.Prog, bbecs, analyzer.Options{LiveText: true}))
	}

	// Shared raw estimates.
	ebsRaw, _ := bbec.FromEBS(w.Prog, res.EBSIPs, res.EBSPeriod)
	lbrRaw, _ := bbec.FromLBR(w.Prog, res.Stacks, res.LBRPeriod,
		bbec.LBROptions{KernelLivePatched: true})
	bias := bbec.DetectBias(w.Prog, res.Stacks, bbec.DefaultBiasOptions())

	// Full pipeline.
	full, err := Analyze(w.Prog, model, res, true)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	errFull := score(full.BBECs)

	// Ablation: no renormalization (raw LBR into the same chooser).
	noRenormCounts, _ := model.Hybrid(w.Prog, ebsRaw, lbrRaw, bias.BlockBias)
	errNoRenorm := score(noRenormCounts)

	// Ablation: no bias flags.
	ebsN := append([]float64(nil), ebsRaw...)
	lbrN := append([]float64(nil), lbrRaw...)
	normalizeLBRMass(w.Prog, ebsN, lbrN)
	noBiasCounts, _ := model.Hybrid(w.Prog, ebsN, lbrN, nil)
	errNoBias := score(noBiasCounts)

	// Ablation: shipped threshold rule instead of the learned tree.
	thrCounts, _ := DefaultModel().Hybrid(w.Prog, ebsN, lbrN, bias.BlockBias)
	errThreshold := score(thrCounts)

	// Single-source baselines (renormalized LBR, raw EBS).
	errLBR := score(lbrN)
	errEBS := score(ebsN)

	t.Logf("ablations (avg weighted error): full=%.4f no-renorm=%.4f no-bias=%.4f threshold=%.4f | LBR=%.4f EBS=%.4f",
		errFull, errNoRenorm, errNoBias, errThreshold, errLBR, errEBS)

	// Renormalization is the big lever: removing it must hurt.
	if errNoRenorm < errFull {
		t.Errorf("removing LBR renormalization improved accuracy: %.4f < %.4f",
			errNoRenorm, errFull)
	}
	// The remaining knockouts must not beat the full pipeline by more
	// than noise.
	for name, e := range map[string]float64{
		"no-bias": errNoBias, "threshold": errThreshold,
	} {
		if e < errFull*0.8 {
			t.Errorf("ablation %s beat the full pipeline: %.4f vs %.4f", name, e, errFull)
		}
	}
	// And the full pipeline must beat raw EBS clearly on this
	// short-block workload.
	if errFull > errEBS {
		t.Errorf("full pipeline %.4f worse than raw EBS %.4f", errFull, errEBS)
	}
}
