package core

import (
	"math"
	"sort"

	"hbbp/internal/isa"
	"hbbp/internal/profstore"
	"hbbp/internal/program"
)

// This file bridges live profiles into the fleet profile store:
// program-relative float estimates become the store's integer mass
// keyed by stable identities, so runs from different sessions,
// machines or days merge exactly.

// Capture quantizes one run's hybrid per-block counts into a
// mergeable stored profile. unit names the deployable unit the run
// profiled (conventionally the workload name); it scopes block
// identities like a build ID, so two different builds sharing module
// names (e.g. a before/after pair) never conflate.
func Capture(prof *Profile, unit string) *profstore.Profile {
	return CaptureCounts(prof.Prog, prof.BBECs, unit)
}

// CaptureCounts quantizes an arbitrary per-block count vector (block
// ID indexed — e.g. a profile's raw EBS or LBR estimate) into a
// stored profile representing one run of unit.
//
// Quantization rounds each block's estimate to the nearest integer
// execution count; per-op mass is then derived from those integers
// (count times the op's occurrences in the block's live instruction
// sequence), so the stored blocks and ops sections are exactly
// consistent with each other and all later merging is integer-exact.
func CaptureCounts(p *program.Program, counts []float64, unit string) *profstore.Profile {
	out := &profstore.Profile{
		Workloads: []profstore.WorkloadWeight{{Name: unit, Runs: 1}},
	}
	// Op mass accumulates under numeric (opcode, ring) keys across the
	// whole program — hashing small integers per distinct op instead of
	// strings per retirement entry; mnemonic strings materialize once
	// per distinct key at emission.
	type opRing struct {
		op   isa.Op
		ring uint8
	}
	perOp := make(map[opRing]uint64)
	for _, blk := range p.Blocks() {
		c := counts[blk.ID]
		if !(c > 0) { // skip zero, negative and NaN estimates
			continue
		}
		count := uint64(math.Round(c))
		if count == 0 {
			continue
		}
		ops := blk.EffectiveOps()
		ring := profstore.RingUser
		if blk.Fn.Mod.Ring == program.RingKernel {
			ring = profstore.RingKernel
		}
		out.Blocks = append(out.Blocks, profstore.Block{
			Unit:     unit,
			Module:   blk.Fn.Mod.Name,
			Function: blk.Fn.Name,
			Addr:     blk.Addr,
			Ring:     ring,
			Len:      uint32(len(ops)),
			Count:    count,
		})
		for _, op := range ops {
			perOp[opRing{op, ring}] += count
		}
	}
	for k, mass := range perOp {
		out.Ops = append(out.Ops, profstore.OpMass{Mnemonic: k.op.String(), Ring: k.ring, Mass: mass})
	}
	// Emit canonical form directly: block keys are unique here (one
	// entry per block of a single unit) and the op map has already
	// summed duplicates, so merge order is a sort away and the
	// accumulator round-trip profstore.Canonical would do is skipped.
	sort.Slice(out.Blocks, func(i, j int) bool {
		return profstore.BlockKeyLess(&out.Blocks[i], &out.Blocks[j])
	})
	sort.Slice(out.Ops, func(i, j int) bool {
		return profstore.OpKeyLess(&out.Ops[i], &out.Ops[j])
	})
	return out
}
