package core

import (
	"math"

	"hbbp/internal/profstore"
	"hbbp/internal/program"
)

// This file bridges live profiles into the fleet profile store:
// program-relative float estimates become the store's integer mass
// keyed by stable identities, so runs from different sessions,
// machines or days merge exactly.

// Capture quantizes one run's hybrid per-block counts into a
// mergeable stored profile. unit names the deployable unit the run
// profiled (conventionally the workload name); it scopes block
// identities like a build ID, so two different builds sharing module
// names (e.g. a before/after pair) never conflate.
func Capture(prof *Profile, unit string) *profstore.Profile {
	return CaptureCounts(prof.Prog, prof.BBECs, unit)
}

// CaptureCounts quantizes an arbitrary per-block count vector (block
// ID indexed — e.g. a profile's raw EBS or LBR estimate) into a
// stored profile representing one run of unit.
//
// Quantization rounds each block's estimate to the nearest integer
// execution count; per-op mass is then derived from those integers
// (count times the op's occurrences in the block's live instruction
// sequence), so the stored blocks and ops sections are exactly
// consistent with each other and all later merging is integer-exact.
func CaptureCounts(p *program.Program, counts []float64, unit string) *profstore.Profile {
	raw := &profstore.Profile{
		Workloads: []profstore.WorkloadWeight{{Name: unit, Runs: 1}},
	}
	perOp := make(map[string]uint64)
	for _, blk := range p.Blocks() {
		c := counts[blk.ID]
		if !(c > 0) { // skip zero, negative and NaN estimates
			continue
		}
		count := uint64(math.Round(c))
		if count == 0 {
			continue
		}
		ops := blk.EffectiveOps()
		ring := profstore.RingUser
		if blk.Fn.Mod.Ring == program.RingKernel {
			ring = profstore.RingKernel
		}
		raw.Blocks = append(raw.Blocks, profstore.Block{
			Unit:     unit,
			Module:   blk.Fn.Mod.Name,
			Function: blk.Fn.Name,
			Addr:     blk.Addr,
			Ring:     ring,
			Len:      uint32(len(ops)),
			Count:    count,
		})
		clear(perOp)
		for _, op := range ops {
			perOp[op.String()] += count
		}
		for name, mass := range perOp {
			raw.Ops = append(raw.Ops, profstore.OpMass{Mnemonic: name, Ring: ring, Mass: mass})
		}
	}
	// Canonical sums the per-block op contributions into per-(op, ring)
	// mass and sorts everything into merge order.
	return profstore.Canonical(raw)
}
