package core

import (
	"reflect"
	"testing"

	"hbbp/internal/collector"
)

// TestProfilePathParity asserts an end-to-end HBBP profile — both
// estimators, bias detection, the hybrid choice and the low-support
// guard — is identical whether the collection ran on the block
// fast path or on the per-instruction reference dispatch.
func TestProfilePathParity(t *testing.T) {
	w := buildWorkload(t, "test40").Scaled(0.2)
	profile := func(perInstruction bool) *Profile {
		prof, err := Run(w.Prog, w.Entry, DefaultModel(), Options{
			Collector: collector.Options{
				Class: w.Class, Scale: w.Scale, Seed: 17, Repeat: w.Repeat,
				PerInstruction: perInstruction,
			},
			KernelLivePatched: true,
		})
		if err != nil {
			t.Fatalf("Run (perInstruction=%v): %v", perInstruction, err)
		}
		return prof
	}
	fast, ref := profile(false), profile(true)
	if !reflect.DeepEqual(fast.BBECs, ref.BBECs) {
		t.Error("hybrid BBECs diverged between fast and reference paths")
	}
	if !reflect.DeepEqual(fast.EBS, ref.EBS) || !reflect.DeepEqual(fast.LBR, ref.LBR) {
		t.Error("raw estimates diverged between fast and reference paths")
	}
	if !reflect.DeepEqual(fast.Choices, ref.Choices) {
		t.Error("per-block source choices diverged between fast and reference paths")
	}
	if !reflect.DeepEqual(fast.Bias.BlockBias, ref.Bias.BlockBias) {
		t.Error("bias flags diverged between fast and reference paths")
	}
	if fast.Collection.Stats != ref.Collection.Stats {
		t.Errorf("stats diverged:\nfast %+v\nref  %+v", fast.Collection.Stats, ref.Collection.Stats)
	}
}
