package core

import (
	"reflect"
	"testing"

	"hbbp/internal/collector"
	"hbbp/internal/profstore"
	"hbbp/internal/program"
)

// captureProfile runs one fast profile of a registry workload for the
// capture tests.
func captureProfile(t *testing.T, name string) *Profile {
	t.Helper()
	w := buildWorkload(t, name).Scaled(0.1)
	prof, err := Run(w.Prog, w.Entry, DefaultModel(), Options{
		Collector:         collector.Options{Class: w.Class, Scale: w.Scale, Seed: 3, Repeat: w.Repeat},
		KernelLivePatched: true,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return prof
}

// TestCaptureInternallyConsistent pins the quantization contract: the
// stored ops section is derived from the stored integer block counts,
// so total op mass equals the sum over blocks of count times length,
// per ring.
func TestCaptureInternallyConsistent(t *testing.T) {
	prof := captureProfile(t, "kernel-prime") // exercises both rings
	sp := Capture(prof, "kernel-prime")
	if got := sp.TotalRuns(); got != 1 {
		t.Fatalf("TotalRuns = %d, want 1", got)
	}
	if len(sp.Workloads) != 1 || sp.Workloads[0].Name != "kernel-prime" {
		t.Fatalf("Workloads = %+v", sp.Workloads)
	}
	for _, ring := range []uint8{profstore.RingUser, profstore.RingKernel} {
		var fromBlocks uint64
		for _, blk := range sp.Blocks {
			if blk.Ring == ring {
				fromBlocks += blk.Mass()
			}
		}
		if fromOps := sp.RingMass(ring); fromBlocks != fromOps {
			t.Errorf("ring %d: block mass %d != op mass %d", ring, fromBlocks, fromOps)
		}
	}
	if sp.RingMass(profstore.RingKernel) == 0 {
		t.Error("kernel-prime captured no kernel mass")
	}
	// Identity fields come from the program, not the block table
	// index: every stored block's (module, function) must exist.
	for _, blk := range sp.Blocks {
		if blk.Unit != "kernel-prime" {
			t.Fatalf("block %v carries unit %q", blk, blk.Unit)
		}
		fn := prof.Prog.FuncByName(blk.Function)
		if fn == nil || fn.Mod.Name != blk.Module {
			t.Fatalf("stored block %v does not match the program", blk.String())
		}
	}
}

// TestCaptureDeterministic pins that capturing the same profile twice
// is bit-identical, and that capture equals a one-block-at-a-time
// manual reconstruction.
func TestCaptureDeterministic(t *testing.T) {
	prof := captureProfile(t, "test40")
	a, b := Capture(prof, "test40"), Capture(prof, "test40")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Capture is not deterministic")
	}
}

// TestCaptureSkipsZeroAndNegative pins the quantization edge cases:
// zero, sub-half and negative estimates do not produce entries.
func TestCaptureSkipsZeroAndNegative(t *testing.T) {
	prof := captureProfile(t, "test40")
	counts := make([]float64, prof.Prog.NumBlocks())
	for i := range counts {
		counts[i] = -5 // all suppressed
	}
	counts[0] = 0.2 // rounds to zero
	sp := CaptureCounts(prof.Prog, counts, "x")
	if len(sp.Blocks) != 0 || len(sp.Ops) != 0 {
		t.Fatalf("suppressed counts still captured: %+v", sp)
	}
	// But runs still count: an all-idle profile is a run of zero mass.
	if sp.TotalRuns() != 1 {
		t.Fatalf("TotalRuns = %d", sp.TotalRuns())
	}
}

// TestCaptureUnitScopesIdentity pins the build-ID role of the unit:
// the same program captured under two units shares no block keys, so
// a merge keeps them apart instead of conflating different builds.
func TestCaptureUnitScopesIdentity(t *testing.T) {
	prof := captureProfile(t, "clforward-before")
	before := Capture(prof, "clforward-before")
	after := Capture(prof, "clforward-after")
	merged := profstore.Merge(before, after)
	if len(merged.Blocks) != len(before.Blocks)+len(after.Blocks) {
		t.Fatalf("blocks conflated across units: %d merged vs %d + %d",
			len(merged.Blocks), len(before.Blocks), len(after.Blocks))
	}
	// Op mass, by contrast, is fleet-global and does merge.
	if merged.TotalMass() != before.TotalMass()+after.TotalMass() {
		t.Fatal("op mass lost in merge")
	}
}

// TestCaptureUsesLiveText pins that stored block lengths count the
// instructions the machine actually retires: kernel trace points
// store the patched two-NOP form, not the static JMP.
func TestCaptureUsesLiveText(t *testing.T) {
	prof := captureProfile(t, "kernel-prime")
	var checked bool
	for _, blk := range prof.Prog.Blocks() {
		if !blk.TraceJump || prof.BBECs[blk.ID] < 1 {
			continue
		}
		sp := Capture(prof, "u")
		for _, stored := range sp.Blocks {
			if stored.Addr == blk.Addr && stored.Module == blk.Fn.Mod.Name {
				if int(stored.Len) != len(blk.EffectiveOps()) {
					t.Errorf("trace-point block stored len %d, want live len %d",
						stored.Len, len(blk.EffectiveOps()))
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Skip("no executed trace-point block in this run")
	}
}

// TestCaptureRingAttribution pins ring mapping via a tiny two-ring
// program built directly.
func TestCaptureRingAttribution(t *testing.T) {
	prof := captureProfile(t, "kernel-prime")
	for _, blk := range prof.Prog.Blocks() {
		if prof.BBECs[blk.ID] < 1 {
			continue
		}
		want := profstore.RingUser
		if blk.Fn.Mod.Ring == program.RingKernel {
			want = profstore.RingKernel
		}
		sp := Capture(prof, "u")
		for _, stored := range sp.Blocks {
			if stored.Addr == blk.Addr && stored.Module == blk.Fn.Mod.Name && stored.Ring != want {
				t.Fatalf("block %s stored ring %d, want %d", stored.String(), stored.Ring, want)
			}
		}
		break // one executed block suffices; Capture is uniform
	}
}
