package analyzer

import (
	"fmt"

	"hbbp/internal/isa"
	"hbbp/internal/pivot"
	"hbbp/internal/program"
)

// Pivot dimension names emitted by BuildPivot. These are the
// granularity levels the paper lists: binary module, symbol (function),
// basic block, plus the static instruction annotations.
const (
	DimModule   = "module"
	DimFunction = "function"
	DimBlock    = "block"
	DimRing     = "ring"
	DimMnemonic = "mnemonic"
	DimExt      = "ext"
	DimPacking  = "packing"
	DimCategory = "category"
	DimMemory   = "memory"
)

// BuildPivot explodes BBECs into one pivot record per (block,
// mnemonic-position) with the full set of static attributes attached —
// the analyzer's "seamless mixing of dynamic and static information".
func BuildPivot(p *program.Program, bbecs []float64, opts Options) *pivot.Table {
	tab := pivot.New()
	memTax := isa.MemoryAccess()
	for _, blk := range p.Blocks() {
		count := bbecs[blk.ID]
		if count <= 0 || !opts.admit(blk) {
			continue
		}
		perOp := make(map[isa.Op]float64)
		for _, op := range blockOps(blk, opts.LiveText) {
			perOp[op] += count
		}
		for op, v := range perOp {
			info := op.Info()
			tab.Add(map[string]string{
				DimModule:   blk.Fn.Mod.Name,
				DimFunction: blk.Fn.Name,
				DimBlock:    fmt.Sprintf("%s.bb%d", blk.Fn.Name, blk.Index),
				DimRing:     blk.Fn.Mod.Ring.String(),
				DimMnemonic: info.Name,
				DimExt:      info.Ext.String(),
				DimPacking:  info.Packing.String(),
				DimCategory: info.Cat.String(),
				DimMemory:   memTax.Classify(op),
			}, v)
		}
	}
	return tab
}

// TopMnemonics returns the n most-executed mnemonics view.
func TopMnemonics(tab *pivot.Table, n int) []pivot.ResultRow {
	return tab.Pivot(pivot.Query{GroupBy: []string{DimMnemonic}, Limit: n})
}

// TopFunctions returns the n hottest functions by retired instructions.
func TopFunctions(tab *pivot.Table, n int) []pivot.ResultRow {
	return tab.Pivot(pivot.Query{GroupBy: []string{DimFunction}, Limit: n})
}

// ExtBreakdown returns retirements grouped by ISA extension.
func ExtBreakdown(tab *pivot.Table) []pivot.ResultRow {
	return tab.Pivot(pivot.Query{GroupBy: []string{DimExt}, Sort: pivot.OrderByKey})
}

// PackingView returns the CLForward-style view of Table 8: instruction
// set by packing.
func PackingView(tab *pivot.Table) []pivot.ResultRow {
	return tab.Pivot(pivot.Query{
		GroupBy: []string{DimExt, DimPacking},
		Sort:    pivot.OrderByKey,
	})
}

// RingBreakdown splits retirements between user and kernel mode.
func RingBreakdown(tab *pivot.Table) []pivot.ResultRow {
	return tab.Pivot(pivot.Query{GroupBy: []string{DimRing}, Sort: pivot.OrderByKey})
}
