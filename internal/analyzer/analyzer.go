// Package analyzer turns BBECs into dynamic instruction mixes and
// user-facing views — the analysis half of the paper's tool (Section
// V.B).
//
// "Dynamic (sample) information is mapped onto static basic block maps.
// Using the adjusted sample data, we produce a histogram of BBECs
// according to HBBP" — and from BBECs, since every instruction of a
// block executes exactly as often as the block, per-mnemonic execution
// histograms follow directly. The analyzer joins those dynamic counts
// with the static instruction attributes (class, ISA, packing, operand
// and memory behaviour) so mixes can be filtered, aggregated and broken
// down by module, function, basic block, instruction family or custom
// taxonomy.
package analyzer

import (
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/program"
)

// Scope filters which retirements contribute to a view.
type Scope uint8

// Scopes.
const (
	// ScopeAll covers user and kernel code.
	ScopeAll Scope = iota
	// ScopeUser covers ring 3 only — the visibility software
	// instrumentation is limited to.
	ScopeUser
	// ScopeKernel covers ring 0 only.
	ScopeKernel
)

func (s Scope) admits(r program.Ring) bool {
	switch s {
	case ScopeUser:
		return r == program.RingUser
	case ScopeKernel:
		return r == program.RingKernel
	}
	return true
}

// Options configure mix generation.
type Options struct {
	// Scope filters by ring.
	Scope Scope
	// LiveText uses the live (trace-point-patched) instruction
	// sequence of each block rather than the static disassembly; this
	// is the paper's kernel re-patching remedy applied at mix level.
	LiveText bool
	// Module restricts the mix to one module name (empty: all).
	Module string
	// Function restricts the mix to one function name (empty: all).
	Function string
}

// blockOps returns the instruction sequence attributed to a block under
// the options.
func blockOps(blk *program.Block, live bool) []isa.Op {
	if live {
		return blk.EffectiveOps()
	}
	return blk.Ops
}

// admit applies the option filters to a block.
func (o Options) admit(blk *program.Block) bool {
	if !o.Scope.admits(blk.Fn.Mod.Ring) {
		return false
	}
	if o.Module != "" && blk.Fn.Mod.Name != o.Module {
		return false
	}
	if o.Function != "" && blk.Fn.Name != o.Function {
		return false
	}
	return true
}

// Mix produces the per-mnemonic execution histogram implied by BBECs
// (block ID indexed).
func Mix(p *program.Program, bbecs []float64, opts Options) metrics.Mix {
	mix := make(metrics.Mix)
	for _, blk := range p.Blocks() {
		count := bbecs[blk.ID]
		if count <= 0 || !opts.admit(blk) {
			continue
		}
		for _, op := range blockOps(blk, opts.LiveText) {
			mix[op] += count
		}
	}
	return mix
}

// MixFromExact produces the histogram from exact integer BBECs (oracle
// or instrumentation data).
func MixFromExact(p *program.Program, bbecs []uint64, opts Options) metrics.Mix {
	f := make([]float64, len(bbecs))
	for i, v := range bbecs {
		f[i] = float64(v)
	}
	return Mix(p, f, opts)
}

// ToMix converts an exact mnemonic histogram (e.g. from the SDE
// reference) to the metrics type.
func ToMix(m map[isa.Op]uint64) metrics.Mix {
	out := make(metrics.Mix, len(m))
	for op, n := range m {
		out[op] = float64(n)
	}
	return out
}

// GroupBy aggregates a mix into named buckets using a taxonomy.
func GroupBy(mix metrics.Mix, tax isa.Taxonomy) map[string]float64 {
	out := make(map[string]float64)
	for op, n := range mix {
		out[tax.Classify(op)] += n
	}
	return out
}

// FLOPs estimates total floating-point operations implied by a mix,
// one of the derived analyses the paper mentions (approximate FLOP
// rates).
func FLOPs(mix metrics.Mix) float64 {
	var total float64
	for op, n := range mix {
		total += n * float64(op.Info().FLOPs)
	}
	return total
}
