package analyzer

import (
	"math"
	"testing"

	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/pivot"
	"hbbp/internal/program"
)

// twoRingProgram: user function (MOV ADD DIVSS + RET) and kernel
// function (MOV CMP + trace point + SYSRET).
func twoRingProgram(t testing.TB) *program.Program {
	t.Helper()
	b := program.NewBuilder("an")
	mod := b.Module("app", program.RingUser)
	kmod := b.Module("vmlinux", program.RingKernel)

	uf := b.Function(mod, "hot")
	ub := b.Block(uf, isa.MOV, isa.ADD, isa.DIVSS, isa.VADDPS, isa.ADDSS)
	b.Return(ub)

	kf := b.Function(kmod, "sys_hot")
	k1 := b.Block(kf, isa.MOV, isa.CMP)
	k2 := b.Block(kf, isa.SUB)
	b.TracePoint(k1, k2)
	b.Return(k2)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func bbecsFor(p *program.Program, userCount, kernelCount float64) []float64 {
	out := make([]float64, p.NumBlocks())
	for _, blk := range p.Blocks() {
		if blk.Fn.Mod.Ring == program.RingKernel {
			out[blk.ID] = kernelCount
		} else {
			out[blk.ID] = userCount
		}
	}
	return out
}

func TestMixCountsPerMnemonic(t *testing.T) {
	p := twoRingProgram(t)
	mix := Mix(p, bbecsFor(p, 10, 3), Options{})
	if mix[isa.MOV] != 10+3 {
		t.Errorf("MOV = %v, want 13", mix[isa.MOV])
	}
	if mix[isa.DIVSS] != 10 {
		t.Errorf("DIVSS = %v, want 10", mix[isa.DIVSS])
	}
	if mix[isa.SYSRET] != 3 {
		t.Errorf("SYSRET = %v, want 3", mix[isa.SYSRET])
	}
	// Static view: the kernel trace point shows its JMP.
	if mix[isa.JMP] != 3 {
		t.Errorf("static JMP = %v, want 3", mix[isa.JMP])
	}
	if mix[isa.NOP] != 0 {
		t.Errorf("static NOP = %v, want 0", mix[isa.NOP])
	}
}

func TestMixLiveTextPatchesTracePoints(t *testing.T) {
	p := twoRingProgram(t)
	mix := Mix(p, bbecsFor(p, 10, 3), Options{LiveText: true})
	if mix[isa.JMP] != 0 {
		t.Errorf("live JMP = %v, want 0 (patched to NOPs)", mix[isa.JMP])
	}
	if mix[isa.NOP] != 6 {
		t.Errorf("live NOP = %v, want 6 (two per trace point execution)", mix[isa.NOP])
	}
}

func TestMixScopes(t *testing.T) {
	p := twoRingProgram(t)
	bb := bbecsFor(p, 10, 3)
	user := Mix(p, bb, Options{Scope: ScopeUser})
	kernel := Mix(p, bb, Options{Scope: ScopeKernel})
	if user[isa.SYSRET] != 0 || user[isa.MOV] != 10 {
		t.Errorf("user scope: %v", user)
	}
	if kernel[isa.MOV] != 3 || kernel[isa.DIVSS] != 0 {
		t.Errorf("kernel scope: %v", kernel)
	}
}

func TestMixModuleFunctionFilters(t *testing.T) {
	p := twoRingProgram(t)
	bb := bbecsFor(p, 10, 3)
	if m := Mix(p, bb, Options{Module: "vmlinux"}); m[isa.MOV] != 3 {
		t.Errorf("module filter: %v", m)
	}
	if m := Mix(p, bb, Options{Function: "hot"}); m[isa.MOV] != 10 {
		t.Errorf("function filter: %v", m)
	}
	if m := Mix(p, bb, Options{Function: "nope"}); len(m) != 0 {
		t.Errorf("missing function filter: %v", m)
	}
}

func TestMixFromExactMatchesFloat(t *testing.T) {
	p := twoRingProgram(t)
	ints := make([]uint64, p.NumBlocks())
	floats := make([]float64, p.NumBlocks())
	for i := range ints {
		ints[i] = uint64(i + 1)
		floats[i] = float64(i + 1)
	}
	a := MixFromExact(p, ints, Options{})
	bm := Mix(p, floats, Options{})
	for op, v := range a {
		if math.Abs(bm[op]-v) > 1e-9 {
			t.Errorf("%v: %v vs %v", op, v, bm[op])
		}
	}
}

func TestToMix(t *testing.T) {
	m := ToMix(map[isa.Op]uint64{isa.MOV: 5, isa.ADD: 7})
	if m[isa.MOV] != 5 || m[isa.ADD] != 7 {
		t.Errorf("ToMix: %v", m)
	}
}

func TestGroupByTaxonomy(t *testing.T) {
	p := twoRingProgram(t)
	mix := Mix(p, bbecsFor(p, 10, 0), Options{Scope: ScopeUser})
	byExt := GroupBy(mix, isa.ByExtension())
	// User block: MOV ADD RET (BASE, 3x10), DIVSS ADDSS (SSE, 2x10),
	// VADDPS (AVX, 1x10).
	if byExt["BASE"] != 30 || byExt["SSE"] != 20 || byExt["AVX"] != 10 {
		t.Errorf("byExt = %v", byExt)
	}
}

func TestFLOPs(t *testing.T) {
	mix := metrics.Mix{isa.VADDPS: 10, isa.ADDSS: 5, isa.MOV: 100}
	// VADDPS = 8 FLOPs, ADDSS = 1.
	if got := FLOPs(mix); got != 10*8+5 {
		t.Errorf("FLOPs = %v, want 85", got)
	}
}

func TestBuildPivotViews(t *testing.T) {
	p := twoRingProgram(t)
	tab := BuildPivot(p, bbecsFor(p, 10, 3), Options{LiveText: true})
	if tab.Len() == 0 {
		t.Fatal("empty pivot")
	}

	top := TopMnemonics(tab, 3)
	if len(top) != 3 {
		t.Fatalf("top mnemonics: %v", top)
	}
	if top[0].Keys[0] != "MOV" || top[0].Value != 13 {
		t.Errorf("top mnemonic = %v, want MOV/13", top[0])
	}

	fns := TopFunctions(tab, 10)
	if len(fns) != 2 {
		t.Fatalf("functions: %v", fns)
	}
	if fns[0].Keys[0] != "hot" {
		t.Errorf("hottest function = %v", fns[0])
	}

	rings := RingBreakdown(tab)
	var kernelTotal float64
	for _, r := range rings {
		if r.Keys[0] == "kernel" {
			kernelTotal = r.Value
		}
	}
	// Kernel live ops: (MOV CMP NOP NOP) + (SUB SYSRET) at 3 each = 18.
	if kernelTotal != 18 {
		t.Errorf("kernel retirements = %v, want 18", kernelTotal)
	}

	pk := PackingView(tab)
	var packedAVX float64
	for _, r := range pk {
		if r.Keys[0] == "AVX" && r.Keys[1] == "PACKED" {
			packedAVX = r.Value
		}
	}
	if packedAVX != 10 {
		t.Errorf("AVX/PACKED = %v, want 10", packedAVX)
	}

	// Rendering smoke check.
	out := pivot.Render([]string{"EXT", "PACKING"}, pk)
	if len(out) == 0 {
		t.Error("empty render")
	}
}

func TestPivotFilterByRing(t *testing.T) {
	p := twoRingProgram(t)
	tab := BuildPivot(p, bbecsFor(p, 10, 3), Options{})
	rows := tab.Pivot(pivot.Query{
		GroupBy: []string{DimMnemonic},
		Filter:  map[string]string{DimRing: "kernel"},
	})
	for _, r := range rows {
		if r.Keys[0] == "DIVSS" {
			t.Error("user-only mnemonic leaked into kernel filter")
		}
	}
}
