// Package collector drives profiled runs: it programs the PMU the way
// the paper's tool does and streams every sample, as it is captured,
// into the registered SampleSinks — the EBS-IP and LBR-stack sinks the
// estimators consume directly, plus an optional perffile writer sink
// for on-disk retention. There is no serialize-then-reparse round
// trip on the hot path; PostProcess survives as the replay path for
// perffiles written earlier.
//
// Following Section V.A, the simultaneous collection of classic EBS and
// LBR is not supported, so the collector programs two counters in LBR
// mode during a single run:
//
//   - INST_RETIRED:PREC_DIST — the "eventing IP" of these samples is the
//     EBS data source; their LBR stacks are discarded at analysis time.
//   - BR_INST_RETIRED:NEAR_TAKEN — the LBR stacks of these samples are
//     the LBR data source; their IPs are discarded.
//
// The workload runs once and the output file contains both data types.
package collector

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"hbbp/internal/bbec"
	"hbbp/internal/cpu"
	"hbbp/internal/perffile"
	"hbbp/internal/pmu"
	"hbbp/internal/program"
)

// RuntimeClass buckets workloads by expected runtime, selecting the
// sampling periods of the paper's Table 4.
type RuntimeClass uint8

// Runtime classes.
const (
	// ClassSeconds is for workloads running for seconds.
	ClassSeconds RuntimeClass = iota
	// ClassMinuteOrTwo is for ~1-2 minute workloads.
	ClassMinuteOrTwo
	// ClassMinutes is for multi-minute workloads (SPEC).
	ClassMinutes
)

// String names the class the way Table 4 does.
func (c RuntimeClass) String() string {
	switch c {
	case ClassSeconds:
		return "Seconds"
	case ClassMinuteOrTwo:
		return "~1-2 minutes"
	case ClassMinutes:
		return "Minutes (SPEC workloads)"
	}
	return fmt.Sprintf("RuntimeClass(%d)", uint8(c))
}

// PeriodsFor returns the EBS and LBR sampling periods of Table 4. The
// values are primes, as is customary to avoid resonance with loop trip
// counts. LBR sampling uses a smaller period because taken branches are
// less frequent than instruction retirements.
func PeriodsFor(c RuntimeClass) (ebsPeriod, lbrPeriod uint64) {
	switch c {
	case ClassSeconds:
		return 1_000_037, 100_003
	case ClassMinuteOrTwo:
		return 10_000_019, 1_000_037
	default:
		return 100_000_007, 10_000_019
	}
}

// Options configures a collection run.
type Options struct {
	// Class picks the Table 4 periods. Ignored when explicit periods
	// are set.
	Class RuntimeClass
	// EBSPeriod and LBRPeriod override the class-derived periods when
	// nonzero. They are expressed in paper units (real retirements).
	EBSPeriod, LBRPeriod uint64
	// Scale divides the paper periods for the scaled simulation: one
	// simulated retirement stands for Scale real ones. Default 1000.
	Scale uint64
	// Seed seeds both the workload's stochastic branches and the PMU.
	Seed int64
	// PMU overrides the default PMU model when non-nil.
	PMU *pmu.Config
	// Repeat is the workload invocation count (default 1).
	Repeat int
	// MaxRetired guards against runaway programs (default none).
	MaxRetired uint64
	// RawOut, when non-nil, additionally receives the raw perffile
	// stream (e.g. a file on disk).
	RawOut io.Writer
	// KeepRaw retains the serialized perffile on Result.Raw. Off by
	// default: the collection streams straight into sinks, and the raw
	// byte stream is only materialized when a caller opts in here or
	// via RawOut.
	KeepRaw bool
	// Sinks receive every PMU sample as it is captured, after the
	// built-in EBS and LBR sinks.
	Sinks []SampleSink
	// PerInstruction forces the CPU's per-instruction reference
	// dispatch instead of the block-granularity fast path. The
	// collection output is identical either way — parity tests flip
	// this flag to prove it.
	PerInstruction bool
	// Context, when non-nil, cancels a collection in flight: the CPU
	// polls it during the run and the replay path polls it between
	// records, aborting with an error that wraps ctx.Err(). A run that
	// completes under a context is bit-identical to one without.
	Context context.Context
	// Layout, when non-nil, is the precomputed per-block dispatch
	// table of the program being collected (see cpu.NewLayout). Shared
	// layouts let repeated collections of one workload skip the
	// per-run derivation; output is bit-identical either way.
	Layout *cpu.Layout
}

// effectivePeriods resolves the configured periods to simulated units.
func (o *Options) effectivePeriods() (ebs, lbr uint64) {
	ebs, lbr = o.EBSPeriod, o.LBRPeriod
	if ebs == 0 || lbr == 0 {
		ce, cl := PeriodsFor(o.Class)
		if ebs == 0 {
			ebs = ce
		}
		if lbr == 0 {
			lbr = cl
		}
	}
	scale := o.Scale
	if scale == 0 {
		scale = 1000
	}
	ebs /= scale
	lbr /= scale
	if ebs == 0 {
		ebs = 1
	}
	if lbr == 0 {
		lbr = 1
	}
	return ebs, lbr
}

// Periods resolves the options to the effective (scaled) EBS and LBR
// sampling periods a collection will use. Replay callers need them:
// periods are not recorded in the perffile, so a Result reconstructed
// from disk takes them from the options used at collection time.
func (o Options) Periods() (ebsPeriod, lbrPeriod uint64) {
	return o.effectivePeriods()
}

// EffectiveScale resolves the simulation scale factor (default 1000).
func (o Options) EffectiveScale() uint64 {
	if o.Scale == 0 {
		return 1000
	}
	return o.Scale
}

// Result is a completed collection.
type Result struct {
	// EBSIPs are the eventing IPs from the precise instruction counter.
	EBSIPs []uint64
	// Stacks are the LBR snapshots from the branch counter.
	Stacks [][]bbec.Branch
	// EBSPeriod and LBRPeriod are the effective (scaled) periods the
	// samples were taken with.
	EBSPeriod, LBRPeriod uint64
	// Scale is the simulation scale factor: one simulated retirement
	// stands for Scale real ones. Sample counts are scale-invariant
	// (periods are divided by the same factor), but cycle totals are
	// not, so the overhead model needs it.
	Scale uint64
	// Stats are the run's execution statistics.
	Stats cpu.Stats
	// PMIs is the total number of delivered interrupts, driving the
	// collection overhead model.
	PMIs uint64
	// LostEBS and LostLBR count overflow collisions (dropped PMIs).
	LostEBS, LostLBR uint64
	// Raw is the serialized perffile, retained only when
	// Options.KeepRaw is set.
	Raw []byte
}

// Collect runs entry under the PMU configuration described above,
// dispatching every sample straight to the sinks, and returns the
// result assembled from the built-in sink outputs. Extra listeners
// (e.g. an SDE instrumenter producing reference data in the same run)
// observe the identical execution.
func Collect(p *program.Program, entry *program.Function, opt Options, extra ...cpu.Listener) (*Result, error) {
	ebsPeriod, lbrPeriod := opt.effectivePeriods()

	ebs := &EBSSink{}
	lbr := &LBRSink{}
	sinks := append([]SampleSink{ebs, lbr}, opt.Sinks...)

	// Serialization is opt-in: a writer sink joins the dispatch only
	// when a caller wants the byte stream on disk or in memory.
	var buf *bytes.Buffer
	var w *perffile.Writer
	if opt.KeepRaw || opt.RawOut != nil {
		var out io.Writer
		switch {
		case opt.KeepRaw && opt.RawOut != nil:
			buf = new(bytes.Buffer)
			out = io.MultiWriter(buf, opt.RawOut)
		case opt.KeepRaw:
			buf = new(bytes.Buffer)
			out = buf
		default:
			out = opt.RawOut
		}
		var err error
		w, err = perffile.NewWriter(out)
		if err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
		// Metadata records: process events and memory maps, as in
		// perf.data.
		w.WriteComm(perffile.Comm{PID: 1, Name: p.Name})
		for _, m := range p.Modules {
			w.WriteMmap(perffile.Mmap{
				PID: 1, Start: m.Base, Size: m.Size(),
				Ring: uint8(m.Ring), Module: m.Name,
			})
		}
		sinks = append(sinks, &WriterSink{W: w})
	}

	pmuCfg := pmu.DefaultConfig(opt.Seed)
	if opt.PMU != nil {
		pmuCfg = *opt.PMU
	}
	var pmis uint64
	var rec perffile.Sample
	handler := func(s pmu.Sample) {
		pmis++
		rec.Event = uint8(s.Event)
		rec.IP = s.IP
		rec.Ring = uint8(s.Ring)
		rec.Cycle = s.Cycle
		rec.Stack = rec.Stack[:0]
		for _, br := range s.Stack {
			rec.Stack = append(rec.Stack, perffile.Branch{From: br.From, To: br.To})
		}
		for _, sink := range sinks {
			sink.Sample(&rec)
		}
	}
	unit, err := pmu.New(pmuCfg,
		pmu.Sampling{Event: pmu.InstRetiredPrecDist, Period: ebsPeriod, Handler: handler},
		pmu.Sampling{Event: pmu.BrInstRetiredNearTaken, Period: lbrPeriod, Handler: handler},
	)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}

	listeners := append([]cpu.Listener{unit}, extra...)
	stats, err := cpu.Run(p, entry, cpu.Config{
		Seed: opt.Seed, Repeat: opt.Repeat, MaxRetired: opt.MaxRetired,
		PerInstruction: opt.PerInstruction, Ctx: opt.Context,
		Layout: opt.Layout,
	}, listeners...)
	if err != nil {
		return nil, fmt.Errorf("collector: running %s: %w", p.Name, err)
	}
	for _, ev := range []pmu.Event{pmu.InstRetiredPrecDist, pmu.BrInstRetiredNearTaken} {
		if lost := unit.Dropped(ev); lost > 0 {
			l := perffile.Lost{Count: lost, Event: uint8(ev)}
			for _, sink := range sinks {
				sink.Lost(l)
			}
		}
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
	}

	res := &Result{
		EBSIPs:    ebs.IPs,
		Stacks:    lbr.Stacks,
		EBSPeriod: ebsPeriod,
		LBRPeriod: lbrPeriod,
		Scale:     opt.EffectiveScale(),
		Stats:     stats,
		PMIs:      pmis,
		LostEBS:   ebs.Dropped,
		LostLBR:   lbr.Dropped,
	}
	if buf != nil {
		res.Raw = buf.Bytes()
	}
	return res, nil
}

// PostProcess extracts the EBS and LBR sample sets from a raw
// perffile: eventing IPs from precise-instruction samples (stacks
// discarded), LBR stacks from taken-branch samples (IPs discarded).
// It is the in-memory form of the replay path — live collection no
// longer round-trips through it; see ReplayResult for streams.
func PostProcess(raw []byte) (*Result, error) {
	return ReplayResult(bytes.NewReader(raw))
}

// CollectionOverheadCycles models the runtime cost of sampling: each PMI
// freezes the pipeline, runs the handler and reads the LBR stack. The
// paper reports sub-1.3% average collection overhead; the per-PMI cost
// here reproduces that once periods follow Table 4.
const CollectionOverheadCycles = 2200

// OverheadFactor returns the modelled runtime multiplier of the
// collection relative to a clean run. The clean cycle count is expanded
// by the simulation scale — the real workload retired Scale times more
// instructions than the simulator did, while the number of PMIs is
// scale-invariant because the sampling periods were divided by the same
// factor.
func (r *Result) OverheadFactor() float64 {
	if r.Stats.Cycles == 0 {
		return 1
	}
	scale := r.Scale
	if scale == 0 {
		scale = 1
	}
	clean := float64(r.Stats.Cycles) * float64(scale)
	extra := float64(r.PMIs * CollectionOverheadCycles)
	return (clean + extra) / clean
}
