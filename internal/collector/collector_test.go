package collector

import (
	"bytes"
	"testing"

	"hbbp/internal/bbec"
	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/perffile"
	"hbbp/internal/pmu"
	"hbbp/internal/program"
	"hbbp/internal/sde"
)

// mixedProgram builds a workload with a short-block-heavy function and a
// long-block function, both hot, connected through calls and diamonds —
// enough structural diversity to surface the EBS/LBR error asymmetry.
func mixedProgram(t testing.TB) (*program.Program, *program.Function) {
	t.Helper()
	b := program.NewBuilder("mixed")
	mod := b.Module("main", program.RingUser)

	// shortfn: object-oriented style — tiny blocks, a diamond, a DIV.
	shortfn := b.Function(mod, "shortfn")
	s0 := b.Block(shortfn, isa.PUSH, isa.MOV)
	s1 := b.Block(shortfn, isa.CMP)
	s2 := b.Block(shortfn, isa.ADD, isa.DIV)
	s3 := b.Block(shortfn, isa.SUB)
	s4 := b.Block(shortfn, isa.MOV, isa.POP)
	b.Fallthrough(s0, s1)
	b.Cond(s1, isa.JNZ, s3, s2, 0.35)
	b.Fallthrough(s2, s3)
	b.Fallthrough(s3, s4)
	b.Return(s4)

	// longfn: one 30-instruction straight-line block.
	longfn := b.Function(mod, "longfn")
	longOps := make([]isa.Op, 0, 30)
	for i := 0; i < 9; i++ {
		longOps = append(longOps, isa.MOV, isa.ADD, isa.MULSS)
	}
	longOps = append(longOps, isa.DIVSS, isa.SUB, isa.CMP)
	l0 := b.Block(longfn, longOps...)
	b.Return(l0)

	main := b.Function(mod, "main")
	entry := b.Block(main, isa.PUSH, isa.MOV)
	head := b.Block(main, isa.ADD)
	c1 := b.Block(main, isa.MOV)
	c2 := b.Block(main, isa.MOV)
	latch := b.Block(main, isa.INC, isa.CMP)
	exit := b.Block(main, isa.POP)
	b.Fallthrough(entry, head)
	b.Call(head, shortfn, c1)
	b.Call(c1, longfn, c2)
	b.Fallthrough(c2, latch)
	b.Loop(latch, isa.JLE, head, exit, 20000)
	b.Return(exit)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, main
}

func TestPeriodsForMatchTable4(t *testing.T) {
	cases := []struct {
		class    RuntimeClass
		ebs, lbr uint64
	}{
		{ClassSeconds, 1_000_037, 100_003},
		{ClassMinuteOrTwo, 10_000_019, 1_000_037},
		{ClassMinutes, 100_000_007, 10_000_019},
	}
	for _, c := range cases {
		ebs, lbr := PeriodsFor(c.class)
		if ebs != c.ebs || lbr != c.lbr {
			t.Errorf("%v: periods (%d,%d), want (%d,%d)", c.class, ebs, lbr, c.ebs, c.lbr)
		}
		if lbr >= ebs {
			t.Errorf("%v: LBR period must be smaller than EBS period", c.class)
		}
	}
}

func TestCollectEndToEnd(t *testing.T) {
	p, main := mixedProgram(t)
	ref := sde.New(p)
	res, err := Collect(p, main, Options{
		Class: ClassSeconds, Scale: 1000, Seed: 42, KeepRaw: true,
	}, ref)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(res.EBSIPs) == 0 || len(res.Stacks) == 0 {
		t.Fatalf("no samples: %d EBS, %d LBR", len(res.EBSIPs), len(res.Stacks))
	}
	if res.PMIs == 0 {
		t.Fatal("no PMIs recorded")
	}

	// The raw file must parse and contain metadata + all samples.
	r, err := perffile.NewReader(bytes.NewReader(res.Raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var comms, mmaps, samples int
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		switch rec.(type) {
		case *perffile.Comm:
			comms++
		case *perffile.Mmap:
			mmaps++
		case *perffile.Sample:
			samples++
		}
	}
	if comms != 1 || mmaps != len(p.Modules) {
		t.Errorf("metadata: %d comms, %d mmaps; want 1, %d", comms, mmaps, len(p.Modules))
	}
	if samples != int(res.PMIs) {
		t.Errorf("file has %d samples, PMIs = %d", samples, res.PMIs)
	}

	// Collection overhead must be small (paper: ~0.5-2.3%).
	if ov := res.OverheadFactor(); ov > 1.10 {
		t.Errorf("collection overhead factor %.3f too large", ov)
	}

	// Hot-block estimates must be in the right ballpark for both
	// estimators (within 50% on the hottest block).
	ebsEst, _ := bbec.FromEBS(p, res.EBSIPs, res.EBSPeriod)
	lbrEst, _ := bbec.FromLBR(p, res.Stacks, res.LBRPeriod, bbec.LBROptions{})
	long := p.FuncByName("longfn").Blocks[0]
	refCount := float64(ref.BlockExec(long.ID))
	if refCount == 0 {
		t.Fatal("long block never executed")
	}
	for name, est := range map[string][]float64{"EBS": ebsEst, "LBR": lbrEst} {
		if e := metrics.Error(refCount, est[long.ID]); e > 0.5 {
			t.Errorf("%s estimate for hot long block off by %.0f%% (ref %.0f, got %.0f)",
				name, e*100, refCount, est[long.ID])
		}
	}
}

// TestErrorLandscape verifies the core asymmetry HBBP exploits: EBS
// degrades on short blocks (skid/shadowing leaks samples across nearby
// boundaries) while staying accurate on long blocks, and LBR's error is
// roughly length-independent.
func TestErrorLandscape(t *testing.T) {
	p, main := mixedProgram(t)
	ref := sde.New(p)
	res, err := Collect(p, main, Options{
		Class: ClassSeconds, Scale: 1000, Seed: 7,
	}, ref)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	ebsEst, _ := bbec.FromEBS(p, res.EBSIPs, res.EBSPeriod)
	lbrEst, _ := bbec.FromLBR(p, res.Stacks, res.LBRPeriod, bbec.LBROptions{})

	avgErr := func(est []float64, fn *program.Function) float64 {
		var sum float64
		var n int
		for _, blk := range fn.Blocks {
			r := float64(ref.BlockExec(blk.ID))
			if r == 0 {
				continue
			}
			sum += metrics.Error(r, est[blk.ID])
			n++
		}
		return sum / float64(n)
	}
	shortFn := p.FuncByName("shortfn")
	longFn := p.FuncByName("longfn")

	ebsShort, ebsLong := avgErr(ebsEst, shortFn), avgErr(ebsEst, longFn)
	lbrShort, lbrLong := avgErr(lbrEst, shortFn), avgErr(lbrEst, longFn)
	t.Logf("EBS: short=%.3f long=%.3f | LBR: short=%.3f long=%.3f",
		ebsShort, ebsLong, lbrShort, lbrLong)

	if ebsShort <= ebsLong {
		t.Errorf("EBS error on short blocks (%.3f) should exceed long blocks (%.3f)",
			ebsShort, ebsLong)
	}
	if lbrShort >= ebsShort {
		t.Errorf("LBR (%.3f) should beat EBS (%.3f) on short blocks", lbrShort, ebsShort)
	}
	// Both estimators must be accurate on the long block of this tiny
	// program; the full corpus-level landscape (including LBR's
	// long-block penalty that flips the preference to EBS) is asserted
	// in internal/core's training tests.
	if ebsLong > 0.05 || lbrLong > 0.05 {
		t.Errorf("long-block errors EBS %.3f / LBR %.3f should both be small", ebsLong, lbrLong)
	}
}

func TestCollectWritesRawOut(t *testing.T) {
	p, main := mixedProgram(t)
	var sink bytes.Buffer
	res, err := Collect(p, main, Options{
		Class: ClassSeconds, Seed: 1, RawOut: &sink, KeepRaw: true,
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !bytes.Equal(sink.Bytes(), res.Raw) {
		t.Error("RawOut stream differs from Result.Raw")
	}
}

func TestRawIsOptIn(t *testing.T) {
	p, main := mixedProgram(t)
	res, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 1})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if res.Raw != nil {
		t.Errorf("Result.Raw retained %d bytes without KeepRaw", len(res.Raw))
	}
	if len(res.EBSIPs) == 0 || len(res.Stacks) == 0 {
		t.Errorf("streaming sinks empty: %d EBS, %d LBR", len(res.EBSIPs), len(res.Stacks))
	}
}

func TestPostProcessSplitsEvents(t *testing.T) {
	p, main := mixedProgram(t)
	res, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 3, KeepRaw: true})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	again, err := PostProcess(res.Raw)
	if err != nil {
		t.Fatalf("PostProcess: %v", err)
	}
	if len(again.EBSIPs) != len(res.EBSIPs) || len(again.Stacks) != len(res.Stacks) {
		t.Errorf("re-post-process mismatch: %d/%d vs %d/%d",
			len(again.EBSIPs), len(again.Stacks), len(res.EBSIPs), len(res.Stacks))
	}
	for _, st := range again.Stacks {
		if len(st) == 0 {
			t.Fatal("empty stack passed post-processing")
		}
	}
}

// TestStreamingReplayParity is the pipeline-equivalence guarantee: the
// sample sets assembled by the live sink dispatch and the ones
// re-derived by replaying the serialized perffile must be identical —
// EBS IPs, LBR stacks and per-counter lost counts.
func TestStreamingReplayParity(t *testing.T) {
	p, main := mixedProgram(t)
	live, err := Collect(p, main, Options{
		Class: ClassSeconds, Scale: 1000, Seed: 42, KeepRaw: true,
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	replayed, err := ReplayResult(bytes.NewReader(live.Raw))
	if err != nil {
		t.Fatalf("ReplayResult: %v", err)
	}
	if len(replayed.EBSIPs) != len(live.EBSIPs) {
		t.Fatalf("EBS IPs: replay %d, live %d", len(replayed.EBSIPs), len(live.EBSIPs))
	}
	for i, ip := range live.EBSIPs {
		if replayed.EBSIPs[i] != ip {
			t.Fatalf("EBS IP %d: replay %#x, live %#x", i, replayed.EBSIPs[i], ip)
		}
	}
	if len(replayed.Stacks) != len(live.Stacks) {
		t.Fatalf("LBR stacks: replay %d, live %d", len(replayed.Stacks), len(live.Stacks))
	}
	for i, stack := range live.Stacks {
		if len(replayed.Stacks[i]) != len(stack) {
			t.Fatalf("stack %d: replay depth %d, live %d", i, len(replayed.Stacks[i]), len(stack))
		}
		for j, br := range stack {
			if replayed.Stacks[i][j] != br {
				t.Fatalf("stack %d entry %d: replay %+v, live %+v", i, j, replayed.Stacks[i][j], br)
			}
		}
	}
	if replayed.LostEBS != live.LostEBS || replayed.LostLBR != live.LostLBR {
		t.Errorf("lost counts: replay %d/%d, live %d/%d",
			replayed.LostEBS, replayed.LostLBR, live.LostEBS, live.LostLBR)
	}
}

// TestCustomSinkObservesEverySample wires an extra sink into a live
// run and checks it sees the full PMI stream, in both events.
func TestCustomSinkObservesEverySample(t *testing.T) {
	p, main := mixedProgram(t)
	var seen uint64
	byEvent := map[pmu.Event]int{}
	sink := sinkFunc(func(s *perffile.Sample) {
		seen++
		byEvent[pmu.Event(s.Event)]++
	})
	res, err := Collect(p, main, Options{
		Class: ClassSeconds, Seed: 5, Sinks: []SampleSink{sink},
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if seen != res.PMIs {
		t.Errorf("custom sink saw %d samples, PMIs = %d", seen, res.PMIs)
	}
	if byEvent[pmu.InstRetiredPrecDist] != len(res.EBSIPs) {
		t.Errorf("custom sink saw %d precise samples, result has %d EBS IPs",
			byEvent[pmu.InstRetiredPrecDist], len(res.EBSIPs))
	}
	if byEvent[pmu.BrInstRetiredNearTaken] == 0 {
		t.Error("custom sink saw no branch samples")
	}
}

// sinkFunc adapts a function to SampleSink for tests.
type sinkFunc func(*perffile.Sample)

func (f sinkFunc) Sample(s *perffile.Sample) { f(s) }
func (f sinkFunc) Lost(perffile.Lost)        {}

func TestScaledPeriodsFloorAtOne(t *testing.T) {
	o := Options{EBSPeriod: 10, LBRPeriod: 5, Scale: 1000}
	ebs, lbr := o.effectivePeriods()
	if ebs != 1 || lbr != 1 {
		t.Errorf("periods (%d,%d), want floor at 1", ebs, lbr)
	}
}

func TestEffectivePeriods(t *testing.T) {
	cases := []struct {
		name     string
		opt      Options
		ebs, lbr uint64
	}{
		// Unset scale defaults to 1000.
		{"default scale", Options{Class: ClassSeconds}, 1_000_037 / 1000, 100_003 / 1000},
		// Explicit periods override the class, scaled down.
		{"explicit periods", Options{EBSPeriod: 2_000_000, LBRPeriod: 500_000, Scale: 100}, 20_000, 5_000},
		// A single explicit period only overrides its own side; the
		// other still comes from the class.
		{"partial override", Options{Class: ClassSeconds, EBSPeriod: 3_000_000, Scale: 1000}, 3_000, 100},
		// Scale 1 leaves paper units untouched.
		{"unit scale", Options{Class: ClassMinutes, Scale: 1}, 100_000_007, 10_000_019},
		// Aggressive scales floor at one retirement per sample rather
		// than dividing to zero.
		{"floor", Options{EBSPeriod: 3, LBRPeriod: 2, Scale: 1_000_000}, 1, 1},
	}
	for _, c := range cases {
		ebs, lbr := c.opt.effectivePeriods()
		if ebs != c.ebs || lbr != c.lbr {
			t.Errorf("%s: periods (%d,%d), want (%d,%d)", c.name, ebs, lbr, c.ebs, c.lbr)
		}
		// The exported accessor must agree with the internal resolution.
		pe, pl := c.opt.Periods()
		if pe != ebs || pl != lbr {
			t.Errorf("%s: Periods() (%d,%d) != effectivePeriods (%d,%d)", c.name, pe, pl, ebs, lbr)
		}
	}
}

func TestOverheadFactorEdgeCases(t *testing.T) {
	// Zero cycles (nothing ran): no meaningful ratio, factor is 1.
	r := &Result{PMIs: 100}
	if got := r.OverheadFactor(); got != 1 {
		t.Errorf("zero-cycle overhead factor = %v, want 1", got)
	}
	// Unset scale is treated as 1, not the collection default of 1000:
	// a Result built by hand carries exactly what its fields say.
	r = &Result{Stats: cpu.Stats{Cycles: CollectionOverheadCycles}, PMIs: 1}
	if got := r.OverheadFactor(); got != 2 {
		t.Errorf("unscaled overhead factor = %v, want 2", got)
	}
	// With a scale, the clean cycle count expands while the PMI cost
	// does not: factor shrinks toward 1.
	r = &Result{Stats: cpu.Stats{Cycles: CollectionOverheadCycles}, PMIs: 1, Scale: 1000}
	want := 1 + 1.0/1000
	if got := r.OverheadFactor(); got != want {
		t.Errorf("scaled overhead factor = %v, want %v", got, want)
	}
	// No PMIs delivered: a clean run costs nothing extra.
	r = &Result{Stats: cpu.Stats{Cycles: 12345}, Scale: 1000}
	if got := r.OverheadFactor(); got != 1 {
		t.Errorf("no-PMI overhead factor = %v, want 1", got)
	}
}

// Ground-truth cross-check in the style of the paper's Section VII.B:
// instrumentation totals must match PMU counting totals.
func TestSDEMatchesCPUStats(t *testing.T) {
	p, main := mixedProgram(t)
	ref := sde.New(p)
	ref.UserOnly = false
	oracle := cpu.NewCountingListener(p)
	stats, err := cpu.Run(p, main, cpu.Config{Seed: 9}, ref, oracle)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ref.Instructions() != stats.Retired {
		t.Errorf("SDE insts %d != retired %d", ref.Instructions(), stats.Retired)
	}
	for id, n := range oracle.Exec {
		if ref.BlockExec(id) != n {
			t.Errorf("block %d: SDE %d, oracle %d", id, ref.BlockExec(id), n)
		}
	}
}
