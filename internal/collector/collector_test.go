package collector

import (
	"bytes"
	"testing"

	"hbbp/internal/bbec"
	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/perffile"
	"hbbp/internal/program"
	"hbbp/internal/sde"
)

// mixedProgram builds a workload with a short-block-heavy function and a
// long-block function, both hot, connected through calls and diamonds —
// enough structural diversity to surface the EBS/LBR error asymmetry.
func mixedProgram(t testing.TB) (*program.Program, *program.Function) {
	t.Helper()
	b := program.NewBuilder("mixed")
	mod := b.Module("main", program.RingUser)

	// shortfn: object-oriented style — tiny blocks, a diamond, a DIV.
	shortfn := b.Function(mod, "shortfn")
	s0 := b.Block(shortfn, isa.PUSH, isa.MOV)
	s1 := b.Block(shortfn, isa.CMP)
	s2 := b.Block(shortfn, isa.ADD, isa.DIV)
	s3 := b.Block(shortfn, isa.SUB)
	s4 := b.Block(shortfn, isa.MOV, isa.POP)
	b.Fallthrough(s0, s1)
	b.Cond(s1, isa.JNZ, s3, s2, 0.35)
	b.Fallthrough(s2, s3)
	b.Fallthrough(s3, s4)
	b.Return(s4)

	// longfn: one 30-instruction straight-line block.
	longfn := b.Function(mod, "longfn")
	longOps := make([]isa.Op, 0, 30)
	for i := 0; i < 9; i++ {
		longOps = append(longOps, isa.MOV, isa.ADD, isa.MULSS)
	}
	longOps = append(longOps, isa.DIVSS, isa.SUB, isa.CMP)
	l0 := b.Block(longfn, longOps...)
	b.Return(l0)

	main := b.Function(mod, "main")
	entry := b.Block(main, isa.PUSH, isa.MOV)
	head := b.Block(main, isa.ADD)
	c1 := b.Block(main, isa.MOV)
	c2 := b.Block(main, isa.MOV)
	latch := b.Block(main, isa.INC, isa.CMP)
	exit := b.Block(main, isa.POP)
	b.Fallthrough(entry, head)
	b.Call(head, shortfn, c1)
	b.Call(c1, longfn, c2)
	b.Fallthrough(c2, latch)
	b.Loop(latch, isa.JLE, head, exit, 20000)
	b.Return(exit)

	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, main
}

func TestPeriodsForMatchTable4(t *testing.T) {
	cases := []struct {
		class    RuntimeClass
		ebs, lbr uint64
	}{
		{ClassSeconds, 1_000_037, 100_003},
		{ClassMinuteOrTwo, 10_000_019, 1_000_037},
		{ClassMinutes, 100_000_007, 10_000_019},
	}
	for _, c := range cases {
		ebs, lbr := PeriodsFor(c.class)
		if ebs != c.ebs || lbr != c.lbr {
			t.Errorf("%v: periods (%d,%d), want (%d,%d)", c.class, ebs, lbr, c.ebs, c.lbr)
		}
		if lbr >= ebs {
			t.Errorf("%v: LBR period must be smaller than EBS period", c.class)
		}
	}
}

func TestCollectEndToEnd(t *testing.T) {
	p, main := mixedProgram(t)
	ref := sde.New(p)
	res, err := Collect(p, main, Options{
		Class: ClassSeconds, Scale: 1000, Seed: 42,
	}, ref)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(res.EBSIPs) == 0 || len(res.Stacks) == 0 {
		t.Fatalf("no samples: %d EBS, %d LBR", len(res.EBSIPs), len(res.Stacks))
	}
	if res.PMIs == 0 {
		t.Fatal("no PMIs recorded")
	}

	// The raw file must parse and contain metadata + all samples.
	r, err := perffile.NewReader(bytes.NewReader(res.Raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var comms, mmaps, samples int
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		switch rec.(type) {
		case *perffile.Comm:
			comms++
		case *perffile.Mmap:
			mmaps++
		case *perffile.Sample:
			samples++
		}
	}
	if comms != 1 || mmaps != len(p.Modules) {
		t.Errorf("metadata: %d comms, %d mmaps; want 1, %d", comms, mmaps, len(p.Modules))
	}
	if samples != int(res.PMIs) {
		t.Errorf("file has %d samples, PMIs = %d", samples, res.PMIs)
	}

	// Collection overhead must be small (paper: ~0.5-2.3%).
	if ov := res.OverheadFactor(); ov > 1.10 {
		t.Errorf("collection overhead factor %.3f too large", ov)
	}

	// Hot-block estimates must be in the right ballpark for both
	// estimators (within 50% on the hottest block).
	ebsEst, _ := bbec.FromEBS(p, res.EBSIPs, res.EBSPeriod)
	lbrEst, _ := bbec.FromLBR(p, res.Stacks, res.LBRPeriod, bbec.LBROptions{})
	long := p.FuncByName("longfn").Blocks[0]
	refCount := float64(ref.BlockExec(long.ID))
	if refCount == 0 {
		t.Fatal("long block never executed")
	}
	for name, est := range map[string][]float64{"EBS": ebsEst, "LBR": lbrEst} {
		if e := metrics.Error(refCount, est[long.ID]); e > 0.5 {
			t.Errorf("%s estimate for hot long block off by %.0f%% (ref %.0f, got %.0f)",
				name, e*100, refCount, est[long.ID])
		}
	}
}

// TestErrorLandscape verifies the core asymmetry HBBP exploits: EBS
// degrades on short blocks (skid/shadowing leaks samples across nearby
// boundaries) while staying accurate on long blocks, and LBR's error is
// roughly length-independent.
func TestErrorLandscape(t *testing.T) {
	p, main := mixedProgram(t)
	ref := sde.New(p)
	res, err := Collect(p, main, Options{
		Class: ClassSeconds, Scale: 1000, Seed: 7,
	}, ref)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	ebsEst, _ := bbec.FromEBS(p, res.EBSIPs, res.EBSPeriod)
	lbrEst, _ := bbec.FromLBR(p, res.Stacks, res.LBRPeriod, bbec.LBROptions{})

	avgErr := func(est []float64, fn *program.Function) float64 {
		var sum float64
		var n int
		for _, blk := range fn.Blocks {
			r := float64(ref.BlockExec(blk.ID))
			if r == 0 {
				continue
			}
			sum += metrics.Error(r, est[blk.ID])
			n++
		}
		return sum / float64(n)
	}
	shortFn := p.FuncByName("shortfn")
	longFn := p.FuncByName("longfn")

	ebsShort, ebsLong := avgErr(ebsEst, shortFn), avgErr(ebsEst, longFn)
	lbrShort, lbrLong := avgErr(lbrEst, shortFn), avgErr(lbrEst, longFn)
	t.Logf("EBS: short=%.3f long=%.3f | LBR: short=%.3f long=%.3f",
		ebsShort, ebsLong, lbrShort, lbrLong)

	if ebsShort <= ebsLong {
		t.Errorf("EBS error on short blocks (%.3f) should exceed long blocks (%.3f)",
			ebsShort, ebsLong)
	}
	if lbrShort >= ebsShort {
		t.Errorf("LBR (%.3f) should beat EBS (%.3f) on short blocks", lbrShort, ebsShort)
	}
	// Both estimators must be accurate on the long block of this tiny
	// program; the full corpus-level landscape (including LBR's
	// long-block penalty that flips the preference to EBS) is asserted
	// in internal/core's training tests.
	if ebsLong > 0.05 || lbrLong > 0.05 {
		t.Errorf("long-block errors EBS %.3f / LBR %.3f should both be small", ebsLong, lbrLong)
	}
}

func TestCollectWritesRawOut(t *testing.T) {
	p, main := mixedProgram(t)
	var sink bytes.Buffer
	res, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 1, RawOut: &sink})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !bytes.Equal(sink.Bytes(), res.Raw) {
		t.Error("RawOut stream differs from Result.Raw")
	}
}

func TestPostProcessSplitsEvents(t *testing.T) {
	p, main := mixedProgram(t)
	res, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 3})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	again, err := PostProcess(res.Raw)
	if err != nil {
		t.Fatalf("PostProcess: %v", err)
	}
	if len(again.EBSIPs) != len(res.EBSIPs) || len(again.Stacks) != len(res.Stacks) {
		t.Errorf("re-post-process mismatch: %d/%d vs %d/%d",
			len(again.EBSIPs), len(again.Stacks), len(res.EBSIPs), len(res.Stacks))
	}
	for _, st := range again.Stacks {
		if len(st) == 0 {
			t.Fatal("empty stack passed post-processing")
		}
	}
}

func TestScaledPeriodsFloorAtOne(t *testing.T) {
	o := Options{EBSPeriod: 10, LBRPeriod: 5, Scale: 1000}
	ebs, lbr := o.effectivePeriods()
	if ebs != 1 || lbr != 1 {
		t.Errorf("periods (%d,%d), want floor at 1", ebs, lbr)
	}
}

// Ground-truth cross-check in the style of the paper's Section VII.B:
// instrumentation totals must match PMU counting totals.
func TestSDEMatchesCPUStats(t *testing.T) {
	p, main := mixedProgram(t)
	ref := sde.New(p)
	ref.UserOnly = false
	oracle := cpu.NewCountingListener(p)
	stats, err := cpu.Run(p, main, cpu.Config{Seed: 9}, ref, oracle)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ref.Instructions() != stats.Retired {
		t.Errorf("SDE insts %d != retired %d", ref.Instructions(), stats.Retired)
	}
	for id, n := range oracle.Exec {
		if ref.BlockExec(id) != n {
			t.Errorf("block %d: SDE %d, oracle %d", id, ref.BlockExec(id), n)
		}
	}
}
