package collector_test

// The fast-path/reference parity suite: the block-granularity
// retirement pipeline (cpu block events + PMU counter-overflow
// scheduling) must be bit-identical to the per-instruction reference
// dispatch, across the workloads the evaluation leans on — including
// kernel code with live-patched trace points. This file lives in an
// external test package so it can drive the real workload generators.

import (
	"bytes"
	"reflect"
	"testing"

	"hbbp/internal/collector"
	"hbbp/internal/cpu"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// collectPair runs one workload twice with identical options — block
// fast path vs per-instruction reference — with both an SDE
// instrumenter and a counting oracle riding along, and returns
// everything both runs produced.
func collectPair(t *testing.T, w *workloads.Workload, seed int64) (fast, ref *collector.Result,
	fastSDE, refSDE *sde.Instrumenter, fastOracle, refOracle *cpu.CountingListener) {
	t.Helper()
	run := func(perInstruction bool) (*collector.Result, *sde.Instrumenter, *cpu.CountingListener) {
		in := sde.New(w.Prog)
		oracle := cpu.NewCountingListener(w.Prog)
		res, err := collector.Collect(w.Prog, w.Entry, collector.Options{
			Class: w.Class, Scale: w.Scale, Seed: seed, Repeat: w.Repeat,
			KeepRaw: true, PerInstruction: perInstruction,
		}, in, oracle)
		if err != nil {
			t.Fatalf("%s (perInstruction=%v): %v", w.Name, perInstruction, err)
		}
		return res, in, oracle
	}
	fast, fastSDE, fastOracle = run(false)
	ref, refSDE, refOracle = run(true)
	return
}

// TestFastPathParityAcrossWorkloads asserts bit-identical collection
// results on the Test40 and kernel workloads (plus the short-block
// Hydro-post shape): same EBS IPs, same LBR stacks, same lost counts,
// same run statistics, and byte-identical serialized perffiles.
func TestFastPathParityAcrossWorkloads(t *testing.T) {
	for _, name := range []string{"test40", "kernel-prime", "hydro-post"} {
		w, err := workloads.Default().Build(name)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		w = w.Scaled(0.1)
		t.Run(w.Name, func(t *testing.T) {
			for _, seed := range []int64{7, 42} {
				fast, ref, fastSDE, refSDE, fastOracle, refOracle := collectPair(t, w, seed)

				if !reflect.DeepEqual(fast.EBSIPs, ref.EBSIPs) {
					t.Errorf("seed %d: EBS IPs diverged (%d fast, %d reference)",
						seed, len(fast.EBSIPs), len(ref.EBSIPs))
				}
				if !reflect.DeepEqual(fast.Stacks, ref.Stacks) {
					t.Errorf("seed %d: LBR stacks diverged (%d fast, %d reference)",
						seed, len(fast.Stacks), len(ref.Stacks))
				}
				if fast.Stats != ref.Stats {
					t.Errorf("seed %d: stats diverged:\nfast %+v\nref  %+v", seed, fast.Stats, ref.Stats)
				}
				if fast.PMIs != ref.PMIs || fast.LostEBS != ref.LostEBS || fast.LostLBR != ref.LostLBR {
					t.Errorf("seed %d: PMI accounting diverged: fast (%d, %d, %d), reference (%d, %d, %d)",
						seed, fast.PMIs, fast.LostEBS, fast.LostLBR, ref.PMIs, ref.LostEBS, ref.LostLBR)
				}
				if !bytes.Equal(fast.Raw, ref.Raw) {
					t.Errorf("seed %d: serialized perffiles diverged (%d vs %d bytes)",
						seed, len(fast.Raw), len(ref.Raw))
				}
				if len(fast.EBSIPs) == 0 || len(fast.Stacks) == 0 {
					t.Errorf("seed %d: empty collection (ips=%d stacks=%d) — parity vacuous",
						seed, len(fast.EBSIPs), len(fast.Stacks))
				}

				if !reflect.DeepEqual(fastSDE.BBECs(), refSDE.BBECs()) {
					t.Errorf("seed %d: SDE BBECs diverged", seed)
				}
				if !reflect.DeepEqual(fastSDE.Mnemonics(), refSDE.Mnemonics()) {
					t.Errorf("seed %d: SDE mnemonics diverged", seed)
				}
				if fastSDE.ExtraCycles() != refSDE.ExtraCycles() {
					t.Errorf("seed %d: SDE cost diverged: %d fast, %d reference",
						seed, fastSDE.ExtraCycles(), refSDE.ExtraCycles())
				}
				if !reflect.DeepEqual(fastOracle.Exec, refOracle.Exec) {
					t.Errorf("seed %d: oracle BBECs diverged", seed)
				}
			}
		})
	}
}
