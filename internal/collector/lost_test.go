package collector

// LOST-record parity: the drop accounting a collection emits
// (perffile.Lost records, one per starved counter) must survive the
// serialize→replay round trip bit-identically. The fleet ingest tier
// inherits its "drops are always accounted" contract from this layer,
// so these tests pin the bottom of that chain: zero-drop records,
// multi-counter accumulation, unknown counters, and byte-stable
// re-serialization.

import (
	"bytes"
	"testing"

	"hbbp/internal/perffile"
	"hbbp/internal/pmu"
)

// buildLostStream serializes a synthetic collection through the same
// WriterSink a live run uses: a few samples on both counters
// interleaved with Lost records, including accumulation on one
// counter, an explicit zero-drop record and a record for a counter
// this pipeline does not know.
func buildLostStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := perffile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sink := &WriterSink{W: w}

	ebsEvent := uint8(pmu.InstRetiredPrecDist)
	lbrEvent := uint8(pmu.BrInstRetiredNearTaken)
	sink.Sample(&perffile.Sample{Event: ebsEvent, IP: 0x40, Ring: 3})
	sink.Lost(perffile.Lost{Count: 7, Event: ebsEvent})
	sink.Sample(&perffile.Sample{Event: lbrEvent, IP: 0x80, Ring: 3,
		Stack: []perffile.Branch{{From: 0x80, To: 0x40}}})
	sink.Lost(perffile.Lost{Count: 11, Event: lbrEvent})
	// Accumulation: a second report on the same counter adds up.
	sink.Lost(perffile.Lost{Count: 5, Event: ebsEvent})
	// Zero drops is a legal record and must not disturb the totals.
	sink.Lost(perffile.Lost{Count: 0, Event: lbrEvent})
	// A counter unknown to the EBS/LBR sinks: carried by the format,
	// ignored by this pipeline's accounting.
	sink.Lost(perffile.Lost{Count: 3, Event: 200})
	sink.Sample(&perffile.Sample{Event: ebsEvent, IP: 0x44, Ring: 0})

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLostRecordsSurviveSerializeReplay pins the totals: LostEBS and
// LostLBR re-derived from the stream equal the serialized drop
// reports — accumulated across records, zero-drop records included,
// unknown counters excluded.
func TestLostRecordsSurviveSerializeReplay(t *testing.T) {
	stream := buildLostStream(t)
	res, err := ReplayResult(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("ReplayResult: %v", err)
	}
	if res.LostEBS != 7+5 {
		t.Errorf("LostEBS = %d, want 12 (7 then 5, accumulated)", res.LostEBS)
	}
	if res.LostLBR != 11 {
		t.Errorf("LostLBR = %d, want 11 (the zero-drop record adds nothing)", res.LostLBR)
	}
	if len(res.EBSIPs) != 2 || len(res.Stacks) != 1 {
		t.Errorf("samples disturbed by lost records: %d EBS, %d stacks", len(res.EBSIPs), len(res.Stacks))
	}
	// The unknown counter reaches custom sinks even though the
	// built-in accounting ignores it.
	var unknown uint64
	probe := lostProbe{event: 200, total: &unknown}
	if err := Replay(bytes.NewReader(stream), probe); err != nil {
		t.Fatal(err)
	}
	if unknown != 3 {
		t.Errorf("unknown-counter lost = %d, want 3 delivered to custom sinks", unknown)
	}
}

// lostProbe counts Lost records for one event id.
type lostProbe struct {
	event uint8
	total *uint64
}

func (p lostProbe) Sample(*perffile.Sample) {}
func (p lostProbe) Lost(l perffile.Lost) {
	if l.Event == p.event {
		*p.total += l.Count
	}
}

// TestLostRecordsReserializeByteStable pins the fixpoint: replaying a
// stream through a WriterSink reproduces the stream byte for byte —
// Lost records included — and a second generation reproduces it
// again. Serialization is its own inverse on this record set.
func TestLostRecordsReserializeByteStable(t *testing.T) {
	gen0 := buildLostStream(t)
	rewrite := func(in []byte) []byte {
		var buf bytes.Buffer
		w, err := perffile.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := Replay(bytes.NewReader(in), &WriterSink{W: w}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	gen1 := rewrite(gen0)
	if !bytes.Equal(gen0, gen1) {
		t.Fatal("replay→rewrite changed the byte stream")
	}
	gen2 := rewrite(gen1)
	if !bytes.Equal(gen1, gen2) {
		t.Fatal("second rewrite generation diverged")
	}
}

// TestLiveLostParityUnderCollisions forces real PMI-collision drops —
// both counters at period 1, so overflows constantly coincide — and
// pins that the live drop totals survive the raw file round trip.
// This is the live-path proof that LOST records are not decorative:
// the collection genuinely drops samples and the replayed accounting
// says exactly how many.
func TestLiveLostParityUnderCollisions(t *testing.T) {
	p, main := mixedProgram(t)
	live, err := Collect(p, main, Options{
		EBSPeriod: 1, LBRPeriod: 1, Scale: 1, Seed: 42, KeepRaw: true,
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if live.LostEBS+live.LostLBR == 0 {
		t.Fatal("period-1 collection dropped nothing; the collision scenario lost its teeth")
	}
	replayed, err := ReplayResult(bytes.NewReader(live.Raw))
	if err != nil {
		t.Fatalf("ReplayResult: %v", err)
	}
	if replayed.LostEBS != live.LostEBS || replayed.LostLBR != live.LostLBR {
		t.Errorf("lost counts diverged across the round trip: replay %d/%d, live %d/%d",
			replayed.LostEBS, replayed.LostLBR, live.LostEBS, live.LostLBR)
	}
	if len(replayed.EBSIPs) != len(live.EBSIPs) || len(replayed.Stacks) != len(live.Stacks) {
		t.Errorf("sample sets diverged: replay %d/%d, live %d/%d",
			len(replayed.EBSIPs), len(replayed.Stacks), len(live.EBSIPs), len(live.Stacks))
	}
}
