package collector

import (
	"bytes"
	"testing"
)

// BenchmarkCollectStreaming measures the hot path after the sink
// refactor: samples dispatch straight to the EBS and LBR sinks, no
// perffile serialization and no reparse.
func BenchmarkCollectStreaming(b *testing.B) {
	p, main := mixedProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectPerInstruction measures the same collection forced
// through the per-instruction reference dispatch — the pre-fast-path
// pipeline — so the win from block-granularity retirement with
// counter-overflow scheduling stays visible in the numbers.
func BenchmarkCollectPerInstruction(b *testing.B) {
	p, main := mixedProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 42, PerInstruction: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectSerializeReparse reproduces the pre-refactor
// pipeline — serialize every sample into an in-memory perffile, then
// re-parse the whole stream to recover the sample sets — so the cost
// the streaming path removed stays visible in the numbers.
func BenchmarkCollectSerializeReparse(b *testing.B) {
	p, main := mixedProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 42, KeepRaw: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := PostProcess(res.Raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures the streaming replay path alone on a
// pre-serialized collection.
func BenchmarkReplay(b *testing.B) {
	p, main := mixedProgram(b)
	res, err := Collect(p, main, Options{Class: ClassSeconds, Seed: 42, KeepRaw: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(res.Raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayResult(bytes.NewReader(res.Raw)); err != nil {
			b.Fatal(err)
		}
	}
}
