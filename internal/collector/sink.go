package collector

import (
	"context"
	"fmt"
	"io"

	"hbbp/internal/bbec"
	"hbbp/internal/perffile"
	"hbbp/internal/pmu"
)

// SampleSink consumes PMU sample records as they are produced — by a
// live collection run or by replaying a serialized perffile. Dispatch
// order is sample order; there is no buffering between the PMI handler
// and the sinks.
//
// The record passed to Sample (including its Stack) lives in a reused
// buffer and is only valid for the duration of the call; sinks that
// retain sample data must copy it.
type SampleSink interface {
	Sample(s *perffile.Sample)
	// Lost reports PMIs dropped by overflow collisions on one counter.
	Lost(l perffile.Lost)
}

// EBSSink accumulates the eventing IPs of precise instruction samples —
// the EBS data set. Samples of other events are ignored.
type EBSSink struct {
	IPs     []uint64
	Dropped uint64
}

// Sample records the eventing IP of INST_RETIRED:PREC_DIST samples.
func (k *EBSSink) Sample(s *perffile.Sample) {
	if pmu.Event(s.Event) == pmu.InstRetiredPrecDist {
		k.IPs = append(k.IPs, s.IP)
	}
}

// Lost accumulates drops on the precise instruction counter.
func (k *EBSSink) Lost(l perffile.Lost) {
	if pmu.Event(l.Event) == pmu.InstRetiredPrecDist {
		k.Dropped += l.Count
	}
}

// LBRSink accumulates the LBR stacks of taken-branch samples — the LBR
// data set. Empty stacks and samples of other events are ignored.
type LBRSink struct {
	Stacks  [][]bbec.Branch
	Dropped uint64

	// arena is the slab the retained stacks sub-slice: branch records
	// are pointer-free, so packing tens of thousands of small stacks
	// into a few large allocations takes them off the garbage
	// collector's object ledger entirely.
	arena []bbec.Branch
}

// lbrArenaSize is the slab granularity, in branch records.
const lbrArenaSize = 16384

// Sample copies the LBR stack of BR_INST_RETIRED:NEAR_TAKEN samples.
func (k *LBRSink) Sample(s *perffile.Sample) {
	if pmu.Event(s.Event) != pmu.BrInstRetiredNearTaken || len(s.Stack) == 0 {
		return
	}
	n := len(s.Stack)
	if cap(k.arena)-len(k.arena) < n {
		size := lbrArenaSize
		if n > size {
			size = n
		}
		k.arena = make([]bbec.Branch, 0, size)
	}
	start := len(k.arena)
	k.arena = k.arena[:start+n]
	stack := k.arena[start : start+n : start+n]
	for i, br := range s.Stack {
		stack[i] = bbec.Branch{From: br.From, To: br.To}
	}
	k.Stacks = append(k.Stacks, stack)
}

// Lost accumulates drops on the branch counter.
func (k *LBRSink) Lost(l perffile.Lost) {
	if pmu.Event(l.Event) == pmu.BrInstRetiredNearTaken {
		k.Dropped += l.Count
	}
}

// WriterSink forwards every sample to a perffile.Writer — the opt-in
// serialization path (Options.RawOut and Options.KeepRaw). Callers own
// the writer and flush it after the run.
type WriterSink struct {
	W *perffile.Writer
}

// Sample serializes the record.
func (k *WriterSink) Sample(s *perffile.Sample) { k.W.WriteSample(*s) }

// Lost serializes the drop report.
func (k *WriterSink) Lost(l perffile.Lost) { k.W.WriteLost(l) }

// sinkVisitor adapts a sink set to the perffile streaming Visitor,
// ignoring metadata records.
type sinkVisitor []SampleSink

func (v sinkVisitor) VisitComm(perffile.Comm) error { return nil }
func (v sinkVisitor) VisitMmap(perffile.Mmap) error { return nil }

func (v sinkVisitor) VisitSample(s *perffile.Sample) error {
	for _, k := range v {
		k.Sample(s)
	}
	return nil
}

func (v sinkVisitor) VisitLost(l perffile.Lost) error {
	for _, k := range v {
		k.Lost(l)
	}
	return nil
}

// ctxVisitor wraps a record visitor with periodic context polls, so a
// replay over a large file observes cancellation without paying a
// per-record check on every channel.
type ctxVisitor struct {
	sinkVisitor
	ctx       context.Context
	countdown int
}

// replayCtxInterval is how many samples pass between context polls on
// the replay path.
const replayCtxInterval = 4096

func (v *ctxVisitor) VisitSample(s *perffile.Sample) error {
	if v.countdown--; v.countdown < 0 {
		v.countdown = replayCtxInterval
		if err := v.ctx.Err(); err != nil {
			return err
		}
	}
	return v.sinkVisitor.VisitSample(s)
}

// Replay streams a serialized perffile through the sinks — the on-disk
// analogue of a live run's dispatch. Sample and Lost records reach
// every sink in file order; Comm and Mmap metadata is skipped.
func Replay(rd io.Reader, sinks ...SampleSink) error {
	return ReplayContext(context.Background(), rd, sinks...)
}

// ReplayContext is Replay under a context: the pass polls ctx between
// records and aborts with an error wrapping ctx.Err() when it is
// cancelled. A pass that completes is identical to an uncancelled
// Replay.
func ReplayContext(ctx context.Context, rd io.Reader, sinks ...SampleSink) error {
	var v perffile.Visitor = sinkVisitor(sinks)
	if ctx != nil && ctx.Done() != nil {
		v = &ctxVisitor{sinkVisitor: sinkVisitor(sinks), ctx: ctx}
	}
	if err := perffile.Visit(rd, v); err != nil {
		return fmt.Errorf("collector: replay: %w", err)
	}
	return nil
}

// ReplayResult re-derives a collection's sample sets from a perffile
// stream, using the same sinks a live run dispatches to. Periods,
// scale and run statistics are not recorded in the file; callers
// replaying a known collection set them from the options used at
// collection time (see Options.Periods and Options.EffectiveScale).
func ReplayResult(rd io.Reader) (*Result, error) {
	return ReplayResultContext(context.Background(), rd)
}

// ReplayResultContext is ReplayResult under a context (see
// ReplayContext for the cancellation contract). Extra sinks join the
// dispatch after the built-in EBS and LBR sinks — the same order a
// live collection uses for Options.Sinks.
func ReplayResultContext(ctx context.Context, rd io.Reader, extra ...SampleSink) (*Result, error) {
	ebs := &EBSSink{}
	lbr := &LBRSink{}
	sinks := append([]SampleSink{ebs, lbr}, extra...)
	if err := ReplayContext(ctx, rd, sinks...); err != nil {
		return nil, err
	}
	return &Result{
		EBSIPs:  ebs.IPs,
		Stacks:  lbr.Stacks,
		LostEBS: ebs.Dropped,
		LostLBR: lbr.Dropped,
	}, nil
}
