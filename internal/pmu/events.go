// Package pmu models the CPU's Performance Monitoring Unit: programmable
// counters, event-based sampling with skid and shadowing, and the Last
// Branch Record facility including the entry[0] bias anomaly the paper
// reports (Section III.C).
//
// The model is deliberately behavioural rather than microarchitectural:
// it reproduces the *symptoms* documented in the paper and its references
// (Nowak et al. ATC'15, Chen et al.) with calibrated magnitudes, so that
// the downstream HBBP machinery faces the same estimation problem the
// real tool faced on Ivy Bridge hardware.
package pmu

import "fmt"

// Event identifies a performance event. The two sampling events are the
// ones the paper's collector programs; the counting-only events model
// the dwindling set of instruction-specific counters (Table 2).
type Event uint8

// Performance events.
const (
	// InstRetired counts all retired instructions (non-precise variant,
	// larger skid).
	InstRetired Event = iota
	// InstRetiredPrecDist is INST_RETIRED.PREC_DIST — the precisely
	// distributed variant the paper samples for EBS. Reduced, but not
	// zero, skid and shadowing.
	InstRetiredPrecDist
	// BrInstRetiredNearTaken is BR_INST_RETIRED.NEAR_TAKEN — retired
	// taken branches, the paper's LBR sampling trigger.
	BrInstRetiredNearTaken
	// DivCycles counts cycles spent in the divider (counting mode only).
	DivCycles
	// MathSSEFP counts SSE floating-point computational instructions.
	MathSSEFP
	// MathAVXFP counts AVX floating-point computational instructions.
	MathAVXFP
	// IntSIMD counts integer SIMD instructions.
	IntSIMD
	// X87Ops counts retired x87 operations.
	X87Ops
	numEvents
)

// String returns the event's canonical name in perf-style notation.
func (e Event) String() string {
	switch e {
	case InstRetired:
		return "INST_RETIRED:ANY"
	case InstRetiredPrecDist:
		return "INST_RETIRED:PREC_DIST"
	case BrInstRetiredNearTaken:
		return "BR_INST_RETIRED:NEAR_TAKEN"
	case DivCycles:
		return "ARITH:DIV_CYCLES"
	case MathSSEFP:
		return "FP_COMP_OPS_EXE:SSE_FP"
	case MathAVXFP:
		return "SIMD_FP_256:PACKED"
	case IntSIMD:
		return "SIMD_INT_128:ANY"
	case X87Ops:
		return "FP_COMP_OPS_EXE:X87"
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Precise reports whether the event supports precise sampling
// (PEBS-style). Only the PREC_DIST variant qualifies, and x86 allows it
// on a single counter at a time — the constraint that forces the paper's
// two-parallel-LBR-collections design.
func (e Event) Precise() bool { return e == InstRetiredPrecDist }

// Generation identifies a processor family for the event-support matrix
// of Table 2.
type Generation uint8

// Processor generations from the paper's Table 2.
const (
	Westmere  Generation = iota // 2010
	IvyBridge                   // 2013
	Haswell                     // 2015
	numGenerations
)

// String returns the generation's marketing name.
func (g Generation) String() string {
	switch g {
	case Westmere:
		return "Westmere"
	case IvyBridge:
		return "Ivy Bridge"
	case Haswell:
		return "Haswell"
	}
	return fmt.Sprintf("Generation(%d)", uint8(g))
}

// Year returns the generation's server launch year as used in Table 2.
func (g Generation) Year() int {
	switch g {
	case Westmere:
		return 2010
	case IvyBridge:
		return 2013
	default:
		return 2015
	}
}

// Support describes the availability of an instruction-specific event on
// a generation.
type Support uint8

// Support levels.
const (
	Unsupported   Support = iota // event absent from the PMU
	Supported                    // event present
	NotApplicable                // ISA extension predates the event (AVX on Westmere)
)

// String renders the support level the way Table 2 marks it.
func (s Support) String() string {
	switch s {
	case Supported:
		return "yes"
	case NotApplicable:
		return "N/A"
	}
	return "-"
}

// capabilityMatrix mirrors the paper's Table 2: instruction-specific
// event support shrinks with newer families ("a general trend of
// reducing PMU complexity"). Haswell retains only divider cycles.
var capabilityMatrix = map[Generation]map[Event]Support{
	Westmere: {
		DivCycles: Supported,
		MathSSEFP: Supported,
		MathAVXFP: NotApplicable,
		IntSIMD:   Supported,
		X87Ops:    Supported,
	},
	IvyBridge: {
		DivCycles: Supported,
		MathSSEFP: Supported,
		MathAVXFP: Supported,
		IntSIMD:   Unsupported,
		X87Ops:    Supported,
	},
	Haswell: {
		DivCycles: Supported,
		MathSSEFP: Unsupported,
		MathAVXFP: Unsupported,
		IntSIMD:   Unsupported,
		X87Ops:    Unsupported,
	},
}

// Supports reports the support level of an instruction-specific event on
// generation g. Sampling events are supported everywhere.
func Supports(g Generation, e Event) Support {
	switch e {
	case InstRetired, InstRetiredPrecDist, BrInstRetiredNearTaken:
		return Supported
	}
	if m, ok := capabilityMatrix[g]; ok {
		if s, ok := m[e]; ok {
			return s
		}
	}
	return Unsupported
}

// InstructionSpecificEvents lists the counting-only events in Table 2
// row order.
func InstructionSpecificEvents() []Event {
	return []Event{DivCycles, MathSSEFP, MathAVXFP, IntSIMD, X87Ops}
}

// Generations lists the generations in Table 2 column order.
func Generations() []Generation {
	return []Generation{Westmere, IvyBridge, Haswell}
}
