package pmu

import (
	"testing"
	"testing/quick"

	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

func TestEventStrings(t *testing.T) {
	for e := Event(0); e < numEvents; e++ {
		if e.String() == "" {
			t.Errorf("Event(%d) has empty name", e)
		}
	}
	if !InstRetiredPrecDist.Precise() {
		t.Error("PREC_DIST must be precise")
	}
	if InstRetired.Precise() || BrInstRetiredNearTaken.Precise() {
		t.Error("only PREC_DIST is precise")
	}
}

func TestCapabilityMatrixShrinks(t *testing.T) {
	// Table 2's trend: support declines with newer generations.
	supported := func(g Generation) int {
		n := 0
		for _, e := range InstructionSpecificEvents() {
			if Supports(g, e) == Supported {
				n++
			}
		}
		return n
	}
	w, i, h := supported(Westmere), supported(IvyBridge), supported(Haswell)
	if !(w >= i && i > h) {
		t.Errorf("support counts W=%d I=%d H=%d do not decline", w, i, h)
	}
	if Supports(Westmere, MathAVXFP) != NotApplicable {
		t.Error("AVX events must be N/A on Westmere")
	}
	if Supports(Haswell, DivCycles) != Supported {
		t.Error("divider cycles should survive on Haswell")
	}
	for _, g := range Generations() {
		if Supports(g, InstRetiredPrecDist) != Supported {
			t.Errorf("%v should support sampling events", g)
		}
	}
}

func TestLBRRing(t *testing.T) {
	r := newLBRRing(8)
	if r.snapshot(4, 0) != nil {
		t.Error("snapshot of empty ring should be nil")
	}
	for i := 0; i < 10; i++ {
		r.push(BranchRecord{From: uint64(i), To: uint64(100 + i)})
	}
	if got := r.available(); got != 8 {
		t.Fatalf("available = %d, want 8", got)
	}
	s := r.snapshot(4, 0)
	// Newest is From=9; entry[0] is the oldest of the window: From=6.
	want := []uint64{6, 7, 8, 9}
	for i, rec := range s {
		if rec.From != want[i] {
			t.Errorf("entry[%d].From = %d, want %d", i, rec.From, want[i])
		}
	}
	// Offset 2 shifts the window two branches into the past.
	s = r.snapshot(4, 2)
	want = []uint64{4, 5, 6, 7}
	for i, rec := range s {
		if rec.From != want[i] {
			t.Errorf("offset snapshot entry[%d].From = %d, want %d", i, rec.From, want[i])
		}
	}
	// Too deep an offset returns nil.
	if r.snapshot(8, 1) != nil {
		t.Error("snapshot past available history should be nil")
	}
}

func TestFindProne(t *testing.T) {
	r := newLBRRing(32)
	for i := 0; i < 24; i++ {
		r.push(BranchRecord{From: uint64(i)})
	}
	// Newest is 23; From=20 is at age 3 and inside a depth-8 window.
	age, ok := r.findProne(8, func(addr uint64) bool { return addr == 20 })
	if !ok || age != 3 {
		t.Fatalf("findProne = (%d,%v), want (3,true)", age, ok)
	}
	// Truncated snapshot starting at the prone branch pins it to
	// entry[0].
	s := r.snapshot(age+1, 0)
	if s[0].From != 20 || len(s) != 4 {
		t.Errorf("pinned snapshot = %v", s)
	}
	// A prone branch outside the architectural window is not found.
	if _, ok := r.findProne(4, func(addr uint64) bool { return addr == 2 }); ok {
		t.Error("prone branch found outside the window")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(1)
	h := func(Sample) {}
	if _, err := New(cfg, Sampling{Event: InstRetiredPrecDist, Period: 0, Handler: h}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := New(cfg, Sampling{Event: InstRetiredPrecDist, Period: 10}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := New(cfg,
		Sampling{Event: InstRetiredPrecDist, Period: 10, Handler: h},
		Sampling{Event: InstRetiredPrecDist, Period: 10, Handler: h}); err == nil {
		t.Error("two precise counters accepted")
	}
	bad := cfg
	bad.HistoryDepth = 3
	if _, err := New(bad, Sampling{Event: InstRetired, Period: 10, Handler: h}); err == nil {
		t.Error("tiny history accepted")
	}
}

// loopProgram builds a single hot loop with a long-latency DIV followed
// by cheap instructions, used to observe skid and shadowing.
func loopProgram(t testing.TB, trips int) (*program.Program, *program.Function) {
	t.Helper()
	b := program.NewBuilder("pmu-loop")
	mod := b.Module("m", program.RingUser)
	f := b.Function(mod, "f")
	entry := b.Block(f, isa.MOV)
	body := b.Block(f, isa.DIV, isa.ADD, isa.SUB, isa.MOV, isa.CMP)
	exit := b.Block(f, isa.MOV)
	b.Fallthrough(entry, body)
	b.Loop(body, isa.JNZ, body, exit, trips)
	b.Return(exit)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, f
}

func TestSamplingRateAndCounts(t *testing.T) {
	p, f := loopProgram(t, 5000)
	var samples []Sample
	cfg := DefaultConfig(3)
	pm, err := New(cfg, Sampling{
		Event: InstRetiredPrecDist, Period: 100,
		Handler: func(s Sample) { samples = append(samples, s) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stats, err := cpu.Run(p, f, cpu.Config{Seed: 1}, pm)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pm.Count(InstRetired) != stats.Retired {
		t.Errorf("counting mode %d != retired %d", pm.Count(InstRetired), stats.Retired)
	}
	if pm.Count(BrInstRetiredNearTaken) != stats.TakenBranches {
		t.Errorf("branch count %d != taken %d", pm.Count(BrInstRetiredNearTaken), stats.TakenBranches)
	}
	wantSamples := stats.Retired / 100
	got := uint64(len(samples)) + pm.Dropped(InstRetiredPrecDist)
	if got < wantSamples-2 || got > wantSamples+2 {
		t.Errorf("samples+dropped = %d, want about %d", got, wantSamples)
	}
	for _, s := range samples {
		if s.Event != InstRetiredPrecDist {
			t.Fatalf("sample has event %v", s.Event)
		}
		if p.BlockAt(s.IP) == nil {
			t.Errorf("sample IP %#x outside program", s.IP)
		}
	}
}

func TestShadowingAvoidsLongLatency(t *testing.T) {
	p, f := loopProgram(t, 20000)
	divAddr := p.FuncByName("f").Blocks[1].Addr // DIV is first in body
	var onDiv, afterDiv, total int
	cfg := DefaultConfig(7)
	pm, err := New(cfg, Sampling{
		Event: InstRetiredPrecDist, Period: 97,
		Handler: func(s Sample) {
			total++
			if s.IP == divAddr {
				onDiv++
			}
			if s.IP == divAddr+uint64(isa.DIV.Bytes()) {
				afterDiv++
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := cpu.Run(p, f, cpu.Config{Seed: 2}, pm); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if onDiv != 0 {
		t.Errorf("%d samples landed on the DIV despite shadowing", onDiv)
	}
	if total == 0 {
		t.Fatal("no samples delivered")
	}
	// The instruction after the DIV collects a disproportionate share:
	// with 6 instructions in the loop a uniform sampler would put ~1/6
	// of samples there; shadowing should push it well above that.
	if frac := float64(afterDiv) / float64(total); frac < 0.2 {
		t.Errorf("post-DIV pile-up fraction %.3f, want > 0.2", frac)
	}
}

func TestLBRStackStreamsAreConsistent(t *testing.T) {
	p, f := loopProgram(t, 20000)
	var stacks [][]BranchRecord
	cfg := DefaultConfig(11)
	cfg.BiasProne = nil // disable anomalies: verify clean semantics
	cfg.EntryDropProb = 0
	pm, err := New(cfg, Sampling{
		Event: BrInstRetiredNearTaken, Period: 53,
		Handler: func(s Sample) {
			if s.Stack != nil {
				// The stack buffer is reused across deliveries; retain a copy.
				stacks = append(stacks, append([]BranchRecord(nil), s.Stack...))
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := cpu.Run(p, f, cpu.Config{Seed: 5}, pm); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(stacks) == 0 {
		t.Fatal("no stacks captured")
	}
	for _, st := range stacks {
		if len(st) != cfg.LBRDepth {
			t.Fatalf("stack depth %d, want %d", len(st), cfg.LBRDepth)
		}
		for i := 1; i < len(st); i++ {
			// Stream <Target[i-1], Source[i]>: execution between the
			// two is sequential, so the source must not precede the
			// target in addresses.
			if st[i].From < st[i-1].To {
				t.Fatalf("stream %d inconsistent: target %#x > source %#x",
					i, st[i-1].To, st[i].From)
			}
		}
	}
}

// multiBranchProgram builds an outer loop whose body runs four small
// inner loops, so LBR stacks contain a mix of distinct branch sources.
func multiBranchProgram(t testing.TB) (*program.Program, *program.Function, []*program.Block) {
	t.Helper()
	b := program.NewBuilder("pmu-multi")
	mod := b.Module("m", program.RingUser)
	f := b.Function(mod, "f")
	entry := b.Block(f, isa.MOV)
	outerHead := b.Block(f, isa.ADD)
	var latches []*program.Block
	prev := outerHead
	for i := 0; i < 4; i++ {
		head := b.Block(f, isa.MOV, isa.ADD)
		latch := b.Block(f, isa.SUB, isa.CMP)
		b.Fallthrough(prev, head)
		b.Fallthrough(head, latch)
		next := b.Block(f, isa.MOV)
		b.Loop(latch, isa.JNZ, head, next, 3)
		latches = append(latches, latch)
		prev = next
	}
	outerLatch := b.Block(f, isa.INC, isa.CMP)
	exit := b.Block(f, isa.MOV)
	b.Fallthrough(prev, outerLatch)
	b.Loop(outerLatch, isa.JLE, outerHead, exit, 4000)
	b.Return(exit)
	b.Fallthrough(entry, outerHead)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p, f, latches
}

func TestBiasAnomalyPinsProneBranch(t *testing.T) {
	p, f, latches := multiBranchProgram(t)
	proneAddr := latches[1].LastAddr() // inner loop 2's JNZ
	prone := func(addr uint64) bool { return addr == proneAddr }

	countEntry0 := func(strength float64, seed int64) (entry0, totalStacks int) {
		cfg := DefaultConfig(seed)
		cfg.BiasProne = prone
		cfg.BiasStrength = strength
		pm, err := New(cfg, Sampling{
			Event: BrInstRetiredNearTaken, Period: 53,
			Handler: func(s Sample) {
				if s.Stack == nil {
					return
				}
				totalStacks++
				if s.Stack[0].From == proneAddr {
					entry0++
				}
			},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := cpu.Run(p, f, cpu.Config{Seed: 5}, pm); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return entry0, totalStacks
	}

	e0Off, totalOff := countEntry0(0, 13)
	e0On, totalOn := countEntry0(0.9, 13)
	if totalOff == 0 || totalOn == 0 {
		t.Fatal("no stacks")
	}
	fracOff := float64(e0Off) / float64(totalOff)
	fracOn := float64(e0On) / float64(totalOn)
	if fracOn < 2*fracOff {
		t.Errorf("bias did not pin branch to entry[0]: off=%.3f on=%.3f", fracOff, fracOn)
	}
}

func TestInstructionSpecificCounts(t *testing.T) {
	b := program.NewBuilder("events")
	mod := b.Module("m", program.RingUser)
	f := b.Function(mod, "f")
	blk := b.Block(f, isa.DIV, isa.ADDPS, isa.MULSS, isa.VADDPS, isa.FADD, isa.PADDD, isa.MOV)
	b.Return(blk)
	p, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	pm, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 10
	if _, err := cpu.Run(p, f, cpu.Config{Repeat: n}, pm); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := pm.Count(DivCycles); got != uint64(n*isa.DIV.Latency()) {
		t.Errorf("DivCycles = %d, want %d", got, n*isa.DIV.Latency())
	}
	if got := pm.Count(MathSSEFP); got != 2*n {
		t.Errorf("MathSSEFP = %d, want %d", got, 2*n)
	}
	if got := pm.Count(MathAVXFP); got != n {
		t.Errorf("MathAVXFP = %d, want %d", got, n)
	}
	if got := pm.Count(X87Ops); got != n {
		t.Errorf("X87Ops = %d, want %d", got, n)
	}
	if got := pm.Count(IntSIMD); got != n {
		t.Errorf("IntSIMD = %d, want %d", got, n)
	}
}

// Property: snapshots never invent records — every entry of any
// snapshot was previously pushed.
func TestQuickSnapshotOnlyRealRecords(t *testing.T) {
	f := func(pushes []uint8, depth8, offset8 uint8) bool {
		depth := int(depth8)%6 + 2
		offset := int(offset8) % 8
		r := newLBRRing(32)
		seen := map[uint64]bool{}
		for _, v := range pushes {
			r.push(BranchRecord{From: uint64(v), To: uint64(v) + 1})
			seen[uint64(v)] = true
		}
		s := r.snapshot(depth, offset)
		if s == nil {
			return r.available() < depth+offset
		}
		for _, rec := range s {
			if !seen[rec.From] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
