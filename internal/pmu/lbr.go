package pmu

// BranchRecord is one LBR entry: the address of a retired taken branch
// and its target.
type BranchRecord struct {
	From uint64 // branch instruction address (source)
	To   uint64 // branch target address
}

// lbrRing keeps more history than the architectural LBR depth so the
// bias anomaly can deliver stale windows: when a bias-prone branch is
// present at sufficient depth, a snapshot may be aligned so that branch
// sits at entry[0] — the position whose source cannot be paired with any
// preceding target, which is exactly the distortion Section III.C
// describes (branches appearing at entry[0] up to 50% of the time).
type lbrRing struct {
	buf   []BranchRecord
	head  int // next write position
	count int // total records ever written
}

func newLBRRing(historyDepth int) *lbrRing {
	return &lbrRing{buf: make([]BranchRecord, historyDepth)}
}

// push records a retired taken branch. The wrap is a compare instead
// of a modulo — push sits on the per-taken-branch hot path.
func (r *lbrRing) push(rec BranchRecord) {
	r.buf[r.head] = rec
	if r.head++; r.head == len(r.buf) {
		r.head = 0
	}
	r.count++
}

// at returns the record age positions back from the newest (age 0 =
// newest). The caller must ensure age < min(count, len(buf)).
func (r *lbrRing) at(age int) BranchRecord {
	idx := r.head - 1 - age
	idx %= len(r.buf)
	if idx < 0 {
		idx += len(r.buf)
	}
	return r.buf[idx]
}

// available returns how many records can be read back.
func (r *lbrRing) available() int {
	if r.count < len(r.buf) {
		return r.count
	}
	return len(r.buf)
}

// snapshot returns the newest depth records ordered oldest-first
// (entry[0] = oldest), i.e. the stack layout the paper's stream
// extraction assumes. offset shifts the window into the past: offset 0
// is the architectural snapshot; offset k returns the window ending k
// branches ago. Returns nil when not enough history is available.
func (r *lbrRing) snapshot(depth, offset int) []BranchRecord {
	return r.snapshotInto(make([]BranchRecord, depth), offset)
}

// snapshotInto is snapshot writing into a caller-owned buffer whose
// length is the window depth — the allocation-free delivery path. The
// returned slice is dst (or nil when not enough history is available);
// entry[len-1] is the newest record within the window.
func (r *lbrRing) snapshotInto(dst []BranchRecord, offset int) []BranchRecord {
	depth := len(dst)
	if r.available() < depth+offset {
		return nil
	}
	// Walk the ring backwards once instead of re-deriving the wrapped
	// index per entry: idx starts at the newest record of the window
	// and only ever needs one wrap adjustment because depth is bounded
	// by the ring size.
	idx := (r.head - 1 - offset) % len(r.buf)
	if idx < 0 {
		idx += len(r.buf)
	}
	for i := depth - 1; i >= 0; i-- {
		dst[i] = r.buf[idx]
		if idx--; idx < 0 {
			idx += len(r.buf)
		}
	}
	return dst
}

// findProne returns the age (0 = newest) of the most recent bias-prone
// branch within the architectural window of the given depth, or false
// when none is present.
func (r *lbrRing) findProne(depth int, prone func(uint64) bool) (int, bool) {
	avail := r.available()
	if avail > depth {
		avail = depth
	}
	for age := 0; age < avail; age++ {
		if prone(r.at(age).From) {
			return age, true
		}
	}
	return 0, false
}
